# Repro of conf_ipps_GillEKA0G25 (MeanCache) grown toward a production
# serving system. `make check` is the gate CI runs.

GO ?= go

.PHONY: build check test race vet bench loadtest clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suites with concurrency surface under the race detector;
# the experiment-replay suites are single-goroutine and slow, so they are
# covered by `test` instead.
race:
	$(GO) test -race ./internal/core/ ./internal/server/ ./internal/cache/ \
		./internal/store/ ./internal/fl/ ./internal/llmsim/

check: vet build test race

bench:
	$(GO) test -bench . -benchmem -run xxx .

# loadtest reproduces the serving acceptance run: cacheserve (race-built,
# in-process virtual-time upstream) driven by loadgen with 100 users and
# 1200 measured probes.
loadtest:
	$(GO) build -race -o bin/cacheserve ./cmd/cacheserve
	$(GO) build -race -o bin/loadgen ./cmd/loadgen
	rm -rf bin/tenants
	./bin/cacheserve -addr 127.0.0.1:18090 -max-tenants 64 -persist-dir bin/tenants & \
		srv=$$!; sleep 1; \
		./bin/loadgen -addr 127.0.0.1:18090 -users 100 -cached 8 -probes 12 -concurrency 32; \
		rc=$$?; kill -INT $$srv; wait $$srv; exit $$rc

clean:
	rm -rf bin
