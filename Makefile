# Repro of conf_ipps_GillEKA0G25 (MeanCache) grown toward a production
# serving system. `make check` is the gate CI runs.

GO ?= go

.PHONY: build check test race vet bench bench-json benchdiff loadtest \
	loadtest-fl conformance fuzz-smoke loadtest-ann loadtest-cluster \
	loadtest-overload loadtest-hotspot crashtest sim clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suites with concurrency surface under the race detector;
# the experiment-replay suites are single-goroutine and slow, so they are
# covered by `test` instead.
race:
	$(GO) test -race ./internal/core/ ./internal/server/ ./internal/cache/ \
		./internal/store/... ./internal/fl/ ./internal/flserve/ ./internal/llmsim/ \
		./internal/index/ ./internal/cluster/ ./internal/obs/ ./internal/resilience/ \
		./internal/sim/ ./internal/sim/scenario/

check: vet build test race

# conformance runs the cross-index property suite (Flat, IVF, HNSW,
# Adaptive against a brute-force oracle) twice under the race detector.
conformance:
	$(GO) test -run Conformance -count=2 -race ./internal/index/...

# fuzz-smoke is the nightly-style fuzz check: 30s of randomized
# Add/Remove/Search programs checked for exact Flat parity and HNSW
# result invariants, 30s of the same programs with batched searches
# checked for exact MultiSearch-vs-sequential parity, 30s of arbitrary
# bytes against the cluster wire codec (no panics, no over-allocation,
# canonical round trips), and 30s of fuzzer-shaped churn storms through
# the deterministic cluster simulation (no panics, every safety
# invariant holds at settle).
fuzz-smoke:
	$(GO) test -fuzz=FuzzSearchParity -fuzztime=30s -run xxx ./internal/index/
	$(GO) test -fuzz=FuzzMultiSearchParity -fuzztime=30s -run xxx ./internal/index/
	$(GO) test -fuzz=FuzzWireCodec -fuzztime=30s -run xxx ./internal/cluster/
	$(GO) test -fuzz=FuzzSimScenario -fuzztime=30s -run xxx ./internal/sim/scenario/

# sim is the deterministic-simulation gate: the virtual-clock and
# simulated-network engine suites, the 100k-tenant churn-storm
# determinism gate (same seed ⇒ bit-identical trace digest, different
# seed diverges, < 30s wall), the randomized-churn property suite, and
# the virtual-time runs of the production cluster Node.
sim:
	$(GO) test -count=1 ./internal/sim/ ./internal/sim/scenario/
	$(GO) test -count=1 -run TestVirtualTime ./internal/cluster/

# bench runs every benchmark in the repo (paper replays at the root,
# micro-benchmarks in the internal packages).
bench:
	$(GO) test -bench . -benchmem -run xxx ./...

# bench-json captures the serving-path micro-benchmarks as JSON, seeding
# the benchmark trajectory tracked across PRs.
bench-json:
	$(GO) run ./cmd/benchrunner -bench-json BENCH_serving.json

# benchdiff is the perf-regression gate: re-run the pinned hot-path
# subset and fail on >25% ns/op or any allocs/op regression against the
# committed BENCH_serving.json.
benchdiff:
	$(GO) run ./cmd/benchrunner -bench-diff BENCH_serving.json

# loadtest reproduces the serving acceptance run: cacheserve (race-built,
# in-process virtual-time upstream) driven by loadgen with 100 users and
# 1200 measured probes.
loadtest:
	$(GO) build -race -o bin/cacheserve ./cmd/cacheserve
	$(GO) build -race -o bin/loadgen ./cmd/loadgen
	rm -rf bin/tenants
	./bin/cacheserve -addr 127.0.0.1:18090 -max-tenants 64 -persist-dir bin/tenants & \
		srv=$$!; sleep 1; \
		./bin/loadgen -addr 127.0.0.1:18090 -users 100 -cached 8 -probes 12 -concurrency 32; \
		rc=$$?; kill -INT $$srv; wait $$srv; exit $$rc

# loadtest-fl is the online federated-learning acceptance run: 50 live
# tenants train the global encoder and τ across 3 rounds between serving
# phases, under the race detector, reporting the hit-ratio/F1 trajectory
# against the frozen-model baseline.
loadtest-fl:
	$(GO) build -race -o bin/cacheserve ./cmd/cacheserve
	$(GO) build -race -o bin/loadgen ./cmd/loadgen
	./bin/cacheserve -addr 127.0.0.1:18091 -fl & \
		srv=$$!; sleep 2; \
		./bin/loadgen -addr 127.0.0.1:18091 -users 50 -cached 8 -probes 12 -fl 3; \
		rc=$$?; kill -INT $$srv; wait $$srv; exit $$rc

# loadtest-ann is the large-cache ANN acceptance run: 200k entries per
# tenant index, HNSW must beat the exact Flat scan ≥5× at recall@10
# ≥ 0.95 (build takes a minute or two; the gate is enforced by exit code).
loadtest-ann:
	$(GO) run ./cmd/loadgen -scenario ann -ann-n 200000 -ann-queries 300 -ann-accept

# loadtest-cluster is the failover acceptance run: the ring property
# tests prove the balance and minimal-movement bounds, then a 3-node
# in-process cluster (shared persist dir, virtual-time upstream) takes
# an abrupt node kill mid-run and must finish with zero request errors,
# zero lost tenants, and ≥90% duplicate-hit-rate retention.
loadtest-cluster:
	$(GO) test -run 'TestRingBalance|TestRingMinimalMovement' -count=1 ./internal/cluster/
	$(GO) run ./cmd/loadgen -scenario cluster -users 80 -cached 6 -probes 12 \
		-dup 0.4 -concurrency 24 -cluster-accept

# loadtest-overload is the degraded-serving acceptance run: an in-process
# cacheserve stack (resilience governor, guarded llmsim upstream in real
# sleep mode) takes an upstream brown-out and then a full outage at ≥10×
# offered load, and must keep serving from cache: served throughput ≥90%
# of healthy capacity, hit-path p99 under 5× the unloaded p99, the AIMD
# limiter sheds the brown-out overflow, and the circuit breaker trips to
# cache-only serving and re-closes after the upstream heals (asserted
# via /metrics). Zero panics or unexpected statuses anywhere.
loadtest-overload:
	$(GO) run ./cmd/loadgen -scenario overload -users 60 -cached 6 -probes 10 \
		-concurrency 16 -overload-accept

# loadtest-hotspot is the search-batching acceptance run: Zipf-skewed
# traffic hammers one hot tenant through two in-process stacks, one with
# the per-tenant search batcher wired in and one without. The batched
# stack must demonstrably coalesce (mean search pass > 1), duplicate
# hits must match across the stacks (end-to-end MultiSearch parity), and
# the batched hit-path p99 must not exceed the unbatched p99 (a 1.1×
# allowance absorbs run-to-run scheduler noise on shared runners; the
# win is typically 5-25%).
loadtest-hotspot:
	$(GO) run ./cmd/loadgen -scenario hotspot -hotspot-latency-x 1.1 -hotspot-accept

# crashtest is the crash-consistency acceptance run: a real cacheserve
# process over one persist dir is SIGKILLed mid-traffic 21 times (plus 5
# clean shutdowns that flush and mark tenants durably synced), with one
# deliberately corrupted snapshot injected while the server is down.
# The gate: every restart comes up healthy, no tenant whose state was
# durably synced ever loses its canonical entry, the corrupted snapshot
# is quarantined and served cold (never crashed on), and zero request
# errors land outside kill windows.
crashtest:
	$(GO) build -o bin/cacheserve ./cmd/cacheserve
	$(GO) build -o bin/loadgen ./cmd/loadgen
	rm -rf bin/crashtenants
	./bin/loadgen -scenario crash -crash-bin ./bin/cacheserve \
		-crash-dir bin/crashtenants -concurrency 16 -crash-accept

clean:
	rm -rf bin
