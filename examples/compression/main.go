// Compression: the PCA embedding-compression utility of §III-A.4.
//
// A trained encoder's 768-d embeddings are compressed to 64-d by fitting
// PCA on a sample of query embeddings and attaching the projection as a
// final encoder layer (Figure 3). The example reports the storage saving,
// the search-time change, and the matching-quality cost — the trade-off of
// Figure 10.
//
// Run with: go run ./examples/compression
package main

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/pca"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func main() {
	// Fine-tune an encoder briefly so the embeddings have structure worth
	// compressing.
	fmt.Print("training encoder... ")
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Intents = 1000
	corpus := dataset.GenerateCorpus(corpusCfg)
	enc := embed.NewModel(embed.MPNetSim, 3)
	cfg := train.DefaultConfig()
	cfg.Epochs = 3
	train.NewTrainer(enc, train.NewSGD(cfg.LR), cfg).Train(corpus.Train)
	fmt.Println("done")

	// Fit PCA on training-query embeddings (Figure 3a).
	texts := make([]string, 0, 800)
	for _, p := range corpus.Train[:800] {
		texts = append(texts, p.A)
	}
	samples := enc.EncodeBatch(texts)
	proj, err := pca.Fit(samples, 64, pca.Options{Seed: 1})
	if err != nil {
		fmt.Println("pca:", err)
		return
	}
	compressed := embed.WithCenteredProjection(enc, proj.Components, proj.Mean)
	fmt.Printf("PCA %d -> %d dims captures %.1f%% of embedding variance\n\n",
		enc.Dim(), compressed.Dim(), 100*proj.ExplainedRatio())

	// Build two caches over the same 2000 queries: raw and compressed.
	w := dataset.GenerateCacheWorkload(corpusCfg, 2000, 300, 0.3)
	build := func(e embed.Encoder) (*cache.Cache, time.Duration) {
		c := cache.New(e.Dim(), 0, cache.LRU{})
		for _, q := range w.Cached {
			if _, err := c.Put(q, "resp", e.Encode(q), cache.NoParent); err != nil {
				panic(err)
			}
		}
		// Time the semantic search over all probes.
		start := time.Now()
		for _, p := range w.Probes {
			c.FindSimilar(e.Encode(p.Text), 5, 0.5)
		}
		return c, time.Since(start) / time.Duration(len(w.Probes))
	}
	rawCache, rawSearch := build(enc)
	compCache, compSearch := build(compressed)

	// Matching quality at each representation's own optimal threshold.
	rawOpt := train.Sweep(enc, corpus.Val, 0.01, 1).Optimal
	compOpt := train.Sweep(compressed, corpus.Val, 0.01, 1).Optimal

	fmt.Printf("%-22s %14s %16s %10s\n", "representation", "embed storage", "search+encode", "best F1")
	fmt.Printf("%-22s %12.0fKB %16v %10.3f\n", fmt.Sprintf("raw %d-d", enc.Dim()),
		float64(rawCache.EmbeddingBytes())/1024, rawSearch.Round(time.Microsecond), rawOpt.Scores.FScore)
	fmt.Printf("%-22s %12.0fKB %16v %10.3f\n", fmt.Sprintf("compressed %d-d", compressed.Dim()),
		float64(compCache.EmbeddingBytes())/1024, compSearch.Round(time.Microsecond), compOpt.Scores.FScore)

	saving := 100 * (1 - float64(compCache.EmbeddingBytes())/float64(rawCache.EmbeddingBytes()))
	fmt.Printf("\nembedding storage saving: %.1f%% (paper reports 83%% including text overhead)\n", saving)

	// Sanity: compression preserves neighbourhoods — a paraphrase pair
	// stays more similar than an unrelated pair in the compressed space.
	a := compressed.Encode(corpus.Val[0].A)
	b := compressed.Encode(corpus.Val[0].B)
	fmt.Printf("example pair cosine in 64-d space: %.3f (dup=%v)\n",
		vecmath.Dot(a, b), corpus.Val[0].Dup)
}
