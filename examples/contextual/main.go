// Contextual: MeanCache's context chains on multi-turn conversations
// (§II / §III, the paper's Q1–Q4 example).
//
// The same follow-up text ("change the color to red") means different
// things after "draw a line plot" and after "draw a circle". A context-
// blind semantic cache returns the wrong cached response; MeanCache
// verifies the context chain and correctly misses.
//
// Run with: go run ./examples/contextual
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gptcache"
	"repro/internal/llmsim"
)

func main() {
	llm := llmsim.New(llmsim.DefaultConfig())
	enc := embed.NewModel(embed.MPNetSim, 1)

	// MeanCache client with context verification. The untrained encoder
	// is fine here: the conversations use identical surface text, so this
	// example isolates the *context* mechanism from embedding quality.
	mc := core.New(core.Options{Encoder: enc, LLM: llm, Tau: 0.95, CtxTau: 0.95})

	// The baseline: same encoder and threshold, no context handling.
	gc := gptcache.New(gptcache.Options{Encoder: enc, LLM: llm, Tau: 0.95})

	fmt.Println("Conversation 1: Q1 'draw a line plot in python', Q2 'change the color to red'")
	s1 := mc.NewSession()
	r, _ := s1.Ask("draw a line plot in python")
	fmt.Printf("  Q1 -> %s\n", src(r.Hit))
	gc.Query("draw a line plot in python")
	r, _ = s1.Ask("change the color to red")
	fmt.Printf("  Q2 -> %s (cached with its chain)\n", src(r.Hit))
	gc.Query("change the color to red")

	fmt.Println("\nConversation 2: Q3 'draw a circle', then the same follow-up Q4")
	s2 := mc.NewSession()
	r, _ = s2.Ask("draw a circle")
	fmt.Printf("  Q3 -> %s\n", src(r.Hit))
	gres, _ := gc.Query("draw a circle")
	_ = gres

	// Q4: textually identical to the cached Q2 but under a different
	// parent. MeanCache must miss; the baseline false-hits.
	r, _ = s2.Ask("change the color to red")
	gres, _ = gc.Query("change the color to red")
	fmt.Printf("  Q4 'change the color to red':\n")
	fmt.Printf("    MeanCache: %-18s (context chain mismatch detected)\n", src(r.Hit))
	fmt.Printf("    GPTCache:  %-18s (FALSE HIT: returns conversation 1's answer)\n", src(gres.Hit))

	fmt.Println("\nConversation 3: repeat of conversation 1 — a legitimate contextual hit")
	s3 := mc.NewSession()
	r, _ = s3.Ask("draw a line plot in python")
	fmt.Printf("  Q1' -> %s\n", src(r.Hit))
	r, _ = s3.Ask("change the color to red")
	fmt.Printf("  Q2' -> %s (same text AND same context)\n", src(r.Hit))
}

func src(hit bool) string {
	if hit {
		return "cache hit"
	}
	return "miss -> LLM"
}
