// Federated: the paper's privacy-preserving training loop, run ONLINE
// against a live serving process — the deployment shape of §III-A rather
// than an offline simulation.
//
// An in-process cacheserve (internal/server + internal/flserve) hosts a
// fleet of tenants. Simulated users query it over HTTP and file the two
// feedback signals of the online loop: missed_dup when a paraphrase of an
// earlier question wasn't served from cache, and false_hit when a wrong
// hit comes back. The FL coordinator turns that feedback into private
// per-tenant training shards, and each POST /v1/fl/round samples a cohort,
// fine-tunes locally, aggregates weights + τ with FedAvg, commits a new
// model version, and hot-rolls it into the running tenants (re-embedding
// their caches in the background). No raw query ever leaves its tenant;
// only weights and thresholds move.
//
// Run with: go run ./examples/federated
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/flserve"
	"repro/internal/llmsim"
	"repro/internal/server"
	"repro/internal/train"
)

const (
	users          = 12
	intentsPerUser = 6
	probesPerPhase = 8
	rounds         = 3
	dupFraction    = 0.5
)

func main() {
	// --- the serving process, with the online FL coordinator enabled ---
	base := embed.NewModel(embed.AlbertSim, 1)
	swap := embed.NewSwappable(base)
	collector := flserve.NewCollector(flserve.CollectorConfig{Seed: 1})
	hooks := &flserve.LateHooks{}
	reg, err := server.NewRegistry(server.RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{
				Encoder:      swap,
				LLM:          llmsim.New(llmsim.DefaultConfig()),
				Tau:          0.83,
				TopK:         5,
				Capacity:     1024,
				FeedbackStep: 0.01,
			})
		},
		Hooks: hooks,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainCfg := train.DefaultConfig()
	trainCfg.Epochs = 2
	svc, err := flserve.New(flserve.Config{
		Registry:  reg,
		Collector: collector,
		Encoder:   swap,
		Arch:      embed.AlbertSim,
		Train:     trainCfg,
		Cohort:    4,
		MinPairs:  6,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hooks.Bind(svc)
	defer svc.Close()
	srv, err := server.New(server.Config{Registry: reg, Observer: collector})
	if err != nil {
		log.Fatal(err)
	}
	svc.Register(srv)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr()
	fmt.Printf("cacheserve with online FL listening on %s\n\n", srv.Addr())

	// --- simulated users: shared lexicon, private intents ---
	rng := rand.New(rand.NewSource(7))
	gen := dataset.NewGenerator(dataset.DefaultConfig(), rng)
	intents := make([][]dataset.Intent, users)
	warmed := make([][]string, users)
	id := 0
	for u := range intents {
		for i := 0; i < intentsPerUser; i++ {
			it := gen.NewIntent(id)
			id++
			q := gen.Realize(it)
			intents[u] = append(intents[u], it)
			warmed[u] = append(warmed[u], q)
			ask(url, u, q) // warm the tenant's cache
		}
	}

	fmt.Printf("%-10s %-18s %6s %6s %6s\n", "phase", "model", "tau", "hit%", "misses fed back")
	for phase := 0; phase <= rounds; phase++ {
		hits, asked, fedback := 0, 0, 0
		for u := range intents {
			for p := 0; p < probesPerPhase; p++ {
				var q string
				dup := rng.Float64() < dupFraction
				var dupOf string
				if dup {
					k := rng.Intn(len(intents[u]))
					q, dupOf = gen.Realize(intents[u][k]), warmed[u][k]
				} else {
					q = gen.Realize(gen.NewIntent(-1))
				}
				qr := ask(url, u, q)
				asked++
				if qr.Hit {
					hits++
				}
				switch {
				case dup && !qr.Hit:
					// The user points at the earlier question it duplicates.
					feedback(url, u, server.FeedbackMissedDup, q, dupOf)
					fedback++
				case !dup && qr.Hit:
					feedback(url, u, server.FeedbackFalseHit, q, qr.Matched)
					fedback++
				}
			}
		}
		label, version := "baseline", "(frozen)"
		if phase > 0 {
			label = fmt.Sprintf("round %d", phase)
			if rec, ok := svc.Models().Latest(); ok {
				version = rec.Version
			}
		}
		fmt.Printf("%-10s %-18s %6.2f %6.1f %6d\n",
			label, version, svc.Tau(), 100*float64(hits)/float64(asked), fedback)

		if phase < rounds {
			start := time.Now()
			rep, err := svc.RunRound()
			if err != nil {
				log.Fatalf("round: %v", err)
			}
			fmt.Printf("  -> FL round %d: cohort %d, version %s, tau %.2f, %d entries re-embedded (%v)\n",
				phase+1, rep.Cohort, rep.Version, rep.Tau, rep.Reembedded, time.Since(start).Round(time.Millisecond))
		}
	}

	fmt.Println("\nmodel lineage (GET /v1/model serves any of these):")
	for _, rec := range svc.Models().History(0) {
		fmt.Printf("  %s  round %d  tau=%.3f  cohort=%d\n", rec.Version, rec.Round, rec.Tau, rec.Cohort)
	}
	fmt.Println("no client query ever left its tenant; only weights and thresholds moved.")
}

func ask(url string, user int, q string) server.QueryResponse {
	body, _ := json.Marshal(server.QueryRequest{User: fmt.Sprintf("user-%d", user), Query: q})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		log.Fatal(err)
	}
	return qr
}

func feedback(url string, user int, kind, q, other string) {
	body, _ := json.Marshal(server.FeedbackRequest{
		User: fmt.Sprintf("user-%d", user), Kind: kind, Query: q, DuplicateOf: other,
	})
	resp, err := http.Post(url+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}
