// Federated: the privacy-preserving training loop of §III-A in miniature.
//
// Twenty clients hold disjoint private query logs (none of which ever
// leave the client). Each round the server samples four clients, ships
// the global encoder weights and threshold, the clients fine-tune locally
// (contrastive + MNRL) and search their optimal cosine threshold, and the
// server aggregates weights and thresholds with FedAvg. The global model's
// semantic-matching quality improves round over round — the dynamics of
// the paper's Figures 11–12.
//
// Run with: go run ./examples/federated
package main

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/fl"
	"repro/internal/train"
)

func main() {
	const (
		clients  = 20
		perRound = 4
		rounds   = 10
	)

	// Private data: disjoint shards of the paraphrase corpus.
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Intents = 1200
	corpus := dataset.GenerateCorpus(corpusCfg)
	shards := dataset.SplitPairs(corpus.Train, clients, rand.New(rand.NewSource(7)))

	trainCfg := train.DefaultConfig()
	trainCfg.Epochs = 2
	fleet := make([]fl.Client, clients)
	for i := range fleet {
		fleet[i] = fl.NewLocalClient(i, embed.MPNetSim, 42, shards[i], trainCfg, 0.5)
	}

	global := embed.NewModel(embed.MPNetSim, 42)
	baseline := train.Sweep(global, corpus.Val, 0.02, 1).Optimal
	fmt.Printf("untrained global model: F1=%.3f at its best threshold %.2f\n\n",
		baseline.Scores.FScore, baseline.Tau)

	srv := fl.NewServer(global, fleet, fl.ServerConfig{
		Rounds:          rounds,
		ClientsPerRound: perRound,
		Seed:            9,
		InitialTau:      0.7,
	})
	fmt.Printf("%5s  %-16s %6s %6s %6s %6s\n", "round", "sampled clients", "tau", "F1", "prec", "rec")
	err := srv.Run(func(ri fl.RoundInfo) {
		conf := train.EvaluateAt(global, corpus.Val, ri.GlobalTau)
		ids := make([]string, len(ri.Sampled))
		for i, id := range ri.Sampled {
			ids[i] = strconv.Itoa(id)
		}
		fmt.Printf("%5d  %-16s %6.2f %6.3f %6.3f %6.3f\n",
			ri.Round+1, strings.Join(ids, ","), ri.GlobalTau, conf.F1(), conf.Precision(), conf.Recall())
	})
	if err != nil {
		fmt.Println("FL error:", err)
		return
	}

	final := train.Sweep(global, corpus.Val, 0.02, 1).Optimal
	fmt.Printf("\nafter %d rounds: F1 %.3f -> %.3f, tau_global=%.2f\n",
		rounds, baseline.Scores.FScore, final.Scores.FScore, srv.Tau())
	fmt.Println("no client query ever left its device; only weights and thresholds moved.")
}
