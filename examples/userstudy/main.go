// Userstudy: the motivation study of §III-C (Figure 4).
//
// Twenty participants' ChatGPT query streams are synthesised with the
// published per-participant volumes; each participant's analysis runs
// "locally" over the raw stream and only aggregate counts are collected —
// the same privacy-preserving protocol as the paper's study. The headline:
// about 31% of queries duplicate an earlier query, which is the caching
// opportunity MeanCache exists to exploit.
//
// Run with: go run ./examples/userstudy
package main

import (
	"fmt"

	"repro/internal/dataset"
)

func main() {
	cfg := dataset.DefaultConfig()
	streams := dataset.GenerateUserStudy(cfg)

	fmt.Println("participant  queries  duplicates  ratio   bar")
	res := dataset.AnalyzeStudy(streams)
	for i := range res.Totals {
		ratio := float64(res.Duplicates[i]) / float64(res.Totals[i])
		bar := ""
		for b := 0; b < int(ratio*50); b++ {
			bar += "#"
		}
		fmt.Printf("%11d %8d %11d %5.1f%%  %s\n",
			i+1, res.Totals[i], res.Duplicates[i], 100*ratio, bar)
	}
	total, dups := 0, 0
	for i := range res.Totals {
		total += res.Totals[i]
		dups += res.Duplicates[i]
	}
	fmt.Printf("\n%d queries across 20 participants, %d duplicates\n", total, dups)
	fmt.Printf("mean per-participant duplicate ratio: %.1f%% (paper: ≈31%%)\n", 100*res.MeanDupRatio())
	fmt.Println("\nonly the aggregate counts above ever left the participants' devices;")
	fmt.Println("raw queries stayed local, as in the paper's study protocol.")
}
