// Quickstart: the minimal end-to-end MeanCache flow.
//
// A MeanCache client fronts a (simulated) LLM web service with a local
// semantic cache: the first query goes to the LLM, a semantically similar
// resubmission is served locally in milliseconds.
//
// The embedding encoder is briefly fine-tuned first and the similarity
// threshold τ is searched on validation pairs — an untrained encoder
// cannot separate paraphrases from unrelated queries, which is exactly the
// deficiency the paper's training pipeline (§III-A) exists to fix. In a
// real deployment both come from federated training (examples/federated).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/train"
)

func main() {
	// Fine-tune a compact encoder on a small paraphrase corpus and find
	// the optimal cosine threshold (a few seconds).
	fmt.Print("fine-tuning encoder... ")
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Intents = 800
	corpus := dataset.GenerateCorpus(corpusCfg)
	enc := embed.NewModel(embed.MPNetSim, 1)
	trainCfg := train.DefaultConfig()
	trainCfg.Epochs = 3
	train.NewTrainer(enc, train.NewSGD(trainCfg.LR), trainCfg).Train(corpus.Train)
	sweep := train.Sweep(enc, corpus.Val, 0.01, 0.5)
	tau := sweep.Optimal.Tau
	fmt.Printf("done (optimal tau = %.2f, F0.5 = %.2f)\n\n", tau, sweep.Optimal.Scores.FScore)

	// The LLM web service MeanCache fronts. Sleep mode makes the latency
	// difference tangible.
	llmCfg := llmsim.DefaultConfig()
	llmCfg.Sleep = true
	llm := llmsim.New(llmCfg)

	client := core.New(core.Options{
		Encoder: enc,
		LLM:     llm,
		Tau:     float32(tau),
	})

	ask := func(q string) {
		start := time.Now()
		res, err := client.Query(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		source := "LLM"
		if res.Hit {
			source = fmt.Sprintf("cache (similarity %.2f)", res.Score)
		}
		fmt.Printf("%-62q %-26s %8v\n", q, source, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("query                                                          served from                latency")
	fmt.Println("---------------------------------------------------------------------------------------------------")
	ask("how can i increase the battery life of my phone")
	ask("how do i extend the battery life of my smartphone") // paraphrase: cache hit
	ask("what is the best way to learn the french language") // unrelated: miss
	ask("how can i increase the battery life of my phone")   // resubmission: hit

	s := client.Stats()
	fmt.Printf("\n%d lookups, %d served from cache, %d LLM round trips avoided\n",
		s.Lookups, s.CacheHits, s.CacheHits)
}
