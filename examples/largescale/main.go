// Largescale: semantic search beyond user-side cache sizes.
//
// §III-B notes the semantic search must scale toward a million cached
// entries. This example indexes 100,000 PCA-compressed embeddings two
// ways — the exact parallel flat scan and the approximate IVF inverted-
// file index — and compares search latency and top-1 agreement.
//
// Run with: go run ./examples/largescale
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/vecmath"
)

func main() {
	const (
		n   = 100_000
		dim = 64 // PCA-compressed dimensionality (§III-A.4)
	)
	fmt.Printf("generating %d compressed embeddings (%d-d)...\n", n, dim)
	rng := rand.New(rand.NewSource(1))
	// Clustered geometry, as real query embeddings are: topics form lobes.
	anchors := make([][]float32, 256)
	for i := range anchors {
		anchors[i] = randUnit(rng, dim)
	}
	vecs := make([][]float32, n)
	for i := range vecs {
		v := vecmath.Clone(anchors[i%len(anchors)])
		for j := range v {
			v[j] += float32(rng.NormFloat64() * 0.25)
		}
		vecmath.Normalize(v)
		vecs[i] = v
	}

	flat := index.NewFlat(dim)
	ivf := index.NewIVF(dim, index.IVFConfig{NList: 317, NProbe: 16, Seed: 2})
	for i, v := range vecs {
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	ivf.Train()

	const probes = 200
	var flatTime, ivfTime time.Duration
	agree := 0
	for q := 0; q < probes; q++ {
		probe := vecmath.Clone(vecs[rng.Intn(n)])
		for j := range probe {
			probe[j] += float32(rng.NormFloat64() * 0.1)
		}
		vecmath.Normalize(probe)

		start := time.Now()
		exact := flat.Search(probe, 1, 0.5)
		flatTime += time.Since(start)

		start = time.Now()
		approx := ivf.Search(probe, 1, 0.5)
		ivfTime += time.Since(start)

		if len(exact) == 1 && len(approx) == 1 && exact[0].ID == approx[0].ID {
			agree++
		}
	}

	fmt.Printf("\n%-22s %14s\n", "index", "search/query")
	fmt.Printf("%-22s %14v\n", "flat (exact)", (flatTime / probes).Round(time.Microsecond))
	fmt.Printf("%-22s %14v\n", "ivf (nprobe=16)", (ivfTime / probes).Round(time.Microsecond))
	fmt.Printf("\ntop-1 agreement with exact search: %d/%d\n", agree, probes)
	fmt.Printf("speedup: %.1fx\n", float64(flatTime)/float64(ivfTime))
}

func randUnit(rng *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}
