// Largescale: semantic search beyond user-side cache sizes.
//
// §III-B notes the semantic search must scale toward a million cached
// entries. This example indexes 100,000 PCA-compressed embeddings four
// ways — the exact parallel flat scan, the IVF inverted-file index, the
// HNSW graph and its int8-quantized variant — and compares search latency
// and top-1 agreement with the exact scan.
//
// Run with: go run ./examples/largescale
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
)

func main() {
	const (
		n   = 100_000
		dim = 64 // PCA-compressed dimensionality (§III-A.4)
	)
	fmt.Printf("generating %d compressed embeddings (%d-d)...\n", n, dim)
	rng := rand.New(rand.NewSource(1))
	// Clustered geometry, as real query embeddings are: topics form lobes
	// (dataset.ClusteredVectors scales noise by 1/√dim so cluster
	// tightness matches embedding space regardless of the compression
	// dimension).
	vecs := dataset.ClusteredVectors(rng, n, 256, dim, 0.35)

	hnswCfg := index.HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 96, Seed: 2}
	hnsw8Cfg := hnswCfg
	hnsw8Cfg.Quantized = true
	indexes := []struct {
		name string
		idx  index.Index
	}{
		{"flat (exact)", index.NewFlat(dim)},
		{"ivf (nprobe=16)", index.NewIVF(dim, index.IVFConfig{NList: 317, NProbe: 16, Seed: 2})},
		{"hnsw (ef=96)", index.NewHNSW(dim, hnswCfg)},
		{"hnsw-int8 (ef=96)", index.NewHNSW(dim, hnsw8Cfg)},
	}
	for _, e := range indexes {
		start := time.Now()
		for i, v := range vecs {
			e.idx.Add(i, v)
		}
		if ivf, ok := e.idx.(*index.IVF); ok {
			ivf.Train() // re-cluster on the full corpus, not the bootstrap sample
		}
		fmt.Printf("built %-18s in %v\n", e.name, time.Since(start).Round(time.Millisecond))
	}

	const probes = 200
	times := make([]time.Duration, len(indexes))
	agree := make([]int, len(indexes))
	for q := 0; q < probes; q++ {
		probe := dataset.PerturbUnit(rng, vecs[rng.Intn(n)], 0.2)

		var exact []index.Hit
		for i, e := range indexes {
			start := time.Now()
			hits := e.idx.Search(probe, 1, 0.5)
			times[i] += time.Since(start)
			if i == 0 {
				exact = hits
				agree[0]++
				continue
			}
			// Agreement: same top-1, or both (correctly) empty.
			if len(exact) == 0 && len(hits) == 0 ||
				len(exact) == 1 && len(hits) == 1 && exact[0].ID == hits[0].ID {
				agree[i]++
			}
		}
	}

	fmt.Printf("\n%-18s %14s %10s %10s\n", "index", "search/query", "top-1", "speedup")
	for i, e := range indexes {
		fmt.Printf("%-18s %14v %7d/%d %9.1fx\n",
			e.name, (times[i] / probes).Round(time.Microsecond),
			agree[i], probes, float64(times[0])/float64(times[i]))
	}
}
