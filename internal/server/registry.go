package server

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/store"
)

// TenantFactory builds the MeanCache client for a new tenant. The serving
// layer calls it once per tenant activation (first request, or first
// request after eviction when no persisted cache exists).
type TenantFactory func(userID string) *core.Client

// Tenant is one user's serving state: their MeanCache client plus the
// conversation sessions routed to them.
type Tenant struct {
	ID     string
	Client *core.Client

	// refs counts in-flight requests holding this tenant (Registry.Get
	// takes a reference; Release drops it). Eviction skips referenced
	// tenants, so a request never mutates a cache that has already been
	// persisted and dropped.
	refs atomic.Int32

	// sessions maps session IDs to live conversations, capped at
	// maxTenantSessions with LRU drop. sessMu guards the map and the
	// clock; each session additionally carries its own mutex because
	// core.Session is single-goroutine (see the core concurrency
	// contract) while HTTP handlers are not.
	sessMu    sync.Mutex
	sessions  map[string]*tenantSession
	sessClock int64
}

// Release drops the reference taken by Registry.Get. Call it when the
// request is done with the tenant.
func (t *Tenant) Release() { t.refs.Add(-1) }

type tenantSession struct {
	mu       sync.Mutex
	sess     *core.Session
	lastUsed int64 // registry-local logical clock, under sessMu
}

// maxTenantSessions caps live conversations per tenant; the least
// recently used session is dropped when a new one would exceed it.
// Conversation *entries* stay cached — only the session's chain position
// is lost, so a revived conversation re-matches via context chains.
const maxTenantSessions = 256

// session returns the named conversation, creating it on first use.
func (t *Tenant) session(id string) *tenantSession {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	t.sessClock++
	ts, ok := t.sessions[id]
	if !ok {
		if len(t.sessions) >= maxTenantSessions {
			var victim string
			var oldest int64
			for sid, s := range t.sessions {
				if victim == "" || s.lastUsed < oldest {
					victim, oldest = sid, s.lastUsed
				}
			}
			delete(t.sessions, victim)
		}
		ts = &tenantSession{sess: t.Client.NewSession()}
		t.sessions[id] = ts
	}
	ts.lastUsed = t.sessClock
	return ts
}

// Sessions reports how many live conversations the tenant holds.
func (t *Tenant) Sessions() int {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	return len(t.sessions)
}

// TenantHooks lets an optional subsystem (the online FL coordinator)
// observe tenant lifecycle and piggyback records on tenant persistence.
// Hook methods run under the owning shard's lock: they must not call back
// into the registry and should return quickly (TenantActivated may do
// bounded per-tenant work, e.g. re-embedding a revived cache whose
// persisted model version is stale — that stalls only the one shard).
type TenantHooks interface {
	// TenantActivated fires when a tenant becomes resident. meta holds
	// the "meta/"-namespaced records from its persisted store, keyed
	// without the prefix (nil for a fresh tenant with no persisted
	// state). The "tau" key is reserved by the registry.
	TenantActivated(t *Tenant, meta map[string][]byte)
	// TenantMeta contributes extra records persisted with the tenant's
	// cache on eviction/flush, stored under "meta/<key>".
	TenantMeta(t *Tenant) map[string][]byte
}

// RegistryConfig sizes the tenant registry.
type RegistryConfig struct {
	// Shards is the number of independently locked shards. Defaults to 16.
	Shards int
	// MaxTenants bounds the number of resident tenants across all shards
	// (0 = unbounded). When a shard exceeds its share, its least recently
	// used tenant is evicted — persisted first when PersistDir is set.
	MaxTenants int
	// PersistDir, when non-empty, is where evicted tenants' caches are
	// written (one store log per tenant) and reloaded from on
	// reactivation.
	PersistDir string
	// Factory builds new tenants. Required.
	Factory TenantFactory
	// Hooks, when non-nil, observes tenant activation and contributes
	// persisted metadata.
	Hooks TenantHooks
	// Clock is the time source Drain's in-flight wait polls on and
	// eviction-retry backoff elapses against. Nil defaults to the wall
	// clock; cluster simulations inject a virtual one so drain budgets
	// elapse in virtual time.
	Clock sim.Clock
	// FS is the filesystem persistence runs on. Nil defaults to the real
	// one (store.OS); fault-injection tests inject faultfs.
	FS store.FS
	// Logf, when non-nil, receives persistence-recovery events: damaged
	// snapshots repaired at reload, quarantined snapshots, eviction
	// persist failures entering backoff.
	Logf func(format string, args ...any)
}

// Registry is the sharded tenant table: userID → Tenant, with lazy
// creation, LRU idle-tenant eviction, and optional persistence across
// evictions. All methods are safe for concurrent use; distinct shards
// never contend.
type Registry struct {
	cfg      RegistryConfig
	fs       store.FS
	logf     func(format string, args ...any)
	perShard int
	shards   []*regShard

	activations atomic.Int64
	evictions   atomic.Int64
	reloads     atomic.Int64
	evictErrors atomic.Int64
	drains      atomic.Int64
	// Persistence-recovery counters: snapshots quarantined as
	// unreadable, reloads that repaired a truncated tail, records
	// salvaged past mid-log corruption.
	quarantines          atomic.Int64
	recoveredTruncations atomic.Int64
	salvagedRecords      atomic.Int64
}

type regShard struct {
	mu      sync.Mutex
	tenants map[string]*list.Element // userID → element in lru
	lru     *list.List               // front = most recently used; values are *Tenant

	// Eviction-persist failure backoff: after a failed evict persist the
	// shard stays over its resident bound and retries no sooner than
	// evictRetryAt (exponential in evictFails), instead of hammering a
	// failing disk on every request. Guarded by mu.
	evictFails   int
	evictRetryAt time.Time
}

// Eviction-persist retry backoff bounds.
const (
	evictBackoffBase = 100 * time.Millisecond
	evictBackoffMax  = 10 * time.Second
)

// NewRegistry builds a registry.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("server: RegistryConfig.Factory is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	cfg.Clock = sim.Or(cfg.Clock)
	if cfg.FS == nil {
		cfg.FS = store.OS
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Registry{cfg: cfg, fs: cfg.FS, logf: logf, shards: make([]*regShard, cfg.Shards)}
	if cfg.MaxTenants > 0 {
		// Ceiling split so the aggregate bound is never under MaxTenants.
		r.perShard = (cfg.MaxTenants + cfg.Shards - 1) / cfg.Shards
	}
	for i := range r.shards {
		r.shards[i] = &regShard{tenants: make(map[string]*list.Element), lru: list.New()}
	}
	if cfg.PersistDir != "" {
		if err := r.fs.MkdirAll(cfg.PersistDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating persist dir: %w", err)
		}
		sweepOrphanedTemps(r.fs, cfg.PersistDir)
	}
	return r, nil
}

// sweepOrphanedTemps removes persist temp files abandoned by a crash
// between CreateTemp and rename, which would otherwise accumulate in a
// long-lived persist dir. Only stale temps go: in cluster mode the dir
// is shared, and a young temp may be a live peer's in-flight persist.
func sweepOrphanedTemps(fsys store.FS, dir string) {
	const staleAfter = time.Hour
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".cache.tmp-") {
			continue
		}
		if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleAfter {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Persistent reports whether evicted/drained tenants are persisted (a
// PersistDir is configured). Cluster handoff requires it: draining a
// tenant from a non-persistent registry would simply destroy its state.
func (r *Registry) Persistent() bool { return r.cfg.PersistDir != "" }

// ShardFor reports which shard serves userID (exported for tests and the
// stats endpoint).
func (r *Registry) ShardFor(userID string) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Get returns userID's tenant with a reference held — the caller must
// Release it when done. The tenant is activated if needed: activation
// reloads a persisted cache when one exists, otherwise calls the factory.
// Get may evict the shard's least recently used unreferenced tenant to
// stay within the resident bound. Persistence I/O (evict save, reload)
// runs under the shard lock, stalling only that shard's other users; a
// background-eviction design can lift this if it ever dominates.
func (r *Registry) Get(userID string) (*Tenant, error) {
	sh := r.shards[r.ShardFor(userID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.tenants[userID]; ok {
		sh.lru.MoveToFront(el)
		t := el.Value.(*Tenant)
		t.refs.Add(1)
		return t, nil
	}
	t, err := r.activate(userID)
	if err != nil {
		return nil, err
	}
	t.refs.Add(1)
	sh.tenants[userID] = sh.lru.PushFront(t)
	r.activations.Add(1)
	for r.perShard > 0 && sh.lru.Len() > r.perShard {
		if !sh.evictRetryAt.IsZero() && r.cfg.Clock.Now().Before(sh.evictRetryAt) {
			break // recent eviction-persist failure; retry after backoff
		}
		before := sh.lru.Len()
		if err := r.evictLocked(sh); err != nil {
			// Eviction failure (persist I/O) must not fail this request —
			// the requested tenant activated fine and its reference is
			// already held. The victim keeps its adapted state resident
			// (never dropped unpersisted) and the shard retries with
			// exponential backoff, temporarily exceeding its bound.
			r.evictErrors.Add(1)
			backoff := evictBackoffBase << min(sh.evictFails, 10)
			if backoff > evictBackoffMax {
				backoff = evictBackoffMax
			}
			sh.evictFails++
			sh.evictRetryAt = r.cfg.Clock.Now().Add(backoff)
			r.logf("server: registry: eviction persist failed (attempt %d, next retry in %v): %v",
				sh.evictFails, backoff, err)
			break
		}
		sh.evictFails = 0
		sh.evictRetryAt = time.Time{}
		if sh.lru.Len() == before {
			break // every tenant is pinned by in-flight requests
		}
	}
	return t, nil
}

// Flush persists every resident tenant's cache and τ (best effort, all
// shards), without evicting anyone. Call it on shutdown so a restart with
// the same PersistDir resumes warm; a no-op when persistence is off. The
// first error is returned after attempting every tenant.
func (r *Registry) Flush() error {
	if r.cfg.PersistDir == "" {
		return nil
	}
	var first error
	for _, sh := range r.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			t := el.Value.(*Tenant)
			if err := r.persist(t, r.persistPath(t.ID)); err != nil && first == nil {
				first = err
			}
		}
		sh.mu.Unlock()
	}
	return first
}

// ErrTenantBusy is returned by Drain when in-flight requests still pin
// the tenant after the wait budget; the caller retries on a later sweep.
var ErrTenantBusy = errors.New("server: tenant pinned by in-flight requests")

// Drain removes userID from residency, persisting its cache and τ first
// when persistence is on — the tenant-handoff path used by cluster mode
// when a ring change moves a tenant to another node. Unlike eviction it
// targets one tenant and waits (up to wait, polling) for in-flight
// references to clear rather than skipping pinned tenants; the refs check
// and removal happen under the shard lock, so no new reference can slip
// in between them (the same invariant evictLocked relies on). Returns
// whether the tenant was resident; a tenant still pinned at the deadline
// stays resident and ErrTenantBusy is returned.
func (r *Registry) Drain(userID string, wait time.Duration) (bool, error) {
	sh := r.shards[r.ShardFor(userID)]
	deadline := r.cfg.Clock.Now().Add(wait)
	for {
		sh.mu.Lock()
		el, ok := sh.tenants[userID]
		if !ok {
			sh.mu.Unlock()
			return false, nil
		}
		t := el.Value.(*Tenant)
		if t.refs.Load() == 0 {
			if path := r.persistPath(t.ID); path != "" {
				if err := r.persist(t, path); err != nil {
					sh.mu.Unlock()
					return true, err
				}
			}
			sh.lru.Remove(el)
			delete(sh.tenants, t.ID)
			sh.mu.Unlock()
			r.drains.Add(1)
			return true, nil
		}
		sh.mu.Unlock()
		if !r.cfg.Clock.Now().Before(deadline) {
			return true, ErrTenantBusy
		}
		r.cfg.Clock.Sleep(time.Millisecond)
	}
}

// activate builds a tenant, reviving its persisted cache when present.
// A snapshot that cannot be reloaded is quarantined and the tenant is
// served cold: one tenant's corrupt file must cost that tenant its cache
// warmth, not its availability.
func (r *Registry) activate(userID string) (*Tenant, error) {
	client := r.cfg.Factory(userID)
	var meta map[string][]byte
	if path := r.persistPath(userID); path != "" {
		if _, err := r.fs.Stat(path); err == nil {
			revived, m, err := r.reload(userID, client)
			if err != nil {
				r.quarantine(userID, path, err)
			} else {
				client, meta = revived, m
				r.reloads.Add(1)
			}
		}
	}
	t := &Tenant{ID: userID, Client: client, sessions: make(map[string]*tenantSession)}
	if r.cfg.Hooks != nil {
		r.cfg.Hooks.TenantActivated(t, meta)
	}
	return t, nil
}

// reload rebuilds fresh's cache contents — and the persisted
// feedback-adapted τ — from the tenant's persisted store, returning the
// revived client plus the store's "meta/" records (for lifecycle hooks).
// The factory-built client supplies everything else (encoder, LLM,
// context threshold).
func (r *Registry) reload(userID string, fresh *core.Client) (*core.Client, map[string][]byte, error) {
	st, err := store.OpenFS(r.fs, r.persistPath(userID))
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening persisted cache for %q: %w", userID, err)
	}
	defer st.Close()
	if rep := st.Report(); rep.Dirty() {
		if rep.TailTruncated > 0 {
			r.recoveredTruncations.Add(1)
		}
		r.salvagedRecords.Add(int64(rep.SalvagedRecords))
		r.logf("server: registry: recovered damaged cache for %q: %d tail bytes truncated, %d corrupt regions (%d bytes) skipped, %d records salvaged",
			userID, rep.TailTruncated, rep.CorruptRegions, rep.CorruptSkipped, rep.SalvagedRecords)
	}
	opts := fresh.Options()
	dim, capacity := fresh.Cache().Dim(), fresh.Cache().Capacity()
	var cc *cache.Cache
	if opts.IndexFactory != nil {
		cc, err = cache.LoadFromWithIndex(st, dim, capacity, opts.Policy, opts.IndexFactory(dim))
	} else {
		cc, err = cache.LoadFrom(st, dim, capacity, opts.Policy)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("server: reloading cache for %q: %w", userID, err)
	}
	if raw, err := st.Get(tauKey); err == nil && len(raw) == 4 {
		opts.Tau = math.Float32frombits(binary.LittleEndian.Uint32(raw))
	}
	meta := make(map[string][]byte)
	for _, key := range st.Keys() {
		if name, ok := strings.CutPrefix(key, metaPrefix); ok {
			if raw, err := st.Get(key); err == nil {
				meta[name] = raw
			}
		}
	}
	return core.NewWithCache(opts, cc), meta, nil
}

// quarantine moves a snapshot that failed to reload out of the way
// (path → path.quarantine) so the next activation starts cold instead
// of tripping over the same corrupt file, and the bytes stay on disk
// for forensics. Best effort: if even the rename fails, the tenant
// still activates cold and the next activation retries.
func (r *Registry) quarantine(userID, path string, cause error) {
	qpath := path + ".quarantine"
	r.fs.Remove(qpath)
	if err := r.fs.Rename(path, qpath); err != nil {
		r.logf("server: registry: snapshot for %q unreadable (%v) and quarantine rename failed: %v", userID, cause, err)
		return
	}
	r.fs.SyncDir(filepath.Dir(path))
	r.quarantines.Add(1)
	r.logf("server: registry: quarantined unreadable snapshot for %q to %s: %v", userID, qpath, cause)
}

// evictLocked removes the shard's least recently used tenant with no
// in-flight references, persisting its cache (and live τ) first when
// persistence is on. Tenants pinned by in-flight requests are skipped —
// evicting them would persist a snapshot those requests then mutate
// invisibly. If every tenant is busy the shard temporarily exceeds its
// bound. Callers hold sh.mu.
func (r *Registry) evictLocked(sh *regShard) error {
	var el *list.Element
	for cand := sh.lru.Back(); cand != nil; cand = cand.Prev() {
		if cand.Value.(*Tenant).refs.Load() == 0 {
			el = cand
			break
		}
	}
	if el == nil {
		return nil
	}
	t := el.Value.(*Tenant)
	if path := r.persistPath(t.ID); path != "" {
		if err := r.persist(t, path); err != nil {
			return err
		}
	}
	sh.lru.Remove(el)
	delete(sh.tenants, t.ID)
	r.evictions.Add(1)
	return nil
}

// metaPrefix namespaces tenant metadata records within a persisted store,
// alongside the cache's "entry/" records. The registry's own τ record and
// hook-contributed records both live here.
const metaPrefix = "meta/"

// tauKey stores the tenant's feedback-adapted threshold next to the cache
// entries, so eviction does not reset what the user taught the system.
const tauKey = metaPrefix + "tau"

// persist writes t's full state — cache entries, live τ, hook metadata —
// to a fresh store at a unique temp path, then renames it over the
// tenant's store log atomically. Writers therefore race whole files, not
// interleaved appends: in cluster mode two nodes can transiently persist
// the same tenant through shared storage (a degraded local-fallback serve
// racing the owner's handoff), and last-writer-wins with a consistent
// store is the invariant revival depends on. A fresh store is compact by
// construction, so repeated evict/revive cycles do not grow the log.
func (r *Registry) persist(t *Tenant, path string) error {
	dir, base := filepath.Split(path)
	tmp, tmpf, err := store.CreateTemp(r.fs, dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: creating temp store for %q: %w", t.ID, err)
	}
	tmpf.Close()
	st, err := store.OpenFS(r.fs, tmp)
	if err != nil {
		r.fs.Remove(tmp)
		return fmt.Errorf("server: opening persist store for %q: %w", t.ID, err)
	}
	err = t.Client.Cache().SaveTo(st)
	if err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(t.Client.Tau()))
		err = st.Put(tauKey, buf[:])
	}
	if err == nil && r.cfg.Hooks != nil {
		for name, val := range r.cfg.Hooks.TenantMeta(t) {
			if err = st.Put(metaPrefix+name, val); err != nil {
				break
			}
		}
	}
	if err == nil {
		// Data must be durable before the rename destroys the previous
		// good store, or an OS crash could leave the tenant's path
		// pointing at a truncated file.
		err = st.Sync()
	}
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = r.fs.Rename(tmp, path)
	}
	if err != nil {
		r.fs.Remove(tmp)
		return fmt.Errorf("server: persisting evicted tenant %q: %w", t.ID, err)
	}
	// The rename must itself be durable before the caller is allowed to
	// drop the tenant: without the directory fsync an OS crash may
	// resurrect the previous (stale or absent) snapshot, which for a
	// drain would mean releasing ownership of state that never landed.
	if err := r.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("server: fsyncing persist dir for %q: %w", t.ID, err)
	}
	return nil
}

// persistPath is the tenant's store log path, or "" when persistence is
// off. The user ID is hex-encoded so arbitrary IDs map to safe, unique
// file names.
func (r *Registry) persistPath(userID string) string {
	if r.cfg.PersistDir == "" {
		return ""
	}
	return filepath.Join(r.cfg.PersistDir, hex.EncodeToString([]byte(userID))+".cache")
}

// Resident reports the number of currently resident tenants.
func (r *Registry) Resident() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// RegistryStats snapshots registry activity.
type RegistryStats struct {
	Shards      int   `json:"shards"`
	Resident    int   `json:"resident_tenants"`
	Activations int64 `json:"activations"`
	Evictions   int64 `json:"evictions"`
	Reloads     int64 `json:"reloads"`
	EvictErrors int64 `json:"evict_errors,omitempty"`
	Drains      int64 `json:"drains,omitempty"`
	// Persistence-recovery activity (see Registry counter docs).
	Quarantines          int64 `json:"quarantines,omitempty"`
	RecoveredTruncations int64 `json:"recovered_truncations,omitempty"`
	SalvagedRecords      int64 `json:"salvaged_records,omitempty"`
}

// Stats snapshots registry counters.
func (r *Registry) Stats() RegistryStats {
	return RegistryStats{
		Shards:      len(r.shards),
		Resident:    r.Resident(),
		Activations: r.activations.Load(),
		Evictions:   r.evictions.Load(),
		Reloads:     r.reloads.Load(),
		EvictErrors: r.evictErrors.Load(),
		Drains:      r.drains.Load(),

		Quarantines:          r.quarantines.Load(),
		RecoveredTruncations: r.recoveredTruncations.Load(),
		SalvagedRecords:      r.salvagedRecords.Load(),
	}
}

// IDs returns the user IDs of every resident tenant. Unlike Range, the
// caller holds no locks afterwards, so it may Get/Release each tenant —
// the pattern the FL rollout uses to pin tenants while re-embedding.
func (r *Registry) IDs() []string {
	var ids []string
	for _, sh := range r.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ids = append(ids, el.Value.(*Tenant).ID)
		}
		sh.mu.Unlock()
	}
	return ids
}

// Range calls fn for every resident tenant (shard by shard, under each
// shard's lock — fn must not call back into the registry).
func (r *Registry) Range(fn func(*Tenant)) {
	for _, sh := range r.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			fn(el.Value.(*Tenant))
		}
		sh.mu.Unlock()
	}
}
