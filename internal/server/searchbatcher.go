package server

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/vecmath"
)

// SearchBatcher coalesces concurrent similarity searches against the SAME
// tenant cache into single multi-probe index passes — the per-tenant
// counterpart of the cross-tenant encode Batcher. When a hot tenant takes
// a burst of queries, the requests that land inside one dispatch window
// share a single cache.FindSimilarMultiAppend call: one lock acquisition
// and one slab scan sweep (on tiers implementing index.MultiSearcher)
// instead of N independent ones. Results are bit-identical to the direct
// path — same matches, same scores, same order.
//
// SearchBatcher implements cache.Searcher, so it plugs into
// core.Options.Searcher. Requests for different caches (or different
// k/tau) that land in the same window are split into per-cache groups.
// The dispatcher goroutine only partitions: a request alone in its group
// is handed back to its caller unexecuted (the caller runs the direct
// FindSimilarAppend itself), and a coalesced group is handed to its
// first member — the leader — which runs the multi-probe pass on its own
// goroutine and fans the results out to the other members. Search work
// therefore never runs on the dispatcher, so a slow pass for one hot
// tenant cannot stall unrelated tenants' searches behind it.
//
// The default MaxWait of 0 selects drain mode: the dispatcher never
// lingers, so batching adds no latency and coalescing happens exactly
// when requests genuinely overlap. A positive MaxWait trades tail latency
// for larger batches, which only pays off when searches cost much more
// than the wait (very large tenants).
//
// It is safe for unrestricted concurrent use. Close stops the dispatcher;
// searches during and after Close run directly.
type SearchBatcher struct {
	core    *batchCore[searchReq]
	replies chan chan searchResp
	groups  sync.Pool // *searchGroup
}

type searchReq struct {
	c     *cache.Cache
	emb   []float32
	k     int
	tau   float32
	dst   []cache.Match // caller's buffer; matches are appended to it
	reply chan searchResp
}

type searchResp struct {
	matches []cache.Match
	// direct tells the caller its request was not coalesced and it should
	// run the search itself (matches is meaningless).
	direct bool
	// group makes the caller the group's leader: it must run the coalesced
	// pass via lead. The dispatcher's gather buffer is reused, so the
	// group carries its own copy of the requests.
	group *searchGroup
}

// searchGroup is one coalesced group in flight plus the leader-owned
// scratch for executing it: the packed probe matrix and the per-probe
// destination table. Pooled, since concurrent leaders each need one.
type searchGroup struct {
	reqs      []searchReq
	probeData []float32
	probes    vecmath.Matrix
	dsts      [][]cache.Match
}

// NewSearchBatcher starts a search batcher. MaxBatch defaults to 32;
// MaxWait defaults to 0 (drain mode — see the type comment).
func NewSearchBatcher(cfg BatcherConfig) *SearchBatcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	s := &SearchBatcher{
		replies: make(chan chan searchResp, cfg.MaxBatch*4),
	}
	s.core = newBatchCore[searchReq](cfg, s.run)
	return s
}

// FindSimilar implements cache.Searcher: the probe either joins a
// coalesced multi-probe pass or (when alone in its window, or when the
// batcher is closed) runs directly. emb must stay valid until the call
// returns; matches are appended to dst exactly as FindSimilarAppend
// would.
func (s *SearchBatcher) FindSimilar(c *cache.Cache, emb []float32, k int, tau float32, dst []cache.Match) []cache.Match {
	req := searchReq{c: c, emb: emb, k: k, tau: tau, dst: dst, reply: s.getReply()}
	if !s.core.submit(req) {
		s.putReply(req.reply)
		return c.FindSimilarAppend(emb, k, tau, dst)
	}
	resp := <-req.reply
	s.putReply(req.reply)
	switch {
	case resp.group != nil:
		return s.lead(resp.group)
	case resp.direct:
		return c.FindSimilarAppend(emb, k, tau, dst)
	default:
		return resp.matches
	}
}

func (s *SearchBatcher) getReply() chan searchResp {
	select {
	case ch := <-s.replies:
		return ch
	default:
		return make(chan searchResp, 1)
	}
}

func (s *SearchBatcher) putReply(ch chan searchResp) {
	select {
	case s.replies <- ch:
	default:
	}
}

func (s *SearchBatcher) getGroup() *searchGroup {
	if g, ok := s.groups.Get().(*searchGroup); ok {
		return g
	}
	return &searchGroup{}
}

// Close stops the dispatcher after draining in-flight requests.
func (s *SearchBatcher) Close() { s.core.close() }

// Stats reports coalescing counters. Batches counts index passes: each
// coalesced group is one pass, and each handed-back singleton counts as
// the one direct pass its caller runs.
func (s *SearchBatcher) Stats() BatcherStats { return s.core.stats() }

// QueueDepth reports searches currently waiting for the dispatcher.
func (s *SearchBatcher) QueueDepth() int { return s.core.queueDepth() }

// OnBatch installs fn to observe each group's size on the dispatcher
// goroutine (the metrics hook). Semantics match Batcher.OnBatch.
func (s *SearchBatcher) OnBatch(fn func(size int)) { s.core.setOnBatch(fn) }

// run splits one gathered window into per-(cache, k, tau) groups and
// hands each off. Group peeling partitions in place: requests matching
// the head are swapped to the front, dispatched, and the tail re-peeled.
func (s *SearchBatcher) run(batch []searchReq) {
	for len(batch) > 0 {
		head := batch[0]
		n := 1
		for i := 1; i < len(batch); i++ {
			if r := batch[i]; r.c == head.c && r.k == head.k && r.tau == head.tau {
				batch[n], batch[i] = batch[i], batch[n]
				n++
			}
		}
		s.dispatchGroup(batch[:n])
		batch = batch[n:]
	}
}

// dispatchGroup accounts for one group and hands the work away: back to
// the caller for singletons, to the first member (the leader) for
// coalesced groups. No search runs on the dispatcher goroutine.
func (s *SearchBatcher) dispatchGroup(group []searchReq) {
	s.core.batches.Add(1)
	s.core.fireOnBatch(len(group))
	if len(group) == 1 {
		group[0].reply <- searchResp{direct: true}
		return
	}
	s.core.batched.Add(int64(len(group)))
	g := s.getGroup()
	g.reqs = append(g.reqs[:0], group...)
	group[0].reply <- searchResp{group: g}
}

// lead executes one coalesced group on the leader's goroutine: pack the
// probes, run the single multi-probe pass, fan results out to the other
// members, and return the leader's own matches.
func (s *SearchBatcher) lead(g *searchGroup) []cache.Match {
	reqs := g.reqs
	m, dim := len(reqs), reqs[0].c.Dim()
	if need := m * dim; cap(g.probeData) < need {
		g.probeData = make([]float32, 0, need+need/2)
	}
	data := g.probeData[:m*dim]
	for i, r := range reqs {
		copy(data[i*dim:(i+1)*dim], r.emb)
	}
	g.probes = vecmath.Matrix{Rows: m, Cols: dim, Data: data}
	for len(g.dsts) < m {
		g.dsts = append(g.dsts, nil)
	}
	dsts := g.dsts[:m]
	for i, r := range reqs {
		dsts[i] = r.dst
	}
	reqs[0].c.FindSimilarMultiAppend(&g.probes, reqs[0].k, reqs[0].tau, dsts)
	mine := dsts[0]
	for i := 1; i < m; i++ {
		reqs[i].reply <- searchResp{matches: dsts[i]}
	}
	clear(dsts)   // don't pin the callers' buffers
	clear(g.reqs) // nor their embeddings and caches
	s.groups.Put(g)
	return mine
}
