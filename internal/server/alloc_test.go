package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
)

type instantAllocLLM struct{}

func (instantAllocLLM) Query(q string) (string, time.Duration) { return "r", 0 }

type nopBody struct{ *bytes.Reader }

func (nopBody) Close() error { return nil }

type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }

// TestQueryHitAllocationBudget is the allocation-regression gate for the
// serving hit path: decode → tenant → encode → pruned search → respond,
// measured through the real handler with the HTTP connection machinery
// factored out. The pooled lifecycle lands this in single digits
// (measured 10 on the reference machine; the pre-pooling path was 21);
// the bound leaves slack for pool-emptying GCs without letting a
// per-request allocation regression hide.
func TestQueryHitAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	m := embed.NewModel(embed.MPNetSim, 1)
	reg, err := NewRegistry(RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: instantAllocLLM{}, Tau: 0.8, TopK: 5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	body, _ := json.Marshal(QueryRequest{User: "u", Query: "warm question"})
	rdr := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/query", rdr)
	req.Header.Set("Content-Type", "application/json")
	rc := nopBody{rdr}
	w := &discardWriter{h: make(http.Header)}
	serve := func() {
		rdr.Seek(0, 0)
		req.Body = rc
		h.ServeHTTP(w, req)
	}
	serve() // warm: populates the cache (miss) …
	serve() // … and the buffer pools (hit)
	if n := testing.AllocsPerRun(200, serve); n > 14 {
		t.Fatalf("server hit path allocates %v per request, budget 14", n)
	}
}
