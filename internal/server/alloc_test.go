package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/resilience"
)

type instantAllocLLM struct{}

func (instantAllocLLM) Query(q string) (string, time.Duration) { return "r", 0 }

type nopBody struct{ *bytes.Reader }

func (nopBody) Close() error { return nil }

type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }

// TestQueryHitAllocationBudget is the allocation-regression gate for the
// serving hit path: decode → tenant → encode → pruned search → respond,
// measured through the real handler with the HTTP connection machinery
// factored out. The pooled lifecycle lands this in single digits
// (measured 10 on the reference machine; the pre-pooling path was 21);
// the bound leaves slack for pool-emptying GCs without letting a
// per-request allocation regression hide.
func TestQueryHitAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	m := embed.NewModel(embed.MPNetSim, 1)
	reg, err := NewRegistry(RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: instantAllocLLM{}, Tau: 0.8, TopK: 5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	body, _ := json.Marshal(QueryRequest{User: "u", Query: "warm question"})
	rdr := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/query", rdr)
	req.Header.Set("Content-Type", "application/json")
	rc := nopBody{rdr}
	w := &discardWriter{h: make(http.Header)}
	serve := func() {
		rdr.Seek(0, 0)
		req.Body = rc
		h.ServeHTTP(w, req)
	}
	serve() // warm: populates the cache (miss) …
	serve() // … and the buffer pools (hit)
	if n := testing.AllocsPerRun(200, serve); n > 14 {
		t.Fatalf("server hit path allocates %v per request, budget 14", n)
	}
}

// newAllocServer assembles the hit-path fixture used by the alloc gates:
// a one-tenant registry behind a Server built with cfg's observability
// fields, warmed with two requests (one miss to fill, one hit to warm
// the pools), returning the serve closure to measure.
func newAllocServer(t *testing.T, metrics *obs.Registry, tracer *obs.Tracer) func() {
	t.Helper()
	return newAllocServerGov(t, metrics, tracer, nil)
}

// newAllocServerGov is newAllocServer with an admission governor.
func newAllocServerGov(t *testing.T, metrics *obs.Registry, tracer *obs.Tracer, gov *resilience.Governor) func() {
	t.Helper()
	m := embed.NewModel(embed.MPNetSim, 1)
	reg, err := NewRegistry(RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: instantAllocLLM{}, Tau: 0.8, TopK: 5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg, Metrics: metrics, Tracer: tracer, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	body, _ := json.Marshal(QueryRequest{User: "u", Query: "warm question"})
	rdr := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/query", rdr)
	req.Header.Set("Content-Type", "application/json")
	rc := nopBody{rdr}
	w := &discardWriter{h: make(http.Header)}
	serve := func() {
		rdr.Seek(0, 0)
		req.Body = rc
		h.ServeHTTP(w, req)
	}
	serve()
	serve()
	return serve
}

// TestQueryHitAllocationBudgetTracedUnsampled proves the PR 5 budget
// holds with the full observability stack on but the request losing the
// head-sampling draw: metrics histograms record and a pooled trace is
// taken and recycled, none of which may allocate.
func TestQueryHitAllocationBudgetTracedUnsampled(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	tracer := obs.NewTracer(obs.TracerConfig{
		Node:       "alloc-test",
		SampleRate: 1e-9, // effectively never head-sampled
	})
	serve := newAllocServer(t, obs.NewRegistry(), tracer)
	if n := testing.AllocsPerRun(200, serve); n > 14 {
		t.Fatalf("traced-unsampled hit path allocates %v per request, budget 14", n)
	}
}

// TestQueryHitAllocationBudgetSampled is the same gate with every
// request sampled and published — the worst-case tracing path the
// ServerQueryHitTraced benchmark row pins.
func TestQueryHitAllocationBudgetSampled(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	tracer := obs.NewTracer(obs.TracerConfig{
		Node:       "alloc-test",
		SampleRate: 1,
		RingSize:   8,
	})
	serve := newAllocServer(t, obs.NewRegistry(), tracer)
	for i := 0; i < 32; i++ {
		serve() // fill the trace pool past the ring size
	}
	if n := testing.AllocsPerRun(200, serve); n > 14 {
		t.Fatalf("traced-sampled hit path allocates %v per request, budget 14", n)
	}
}

// TestQueryHitAdmissionZeroExtra proves the governor's front-door quota
// check adds exactly zero allocations to the PR 5 hit-path budget: an
// admitted request on a tracked tenant costs a shard map lookup plus
// token arithmetic, nothing heap-visible.
func TestQueryHitAdmissionZeroExtra(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	baseline := newAllocServer(t, nil, nil)
	governed := newAllocServerGov(t, nil, nil, resilience.NewGovernor(resilience.GovernorConfig{
		Quota:   resilience.QuotaConfig{Rate: 1e9, Burst: 1e9},
		Limiter: resilience.LimiterConfig{MinLimit: 1, MaxLimit: 64, InitialLimit: 64},
		Breaker: resilience.BreakerConfig{Window: 64},
	}))
	nBase := testing.AllocsPerRun(500, baseline)
	nGov := testing.AllocsPerRun(500, governed)
	if nGov != nBase {
		t.Fatalf("governed hit path allocates %v per request, baseline %v — admission must add 0", nGov, nBase)
	}
}

// TestQueryHitTracingDisabledZeroExtra proves -trace-sample 0 costs
// exactly nothing: a disabled tracer is a nil pointer, so the hit path's
// allocation count must equal the no-observability baseline.
func TestQueryHitTracingDisabledZeroExtra(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	baseline := newAllocServer(t, nil, nil)
	disabled := newAllocServer(t, nil, obs.NewTracer(obs.TracerConfig{SampleRate: 0}))
	nBase := testing.AllocsPerRun(500, baseline)
	nOff := testing.AllocsPerRun(500, disabled)
	if nOff != nBase {
		t.Fatalf("hit path with -trace-sample 0 allocates %v per request, baseline %v — want identical", nOff, nBase)
	}
}
