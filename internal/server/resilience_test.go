package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

// newResilienceServer assembles a serving stack with a governor and a
// guard-wrapped upstream whose failure mode the test controls.
func newResilienceServer(t *testing.T, gcfg resilience.GovernorConfig, up *scriptedUpstream, timeout time.Duration) (*resilience.Governor, *httptest.Server) {
	t.Helper()
	gov := resilience.NewGovernor(gcfg)
	guard := resilience.NewGuard(up, gov, timeout)
	enc := &stubEncoder{dim: 32}
	reg, err := NewRegistry(RegistryConfig{
		Shards: 2,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder:          enc,
				LLM:              guard,
				Tau:              0.9,
				TopK:             4,
				DegradedTauDelta: 0.2,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return gov, ts
}

// scriptedUpstream fails while down is true, answers otherwise.
type scriptedUpstream struct {
	down  bool
	calls int
}

func (s *scriptedUpstream) QueryContext(ctx context.Context, q string) (string, time.Duration, error) {
	s.calls++
	if s.down {
		return "", time.Millisecond, context.DeadlineExceeded
	}
	return "up: " + q, time.Millisecond, nil
}

// postRaw posts body and returns the raw response for status/header
// assertions.
func postRaw(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	return er
}

// TestServerQuotaRejects429: an over-quota tenant gets 429 with the
// structured body and a Retry-After header; other tenants are untouched.
func TestServerQuotaRejects429(t *testing.T) {
	_, ts := newResilienceServer(t, resilience.GovernorConfig{
		Quota: resilience.QuotaConfig{Rate: 0.5, Burst: 2},
	}, &scriptedUpstream{}, 0)

	q := QueryRequest{User: "greedy", Query: "q one"}
	for i := 0; i < 2; i++ {
		resp := postRaw(t, ts.URL+"/v1/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-quota request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := postRaw(t, ts.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	er := decodeError(t, resp)
	if er.Code != resilience.ReasonQuota {
		t.Fatalf("error code = %q, want %q", er.Code, resilience.ReasonQuota)
	}
	if er.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", er.RetryAfterMS)
	}

	// A different tenant is unaffected.
	other := postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "quiet", Query: "hello"})
	if other.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d", other.StatusCode)
	}
}

// TestServerBreakerDegradedServing: with the breaker open, cached
// near-matches are served degraded; uncached queries shed with 503 +
// Retry-After; after the upstream heals and the cool-off elapses, probes
// close the breaker and misses flow again.
func TestServerBreakerDegradedServing(t *testing.T) {
	up := &scriptedUpstream{}
	gov, ts := newResilienceServer(t, resilience.GovernorConfig{
		Breaker: resilience.BreakerConfig{
			// Ratio 0.6: the seeded success plus one failure (1/2 = 0.5)
			// stays closed; the second failure (2/3) trips.
			Window: 4, MinSamples: 2, FailureRatio: 0.6,
			OpenFor: 200 * time.Millisecond, HalfOpenProbes: 1,
		},
	}, up, 0)

	// Healthy: seed the cache.
	seed := QueryRequest{User: "u", Query: "what is meancache"}
	if resp := postRaw(t, ts.URL+"/v1/query", seed); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}

	// Upstream dies: two failed misses trip the breaker.
	up.down = true
	for i := 0; i < 2; i++ {
		resp := postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "u", Query: "novel " + strconv.Itoa(i)})
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("failing miss %d: status %d, want 502", i, resp.StatusCode)
		}
		er := decodeError(t, resp)
		if er.Code != "upstream_error" {
			t.Fatalf("failing miss code = %q", er.Code)
		}
	}
	if gov.Breaker.State() != resilience.StateOpen {
		t.Fatalf("breaker not open after failures")
	}

	// Open breaker, cached query: exact match is a plain hit.
	resp := postRaw(t, ts.URL+"/v1/query", seed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached query while open: status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Hit {
		t.Fatalf("cached query while open missed")
	}

	// Open breaker, uncached query: shed with 503 + Retry-After and the
	// breaker_open code (nothing within even the relaxed threshold).
	resp = postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "u", Query: "completely different"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached while open: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if er := decodeError(t, resp); er.Code != resilience.ReasonUpstreamOpen {
		t.Fatalf("shed code = %q, want %q", er.Code, resilience.ReasonUpstreamOpen)
	}
	calls := up.calls

	// Upstream heals; after the cool-off one probe closes the breaker.
	up.down = false
	time.Sleep(250 * time.Millisecond)
	resp = postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "u", Query: "post recovery query"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe query: status %d", resp.StatusCode)
	}
	if up.calls != calls+1 {
		t.Fatalf("probe did not reach upstream (calls %d -> %d)", calls, up.calls)
	}
	if gov.Breaker.State() != resilience.StateClosed {
		t.Fatalf("breaker did not close after successful probe: %s",
			resilience.StateName(gov.Breaker.State()))
	}
}

// TestServerStatsReportsResilience: /v1/stats carries the governor block.
func TestServerStatsReportsResilience(t *testing.T) {
	_, ts := newResilienceServer(t, resilience.GovernorConfig{
		Quota:             resilience.QuotaConfig{Rate: 100, Burst: 100},
		Limiter:           resilience.LimiterConfig{MinLimit: 1, MaxLimit: 8, InitialLimit: 4},
		Breaker:           resilience.BreakerConfig{Window: 8},
		MaintenanceWeight: 2,
	}, &scriptedUpstream{}, time.Second)

	postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "u", Query: "warm up"})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r := stats.Resilience
	if r == nil {
		t.Fatalf("stats missing resilience block")
	}
	if r.Quota == nil || r.Quota.Allowed == 0 {
		t.Fatalf("quota stats = %+v, want allowed > 0", r.Quota)
	}
	if r.Limiter == nil || r.Limiter.Limit != 4 {
		t.Fatalf("limiter stats = %+v, want limit 4", r.Limiter)
	}
	if r.Breaker == nil || r.Breaker.State != "closed" {
		t.Fatalf("breaker stats = %+v, want closed", r.Breaker)
	}
	if r.Maintenance == nil || r.Maintenance.Capacity != 2 {
		t.Fatalf("maintenance stats = %+v, want capacity 2", r.Maintenance)
	}
}

// TestServerStructuredErrors: every failure path returns the structured
// JSON body, not plain text.
func TestServerStructuredErrors(t *testing.T) {
	_, ts := newResilienceServer(t, resilience.GovernorConfig{}, &scriptedUpstream{}, 0)
	resp := postRaw(t, ts.URL+"/v1/query", QueryRequest{User: "", Query: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	er := decodeError(t, resp)
	if er.Code != "bad_request" || er.Error == "" {
		t.Fatalf("error body = %+v", er)
	}
}
