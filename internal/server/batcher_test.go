package server

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vecmath"
)

// stubEncoder is a deterministic test encoder: the embedding of a text is
// a unit vector derived from its hash, so equal texts match at cosine 1
// and distinct texts (almost surely) do not. It counts calls so tests can
// observe coalescing, and can simulate per-call latency.
type stubEncoder struct {
	dim        int
	delay      time.Duration
	encodes    atomic.Int64
	batchCalls atomic.Int64
	batchSizes atomic.Int64
}

func (e *stubEncoder) embed(text string) []float32 {
	h := fnv.New64a()
	h.Write([]byte(text))
	sum := h.Sum64()
	v := make([]float32, e.dim)
	i := int(sum % uint64(e.dim))
	j := int((sum / uint64(e.dim)) % uint64(e.dim))
	v[i] += 0.8
	v[j] += 0.6
	vecmath.Normalize(v)
	return v
}

func (e *stubEncoder) Encode(text string) []float32 {
	e.encodes.Add(1)
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	return e.embed(text)
}

func (e *stubEncoder) EncodeBatch(texts []string) *vecmath.Matrix {
	e.batchCalls.Add(1)
	e.batchSizes.Add(int64(len(texts)))
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	out := vecmath.NewMatrix(len(texts), e.dim)
	for i, t := range texts {
		copy(out.Row(i), e.embed(t))
	}
	return out
}

func (e *stubEncoder) Dim() int     { return e.dim }
func (e *stubEncoder) Name() string { return "stub" }

func TestBatcherMatchesDirectEncode(t *testing.T) {
	enc := &stubEncoder{dim: 16}
	b := NewBatcher(enc, BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	defer b.Close()
	for _, text := range []string{"alpha", "beta", "gamma", "alpha"} {
		got := b.Encode(text)
		want := enc.embed(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Encode(%q)[%d] = %v, want %v", text, i, got[i], want[i])
			}
		}
	}
	if b.Dim() != 16 {
		t.Errorf("Dim() = %d, want 16", b.Dim())
	}
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	// The dispatcher lingers MaxWait after the first request, so a burst
	// launched together must land in far fewer dispatches than requests.
	enc := &stubEncoder{dim: 16, delay: 200 * time.Microsecond}
	b := NewBatcher(enc, BatcherConfig{MaxBatch: 64, MaxWait: 50 * time.Millisecond})
	defer b.Close()

	const n = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			text := []string{"red", "green", "blue", "cyan"}[i%4]
			got := b.Encode(text)
			if len(got) != 16 {
				t.Errorf("Encode returned %d dims, want 16", len(got))
			}
		}(i)
	}
	close(start)
	wg.Wait()

	st := b.Stats()
	if st.Requests != n {
		t.Fatalf("Requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= n {
		t.Errorf("Batches = %d: no coalescing happened across %d concurrent requests", st.Batches, n)
	}
	if st.Coalesced == 0 {
		t.Error("Coalesced = 0: expected at least one multi-request batch")
	}
	if calls := enc.batchCalls.Load(); calls == 0 {
		t.Error("underlying EncodeBatch was never used for a multi-request batch")
	}
}

func TestBatcherEncodeAfterClose(t *testing.T) {
	enc := &stubEncoder{dim: 8}
	b := NewBatcher(enc, BatcherConfig{})
	b.Close()
	got := b.Encode("after close")
	want := enc.embed("after close")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-Close Encode mismatch at %d", i)
		}
	}
}

// TestBatcherSingleRequestNotStranded pins the no-stranding guarantee: a
// lone request with a huge MaxBatch must come back once MaxWait expires,
// not wait for company that never arrives. (This is the classic flusher
// wake-race failure mode in timer-based batchers; the channel-based
// dispatcher starts its timer only after receiving the request, so the
// race cannot happen — this test keeps it that way.)
func TestBatcherSingleRequestNotStranded(t *testing.T) {
	enc := &stubEncoder{dim: 8}
	b := NewBatcher(enc, BatcherConfig{MaxBatch: 1024, MaxWait: 5 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	got := b.Encode("lonely")
	elapsed := time.Since(start)
	if len(got) != 8 {
		t.Fatalf("Encode returned %d dims, want 8", len(got))
	}
	// Generous bound: MaxWait is 5ms; a stranded request would block until
	// the next Encode (forever, here).
	if elapsed > 2*time.Second {
		t.Fatalf("single request took %v: stranded past MaxWait", elapsed)
	}
}

// TestBatcherCloseReleasesGatheringBatch pins the Close-drains guarantee
// from the other side: a request already gathering under an effectively
// infinite MaxWait must be released promptly when Close lands, with the
// correct result — Close's channel close aborts the gather.
func TestBatcherCloseReleasesGatheringBatch(t *testing.T) {
	enc := &stubEncoder{dim: 8}
	b := NewBatcher(enc, BatcherConfig{MaxBatch: 1024, MaxWait: time.Hour})
	done := make(chan []float32, 1)
	go func() { done <- b.Encode("in flight") }()
	// Wait for the request to reach the dispatcher's gather loop.
	for i := 0; b.QueueDepth() > 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	b.Close()
	select {
	case got := <-done:
		want := enc.embed("in flight")
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("drained Encode mismatch at %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Encode still blocked 10s after Close: request stranded in gather")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v to release the gathering batch", elapsed)
	}
}

func TestBatcherConcurrentEncodeAndClose(t *testing.T) {
	enc := &stubEncoder{dim: 8}
	b := NewBatcher(enc, BatcherConfig{MaxBatch: 4, MaxWait: 100 * time.Microsecond})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := b.Encode("x"); len(got) != 8 {
				t.Errorf("Encode returned %d dims, want 8", len(got))
			}
		}()
	}
	b.Close()
	wg.Wait()
}
