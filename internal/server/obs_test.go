package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/obs"
)

type slowObsLLM struct{ d time.Duration }

func (l slowObsLLM) Query(q string) (string, time.Duration) { return "answer:" + q, l.d }

// TestServerObservability drives the full instrumented request path and
// checks all three observability surfaces: /metrics (parseable, with the
// expected families), the extended /v1/stats (tier, arena, collector
// saturation), and /v1/debug/traces (span taxonomy per request kind).
func TestServerObservability(t *testing.T) {
	m := embed.NewModel(embed.MPNetSim, 7)
	reg, err := NewRegistry(RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: slowObsLLM{d: time.Millisecond}, Tau: 0.8, TopK: 5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{Node: "test-node", SampleRate: 1, RingSize: 16})
	srv, err := New(Config{Registry: reg, Metrics: metrics, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		return rec
	}
	get := func(path string) []byte {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d %s", path, rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}

	if rec := post("/v1/query", `{"user":"u1","query":"what is a cache"}`); rec.Code != 200 {
		t.Fatalf("miss query: %d %s", rec.Code, rec.Body.String())
	}
	if rec := post("/v1/query", `{"user":"u1","query":"what is a cache"}`); rec.Code != 200 {
		t.Fatalf("hit query: %d %s", rec.Code, rec.Body.String())
	}
	post("/v1/feedback", `{"user":"u1","kind":"false_hit"}`)
	post("/v1/query", `{"user":"u1"}`) // error: missing query

	// /metrics must parse under the in-repo linter and carry the serving
	// families with the right values.
	exp, err := obs.ParseExposition(get("/metrics"))
	if err != nil {
		t.Fatalf("metrics exposition invalid: %v", err)
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"meancache_queries_total", map[string]string{"result": "hit"}, 1},
		{"meancache_queries_total", map[string]string{"result": "miss"}, 1},
		{"meancache_feedbacks_total", nil, 1},
		{"meancache_request_errors_total", map[string]string{"route": "query"}, 1},
		{"meancache_search_duration_seconds_count", map[string]string{"tier": "flat"}, 2},
		{"meancache_stage_duration_seconds_count", map[string]string{"stage": "upstream"}, 1},
		{"meancache_stage_duration_seconds_count", map[string]string{"stage": "encode"}, 2},
		{"meancache_request_duration_seconds_count", nil, 2},
		{"meancache_registry_resident_tenants", nil, 1},
		{"meancache_collector_tracked_tenants", nil, 1},
		{"meancache_arena_rows", nil, 1},
	}
	for _, c := range checks {
		if v, ok := exp.Value(c.name, c.labels); !ok || v != c.want {
			t.Errorf("%s%v = %v (present %v), want %v", c.name, c.labels, v, ok, c.want)
		}
	}

	// Extended /v1/stats: collector saturation state and per-resident
	// tier/arena rows.
	var stats StatsResponse
	if err := json.Unmarshal(get("/v1/stats"), &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Collector.TrackedTenants != 1 || stats.Collector.Saturated ||
		stats.Collector.MaxTrackedTenants != maxTrackedTenants {
		t.Fatalf("collector status wrong: %+v", stats.Collector)
	}
	if len(stats.Residents) != 1 {
		t.Fatalf("residents = %+v, want one row", stats.Residents)
	}
	res := stats.Residents[0]
	if res.User != "u1" || res.Tier != "flat" || res.Entries != 1 || res.ArenaRows < 1 {
		t.Fatalf("resident row wrong: %+v", res)
	}

	// /v1/debug/traces: the miss trace must carry the full taxonomy, the
	// hit trace must not have upstream/cachefill spans.
	var traces struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(get("/v1/debug/traces"), &traces); err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(traces.Traces) != 2 {
		t.Fatalf("published %d traces, want 2 (the error request must not publish)", len(traces.Traces))
	}
	spanKinds := func(tr obs.TraceSnapshot) map[string]obs.SpanSnapshot {
		out := map[string]obs.SpanSnapshot{}
		for _, s := range tr.Spans {
			out[s.Kind] = s
		}
		return out
	}
	hit, miss := traces.Traces[0], traces.Traces[1] // newest first
	if !hit.Hit || miss.Hit {
		t.Fatalf("trace order/outcome wrong: %+v / %+v", hit, miss)
	}
	mk := spanKinds(miss)
	for _, want := range []string{"decode", "encode", "search", "upstream", "cachefill", "respond"} {
		if _, ok := mk[want]; !ok {
			t.Errorf("miss trace missing %s span: %+v", want, miss.Spans)
		}
	}
	hk := spanKinds(hit)
	if _, ok := hk["upstream"]; ok {
		t.Errorf("hit trace has an upstream span: %+v", hit.Spans)
	}
	if hk["search"].Tier != "flat" || hk["search"].Candidates < 1 {
		t.Errorf("hit search span wrong: %+v", hk["search"])
	}
	if miss.Node != "test-node" || miss.User != "u1" {
		t.Errorf("trace identity wrong: %+v", miss)
	}
}

// TestBatcherObsHooks covers the queue-depth and batch-size hooks the
// metrics layer consumes.
func TestBatcherObsHooks(t *testing.T) {
	m := embed.NewModel(embed.MPNetSim, 3)
	b := NewBatcher(m, BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	defer b.Close()
	metrics := obs.NewRegistry()
	registerBatcherMetrics(metrics, b)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			b.Encode("query " + string(rune('a'+i)))
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	h := metrics.Histogram("meancache_batch_size", "Dispatched encode batch sizes.", obs.DefBatchBounds)
	if h.Count() == 0 {
		t.Fatalf("batch-size histogram saw no batches")
	}
	if b.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", b.QueueDepth())
	}
}
