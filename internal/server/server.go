// Package server is the multi-tenant serving layer: many per-user
// MeanCache clients (internal/core) behind one concurrent HTTP process —
// the deployment the paper sketches in Figure 1 scaled from one device to
// a fleet of users.
//
// The pieces:
//
//   - Registry: a sharded userID→Tenant table with lazy activation, LRU
//     idle-tenant eviction, and optional persistence of evicted caches
//     via internal/store.
//   - Batcher: an embedding micro-batcher that coalesces concurrent
//     encode requests across tenants into single batch calls on the
//     shared encoder.
//   - Collector: per-tenant and aggregate hit/miss/latency metrics built
//     on internal/metrics.
//   - Server: the JSON HTTP API (POST /v1/query, POST /v1/feedback,
//     GET /v1/stats, GET /healthz) that routes requests by user ID and
//     proxies misses to the upstream LLM configured in each tenant's
//     client.
//
// cmd/cacheserve runs this process; cmd/loadgen drives it.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Observer receives serving-path signals. The online FL example collector
// (internal/flserve) implements it to turn live traffic into per-tenant
// private training shards; implementations must be safe for concurrent
// use and must return quickly (they run on the request path).
type Observer interface {
	// ObserveQuery fires after every answered query. matchedQuery is the
	// cached query that served a hit ("" on a miss); score is the match
	// similarity.
	ObserveQuery(user, query string, hit bool, matchedQuery string, score float32)
	// ObserveFeedback fires after every accepted feedback report.
	ObserveFeedback(user string, fb Feedback)
}

// Feedback kinds accepted by POST /v1/feedback.
const (
	// FeedbackFalseHit is §III-A.2's signal: a cache hit was wrong (the
	// user re-asked the LLM). Raises the tenant's τ.
	FeedbackFalseHit = "false_hit"
	// FeedbackMissedDup is the complementary online-learning signal: a
	// query missed although the user had asked it before. Lowers the
	// tenant's τ and, via the observer, contributes a labelled positive
	// pair to the tenant's private FL shard.
	FeedbackMissedDup = "missed_dup"
)

// Feedback is the normalised form of a feedback report passed to the
// Observer.
type Feedback struct {
	// Kind is FeedbackFalseHit or FeedbackMissedDup.
	Kind string
	// Query is the probe the feedback refers to (optional for false_hit).
	Query string
	// Other is the counterpart text: the cached query wrongly served
	// (false_hit) or the earlier query this one duplicates (missed_dup).
	Other string
}

// Config assembles a Server.
type Config struct {
	// Registry supplies tenants. Required.
	Registry *Registry
	// Batcher, when non-nil, is reported under /v1/stats. (Tenants use it
	// through their encoder; the server itself never encodes.)
	Batcher *Batcher
	// SearchBatcher, when non-nil, is reported under /v1/stats. (Tenants
	// use it through core.Options.Searcher; the server itself never
	// searches.)
	SearchBatcher *SearchBatcher
	// StatsTenants caps how many per-tenant rows /v1/stats returns,
	// largest traffic first. Defaults to 20; -1 means all.
	StatsTenants int
	// Observer, when non-nil, sees every query and feedback signal.
	Observer Observer
	// Metrics, when non-nil, receives the serving metrics and gains a
	// GET /metrics route serving Prometheus text exposition.
	Metrics *obs.Registry
	// Tracer, when non-nil, traces requests (head-sampled plus
	// slow-capture) and gains a GET /v1/debug/traces route serving the
	// recent-trace ring.
	Tracer *obs.Tracer
	// Governor, when non-nil, enforces admission control: per-tenant
	// token-bucket quotas at the front door (429 + Retry-After when a
	// bucket runs dry) and, via the resilience.Guard the upstream LLM is
	// wrapped in, concurrency limiting and circuit breaking on the miss
	// path. Its state is reported under /v1/stats and /metrics.
	Governor *resilience.Governor
}

// Server is the HTTP serving process.
type Server struct {
	cfg       Config
	collector *Collector
	obs       *serverObs // nil unless Config.Metrics or Config.Tracer is set
	mux       *http.ServeMux
	wrapper   func(http.Handler) http.Handler
	http      *http.Server
	ln        net.Listener
}

// New builds a Server (not yet listening; use Serve, or Handler with a
// test server).
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	if cfg.StatsTenants == 0 {
		cfg.StatsTenants = 20
	}
	s := &Server{cfg: cfg, collector: NewCollector(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.obs = newServerObs(cfg, s.collector)
	if cfg.Metrics != nil {
		s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	if cfg.Tracer != nil {
		s.mux.Handle("GET /v1/debug/traces", cfg.Tracer.Handler())
	}
	return s, nil
}

// Handler exposes the API routes (for tests and embedding), with the
// Wrap middleware applied when one is installed.
func (s *Server) Handler() http.Handler {
	if s.wrapper != nil {
		return s.wrapper(s.mux)
	}
	return s.mux
}

// Wrap installs a middleware around the whole mux — how cluster mode
// interposes its tenant router in front of every serving route. Call
// before Serve; at most one wrapper is supported (later calls replace
// earlier ones).
func (s *Server) Wrap(mw func(http.Handler) http.Handler) { s.wrapper = mw }

// Handle registers an extra route on the server's mux — how optional
// subsystems (e.g. the online FL coordinator's /v1/fl/* and /v1/model
// endpoints) join the serving process. Call before Serve.
func (s *Server) Handle(pattern string, handler http.Handler) {
	s.mux.Handle(pattern, handler)
}

// Collector exposes the server's metrics collector.
func (s *Server) Collector() *Collector { return s.collector }

// Serve binds addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln)
	return nil
}

// Addr reports the bound listen address (after Serve).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down gracefully.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// User routes the request to its tenant. Required.
	User string `json:"user"`
	// Query is the text to answer. Required.
	Query string `json:"query"`
	// Session, when set, names a conversation: the query is asked with
	// the session's context chain and appended to its history. Empty
	// means a standalone query.
	Session string `json:"session,omitempty"`
}

// QueryResponse is the body of a successful query.
type QueryResponse struct {
	Response string `json:"response"`
	// Hit reports whether the response came from the tenant's cache.
	Hit bool `json:"hit"`
	// Degraded marks a hit served in cache-only degraded mode: the
	// upstream circuit breaker was open and the match cleared only the
	// relaxed threshold (τ − tau-degraded), not τ itself.
	Degraded bool `json:"degraded,omitempty"`
	// Score is the match similarity (hits only).
	Score float32 `json:"score,omitempty"`
	// Matched is the cached query that served a hit, so clients can cite
	// it in feedback reports ("" on a miss).
	Matched string `json:"matched,omitempty"`
	// LatencyMicros is the end-to-end serving time: semantic search plus,
	// on a miss, the upstream LLM time (simulated time included when the
	// upstream runs in virtual-time mode).
	LatencyMicros int64 `json:"latency_micros"`
	// SearchMicros isolates the semantic-search component.
	SearchMicros int64 `json:"search_micros"`
	// Tau is the tenant's current similarity threshold.
	Tau float32 `json:"tau"`
}

// FeedbackRequest is the body of POST /v1/feedback. Kind defaults to
// "false_hit" (§III-A.2: the user re-asked after a cache hit, i.e. the
// hit was wrong); "missed_dup" reports the inverse miss — the query
// should have been served from cache because it duplicates an earlier
// one. Query/DuplicateOf carry the texts so the FL example collector can
// derive labelled pairs; they never leave the serving process.
type FeedbackRequest struct {
	User string `json:"user"`
	// Kind is "false_hit" (default) or "missed_dup".
	Kind string `json:"kind,omitempty"`
	// Query is the probe the feedback refers to.
	Query string `json:"query,omitempty"`
	// DuplicateOf is the cached query wrongly served (false_hit) or the
	// earlier query this one duplicates (missed_dup).
	DuplicateOf string `json:"duplicate_of,omitempty"`
}

// FeedbackResponse reports the tenant's threshold after adjustment.
type FeedbackResponse struct {
	Tau float32 `json:"tau"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Aggregate TenantMetrics            `json:"aggregate"`
	Tenants   map[string]TenantMetrics `json:"tenants"`
	Registry  RegistryStats            `json:"registry"`
	Batcher   *BatcherStats            `json:"batcher,omitempty"`
	// SearchBatcher reports per-tenant search coalescing when a search
	// batcher is configured.
	SearchBatcher *BatcherStats `json:"search_batcher,omitempty"`
	// Collector reports the per-tenant counter map's saturation state.
	Collector CollectorStatus `json:"collector"`
	// Residents lists per-resident-tenant serving state (index tier,
	// arena occupancy), capped by Config.StatsTenants like Tenants.
	Residents []ResidentStats `json:"residents,omitempty"`
	// Resilience reports admission-control state (quota buckets, AIMD
	// limiter, circuit breaker, maintenance semaphore) when a Governor
	// is configured.
	Resilience *resilience.GovernorStats `json:"resilience,omitempty"`
}

// ResidentStats is one resident tenant's serving-state row.
type ResidentStats struct {
	User string `json:"user"`
	// Tier is the index tier currently serving this tenant's searches.
	Tier    string `json:"tier,omitempty"`
	Entries int    `json:"entries"`
	// Arena occupancy of the tenant's index storage: live rows, the slot
	// high-water mark, and recycled slots awaiting reuse.
	ArenaRows      int `json:"arena_rows"`
	ArenaSlots     int `json:"arena_slots"`
	ArenaFreeSlots int `json:"arena_free_slots"`
}

// Route names for error counters.
const (
	routeQuery    = "query"
	routeFeedback = "feedback"
)

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Observability prologue: in cluster mode a forwarded request carries
	// the origin's trace in its context; otherwise this node opens one.
	// Everything is nil-tolerant so the untraced path pays one branch.
	o := s.obs
	var t0 time.Time
	var trace *obs.Trace
	if o != nil {
		t0 = time.Now()
		trace = obs.TraceFrom(r.Context())
		if trace == nil {
			trace = o.tracer.Start("/v1/query")
		}
	}
	var req QueryRequest
	if err := readJSON(r, &req); err != nil {
		o.dropTrace(trace)
		s.fail(w, "", routeQuery, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var decodeDur time.Duration
	if o != nil {
		decodeDur = time.Since(t0)
	}
	if req.User == "" || req.Query == "" {
		o.dropTrace(trace)
		s.fail(w, req.User, routeQuery, http.StatusBadRequest, "user and query are required")
		return
	}
	// Front-door admission: the tenant's token bucket is checked before
	// any per-request work (tenant activation, encoding, search) so an
	// over-quota tenant costs one map lookup, nothing more.
	if rej := s.cfg.Governor.Admit(req.User); rej != nil {
		o.dropTrace(trace)
		s.reject(w, req.User, routeQuery, rej)
		return
	}
	tenant, err := s.cfg.Registry.Get(req.User)
	if err != nil {
		o.dropTrace(trace)
		s.fail(w, req.User, routeQuery, http.StatusInternalServerError, "activating tenant: %v", err)
		return
	}
	defer tenant.Release()
	var res queryResult
	if req.Session != "" {
		ts := tenant.session(req.Session)
		ts.mu.Lock()
		res.Result, res.err = ts.sess.AskContext(r.Context(), req.Query)
		ts.mu.Unlock()
	} else {
		res.Result, res.err = tenant.Client.QueryContext(r.Context(), req.Query)
	}
	if res.err != nil {
		o.dropTrace(trace)
		// Shed decisions (limiter saturated, breaker open with no
		// degraded match) map to 429/503 + Retry-After; real upstream
		// failures stay 502.
		if rej, ok := resilience.AsRejection(res.err); ok {
			s.reject(w, req.User, routeQuery, rej)
			return
		}
		s.fail(w, req.User, routeQuery, http.StatusBadGateway, "querying: %v", res.err)
		return
	}
	s.collector.RecordQuery(req.User, res.Hit, res.Latency, res.SearchTime)
	var matched string
	if res.Hit && res.Entry != nil {
		matched = res.Entry.Query
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.ObserveQuery(req.User, req.Query, res.Hit, matched, res.Score)
	}
	var respondStart time.Duration
	if o != nil {
		respondStart = time.Since(t0)
	}
	writeJSON(w, QueryResponse{
		Response:      res.Response,
		Hit:           res.Hit,
		Degraded:      res.Degraded,
		Score:         res.Score,
		Matched:       matched,
		LatencyMicros: res.Latency.Microseconds(),
		SearchMicros:  res.SearchTime.Microseconds(),
		Tau:           tenant.Client.Tau(),
	})
	if o != nil {
		o.recordQuery(trace, req.User, &res.Result, decodeDur, respondStart, time.Since(t0))
	}
	// The response is on the wire; return the probe-embedding buffer to
	// the tenant's pool.
	tenant.Client.Recycle(&res.Result)
}

// queryResult pairs a core.Result with the error from producing it, so
// the session and standalone paths share one epilogue.
type queryResult struct {
	core.Result
	err error
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := readJSON(r, &req); err != nil {
		s.fail(w, "", routeFeedback, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.User == "" {
		s.fail(w, "", routeFeedback, http.StatusBadRequest, "user is required")
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = FeedbackFalseHit
	}
	if kind != FeedbackFalseHit && kind != FeedbackMissedDup {
		s.fail(w, req.User, routeFeedback, http.StatusBadRequest, "unknown feedback kind %q", req.Kind)
		return
	}
	if kind == FeedbackMissedDup && (req.Query == "" || req.DuplicateOf == "") {
		s.fail(w, req.User, routeFeedback, http.StatusBadRequest, "missed_dup feedback requires query and duplicate_of")
		return
	}
	tenant, err := s.cfg.Registry.Get(req.User)
	if err != nil {
		s.fail(w, req.User, routeFeedback, http.StatusInternalServerError, "activating tenant: %v", err)
		return
	}
	defer tenant.Release()
	if kind == FeedbackFalseHit {
		tenant.Client.ReportFalseHit()
	} else {
		tenant.Client.ReportMissedHit()
	}
	s.collector.RecordFeedback(req.User)
	if o := s.obs; o != nil && o.metrics {
		o.feedbacks.Inc()
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.ObserveFeedback(req.User, Feedback{Kind: kind, Query: req.Query, Other: req.DuplicateOf})
	}
	writeJSON(w, FeedbackResponse{Tau: tenant.Client.Tau()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Aggregate: s.collector.Aggregate(),
		Tenants:   s.collector.Tenants(s.cfg.StatsTenants),
		Registry:  s.cfg.Registry.Stats(),
		Collector: s.collector.Status(),
		Residents: s.residentStats(s.cfg.StatsTenants),
	}
	if s.cfg.Batcher != nil {
		bs := s.cfg.Batcher.Stats()
		resp.Batcher = &bs
	}
	if s.cfg.SearchBatcher != nil {
		sbs := s.cfg.SearchBatcher.Stats()
		resp.SearchBatcher = &sbs
	}
	if s.cfg.Governor != nil {
		gs := s.cfg.Governor.Stats()
		resp.Resilience = &gs
	}
	writeJSON(w, resp)
}

// residentStats snapshots per-resident serving state: the index tier
// answering each tenant's searches and its arena occupancy. Rows are
// sorted by user ID and capped at limit (≤ 0 means all) so the response
// stays bounded and deterministic.
func (s *Server) residentStats(limit int) []ResidentStats {
	var out []ResidentStats
	s.cfg.Registry.Range(func(t *Tenant) {
		c := t.Client.Cache()
		a := c.ArenaStats()
		out = append(out, ResidentStats{
			User:           t.ID,
			Tier:           c.ServingTier(),
			Entries:        c.Len(),
			ArenaRows:      a.Rows,
			ArenaSlots:     a.Slots,
			ArenaFreeSlots: a.FreeSlots,
		})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ErrorResponse is the structured JSON error body every failed request
// returns: a human-readable message, a machine-matchable code, and (for
// load-shed responses) the backoff hint mirrored by the Retry-After
// header.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is "bad_request", "internal", "upstream_error", or a shed
	// reason ("quota", "saturated", "breaker_open").
	Code string `json:"code"`
	// RetryAfterMS is the suggested backoff in milliseconds (shed
	// responses only; the Retry-After header carries it in whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// errorCode maps an HTTP status to the generic machine code for
// non-shed failures.
func errorCode(status int) string {
	switch {
	case status == http.StatusBadGateway:
		return "upstream_error"
	case status >= 400 && status < 500:
		return "bad_request"
	default:
		return "internal"
	}
}

func (s *Server) fail(w http.ResponseWriter, userID, route string, code int, format string, args ...any) {
	s.collector.RecordError(userID)
	s.obs.recordError(route)
	writeError(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: errorCode(code)})
}

// reject answers a load-shed decision: 429 for per-tenant quota, 503 for
// saturation and open-breaker sheds, both with Retry-After.
func (s *Server) reject(w http.ResponseWriter, userID, route string, rej *resilience.Rejection) {
	s.collector.RecordError(userID)
	s.obs.recordError(route)
	status := http.StatusServiceUnavailable
	if rej.Reason == resilience.ReasonQuota {
		status = http.StatusTooManyRequests
	}
	if rej.RetryAfter > 0 {
		// Retry-After is whole seconds; round up so clients never come
		// back early.
		secs := (rej.RetryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	}
	writeError(w, status, ErrorResponse{
		Error:        rej.Error(),
		Code:         rej.Reason,
		RetryAfterMS: rej.RetryAfter.Milliseconds(),
	})
}

// writeError writes the structured JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, body ErrorResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	c := jsonCodecs.Get().(*jsonCodec)
	defer putCodec(c)
	c.buf.Reset()
	if err := c.enc.Encode(body); err != nil {
		return // headers are out; nothing useful left to do
	}
	w.Write(c.buf.Bytes())
}

// jsonCodec is a pooled buffer + encoder pair: the request lifecycle
// reads bodies into and encodes responses out of recycled buffers, so a
// warmed request performs no per-call allocation for JSON plumbing.
type jsonCodec struct {
	buf *bytes.Buffer
	enc *json.Encoder
	lim io.LimitedReader // reused per request so the cap costs no alloc
}

var jsonCodecs = sync.Pool{New: func() any {
	buf := &bytes.Buffer{}
	return &jsonCodec{buf: buf, enc: json.NewEncoder(buf)}
}}

const (
	// maxBodyBytes bounds a request body: queries and feedback are small
	// JSON documents, so anything past 1 MB is rejected rather than
	// buffered.
	maxBodyBytes = 1 << 20
	// maxPooledCodecBytes caps the buffers the codec pool retains — an
	// oversized response (a huge /v1/stats dump) must not pin its buffer
	// in the pool forever.
	maxPooledCodecBytes = 64 << 10
)

// putCodec returns c to the pool unless its buffer grew past the
// retention cap.
func putCodec(c *jsonCodec) {
	if c.buf.Cap() <= maxPooledCodecBytes {
		jsonCodecs.Put(c)
	}
}

// readJSON decodes the request body into v through a pooled buffer,
// rejecting bodies over maxBodyBytes.
func readJSON(r *http.Request, v any) error {
	c := jsonCodecs.Get().(*jsonCodec)
	defer putCodec(c)
	c.buf.Reset()
	c.lim.R, c.lim.N = r.Body, maxBodyBytes+1
	_, err := c.buf.ReadFrom(&c.lim)
	c.lim.R = nil // don't retain the body through the pool
	if err != nil {
		return err
	}
	if c.buf.Len() > maxBodyBytes {
		return fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
	}
	return json.Unmarshal(c.buf.Bytes(), v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	c := jsonCodecs.Get().(*jsonCodec)
	defer putCodec(c)
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(c.buf.Bytes())
}
