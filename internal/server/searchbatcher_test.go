package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/vecmath"
)

// newSearchTestCache builds a cache with n deterministic unit-vector
// entries and returns it alongside the entry embeddings (probe fodder).
func newSearchTestCache(t *testing.T, dim, n int, seed int64) (*cache.Cache, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := cache.New(dim, 0, cache.LRU{})
	embs := make([][]float32, n)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		vecmath.Normalize(v)
		embs[i] = v
		if _, err := c.Put(fmt.Sprintf("q%d", i), fmt.Sprintf("r%d", i), v, cache.NoParent); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	return c, embs
}

func matchesEqual(got, want []cache.Match) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Entry != want[i].Entry || got[i].Score != want[i].Score {
			return fmt.Errorf("match[%d] = (%d, %v), want (%d, %v)",
				i, got[i].Entry.ID, got[i].Score, want[i].Entry.ID, want[i].Score)
		}
	}
	return nil
}

// TestSearchBatcherMatchesDirect drives a concurrent burst against one
// cache through the batcher and checks every reply is bit-identical —
// same entries, same scores, same order — to the direct FindSimilarAppend
// path. MaxWait is large so the burst genuinely coalesces.
func TestSearchBatcherMatchesDirect(t *testing.T) {
	const dim, n, k = 16, 200, 5
	const tau = float32(0.1)
	c, embs := newSearchTestCache(t, dim, n, 31)
	sb := NewSearchBatcher(BatcherConfig{MaxBatch: 64, MaxWait: 20 * time.Millisecond})
	defer sb.Close()

	want := make([][]cache.Match, len(embs))
	for i, e := range embs {
		want[i] = c.FindSimilarAppend(e, k, tau, nil)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, len(embs))
	for i, e := range embs {
		wg.Add(1)
		go func(i int, e []float32) {
			defer wg.Done()
			<-start
			got := sb.FindSimilar(c, e, k, tau, nil)
			if err := matchesEqual(got, want[i]); err != nil {
				errs <- fmt.Errorf("probe %d: %w", i, err)
			}
		}(i, e)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sb.Stats()
	if st.Requests != int64(len(embs)) {
		t.Fatalf("Requests = %d, want %d", st.Requests, len(embs))
	}
	if st.Coalesced == 0 {
		t.Error("Coalesced = 0: the concurrent burst never shared a pass")
	}
	if st.Batches >= st.Requests {
		t.Errorf("Batches = %d of %d requests: no coalescing", st.Batches, st.Requests)
	}
}

// TestSearchBatcherMixedGroups interleaves two caches and two (k, tau)
// settings in one burst: the dispatcher must split the window into
// per-(cache, k, tau) groups and every reply must still match its own
// direct path.
func TestSearchBatcherMixedGroups(t *testing.T) {
	const dim = 16
	c1, embs1 := newSearchTestCache(t, dim, 100, 7)
	c2, embs2 := newSearchTestCache(t, dim, 100, 8)
	sb := NewSearchBatcher(BatcherConfig{MaxBatch: 64, MaxWait: 20 * time.Millisecond})
	defer sb.Close()

	type job struct {
		c   *cache.Cache
		emb []float32
		k   int
		tau float32
	}
	var jobs []job
	for i := 0; i < 50; i++ {
		jobs = append(jobs,
			job{c1, embs1[i], 5, 0.1},
			job{c2, embs2[i], 5, 0.1},
			job{c1, embs1[i+50], 3, 0.5},
			job{c2, embs2[i+50], 3, 0.5},
		)
	}
	want := make([][]cache.Match, len(jobs))
	for i, j := range jobs {
		want[i] = j.c.FindSimilarAppend(j.emb, j.k, j.tau, nil)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			<-start
			got := sb.FindSimilar(j.c, j.emb, j.k, j.tau, nil)
			if err := matchesEqual(got, want[i]); err != nil {
				errs <- fmt.Errorf("job %d: %w", i, err)
			}
		}(i, j)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSearchBatcherSingletonHandback pins drain mode's zero-latency
// promise: a lone request must come straight back (handed to the caller
// for direct execution), not linger hoping for company.
func TestSearchBatcherSingletonHandback(t *testing.T) {
	c, embs := newSearchTestCache(t, 8, 50, 13)
	sb := NewSearchBatcher(BatcherConfig{}) // MaxWait 0: drain mode
	defer sb.Close()
	start := time.Now()
	got := sb.FindSimilar(c, embs[3], 5, 0.1, nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone drain-mode search took %v", elapsed)
	}
	want := c.FindSimilarAppend(embs[3], 5, 0.1, nil)
	if err := matchesEqual(got, want); err != nil {
		t.Fatal(err)
	}
	st := sb.Stats()
	if st.Requests != 1 || st.Coalesced != 0 {
		t.Fatalf("Stats = %+v, want 1 request, 0 coalesced", st)
	}
}

// TestSearchBatcherAppendsToDst pins the append contract: matches land
// after the caller's existing elements, whichever route the request took.
func TestSearchBatcherAppendsToDst(t *testing.T) {
	c, embs := newSearchTestCache(t, 8, 50, 17)
	sb := NewSearchBatcher(BatcherConfig{MaxBatch: 8, MaxWait: 10 * time.Millisecond})
	defer sb.Close()
	sentinel := cache.Match{Score: -42}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dst := append(make([]cache.Match, 0, 16), sentinel)
			got := sb.FindSimilar(c, embs[i], 3, 0.1, dst)
			if len(got) < 1 || got[0].Score != -42 {
				t.Errorf("probe %d: sentinel lost: %+v", i, got)
				return
			}
			want := c.FindSimilarAppend(embs[i], 3, 0.1, nil)
			if err := matchesEqual(got[1:], want); err != nil {
				t.Errorf("probe %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestSearchBatcherConcurrentSearchAndClose races searches against Close
// under -race: every call must return correct results via one route or
// the other, with no send-on-closed-channel and no stranded caller.
func TestSearchBatcherConcurrentSearchAndClose(t *testing.T) {
	c, embs := newSearchTestCache(t, 8, 50, 19)
	sb := NewSearchBatcher(BatcherConfig{MaxBatch: 4, MaxWait: 100 * time.Microsecond})
	want := c.FindSimilarAppend(embs[0], 5, 0.1, nil)
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := sb.FindSimilar(c, embs[0], 5, 0.1, nil)
			if err := matchesEqual(got, want); err != nil {
				t.Errorf("racing search: %v", err)
				return
			}
			served.Add(1)
		}()
	}
	sb.Close()
	wg.Wait()
	if served.Load() != 64 {
		t.Fatalf("served %d of 64 racing searches", served.Load())
	}
	// Close is idempotent.
	sb.Close()
}
