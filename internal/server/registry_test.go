package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/index"
)

// testFactory builds tenants around stub encoders, counting activations.
func testFactory(activations *atomic.Int64) TenantFactory {
	return func(userID string) *core.Client {
		if activations != nil {
			activations.Add(1)
		}
		return core.New(core.Options{
			Encoder: &stubEncoder{dim: 16},
			Tau:     0.9,
			TopK:    4,
		})
	}
}

func TestRegistryShardRouting(t *testing.T) {
	r, err := NewRegistry(RegistryConfig{Shards: 8, Factory: testFactory(nil)})
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]bool)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("user-%d", i)
		sh := r.ShardFor(id)
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardFor(%q) = %d, outside [0,8)", id, sh)
		}
		if again := r.ShardFor(id); again != sh {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", id, sh, again)
		}
		used[sh] = true
	}
	if len(used) < 4 {
		t.Errorf("100 users landed on only %d of 8 shards", len(used))
	}
}

func TestRegistryLazyActivationIsStable(t *testing.T) {
	var activations atomic.Int64
	r, err := NewRegistry(RegistryConfig{Shards: 4, Factory: testFactory(&activations)})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	a1.Release()
	a2, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	a2.Release()
	if a1 != a2 {
		t.Error("repeated Get returned distinct tenants")
	}
	if n := activations.Load(); n != 1 {
		t.Errorf("factory ran %d times for one tenant, want 1", n)
	}
	if r.Resident() != 1 {
		t.Errorf("Resident() = %d, want 1", r.Resident())
	}
}

func TestRegistryIdleEviction(t *testing.T) {
	// One shard so the LRU order is fully observable.
	r, err := NewRegistry(RegistryConfig{Shards: 1, MaxTenants: 2, Factory: testFactory(nil)})
	if err != nil {
		t.Fatal(err)
	}
	get := func(id string) {
		t.Helper()
		tn, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		tn.Release()
	}
	get("a")
	get("b")
	// Touch "a" so "b" is the idle (least recently used) tenant.
	get("a")
	get("c")
	st := r.Stats()
	if st.Resident != 2 {
		t.Errorf("Resident = %d, want 2", st.Resident)
	}
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	resident := make(map[string]bool)
	r.Range(func(tn *Tenant) { resident[tn.ID] = true })
	if !resident["a"] || !resident["c"] || resident["b"] {
		t.Errorf("resident set = %v, want {a, c}", resident)
	}
}

func TestRegistryEvictionPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(RegistryConfig{
		Shards: 1, MaxTenants: 1, PersistDir: dir, Factory: testFactory(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Client.Insert("what is federated learning", "an answer", cache.NoParent); err != nil {
		t.Fatal(err)
	}
	alice.Client.SetTau(0.93)
	alice.Release()

	// Activating bob evicts alice (capacity 1), persisting her cache.
	bob, err := r.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	bob.Release()
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}

	revived, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Release()
	if revived == alice {
		t.Fatal("revived tenant is the evicted instance; want a reloaded one")
	}
	if n := revived.Client.Cache().Len(); n != 1 {
		t.Fatalf("revived cache has %d entries, want 1", n)
	}
	res := revived.Client.Lookup("what is federated learning", nil)
	if !res.Hit || res.Response != "an answer" {
		t.Errorf("revived Lookup = hit=%v response=%q, want the persisted entry", res.Hit, res.Response)
	}
	// The feedback-adapted threshold survives eviction too.
	if tau := revived.Client.Tau(); tau != 0.93 {
		t.Errorf("revived tau = %v, want the persisted 0.93", tau)
	}
	if st := r.Stats(); st.Reloads != 1 {
		t.Errorf("Reloads = %d, want 1", st.Reloads)
	}
}

// TestRegistryEvictionSkipsPinnedTenants: a tenant with an in-flight
// request (reference held) must not be persisted-and-dropped under it.
func TestRegistryEvictionSkipsPinnedTenants(t *testing.T) {
	r, err := NewRegistry(RegistryConfig{Shards: 1, MaxTenants: 1, Factory: testFactory(nil)})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := r.Get("pinned")
	if err != nil {
		t.Fatal(err)
	}
	// While pinned is held, activating two more tenants must evict the
	// unpinned one, never the pinned one.
	other, err := r.Get("other")
	if err != nil {
		t.Fatal(err)
	}
	other.Release()
	third, err := r.Get("third")
	if err != nil {
		t.Fatal(err)
	}
	third.Release()
	resident := make(map[string]bool)
	r.Range(func(tn *Tenant) { resident[tn.ID] = true })
	if !resident["pinned"] {
		t.Errorf("pinned tenant was evicted while referenced (resident=%v)", resident)
	}
	if resident["other"] {
		t.Errorf("unpinned LRU tenant survived eviction (resident=%v)", resident)
	}
	pinned.Release()
	// Once released, the tenant is evictable again.
	fourth, err := r.Get("fourth")
	if err != nil {
		t.Fatal(err)
	}
	fourth.Release()
	resident = make(map[string]bool)
	r.Range(func(tn *Tenant) { resident[tn.ID] = true })
	if resident["pinned"] {
		t.Error("released tenant still resident after a further activation should have evicted it")
	}
}

func TestRegistryConcurrentGet(t *testing.T) {
	var activations atomic.Int64
	r, err := NewRegistry(RegistryConfig{Shards: 4, Factory: testFactory(&activations)})
	if err != nil {
		t.Fatal(err)
	}
	const users, perUser = 16, 8
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		for k := 0; k < perUser; k++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				tn, err := r.Get(fmt.Sprintf("user-%d", u))
				if err != nil {
					t.Error(err)
					return
				}
				defer tn.Release()
				tn.Client.Lookup("warmup", nil)
			}(u)
		}
	}
	wg.Wait()
	if n := activations.Load(); n != users {
		t.Errorf("factory ran %d times, want %d (one per user)", n, users)
	}
}

// TestRegistryFlushPersistsResidentTenants: shutdown flush writes every
// resident tenant so a restarted registry resumes warm without any
// eviction having happened.
func TestRegistryFlushPersistsResidentTenants(t *testing.T) {
	dir := t.TempDir()
	cfg := RegistryConfig{Shards: 2, PersistDir: dir, Factory: testFactory(nil)}
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice", "bob"} {
		tn, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Client.Insert("query of "+id, "answer for "+id, cache.NoParent); err != nil {
			t.Fatal(err)
		}
		tn.Client.SetTau(0.91)
		tn.Release()
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// A fresh registry (new process) over the same dir resumes warm.
	r2, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice", "bob"} {
		tn, err := r2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		res := tn.Client.Lookup("query of "+id, nil)
		if !res.Hit || res.Response != "answer for "+id {
			t.Errorf("%s after restart: hit=%v response=%q", id, res.Hit, res.Response)
		}
		if tau := tn.Client.Tau(); tau != 0.91 {
			t.Errorf("%s tau after restart = %v, want 0.91", id, tau)
		}
		tn.Release()
	}
	if st := r2.Stats(); st.Reloads != 2 {
		t.Errorf("Reloads = %d, want 2", st.Reloads)
	}
}

// TestRegistryIndexedTenantRevival: a tenant whose cache runs on an
// external vector index (Options.IndexFactory) must come back indexed
// after an evict/revive cycle, with every persisted entry searchable
// through the rebuilt index.
func TestRegistryIndexedTenantRevival(t *testing.T) {
	dir := t.TempDir()
	factory := func(userID string) *core.Client {
		return core.New(core.Options{
			Encoder: &stubEncoder{dim: 16},
			Tau:     0.9,
			TopK:    4,
			IndexFactory: func(dim int) index.Index {
				return index.NewHNSW(dim, index.HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 48, Seed: 1})
			},
		})
	}
	r, err := NewRegistry(RegistryConfig{
		Shards: 1, MaxTenants: 1, PersistDir: dir, Factory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !alice.Client.Cache().Indexed() {
		t.Fatal("fresh tenant cache is not indexed")
	}
	queries := make([]string, 10)
	for i := range queries {
		queries[i] = fmt.Sprintf("indexed question %d", i)
		if _, err := alice.Client.Insert(queries[i], "a", cache.NoParent); err != nil {
			t.Fatal(err)
		}
	}
	alice.Release()

	bob, err := r.Get("bob") // evicts alice
	if err != nil {
		t.Fatal(err)
	}
	bob.Release()

	revived, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Release()
	if !revived.Client.Cache().Indexed() {
		t.Fatal("revived tenant cache lost its index")
	}
	for _, q := range queries {
		if res := revived.Client.Lookup(q, nil); !res.Hit {
			t.Fatalf("revived indexed lookup missed %q", q)
		}
	}
}
