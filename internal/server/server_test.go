package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
)

// newTestServer assembles a full serving stack: stub encoder behind a
// micro-batcher, virtual-time llmsim upstream, sharded registry.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	enc := &stubEncoder{dim: 32}
	batcher := NewBatcher(enc, BatcherConfig{MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	t.Cleanup(batcher.Close)
	llm := llmsim.New(llmsim.DefaultConfig())
	reg, err := NewRegistry(RegistryConfig{
		Shards: 4,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder:      batcher,
				LLM:          llm,
				Tau:          0.9,
				TopK:         4,
				FeedbackStep: 0.01,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg, Batcher: batcher})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON[T any](t *testing.T, url string, body any) T {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerQueryMissThenHit(t *testing.T) {
	_, ts := newTestServer(t)
	q := QueryRequest{User: "alice", Query: "how does secure aggregation work"}
	first := postJSON[QueryResponse](t, ts.URL+"/v1/query", q)
	if first.Hit {
		t.Fatal("first query hit an empty cache")
	}
	if first.Response == "" {
		t.Fatal("miss returned empty response: upstream proxying failed")
	}
	second := postJSON[QueryResponse](t, ts.URL+"/v1/query", q)
	if !second.Hit {
		t.Fatal("repeated query missed")
	}
	if second.Response != first.Response {
		t.Errorf("hit response %q differs from cached %q", second.Response, first.Response)
	}
	// The miss paid (simulated) LLM time; the hit must not.
	if second.LatencyMicros >= first.LatencyMicros {
		t.Errorf("hit latency %dµs not below miss latency %dµs", second.LatencyMicros, first.LatencyMicros)
	}
}

func TestServerTenantsAreIsolated(t *testing.T) {
	_, ts := newTestServer(t)
	q := "what is a semantic cache"
	postJSON[QueryResponse](t, ts.URL+"/v1/query", QueryRequest{User: "alice", Query: q})
	// Bob asks the same text: his cache is empty, so it must miss.
	got := postJSON[QueryResponse](t, ts.URL+"/v1/query", QueryRequest{User: "bob", Query: q})
	if got.Hit {
		t.Error("bob hit on alice's cached entry: tenant isolation broken")
	}
}

func TestServerSessionContext(t *testing.T) {
	_, ts := newTestServer(t)
	ask := func(sess, q string) QueryResponse {
		return postJSON[QueryResponse](t, ts.URL+"/v1/query",
			QueryRequest{User: "alice", Query: q, Session: sess})
	}
	ask("s1", "tell me about model compression")
	ask("s1", "how does it affect accuracy")
	// Same conversation replayed in a new session: both turns should hit,
	// the follow-up because its context chain matches.
	r1 := ask("s2", "tell me about model compression")
	r2 := ask("s2", "how does it affect accuracy")
	if !r1.Hit || !r2.Hit {
		t.Errorf("replayed conversation: hits = %v,%v, want true,true", r1.Hit, r2.Hit)
	}
	// The follow-up standalone (no context) must NOT reuse the contextual
	// entry (Algorithm 1's context check).
	r3 := postJSON[QueryResponse](t, ts.URL+"/v1/query",
		QueryRequest{User: "alice", Query: "how does it affect accuracy"})
	if r3.Hit {
		t.Error("standalone query hit a contextual entry despite empty context")
	}
}

func TestServerFeedbackRaisesTau(t *testing.T) {
	_, ts := newTestServer(t)
	before := postJSON[QueryResponse](t, ts.URL+"/v1/query",
		QueryRequest{User: "alice", Query: "warmup"})
	fb := postJSON[FeedbackResponse](t, ts.URL+"/v1/feedback", FeedbackRequest{User: "alice"})
	if fb.Tau <= before.Tau {
		t.Errorf("feedback tau %v not above %v", fb.Tau, before.Tau)
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		postJSON[QueryResponse](t, ts.URL+"/v1/query",
			QueryRequest{User: "alice", Query: "the same question"})
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.Queries != 3 || st.Aggregate.Hits != 2 {
		t.Errorf("aggregate = %d queries / %d hits, want 3/2", st.Aggregate.Queries, st.Aggregate.Hits)
	}
	if tm, ok := st.Tenants["alice"]; !ok || tm.Queries != 3 {
		t.Errorf("per-tenant stats missing or wrong: %+v", st.Tenants)
	}
	if st.Registry.Resident != 1 {
		t.Errorf("registry resident = %d, want 1", st.Registry.Resident)
	}
	if st.Batcher == nil || st.Batcher.Requests == 0 {
		t.Error("batcher stats missing from /v1/stats")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	for _, body := range []string{`{}`, `{"user":"a"}`, `{"query":"q"}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if agg := srv.Collector().Aggregate(); agg.Errors != 4 {
		t.Errorf("Errors = %d, want 4", agg.Errors)
	}
}

// TestServerConcurrentOneTenant hammers a single tenant with parallel
// queries (lookup+insert), session asks, and feedback — the single-tenant
// half of the -race concurrency requirement.
func TestServerConcurrentOneTenant(t *testing.T) {
	_, ts := newTestServer(t)
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					postJSON[QueryResponse](t, ts.URL+"/v1/query",
						QueryRequest{User: "alice", Query: fmt.Sprintf("question %d", i%10)})
				case 1:
					postJSON[QueryResponse](t, ts.URL+"/v1/query",
						QueryRequest{User: "alice", Query: fmt.Sprintf("follow-up %d", i%5),
							Session: fmt.Sprintf("sess-%d", w)})
				default:
					postJSON[FeedbackResponse](t, ts.URL+"/v1/feedback",
						FeedbackRequest{User: "alice"})
				}
			}
		}(w)
	}
	wg.Wait()
	agg := postStats(t, ts)
	want := int64(workers * perWorker * 2 / 3)
	if agg.Aggregate.Queries < want {
		t.Errorf("aggregate queries = %d, want ≥ %d", agg.Aggregate.Queries, want)
	}
	if agg.Aggregate.Errors != 0 {
		t.Errorf("errors under concurrency: %d", agg.Aggregate.Errors)
	}
}

// TestServerConcurrentCrossTenant drives many tenants at once, which also
// exercises the cross-tenant encode batching path.
func TestServerConcurrentCrossTenant(t *testing.T) {
	srv, ts := newTestServer(t)
	const users, perUser = 32, 8
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", u)
			for i := 0; i < perUser; i++ {
				postJSON[QueryResponse](t, ts.URL+"/v1/query",
					QueryRequest{User: user, Query: fmt.Sprintf("shared question %d", i%4)})
			}
		}(u)
	}
	wg.Wait()
	st := postStats(t, ts)
	if st.Aggregate.Queries != users*perUser {
		t.Errorf("aggregate queries = %d, want %d", st.Aggregate.Queries, users*perUser)
	}
	if st.Registry.Resident != users {
		t.Errorf("resident tenants = %d, want %d", st.Registry.Resident, users)
	}
	if bs := srv.cfg.Batcher.Stats(); bs.Coalesced == 0 {
		t.Logf("note: no cross-tenant coalescing observed (timing-dependent); batches=%d requests=%d",
			bs.Batches, bs.Requests)
	}
}

func postStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
