package server

import (
	"time"

	"repro/internal/embed"
	"repro/internal/vecmath"
)

// batchCapable is the optional fast path: encoders that can embed a whole
// batch in one call (embed.Model does, with internal parallelism). When
// the wrapped encoder lacks it, the batcher still coalesces requests but
// encodes them one by one on the dispatcher goroutine.
type batchCapable interface {
	EncodeBatch(texts []string) *vecmath.Matrix
}

// BatcherConfig tunes a micro-batching window (shared by the encode and
// search batchers; each applies its own defaults).
type BatcherConfig struct {
	// MaxBatch caps how many pending requests are folded into one batch.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway. Zero or negative
	// selects drain mode: dispatch immediately with whatever has already
	// queued, so batching adds no latency and coalescing happens only
	// under genuine concurrency.
	MaxWait time.Duration
}

// Batcher coalesces concurrent Encode calls — across tenants — into
// single batch calls on the underlying encoder. Per-request embedding
// work is identical; what batching buys is one parallel EncodeBatch sweep
// instead of many small Encode calls contending for cores, keeping the
// serving hot path fast when hundreds of users query at once.
//
// Batcher implements embed.Encoder, so a core.Client can use it directly.
// It is safe for unrestricted concurrent use. Close stops the dispatcher;
// Encode calls after Close fall back to direct single encodes.
type Batcher struct {
	enc     embed.Encoder
	core    *batchCore[encodeReq]
	replies chan chan []float32 // recycled one-shot reply channels
}

type encodeReq struct {
	text string
	// dst, when non-nil, receives the embedding via append(dst[:0], …) —
	// the pooled-buffer path. The dispatcher writes into it and sends it
	// back on reply, so ownership transfers cleanly.
	dst   []float32
	reply chan []float32
}

// NewBatcher wraps enc in a micro-batcher and starts its dispatcher.
// MaxBatch defaults to 32 and MaxWait to 200µs — small against the ~ms
// encode cost it amortises.
func NewBatcher(enc embed.Encoder, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 200 * time.Microsecond
	}
	b := &Batcher{
		enc:     enc,
		replies: make(chan chan []float32, cfg.MaxBatch*4),
	}
	b.core = newBatchCore[encodeReq](cfg, b.run)
	return b
}

// Encode implements embed.Encoder: the call blocks until its text has been
// embedded as part of some batch.
func (b *Batcher) Encode(text string) []float32 {
	return b.encode(text, nil)
}

// EncodeInto is the pooled-buffer encode: the embedding lands in
// dst[:0] (grown if needed), preserving the caller's recycled buffer
// through the batching hand-off.
func (b *Batcher) EncodeInto(text string, dst []float32) []float32 {
	if dst == nil {
		// A nil dst would be indistinguishable from the plain path in
		// the dispatcher; give it capacity so ownership stays with us.
		dst = make([]float32, 0, b.enc.Dim())
	}
	return b.encode(text, dst)
}

func (b *Batcher) encode(text string, dst []float32) []float32 {
	req := encodeReq{text: text, dst: dst, reply: b.getReply()}
	if !b.core.submit(req) {
		b.putReply(req.reply)
		if dst != nil {
			return append(dst[:0], b.enc.Encode(text)...)
		}
		return b.enc.Encode(text)
	}
	out := <-req.reply
	b.putReply(req.reply)
	return out
}

// getReply/putReply recycle the one-shot reply channels so a warmed
// Encode allocates nothing for its rendezvous.
func (b *Batcher) getReply() chan []float32 {
	select {
	case ch := <-b.replies:
		return ch
	default:
		return make(chan []float32, 1)
	}
}

func (b *Batcher) putReply(ch chan []float32) {
	select {
	case b.replies <- ch:
	default:
	}
}

// Dim implements embed.Encoder.
func (b *Batcher) Dim() int { return b.enc.Dim() }

// Name implements embed.Encoder.
func (b *Batcher) Name() string { return b.enc.Name() + "+batch" }

// Close stops the dispatcher after draining in-flight requests. Encode
// calls that arrive during or after Close encode directly; redundant
// Close calls just wait for the first to finish.
func (b *Batcher) Close() { b.core.close() }

// BatcherStats snapshots coalescing effectiveness.
type BatcherStats struct {
	// Requests is the number of calls served.
	Requests int64
	// Batches is the number of batched passes dispatched (including
	// singleton passes).
	Batches int64
	// Coalesced is the number of requests that shared a pass with at
	// least one other request.
	Coalesced int64
	// MeanBatch is Requests/Batches.
	MeanBatch float64
}

// QueueDepth reports encode requests currently waiting for the
// dispatcher — the live backlog behind the batching window.
func (b *Batcher) QueueDepth() int { return b.core.queueDepth() }

// OnBatch installs fn to run on the dispatcher goroutine after each
// batch is gathered, with the batch's size. At most one hook; later
// calls replace earlier ones. fn must be fast and safe for concurrent
// use with the caller.
func (b *Batcher) OnBatch(fn func(size int)) { b.core.setOnBatch(fn) }

// Stats reports coalescing counters.
func (b *Batcher) Stats() BatcherStats { return b.core.stats() }

// run encodes one gathered batch and delivers the rows, each into its
// request's recycled buffer when one was supplied.
func (b *Batcher) run(batch []encodeReq) {
	b.core.batches.Add(1)
	b.core.fireOnBatch(len(batch))
	if len(batch) == 1 {
		batch[0].reply <- b.encodeOne(batch[0])
		return
	}
	b.core.batched.Add(int64(len(batch)))
	if bc, ok := b.enc.(batchCapable); ok {
		texts := make([]string, len(batch))
		for i, req := range batch {
			texts[i] = req.text
		}
		out := bc.EncodeBatch(texts)
		for i, req := range batch {
			if req.dst != nil {
				req.reply <- append(req.dst[:0], out.Row(i)...)
			} else {
				req.reply <- vecmath.Clone(out.Row(i))
			}
		}
		return
	}
	for _, req := range batch {
		req.reply <- b.encodeOne(req)
	}
}

func (b *Batcher) encodeOne(req encodeReq) []float32 {
	if req.dst != nil {
		return embed.EncodeInto(b.enc, req.text, req.dst)
	}
	return b.enc.Encode(req.text)
}
