package server

// Registry persistence-failure policy, driven through the faultfs seam:
// an eviction that cannot persist keeps the tenant resident and retries
// with backoff (adapted state is never dropped unpersisted), a corrupt
// snapshot is quarantined and the tenant served cold, and log damage
// repaired at reload is surfaced through the registry's recovery
// counters.

import (
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

const faultPersistDir = "tenants"

// tenantSnapshotPath mirrors Registry.persistPath for assertions.
func tenantSnapshotPath(userID string) string {
	return filepath.Join(faultPersistDir, hex.EncodeToString([]byte(userID))+".cache")
}

// teach inserts one canonical entry so the tenant has state worth
// persisting, and returns after releasing the tenant.
func teach(t *testing.T, r *Registry, userID string) {
	t.Helper()
	ten, err := r.Get(userID)
	if err != nil {
		t.Fatalf("Get(%q): %v", userID, err)
	}
	defer ten.Release()
	if _, err := ten.Client.Insert("what is "+userID, "answer for "+userID, cache.NoParent); err != nil {
		t.Fatalf("Insert(%q): %v", userID, err)
	}
}

func TestEvictPersistFailureKeepsTenantAndRetries(t *testing.T) {
	fs := faultfs.New()
	clk := sim.NewVirtual()
	r, err := NewRegistry(RegistryConfig{
		Shards:     1,
		MaxTenants: 1,
		PersistDir: faultPersistDir,
		Factory:    testFactory(nil),
		Clock:      clk,
		FS:         fs,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	teach(t, r, "alice")

	// The disk fills: activating bob wants to evict alice, whose persist
	// fails. Alice must stay resident — her adapted state is not dropped.
	fs.SetSpace(0)
	bob, err := r.Get("bob")
	if err != nil {
		t.Fatalf("Get(bob) during full disk: %v", err)
	}
	bob.Release()
	if got := r.Resident(); got != 2 {
		t.Fatalf("Resident() = %d after failed eviction, want 2 (victim retained)", got)
	}
	if s := r.Stats(); s.EvictErrors != 1 || s.Evictions != 0 {
		t.Fatalf("stats after failed eviction: %+v", s)
	}

	// Within the backoff window further Gets do not re-attempt the
	// failing persist.
	if _, err := r.Get("carol"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.EvictErrors != 1 {
		t.Fatalf("eviction retried inside backoff window: %+v", s)
	}

	// Space frees and the backoff elapses: the next activation drains
	// the over-bound shard back down, and the victims' snapshots land.
	fs.AddSpace(1 << 26)
	clk.Advance(time.Minute)
	if _, err := r.Get("dave"); err != nil {
		t.Fatal(err)
	}
	if got := r.Resident(); got > 2 {
		t.Fatalf("Resident() = %d after space freed, want <= 2", got)
	}
	if s := r.Stats(); s.Evictions == 0 {
		t.Fatalf("no eviction after space freed: %+v", s)
	}
	if _, err := fs.ReadFile(tenantSnapshotPath("alice")); err != nil {
		t.Fatalf("alice's snapshot missing after retry: %v", err)
	}
}

func TestCorruptSnapshotQuarantinedAndServedCold(t *testing.T) {
	fs := faultfs.New()

	// Craft a structurally valid store whose cache payload is garbage:
	// reload opens it fine, then chokes decoding the entry.
	st, err := store.OpenFS(fs, tenantSnapshotPath("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("entry/0", []byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	r, err := NewRegistry(RegistryConfig{
		Shards:     1,
		PersistDir: faultPersistDir,
		Factory:    testFactory(nil),
		FS:         fs,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Activation must serve the tenant cold, not fail the request.
	ten, err := r.Get("alice")
	if err != nil {
		t.Fatalf("Get with corrupt snapshot: %v", err)
	}
	if res := ten.Client.Lookup("anything", nil); res.Hit {
		t.Fatalf("cold tenant lookup unexpectedly hit: %+v", res)
	}
	ten.Release()

	s := r.Stats()
	if s.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1 (stats %+v)", s.Quarantines, s)
	}
	if s.Reloads != 0 {
		t.Fatalf("corrupt snapshot counted as reload: %+v", s)
	}
	if _, err := fs.ReadFile(tenantSnapshotPath("alice") + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := fs.ReadFile(tenantSnapshotPath("alice")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt snapshot still in place: %v", err)
	}

	// The tenant persists and revives normally from here on.
	teach(t, r, "alice")
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r2, err := NewRegistry(RegistryConfig{
		Shards: 1, PersistDir: faultPersistDir, Factory: testFactory(nil), FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten2, err := r2.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer ten2.Release()
	if res := ten2.Client.Lookup("what is alice", nil); !res.Hit {
		t.Fatalf("revived tenant lost its entry: %+v", res)
	}
	if s := r2.Stats(); s.Reloads != 1 || s.Quarantines != 0 {
		t.Fatalf("stats after healthy revive: %+v", s)
	}
}

func TestReloadSurfacesRepairedDamage(t *testing.T) {
	fs := faultfs.New()
	r, err := NewRegistry(RegistryConfig{
		Shards: 1, PersistDir: faultPersistDir, Factory: testFactory(nil), FS: fs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	teach(t, r, "alice")
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	// A crash tears a trailing write onto the snapshot.
	f, err := fs.OpenFile(tenantSnapshotPath("alice"), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := NewRegistry(RegistryConfig{
		Shards: 1, PersistDir: faultPersistDir, Factory: testFactory(nil), FS: fs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := r2.Get("alice")
	if err != nil {
		t.Fatalf("Get over torn snapshot: %v", err)
	}
	defer ten.Release()
	if res := ten.Client.Lookup("what is alice", nil); !res.Hit {
		t.Fatalf("repaired tenant lost its entry: %+v", res)
	}
	s := r2.Stats()
	if s.RecoveredTruncations != 1 {
		t.Fatalf("RecoveredTruncations = %d, want 1 (stats %+v)", s.RecoveredTruncations, s)
	}
	if s.Quarantines != 0 {
		t.Fatalf("repairable damage quarantined: %+v", s)
	}
}
