package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// batchCore is the gather/dispatch machinery shared by the encode batcher
// and the search batcher: a request channel, a single dispatcher goroutine
// that gathers requests into batches, and a Close protocol that can never
// strand a request or race a sender onto a closed channel.
//
// Two gather modes, selected by cfg.MaxWait:
//
//   - MaxWait > 0: after the first request of a batch arrives, the
//     dispatcher lingers up to MaxWait (or until MaxBatch) collecting
//     company. Right when the batched operation is expensive relative to
//     the wait (encoding: ~ms vs µs).
//   - MaxWait <= 0: the dispatcher takes whatever is already queued and
//     runs immediately — coalescing costs zero added latency and batches
//     form only under genuine concurrency. Right when the batched
//     operation is itself microseconds (index search).
//
// The stranded-request hazard of timer-based flushers (flusher loses the
// wake race and a request waits past MaxWait for the next arrival) cannot
// occur here: the dispatcher blocks receiving on the request channel, so
// every request either starts a batch or joins one that is already
// gathering, and Close's channel close aborts any in-progress gather
// immediately.
//
// The run callback owns batch semantics: it delivers replies and advances
// the batches/batched counters (grouping rules differ per batcher). The
// core owns only the requests counter and the channel lifecycle.
type batchCore[R any] struct {
	cfg  BatcherConfig
	reqs chan R
	done chan struct{}
	run  func([]R)

	// mu/senders fence close against in-flight submit sends, so reqs is
	// only closed once no sender can touch it again.
	mu      sync.RWMutex
	closing bool
	senders sync.WaitGroup

	// stats — requests is owned by submit; batches/batched by run callbacks.
	requests atomic.Int64
	batches  atomic.Int64
	batched  atomic.Int64 // requests that shared a batch of size ≥ 2

	// onBatch, when set, observes each dispatched batch's size (the
	// metrics hook). Atomic so it can be installed after the dispatcher
	// is already running.
	onBatch atomic.Pointer[func(size int)]

	// batch is the dispatcher-owned gather buffer, reused across batches.
	batch []R
}

// newBatchCore starts the dispatcher. cfg.MaxBatch must already be
// normalised (> 0); cfg.MaxWait <= 0 selects drain mode.
func newBatchCore[R any](cfg BatcherConfig, run func([]R)) *batchCore[R] {
	b := &batchCore[R]{
		cfg:  cfg,
		reqs: make(chan R, cfg.MaxBatch*4),
		done: make(chan struct{}),
		run:  run,
	}
	go b.dispatch()
	return b
}

// submit enqueues r for the dispatcher, returning false when the core is
// closing (or closed) and the caller must take its direct path instead.
// On true, r has been handed to the dispatcher and its reply will arrive:
// close drains every accepted request before stopping.
func (b *batchCore[R]) submit(r R) bool {
	b.requests.Add(1)
	b.mu.RLock()
	if b.closing {
		b.mu.RUnlock()
		return false
	}
	b.senders.Add(1)
	b.mu.RUnlock()
	b.reqs <- r
	b.senders.Done()
	return true
}

// close stops the dispatcher after draining in-flight requests. Redundant
// calls just wait for the first to finish.
func (b *batchCore[R]) close() {
	b.mu.Lock()
	if b.closing {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closing = true
	b.mu.Unlock()
	b.senders.Wait()
	close(b.reqs)
	<-b.done
}

func (b *batchCore[R]) queueDepth() int { return len(b.reqs) }

func (b *batchCore[R]) setOnBatch(fn func(size int)) { b.onBatch.Store(&fn) }

func (b *batchCore[R]) fireOnBatch(size int) {
	if fn := b.onBatch.Load(); fn != nil {
		(*fn)(size)
	}
}

func (b *batchCore[R]) stats() BatcherStats {
	s := BatcherStats{
		Requests:  b.requests.Load(),
		Batches:   b.batches.Load(),
		Coalesced: b.batched.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Requests) / float64(s.Batches)
	}
	return s
}

// dispatch is the batching loop: take one request, gather more according
// to the configured mode, hand the batch to run, recycle the buffer.
func (b *batchCore[R]) dispatch() {
	defer close(b.done)
	for first := range b.reqs {
		batch := append(b.batch[:0], first)
		if b.cfg.MaxWait > 0 {
			timer := time.NewTimer(b.cfg.MaxWait)
		gather:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case req, ok := <-b.reqs:
					if !ok {
						break gather
					}
					batch = append(batch, req)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case req, ok := <-b.reqs:
					if !ok {
						break drain
					}
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		b.run(batch)
		// Scrub delivered requests (they hold reply channels and caller
		// buffers) so the reused gather buffer does not pin them.
		clear(batch)
		b.batch = batch
	}
}
