package server

import (
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// serverObs is the server's observability wiring: the tracer plus
// pre-resolved metric handles, looked up once at construction so the
// request path never touches the registry's maps. A Server without
// Config.Metrics and Config.Tracer has a nil *serverObs and pays one
// nil check per request.
type serverObs struct {
	tracer  *obs.Tracer
	metrics bool

	queriesHit      *obs.Counter
	queriesMiss     *obs.Counter
	queriesDegraded *obs.Counter
	feedbacks       *obs.Counter
	errQuery        *obs.Counter
	errFeedback     *obs.Counter

	reqDur        *obs.Histogram
	stageDecode   *obs.Histogram
	stageEncode   *obs.Histogram
	stageSearch   *obs.Histogram
	stageUpstream *obs.Histogram
	stageFill     *obs.Histogram
	stageRespond  *obs.Histogram
	// searchTier is indexed by obs.TierID so the hot path labels per-tier
	// search latency without a map lookup.
	searchTier [4]*obs.Histogram
}

func newServerObs(cfg Config, collector *Collector) *serverObs {
	if cfg.Metrics == nil && cfg.Tracer == nil {
		return nil
	}
	o := &serverObs{tracer: cfg.Tracer}
	reg := cfg.Metrics
	if reg == nil {
		return o
	}
	o.metrics = true

	o.queriesHit = reg.Counter("meancache_queries_total",
		"Queries served, by cache outcome.", obs.Label{Name: "result", Value: "hit"})
	o.queriesMiss = reg.Counter("meancache_queries_total",
		"Queries served, by cache outcome.", obs.Label{Name: "result", Value: "miss"})
	o.queriesDegraded = reg.Counter("meancache_degraded_hits_total",
		"Hits served in cache-only degraded mode (breaker open, relaxed tau).")
	o.feedbacks = reg.Counter("meancache_feedbacks_total", "Feedback reports accepted.")
	o.errQuery = reg.Counter("meancache_request_errors_total",
		"Failed requests, by route.", obs.Label{Name: "route", Value: "query"})
	o.errFeedback = reg.Counter("meancache_request_errors_total",
		"Failed requests, by route.", obs.Label{Name: "route", Value: "feedback"})

	o.reqDur = reg.Histogram("meancache_request_duration_seconds",
		"End-to-end query latency.", obs.DefLatencyBounds)
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("meancache_stage_duration_seconds",
			"Per-stage query latency.", obs.DefLatencyBounds,
			obs.Label{Name: "stage", Value: name})
	}
	o.stageDecode = stage("decode")
	o.stageEncode = stage("encode")
	o.stageSearch = stage("search")
	o.stageUpstream = stage("upstream")
	o.stageFill = stage("cachefill")
	o.stageRespond = stage("respond")
	for id, tier := range []string{"unknown", "flat", "ivf", "hnsw"} {
		o.searchTier[id] = reg.Histogram("meancache_search_duration_seconds",
			"Index search latency, by serving tier.", obs.DefLatencyBounds,
			obs.Label{Name: "tier", Value: tier})
	}

	registerRegistryMetrics(reg, cfg.Registry)
	registerCollectorMetrics(reg, collector)
	if cfg.Batcher != nil {
		registerBatcherMetrics(reg, cfg.Batcher)
	}
	if cfg.SearchBatcher != nil {
		registerSearchBatcherMetrics(reg, cfg.SearchBatcher)
	}
	if cfg.Governor != nil {
		registerGovernorMetrics(reg, cfg.Governor)
	}
	return o
}

// recordQuery records metrics and trace spans for one successful query.
// res's stage fields carry the core-measured timings; decodeDur and
// respondStart/total are the server-side measurements around them.
func (o *serverObs) recordQuery(t *obs.Trace, user string, res *core.Result, decodeDur, respondStart, total time.Duration) {
	searchDur := res.SearchTime - res.EncodeTime
	tier := obs.TierID(res.Tier)
	if o.metrics {
		if res.Hit {
			o.queriesHit.Inc()
			if res.Degraded {
				o.queriesDegraded.Inc()
			}
		} else {
			o.queriesMiss.Inc()
		}
		o.reqDur.ObserveDuration(total)
		o.stageDecode.ObserveDuration(decodeDur)
		o.stageEncode.ObserveDuration(res.EncodeTime)
		o.stageSearch.ObserveDuration(searchDur)
		o.searchTier[tier].ObserveDuration(searchDur)
		if !res.Hit {
			o.stageUpstream.ObserveDuration(res.UpstreamTime)
			o.stageFill.ObserveDuration(res.FillTime)
		}
		o.stageRespond.ObserveDuration(total - respondStart)
	}
	if t != nil {
		t.User = user
		t.Hit = res.Hit
		t.Status = http.StatusOK
		t.Add(obs.SpanDecode, 0, decodeDur)
		t.Add(obs.SpanEncode, decodeDur, res.EncodeTime)
		if sp := t.Add(obs.SpanSearch, decodeDur+res.EncodeTime, searchDur); sp != nil {
			sp.Tier = tier
			sp.Candidates = int32(res.Candidates)
		}
		if !res.Hit {
			t.Add(obs.SpanUpstream, decodeDur+res.SearchTime, res.UpstreamTime)
			t.Add(obs.SpanCacheFill, decodeDur+res.SearchTime+res.UpstreamTime, res.FillTime)
		}
		t.Add(obs.SpanRespond, respondStart, total-respondStart)
		o.tracer.Finish(t, total)
	}
}

// recordError counts one failed request on its route's counter.
func (o *serverObs) recordError(route string) {
	if o == nil || !o.metrics {
		return
	}
	if route == routeFeedback {
		o.errFeedback.Inc()
	} else {
		o.errQuery.Inc()
	}
}

// dropTrace abandons a trace on a request error path (remote traces stay
// with their forward handler). Nil-safe all the way down.
func (o *serverObs) dropTrace(t *obs.Trace) {
	if o == nil {
		return
	}
	o.tracer.Abandon(t)
}

func registerRegistryMetrics(reg *obs.Registry, r *Registry) {
	stat := func(get func(RegistryStats) float64) func() float64 {
		return func() float64 { return get(r.Stats()) }
	}
	reg.GaugeFunc("meancache_registry_resident_tenants",
		"Tenants currently resident in memory.",
		stat(func(s RegistryStats) float64 { return float64(s.Resident) }))
	reg.CounterFunc("meancache_registry_activations_total",
		"Tenant activations (cold constructions plus reloads).",
		stat(func(s RegistryStats) float64 { return float64(s.Activations) }))
	reg.CounterFunc("meancache_registry_evictions_total",
		"Idle-tenant evictions.",
		stat(func(s RegistryStats) float64 { return float64(s.Evictions) }))
	reg.CounterFunc("meancache_registry_reloads_total",
		"Tenant activations served from the persistent store.",
		stat(func(s RegistryStats) float64 { return float64(s.Reloads) }))
	reg.CounterFunc("meancache_registry_drains_total",
		"Tenants drained out (cluster handoff).",
		stat(func(s RegistryStats) float64 { return float64(s.Drains) }))
	reg.CounterFunc("meancache_registry_evict_errors_total",
		"Eviction persistence failures.",
		stat(func(s RegistryStats) float64 { return float64(s.EvictErrors) }))
	reg.CounterFunc("meancache_store_recovered_truncations_total",
		"Tenant reloads that repaired a torn log tail (crash recovery).",
		stat(func(s RegistryStats) float64 { return float64(s.RecoveredTruncations) }))
	reg.CounterFunc("meancache_store_salvaged_records_total",
		"Records salvaged past mid-log corruption during tenant reloads.",
		stat(func(s RegistryStats) float64 { return float64(s.SalvagedRecords) }))
	reg.CounterFunc("meancache_store_quarantines_total",
		"Unreadable tenant snapshots quarantined at activation.",
		stat(func(s RegistryStats) float64 { return float64(s.Quarantines) }))

	// Arena occupancy and tier distribution are computed by walking the
	// resident tenants at scrape time — one cheap pass per gauge, nothing
	// on the serving path.
	arena := func(get func(rows, slots, free int) int) func() float64 {
		return func() float64 {
			var rows, slots, free int
			r.Range(func(t *Tenant) {
				a := t.Client.Cache().ArenaStats()
				rows += a.Rows
				slots += a.Slots
				free += a.FreeSlots
			})
			return float64(get(rows, slots, free))
		}
	}
	reg.GaugeFunc("meancache_arena_rows",
		"Live index rows across resident tenants.",
		arena(func(rows, _, _ int) int { return rows }))
	reg.GaugeFunc("meancache_arena_slots",
		"Index arena slot high-water across resident tenants.",
		arena(func(_, slots, _ int) int { return slots }))
	reg.GaugeFunc("meancache_arena_free_slots",
		"Recycled index arena slots awaiting reuse across resident tenants.",
		arena(func(_, _, free int) int { return free }))
	for _, tier := range []string{"flat", "ivf", "hnsw"} {
		tier := tier
		reg.GaugeFunc("meancache_tenants_by_tier",
			"Resident tenants, by serving index tier.", func() float64 {
				n := 0
				r.Range(func(t *Tenant) {
					if t.Client.Cache().ServingTier() == tier {
						n++
					}
				})
				return float64(n)
			}, obs.Label{Name: "tier", Value: tier})
	}
}

func registerCollectorMetrics(reg *obs.Registry, c *Collector) {
	reg.GaugeFunc("meancache_collector_tracked_tenants",
		"Tenants with per-tenant serving counters.", func() float64 {
			return float64(c.Status().TrackedTenants)
		})
	reg.GaugeFunc("meancache_collector_saturated",
		"1 when the per-tenant counter map hit maxTrackedTenants.", func() float64 {
			if c.Status().Saturated {
				return 1
			}
			return 0
		})
}

// registerGovernorMetrics exposes admission-control state: everything is
// read from the governor's atomics at scrape time, nothing rides the
// request path.
func registerGovernorMetrics(reg *obs.Registry, g *resilience.Governor) {
	if q := g.Quotas; q != nil {
		reg.GaugeFunc("meancache_quota_tenants",
			"Tenants with a tracked token bucket.", func() float64 {
				return float64(q.Tenants())
			})
		reg.CounterFunc("meancache_admissions_total",
			"Requests admitted past the per-tenant quota check.", func() float64 {
				return float64(q.Allowed())
			})
		reg.CounterFunc("meancache_sheds_total",
			"Requests shed, by reason.", func() float64 {
				return float64(q.Rejected())
			}, obs.Label{Name: "reason", Value: "quota"})
	}
	if l := g.Limiter; l != nil {
		reg.GaugeFunc("meancache_limiter_limit",
			"Current AIMD upstream concurrency limit.", l.Limit)
		reg.GaugeFunc("meancache_limiter_inflight",
			"Upstream calls currently in flight.", func() float64 {
				return float64(l.Inflight())
			})
		reg.GaugeFunc("meancache_limiter_queue_depth",
			"Requests waiting for an upstream slot.", func() float64 {
				return float64(l.QueueDepth())
			})
		reg.CounterFunc("meancache_limiter_decreases_total",
			"Multiplicative decreases of the concurrency limit.", func() float64 {
				return float64(l.Stats().Decreases)
			})
		reg.CounterFunc("meancache_sheds_total",
			"Requests shed, by reason.", func() float64 {
				return float64(l.ShedCount())
			}, obs.Label{Name: "reason", Value: "saturated"})
	}
	if b := g.Breaker; b != nil {
		reg.GaugeFunc("meancache_breaker_state",
			"Upstream circuit breaker state (0 closed, 1 half-open, 2 open).",
			func() float64 { return float64(b.State()) })
		reg.CounterFunc("meancache_breaker_opens_total",
			"Circuit breaker trips.", func() float64 {
				return float64(b.OpenCount())
			})
		reg.CounterFunc("meancache_sheds_total",
			"Requests shed, by reason.", func() float64 {
				return float64(b.ShedCount())
			}, obs.Label{Name: "reason", Value: "breaker_open"})
	}
	if m := g.Maintenance; m != nil {
		reg.GaugeFunc("meancache_maintenance_held",
			"Weighted-semaphore units held by background maintenance.",
			func() float64 { return float64(m.Info().Held) })
		reg.GaugeFunc("meancache_maintenance_waiters",
			"Background tasks waiting for maintenance capacity.",
			func() float64 { return float64(m.Info().Waiters) })
	}
}

func registerBatcherMetrics(reg *obs.Registry, b *Batcher) {
	reg.GaugeFunc("meancache_batch_queue_depth",
		"Encode requests queued for the batch dispatcher.", func() float64 {
			return float64(b.QueueDepth())
		})
	sizes := reg.Histogram("meancache_batch_size",
		"Dispatched encode batch sizes.", obs.DefBatchBounds)
	b.OnBatch(func(size int) { sizes.Observe(float64(size)) })
	bstat := func(get func(BatcherStats) float64) func() float64 {
		return func() float64 { return get(b.Stats()) }
	}
	reg.CounterFunc("meancache_batch_requests_total",
		"Encode calls served through the batcher.",
		bstat(func(s BatcherStats) float64 { return float64(s.Requests) }))
	reg.CounterFunc("meancache_batch_batches_total",
		"Batch dispatches.",
		bstat(func(s BatcherStats) float64 { return float64(s.Batches) }))
	reg.CounterFunc("meancache_batch_coalesced_total",
		"Encode calls that shared a batch with at least one other.",
		bstat(func(s BatcherStats) float64 { return float64(s.Coalesced) }))
}

func registerSearchBatcherMetrics(reg *obs.Registry, sb *SearchBatcher) {
	reg.GaugeFunc("meancache_search_batch_queue_depth",
		"Searches queued for the search-batch dispatcher.", func() float64 {
			return float64(sb.QueueDepth())
		})
	sizes := reg.Histogram("meancache_search_batch_size",
		"Per-tenant search group sizes (1 = handed back for direct execution).",
		obs.DefBatchBounds)
	sb.OnBatch(func(size int) { sizes.Observe(float64(size)) })
	sstat := func(get func(BatcherStats) float64) func() float64 {
		return func() float64 { return get(sb.Stats()) }
	}
	reg.CounterFunc("meancache_search_batch_requests_total",
		"Searches routed through the search batcher.",
		sstat(func(s BatcherStats) float64 { return float64(s.Requests) }))
	reg.CounterFunc("meancache_search_batch_batches_total",
		"Search passes (coalesced groups plus handed-back singletons).",
		sstat(func(s BatcherStats) float64 { return float64(s.Batches) }))
	reg.CounterFunc("meancache_search_batch_coalesced_total",
		"Searches that shared a multi-probe index pass.",
		sstat(func(s BatcherStats) float64 { return float64(s.Coalesced) }))
}
