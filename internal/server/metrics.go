package server

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Collector aggregates serving metrics: per-tenant and aggregate
// hit/miss/feedback counters plus latency distributions (same
// nearest-rank percentile convention as internal/metrics, but in bounded
// memory — see boundedRecorder). It outlives tenant eviction — counters
// are keyed by user ID, not by resident tenant — so /v1/stats reflects
// the whole run. Safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	aggregate *tenantCounters
	tenants   map[string]*tenantCounters
}

type tenantCounters struct {
	queries   int64
	hits      int64
	feedbacks int64
	errors    int64
	latency   boundedRecorder
	search    boundedRecorder
}

// Reservoir sizes: the aggregate sees every request so it gets a larger
// window; per-tenant rows stay small because there can be millions of
// them. Means are exact regardless (sum/count); only percentiles sample.
const (
	aggregateReservoir = 4096
	tenantReservoir    = 512
	// maxTrackedTenants bounds the per-user map: user IDs arrive
	// unauthenticated, so without a cap any client could mint IDs and
	// grow the collector forever. Users beyond the cap still count in
	// the aggregate; only their per-tenant row is missing.
	maxTrackedTenants = 10000
)

// boundedRecorder keeps serving-latency statistics in constant memory: an
// exact running sum/count for the mean and a uniform reservoir sample for
// percentiles (metrics.LatencyRecorder keeps every sample, which a
// long-running server cannot afford). Callers synchronise access —
// Collector.mu covers all recorder state.
type boundedRecorder struct {
	limit   int
	count   int64
	sum     time.Duration
	samples []time.Duration
}

func (r *boundedRecorder) record(d time.Duration) {
	r.count++
	r.sum += d
	if len(r.samples) < r.limit {
		r.samples = append(r.samples, d)
		return
	}
	// Uniform reservoir sampling: replace a random slot with probability
	// limit/count, so every sample ever recorded is equally likely to be
	// in the window. The shared top-level source keeps the replacement
	// sequences independent across recorders — a per-recorder rand seeded
	// with the constant limit made every tenant's reservoir replay the
	// identical sequence.
	if i := rand.Int63n(r.count); i < int64(r.limit) {
		r.samples[i] = d
	}
}

func (r *boundedRecorder) mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// percentiles returns the requested percentiles with one sort of the
// (bounded) reservoir, using the same nearest-rank convention as
// metrics.LatencyRecorder.
func (r *boundedRecorder) percentiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(r.samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		rank := int(p/100*float64(len(sorted))+0.5) - 1
		rank = max(0, min(rank, len(sorted)-1))
		out[i] = sorted[rank]
	}
	return out
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{
		aggregate: newTenantCounters(aggregateReservoir),
		tenants:   make(map[string]*tenantCounters),
	}
}

func newTenantCounters(reservoir int) *tenantCounters {
	return &tenantCounters{
		latency: boundedRecorder{limit: reservoir},
		search:  boundedRecorder{limit: reservoir},
	}
}

// tenant returns userID's counters, or nil once the tracked-tenant cap
// is reached (aggregate counters still cover such users).
func (c *Collector) tenant(userID string) *tenantCounters {
	tc, ok := c.tenants[userID]
	if !ok {
		if len(c.tenants) >= maxTrackedTenants {
			return nil
		}
		tc = newTenantCounters(tenantReservoir)
		c.tenants[userID] = tc
	}
	return tc
}

// RecordQuery logs one served query for userID.
func (c *Collector) RecordQuery(userID string, hit bool, latency, search time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range []*tenantCounters{c.aggregate, c.tenant(userID)} {
		if tc == nil {
			continue
		}
		tc.queries++
		if hit {
			tc.hits++
		}
		tc.latency.record(latency)
		tc.search.record(search)
	}
}

// RecordFeedback logs one false-hit report.
func (c *Collector) RecordFeedback(userID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aggregate.feedbacks++
	if tc := c.tenant(userID); tc != nil {
		tc.feedbacks++
	}
}

// RecordError logs one failed request (bad input, upstream failure).
func (c *Collector) RecordError(userID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aggregate.errors++
	if userID == "" {
		return
	}
	if tc := c.tenant(userID); tc != nil {
		tc.errors++
	}
}

// TenantMetrics is the JSON form of one tenant's (or the aggregate's)
// serving counters.
type TenantMetrics struct {
	Queries      int64   `json:"queries"`
	Hits         int64   `json:"hits"`
	HitRatio     float64 `json:"hit_ratio"`
	Feedbacks    int64   `json:"feedbacks"`
	Errors       int64   `json:"errors"`
	MeanMicros   int64   `json:"latency_mean_micros"`
	P50Micros    int64   `json:"latency_p50_micros"`
	P95Micros    int64   `json:"latency_p95_micros"`
	P99Micros    int64   `json:"latency_p99_micros"`
	SearchMicros int64   `json:"search_mean_micros"`
}

func (tc *tenantCounters) snapshot() TenantMetrics {
	pct := tc.latency.percentiles(50, 95, 99)
	m := TenantMetrics{
		Queries:      tc.queries,
		Hits:         tc.hits,
		Feedbacks:    tc.feedbacks,
		Errors:       tc.errors,
		MeanMicros:   tc.latency.mean().Microseconds(),
		P50Micros:    pct[0].Microseconds(),
		P95Micros:    pct[1].Microseconds(),
		P99Micros:    pct[2].Microseconds(),
		SearchMicros: tc.search.mean().Microseconds(),
	}
	if tc.queries > 0 {
		m.HitRatio = float64(tc.hits) / float64(tc.queries)
	}
	return m
}

// CollectorStatus reports the tracked-tenant map's saturation state:
// once Saturated, new user IDs only count in the aggregate.
type CollectorStatus struct {
	TrackedTenants    int  `json:"tracked_tenants"`
	MaxTrackedTenants int  `json:"max_tracked_tenants"`
	Saturated         bool `json:"saturated"`
}

// Status snapshots the tracked-tenant map's saturation state.
func (c *Collector) Status() CollectorStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStatus{
		TrackedTenants:    len(c.tenants),
		MaxTrackedTenants: maxTrackedTenants,
		Saturated:         len(c.tenants) >= maxTrackedTenants,
	}
}

// Aggregate snapshots the cross-tenant totals.
func (c *Collector) Aggregate() TenantMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aggregate.snapshot()
}

// Tenants snapshots per-tenant counters for the top n tenants by query
// count (n ≤ 0 means all), keyed by user ID. The expensive work — the
// ranking sort, and the reservoir sorts inside each snapshot — is kept
// off the recording hot path: only a light (id, queries) scan and the n
// chosen snapshots run under the lock. Counters may advance between the
// two phases; a row caught mid-update is merely a snapshot taken a
// moment later.
func (c *Collector) Tenants(n int) map[string]TenantMetrics {
	type key struct {
		id      string
		queries int64
	}
	c.mu.Lock()
	keys := make([]key, 0, len(c.tenants))
	for id, tc := range c.tenants {
		keys = append(keys, key{id, tc.queries})
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].queries != keys[j].queries {
			return keys[i].queries > keys[j].queries
		}
		return keys[i].id < keys[j].id
	})
	if n > 0 && len(keys) > n {
		keys = keys[:n]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantMetrics, len(keys))
	for _, k := range keys {
		if tc, ok := c.tenants[k.id]; ok {
			out[k.id] = tc.snapshot()
		}
	}
	return out
}
