package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d, want 4", c.Total())
	}
}

func TestPrecisionRecallAccuracy(t *testing.T) {
	// MeanCache's Figure 7a matrix: TN=611 FP=89 FN=66 TP=234.
	c := Confusion{TP: 234, FP: 89, TN: 611, FN: 66}
	if p := c.Precision(); math.Abs(p-0.724) > 0.01 {
		t.Errorf("precision = %.3f, want ≈0.72 (paper Table I)", p)
	}
	if r := c.Recall(); math.Abs(r-0.78) > 0.01 {
		t.Errorf("recall = %.3f, want ≈0.78", r)
	}
	if a := c.Accuracy(); math.Abs(a-0.845) > 0.01 {
		t.Errorf("accuracy = %.3f, want ≈0.85", a)
	}
	// F0.5 emphasising precision, as the paper reports 0.73.
	if f := c.FBeta(0.5); math.Abs(f-0.735) > 0.015 {
		t.Errorf("F0.5 = %.3f, want ≈0.73", f)
	}
}

func TestGPTCacheMatrixMatchesPaper(t *testing.T) {
	// Figure 7b: TN=467 FP=233 FN=46 TP=254 → precision 0.52, F0.5 0.56.
	c := Confusion{TP: 254, FP: 233, TN: 467, FN: 46}
	if p := c.Precision(); math.Abs(p-0.52) > 0.01 {
		t.Errorf("precision = %.3f, want ≈0.52", p)
	}
	if f := c.FBeta(0.5); math.Abs(f-0.56) > 0.01 {
		t.Errorf("F0.5 = %.3f, want ≈0.56", f)
	}
	if r := c.Recall(); math.Abs(r-0.85) > 0.01 {
		t.Errorf("recall = %.3f, want ≈0.85", r)
	}
}

func TestEmptyConfusionSafeZeros(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zero metrics, not NaN")
	}
}

func TestFBetaEqualsF1AtBeta1(t *testing.T) {
	c := Confusion{TP: 10, FP: 5, TN: 20, FN: 3}
	if c.FBeta(1) != c.F1() {
		t.Fatal("FBeta(1) != F1")
	}
	p, r := c.Precision(), c.Recall()
	want := 2 * p * r / (p + r)
	if math.Abs(c.F1()-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", c.F1(), want)
	}
}

// Property: all metrics stay within [0, 1] for any non-negative counts.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		for _, v := range []float64{c.Precision(), c.Recall(), c.Accuracy(), c.F1(), c.FBeta(0.5)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: increasing β moves F-β from precision-weighted toward
// recall-weighted: for precision > recall, F0.5 ≥ F1 ≥ F2.
func TestFBetaOrderingProperty(t *testing.T) {
	c := Confusion{TP: 50, FP: 10, TN: 100, FN: 50} // precision 0.83, recall 0.5
	f05, f1, f2 := c.FBeta(0.5), c.F1(), c.FBeta(2)
	if !(f05 >= f1 && f1 >= f2) {
		t.Fatalf("F-β ordering violated: F0.5=%v F1=%v F2=%v", f05, f1, f2)
	}
}

func TestMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("Merge = %+v", a)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 234, FP: 89, TN: 611, FN: 66}
	s := c.String()
	for _, want := range []string{"611", "89", "66", "234"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestScoresFrom(t *testing.T) {
	c := Confusion{TP: 234, FP: 89, TN: 611, FN: 66}
	s := ScoresFrom(c, 0.5)
	if s.Precision != c.Precision() || s.Recall != c.Recall() ||
		s.Accuracy != c.Accuracy() || s.FScore != c.FBeta(0.5) {
		t.Fatal("ScoresFrom mismatch")
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty recorder should yield zeros")
	}
	for _, ms := range []int{10, 20, 30, 40, 50} {
		l.Record(time.Duration(ms) * time.Millisecond)
	}
	if l.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v, want 30ms", l.Mean())
	}
	if p := l.Percentile(100); p != 50*time.Millisecond {
		t.Fatalf("P100 = %v, want 50ms", p)
	}
	if p := l.Percentile(50); p < 20*time.Millisecond || p > 40*time.Millisecond {
		t.Fatalf("P50 = %v, want around 30ms", p)
	}
	if len(l.Samples()) != 5 {
		t.Fatalf("Samples len = %d, want 5", len(l.Samples()))
	}
}

func TestLatencyRecorderBounded(t *testing.T) {
	l := NewLatencyRecorder(64)
	for i := 0; i < 10000; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	if n := len(l.Samples()); n != 64 {
		t.Fatalf("reservoir holds %d samples, want 64", n)
	}
	if l.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", l.Count())
	}
	// The mean stays exact past the reservoir limit: only percentiles
	// sample.
	if want := 4999500 * time.Nanosecond; l.Mean() != want {
		t.Fatalf("Mean = %v, want %v", l.Mean(), want)
	}
	p50 := l.Percentile(50)
	if p50 <= 0 || p50 >= 10000*time.Microsecond {
		t.Fatalf("P50 = %v, want within the recorded range", p50)
	}
}
