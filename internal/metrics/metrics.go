// Package metrics implements the semantic-cache evaluation metrics of
// §IV-A.3: the true/false hit/miss confusion matrix and the derived
// precision, recall, F-β and accuracy scores, plus a latency recorder for
// the response-time experiments.
//
// Terminology follows the paper: a *true hit* (TP) is a correct match with
// a cached query; a *false hit* (FP) returns an irrelevant cached response;
// a *true miss* (TN) correctly falls through to the LLM; a *false miss*
// (FN) fails to return an available cached response.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Confusion is a 2×2 hit/miss confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction. want/got are hit(true)/miss(false) labels.
func (c *Confusion) Add(want, got bool) {
	switch {
	case want && got:
		c.TP++
	case !want && got:
		c.FP++
	case !want && !got:
		c.TN++
	default:
		c.FN++
	}
}

// Merge accumulates other into c.
func (c *Confusion) Merge(other Confusion) {
	c.TP += other.TP
	c.FP += other.FP
	c.TN += other.TN
	c.FN += other.FN
}

// Total reports the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision = TP / (TP + FP); 0 when no positive predictions were made.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall = TP / (TP + FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy = (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// FBeta is the weighted harmonic mean of precision and recall. The paper
// uses β=0.5 for end-to-end cache evaluation (precision twice as important
// as recall, §IV-B) and β=1 for the threshold sweeps.
func (c Confusion) FBeta(beta float64) float64 {
	p, r := c.Precision(), c.Recall()
	if p == 0 && r == 0 {
		return 0
	}
	b2 := beta * beta
	denom := b2*p + r
	if denom == 0 {
		return 0
	}
	return (1 + b2) * p * r / denom
}

// F1 is FBeta(1).
func (c Confusion) F1() float64 { return c.FBeta(1) }

// String renders the matrix in the layout of Figures 7 and 9 (rows = real
// label, columns = predicted label, 0 = miss, 1 = hit).
func (c Confusion) String() string {
	return fmt.Sprintf("real\\pred   0(miss)  1(hit)\n0(miss)    %7d %7d\n1(hit)     %7d %7d",
		c.TN, c.FP, c.FN, c.TP)
}

// Scores bundles the four reported metrics for one system/dataset cell of
// Table I.
type Scores struct {
	FScore    float64 // F-β with the table's β
	Precision float64
	Recall    float64
	Accuracy  float64
}

// ScoresFrom extracts Scores from a confusion matrix at the given β.
func ScoresFrom(c Confusion, beta float64) Scores {
	return Scores{
		FScore:    c.FBeta(beta),
		Precision: c.Precision(),
		Recall:    c.Recall(),
		Accuracy:  c.Accuracy(),
	}
}

// DefaultLatencyReservoir is the sample window a zero-value
// LatencyRecorder keeps for percentiles.
const DefaultLatencyReservoir = 4096

// LatencyRecorder collects per-query durations for the response-time
// figures — in constant memory. The mean is exact (running sum/count);
// percentiles come from a uniform reservoir sample, so a long experiment
// run no longer grows memory per request. The zero value is ready to use
// with a DefaultLatencyReservoir-sized window; NewLatencyRecorder picks a
// different one.
type LatencyRecorder struct {
	limit   int
	count   int64
	sum     time.Duration
	samples []time.Duration
}

// NewLatencyRecorder builds a recorder keeping at most limit samples for
// percentiles (DefaultLatencyReservoir when limit <= 0).
func NewLatencyRecorder(limit int) *LatencyRecorder {
	if limit <= 0 {
		limit = DefaultLatencyReservoir
	}
	return &LatencyRecorder{limit: limit}
}

// Record adds one sample.
func (l *LatencyRecorder) Record(d time.Duration) {
	if l.limit <= 0 {
		l.limit = DefaultLatencyReservoir
	}
	l.count++
	l.sum += d
	if len(l.samples) < l.limit {
		l.samples = append(l.samples, d)
		return
	}
	// Uniform reservoir sampling off the shared top-level source: every
	// sample ever recorded is equally likely to be in the window.
	if i := rand.Int63n(l.count); i < int64(l.limit) {
		l.samples[i] = d
	}
}

// Count reports how many samples were ever recorded.
func (l *LatencyRecorder) Count() int64 { return l.count }

// Samples returns the retained sample window — all recorded durations in
// arrival order while under the reservoir limit, a uniform subsample of
// the full run beyond it.
func (l *LatencyRecorder) Samples() []time.Duration { return l.samples }

// Mean returns the average duration over every recorded sample (exact —
// the reservoir only affects percentiles), 0 if empty.
func (l *LatencyRecorder) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
