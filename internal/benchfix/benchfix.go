// Package benchfix holds shared fixtures for the serving benchmarks, so
// the root bench harness (bench_test.go) and cmd/benchrunner's JSON mode
// measure the same operating points — one definition of the corpus, tier
// parameters and probe, no drift between the in-repo numbers and the
// published BENCH_serving.json rows.
package benchfix

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/index"
)

// The large-tenant operating point: a cache big enough that the index
// tiers separate clearly, at the PCA-compressed dimensionality
// (§III-A.4).
const (
	LargeTenantN   = 20000
	LargeTenantDim = 64
)

// LargeTenantTiers lists the tier names LargeTenantCache accepts.
var LargeTenantTiers = []string{"scan", "ivf", "hnsw", "hnsw-int8"}

// fixtures memoises the built caches: the testing package re-invokes a
// Benchmark function with growing b.N to calibrate, and rebuilding a 20k
// HNSW graph per calibration round would dominate the run. Searches do
// not mutate the cache, so sharing is safe.
var fixtures sync.Map // tier → *fixture

type fixture struct {
	once  sync.Once
	c     *cache.Cache
	probe []float32
	err   error
}

// LargeTenantCache returns the benchmark cache for the named tier —
// "scan" (the built-in parallel flat scan), "ivf", "hnsw" or "hnsw-int8"
// — populated with the fixed-seed clustered corpus, plus a near-duplicate
// probe. The fixture is built once per process and shared.
func LargeTenantCache(tier string) (*cache.Cache, []float32, error) {
	v, _ := fixtures.LoadOrStore(tier, &fixture{})
	f := v.(*fixture)
	f.once.Do(func() { f.c, f.probe, f.err = buildLargeTenantCache(tier) })
	return f.c, f.probe, f.err
}

func buildLargeTenantCache(tier string) (*cache.Cache, []float32, error) {
	hnswCfg := index.HNSWConfig{M: 16, EfConstruction: 80, EfSearch: 96, Seed: 1}
	var c *cache.Cache
	switch tier {
	case "scan":
		c = cache.New(LargeTenantDim, 0, cache.LRU{})
	case "ivf":
		c = cache.NewWithIndex(LargeTenantDim, 0, cache.LRU{},
			index.NewIVF(LargeTenantDim, index.IVFConfig{NList: 141, NProbe: 12, Seed: 1}))
	case "hnsw":
		c = cache.NewWithIndex(LargeTenantDim, 0, cache.LRU{}, index.NewHNSW(LargeTenantDim, hnswCfg))
	case "hnsw-int8":
		hnswCfg.Quantized = true
		c = cache.NewWithIndex(LargeTenantDim, 0, cache.LRU{}, index.NewHNSW(LargeTenantDim, hnswCfg))
	default:
		return nil, nil, fmt.Errorf("benchfix: unknown tier %q", tier)
	}
	rng := rand.New(rand.NewSource(7))
	vecs := dataset.ClusteredVectors(rng, LargeTenantN, 128, LargeTenantDim, 0.4)
	for i, v := range vecs {
		if _, err := c.Put(fmt.Sprintf("q%d", i), "r", v, cache.NoParent); err != nil {
			return nil, nil, err
		}
	}
	return c, dataset.PerturbUnit(rng, vecs[0], 0.2), nil
}
