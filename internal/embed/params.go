package embed

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/vecmath"
)

// WeightCount reports the total number of scalar parameters in the model.
func (m *Model) WeightCount() int {
	return len(m.E.Data) + len(m.W.Data) + len(m.B)
}

// CopyWeights flattens all parameters into dst in a fixed order (E, W, B).
// dst must have WeightCount() elements. The flat form is the unit of
// exchange in the FL protocol (internal/fl) and of FedAvg aggregation.
func (m *Model) CopyWeights(dst []float32) {
	if len(dst) != m.WeightCount() {
		panic(fmt.Sprintf("embed: CopyWeights dst len %d, want %d", len(dst), m.WeightCount()))
	}
	n := copy(dst, m.E.Data)
	n += copy(dst[n:], m.W.Data)
	copy(dst[n:], m.B)
}

// SetWeights installs flat parameters previously produced by CopyWeights
// (possibly aggregated across clients).
func (m *Model) SetWeights(src []float32) {
	if len(src) != m.WeightCount() {
		panic(fmt.Sprintf("embed: SetWeights src len %d, want %d", len(src), m.WeightCount()))
	}
	n := copy(m.E.Data, src)
	n += copy(m.W.Data, src[n:])
	copy(m.B, src[n:])
}

// Weights returns a freshly allocated flat copy of the parameters.
func (m *Model) Weights() []float32 {
	w := make([]float32, m.WeightCount())
	m.CopyWeights(w)
	return w
}

// modelWire is the gob-encoded persistent form of a model.
type modelWire struct {
	ArchName string
	E, W     []float32
	B        []float32
}

// Save writes the model (architecture name + weights) to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(modelWire{
		ArchName: m.Cfg.Name,
		E:        m.E.Data,
		W:        m.W.Data,
		B:        m.B,
	}); err != nil {
		return fmt.Errorf("embed: encoding model: %w", err)
	}
	return bw.Flush()
}

// Load reads a model previously written by Save. The architecture is
// resolved from the registry by name.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("embed: decoding model: %w", err)
	}
	cfg, err := ArchByName(wire.ArchName)
	if err != nil {
		return nil, err
	}
	m := NewModel(cfg, 0)
	if len(wire.E) != len(m.E.Data) || len(wire.W) != len(m.W.Data) || len(wire.B) != len(m.B) {
		return nil, fmt.Errorf("embed: stored weights do not match architecture %q", wire.ArchName)
	}
	copy(m.E.Data, wire.E)
	copy(m.W.Data, wire.W)
	copy(m.B, wire.B)
	return m, nil
}

// Projected wraps an Encoder with an affine projection (typically the PCA
// basis learnt by internal/pca), re-normalising the result. This is the
// "updated embedding model" of Figure 3: the projection becomes an
// additional final layer so cached and probe embeddings share the
// compressed space.
//
// Centering matters: without subtracting the fitted mean, every projected
// embedding shares a large common component, cosines saturate toward 1,
// and threshold-based matching degenerates.
type Projected struct {
	base Encoder
	p    *vecmath.Matrix // k × base.Dim()
	mean []float32       // subtracted before projection; may be nil
}

// WithProjection attaches projection p (k × base.Dim()) to base with no
// centering. Prefer WithCenteredProjection for PCA bases.
func WithProjection(base Encoder, p *vecmath.Matrix) *Projected {
	return WithCenteredProjection(base, p, nil)
}

// WithCenteredProjection attaches projection p (k × base.Dim()) to base,
// subtracting mean (length base.Dim(), from the PCA fit) before
// projecting. A nil mean skips centering.
func WithCenteredProjection(base Encoder, p *vecmath.Matrix, mean []float32) *Projected {
	if p.Cols != base.Dim() {
		panic(fmt.Sprintf("embed: projection cols %d != encoder dim %d", p.Cols, base.Dim()))
	}
	if mean != nil && len(mean) != base.Dim() {
		panic(fmt.Sprintf("embed: projection mean len %d != encoder dim %d", len(mean), base.Dim()))
	}
	return &Projected{base: base, p: p, mean: mean}
}

// Encode implements Encoder: base embedding, centre, project, re-normalise.
func (pr *Projected) Encode(text string) []float32 {
	raw := pr.base.Encode(text)
	if pr.mean != nil {
		vecmath.Axpy(-1, pr.mean, raw)
	}
	out := make([]float32, pr.p.Rows)
	pr.p.MulVec(out, raw)
	if vecmath.Normalize(out) == 0 {
		out[0] = 1
	}
	return out
}

// Dim implements Encoder.
func (pr *Projected) Dim() int { return pr.p.Rows }

// Name implements Encoder.
func (pr *Projected) Name() string {
	return fmt.Sprintf("%s+pca%d", pr.base.Name(), pr.p.Rows)
}

// Base returns the wrapped encoder.
func (pr *Projected) Base() Encoder { return pr.base }
