package embed

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/tokenizer"
	"repro/internal/vecmath"
)

// Model is a trainable sentence encoder:
//
//	ids    = tokenize(text)                    hashed token features
//	pooled = mean(E[ids])                      EmbDim
//	h      = W·pooled + b                      OutDim
//	a      = tanh(h)                           OutDim
//	out    = a / ‖a‖                           OutDim, unit norm
//
// The analytic backward pass for this pipeline is in Backward. Model also
// implements Encoder for inference. Encode is safe for concurrent use as
// long as no training step runs concurrently.
type Model struct {
	Cfg Arch
	Tok *tokenizer.Tokenizer

	// E is the embedding table (Vocab × EmbDim).
	E *vecmath.Matrix
	// W is the projection (OutDim × EmbDim); B the bias (OutDim).
	W *vecmath.Matrix
	B []float32

	// actsPool recycles Activations across Encode calls, so the serving
	// hot path reuses its forward-pass buffers instead of allocating
	// ~10 KB per encode.
	actsPool sync.Pool
}

// NewModel builds a model with weights initialised from seed. Two models
// built from the same Arch and seed are identical, which the FL experiments
// rely on for a common starting point across clients.
func NewModel(cfg Arch, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Cfg: cfg,
		Tok: tokenizer.New(cfg.Mode, cfg.Vocab),
		// Row cfg.Vocab (one past the hash range) is the shared anchor
		// used when cfg.AnchorWeight > 0; allocating it unconditionally
		// keeps the weight layout independent of the anchor setting.
		E: vecmath.NewMatrix(cfg.Vocab+1, cfg.EmbDim),
		W: vecmath.NewMatrix(cfg.OutDim, cfg.EmbDim),
		B: make([]float32, cfg.OutDim),
	}
	// Unit-variance token rows; variance-preserving projection.
	m.E.RandomizeNormal(rng, 1)
	m.W.RandomizeNormal(rng, 1/float32Sqrt(cfg.EmbDim))
	return m
}

// anchorRow is the index of the shared anchor row in E.
func (m *Model) anchorRow() int { return m.Cfg.Vocab }

func float32Sqrt(n int) float64 { return math.Sqrt(float64(n)) }

// Name implements Encoder.
func (m *Model) Name() string { return m.Cfg.Name }

// Dim implements Encoder.
func (m *Model) Dim() int { return m.Cfg.OutDim }

// Trainable reports whether fine-tuning is supported for this architecture.
func (m *Model) Trainable() bool { return m.Cfg.Trainable }

// Activations holds every intermediate value of one forward pass that the
// backward pass needs. Reused across calls to avoid per-sample allocation
// in training loops.
type Activations struct {
	IDs    []int
	Pooled []float32
	Act    []float32 // tanh(h)
	Norm   float32   // ‖a‖ before normalisation
	Out    []float32 // final unit-norm embedding
}

// NewActivations allocates buffers sized for m.
func (m *Model) NewActivations() *Activations {
	return &Activations{
		Pooled: make([]float32, m.Cfg.EmbDim),
		Act:    make([]float32, m.Cfg.OutDim),
		Out:    make([]float32, m.Cfg.OutDim),
	}
}

// Forward runs the encoder on text, filling acts. The returned slice is
// acts.Out (not a copy).
func (m *Model) Forward(text string, acts *Activations) []float32 {
	acts.IDs = m.Tok.TokenizeAppend(text, acts.IDs[:0])
	vecmath.Zero(acts.Pooled)
	aw := m.Cfg.AnchorWeight
	if len(acts.IDs) > 0 {
		inv := (1 - aw) / float32(len(acts.IDs))
		for _, id := range acts.IDs {
			vecmath.Axpy(inv, m.E.Row(id), acts.Pooled)
		}
	}
	if aw > 0 {
		vecmath.Axpy(aw, m.E.Row(m.anchorRow()), acts.Pooled)
	}
	m.W.MulVec(acts.Act, acts.Pooled)
	for i := range acts.Act {
		acts.Act[i] = tanh32(acts.Act[i] + m.B[i])
	}
	copy(acts.Out, acts.Act)
	acts.Norm = vecmath.Normalize(acts.Out)
	if acts.Norm == 0 {
		// Degenerate (empty) input: emit a fixed unit vector so cosine
		// comparisons stay well-defined.
		acts.Out[0] = 1
		acts.Norm = 1
	}
	// Synthetic extra compute modelling a deep transformer stack. The loop
	// touches Act so it cannot be optimised away, but contributes nothing
	// to the output (it re-normalises an already-normalised vector).
	for k := 0; k < m.Cfg.ExtraCost; k++ {
		vecmath.Normalize(acts.Out)
	}
	return acts.Out
}

// getActs draws pooled activations (allocating on first use). Safe for
// concurrent use; the pool is per model, so buffer shapes always match.
func (m *Model) getActs() *Activations {
	acts, _ := m.actsPool.Get().(*Activations)
	if acts == nil {
		acts = m.NewActivations()
	}
	return acts
}

// Encode implements Encoder. Forward-pass buffers come from the model's
// activation pool, so a warmed Encode allocates only the returned vector
// (and whatever tokenisation needs).
func (m *Model) Encode(text string) []float32 {
	acts := m.getActs()
	m.Forward(text, acts)
	out := vecmath.Clone(acts.Out)
	m.actsPool.Put(acts)
	return out
}

// EncodeInto is the pooled-buffer form of Encode: the embedding is
// appended into dst[:0] (grown if needed) and returned, so callers that
// recycle probe buffers encode without any per-call allocation.
func (m *Model) EncodeInto(text string, dst []float32) []float32 {
	acts := m.getActs()
	m.Forward(text, acts)
	dst = append(dst[:0], acts.Out...)
	m.actsPool.Put(acts)
	return dst
}

// EncodeBatch encodes texts in parallel and returns a len(texts)×Dim matrix
// whose row i is the embedding of texts[i].
func (m *Model) EncodeBatch(texts []string) *vecmath.Matrix {
	out := vecmath.NewMatrix(len(texts), m.Cfg.OutDim)
	vecmath.ParallelFor(len(texts), func(lo, hi int) {
		acts := m.getActs()
		for i := lo; i < hi; i++ {
			m.Forward(texts[i], acts)
			copy(out.Row(i), acts.Out)
		}
		m.actsPool.Put(acts)
	})
	return out
}

// Grads accumulates parameter gradients across a mini-batch.
type Grads struct {
	E *vecmath.Matrix
	W *vecmath.Matrix
	B []float32
	// touched tracks which embedding rows received gradient, so Zero and
	// the optimiser can skip the (large) untouched remainder.
	touched map[int]struct{}
}

// NewGrads allocates zeroed gradient buffers shaped like m's parameters.
func (m *Model) NewGrads() *Grads {
	return &Grads{
		E:       vecmath.NewMatrix(m.Cfg.Vocab+1, m.Cfg.EmbDim),
		W:       vecmath.NewMatrix(m.Cfg.OutDim, m.Cfg.EmbDim),
		B:       make([]float32, m.Cfg.OutDim),
		touched: make(map[int]struct{}),
	}
}

// Zero clears the accumulated gradients.
func (g *Grads) Zero() {
	for id := range g.touched {
		vecmath.Zero(g.E.Row(id))
		delete(g.touched, id)
	}
	vecmath.Zero(g.W.Data)
	vecmath.Zero(g.B)
}

// TouchedRows returns the embedding-table rows that received gradient since
// the last Zero, in unspecified order.
func (g *Grads) TouchedRows() []int {
	rows := make([]int, 0, len(g.touched))
	for id := range g.touched {
		rows = append(rows, id)
	}
	return rows
}

// Backward accumulates into g the parameter gradients of a scalar loss L
// given dOut = ∂L/∂out for the forward pass recorded in acts.
//
// Derivation (a = tanh(h), out = a/‖a‖):
//
//	∂L/∂a  = (dOut − out·(out⋅dOut)) / ‖a‖     (L2-normalisation Jacobian)
//	∂L/∂h  = ∂L/∂a ⊙ (1 − a²)                   (tanh)
//	∂L/∂W  = ∂L/∂h ⊗ pooled,  ∂L/∂b = ∂L/∂h
//	∂L/∂pooled = Wᵀ·∂L/∂h
//	∂L/∂E[id] += ∂L/∂pooled / |ids|  for each token id
func (m *Model) Backward(acts *Activations, dOut []float32, g *Grads) {
	if len(dOut) != m.Cfg.OutDim {
		panic(fmt.Sprintf("embed: Backward dOut dim %d, want %d", len(dOut), m.Cfg.OutDim))
	}
	n := m.Cfg.OutDim
	// Through L2 normalisation.
	dot := vecmath.Dot(acts.Out, dOut)
	dh := make([]float32, n)
	invNorm := 1 / acts.Norm
	for i := 0; i < n; i++ {
		da := (dOut[i] - acts.Out[i]*dot) * invNorm
		dh[i] = da * (1 - acts.Act[i]*acts.Act[i])
	}
	// Projection gradients.
	for i := 0; i < n; i++ {
		if dh[i] != 0 {
			vecmath.Axpy(dh[i], acts.Pooled, g.W.Row(i))
		}
		g.B[i] += dh[i]
	}
	// Into the embedding table.
	aw := m.Cfg.AnchorWeight
	if len(acts.IDs) == 0 && aw == 0 {
		return
	}
	dPooled := make([]float32, m.Cfg.EmbDim)
	m.W.MulVecT(dPooled, dh)
	if len(acts.IDs) > 0 {
		inv := (1 - aw) / float32(len(acts.IDs))
		for _, id := range acts.IDs {
			vecmath.Axpy(inv, dPooled, g.E.Row(id))
			g.touched[id] = struct{}{}
		}
	}
	if aw > 0 {
		vecmath.Axpy(aw, dPooled, g.E.Row(m.anchorRow()))
		g.touched[m.anchorRow()] = struct{}{}
	}
}

// tanh32 is a float32 tanh with cheap saturation cut-offs; |x| ≥ 9 is
// indistinguishable from ±1 in float32.
func tanh32(x float32) float32 {
	if x > 9 {
		return 1
	}
	if x < -9 {
		return -1
	}
	return float32(math.Tanh(float64(x)))
}
