package embed

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tokenizer"
	"repro/internal/vecmath"
)

// tinyArch keeps gradient-check tests fast and numerically tight.
var tinyArch = Arch{
	Name:      "mpnet-sim", // reuse a registered name so Save/Load works
	Mode:      tokenizer.Words,
	Vocab:     64,
	EmbDim:    8,
	OutDim:    12,
	Trainable: true,
}

func TestEncodeDeterministic(t *testing.T) {
	a := NewModel(MPNetSim, 42)
	b := NewModel(MPNetSim, 42)
	ea := a.Encode("draw a line plot in python")
	eb := b.Encode("draw a line plot in python")
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed + same text must produce identical embeddings")
		}
	}
}

func TestEncodeUnitNorm(t *testing.T) {
	for _, cfg := range []Arch{MPNetSim, AlbertSim, Llama2Sim} {
		m := NewModel(cfg, 1)
		e := m.Encode("what is federated learning")
		n := float64(vecmath.Norm(e))
		if math.Abs(n-1) > 1e-4 {
			t.Errorf("%s: embedding norm = %v, want 1", cfg.Name, n)
		}
		if len(e) != cfg.OutDim {
			t.Errorf("%s: dim = %d, want %d", cfg.Name, len(e), cfg.OutDim)
		}
	}
}

func TestEncodeEmptyText(t *testing.T) {
	m := NewModel(tinyArch, 1)
	e := m.Encode("")
	n := float64(vecmath.Norm(e))
	if math.Abs(n-1) > 1e-5 {
		t.Fatalf("empty-text embedding norm = %v, want 1", n)
	}
}

func TestEncodeBatchMatchesEncode(t *testing.T) {
	m := NewModel(AlbertSim, 3)
	texts := []string{
		"how do I sort a list in go",
		"what is the capital of france",
		"",
		"explain principal component analysis",
	}
	batch := m.EncodeBatch(texts)
	for i, txt := range texts {
		single := m.Encode(txt)
		row := batch.Row(i)
		for j := range single {
			if single[j] != row[j] {
				t.Fatalf("EncodeBatch row %d differs from Encode", i)
			}
		}
	}
}

func TestSimilarTextCloserThanDifferent(t *testing.T) {
	// Even untrained, shared surface tokens must push paraphrases closer
	// than unrelated text — the starting point the training improves on.
	m := NewModel(MPNetSim, 7)
	a := m.Encode("increase the battery life of my phone")
	b := m.Encode("increase the battery duration of my phone")
	c := m.Encode("recipe for chocolate cake frosting")
	simAB := vecmath.Dot(a, b)
	simAC := vecmath.Dot(a, c)
	if simAB <= simAC {
		t.Fatalf("paraphrase similarity %v not above unrelated %v", simAB, simAC)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	m := NewModel(tinyArch, 5)
	w := m.Weights()
	m2 := NewModel(tinyArch, 99)
	m2.SetWeights(w)
	ea := m.Encode("some query text")
	eb := m2.Encode("some query text")
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("SetWeights(Weights()) did not transfer the model")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(MPNetSim, 11)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ea := m.Encode("persistent model")
	eb := m2.Encode("persistent model")
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("loaded model produces different embeddings")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("Load accepted garbage input")
	}
}

func TestArchByName(t *testing.T) {
	for _, name := range []string{"mpnet-sim", "albert-sim", "llama2-sim"} {
		cfg, err := ArchByName(name)
		if err != nil {
			t.Fatalf("ArchByName(%q): %v", name, err)
		}
		if cfg.Name != name {
			t.Fatalf("ArchByName(%q).Name = %q", name, cfg.Name)
		}
	}
	if _, err := ArchByName("bert-huge"); err == nil {
		t.Fatal("ArchByName accepted unknown architecture")
	}
}

// TestBackwardGradientCheck verifies the analytic backward pass against
// central finite differences for L = v⋅out with random fixed v, with the
// anchor blend both disabled and enabled.
func TestBackwardGradientCheck(t *testing.T) {
	for _, aw := range []float32{0, 0.5} {
		cfg := tinyArch
		cfg.AnchorWeight = aw
		t.Run(fmt.Sprintf("anchor=%v", aw), func(t *testing.T) {
			gradientCheck(t, cfg)
		})
	}
}

func gradientCheck(t *testing.T, arch Arch) {
	m := NewModel(arch, 21)
	rng := rand.New(rand.NewSource(33))
	text := "alpha beta gamma delta"
	v := make([]float32, m.Cfg.OutDim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		acts := m.NewActivations()
		out := m.Forward(text, acts)
		return float64(vecmath.Dot(v, out))
	}

	acts := m.NewActivations()
	m.Forward(text, acts)
	g := m.NewGrads()
	m.Backward(acts, v, g)

	const eps = 1e-3
	checkParam := func(name string, data []float32, grad []float32, idx int) {
		orig := data[idx]
		data[idx] = orig + eps
		lp := loss()
		data[idx] = orig - eps
		lm := loss()
		data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(grad[idx])
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %v vs numeric %v", name, idx, analytic, numeric)
		}
	}
	// Spot-check W and B at random indices.
	for k := 0; k < 20; k++ {
		checkParam("W", m.W.Data, g.W.Data, rng.Intn(len(m.W.Data)))
		checkParam("B", m.B, g.B, rng.Intn(len(m.B)))
	}
	// Check every touched embedding row fully.
	for _, id := range g.TouchedRows() {
		for j := 0; j < m.Cfg.EmbDim; j++ {
			flat := id*m.Cfg.EmbDim + j
			checkParam("E", m.E.Data, g.E.Data, flat)
		}
	}
	if len(g.TouchedRows()) == 0 {
		t.Fatal("no embedding rows touched; tokenization broken?")
	}
}

func TestGradsZero(t *testing.T) {
	m := NewModel(tinyArch, 2)
	acts := m.NewActivations()
	m.Forward("some words here", acts)
	g := m.NewGrads()
	dOut := make([]float32, m.Cfg.OutDim)
	dOut[0] = 1
	m.Backward(acts, dOut, g)
	if len(g.TouchedRows()) == 0 {
		t.Fatal("Backward touched no rows")
	}
	g.Zero()
	if len(g.TouchedRows()) != 0 {
		t.Fatal("Zero did not clear touched rows")
	}
	for _, x := range g.W.Data {
		if x != 0 {
			t.Fatal("Zero did not clear W gradient")
		}
	}
	for _, x := range g.E.Data {
		if x != 0 {
			t.Fatal("Zero did not clear E gradient")
		}
	}
}

func TestProjectedEncoder(t *testing.T) {
	m := NewModel(tinyArch, 8)
	rng := rand.New(rand.NewSource(4))
	p := vecmath.NewMatrix(4, m.Dim())
	p.RandomizeNormal(rng, 1)
	pe := WithProjection(m, p)
	if pe.Dim() != 4 {
		t.Fatalf("Projected dim = %d, want 4", pe.Dim())
	}
	e := pe.Encode("compressed embedding test")
	if len(e) != 4 {
		t.Fatalf("Projected embedding len = %d, want 4", len(e))
	}
	if n := float64(vecmath.Norm(e)); math.Abs(n-1) > 1e-5 {
		t.Fatalf("Projected embedding norm = %v, want 1", n)
	}
	if pe.Base() != Encoder(m) {
		t.Fatal("Base() does not return the wrapped encoder")
	}
}

func TestProjectedPanicsOnShapeMismatch(t *testing.T) {
	m := NewModel(tinyArch, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("WithProjection accepted mismatched shape")
		}
	}()
	WithProjection(m, vecmath.NewMatrix(4, m.Dim()+1))
}

func BenchmarkEncodeMPNetSim(b *testing.B) {
	m := NewModel(MPNetSim, 1)
	q := "How can I increase the battery life of my smartphone"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(q)
	}
}

func BenchmarkEncodeAlbertSim(b *testing.B) {
	m := NewModel(AlbertSim, 1)
	q := "How can I increase the battery life of my smartphone"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(q)
	}
}

func BenchmarkEncodeLlama2Sim(b *testing.B) {
	m := NewModel(Llama2Sim, 1)
	q := "How can I increase the battery life of my smartphone"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Encode(q)
	}
}
