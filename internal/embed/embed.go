// Package embed implements the sentence-embedding encoders that MeanCache
// uses for semantic matching.
//
// The paper fine-tunes pretrained transformers (MPNet, ALBERT) with SBERT
// and compares them against frozen Llama 2 embeddings. Go has no such
// model ecosystem, so this package substitutes compact trainable encoders
// with the same *interface contract* — text in, L2-normalised dense vector
// out — and the same experimental dynamics:
//
//   - MPNet-sim and Albert-sim are trainable: an embedding table over hashed
//     token features, mean pooling, a dense projection with tanh, and L2
//     normalisation. Full analytic backprop is implemented in model.go, so
//     the contrastive/MNRL fine-tuning of §III-A.1 and the FL training
//     curves of Figures 11–12 are real optimisation, not simulation.
//   - Llama2-sim is frozen (its Trainable() is false): a much larger
//     char-trigram encoder whose embeddings capture surface form rather
//     than meaning, reproducing the qualitative deficit measured in §IV-G
//     (slow to encode, large to store, poor at semantic matching).
//
// All encoders are safe for concurrent Encode calls once training stops.
package embed

import (
	"fmt"

	"repro/internal/tokenizer"
)

// Encoder converts text into a dense L2-normalised embedding vector.
// Implementations must be deterministic: equal text yields equal vectors.
type Encoder interface {
	// Encode returns the embedding of text. The returned slice is owned by
	// the caller. Embeddings are L2-normalised, so the dot product of two
	// embeddings equals their cosine similarity.
	Encode(text string) []float32
	// Dim reports the embedding dimensionality.
	Dim() int
	// Name identifies the encoder architecture (e.g. "mpnet-sim").
	Name() string
}

// IntoEncoder is the optional pooled-buffer encode surface: the
// embedding is appended into dst[:0] (grown if needed) and returned, so
// buffer-recycling callers encode without per-call allocation. Model,
// Swappable and the serving micro-batcher implement it.
type IntoEncoder interface {
	EncodeInto(text string, dst []float32) []float32
}

// EncodeInto encodes through enc's pooled-buffer path when it has one,
// copying through dst otherwise — the one fallback shared by every
// buffer-recycling caller.
func EncodeInto(enc Encoder, text string, dst []float32) []float32 {
	if ie, ok := enc.(IntoEncoder); ok {
		return ie.EncodeInto(text, dst)
	}
	return append(dst[:0], enc.Encode(text)...)
}

// Arch describes a registered encoder architecture.
type Arch struct {
	// Name is the registry key, e.g. "mpnet-sim".
	Name string
	// Mode selects the token features (see tokenizer).
	Mode tokenizer.Mode
	// Vocab is the number of hash buckets in the embedding table.
	Vocab int
	// EmbDim is the width of the embedding table (factorised width for
	// Albert-sim, mirroring real ALBERT's factorised embedding).
	EmbDim int
	// OutDim is the final embedding dimensionality.
	OutDim int
	// Trainable reports whether fine-tuning is supported. Llama2-sim is
	// frozen, as GPTCache uses Llama purely as a feature extractor.
	Trainable bool
	// ExtraCost adds synthetic per-encode compute proportional to OutDim,
	// modelling the deep transformer stack a real LLM would run. Zero for
	// the small models.
	ExtraCost int
	// AnchorWeight blends a shared trainable anchor row into the pooled
	// representation: pooled = aw·anchor + (1−aw)·mean(tokens). This
	// reproduces the anisotropy of real transformer sentence embeddings,
	// whose pairwise cosines concentrate well above zero — the regime in
	// which the paper's thresholds (0.7–0.85) operate.
	AnchorWeight float32
}

// The three architectures evaluated in the paper (§IV-A.1). Dimensions
// follow the paper where it matters to the experiments: both small models
// emit 768-d embeddings, Llama2-sim emits 4096-d.
var (
	// MPNetSim mirrors MPNet: the strongest small encoder, with bigram
	// features for word-order sensitivity.
	MPNetSim = Arch{
		Name:      "mpnet-sim",
		Mode:      tokenizer.WordsAndBigrams,
		Vocab:     16384,
		EmbDim:    192,
		OutDim:    768,
		Trainable: true,

		AnchorWeight: 0.1,
	}
	// AlbertSim mirrors ALBERT: lighter, word features only, factorised
	// 128-wide embedding table projected to 768.
	AlbertSim = Arch{
		Name:      "albert-sim",
		Mode:      tokenizer.Words,
		Vocab:     16384,
		EmbDim:    128,
		OutDim:    768,
		Trainable: true,

		AnchorWeight: 0.1,
	}
	// Llama2Sim mirrors frozen Llama 2 embeddings: 4096-d, char-trigram
	// surface features, frozen, and deliberately expensive to run.
	Llama2Sim = Arch{
		Name:      "llama2-sim",
		Mode:      tokenizer.CharTrigrams,
		Vocab:     2048,
		EmbDim:    256,
		OutDim:    4096,
		Trainable: false,
		ExtraCost: 24,

		AnchorWeight: 0.55,
	}
)

// ArchByName resolves a registered architecture by name.
func ArchByName(name string) (Arch, error) {
	switch name {
	case MPNetSim.Name:
		return MPNetSim, nil
	case AlbertSim.Name:
		return AlbertSim, nil
	case Llama2Sim.Name:
		return Llama2Sim, nil
	}
	return Arch{}, fmt.Errorf("embed: unknown architecture %q", name)
}
