package embed

import (
	"sync/atomic"

	"repro/internal/vecmath"
)

// Swappable is an Encoder whose underlying encoder can be replaced
// atomically while serving traffic — the hot-rollout primitive of the
// online FL loop. Every tenant of a serving process encodes through one
// Swappable; committing a freshly aggregated global model is a single
// pointer swap, after which all in-flight and future Encode calls use the
// new weights while cached entries are re-embedded in the background.
//
// The replacement must have the same output dimension as the original
// (rollouts swap same-architecture models); Swap panics otherwise, because
// every live cache is sized to the original dimension.
type Swappable struct {
	cur atomic.Pointer[encoderBox]
}

// encoderBox wraps the interface value so distinct concrete encoder types
// can share one atomic slot.
type encoderBox struct{ enc Encoder }

// NewSwappable wraps enc.
func NewSwappable(enc Encoder) *Swappable {
	s := &Swappable{}
	s.cur.Store(&encoderBox{enc})
	return s
}

// Current returns the encoder currently being served.
func (s *Swappable) Current() Encoder { return s.cur.Load().enc }

// Swap atomically replaces the served encoder.
func (s *Swappable) Swap(enc Encoder) {
	if enc.Dim() != s.Dim() {
		panic("embed: Swappable.Swap dimension mismatch")
	}
	s.cur.Store(&encoderBox{enc})
}

// Encode implements Encoder.
func (s *Swappable) Encode(text string) []float32 { return s.Current().Encode(text) }

// EncodeInto forwards the pooled-buffer encode when the current encoder
// supports it, copying through dst otherwise, so buffer-recycling
// callers keep their zero-alloc path across a hot model swap.
func (s *Swappable) EncodeInto(text string, dst []float32) []float32 {
	return EncodeInto(s.Current(), text, dst)
}

// EncodeBatch forwards the batch fast path when the current encoder has
// one (embed.Model does), so the serving micro-batcher keeps its single
// parallel sweep through a Swappable.
func (s *Swappable) EncodeBatch(texts []string) *vecmath.Matrix {
	if bc, ok := s.Current().(interface {
		EncodeBatch(texts []string) *vecmath.Matrix
	}); ok {
		return bc.EncodeBatch(texts)
	}
	out := vecmath.NewMatrix(len(texts), s.Dim())
	for i, t := range texts {
		copy(out.Row(i), s.Encode(t))
	}
	return out
}

// Dim implements Encoder.
func (s *Swappable) Dim() int { return s.Current().Dim() }

// Name implements Encoder.
func (s *Swappable) Name() string { return s.Current().Name() }
