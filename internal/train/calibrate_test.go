package train

import (
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
)

// TestCalibrateFullModel is a development harness, not a regression test:
// it trains the real MPNet-sim architecture on the full default corpus and
// logs the sweep trajectory so that corpus and hyperparameter constants can
// be tuned to the paper's operating regime (optimal τ ≈ 0.8, clear
// pretrain→fine-tune F1 gap). Enable with MEANCACHE_CALIBRATE=1.
func TestCalibrateFullModel(t *testing.T) {
	if os.Getenv("MEANCACHE_CALIBRATE") == "" {
		t.Skip("set MEANCACHE_CALIBRATE=1 to run the calibration harness")
	}
	corpus := dataset.GenerateCorpus(dataset.DefaultConfig())
	m := embed.NewModel(embed.MPNetSim, 7)
	cfg := DefaultConfig()
	before := Sweep(m, corpus.Val, 0.01, 1)
	t.Logf("untrained: optF1=%.3f tau*=%.2f prec=%.3f rec=%.3f",
		before.Optimal.Scores.FScore, before.Optimal.Tau,
		before.Optimal.Scores.Precision, before.Optimal.Scores.Recall)
	at07 := EvaluateAt(m, corpus.Val, 0.7)
	t.Logf("untrained @0.7: F1=%.3f prec=%.3f rec=%.3f acc=%.3f",
		at07.F1(), at07.Precision(), at07.Recall(), at07.Accuracy())

	tr := NewTrainer(m, NewSGD(cfg.LR), cfg)
	for round := 0; round < 8; round++ {
		stats := tr.Train(corpus.Train)
		res := Sweep(m, corpus.Val, 0.01, 1)
		t.Logf("round %d: mnrl=%.4f contr=%.4f optF1=%.3f tau*=%.2f prec=%.3f rec=%.3f",
			round, stats[len(stats)-1].MNRLLoss, stats[len(stats)-1].ContrastiveLoss,
			res.Optimal.Scores.FScore, res.Optimal.Tau,
			res.Optimal.Scores.Precision, res.Optimal.Scores.Recall)
	}
}
