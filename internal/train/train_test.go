package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/tokenizer"
	"repro/internal/vecmath"
)

var testArch = embed.Arch{
	Name:      "mpnet-sim",
	Mode:      tokenizer.WordsAndBigrams,
	Vocab:     2048,
	EmbDim:    64,
	OutDim:    128,
	Trainable: true,

	AnchorWeight: 0.4,
}

func testCorpus() *dataset.Corpus {
	cfg := dataset.DefaultConfig()
	cfg.Concepts = 120
	cfg.Intents = 400
	return dataset.GenerateCorpus(cfg)
}

func randUnitRows(rows, cols int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, cols)
	m.RandomizeNormal(rng, 1)
	for i := 0; i < rows; i++ {
		vecmath.Normalize(m.Row(i))
	}
	return m
}

func TestMNRLGradLossDirection(t *testing.T) {
	// Perfectly aligned pairs should have lower loss than random pairs.
	b, d := 8, 16
	u := randUnitRows(b, d, 1)
	aligned := u.Clone()
	random := randUnitRows(b, d, 2)
	du := vecmath.NewMatrix(b, d)
	dv := vecmath.NewMatrix(b, d)
	lossAligned := MNRLGrad(u, aligned, 20, du, dv)
	lossRandom := MNRLGrad(u, random, 20, du, dv)
	if lossAligned >= lossRandom {
		t.Fatalf("aligned loss %v should be below random loss %v", lossAligned, lossRandom)
	}
}

// Finite-difference check of MNRL gradients with respect to U.
func TestMNRLGradientCheck(t *testing.T) {
	b, d := 4, 6
	u := randUnitRows(b, d, 3)
	v := randUnitRows(b, d, 4)
	du := vecmath.NewMatrix(b, d)
	dv := vecmath.NewMatrix(b, d)
	MNRLGrad(u, v, 5, du, dv)
	const eps = 1e-3
	for trial := 0; trial < 10; trial++ {
		i := trial % b
		j := (trial * 7) % d
		check := func(m, dm *vecmath.Matrix) {
			orig := m.At(i, j)
			tmpU, tmpV := vecmath.NewMatrix(b, d), vecmath.NewMatrix(b, d)
			m.Set(i, j, orig+eps)
			lp := MNRLGrad(u, v, 5, tmpU, tmpV)
			m.Set(i, j, orig-eps)
			lm := MNRLGrad(u, v, 5, tmpU, tmpV)
			m.Set(i, j, orig)
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(dm.At(i, j))
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Errorf("grad(%d,%d): analytic %v vs numeric %v", i, j, analytic, numeric)
			}
		}
		check(u, du)
		check(v, dv)
	}
}

func TestMNRLGradEmptyBatch(t *testing.T) {
	z := vecmath.NewMatrix(0, 4)
	if loss := MNRLGrad(z, z, 20, vecmath.NewMatrix(0, 4), vecmath.NewMatrix(0, 4)); loss != 0 {
		t.Fatalf("empty-batch MNRL loss = %v, want 0", loss)
	}
}

func TestContrastiveGradDup(t *testing.T) {
	u := []float32{1, 0}
	v := []float32{0, 1} // orthogonal duplicates: loss (1-0)² = 1
	du := make([]float32, 2)
	dv := make([]float32, 2)
	loss := ContrastiveGrad(u, v, true, 0.4, du, dv)
	if math.Abs(loss-1) > 1e-6 {
		t.Fatalf("dup loss = %v, want 1", loss)
	}
	// Gradient should pull u toward v: dL/du = -2(1-c)·v = -2v.
	if du[1] != -2 {
		t.Fatalf("du = %v, want pull toward v", du)
	}
}

func TestContrastiveGradNonDupBelowMargin(t *testing.T) {
	u := []float32{1, 0}
	v := []float32{0, 1} // cosine 0 < margin: no loss, no gradient
	du := make([]float32, 2)
	dv := make([]float32, 2)
	if loss := ContrastiveGrad(u, v, false, 0.4, du, dv); loss != 0 {
		t.Fatalf("below-margin non-dup loss = %v, want 0", loss)
	}
	for _, g := range du {
		if g != 0 {
			t.Fatal("below-margin non-dup should produce zero gradient")
		}
	}
}

func TestContrastiveGradNonDupAboveMargin(t *testing.T) {
	u := []float32{1, 0}
	v := []float32{1, 0} // cosine 1 > margin 0.4: loss (0.6)²
	du := make([]float32, 2)
	dv := make([]float32, 2)
	loss := ContrastiveGrad(u, v, false, 0.4, du, dv)
	if math.Abs(loss-0.36) > 1e-6 {
		t.Fatalf("above-margin non-dup loss = %v, want 0.36", loss)
	}
	if du[0] <= 0 {
		t.Fatal("gradient should push similar non-duplicates apart")
	}
}

func TestSGDStepMovesParameters(t *testing.T) {
	m := embed.NewModel(testArch, 1)
	before := m.Weights()
	acts := m.NewActivations()
	m.Forward("alpha beta gamma", acts)
	g := m.NewGrads()
	dOut := make([]float32, m.Dim())
	for i := range dOut {
		dOut[i] = 0.1
	}
	m.Backward(acts, dOut, g)
	NewSGD(0.5).Step(m, g)
	after := m.Weights()
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("SGD step changed no parameters")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise ‖W‖² via Adam on a tiny model: gradients = 2W.
	m := embed.NewModel(testArch, 2)
	opt := NewAdam(0.05)
	g := m.NewGrads()
	for step := 0; step < 300; step++ {
		g.Zero()
		for i, w := range m.W.Data {
			g.W.Data[i] = 2 * w
		}
		opt.Step(m, g)
	}
	if n := m.W.FrobeniusNorm(); n > 0.5 {
		t.Fatalf("Adam failed to shrink ‖W‖: %v", n)
	}
}

func TestTrainerRejectsFrozenModel(t *testing.T) {
	frozen := embed.NewModel(embed.Llama2Sim, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewTrainer accepted a frozen model")
		}
	}()
	NewTrainer(frozen, NewSGD(0.1), DefaultConfig())
}

// TestTrainingImprovesF1 is the core learning-dynamics test: fine-tuning on
// the synthetic corpus must improve validation F1 at the optimal threshold,
// the effect Figures 11–12 measure round by round.
func TestTrainingImprovesF1(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	corpus := testCorpus()
	m := embed.NewModel(testArch, 7)
	before := Sweep(m, corpus.Val, 0.02, 1)

	cfg := DefaultConfig()
	cfg.Epochs = 4
	tr := NewTrainer(m, NewSGD(cfg.LR), cfg)
	stats := tr.Train(corpus.Train)
	after := Sweep(m, corpus.Val, 0.02, 1)

	if len(stats) != cfg.Epochs {
		t.Fatalf("epoch stats = %d, want %d", len(stats), cfg.Epochs)
	}
	if stats[len(stats)-1].MNRLLoss >= stats[0].MNRLLoss {
		t.Errorf("MNRL loss did not decrease: %v -> %v", stats[0].MNRLLoss, stats[len(stats)-1].MNRLLoss)
	}
	if after.Optimal.Scores.FScore <= before.Optimal.Scores.FScore {
		t.Errorf("training did not improve optimal F1: %.3f -> %.3f",
			before.Optimal.Scores.FScore, after.Optimal.Scores.FScore)
	}
	t.Logf("optimal F1 %.3f -> %.3f (tau %.2f -> %.2f)",
		before.Optimal.Scores.FScore, after.Optimal.Scores.FScore,
		before.Optimal.Tau, after.Optimal.Tau)
}

func TestSweepShapes(t *testing.T) {
	corpus := testCorpus()
	m := embed.NewModel(testArch, 9)
	res := Sweep(m, corpus.Val[:100], 0.1, 1)
	if len(res.Points) != 11 {
		t.Fatalf("sweep points = %d, want 11", len(res.Points))
	}
	// τ=0 predicts a hit for every non-negative cosine, so recall is near 1
	// (a few pairs can land fractionally below zero) and precision is near
	// the 0.5 duplicate base rate.
	if r := res.Points[0].Scores.Recall; r < 0.9 {
		t.Fatalf("recall at tau=0 = %v, want >= 0.9", r)
	}
	// Precision at τ=0 approaches the duplicate base rate from above
	// (pairs with negative cosine are predicted as misses).
	if p := res.Points[0].Scores.Precision; p < 0.45 {
		t.Fatalf("precision at tau=0 = %v, want >= base rate 0.5-ish", p)
	}
	// Optimal must beat the endpoints.
	if res.Optimal.Scores.FScore < res.Points[0].Scores.FScore {
		t.Fatal("optimum below tau=0 point")
	}
}

func TestSweepMatchesEvaluateAt(t *testing.T) {
	corpus := testCorpus()
	m := embed.NewModel(testArch, 11)
	pairs := corpus.Val
	res := Sweep(m, pairs, 0.25, 1)
	for _, pt := range res.Points {
		c := EvaluateAt(m, pairs, pt.Tau)
		if math.Abs(c.F1()-pt.Scores.FScore) > 1e-9 {
			t.Fatalf("tau=%.2f: sweep F1 %v != direct F1 %v", pt.Tau, pt.Scores.FScore, c.F1())
		}
	}
}

func BenchmarkTrainerEpoch(b *testing.B) {
	corpus := testCorpus()
	cfg := DefaultConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := embed.NewModel(testArch, 7)
		tr := NewTrainer(m, NewSGD(cfg.LR), cfg)
		b.StartTimer()
		tr.Train(corpus.Train[:200])
	}
}
