package train

import (
	"math"

	"repro/internal/embed"
	"repro/internal/vecmath"
)

// Optimizer applies accumulated gradients to a model's parameters.
type Optimizer interface {
	// Step applies g to m's parameters and prepares g for reuse (zeroing
	// is the caller's responsibility via g.Zero()).
	Step(m *embed.Model, g *embed.Grads)
	// Name identifies the optimiser for logs.
	Name() string
}

// SGD is plain stochastic gradient descent, sparse-aware: only embedding
// rows that received gradient are updated, which keeps per-step cost
// proportional to batch token count rather than vocabulary size.
type SGD struct {
	LR float32
}

// NewSGD returns an SGD optimiser with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(m *embed.Model, g *embed.Grads) {
	for _, id := range g.TouchedRows() {
		vecmath.Axpy(-s.LR, g.E.Row(id), m.E.Row(id))
	}
	vecmath.Axpy(-s.LR, g.W.Data, m.W.Data)
	vecmath.Axpy(-s.LR, g.B, m.B)
}

// Adam implements the Adam optimiser with bias correction. Moment buffers
// are allocated lazily on first Step and sized to the model. The embedding
// table moments are updated sparsely for touched rows only; the per-row
// step counter preserves correct bias correction under sparse updates.
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	mE, vE *vecmath.Matrix
	mW, vW *vecmath.Matrix
	mB, vB []float32
	stepW  int
	stepE  []int // per-embedding-row step count
}

// NewAdam returns an Adam optimiser with standard defaults for the moment
// decay rates.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

func (a *Adam) ensure(m *embed.Model) {
	if a.mE != nil {
		return
	}
	a.mE = vecmath.NewMatrix(m.E.Rows, m.E.Cols)
	a.vE = vecmath.NewMatrix(m.E.Rows, m.E.Cols)
	a.mW = vecmath.NewMatrix(m.W.Rows, m.W.Cols)
	a.vW = vecmath.NewMatrix(m.W.Rows, m.W.Cols)
	a.mB = make([]float32, len(m.B))
	a.vB = make([]float32, len(m.B))
	a.stepE = make([]int, m.E.Rows)
}

// Step implements Optimizer.
func (a *Adam) Step(m *embed.Model, g *embed.Grads) {
	a.ensure(m)
	a.stepW++
	adamUpdate(a, m.W.Data, g.W.Data, a.mW.Data, a.vW.Data, a.stepW)
	adamUpdate(a, m.B, g.B, a.mB, a.vB, a.stepW)
	for _, id := range g.TouchedRows() {
		a.stepE[id]++
		adamUpdate(a, m.E.Row(id), g.E.Row(id), a.mE.Row(id), a.vE.Row(id), a.stepE[id])
	}
}

func adamUpdate(a *Adam, param, grad, mBuf, vBuf []float32, step int) {
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(step)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(step)))
	for i, gi := range grad {
		mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*gi
		vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*gi*gi
		mHat := mBuf[i] / c1
		vHat := vBuf[i] / c2
		param[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
	}
}
