package train

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/metrics"
	"repro/internal/vecmath"
)

// ThresholdPoint is one cell of a threshold sweep (Figures 13, 14, 16):
// the metrics obtained when classifying pairs as duplicates at cosine ≥ Tau.
type ThresholdPoint struct {
	Tau    float64
	Scores metrics.Scores // F1-based, matching the sweep figures
}

// SweepResult is the full threshold sweep plus the located optimum.
type SweepResult struct {
	Points  []ThresholdPoint
	Optimal ThresholdPoint
}

// PairScores computes the cosine similarity of each pair under enc, in
// parallel. The returned slices are aligned with pairs.
func PairScores(enc embed.Encoder, pairs []dataset.Pair) []float64 {
	out := make([]float64, len(pairs))
	vecmath.ParallelFor(len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := enc.Encode(pairs[i].A)
			b := enc.Encode(pairs[i].B)
			out[i] = float64(vecmath.Dot(a, b))
		}
	})
	return out
}

// Sweep evaluates thresholds τ ∈ {0, step, 2·step, …, 1} over labelled
// pairs and returns the metric curve plus the τ maximising F-β. This is
// the client-side optimal-threshold search of §III-A.2: the paper varies τ
// and picks the value optimising the cache's F-score on validation pairs.
func Sweep(enc embed.Encoder, pairs []dataset.Pair, step, beta float64) SweepResult {
	scores := PairScores(enc, pairs)
	return SweepScores(scores, pairs, step, beta)
}

// SweepScores is Sweep for precomputed pair scores, letting callers reuse
// one encode pass across multiple sweeps.
func SweepScores(scores []float64, pairs []dataset.Pair, step, beta float64) SweepResult {
	if step <= 0 {
		panic("train: Sweep step must be positive")
	}
	// Sort scores with labels so each threshold is evaluated in O(log n).
	type scored struct {
		s   float64
		dup bool
	}
	items := make([]scored, len(pairs))
	totalDup := 0
	for i, p := range pairs {
		items[i] = scored{scores[i], p.Dup}
		if p.Dup {
			totalDup++
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Suffix sums: dupsAtOrAbove[i] = duplicates among items[i:].
	dupSuffix := make([]int, len(items)+1)
	for i := len(items) - 1; i >= 0; i-- {
		dupSuffix[i] = dupSuffix[i+1]
		if items[i].dup {
			dupSuffix[i]++
		}
	}
	var res SweepResult
	for tau := 0.0; tau <= 1.0+1e-9; tau += step {
		// First index with score >= tau.
		idx := sort.Search(len(items), func(i int) bool { return items[i].s >= tau })
		predPos := len(items) - idx
		tp := dupSuffix[idx]
		c := metrics.Confusion{
			TP: tp,
			FP: predPos - tp,
			FN: totalDup - tp,
			TN: idx - (totalDup - tp),
		}
		pt := ThresholdPoint{Tau: tau, Scores: metrics.ScoresFrom(c, beta)}
		res.Points = append(res.Points, pt)
		if pt.Scores.FScore > res.Optimal.Scores.FScore {
			res.Optimal = pt
		}
	}
	return res
}

// CacheSweep evaluates thresholds for the *cache* decision rather than the
// pairwise decision: every pair's B side is loaded into a candidate pool
// (a stand-in for the user's cache), each A side is scored by its maximum
// similarity over the whole pool, and the threshold is swept over those
// max-scores. This matches §III-A.2, where the client tunes τ to optimise
// "the F-score of the cache": a cache compares a probe against many
// entries, so its operating threshold is systematically higher than the
// pairwise optimum — the max over N candidates has a fatter upper tail.
func CacheSweep(enc embed.Encoder, pairs []dataset.Pair, step, beta float64) SweepResult {
	return CacheSweepWithPool(enc, pairs, nil, step, beta)
}

// CacheSweepWithPool is CacheSweep with additional pool texts beyond the
// pairs' B sides. Clients pass their full local query log: a larger pool
// tightens the estimate of the max-over-N similarity tail the deployed
// cache will face, keeping the learnt τ honest as the encoder sharpens.
func CacheSweepWithPool(enc embed.Encoder, pairs []dataset.Pair, extra []string, step, beta float64) SweepResult {
	pool := vecmath.NewMatrix(len(pairs)+len(extra), enc.Dim())
	vecmath.ParallelFor(len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(pool.Row(i), enc.Encode(pairs[i].B))
		}
	})
	vecmath.ParallelFor(len(extra), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(pool.Row(len(pairs)+i), enc.Encode(extra[i]))
		}
	})
	scores := make([]float64, len(pairs))
	vecmath.ParallelFor(len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			probe := enc.Encode(pairs[i].A)
			best := float32(-1)
			for j := 0; j < pool.Rows; j++ {
				if s := vecmath.Dot(probe, pool.Row(j)); s > best {
					best = s
				}
			}
			scores[i] = float64(best)
		}
	})
	return SweepScores(scores, pairs, step, beta)
}

// EvaluateAt classifies pairs at a fixed threshold and returns the
// confusion matrix — the evaluation primitive behind Figures 11–12's
// per-round scores.
func EvaluateAt(enc embed.Encoder, pairs []dataset.Pair, tau float64) metrics.Confusion {
	scores := PairScores(enc, pairs)
	var c metrics.Confusion
	for i, p := range pairs {
		c.Add(p.Dup, scores[i] >= tau)
	}
	return c
}
