package train

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/vecmath"
)

// Config holds the local-training hyperparameters the FL server ships to
// clients alongside the global weights (§III-A, step 1).
type Config struct {
	// Epochs is the number of local passes over the client's pairs.
	Epochs int
	// BatchSize bounds the MNRL in-batch negative pool and the
	// contrastive mini-batch.
	BatchSize int
	// LR is the learning rate.
	LR float32
	// MNRLScale multiplies cosine scores before softmax (SBERT uses 20).
	MNRLScale float32
	// Margin is the contrastive-loss margin for non-duplicates.
	Margin float32
	// Seed drives batch shuffling.
	Seed int64
}

// DefaultConfig returns the hyperparameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Epochs:    6,
		BatchSize: 64,
		LR:        0.08,
		MNRLScale: 16,
		Margin:    0.55,
		Seed:      1,
	}
}

// EpochStats reports per-epoch training losses.
type EpochStats struct {
	MNRLLoss        float64
	ContrastiveLoss float64
}

// Trainer runs the multitask fine-tuning of §III-A.1 on one model.
type Trainer struct {
	Model *embed.Model
	Opt   Optimizer
	Cfg   Config

	rng   *rand.Rand
	grads *embed.Grads
}

// NewTrainer builds a trainer. The model must be trainable.
func NewTrainer(m *embed.Model, opt Optimizer, cfg Config) *Trainer {
	if !m.Trainable() {
		panic("train: model architecture " + m.Name() + " is frozen")
	}
	return &Trainer{
		Model: m,
		Opt:   opt,
		Cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		grads: m.NewGrads(),
	}
}

// Train runs Cfg.Epochs multitask epochs over pairs and returns per-epoch
// loss statistics. Each epoch interleaves one MNRL pass over the duplicate
// pairs with one contrastive pass over all pairs, mirroring the paper's
// multitask objective.
func (t *Trainer) Train(pairs []dataset.Pair) []EpochStats {
	stats := make([]EpochStats, 0, t.Cfg.Epochs)
	var positives []dataset.Pair
	for _, p := range pairs {
		if p.Dup {
			positives = append(positives, p)
		}
	}
	all := make([]dataset.Pair, len(pairs))
	copy(all, pairs)
	for e := 0; e < t.Cfg.Epochs; e++ {
		var es EpochStats
		t.rng.Shuffle(len(positives), func(i, j int) { positives[i], positives[j] = positives[j], positives[i] })
		es.MNRLLoss = t.mnrlPass(positives)
		t.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		es.ContrastiveLoss = t.contrastivePass(all)
		stats = append(stats, es)
	}
	return stats
}

// batchActs holds the forward activations for one side of a batch.
type batchActs struct {
	acts []*embed.Activations
	embs *vecmath.Matrix
}

// forwardBatch encodes texts in parallel, retaining activations for the
// backward pass.
func (t *Trainer) forwardBatch(texts []string) *batchActs {
	ba := &batchActs{
		acts: make([]*embed.Activations, len(texts)),
		embs: vecmath.NewMatrix(len(texts), t.Model.Dim()),
	}
	vecmath.ParallelFor(len(texts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := t.Model.NewActivations()
			t.Model.Forward(texts[i], a)
			ba.acts[i] = a
			copy(ba.embs.Row(i), a.Out)
		}
	})
	return ba
}

func (t *Trainer) mnrlPass(positives []dataset.Pair) float64 {
	if len(positives) < 2 {
		return 0
	}
	var total float64
	batches := 0
	for lo := 0; lo < len(positives); lo += t.Cfg.BatchSize {
		hi := lo + t.Cfg.BatchSize
		if hi > len(positives) {
			hi = len(positives)
		}
		if hi-lo < 2 {
			break // a single pair has no in-batch negatives
		}
		aTexts := make([]string, hi-lo)
		bTexts := make([]string, hi-lo)
		for i, p := range positives[lo:hi] {
			aTexts[i] = p.A
			bTexts[i] = p.B
		}
		ua := t.forwardBatch(aTexts)
		vb := t.forwardBatch(bTexts)
		du := vecmath.NewMatrix(hi-lo, t.Model.Dim())
		dv := vecmath.NewMatrix(hi-lo, t.Model.Dim())
		total += MNRLGrad(ua.embs, vb.embs, t.Cfg.MNRLScale, du, dv)
		batches++
		t.grads.Zero()
		for i := range ua.acts {
			t.Model.Backward(ua.acts[i], du.Row(i), t.grads)
			t.Model.Backward(vb.acts[i], dv.Row(i), t.grads)
		}
		t.Opt.Step(t.Model, t.grads)
	}
	if batches == 0 {
		return 0
	}
	return total / float64(batches)
}

func (t *Trainer) contrastivePass(pairs []dataset.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var total float64
	n := 0
	for lo := 0; lo < len(pairs); lo += t.Cfg.BatchSize {
		hi := lo + t.Cfg.BatchSize
		if hi > len(pairs) {
			hi = len(pairs)
		}
		batch := pairs[lo:hi]
		aTexts := make([]string, len(batch))
		bTexts := make([]string, len(batch))
		for i, p := range batch {
			aTexts[i] = p.A
			bTexts[i] = p.B
		}
		ua := t.forwardBatch(aTexts)
		vb := t.forwardBatch(bTexts)
		t.grads.Zero()
		du := make([]float32, t.Model.Dim())
		dv := make([]float32, t.Model.Dim())
		inv := 1 / float32(len(batch))
		for i, p := range batch {
			vecmath.Zero(du)
			vecmath.Zero(dv)
			loss := ContrastiveGrad(ua.embs.Row(i), vb.embs.Row(i), p.Dup, t.Cfg.Margin, du, dv)
			total += loss
			n++
			vecmath.Scale(inv, du)
			vecmath.Scale(inv, dv)
			t.Model.Backward(ua.acts[i], du, t.grads)
			t.Model.Backward(vb.acts[i], dv, t.grads)
		}
		t.Opt.Step(t.Model, t.grads)
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
