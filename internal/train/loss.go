// Package train implements the client-side fine-tuning of §III-A.1: the
// multitask objective combining contrastive loss and multiple-negatives
// ranking loss (MNRL), mini-batch SGD/Adam optimisers, and the optimal
// cosine-similarity threshold search of §III-A.2.
package train

import (
	"fmt"
	"math"

	"repro/internal/vecmath"
)

// MNRLGrad computes the multiple-negatives ranking loss over a batch of
// positive pairs and its gradient with respect to the embeddings.
//
// U and V are B×D matrices of unit-norm embeddings where (U[i], V[i]) is a
// duplicate pair; every V[j], j≠i serves as an in-batch negative for U[i].
// Scores are scaled cosines s_ij = scale·U[i]⋅V[j]; the loss is the mean
// cross-entropy of softmax(s_i·) against target i. Gradients are written
// into dU and dV (same shape as U, V; overwritten). The mean loss is
// returned.
//
// MNRL pulls positive pairs together against many in-batch candidates —
// the paper's second objective, which dominates when a user resubmits many
// duplicate queries.
func MNRLGrad(u, v *vecmath.Matrix, scale float32, du, dv *vecmath.Matrix) float64 {
	b, d := u.Rows, u.Cols
	if v.Rows != b || v.Cols != d || du.Rows != b || du.Cols != d || dv.Rows != b || dv.Cols != d {
		panic(fmt.Sprintf("train: MNRLGrad shape mismatch U=%dx%d V=%dx%d", u.Rows, u.Cols, v.Rows, v.Cols))
	}
	if b == 0 {
		vecmath.Zero(du.Data)
		vecmath.Zero(dv.Data)
		return 0
	}
	// Score matrix s = scale · U Vᵀ, softmaxed row-wise into g = (P − I)·scale/B.
	g := vecmath.MatMul(u, v.Transpose())
	vecmath.Scale(scale, g.Data)
	invB := 1 / float32(b)
	total := vecmath.ParallelMapReduce(b, func(lo, hi int) float64 {
		var partial float64
		for i := lo; i < hi; i++ {
			row := g.Row(i)
			maxS := row[0]
			for _, s := range row[1:] {
				if s > maxS {
					maxS = s
				}
			}
			var sumExp float64
			for _, s := range row {
				sumExp += math.Exp(float64(s - maxS))
			}
			logSum := math.Log(sumExp)
			partial += -(float64(row[i]-maxS) - logSum)
			for j := range row {
				p := float32(math.Exp(float64(row[j]-maxS) - logSum))
				if j == i {
					p -= 1
				}
				row[j] = p * scale * invB
			}
		}
		return partial
	})
	// dU = g·V and dV = gᵀ·U.
	copy(du.Data, vecmath.MatMul(g, v).Data)
	copy(dv.Data, vecmath.MatMul(g.Transpose(), u).Data)
	return total / float64(b)
}

// ContrastiveGrad computes the contrastive loss for one labelled pair of
// unit embeddings and accumulates ∂L/∂u into du and ∂L/∂v into dv.
//
// For duplicates the loss is (1−c)², drawing the pair together; for
// non-duplicates it is max(0, c−margin)², pushing them below margin. c is
// the cosine (dot of unit vectors). Returns the loss.
//
// This is the paper's first objective: distancing unique queries to cut
// false hits, effective even for clients with no duplicate queries at all.
func ContrastiveGrad(u, v []float32, dup bool, margin float32, du, dv []float32) float64 {
	c := vecmath.Dot(u, v)
	var loss float64
	var dc float32
	if dup {
		diff := 1 - c
		loss = float64(diff * diff)
		dc = -2 * diff
	} else {
		if c <= margin {
			return 0
		}
		diff := c - margin
		loss = float64(diff * diff)
		dc = 2 * diff
	}
	vecmath.Axpy(dc, v, du)
	vecmath.Axpy(dc, u, dv)
	return loss
}
