package sim

import "math"

// RNG is the injectable deterministic random source the simulation
// stack uses instead of math/rand: SplitMix64 under the hood, so the
// stream for a given seed is fixed by this file alone — never by a Go
// release's rand internals — and the seed-determinism gates stay stable
// across toolchains. Not safe for concurrent use; the scenario engine
// is single-threaded by construction, and concurrent consumers must
// derive their own (Fork).
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Equal seeds yield equal streams.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Fork derives an independent generator whose stream is a pure function
// of the parent's seed and the label — how concurrent components get
// private streams without racing on one source.
func (r *RNG) Fork(label uint64) *RNG {
	return &RNG{state: r.state ^ (label+1)*0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [min, max] (min when the range
// is empty).
func (r *RNG) Duration(min, max int64) int64 {
	if max <= min {
		return min
	}
	return min + int64(r.Uint64()%uint64(max-min+1))
}

// ExpFloat64 returns an exponentially distributed value with mean 1 —
// inter-arrival jitter for simulated traffic.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Shuffle permutes n elements via swap (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
