package sim

import (
	"io"
	"net/http"
	"testing"
	"time"
)

func echoHandler(id string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, id)
	})
}

func get(t *testing.T, client *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestTransportRoutesToRegisteredHosts(t *testing.T) {
	tr := NewTransport(Wall, 1)
	tr.Register("a:1", echoHandler("A"))
	tr.Register("b:1", echoHandler("B"))
	client := &http.Client{Transport: tr.Bind("a:1")}
	if body, err := get(t, client, "http://b:1/x"); err != nil || body != "B" {
		t.Fatalf("b:1 answered (%q, %v), want B", body, err)
	}
	if _, err := get(t, client, "http://nowhere:9/x"); err == nil {
		t.Fatal("unregistered host answered")
	}
	if tr.Delivered() != 1 || tr.Dropped() != 1 {
		t.Fatalf("delivered/dropped = %d/%d, want 1/1", tr.Delivered(), tr.Dropped())
	}
}

func TestTransportDownAndPartition(t *testing.T) {
	tr := NewTransport(Wall, 1)
	tr.Register("a:1", echoHandler("A"))
	tr.Register("b:1", echoHandler("B"))
	fromA := &http.Client{Transport: tr.Bind("a:1")}
	fromC := &http.Client{Transport: tr.Bind("c:1")}

	tr.SetDown("b:1", true)
	if _, err := get(t, fromA, "http://b:1/x"); err == nil {
		t.Fatal("down host answered")
	}
	tr.SetDown("b:1", false)
	if _, err := get(t, fromA, "http://b:1/x"); err != nil {
		t.Fatalf("revived host unreachable: %v", err)
	}

	tr.Partition("a:1", "b:1", true)
	if _, err := get(t, fromA, "http://b:1/x"); err == nil {
		t.Fatal("partitioned link delivered")
	}
	// The partition is directed: c → b still flows.
	if body, err := get(t, fromC, "http://b:1/x"); err != nil || body != "B" {
		t.Fatalf("unrelated link failed (%q, %v)", body, err)
	}
	tr.Partition("a:1", "b:1", false)
	if _, err := get(t, fromA, "http://b:1/x"); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
}

func TestTransportLossIsSeedDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		tr := NewTransport(Wall, seed)
		tr.Register("a:1", echoHandler("A"))
		tr.SetLoss(0.5)
		client := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := get(t, client, "http://a:1/x")
			out = append(out, err == nil)
		}
		return out
	}
	a, b, c := outcomes(42), outcomes(42), outcomes(43)
	lost := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different loss patterns")
		}
		if !a[i] {
			lost++
		}
	}
	if lost == 0 || lost == len(a) {
		t.Fatalf("loss 0.5 dropped %d of %d — not probabilistic", lost, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

func TestTransportVirtualLatency(t *testing.T) {
	// Under a virtual clock the exchange blocks until the driver
	// advances past both latency legs — no wall time passes.
	c := NewVirtual()
	tr := NewTransport(c, 9)
	tr.Register("a:1", echoHandler("A"))
	tr.SetLatency(5*time.Millisecond, 5*time.Millisecond)
	client := &http.Client{Transport: tr}
	done := make(chan error, 1)
	go func() {
		_, err := get(t, client, "http://a:1/x")
		done <- err
	}()
	c.BlockUntil(1) // request leg parked
	select {
	case err := <-done:
		t.Fatalf("exchange completed before virtual time passed: %v", err)
	default:
	}
	c.Advance(5 * time.Millisecond) // request leg
	c.BlockUntil(1)                 // response leg parked
	c.Advance(5 * time.Millisecond) // response leg
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("virtual exchange failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual exchange never completed")
	}
	if got := c.Since(Epoch); got != 10*time.Millisecond {
		t.Fatalf("virtual RTT %v, want 10ms", got)
	}
}
