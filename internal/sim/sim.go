// Package sim is the deterministic-simulation toolkit: a Clock seam the
// production layers take instead of the time package, a discrete-event
// VirtualClock that drives the same code under virtual time, a seeded
// in-memory Transport that stands in for the network, and an injectable
// RNG — together they let the cluster/FL/resilience stack run churn
// storms over hundreds of thousands of tenants in seconds of wall time,
// bit-identically for a given seed (see internal/sim/scenario).
//
// Design rules, in the mgpusim discrete-event idiom:
//
//   - The wall clock is the default everywhere. Wall's methods delegate
//     straight to the time package, so production behavior (and the
//     zero-alloc hit-path budget) is unchanged when nothing is injected.
//   - Virtual time only moves when someone calls Advance/Run: timers fire
//     in deterministic (deadline, schedule-order) order, never "about
//     now" — the property the seed-determinism gates are built on.
//   - Code under test never knows which clock it has. The seams are
//     plain Clock fields on the existing Config structs.
package sim

import "time"

// Clock is the time seam threaded through cluster, flserve, resilience
// and the registry. It mirrors the subset of the time package those
// layers use; Wall implements it on the real clock and VirtualClock on
// simulated time.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Until(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After fires once after d. Equivalent to NewTimer(d).C when the
	// timer never needs stopping.
	After(d time.Duration) <-chan time.Time
	// NewTimer and NewTicker mirror time.NewTimer/time.NewTicker.
	NewTimer(d time.Duration) *Timer
	NewTicker(d time.Duration) *Ticker
}

// Timer is the clock-agnostic time.Timer: exactly one of rt/vt is set.
type Timer struct {
	C  <-chan time.Time
	rt *time.Timer
	vt *vevent
}

// Stop prevents the timer from firing, reporting whether it was pending.
func (t *Timer) Stop() bool {
	if t.rt != nil {
		return t.rt.Stop()
	}
	return t.vt.cancel()
}

// Reset re-arms the timer for d, reporting whether it was still pending.
func (t *Timer) Reset(d time.Duration) bool {
	if t.rt != nil {
		return t.rt.Reset(d)
	}
	return t.vt.reset(d)
}

// Ticker is the clock-agnostic time.Ticker: exactly one of rt/vt is set.
type Ticker struct {
	C  <-chan time.Time
	rt *time.Ticker
	vt *vevent
}

// Stop shuts the ticker down.
func (t *Ticker) Stop() {
	if t.rt != nil {
		t.rt.Stop()
		return
	}
	t.vt.cancel()
}

// Wall is the production clock: every method delegates to the time
// package. It is the default for every Clock seam in the repo.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (wallClock) Until(t time.Time) time.Duration        { return time.Until(t) }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) NewTimer(d time.Duration) *Timer {
	rt := time.NewTimer(d)
	return &Timer{C: rt.C, rt: rt}
}

func (wallClock) NewTicker(d time.Duration) *Ticker {
	rt := time.NewTicker(d)
	return &Ticker{C: rt.C, rt: rt}
}

// Or returns c, or Wall when c is nil — the one-line default every
// Config plumbs through.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}
