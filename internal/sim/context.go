package sim

import (
	"context"
	"time"
)

// ContextWithTimeout is the clock-aware context.WithTimeout: on Wall it
// IS context.WithTimeout (same semantics, same allocations); on a
// virtual clock the deadline is a virtual timer, so code holding the
// context times out when the simulation advances past it, not when the
// host's clock does.
//
// Virtual-clock caveat: ctx.Err() after a virtual expiry is
// context.Canceled with context.Cause(ctx) == context.DeadlineExceeded
// (the cancellation is delivered through a watcher, not the runtime
// timer). Callers that only check Err() != nil — every seam in this
// repo — behave identically.
func ContextWithTimeout(parent context.Context, c Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if c == nil || c == Wall {
		return context.WithTimeout(parent, d)
	}
	ctx, cancel := context.WithCancelCause(parent)
	t := c.NewTimer(d)
	go func() {
		select {
		case <-t.C:
			cancel(context.DeadlineExceeded)
		case <-ctx.Done():
		}
	}()
	return ctx, func() {
		t.Stop()
		cancel(context.Canceled)
	}
}
