package sim

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Transport is the seeded in-memory network: an http.RoundTripper that
// routes requests to registered in-process handlers instead of sockets,
// with configurable per-hop latency jitter, probabilistic loss, host
// kills, and directed partitions. The cluster Node's Config.Client seam
// accepts it directly (&http.Client{Transport: tr.Bind(self)}), so the
// same gossip/forward/handoff code that runs over TCP in production
// runs over simulated links in tests — under either clock.
//
// Latency and loss draws come from one seeded RNG consumed under the
// transport lock, so a single-threaded driver observes a deterministic
// network; concurrent drivers get a race-free but schedule-ordered one.
type Transport struct {
	clock Clock

	mu      sync.Mutex
	rng     *RNG
	hosts   map[string]http.Handler
	down    map[string]bool
	blocked map[string]bool // "from|to" directed links

	minLatency time.Duration
	maxLatency time.Duration
	loss       float64

	delivered int64 // under mu
	dropped   int64 // under mu
}

// NewTransport builds a network on clock (nil = Wall) with the given
// RNG seed. Zero latency and loss until configured.
func NewTransport(clock Clock, seed int64) *Transport {
	return &Transport{
		clock:   Or(clock),
		rng:     NewRNG(seed),
		hosts:   make(map[string]http.Handler),
		down:    make(map[string]bool),
		blocked: make(map[string]bool),
	}
}

// Register installs addr's handler (its serving mux). Re-registering
// replaces the handler — how a revived node comes back.
func (tr *Transport) Register(addr string, h http.Handler) {
	tr.mu.Lock()
	tr.hosts[addr] = h
	delete(tr.down, addr)
	tr.mu.Unlock()
}

// SetDown marks addr unreachable (true) or reachable again (false)
// without dropping its handler — an abrupt kill/revive.
func (tr *Transport) SetDown(addr string, down bool) {
	tr.mu.Lock()
	tr.down[addr] = down
	tr.mu.Unlock()
}

// SetLatency configures the per-hop latency range; each request draws
// uniformly in [min, max] for its request leg and again for its
// response leg.
func (tr *Transport) SetLatency(min, max time.Duration) {
	tr.mu.Lock()
	tr.minLatency, tr.maxLatency = min, max
	tr.mu.Unlock()
}

// SetLoss configures the probability in [0, 1] that any exchange is
// dropped (surfacing to the caller as a transport error).
func (tr *Transport) SetLoss(p float64) {
	tr.mu.Lock()
	tr.loss = p
	tr.mu.Unlock()
}

// Partition blocks (or heals) the directed link from → to. Block both
// directions for a symmetric partition.
func (tr *Transport) Partition(from, to string, block bool) {
	tr.mu.Lock()
	if block {
		tr.blocked[from+"|"+to] = true
	} else {
		delete(tr.blocked, from+"|"+to)
	}
	tr.mu.Unlock()
}

// Delivered and Dropped report cumulative exchange outcomes.
func (tr *Transport) Delivered() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.delivered
}

func (tr *Transport) Dropped() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Bind returns the RoundTripper a node at origin dials through —
// origin is what directed partitions match against. An empty origin
// means an external client (never partitioned, still subject to loss).
func (tr *Transport) Bind(origin string) http.RoundTripper {
	return boundTransport{tr: tr, origin: origin}
}

// RoundTrip implements http.RoundTripper for unbound (external) use.
func (tr *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	return tr.roundTrip("", req)
}

type boundTransport struct {
	tr     *Transport
	origin string
}

func (b boundTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return b.tr.roundTrip(b.origin, req)
}

// netError is the transport failure shape: it unwraps like a dial/read
// error (timeout-free), which is what the cluster layer's death
// counters classify as a genuine transport failure.
type netError struct{ msg string }

func (e *netError) Error() string { return "sim: " + e.msg }

func (tr *Transport) roundTrip(origin string, req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	tr.mu.Lock()
	h, ok := tr.hosts[host]
	down := tr.down[host]
	cut := origin != "" && tr.blocked[origin+"|"+host]
	lost := tr.loss > 0 && tr.rng.Float64() < tr.loss
	reqLat := time.Duration(tr.rng.Duration(int64(tr.minLatency), int64(tr.maxLatency)))
	respLat := time.Duration(tr.rng.Duration(int64(tr.minLatency), int64(tr.maxLatency)))
	if !ok || down || cut || lost {
		tr.dropped++
	}
	tr.mu.Unlock()

	// The request leg's latency is paid even for failed exchanges — a
	// dead host looks like an unanswered dial, not an instant error.
	if err := tr.wait(req, reqLat); err != nil {
		return nil, err
	}
	switch {
	case !ok:
		return nil, &netError{msg: fmt.Sprintf("no route to %s", host)}
	case down:
		return nil, &netError{msg: fmt.Sprintf("connection refused: %s is down", host)}
	case cut:
		return nil, &netError{msg: fmt.Sprintf("link %s -> %s partitioned", origin, host)}
	case lost:
		return nil, &netError{msg: fmt.Sprintf("exchange with %s lost", host)}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if err := tr.wait(req, respLat); err != nil {
		return nil, err
	}
	tr.mu.Lock()
	tr.delivered++
	tr.mu.Unlock()
	return rec.Result(), nil
}

// wait pays one latency leg on the transport's clock, honoring the
// request's cancellation.
func (tr *Transport) wait(req *http.Request, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := tr.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}
