package sim

import (
	"container/heap"
	"sync"
	"time"
)

// VirtualClock is a discrete-event virtual clock. Time never passes on
// its own: Advance/Step/Run move it, firing due events in deterministic
// order — by deadline first, then by scheduling order for ties (the
// stable tie-break the seed-determinism gates depend on).
//
// Two kinds of consumer share one event queue:
//
//   - Production code holding a Clock: Sleep/After/NewTimer/NewTicker
//     park on channels that the driving goroutine releases by advancing
//     the clock. BlockUntil lets a test wait for those parkers to
//     register before advancing (the clockwork idiom).
//   - The scenario engine (internal/sim/scenario): Schedule enqueues a
//     closure at a virtual instant; Step/Run execute the closures
//     inline on the driving goroutine, single-threaded, which is what
//     makes whole-system runs bit-identical for a given seed.
//
// Advance/Step/Run must be called from one driving goroutine at a time,
// and never from inside a scheduled closure.
type VirtualClock struct {
	mu    sync.Mutex
	cond  *sync.Cond // broadcast when the queue grows
	now   time.Time
	seq   uint64
	queue veventQueue
}

// Epoch is the instant a fresh VirtualClock starts at: an arbitrary
// fixed point, so virtual runs never observe the host's clock.
var Epoch = time.Date(2030, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual builds a virtual clock starting at Epoch.
func NewVirtual() *VirtualClock { return NewVirtualAt(Epoch) }

// NewVirtualAt builds a virtual clock starting at start.
func NewVirtualAt(start time.Time) *VirtualClock {
	c := &VirtualClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// vevent is one queued occurrence: a timer/ticker channel send, a
// sleeper release, or a scheduled closure.
type vevent struct {
	clock  *VirtualClock
	at     time.Time
	seq    uint64
	idx    int           // heap index; -1 when not queued
	period time.Duration // > 0: reschedules itself (ticker)
	ch     chan time.Time
	fn     func(now time.Time)
}

// Now reports the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c *VirtualClock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }

// Sleep parks the calling goroutine until the clock has advanced past d.
// d <= 0 returns immediately.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After returns a channel that receives the virtual time once the clock
// advances d past now.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C
}

// NewTimer arms a one-shot virtual timer.
func (c *VirtualClock) NewTimer(d time.Duration) *Timer {
	ev := &vevent{clock: c, ch: make(chan time.Time, 1)}
	c.schedule(ev, d)
	return &Timer{C: ev.ch, vt: ev}
}

// NewTicker arms a periodic virtual ticker. d must be positive, matching
// time.NewTicker.
func (c *VirtualClock) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("sim: non-positive interval for NewTicker")
	}
	ev := &vevent{clock: c, ch: make(chan time.Time, 1), period: d}
	c.schedule(ev, d)
	return &Ticker{C: ev.ch, vt: ev}
}

// Schedule enqueues fn to run at now+delay (immediately on the next Step
// when delay <= 0). fn runs inline on the goroutine driving the clock
// and may Schedule further events; it must not call Advance/Step/Run.
func (c *VirtualClock) Schedule(delay time.Duration, fn func(now time.Time)) {
	if fn == nil {
		return
	}
	c.schedule(&vevent{clock: c, fn: fn}, delay)
}

func (c *VirtualClock) schedule(ev *vevent, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	c.mu.Lock()
	ev.at = c.now.Add(delay)
	ev.seq = c.seq
	c.seq++
	heap.Push(&c.queue, ev)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// cancel dequeues the event, reporting whether it was still pending.
func (ev *vevent) cancel() bool {
	c := ev.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.idx < 0 {
		return false
	}
	heap.Remove(&c.queue, ev.idx)
	return true
}

// reset re-arms the event d from the current virtual time.
func (ev *vevent) reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	c := ev.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	pending := ev.idx >= 0
	if pending {
		heap.Remove(&c.queue, ev.idx)
	}
	ev.at = c.now.Add(d)
	ev.seq = c.seq
	c.seq++
	heap.Push(&c.queue, ev)
	c.cond.Broadcast()
	return pending
}

// Advance moves virtual time forward by d, firing every event due in
// (now, now+d] in deterministic order.
func (c *VirtualClock) Advance(d time.Duration) { c.AdvanceTo(c.Now().Add(d)) }

// AdvanceTo moves virtual time to target (no-op if target is in the
// past), firing due events in deterministic order.
func (c *VirtualClock) AdvanceTo(target time.Time) {
	c.mu.Lock()
	for len(c.queue) > 0 && !c.queue[0].at.After(target) {
		c.fireNextLocked()
	}
	if target.After(c.now) {
		c.now = target
	}
	c.mu.Unlock()
}

// Step jumps to the next pending event and fires every event scheduled
// at that same instant. It reports false (moving nothing) on an empty
// queue — the scenario engine's termination condition.
func (c *VirtualClock) Step() bool {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return false
	}
	at := c.queue[0].at
	for len(c.queue) > 0 && c.queue[0].at.Equal(at) {
		c.fireNextLocked()
	}
	c.mu.Unlock()
	return true
}

// Run drives the queue until it is empty or the next event lies beyond
// horizon, leaving the clock at min(horizon, last event time). It
// returns the number of events fired — the scenario engine's main loop.
func (c *VirtualClock) Run(horizon time.Time) int {
	fired := 0
	c.mu.Lock()
	for len(c.queue) > 0 && !c.queue[0].at.After(horizon) {
		c.fireNextLocked()
		fired++
	}
	if horizon.After(c.now) {
		c.now = horizon
	}
	c.mu.Unlock()
	return fired
}

// fireNextLocked pops and fires the earliest event. Channel sends are
// non-blocking (time.Timer semantics: a consumer that has not drained
// the previous tick misses this one); closures run outside the lock so
// they can schedule.
func (c *VirtualClock) fireNextLocked() {
	ev := heap.Pop(&c.queue).(*vevent)
	if ev.at.After(c.now) {
		c.now = ev.at
	}
	now := c.now
	if ev.period > 0 {
		ev.at = ev.at.Add(ev.period)
		ev.seq = c.seq
		c.seq++
		heap.Push(&c.queue, ev)
	}
	if ev.ch != nil {
		select {
		case ev.ch <- now:
		default:
		}
	}
	if ev.fn != nil {
		c.mu.Unlock()
		ev.fn(now)
		c.mu.Lock()
	}
}

// Pending reports how many events are queued (tickers count once).
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// NextAt reports the earliest queued deadline.
func (c *VirtualClock) NextAt() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return time.Time{}, false
	}
	return c.queue[0].at, true
}

// BlockUntil waits until at least n events are queued — how a test
// knows the goroutines under test have parked on their timers/tickers
// before it advances the clock (the clockwork idiom).
func (c *VirtualClock) BlockUntil(n int) {
	c.mu.Lock()
	for len(c.queue) < n {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// veventQueue is a min-heap by (deadline, scheduling order).
type veventQueue []*vevent

func (q veventQueue) Len() int { return len(q) }

func (q veventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q veventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}

func (q *veventQueue) Push(x any) {
	ev := x.(*vevent)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *veventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
