package sim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvanceFiresInOrder(t *testing.T) {
	c := NewVirtual()
	var order []string
	c.Schedule(30*time.Millisecond, func(time.Time) { order = append(order, "c") })
	c.Schedule(10*time.Millisecond, func(time.Time) { order = append(order, "a") })
	c.Schedule(20*time.Millisecond, func(time.Time) { order = append(order, "b") })
	c.Advance(25 * time.Millisecond)
	if got := len(order); got != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("after 25ms: fired %v, want [a b]", order)
	}
	c.Advance(10 * time.Millisecond)
	if len(order) != 3 || order[2] != "c" {
		t.Fatalf("after 35ms: fired %v, want [a b c]", order)
	}
	if got := c.Since(Epoch); got != 35*time.Millisecond {
		t.Fatalf("virtual now advanced %v, want 35ms", got)
	}
}

func TestVirtualClockStableTieOrdering(t *testing.T) {
	// Events scheduled for the same instant fire in scheduling order —
	// the tie-break the determinism digests rely on.
	c := NewVirtual()
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		c.Schedule(time.Millisecond, func(time.Time) { order = append(order, i) })
	}
	if !c.Step() {
		t.Fatal("Step found no events")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie ordering broke: fired %v", order)
		}
	}
	if len(order) != 16 {
		t.Fatalf("Step fired %d of 16 same-instant events", len(order))
	}
}

func TestVirtualClockScheduledCascade(t *testing.T) {
	// A closure scheduling follow-up events models the engine's whole
	// lifetime: Run drains the cascade up to the horizon.
	c := NewVirtual()
	count := 0
	var tick func(now time.Time)
	tick = func(now time.Time) {
		count++
		c.Schedule(time.Second, tick)
	}
	c.Schedule(time.Second, tick)
	c.Run(Epoch.Add(10*time.Second + 500*time.Millisecond))
	if count != 10 {
		t.Fatalf("cascade fired %d times in 10.5s, want 10", count)
	}
	if got := c.Now(); !got.Equal(Epoch.Add(10*time.Second + 500*time.Millisecond)) {
		t.Fatalf("Run left clock at %v", got)
	}
}

func TestVirtualTimerStopAndReset(t *testing.T) {
	c := NewVirtual()
	tm := c.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported not-pending")
	}
	c.Advance(20 * time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(5 * time.Millisecond) {
		t.Fatal("Reset on a stopped timer reported pending")
	}
	c.Advance(5 * time.Millisecond)
	select {
	case at := <-tm.C:
		if want := Epoch.Add(25 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestVirtualTickerTicksEachPeriod(t *testing.T) {
	c := NewVirtual()
	tk := c.NewTicker(time.Second)
	ticks := 0
	for i := 0; i < 5; i++ {
		c.Advance(time.Second)
		select {
		case <-tk.C:
			ticks++
		default:
		}
	}
	if ticks != 5 {
		t.Fatalf("got %d ticks over 5 periods, want 5", ticks)
	}
	tk.Stop()
	c.Advance(3 * time.Second)
	select {
	case <-tk.C:
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestVirtualSleepParksUntilAdvance(t *testing.T) {
	c := NewVirtual()
	done := make(chan time.Duration, 1)
	go func() {
		start := c.Now()
		c.Sleep(42 * time.Millisecond)
		done <- c.Since(start)
	}()
	c.BlockUntil(1) // the sleeper has parked
	select {
	case <-done:
		t.Fatal("Sleep returned before the clock advanced")
	default:
	}
	c.Advance(42 * time.Millisecond)
	select {
	case d := <-done:
		if d != 42*time.Millisecond {
			t.Fatalf("sleeper observed %v, want 42ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper never woke after Advance")
	}
}

func TestVirtualContextTimeout(t *testing.T) {
	c := NewVirtual()
	ctx, cancel := ContextWithTimeout(context.Background(), c, 100*time.Millisecond)
	defer cancel()
	if ctx.Err() != nil {
		t.Fatalf("fresh context already done: %v", ctx.Err())
	}
	c.Advance(100 * time.Millisecond)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context did not expire when virtual time passed its deadline")
	}
	if cause := context.Cause(ctx); cause != context.DeadlineExceeded {
		t.Fatalf("context cause = %v, want DeadlineExceeded", cause)
	}
}

func TestWallContextTimeoutIsRealWithTimeout(t *testing.T) {
	ctx, cancel := ContextWithTimeout(context.Background(), Wall, time.Minute)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("wall-clock path should carry a real deadline")
	}
}

func TestVirtualClockConcurrentTimersAreRaceFree(t *testing.T) {
	// Not a determinism test — goroutine consumption order is the OS
	// scheduler's business — just the -race surface for the shared queue.
	c := NewVirtual()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Sleep(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Advance(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
}

func TestRNGDeterminismAndFork(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
	f1, f2 := NewRNG(7).Fork(1), NewRNG(7).Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels produced the same first draw")
	}
	p := NewRNG(3).Perm(10)
	q := NewRNG(3).Perm(10)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("Perm not deterministic")
		}
	}
}
