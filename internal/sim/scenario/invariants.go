package scenario

import "fmt"

// violations checks the settled end state and returns one message per
// broken invariant (empty means the run was safe). The checks encode
// the safety contract the production cluster promises after churn
// stops: nothing dropped, remaps bounded, views and rollouts converged,
// and every tenant in exactly one right place.
func (r *runner) violations() []string {
	var v []string

	// 1. No request was ever dropped: with at least one live node (the
	// schedule guarantees it) every request is served by the owner or
	// failed over to the entry's store copy.
	if r.res.Dropped != 0 {
		v = append(v, fmt.Sprintf("%d requests dropped", r.res.Dropped))
	}

	// 2. Consistent-hashing remap bound: across every churn event, only
	// tenants gained or lost by the churned node moved.
	if r.remapViolations != 0 {
		v = append(v, fmt.Sprintf("%d tenants remapped between two un-churned nodes", r.remapViolations))
	}

	// 3. View convergence: every live node's membership view matches
	// ground truth after the settle tail.
	for n, view := range r.views {
		if !r.alive[n] {
			continue
		}
		for p, dead := range view.dead {
			if dead == r.alive[p] {
				v = append(v, fmt.Sprintf("node %d view of peer %d: dead=%v, truth alive=%v", n, p, dead, r.alive[p]))
			}
		}
	}

	// 4. Residency: every tenant is in memory on at most one node, that
	// node is live, and it is the ground-truth owner. (Zero residents is
	// fine — the tenant lives in the durable store until next touched.)
	badCount, badDead, badOwner := 0, 0, 0
	for t := range r.tenants {
		m := r.tenants[t].resident
		if m == 0 {
			continue
		}
		if popcount16(m) > 1 {
			badCount++
			continue
		}
		n := trailingNode(m)
		if !r.alive[n] {
			badDead++
			continue
		}
		if r.byName[r.truth.OwnerHash(r.thash[t])] != n {
			badOwner++
		}
	}
	if badCount > 0 {
		v = append(v, fmt.Sprintf("%d tenants resident on more than one node after settling", badCount))
	}
	if badDead > 0 {
		v = append(v, fmt.Sprintf("%d tenants resident on a dead node", badDead))
	}
	if badOwner > 0 {
		v = append(v, fmt.Sprintf("%d tenants resident on a live non-owner after settling", badOwner))
	}

	// 5. Rollout convergence: every live node runs the latest model.
	for _, n := range r.aliveList {
		if r.nodeVersion[n] != r.globalVersion {
			v = append(v, fmt.Sprintf("node %d on model version %d, latest is %d", n, r.nodeVersion[n], r.globalVersion))
		}
	}
	return v
}

// trailingNode maps a single-bit residency mask to its node index.
func trailingNode(m uint16) int {
	for i := 0; i < 16; i++ {
		if m&(1<<i) != 0 {
			return i
		}
	}
	return -1
}
