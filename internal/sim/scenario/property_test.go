package scenario

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// propertyConfig builds a randomized mid-size scenario: 6 nodes, 2000
// tenants, lossy probes, federated rounds, and a seed-derived churn
// schedule inside the pre-settle window.
func propertyConfig(seed int64) Config {
	rng := sim.NewRNG(seed).Fork(0x5ce9a1)
	return Config{
		Seed:      seed,
		Nodes:     6,
		Tenants:   2000,
		ProbeLoss: 0.01 + 0.04*rng.Float64(),
		FLEvery:   400 * time.Millisecond,
		Duration:  8 * time.Second,
		Churn:     RandomChurn(rng, 6, 2+rng.Intn(7), 6500*time.Millisecond),
	}
}

// TestPropertyRandomChurnSafety drives many seed-derived churn
// schedules and asserts the safety contract on each settled end state
// (Run checks the invariants internally: zero drops, bounded remap,
// converged views, single ownership, rollout convergence) plus replay
// determinism per seed.
func TestPropertyRandomChurnSafety(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := propertyConfig(seed)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d (digest %016x, %d churn events): %v",
					seed, res.Digest, len(cfg.Churn), err)
			}
			if res.Served == 0 {
				t.Fatalf("seed %d served nothing", seed)
			}
			replay, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d replay: %v", seed, err)
			}
			if replay != res {
				t.Fatalf("seed %d replay diverged: %+v vs %+v", seed, res, replay)
			}
		})
	}
}

// TestPropertyRemapBoundedByRingShare asserts the quantitative half of
// the consistent-hashing contract: a single kill in a healthy N-node
// ring remaps roughly 1/N of tenants — never more than a few times
// that share (vnode variance), and never less than nothing.
func TestPropertyRemapBoundedByRingShare(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := Config{
			Seed:     seed,
			Nodes:    8,
			Tenants:  4000,
			Duration: 5 * time.Second,
			Churn:    []ChurnEvent{{At: time.Second, Kind: Kill, Node: int(seed) % 8}},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		share := 1.0 / 8
		if res.MaxRemapFraction <= 0 || res.MaxRemapFraction > 3*share {
			t.Fatalf("seed %d: kill of one node in 8 remapped %.3f of tenants, want (0, %.3f]",
				seed, res.MaxRemapFraction, 3*share)
		}
	}
}

// TestRandomChurnSchedulesAreValid pins the generator contract Run's
// validation enforces, across many seeds and node counts.
func TestRandomChurnSchedulesAreValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := sim.NewRNG(seed)
		nodes := 2 + rng.Intn(15)
		churn := RandomChurn(rng, nodes, 1+rng.Intn(12), 3*time.Second)
		cfg := Config{Nodes: nodes, Tenants: 1, Duration: 10 * time.Second, Churn: churn}
		if _, err := cfg.withDefaults(); err != nil {
			t.Fatalf("seed %d: generated invalid schedule %v: %v", seed, churn, err)
		}
	}
}
