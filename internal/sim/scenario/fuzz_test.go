package scenario

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// FuzzSimScenario drives small scenarios from fuzzer-chosen shapes: any
// combination of seed, cluster size, churn intensity, and probe loss
// must run without panicking and settle into a state that passes every
// safety invariant (Run checks them and returns an error otherwise).
func FuzzSimScenario(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(2))
	f.Add(int64(42), uint8(8), uint8(6), uint8(0))
	f.Add(int64(-7), uint8(2), uint8(1), uint8(9))
	f.Add(int64(0), uint8(16), uint8(8), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nodes, events, lossPct uint8) {
		n := 2 + int(nodes)%15      // 2..16
		loss := float64(lossPct%10) / 100.0 // 0%..9%
		cfg := Config{
			Seed:            seed,
			Nodes:           n,
			Tenants:         300,
			RequestsPerTick: 20,
			FLEvery:         300 * time.Millisecond,
			Duration:        4 * time.Second,
			ProbeLoss:       loss,
			// Default settle is 1.15s; keep the storm clear of it.
			Churn: RandomChurn(sim.NewRNG(seed).Fork(uint64(events)+1), n, 1+int(events)%8, 2500*time.Millisecond),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed=%d nodes=%d events=%d loss=%.2f: %v", seed, n, events, loss, err)
		}
		if res.Dropped != 0 {
			t.Fatalf("dropped %d requests", res.Dropped)
		}
	})
}
