package scenario

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// RandomChurn draws a valid churn schedule: up to events transitions at
// random instants inside window, walked in time order so every kill
// hits a live node, every revive a dead one, and at least one node
// stays alive throughout. The property suite and FuzzSimScenario both
// build their storms with it; determinism follows from rng being a
// seeded sim.RNG.
func RandomChurn(rng *sim.RNG, nodes, events int, window time.Duration) []ChurnEvent {
	if nodes < 2 || events <= 0 || window <= 0 {
		return nil
	}
	times := make([]time.Duration, events)
	for i := range times {
		times[i] = time.Duration(rng.Duration(0, int64(window)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	aliveN := nodes
	out := make([]ChurnEvent, 0, events)
	pick := func(want bool) int {
		// k-th node in index order with the wanted liveness; k drawn
		// from the schedule's RNG so the choice is seed-deterministic.
		n := 0
		for _, a := range alive {
			if a == want {
				n++
			}
		}
		k := rng.Intn(n)
		for i, a := range alive {
			if a == want {
				if k == 0 {
					return i
				}
				k--
			}
		}
		return -1 // unreachable: n counted above
	}
	for _, at := range times {
		deadN := nodes - aliveN
		if aliveN > 1 && (deadN == 0 || rng.Float64() < 0.5) {
			n := pick(true)
			alive[n] = false
			aliveN--
			out = append(out, ChurnEvent{At: at, Kind: Kill, Node: n})
		} else if deadN > 0 {
			n := pick(false)
			alive[n] = true
			aliveN++
			out = append(out, ChurnEvent{At: at, Kind: Revive, Node: n})
		}
	}
	return out
}
