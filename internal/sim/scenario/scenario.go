// Package scenario runs the whole cluster — ring membership, gossip
// death detection, tenant handoff, request routing, federated rounds,
// and model rollouts — as a discrete-event simulation on the
// internal/sim virtual clock. One seeded RNG drives every stochastic
// choice and every event executes single-threaded in deterministic
// queue order, so a run is a pure function of its Config: the same seed
// produces a bit-identical event trace (compared by Digest), and a
// failing seed from CI replays exactly on a laptop.
//
// The model is deliberately structural, not a mock of the production
// structs: placement goes through the real cluster.Ring, and the
// gossip/handoff/rollout state machines mirror internal/cluster and
// internal/flserve at the protocol level (probe counters, per-node
// membership views, sweep-driven handoff, staggered rollout adoption).
// That keeps million-tenant churn storms cheap enough to property-test
// while still exercising the coordination logic the -race suites cover
// at small scale.
package scenario

import (
	"fmt"
	"sort"
	"time"
)

// ChurnKind distinguishes the two membership transitions.
type ChurnKind uint8

const (
	// Kill crashes a node: its in-memory tenant state is lost (the
	// durable store keeps the persisted copy) and peers must detect the
	// death by probe failures.
	Kill ChurnKind = iota + 1
	// Revive restarts a dead node empty: it rejoins with a fresh
	// membership view and the latest rolled-out model.
	Revive
)

// ChurnEvent is one scheduled membership transition.
type ChurnEvent struct {
	// At is the virtual offset from scenario start.
	At time.Duration
	// Kind is Kill or Revive.
	Kind ChurnKind
	// Node indexes the node the event applies to.
	Node int
}

// Config parameterises one simulated run. The zero value of every field
// except Seed gets a sensible default; Seed 0 is a valid seed.
type Config struct {
	// Seed drives every stochastic choice in the run.
	Seed int64
	// Nodes is the cluster size, 1..16 (residency is a 16-bit mask).
	// Defaults to 8.
	Nodes int
	// Tenants is the tenant population. Defaults to 1000.
	Tenants int
	// VNodes is the consistent-hash virtual-node count per member.
	// Defaults to 64 (cheaper rebuilds than production's 128 at the
	// same placement behaviour).
	VNodes int
	// Heartbeat is the gossip probe period. Defaults to 100ms.
	Heartbeat time.Duration
	// DeadAfter is how many consecutive failed probes declare a peer
	// dead, matching cluster.Config.DeadAfter. Defaults to 3.
	DeadAfter int
	// SweepEvery is the handoff sweep period. Defaults to 250ms.
	SweepEvery time.Duration
	// ProbeLoss is the iid probe-loss probability (spurious suspicion).
	// Loss stops during the settle tail so the end state can converge.
	ProbeLoss float64
	// RequestsPerTick requests are injected every TrafficEvery.
	// Defaults: 50 per 50ms.
	RequestsPerTick int
	TrafficEvery    time.Duration
	// FLEvery is the federated-round period; 0 disables FL. Each round
	// samples FLClients tenants, bumps the global model version, and
	// rolls the new version out to each live node after a jittered
	// delay. Defaults: disabled / 10 clients.
	FLEvery   time.Duration
	FLClients int
	// Churn is the membership schedule. Events must keep at least one
	// node alive at all times, kill only live nodes, revive only dead
	// ones, and finish before the settle tail.
	Churn []ChurnEvent
	// Duration is the total virtual run time. Defaults to 10s.
	Duration time.Duration
	// Settle is the churn- and loss-free tail during which views,
	// residency, and rollouts must converge before the invariant check.
	// Defaults to DeadAfter×Heartbeat + 3×SweepEvery + 100ms.
	Settle time.Duration
}

// Result summarises one run.
type Result struct {
	// Digest fingerprints the full event trace: two runs with equal
	// Config produce equal digests, and that is the determinism gate.
	Digest uint64
	// TraceEvents is how many events the digest covers.
	TraceEvents int
	// VirtualTime is the simulated span (Config.Duration after defaults).
	VirtualTime time.Duration

	Served    int64 // requests answered
	Forwarded int64 // requests that crossed from entry node to owner
	Failovers int64 // requests served by the entry from the store because the routed owner was dead
	Dropped   int64 // requests lost — zero on every valid schedule

	Handoffs  int64 // tenant migrations between nodes
	Hydrates  int64 // store loads on first touch after a move or crash
	Deaths    int64 // dead declarations across membership views
	Revivals  int64 // peer revivals observed across views

	Rounds       int64  // federated rounds completed
	ModelVersion uint64 // final global model version

	// MaxRemapFraction is the largest fraction of tenants whose
	// ground-truth owner changed across a single churn event — bounded
	// by the churned node's ring share (the consistent-hashing
	// guarantee the property tests assert).
	MaxRemapFraction float64
}

// withDefaults normalises cfg, returning an error for invalid shapes.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 8
	}
	if cfg.Nodes < 1 || cfg.Nodes > 16 {
		return cfg, fmt.Errorf("scenario: Nodes must be 1..16, got %d", cfg.Nodes)
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 1000
	}
	if cfg.Tenants < 1 {
		return cfg, fmt.Errorf("scenario: Tenants must be positive, got %d", cfg.Tenants)
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 100 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 250 * time.Millisecond
	}
	if cfg.ProbeLoss < 0 || cfg.ProbeLoss >= 1 {
		return cfg, fmt.Errorf("scenario: ProbeLoss must be in [0, 1), got %g", cfg.ProbeLoss)
	}
	if cfg.RequestsPerTick <= 0 {
		cfg.RequestsPerTick = 50
	}
	if cfg.TrafficEvery <= 0 {
		cfg.TrafficEvery = 50 * time.Millisecond
	}
	if cfg.FLEvery > 0 && cfg.FLClients <= 0 {
		cfg.FLClients = 10
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Settle <= 0 {
		cfg.Settle = time.Duration(cfg.DeadAfter)*cfg.Heartbeat + 3*cfg.SweepEvery + 100*time.Millisecond
	}
	if cfg.Settle >= cfg.Duration {
		return cfg, fmt.Errorf("scenario: Settle (%v) must be shorter than Duration (%v)", cfg.Settle, cfg.Duration)
	}

	// Validate the churn schedule against a dry-run of the alive set:
	// kills must hit live nodes, revives dead ones, at least one node
	// must stay alive throughout, and everything must land before the
	// settle tail so the invariants have time to converge.
	churn := make([]ChurnEvent, len(cfg.Churn))
	copy(churn, cfg.Churn)
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].At < churn[j].At })
	cfg.Churn = churn
	aliveN := cfg.Nodes
	alive := make([]bool, cfg.Nodes)
	for i := range alive {
		alive[i] = true
	}
	for i, ev := range churn {
		if ev.Node < 0 || ev.Node >= cfg.Nodes {
			return cfg, fmt.Errorf("scenario: churn[%d] targets node %d of %d", i, ev.Node, cfg.Nodes)
		}
		if ev.At < 0 || ev.At > cfg.Duration-cfg.Settle {
			return cfg, fmt.Errorf("scenario: churn[%d] at %v lands inside the settle tail (run is %v with %v settle)",
				i, ev.At, cfg.Duration, cfg.Settle)
		}
		switch ev.Kind {
		case Kill:
			if !alive[ev.Node] {
				return cfg, fmt.Errorf("scenario: churn[%d] kills node %d twice", i, ev.Node)
			}
			alive[ev.Node] = false
			if aliveN--; aliveN == 0 {
				return cfg, fmt.Errorf("scenario: churn[%d] kills the last live node", i)
			}
		case Revive:
			if alive[ev.Node] {
				return cfg, fmt.Errorf("scenario: churn[%d] revives live node %d", i, ev.Node)
			}
			alive[ev.Node] = true
			aliveN++
		default:
			return cfg, fmt.Errorf("scenario: churn[%d] has unknown kind %d", i, ev.Kind)
		}
	}
	return cfg, nil
}
