package scenario

// Trace event kinds. The digest folds every event into one rolling
// FNV-1a hash; any divergence in what happened, to whom, or when shifts
// the final value, so equal digests mean bit-identical runs.
const (
	evKill       byte = iota + 1 // node crashed (ground truth)
	evRevive                     // node restarted (ground truth)
	evDeathView                  // node a declared peer b dead
	evReviveView                 // node a observed peer b back
	evHandoff                    // tenant c moved from node a to node b
	evServe                      // tenant c served: entry a, serving node b
	evFailover                   // tenant c served by entry a from store; routed owner b was down
	evDrop                       // tenant c had no live node to serve it
	evHydrate                    // node a loaded tenant c from the store
	evRound                      // federated round c aggregated on coordinator a
	evAdopt                      // node a adopted model version c
)

// digest is a rolling FNV-1a/64 over fixed-width event records.
type digest struct {
	h uint64
	n int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newDigest() *digest { return &digest{h: fnvOffset64} }

// add folds one event record: kind, virtual-time offset in nanoseconds,
// two small identifiers (node indexes; -1 when unused), and one wide
// payload (tenant index, version, count).
func (d *digest) add(kind byte, atNanos int64, a, b int, c uint64) {
	d.mix(uint64(kind))
	d.mix(uint64(atNanos))
	d.mix(uint64(int64(a)))
	d.mix(uint64(int64(b)))
	d.mix(c)
	d.n++
}

func (d *digest) mix(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.h = h
}
