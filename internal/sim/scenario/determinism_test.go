package scenario

import (
	"testing"
	"time"
)

// stormConfig is the determinism gate's scenario: 100k tenants on 8
// virtual nodes, 2% probe loss, federated rounds every 500ms, and an
// 8-event churn storm — overlapping kills, staggered revivals — all
// inside 12s of virtual time.
func stormConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		Nodes:           8,
		Tenants:         100_000,
		ProbeLoss:       0.02,
		RequestsPerTick: 200,
		FLEvery:         500 * time.Millisecond,
		Duration:        12 * time.Second,
		Churn: []ChurnEvent{
			{At: 1 * time.Second, Kind: Kill, Node: 1},
			{At: 1200 * time.Millisecond, Kind: Kill, Node: 3},
			{At: 3 * time.Second, Kind: Revive, Node: 1},
			{At: 4 * time.Second, Kind: Kill, Node: 5},
			{At: 5 * time.Second, Kind: Revive, Node: 3},
			{At: 7 * time.Second, Kind: Revive, Node: 5},
			{At: 8 * time.Second, Kind: Kill, Node: 2},
			{At: 9500 * time.Millisecond, Kind: Revive, Node: 2},
		},
	}
}

// TestChurnStormDeterminism is the seed-determinism acceptance gate:
// the same seed must reproduce the 100k-tenant churn storm bit for bit
// (every counter and the full trace digest), a different seed must
// diverge, and both runs plus the replay must fit well under the 30s
// wall budget.
func TestChurnStormDeterminism(t *testing.T) {
	start := time.Now()

	r1, err := Run(stormConfig(42))
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(stormConfig(42))
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if r1 != r2 {
		t.Fatalf("same seed diverged:\nrun 1: %+v\nrun 2: %+v", r1, r2)
	}

	r3, err := Run(stormConfig(43))
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if r3.Digest == r1.Digest {
		t.Fatalf("different seeds produced the same digest %016x", r1.Digest)
	}

	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("three storm runs took %v, budget is 30s", wall)
	}

	if r1.Served == 0 || r1.Handoffs == 0 || r1.Failovers == 0 || r1.Rounds == 0 {
		t.Fatalf("storm did not exercise the system: %+v", r1)
	}
	t.Logf("seed 42: digest %016x over %d events — served %d (forwarded %d, failovers %d), handoffs %d, deaths %d, rounds %d, max remap %.3f, wall %v",
		r1.Digest, r1.TraceEvents, r1.Served, r1.Forwarded, r1.Failovers,
		r1.Handoffs, r1.Deaths, r1.Rounds, r1.MaxRemapFraction, time.Since(start))
}

// TestDeterminismAcrossTenantScales pins the engine's determinism away
// from the storm shape: at each scale the digest is a pure function of
// the seed.
func TestDeterminismAcrossTenantScales(t *testing.T) {
	for _, tenants := range []int{100, 10_000} {
		cfg := Config{Seed: 7, Tenants: tenants, Nodes: 5, Duration: 4 * time.Second,
			Churn: []ChurnEvent{{At: time.Second, Kind: Kill, Node: 2}}}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("tenants=%d: %v", tenants, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("tenants=%d replay: %v", tenants, err)
		}
		if a != b {
			t.Fatalf("tenants=%d: replay diverged", tenants)
		}
	}
}

// TestInvalidSchedulesRejected pins the validation contract the fuzz
// and property generators rely on.
func TestInvalidSchedulesRejected(t *testing.T) {
	base := Config{Nodes: 2, Tenants: 10, Duration: 5 * time.Second}
	cases := map[string][]ChurnEvent{
		"kill last node": {
			{At: time.Second, Kind: Kill, Node: 0},
			{At: 2 * time.Second, Kind: Kill, Node: 1},
		},
		"double kill":          {{At: time.Second, Kind: Kill, Node: 0}, {At: 2 * time.Second, Kind: Kill, Node: 0}},
		"revive live node":     {{At: time.Second, Kind: Revive, Node: 0}},
		"node out of range":    {{At: time.Second, Kind: Kill, Node: 9}},
		"inside settle tail":   {{At: 4900 * time.Millisecond, Kind: Kill, Node: 0}},
	}
	for name, churn := range cases {
		cfg := base
		cfg.Churn = churn
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid schedule accepted", name)
		}
	}
}
