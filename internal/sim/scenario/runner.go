package scenario

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Run executes one simulated scenario to completion and checks the end
// state: zero dropped requests, remaps bounded to the churned node's
// ring share, every membership view converged to ground truth, every
// resident tenant on exactly its owner, and every live node on the
// latest model. A violation returns the partial Result alongside the
// error so the caller can print the seed and digest for replay.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	r := newRunner(cfg)
	r.schedule()
	r.clock.Run(r.start.Add(cfg.Duration))
	r.res.Digest = r.dig.h
	r.res.TraceEvents = r.dig.n
	r.res.VirtualTime = cfg.Duration
	if v := r.violations(); len(v) > 0 {
		return r.res, fmt.Errorf("scenario: seed %d violates %d invariant(s): %s", cfg.Seed, len(v), v[0])
	}
	return r.res, nil
}

// view is one node's private picture of cluster membership — the gossip
// state the production Node keeps: consecutive probe-failure counters,
// a dead set, and the consistent-hash ring over peers it believes live.
type view struct {
	fail []int
	dead []bool
	ver  uint64
	ring *cluster.Ring
}

// tenantState is the per-tenant simulation state: which nodes hold it
// in memory (a bitmask, so the transient dual-residency windows around
// failover are representable) and the model version last stamped on it.
type tenantState struct {
	resident uint16
	version  uint32
}

type runner struct {
	cfg   Config
	clock *sim.VirtualClock
	rng   *sim.RNG
	dig   *digest
	start time.Time
	// quiesceAt begins the settle tail: churn is already forbidden
	// there by validation, probe loss stops, and federated rounds pause
	// so views, residency, and rollouts can converge for the checks.
	quiesceAt time.Time

	names     []string
	byName    map[string]int
	alive     []bool
	aliveList []int // live node indexes, ascending — deterministic choice order
	views     []*view

	tenants []tenantState
	thash   []uint64 // precomputed placement hashes, one cluster.Hash per tenant

	truth    *cluster.Ring // ring over the ground-truth live set
	truthVer uint64

	globalVersion uint64
	nodeVersion   []uint64

	remapViolations int64
	res             Result

	// debug, when set by a test, receives membership-transition logs.
	debug func(format string, args ...any)
}

func (r *runner) debugf(format string, args ...any) {
	if r.debug != nil {
		r.debug(format, args...)
	}
}

func newRunner(cfg Config) *runner {
	r := &runner{
		cfg:   cfg,
		clock: sim.NewVirtual(),
		rng:   sim.NewRNG(cfg.Seed),
		dig:   newDigest(),
	}
	r.start = r.clock.Now()
	r.quiesceAt = r.start.Add(cfg.Duration - cfg.Settle)

	r.names = make([]string, cfg.Nodes)
	r.byName = make(map[string]int, cfg.Nodes)
	r.alive = make([]bool, cfg.Nodes)
	r.views = make([]*view, cfg.Nodes)
	r.nodeVersion = make([]uint64, cfg.Nodes)
	for i := range r.names {
		r.names[i] = fmt.Sprintf("n%02d", i)
		r.byName[r.names[i]] = i
		r.alive[i] = true
	}
	// Views are built only after every name exists: freshView derives
	// its ring from r.names, so building it inside the loop above would
	// give node i a boot ring missing nodes i+1..N.
	for i := range r.views {
		r.views[i] = r.freshView()
	}
	r.rebuildAliveList()
	r.rebuildTruth()

	r.tenants = make([]tenantState, cfg.Tenants)
	r.thash = make([]uint64, cfg.Tenants)
	for t := range r.thash {
		r.thash[t] = cluster.Hash(fmt.Sprintf("t%06d", t))
	}
	return r
}

// freshView is the state a node boots with: everyone presumed live.
func (r *runner) freshView() *view {
	v := &view{
		fail: make([]int, r.cfg.Nodes),
		dead: make([]bool, r.cfg.Nodes),
	}
	r.rebuildView(v)
	return v
}

// rebuildView recomputes a view's ring from its dead set.
func (r *runner) rebuildView(v *view) {
	members := make([]string, 0, r.cfg.Nodes)
	for i, name := range r.names {
		if !v.dead[i] {
			members = append(members, name)
		}
	}
	v.ver++
	v.ring = cluster.BuildRing(v.ver, members, r.cfg.VNodes)
}

func (r *runner) rebuildAliveList() {
	r.aliveList = r.aliveList[:0]
	for i, a := range r.alive {
		if a {
			r.aliveList = append(r.aliveList, i)
		}
	}
}

// rebuildTruth recomputes the ground-truth ring over actually-live nodes.
func (r *runner) rebuildTruth() {
	members := make([]string, 0, len(r.aliveList))
	for _, i := range r.aliveList {
		members = append(members, r.names[i])
	}
	r.truthVer++
	r.truth = cluster.BuildRing(r.truthVer, members, r.cfg.VNodes)
}

func (r *runner) at(now time.Time) int64 { return now.Sub(r.start).Nanoseconds() }

// schedule arms the initial event set: per-node heartbeat and sweep
// loops (phase-staggered like real processes that booted milliseconds
// apart), the traffic injector, the federated-round loop, and the churn
// schedule.
func (r *runner) schedule() {
	for n := range r.names {
		n := n
		stagger := time.Duration(n) * time.Millisecond
		r.clock.Schedule(r.cfg.Heartbeat+stagger, func(now time.Time) { r.heartbeat(n, now) })
		r.clock.Schedule(r.cfg.SweepEvery+stagger, func(now time.Time) { r.sweep(n, now) })
	}
	r.clock.Schedule(r.cfg.TrafficEvery, r.trafficTick)
	if r.cfg.FLEvery > 0 {
		r.clock.Schedule(r.cfg.FLEvery, r.flRound)
	}
	for _, ev := range r.cfg.Churn {
		ev := ev
		r.clock.Schedule(ev.At, func(now time.Time) { r.churn(ev, now) })
	}
}

// churn applies one scheduled membership transition (ground truth) and
// asserts the consistent-hashing remap bound across it.
func (r *runner) churn(ev ChurnEvent, now time.Time) {
	before := r.truth
	switch ev.Kind {
	case Kill:
		r.alive[ev.Node] = false
		// The process is gone: in-memory residency with it. The durable
		// store still has every tenant, so nothing is lost — the next
		// owner hydrates on demand.
		mask := ^(uint16(1) << ev.Node)
		for t := range r.tenants {
			r.tenants[t].resident &= mask
		}
		r.dig.add(evKill, r.at(now), ev.Node, -1, 0)
	case Revive:
		r.alive[ev.Node] = true
		// A restarted node boots empty, presumes everyone live, and
		// pulls the latest rolled-out model before taking traffic.
		r.views[ev.Node] = r.freshView()
		r.nodeVersion[ev.Node] = r.globalVersion
		r.dig.add(evRevive, r.at(now), ev.Node, -1, r.globalVersion)
	}
	r.rebuildAliveList()
	r.rebuildTruth()
	r.checkRemap(before, r.truth, ev)
}

// checkRemap verifies the consistent-hashing contract across one churn
// event: the only tenants whose ground-truth owner changes are those
// the churned node gains or loses — everyone else stays put.
func (r *runner) checkRemap(before, after *cluster.Ring, ev ChurnEvent) {
	churned := r.names[ev.Node]
	moved := 0
	for t := range r.thash {
		was, is := before.OwnerHash(r.thash[t]), after.OwnerHash(r.thash[t])
		if was == is {
			continue
		}
		moved++
		if was != churned && is != churned {
			r.remapViolations++
		}
	}
	if f := float64(moved) / float64(len(r.thash)); f > r.res.MaxRemapFraction {
		r.res.MaxRemapFraction = f
	}
}

// heartbeat is one node's gossip tick: probe every peer, count
// consecutive failures, declare death at DeadAfter, observe revivals on
// the first successful probe. Mirrors Node.heartbeatLoop/probe.
func (r *runner) heartbeat(n int, now time.Time) {
	r.clock.Schedule(r.cfg.Heartbeat, func(now time.Time) { r.heartbeat(n, now) })
	if !r.alive[n] {
		return
	}
	v := r.views[n]
	lossy := r.cfg.ProbeLoss > 0 && now.Before(r.quiesceAt)
	for p := range r.names {
		if p == n {
			continue
		}
		up := r.alive[p]
		if up && lossy && r.rng.Float64() < r.cfg.ProbeLoss {
			up = false
		}
		if up {
			v.fail[p] = 0
			if v.dead[p] {
				v.dead[p] = false
				r.rebuildView(v)
				r.debugf("%v node %d heals peer %d; ring now %v", now.Sub(r.start), n, p, v.ring.Members())
				r.res.Revivals++
				r.dig.add(evReviveView, r.at(now), n, p, 0)
			}
			continue
		}
		if v.fail[p]++; !v.dead[p] && v.fail[p] >= r.cfg.DeadAfter {
			v.dead[p] = true
			r.rebuildView(v)
			r.debugf("%v node %d declares peer %d dead; ring now %v", now.Sub(r.start), n, p, v.ring.Members())
			r.res.Deaths++
			r.dig.add(evDeathView, r.at(now), n, p, 0)
		}
	}
}

// sweep is one node's handoff pass: every resident tenant whose owner
// (per this node's view) is someone else gets pushed to that owner —
// state drains through the durable store exactly like the registry's
// handoff path. A push to a node that is actually down fails and the
// tenant stays put for the next sweep (the view will catch up).
func (r *runner) sweep(n int, now time.Time) {
	r.clock.Schedule(r.cfg.SweepEvery, func(now time.Time) { r.sweep(n, now) })
	if !r.alive[n] {
		return
	}
	v := r.views[n]
	bit := uint16(1) << n
	for t := range r.tenants {
		if r.tenants[t].resident&bit == 0 {
			continue
		}
		owner := r.byName[v.ring.OwnerHash(r.thash[t])]
		if owner == n || !r.alive[owner] {
			continue
		}
		r.tenants[t].resident = r.tenants[t].resident&^bit | uint16(1)<<owner
		r.res.Handoffs++
		r.dig.add(evHandoff, r.at(now), n, owner, uint64(t))
	}
}

// trafficTick injects RequestsPerTick requests: each picks a tenant and
// an entry node, routes by the entry's view of the ring, and forwards
// to the owner. A forward into a dead owner fails over: the entry
// serves from the durable store itself (opening the short dual-residency
// window the sweeps later close).
func (r *runner) trafficTick(now time.Time) {
	r.clock.Schedule(r.cfg.TrafficEvery, r.trafficTick)
	for i := 0; i < r.cfg.RequestsPerTick; i++ {
		t := r.rng.Intn(len(r.tenants))
		if len(r.aliveList) == 0 {
			r.res.Dropped++
			r.dig.add(evDrop, r.at(now), -1, -1, uint64(t))
			continue
		}
		entry := r.aliveList[r.rng.Intn(len(r.aliveList))]
		owner := r.byName[r.views[entry].ring.OwnerHash(r.thash[t])]
		if r.alive[owner] {
			r.serve(owner, t, now)
			if owner != entry {
				r.res.Forwarded++
			}
			r.dig.add(evServe, r.at(now), entry, owner, uint64(t))
		} else {
			r.serve(entry, t, now)
			r.res.Failovers++
			r.dig.add(evFailover, r.at(now), entry, owner, uint64(t))
		}
	}
}

// serve answers one request on node n, hydrating the tenant from the
// store on first touch and stamping it with n's current model version.
func (r *runner) serve(n, t int, now time.Time) {
	bit := uint16(1) << n
	if r.tenants[t].resident&bit == 0 {
		r.tenants[t].resident |= bit
		r.res.Hydrates++
		r.dig.add(evHydrate, r.at(now), n, -1, uint64(t))
	}
	r.tenants[t].version = uint32(r.nodeVersion[n])
	r.res.Served++
}

// flRound runs one federated round: sample FLClients participants,
// aggregate on a live coordinator, bump the global model version, and
// roll it out to each live node after a jittered propagation delay —
// the flserve Start/RunRound cadence. Rounds pause during the settle
// tail so the final rollout can finish before the invariant check.
func (r *runner) flRound(now time.Time) {
	if !now.Before(r.quiesceAt) {
		return
	}
	r.clock.Schedule(r.cfg.FLEvery, r.flRound)
	if len(r.aliveList) == 0 {
		return
	}
	coord := r.aliveList[r.rng.Intn(len(r.aliveList))]
	for i := 0; i < r.cfg.FLClients; i++ {
		t := r.rng.Intn(len(r.tenants))
		r.dig.add(evRound, r.at(now), coord, -1, uint64(t))
	}
	r.globalVersion++
	r.res.Rounds++
	r.dig.add(evRound, r.at(now), coord, -1, r.globalVersion)
	for _, n := range r.aliveList {
		n := n
		jitter := time.Duration(r.rng.Duration(int64(time.Millisecond), int64(20*time.Millisecond)))
		r.clock.Schedule(jitter, func(now time.Time) {
			if !r.alive[n] || r.nodeVersion[n] >= r.globalVersion {
				return
			}
			r.nodeVersion[n] = r.globalVersion
			r.dig.add(evAdopt, r.at(now), n, -1, r.globalVersion)
		})
	}
	r.res.ModelVersion = r.globalVersion
}

// popcount16 is bits.OnesCount16 named for the invariant messages.
func popcount16(m uint16) int { return bits.OnesCount16(m) }
