// Package pca implements the embedding-compression utility of §III-A.4:
// principal component analysis fitted on a sample of query embeddings,
// producing a k×d projection that becomes an additional layer of the
// embedding model (Figure 3). Compressing 768-d embeddings to 64-d cuts
// cache storage by ≈83% and speeds up the cosine search (Figure 10).
//
// The eigendecomposition uses block orthogonal iteration (subspace power
// method) on the d×d covariance matrix: numerically simple, dependency-free
// and fast for the d ≤ 4096, k ≤ 128 regime this system needs.
package pca

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// Projector holds a fitted PCA basis.
type Projector struct {
	// Components is the k×d projection matrix; rows are orthonormal
	// principal directions, ordered by decreasing explained variance.
	Components *vecmath.Matrix
	// Mean is the d-dimensional sample mean subtracted before projection.
	Mean []float32
	// Explained[i] is the variance captured by component i.
	Explained []float64
	// TotalVar is the total variance of the fitted sample.
	TotalVar float64
}

// Options tunes the fit.
type Options struct {
	// Iterations bounds the orthogonal-iteration sweeps. The default (60)
	// is ample for the clustered spectra of embedding covariance matrices.
	Iterations int
	// Seed initialises the random subspace.
	Seed int64
}

// Fit computes the top-k principal components of the rows of samples
// (n×d). k must satisfy 0 < k ≤ min(n, d).
func Fit(samples *vecmath.Matrix, k int, opts Options) (*Projector, error) {
	n, d := samples.Rows, samples.Cols
	if k <= 0 || k > d || k > n {
		return nil, fmt.Errorf("pca: k=%d out of range for %dx%d samples", k, n, d)
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 60
	}

	// Mean-centre.
	mean := make([]float32, d)
	for i := 0; i < n; i++ {
		vecmath.Axpy(1, samples.Row(i), mean)
	}
	vecmath.Scale(1/float32(n), mean)
	centered := vecmath.NewMatrix(n, d)
	vecmath.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := centered.Row(i)
			copy(row, samples.Row(i))
			vecmath.Axpy(-1, mean, row)
		}
	})

	// Covariance C = Xᵀ X / (n−1)  (d×d).
	cov := vecmath.MatMul(centered.Transpose(), centered)
	denom := float32(1)
	if n > 1 {
		denom = float32(n - 1)
	}
	vecmath.Scale(1/denom, cov.Data)
	var totalVar float64
	for i := 0; i < d; i++ {
		totalVar += float64(cov.At(i, i))
	}

	// Orthogonal iteration: Q ← orth(C·Q) until the subspace stabilises.
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	q := vecmath.NewMatrix(d, k)
	q.RandomizeNormal(rng, 1)
	orthonormalizeColumns(q)
	for it := 0; it < opts.Iterations; it++ {
		q = vecmath.MatMul(cov, q)
		orthonormalizeColumns(q)
	}

	// Rayleigh quotients give the eigenvalues; sort descending.
	cq := vecmath.MatMul(cov, q)
	type comp struct {
		lambda float64
		col    int
	}
	comps := make([]comp, k)
	for j := 0; j < k; j++ {
		var lam float64
		for i := 0; i < d; i++ {
			lam += float64(q.At(i, j)) * float64(cq.At(i, j))
		}
		comps[j] = comp{lambda: lam, col: j}
	}
	for a := 0; a < k; a++ { // small k: selection sort keeps it simple
		best := a
		for b := a + 1; b < k; b++ {
			if comps[b].lambda > comps[best].lambda {
				best = b
			}
		}
		comps[a], comps[best] = comps[best], comps[a]
	}

	p := &Projector{
		Components: vecmath.NewMatrix(k, d),
		Mean:       mean,
		Explained:  make([]float64, k),
		TotalVar:   totalVar,
	}
	for rank, c := range comps {
		p.Explained[rank] = c.lambda
		row := p.Components.Row(rank)
		for i := 0; i < d; i++ {
			row[i] = q.At(i, c.col)
		}
	}
	return p, nil
}

// orthonormalizeColumns runs modified Gram-Schmidt on the columns of m.
// Degenerate (near-zero) columns are replaced with unit basis vectors so
// the iteration never collapses.
func orthonormalizeColumns(m *vecmath.Matrix) {
	d, k := m.Rows, m.Cols
	col := make([]float32, d)
	for j := 0; j < k; j++ {
		for i := 0; i < d; i++ {
			col[i] = m.At(i, j)
		}
		for prev := 0; prev < j; prev++ {
			var dot float32
			for i := 0; i < d; i++ {
				dot += col[i] * m.At(i, prev)
			}
			for i := 0; i < d; i++ {
				col[i] -= dot * m.At(i, prev)
			}
		}
		norm := vecmath.Norm(col)
		if norm < 1e-12 {
			vecmath.Zero(col)
			col[j%d] = 1
		} else {
			vecmath.Scale(1/norm, col)
		}
		for i := 0; i < d; i++ {
			m.Set(i, j, col[i])
		}
	}
}

// Dim reports the input dimensionality d.
func (p *Projector) Dim() int { return p.Components.Cols }

// K reports the number of components.
func (p *Projector) K() int { return p.Components.Rows }

// Transform projects x (length d) into the k-dimensional PCA space. The
// mean is subtracted first, matching the fit.
func (p *Projector) Transform(x []float32) []float32 {
	if len(x) != p.Dim() {
		panic(fmt.Sprintf("pca: Transform input dim %d, want %d", len(x), p.Dim()))
	}
	centered := vecmath.Sub(x, p.Mean)
	out := make([]float32, p.K())
	p.Components.MulVec(out, centered)
	return out
}

// ExplainedRatio returns the cumulative fraction of total variance captured
// by the first k components.
func (p *Projector) ExplainedRatio() float64 {
	if p.TotalVar == 0 {
		return 0
	}
	var sum float64
	for _, e := range p.Explained {
		sum += e
	}
	r := sum / p.TotalVar
	return math.Min(r, 1)
}
