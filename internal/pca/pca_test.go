package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// planted builds n samples lying (with small noise) in a known
// low-dimensional subspace, so the principal components are predictable.
func planted(n, d, rank int, noise float64, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	basis := vecmath.NewMatrix(rank, d)
	basis.RandomizeNormal(rng, 1)
	for i := 0; i < rank; i++ {
		vecmath.Normalize(basis.Row(i))
	}
	samples := vecmath.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := samples.Row(i)
		for r := 0; r < rank; r++ {
			// Decaying scale per direction makes the spectrum strictly ordered.
			scale := float32(rng.NormFloat64()) * float32(rank-r) * 3
			vecmath.Axpy(scale, basis.Row(r), row)
		}
		for j := range row {
			row[j] += float32(rng.NormFloat64() * noise)
		}
	}
	return samples
}

func TestFitRecoversSubspace(t *testing.T) {
	samples := planted(300, 40, 4, 0.01, 1)
	p, err := Fit(samples, 4, Options{Seed: 2})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Nearly all variance must be captured by the 4 components.
	if r := p.ExplainedRatio(); r < 0.99 {
		t.Fatalf("explained ratio = %v, want >= 0.99", r)
	}
	// Eigenvalues sorted descending.
	for i := 1; i < len(p.Explained); i++ {
		if p.Explained[i] > p.Explained[i-1]+1e-9 {
			t.Fatalf("eigenvalues not sorted: %v", p.Explained)
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	samples := planted(200, 30, 8, 0.1, 3)
	p, err := Fit(samples, 8, Options{Seed: 4})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i := 0; i < p.K(); i++ {
		ri := p.Components.Row(i)
		if math.Abs(float64(vecmath.Norm(ri))-1) > 1e-4 {
			t.Fatalf("component %d not unit norm", i)
		}
		for j := i + 1; j < p.K(); j++ {
			dot := float64(vecmath.Dot(ri, p.Components.Row(j)))
			if math.Abs(dot) > 1e-3 {
				t.Fatalf("components %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

// Property: projection preserves pairwise distances of points within the
// principal subspace (isometry on the retained directions).
func TestTransformIsometryOnSubspace(t *testing.T) {
	samples := planted(300, 40, 4, 0.001, 5)
	p, err := Fit(samples, 4, Options{Seed: 6})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for trial := 0; trial < 50; trial++ {
		a := samples.Row(trial)
		b := samples.Row(trial + 100)
		origDist := float64(vecmath.Norm(vecmath.Sub(a, b)))
		projDist := float64(vecmath.Norm(vecmath.Sub(p.Transform(a), p.Transform(b))))
		if math.Abs(origDist-projDist) > 0.05*(1+origDist) {
			t.Fatalf("distance not preserved: %v vs %v", origDist, projDist)
		}
	}
}

func TestTransformDimensions(t *testing.T) {
	samples := planted(100, 24, 3, 0.05, 7)
	p, err := Fit(samples, 5, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := p.Transform(samples.Row(0))
	if len(out) != 5 {
		t.Fatalf("Transform len = %d, want 5", len(out))
	}
	if p.Dim() != 24 || p.K() != 5 {
		t.Fatalf("Dim/K = %d/%d, want 24/5", p.Dim(), p.K())
	}
}

func TestTransformPanicsOnWrongDim(t *testing.T) {
	samples := planted(50, 10, 2, 0.05, 8)
	p, _ := Fit(samples, 2, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Transform accepted wrong input dim")
		}
	}()
	p.Transform(make([]float32, 11))
}

func TestFitRejectsBadK(t *testing.T) {
	samples := planted(20, 10, 2, 0.05, 9)
	for _, k := range []int{0, -1, 11, 21} {
		if _, err := Fit(samples, k, Options{}); err == nil {
			t.Fatalf("Fit accepted k=%d for 20x10 samples", k)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	samples := planted(100, 16, 4, 0.05, 10)
	a, _ := Fit(samples, 4, Options{Seed: 11})
	b, _ := Fit(samples, 4, Options{Seed: 11})
	for i := range a.Components.Data {
		if a.Components.Data[i] != b.Components.Data[i] {
			t.Fatal("Fit not deterministic at fixed seed")
		}
	}
}

func TestMeanCentering(t *testing.T) {
	// Samples offset by a large constant: the mean must absorb it so the
	// components reflect variance, not the offset.
	samples := planted(200, 20, 2, 0.01, 12)
	for i := 0; i < samples.Rows; i++ {
		row := samples.Row(i)
		for j := range row {
			row[j] += 100
		}
	}
	p, err := Fit(samples, 2, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if p.Mean[0] < 50 {
		t.Fatalf("mean not captured: %v", p.Mean[0])
	}
	if r := p.ExplainedRatio(); r < 0.99 {
		t.Fatalf("explained ratio with offset = %v, want >= 0.99", r)
	}
}

func BenchmarkFit768to64(b *testing.B) {
	samples := planted(500, 768, 32, 0.1, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(samples, 64, Options{Iterations: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransform768to64(b *testing.B) {
	samples := planted(500, 768, 32, 0.1, 14)
	p, err := Fit(samples, 64, Options{Iterations: 30})
	if err != nil {
		b.Fatal(err)
	}
	x := samples.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Transform(x)
	}
}
