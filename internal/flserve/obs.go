package flserve

import (
	"sync/atomic"

	"repro/internal/obs"
)

// RegisterMetrics exposes the coordinator's round, rollout, and
// collection state on reg under meancache_fl_*. Everything reads the
// service's existing atomics (or the collector's snapshot) at scrape
// time — no accounting is added to the round or collection paths.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("meancache_fl_round", "Federated-learning rounds completed.", func() float64 {
		return float64(s.Round())
	})
	reg.GaugeFunc("meancache_fl_tau", "Current global similarity threshold.", func() float64 {
		return s.Tau()
	})
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"meancache_fl_rollout_swaps_total", "Serving-encoder swaps performed by rollouts.", &s.rollouts.swaps},
		{"meancache_fl_tenants_reembedded_total", "Resident tenants re-embedded by rollouts.", &s.rollouts.tenantsReembedded},
		{"meancache_fl_entries_reembedded_total", "Cache entries migrated to a new embedding space.", &s.rollouts.entriesReembedded},
		{"meancache_fl_activations_migrated_total", "Tenant activations migrated to the current model on revival.", &s.rollouts.activationsMigrated},
		{"meancache_fl_reembed_errors_total", "Tenant re-embeds that failed during a rollout.", &s.rollouts.reembedErrors},
	}
	for _, c := range counters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() float64 { return float64(v.Load()) })
	}
	col := s.cfg.Collector
	reg.GaugeFunc("meancache_fl_collector_tenants", "Tenants with a collected training shard.", func() float64 {
		return float64(col.Stats().Tenants)
	})
	reg.GaugeFunc("meancache_fl_collector_pairs", "Training pairs currently held across shards.", func() float64 {
		return float64(col.Stats().Pairs)
	})
	reg.CounterFunc("meancache_fl_collector_positives_total", "Positive training pairs collected.", func() float64 {
		return float64(col.Stats().Positives)
	})
	reg.CounterFunc("meancache_fl_collector_negatives_total", "Negative training pairs collected.", func() float64 {
		return float64(col.Stats().Negatives)
	})
	reg.CounterFunc("meancache_fl_collector_retracted_total", "Positives retracted by false-hit feedback.", func() float64 {
		return float64(col.Stats().Retracted)
	})
}
