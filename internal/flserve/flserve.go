// Package flserve is the online federated-learning coordinator of the
// serving layer: it closes the paper's headline loop for live traffic.
// Served tenants continuously generate private training examples
// (Collector), a round scheduler samples cohorts of active tenants and
// runs local fine-tune + τ search via internal/train with FedAvg or
// secure aggregation from internal/fl (Service.RunRound), every
// aggregated model is committed to a versioned content-addressed registry
// (ModelRegistry), and a hot rollout path swaps the new encoder into the
// running process and re-embeds cached entries in the background without
// blocking queries (rollout.go).
//
// The subsystem lives inside cmd/cacheserve: enable it with -fl. Rounds
// run on a timer (-fl-interval) or on demand (POST /v1/fl/round); state
// is inspectable at GET /v1/fl/status and GET /v1/model.
package flserve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embed"
	"repro/internal/fl"
	"repro/internal/pca"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// Config assembles a Service.
type Config struct {
	// Registry is the serving layer's tenant table. Required.
	Registry *server.Registry
	// Collector supplies per-tenant training shards. Required (wire it as
	// the server's Observer too).
	Collector *Collector
	// Encoder is the live serving encoder; rollouts swap new global
	// models into it. Required. Its current encoder must be a trainable
	// *embed.Model of Arch (possibly reached through the registry's
	// latest version at startup).
	Encoder *embed.Swappable
	// Arch is the trainable encoder architecture being federated.
	Arch embed.Arch
	// Store, when non-nil, persists model versions and collected shards
	// across restarts.
	Store *store.Store
	// MaxVersions bounds retained model payloads (default 5).
	MaxVersions int

	// Train is the local fine-tuning recipe shipped to cohort members.
	// Zero value = train.DefaultConfig() with 2 epochs (online rounds
	// favour frequency over per-round depth).
	Train train.Config
	// Beta weights recall vs precision in the clients' τ search
	// (default 0.5, the serving-friendly precision-leaning value).
	Beta float64
	// Cohort is how many tenants are sampled per round (default 4, the
	// paper's §IV-E setting).
	Cohort int
	// MinPairs is the shard size a tenant needs to be sampled
	// (default 8).
	MinPairs int
	// Aggregator combines updates (default fl.FedAvg).
	Aggregator fl.Aggregator
	// Secure aggregates through pairwise-masked updates
	// (fl.RunSecureRound) instead of plaintext FedAvg: the coordinator
	// only ever sees masked per-tenant weight vectors.
	Secure bool
	// InitialTau seeds the global threshold before the first round
	// (default 0.83).
	InitialTau float64
	// Seed drives cohort sampling.
	Seed int64
	// Interval, when positive, runs rounds on a timer after Start.
	Interval time.Duration
	// RolloutParallel bounds concurrent tenant re-embeds during a
	// rollout (default 4).
	RolloutParallel int
	// PCADim, when positive, fits a PCA basis of that dimension on a
	// sample of shard texts each round and attaches it to the committed
	// version (§III-A.4's compressed embedding space, for clients that
	// fetch the model). The serving rollout itself stays in the raw
	// space, because live caches are sized to the raw dimension.
	PCADim int
	// Gate, when non-nil, bounds the round's training/aggregation phase
	// under a shared maintenance semaphore so FL compute yields to
	// foreground traffic. It is held only across local training and
	// aggregation — never across registry calls or the rollout, whose
	// per-tenant re-embeds gate themselves through the cache's own
	// maintenance gate (nesting the two would deadlock a capacity-1
	// semaphore). The interface is structural; resilience.Weighted
	// satisfies it.
	Gate Gate
	// Clock is the round scheduler's time source (the Interval ticker
	// and round wall-time reporting). Nil defaults to the wall clock;
	// simulations inject a virtual one so FL rounds fire on virtual
	// time.
	Clock sim.Clock
}

// Gate bounds background maintenance concurrency (see Config.Gate).
type Gate interface {
	Acquire(ctx context.Context, n int64) error
	Release(n int64)
}

// Service is the online FL coordinator.
type Service struct {
	cfg    Config
	models *ModelRegistry
	global *embed.Model // authoritative global weights (coordinator copy)

	// tau is math.Float64bits of the current global threshold; atomic so
	// tenant-activation hooks (which can fire inside RunRound's registry
	// calls, while s.mu is held) read it without deadlocking.
	tau atomic.Uint64

	mu sync.Mutex // serialises rounds (held for a full round's duration)

	// stateMu guards the round counter and history — a separate, briefly
	// held lock so /v1/fl/status stays responsive while a round runs.
	stateMu sync.Mutex
	round   int
	history []RoundReport

	// tenantVersions: userID -> model version the tenant's entries were
	// last confirmed migrated to (grows with the distinct-user population;
	// entries are tiny). Guarded by tvMu, touched from rollout goroutines
	// and registry lifecycle hooks.
	tvMu           sync.Mutex
	tenantVersions map[string]string

	stop     chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup
	rng      *rand.Rand

	rollouts rolloutStats
}

// RoundReport summarises one completed online round.
type RoundReport struct {
	Round    int     `json:"round"`
	Version  string  `json:"version"`
	Tau      float64 `json:"tau"`
	Eligible int     `json:"eligible_tenants"`
	Cohort   int     `json:"cohort"`
	Trained  int     `json:"trained"`
	Failed   int     `json:"failed"`
	Samples  int     `json:"samples"`
	// Reembedded counts cache entries migrated during the rollout.
	Reembedded int    `json:"reembedded_entries"`
	TookMillis int64  `json:"took_millis"`
	Secure     bool   `json:"secure"`
	Error      string `json:"error,omitempty"`
}

// New builds the coordinator. The registry's latest persisted version (if
// any) is swapped into the serving encoder immediately, so a restarted
// process resumes serving its last global model.
func New(cfg Config) (*Service, error) {
	if cfg.Registry == nil || cfg.Collector == nil || cfg.Encoder == nil {
		return nil, fmt.Errorf("flserve: Registry, Collector and Encoder are required")
	}
	if !cfg.Arch.Trainable {
		return nil, fmt.Errorf("flserve: architecture %s is frozen and cannot be federated", cfg.Arch.Name)
	}
	if cfg.Train.Epochs == 0 {
		cfg.Train = train.DefaultConfig()
		cfg.Train.Epochs = 2
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.5
	}
	if cfg.Cohort <= 0 {
		cfg.Cohort = 4
	}
	if cfg.MinPairs <= 0 {
		cfg.MinPairs = 8
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = fl.FedAvg{}
	}
	if cfg.InitialTau <= 0 {
		cfg.InitialTau = 0.83
	}
	if cfg.RolloutParallel <= 0 {
		cfg.RolloutParallel = 4
	}
	cfg.Clock = sim.Or(cfg.Clock)
	models, err := NewModelRegistry(cfg.Store, cfg.MaxVersions, cfg.Arch)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:            cfg,
		models:         models,
		tenantVersions: make(map[string]string),
		stop:           make(chan struct{}),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
	}
	s.setTau(cfg.InitialTau)
	// The coordinator's global model starts from the serving encoder's
	// current weights, or resumes from the persisted latest version.
	s.global = embed.NewModel(cfg.Arch, cfg.Seed)
	if cur, ok := cfg.Encoder.Current().(*embed.Model); ok && cur.Cfg.Name == cfg.Arch.Name {
		s.global.SetWeights(cur.Weights())
	}
	if rec, ok := models.Latest(); ok {
		if rec.Arch != cfg.Arch.Name {
			return nil, fmt.Errorf("flserve: persisted model arch %q != configured %q", rec.Arch, cfg.Arch.Name)
		}
		w := models.LatestWeights()
		if len(w) != s.global.WeightCount() {
			return nil, fmt.Errorf("flserve: persisted model holds %d weights, arch %s wants %d",
				len(w), cfg.Arch.Name, s.global.WeightCount())
		}
		s.global.SetWeights(w)
		s.setTau(rec.Tau)
		s.round = rec.Round + 1
		serving := embed.NewModel(cfg.Arch, 0)
		serving.SetWeights(s.global.Weights())
		cfg.Encoder.Swap(serving)
	}
	if cfg.Store != nil {
		if err := cfg.Collector.LoadFrom(cfg.Store); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Models exposes the version registry.
func (s *Service) Models() *ModelRegistry { return s.models }

// Tau reports the current global threshold. Lock-free: safe from tenant
// lifecycle hooks that run while a round is in progress.
func (s *Service) Tau() float64 { return math.Float64frombits(s.tau.Load()) }

func (s *Service) setTau(tau float64) { s.tau.Store(math.Float64bits(tau)) }

// Start launches the periodic round loop when Interval is configured.
func (s *Service) Start() {
	if s.cfg.Interval <= 0 {
		return
	}
	s.loopWG.Add(1)
	go func() {
		defer s.loopWG.Done()
		t := s.cfg.Clock.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.RunRound() // errors land in the status history
			}
		}
	}()
}

// Close stops the round loop and persists collected shards.
func (s *Service) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.loopWG.Wait()
	if s.cfg.Store != nil {
		return s.cfg.Collector.SaveTo(s.cfg.Store)
	}
	return nil
}

// RunRound executes one full online FL round: sample a cohort of active
// tenants, train their private shards locally, aggregate weights + τ,
// commit the version, and hot-roll it out to all resident tenants. Rounds
// are serialised; concurrent calls queue. Serving traffic continues
// throughout — only the per-tenant re-embed batches take the cache write
// lock, in short slices.
func (s *Service) RunRound() (RoundReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.cfg.Clock.Now()
	round := s.Round()
	rep := RoundReport{Round: round, Tau: s.Tau(), Secure: s.cfg.Secure}
	fail := func(err error) (RoundReport, error) {
		rep.Error = err.Error()
		rep.TookMillis = s.cfg.Clock.Since(start).Milliseconds()
		s.pushHistory(rep)
		return rep, err
	}

	// 1. Sample the cohort from tenants with enough collected examples.
	eligible := s.cfg.Collector.Eligible(s.cfg.MinPairs)
	rep.Eligible = len(eligible)
	if len(eligible) == 0 {
		return fail(fmt.Errorf("flserve: no tenant has %d collected pairs yet", s.cfg.MinPairs))
	}
	s.rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	cohortUsers := eligible[:min(s.cfg.Cohort, len(eligible))]
	rep.Cohort = len(cohortUsers)

	// 2. Build one FL client per cohort member around its private shard.
	// Tenants are pinned (refcounted) for the duration so eviction cannot
	// race the τ installation at rollout.
	clients := make([]fl.Client, 0, len(cohortUsers))
	pinned := make([]*server.Tenant, 0, len(cohortUsers))
	defer func() {
		for _, t := range pinned {
			t.Release()
		}
	}()
	for i, user := range cohortUsers {
		t, err := s.cfg.Registry.Get(user)
		if err == nil {
			pinned = append(pinned, t)
		}
		pairs := s.cfg.Collector.Shard(user)
		if len(pairs) == 0 {
			continue
		}
		// Shards arrive in traffic order; shuffle so the client's held-out
		// validation slice mixes labels and recency.
		s.rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		clients = append(clients, fl.NewLocalClient(i, s.cfg.Arch, s.cfg.Seed+int64(round)*7919, pairs, s.cfg.Train, s.cfg.Beta))
	}
	if len(clients) == 0 {
		return fail(fmt.Errorf("flserve: sampled cohort has no training data"))
	}

	// 3. Train + aggregate (plaintext FedAvg or masked secure agg). The
	// maintenance gate is held for this phase only — the CPU-heavy part
	// with no registry interaction — so foreground serving keeps its
	// cores; it is released before the rollout, whose re-embeds acquire
	// the cache-level gate themselves.
	if s.cfg.Gate != nil {
		if err := s.cfg.Gate.Acquire(context.Background(), 1); err != nil {
			return fail(fmt.Errorf("flserve: maintenance gate: %w", err))
		}
	}
	global := s.global.Weights()
	var newWeights []float32
	var newTau float64
	var trainErr error
	if s.cfg.Secure {
		res, err := fl.RunSecureRound(clients, global, s.Tau(), s.cfg.Seed+int64(round), 1.0)
		if err != nil {
			trainErr = err
		} else {
			newWeights, newTau = res.Aggregated, res.Tau
			rep.Trained = len(clients)
			rep.Samples = res.Samples
		}
	} else {
		res, err := fl.RunCohort(clients, global, s.Tau(), s.cfg.Aggregator, true)
		if err != nil {
			trainErr = err
		} else {
			newWeights, newTau = res.Weights, res.Tau
			rep.Trained = len(res.Trained)
			rep.Failed = len(res.Failed)
			rep.Samples = res.Samples
		}
	}
	if s.cfg.Gate != nil {
		s.cfg.Gate.Release(1)
	}
	if trainErr != nil {
		return fail(trainErr)
	}

	// 4. Commit the version (with an optional PCA basis fitted on shard
	// texts in the new embedding space).
	s.global.SetWeights(newWeights)
	s.setTau(newTau)
	basis, mean, basisRows, basisCols := s.fitBasis(cohortUsers)
	rec, err := s.models.Commit(ModelRecord{
		Round:     round,
		Arch:      s.cfg.Arch.Name,
		Dim:       s.cfg.Arch.OutDim,
		Tau:       newTau,
		Cohort:    len(clients),
		Samples:   rep.Samples,
		BasisRows: basisRows,
		BasisCols: basisCols,
	}, newWeights, basis, mean)
	if err != nil {
		return fail(err)
	}
	rep.Version = rec.Version
	rep.Tau = newTau

	// 5. Hot rollout: swap the serving encoder, then re-embed resident
	// tenants (bounded parallelism; queries keep flowing).
	rep.Reembedded = s.rollout(rec.Version, newWeights, newTau)

	// 6. Persist collected shards so a restart keeps the training data.
	if s.cfg.Store != nil {
		if err := s.cfg.Collector.SaveTo(s.cfg.Store); err != nil {
			return fail(err)
		}
	}

	s.stateMu.Lock()
	s.round++
	s.stateMu.Unlock()
	rep.TookMillis = s.cfg.Clock.Since(start).Milliseconds()
	s.pushHistory(rep)
	return rep, nil
}

// Round reports the next round number (rounds completed so far).
func (s *Service) Round() int {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.round
}

// pushHistory appends a round report, bounding the ring.
func (s *Service) pushHistory(rep RoundReport) {
	const maxHistory = 64
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.history = append(s.history, rep)
	if len(s.history) > maxHistory {
		s.history = s.history[len(s.history)-maxHistory:]
	}
}

// fitBasis fits the optional PCA compression basis on the cohort's shard
// texts, embedded under the just-aggregated global model.
func (s *Service) fitBasis(cohortUsers []string) (basis, mean []float32, rows, cols int) {
	k := s.cfg.PCADim
	if k <= 0 {
		return nil, nil, 0, 0
	}
	var texts []string
	for _, user := range cohortUsers {
		for _, p := range s.cfg.Collector.Shard(user) {
			texts = append(texts, p.A, p.B)
		}
	}
	if len(texts) < 2*k {
		return nil, nil, 0, 0 // too few samples for a stable basis
	}
	const maxSamples = 512
	if len(texts) > maxSamples {
		s.rng.Shuffle(len(texts), func(i, j int) { texts[i], texts[j] = texts[j], texts[i] })
		texts = texts[:maxSamples]
	}
	samples := s.global.EncodeBatch(texts)
	p, err := pca.Fit(samples, k, pca.Options{})
	if err != nil {
		return nil, nil, 0, 0
	}
	return p.Components.Data, p.Mean, p.Components.Rows, p.Components.Cols
}

// vecmathMatrix rebuilds a matrix from its persisted flat form.
func vecmathMatrix(rows, cols int, data []float32) *vecmath.Matrix {
	m := vecmath.NewMatrix(rows, cols)
	copy(m.Data, data)
	return m
}
