package flserve

import (
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/server"
)

// rolloutStats counts hot-rollout activity for /v1/fl/status.
type rolloutStats struct {
	swaps               atomic.Int64
	tenantsReembedded   atomic.Int64
	entriesReembedded   atomic.Int64
	activationsMigrated atomic.Int64
	reembedErrors       atomic.Int64
}

// RolloutStats is the JSON snapshot of rollout activity.
type RolloutStats struct {
	Swaps               int64 `json:"swaps"`
	TenantsReembedded   int64 `json:"tenants_reembedded"`
	EntriesReembedded   int64 `json:"entries_reembedded"`
	ActivationsMigrated int64 `json:"activations_migrated"`
	ReembedErrors       int64 `json:"reembed_errors,omitempty"`
}

// rollout installs the new global model into the running process: swap
// the shared serving encoder (a single atomic pointer — every subsequent
// encode in every tenant uses the new weights), then walk resident
// tenants installing τ_global and re-embedding their cached entries so
// stored vectors rejoin the probe embedding space. Re-embedding runs with
// bounded parallelism and short write-locked batches, so queries are
// never blocked; until a tenant's migration completes, its probes
// (already in the new space) score against old-space vectors — a brief
// recall dip, never an outage. Returns the number of entries migrated.
func (s *Service) rollout(version string, weights []float32, tau float64) int {
	serving := embed.NewModel(s.cfg.Arch, 0)
	serving.SetWeights(weights)
	s.cfg.Encoder.Swap(serving)
	s.rollouts.swaps.Add(1)

	ids := s.cfg.Registry.IDs()
	sem := make(chan struct{}, s.cfg.RolloutParallel)
	var wg sync.WaitGroup
	var migrated atomic.Int64
	for _, id := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(id string) {
			defer wg.Done()
			defer func() { <-sem }()
			t, err := s.cfg.Registry.Get(id) // pins against eviction
			if err != nil {
				s.rollouts.reembedErrors.Add(1)
				return
			}
			defer t.Release()
			t.Client.SetTau(float32(tau))
			n, err := t.Client.Reembed()
			if err != nil {
				s.rollouts.reembedErrors.Add(1)
				return
			}
			migrated.Add(int64(n))
			s.noteTenantVersion(id, version)
			s.rollouts.tenantsReembedded.Add(1)
			s.rollouts.entriesReembedded.Add(int64(n))
		}(id)
	}
	wg.Wait()
	return int(migrated.Load())
}

// modelVerMetaKey records, in each tenant's persisted store, which model
// version its cache entries were embedded under.
const modelVerMetaKey = "modelver"

// noteTenantVersion records the model version a tenant's cache entries
// were last confirmed migrated to. TenantMeta stamps THIS version on
// eviction — never models.Latest(), which may be ahead of a tenant whose
// re-embed failed or that was evicted mid-rollout; an out-of-date (or
// absent) stamp makes revival re-embed, which is always safe.
func (s *Service) noteTenantVersion(user, version string) {
	s.tvMu.Lock()
	s.tenantVersions[user] = version
	s.tvMu.Unlock()
}

// tenantVersion reports the last confirmed version ("" = never migrated).
func (s *Service) tenantVersion(user string) string {
	s.tvMu.Lock()
	defer s.tvMu.Unlock()
	return s.tenantVersions[user]
}

// Hooks returns the registry lifecycle hooks that keep evicted-and-revived
// tenants consistent with rollouts: persistence stamps the current model
// version next to the cache, and activation re-embeds any cache whose
// stamp is stale (the tenant was on disk when a rollout happened). Wire
// the result into server.RegistryConfig.Hooks.
func (s *Service) Hooks() server.TenantHooks { return serviceHooks{s} }

type serviceHooks struct{ s *Service }

// TenantActivated implements server.TenantHooks. It runs under the shard
// lock, so the synchronous re-embed stalls only that shard — and only for
// tenants revived across a model boundary.
func (h serviceHooks) TenantActivated(t *server.Tenant, meta map[string][]byte) {
	cur, ok := h.s.models.Latest()
	if !ok {
		return // no committed version yet: nothing to migrate to
	}
	if meta != nil && string(meta[modelVerMetaKey]) == cur.Version {
		h.s.noteTenantVersion(t.ID, cur.Version)
		return // persisted under the current model
	}
	if meta == nil && t.Client.Cache().Len() == 0 {
		// Fresh tenant with an empty cache: entries it inserts will use
		// the current encoder already. Just install the global τ.
		t.Client.SetTau(float32(h.s.Tau()))
		h.s.noteTenantVersion(t.ID, cur.Version)
		return
	}
	t.Client.SetTau(float32(cur.Tau))
	if n, err := t.Client.Reembed(); err != nil {
		h.s.rollouts.reembedErrors.Add(1)
	} else {
		h.s.noteTenantVersion(t.ID, cur.Version)
		if n > 0 {
			h.s.rollouts.activationsMigrated.Add(1)
			h.s.rollouts.entriesReembedded.Add(int64(n))
		}
	}
}

// TenantMeta implements server.TenantHooks. The stamp is the version the
// tenant's entries were last confirmed migrated to, not the registry's
// latest — see noteTenantVersion.
func (h serviceHooks) TenantMeta(t *server.Tenant) map[string][]byte {
	ver := h.s.tenantVersion(t.ID)
	if ver == "" {
		return nil
	}
	return map[string][]byte{modelVerMetaKey: []byte(ver)}
}

// LateHooks adapts a Service that may not exist yet into
// server.TenantHooks: the tenant registry is constructed before the
// coordinator (each references the other), so callers wire a LateHooks
// into server.RegistryConfig.Hooks and Bind the service once built.
// Unbound, every hook is a no-op.
type LateHooks struct {
	svc atomic.Pointer[Service]
}

// Bind installs the service behind the hooks.
func (l *LateHooks) Bind(s *Service) { l.svc.Store(s) }

// TenantActivated implements server.TenantHooks.
func (l *LateHooks) TenantActivated(t *server.Tenant, meta map[string][]byte) {
	if s := l.svc.Load(); s != nil {
		serviceHooks{s}.TenantActivated(t, meta)
	}
}

// TenantMeta implements server.TenantHooks.
func (l *LateHooks) TenantMeta(t *server.Tenant) map[string][]byte {
	if s := l.svc.Load(); s != nil {
		return serviceHooks{s}.TenantMeta(t)
	}
	return nil
}

// RolloutSnapshot returns rollout counters.
func (s *Service) RolloutSnapshot() RolloutStats {
	return RolloutStats{
		Swaps:               s.rollouts.swaps.Load(),
		TenantsReembedded:   s.rollouts.tenantsReembedded.Load(),
		EntriesReembedded:   s.rollouts.entriesReembedded.Load(),
		ActivationsMigrated: s.rollouts.activationsMigrated.Load(),
		ReembedErrors:       s.rollouts.reembedErrors.Load(),
	}
}
