package flserve

import (
	"encoding/json"
	"net/http"

	"repro/internal/embed"
	"repro/internal/server"
)

// Status is the body of GET /v1/fl/status.
type Status struct {
	// Round is the next round number (i.e. rounds completed so far when
	// counting from 0).
	Round int `json:"round"`
	// Tau is the current global threshold.
	Tau float64 `json:"tau"`
	// Current is the latest committed model version (nil before the
	// first round).
	Current *ModelRecord `json:"current_model,omitempty"`
	// Versions lists recent versions, newest first.
	Versions []ModelRecord `json:"versions,omitempty"`
	// History lists recent round reports, oldest first.
	History []RoundReport `json:"history,omitempty"`
	// Eligible is how many tenants currently qualify for sampling.
	Eligible  int            `json:"eligible_tenants"`
	Collector CollectorStats `json:"collector"`
	Rollouts  RolloutStats   `json:"rollouts"`
}

// Register mounts the coordinator's endpoints on the serving process:
//
//	POST /v1/fl/round   run one round now; returns the RoundReport
//	GET  /v1/fl/status  rounds, versions, collector + rollout counters
//	GET  /v1/model      latest (or ?version=) model metadata;
//	                    ?weights=1 streams the encoder gob (embed.Load
//	                    reads it back)
func (s *Service) Register(srv *server.Server) {
	srv.Handle("POST /v1/fl/round", http.HandlerFunc(s.handleRound))
	srv.Handle("GET /v1/fl/status", http.HandlerFunc(s.handleStatus))
	srv.Handle("GET /v1/model", http.HandlerFunc(s.handleModel))
}

func (s *Service) handleRound(w http.ResponseWriter, _ *http.Request) {
	rep, err := s.RunRound()
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusConflict)
	}
	json.NewEncoder(w).Encode(rep)
}

func (s *Service) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.stateMu.Lock()
	st := Status{
		Round:   s.round,
		History: append([]RoundReport(nil), s.history...),
	}
	s.stateMu.Unlock()
	st.Tau = s.Tau()
	if rec, ok := s.models.Latest(); ok {
		st.Current = &rec
	}
	st.Versions = s.models.History(16)
	st.Eligible = len(s.cfg.Collector.Eligible(s.cfg.MinPairs))
	st.Collector = s.cfg.Collector.Stats()
	st.Rollouts = s.RolloutSnapshot()
	writeJSON(w, st)
}

func (s *Service) handleModel(w http.ResponseWriter, r *http.Request) {
	version := r.URL.Query().Get("version")
	if version == "" {
		rec, ok := s.models.Latest()
		if !ok {
			http.Error(w, "no model committed yet", http.StatusNotFound)
			return
		}
		version = rec.Version
	}
	rec, ok := s.models.Lookup(version)
	if !ok {
		http.Error(w, "unknown model version", http.StatusNotFound)
		return
	}
	if want := r.URL.Query().Get("weights"); want != "1" && want != "true" {
		writeJSON(w, rec)
		return
	}
	enc, err := s.models.Model(version)
	if err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	// Serve the raw trainable model (clients wanting the compressed
	// space apply the basis from the metadata themselves; embed.Load
	// round-trips this stream).
	m, ok := enc.(*embed.Model)
	if !ok {
		if pr, isProj := enc.(*embed.Projected); isProj {
			m, _ = pr.Base().(*embed.Model)
		}
	}
	if m == nil {
		http.Error(w, "version has no servable raw model", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := m.Save(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
