package flserve

import (
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestRegisterMetrics drives one online round and checks the FL gauges
// and counters land in a parseable /metrics exposition.
func TestRegisterMetrics(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	reg := obs.NewRegistry()
	h.svc.RegisterMetrics(reg)

	h.seedTraffic(3)
	if _, err := h.svc.RunRound(); err != nil {
		t.Fatalf("round: %v", err)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	exp, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("fl metrics exposition invalid: %v", err)
	}
	if v, ok := exp.Value("meancache_fl_round", nil); !ok || v != 1 {
		t.Errorf("meancache_fl_round = %v (present %v), want 1", v, ok)
	}
	if v, ok := exp.Value("meancache_fl_tau", nil); !ok || v <= 0 || v > 1 {
		t.Errorf("meancache_fl_tau = %v (present %v), want in (0, 1]", v, ok)
	}
	if v, ok := exp.Value("meancache_fl_rollout_swaps_total", nil); !ok || v != 1 {
		t.Errorf("meancache_fl_rollout_swaps_total = %v (present %v), want 1", v, ok)
	}
	if v, ok := exp.Value("meancache_fl_collector_positives_total", nil); !ok || v < 1 {
		t.Errorf("meancache_fl_collector_positives_total = %v (present %v), want >= 1", v, ok)
	}
	if v, ok := exp.Value("meancache_fl_collector_tenants", nil); !ok || v != 3 {
		t.Errorf("meancache_fl_collector_tenants = %v (present %v), want 3", v, ok)
	}
}
