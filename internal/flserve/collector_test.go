package flserve

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/server"
	"repro/internal/store"
)

func TestCollectorLabelsFromServingSignals(t *testing.T) {
	c := NewCollector(CollectorConfig{MaxPairs: 16, NegativeRate: 1, Seed: 1})

	// Hit → tentative positive.
	c.ObserveQuery("u", "how to sort a list", false, "", 0)
	c.ObserveQuery("u", "sort a list in go", true, "how to sort a list", 0.9)
	pairs := c.Shard("u")
	if len(pairs) != 1 || !pairs[0].Dup {
		t.Fatalf("hit pair = %+v", pairs)
	}

	// False-hit feedback with texts retracts that exact positive.
	c.ObserveFeedback("u", server.Feedback{
		Kind: server.FeedbackFalseHit, Query: "sort a list in go", Other: "how to sort a list",
	})
	pairs = c.Shard("u")
	if len(pairs) != 1 || pairs[0].Dup {
		t.Fatalf("retraction failed: %+v", pairs)
	}

	// Missed-dup feedback → positive.
	c.ObserveFeedback("u", server.Feedback{
		Kind: server.FeedbackMissedDup, Query: "reverse a string", Other: "string reversal in go",
	})
	pairs = c.Shard("u")
	if len(pairs) != 2 || !pairs[1].Dup {
		t.Fatalf("missed_dup pair = %+v", pairs)
	}

	// Miss with NegativeRate=1 → weak negative against a recent query.
	c.ObserveQuery("u", "completely new topic", false, "", 0)
	pairs = c.Shard("u")
	last := pairs[len(pairs)-1]
	if last.Dup || last.A != "completely new topic" {
		t.Fatalf("miss negative = %+v", last)
	}

	st := c.Stats()
	if st.Tenants != 1 || st.Positives != 2 || st.Retracted != 1 || st.Negatives == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorBareFalseHitFlipsLatestPositive(t *testing.T) {
	c := NewCollector(CollectorConfig{MaxPairs: 16, Seed: 1})
	c.ObserveQuery("u", "q1", true, "cached-1", 0.9)
	c.ObserveQuery("u", "q2", true, "cached-2", 0.9)
	// Legacy feedback body: {"user":"u"} only.
	c.ObserveFeedback("u", server.Feedback{Kind: server.FeedbackFalseHit})
	pairs := c.Shard("u")
	if pairs[0].Dup != true || pairs[1].Dup != false {
		t.Fatalf("bare feedback flipped the wrong pair: %+v", pairs)
	}
}

func TestCollectorRingBound(t *testing.T) {
	c := NewCollector(CollectorConfig{MaxPairs: 8, Seed: 1})
	for i := 0; i < 50; i++ {
		c.ObserveQuery("u", fmt.Sprintf("q%d", i), true, fmt.Sprintf("m%d", i), 0.9)
	}
	pairs := c.Shard("u")
	if len(pairs) != 8 {
		t.Fatalf("ring grew to %d, want 8", len(pairs))
	}
	// Latest writes survive.
	found := false
	for _, p := range pairs {
		if p.A == "q49" {
			found = true
		}
	}
	if !found {
		t.Fatal("latest pair not in ring")
	}
}

func TestCollectorEligibleAndPersistence(t *testing.T) {
	c := NewCollector(CollectorConfig{MaxPairs: 16, Seed: 1})
	for i := 0; i < 5; i++ {
		c.ObserveQuery("big", fmt.Sprintf("q%d", i), true, fmt.Sprintf("m%d", i), 0.9)
	}
	c.ObserveQuery("small", "q", true, "m", 0.9)
	if got := c.Eligible(3); len(got) != 1 || got[0] != "big" {
		t.Fatalf("Eligible(3) = %v", got)
	}

	st, err := store.Open(filepath.Join(t.TempDir(), "shards.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := c.SaveTo(st); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollector(CollectorConfig{MaxPairs: 16, Seed: 1})
	if err := c2.LoadFrom(st); err != nil {
		t.Fatal(err)
	}
	if got := c2.Shard("big"); len(got) != 5 {
		t.Fatalf("restored shard has %d pairs, want 5", len(got))
	}
	if got := c2.Shard("small"); len(got) != 1 {
		t.Fatalf("restored small shard has %d pairs", len(got))
	}
}

func TestModelRegistryLineageAndPrune(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "models.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := NewModelRegistry(st, 2, tinyArch)
	if err != nil {
		t.Fatal(err)
	}
	n := tinyArch.OutDim*tinyArch.EmbDim + (tinyArch.Vocab+1)*tinyArch.EmbDim + tinyArch.OutDim
	mkWeights := func(seed float32) []float32 {
		w := make([]float32, n)
		for i := range w {
			w[i] = seed
		}
		return w
	}
	var versions []string
	for i := 0; i < 3; i++ {
		rec, err := r.Commit(ModelRecord{Round: i, Arch: tinyArch.Name, Dim: tinyArch.OutDim, Tau: 0.5 + float64(i)/100},
			mkWeights(float32(i+1)), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, rec.Version)
	}
	// Lineage: each version's parent is its predecessor.
	for i := 1; i < 3; i++ {
		rec, ok := r.Lookup(versions[i])
		if !ok || rec.Parent != versions[i-1] {
			t.Fatalf("version %d parent = %q, want %q", i, rec.Parent, versions[i-1])
		}
	}
	// Retention: only 2 payloads survive; the oldest is pruned.
	if _, err := r.Model(versions[0]); err == nil {
		t.Fatal("pruned payload still materialises")
	}
	if _, err := r.Model(versions[2]); err != nil {
		t.Fatalf("latest payload: %v", err)
	}
	// Content addressing: identical content yields the identical version.
	rec, err := r.Commit(ModelRecord{Round: 9, Arch: tinyArch.Name, Tau: 0.5 + 2.0/100}, mkWeights(3), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != versions[2] {
		t.Fatalf("re-commit produced %s, want %s", rec.Version, versions[2])
	}
}
