package flserve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/resilience"
)

// The production gate is a resilience.Weighted; the structural interface
// must keep matching it.
var _ Gate = (*resilience.Weighted)(nil)

// roundGate records maintenance-gate traffic around RunRound.
type roundGate struct {
	mu       sync.Mutex
	held     int64
	maxHeld  int64
	acquires int
	releases int
}

func (g *roundGate) Acquire(ctx context.Context, n int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.acquires++
	g.held += n
	if g.held > g.maxHeld {
		g.maxHeld = g.held
	}
	return nil
}

func (g *roundGate) Release(n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releases++
	g.held -= n
}

// TestRoundHoldsMaintenanceGate: a round's training phase takes exactly
// one gate unit and returns it before the report lands — on success and
// on the no-data failure path alike.
func TestRoundHoldsMaintenanceGate(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	g := &roundGate{}
	h.svc.cfg.Gate = g

	// No eligible tenants yet: the round fails before training, so the
	// gate is never touched.
	if _, err := h.svc.RunRound(); err == nil {
		t.Fatal("round without data should fail")
	}
	g.mu.Lock()
	if g.acquires != 0 {
		t.Fatalf("failed-before-training round acquired the gate %d times", g.acquires)
	}
	g.mu.Unlock()

	h.seedTraffic(3)
	if _, err := h.svc.RunRound(); err != nil {
		t.Fatalf("round: %v", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.acquires != 1 || g.releases != 1 {
		t.Fatalf("acquires=%d releases=%d, want 1/1", g.acquires, g.releases)
	}
	if g.held != 0 || g.maxHeld != 1 {
		t.Fatalf("held=%d maxHeld=%d, want 0/1", g.held, g.maxHeld)
	}
}
