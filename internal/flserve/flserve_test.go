package flserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

// tinyArch keeps online-round tests fast; the weight layout is the real
// trainable pipeline, just narrow.
var tinyArch = embed.Arch{
	Name:         "tiny-sim",
	Mode:         tokenizer.WordsAndBigrams,
	Vocab:        1024,
	EmbDim:       32,
	OutDim:       64,
	Trainable:    true,
	AnchorWeight: 0.4,
}

type stubLLM struct{}

func (stubLLM) Query(q string) (string, time.Duration) { return "ans: " + q, 0 }

func quickCfg() train.Config {
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	cfg.BatchSize = 16
	return cfg
}

// harness wires a full serving process with the online FL loop enabled.
type harness struct {
	t       *testing.T
	swap    *embed.Swappable
	reg     *server.Registry
	coll    *Collector
	svc     *Service
	httpSrv *httptest.Server
}

func newHarness(t *testing.T, persistDir string, maxTenants int, st *store.Store) *harness {
	return newHarnessSharded(t, persistDir, maxTenants, 4, st)
}

func newHarnessSharded(t *testing.T, persistDir string, maxTenants, shards int, st *store.Store) *harness {
	t.Helper()
	swap := embed.NewSwappable(embed.NewModel(tinyArch, 1))
	coll := NewCollector(CollectorConfig{MaxPairs: 64, Seed: 1})
	hooks := &LateHooks{}
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards:     shards,
		MaxTenants: maxTenants,
		PersistDir: persistDir,
		Factory: func(string) *core.Client {
			return core.New(core.Options{
				Encoder:      swap,
				LLM:          stubLLM{},
				Tau:          0.83,
				TopK:         4,
				Capacity:     256,
				FeedbackStep: 0.01,
			})
		},
		Hooks: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Registry:  reg,
		Collector: coll,
		Encoder:   swap,
		Arch:      tinyArch,
		Store:     st,
		Train:     quickCfg(),
		Cohort:    2,
		MinPairs:  4,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hooks.Bind(svc)
	srv, err := server.New(server.Config{Registry: reg, Observer: coll})
	if err != nil {
		t.Fatal(err)
	}
	svc.Register(srv)
	h := &harness{t: t, swap: swap, reg: reg, coll: coll, svc: svc, httpSrv: httptest.NewServer(srv.Handler())}
	t.Cleanup(func() { h.httpSrv.Close(); svc.Close() })
	return h
}

func (h *harness) post(path string, body, out any) *http.Response {
	h.t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(h.httpSrv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		h.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp
}

func (h *harness) get(path string, out any) *http.Response {
	h.t.Helper()
	resp, err := http.Get(h.httpSrv.URL + path)
	if err != nil {
		h.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp
}

func (h *harness) query(user, text string) server.QueryResponse {
	var qr server.QueryResponse
	h.post("/v1/query", server.QueryRequest{User: user, Query: text}, &qr)
	return qr
}

// seedTraffic drives enough labelled traffic that users become eligible:
// warm queries, exact-duplicate re-asks (hits → positives) and
// missed-duplicate feedback for paraphrases the cold model cannot match.
func (h *harness) seedTraffic(users int) {
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		for i := 0; i < 6; i++ {
			q := fmt.Sprintf("how do i configure widget %d for tenant %d", i, u)
			h.query(user, q)
			// Exact re-ask: guaranteed hit (cosine 1) → tentative positive.
			h.query(user, q)
			// Paraphrase the cold encoder misses → user files missed_dup.
			h.post("/v1/feedback", server.FeedbackRequest{
				User:        user,
				Kind:        server.FeedbackMissedDup,
				Query:       fmt.Sprintf("configure the widget %d on tenant %d", i, u),
				DuplicateOf: q,
			}, nil)
		}
	}
}

func TestOnlineRoundEndToEnd(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	h.seedTraffic(3)

	if got := h.coll.Stats(); got.Positives == 0 {
		t.Fatalf("collector gathered no positives: %+v", got)
	}

	var rep RoundReport
	if resp := h.post("/v1/fl/round", nil, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("round status %d (%+v)", resp.StatusCode, rep)
	}
	if rep.Version == "" || rep.Trained == 0 {
		t.Fatalf("round report incomplete: %+v", rep)
	}
	if rep.Tau <= 0 || rep.Tau > 1 {
		t.Fatalf("aggregated tau %v out of range", rep.Tau)
	}
	if rep.Reembedded == 0 {
		t.Fatal("rollout re-embedded no entries despite warm caches")
	}

	// The serving encoder was hot-swapped: it is no longer the seed model.
	if _, ok := h.swap.Current().(*embed.Model); !ok {
		t.Fatal("serving encoder is not a model after rollout")
	}

	// Status reflects the committed version.
	var st Status
	h.get("/v1/fl/status", &st)
	if st.Current == nil || st.Current.Version != rep.Version {
		t.Fatalf("status current version = %+v, want %s", st.Current, rep.Version)
	}
	if st.Round != 1 || len(st.History) != 1 {
		t.Fatalf("status round=%d history=%d, want 1/1", st.Round, len(st.History))
	}

	// Model metadata and weights are served.
	var rec ModelRecord
	h.get("/v1/model", &rec)
	if rec.Version != rep.Version || rec.Arch != tinyArch.Name {
		t.Fatalf("model metadata %+v", rec)
	}
	resp, err := http.Get(h.httpSrv.URL + "/v1/model?weights=1")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("weights fetch: status %d, %d bytes", resp.StatusCode, len(blob))
	}

	// A second round advances the lineage.
	h.seedTraffic(3)
	var rep2 RoundReport
	h.post("/v1/fl/round", nil, &rep2)
	if rep2.Round != 1 {
		t.Fatalf("second round numbered %d", rep2.Round)
	}
	if v, ok := h.svc.Models().Lookup(rep2.Version); !ok || v.Parent != rep.Version {
		t.Fatalf("second version parent = %q, want %q", v.Parent, rep.Version)
	}

	// Queries still work after two rollouts; an exact re-ask still hits.
	qr := h.query("user-0", "a brand new question after rollout")
	if qr.Hit {
		t.Fatal("fresh question hit")
	}
	if qr2 := h.query("user-0", "a brand new question after rollout"); !qr2.Hit {
		t.Fatal("exact duplicate missed after rollout")
	}
}

func TestRoundWithoutDataFailsCleanly(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	var rep RoundReport
	if resp := h.post("/v1/fl/round", nil, &rep); resp.StatusCode != http.StatusConflict {
		t.Fatalf("dataless round returned %d, want 409", resp.StatusCode)
	}
	if rep.Error == "" {
		t.Fatal("dataless round reported no error")
	}
	var st Status
	h.get("/v1/fl/status", &st)
	if len(st.History) != 1 || st.History[0].Error == "" {
		t.Fatalf("failed round missing from history: %+v", st.History)
	}
}

func TestRevivedTenantMigratesAcrossModelBoundary(t *testing.T) {
	dir := t.TempDir()
	// One shard with MaxTenants 1 forces eviction-to-disk as soon as the
	// next tenant activates.
	h := newHarnessSharded(t, dir, 1, 1, nil)

	// user-a builds a small cache but stays below MinPairs, so the round
	// scheduler never samples (and thereby revives) it.
	h.query("user-a", "what is the capital of atlantis")
	h.query("user-a", "how tall is the eiffel tower")

	// user-t generates the training data — activating it evicts user-a to
	// disk (persisted with no model-version stamp: nothing committed yet).
	h.seedTraffic(1) // drives user-0; call it the trainer
	if h.reg.Resident() != 1 {
		t.Fatalf("resident = %d, want 1 (user-a evicted)", h.reg.Resident())
	}

	// A round commits a new model and rolls it out while user-a is on disk.
	if _, err := h.svc.RunRound(); err != nil {
		t.Fatalf("round: %v", err)
	}
	before := h.svc.RolloutSnapshot()

	// Reviving user-a must migrate its persisted cache to the new space:
	// an exact duplicate still hits under the swapped encoder.
	if qr := h.query("user-a", "what is the capital of atlantis"); !qr.Hit {
		t.Fatal("revived tenant missed an exact duplicate after rollout")
	}
	after := h.svc.RolloutSnapshot()
	if after.ActivationsMigrated != before.ActivationsMigrated+1 {
		t.Fatalf("activation migration not counted: %+v -> %+v", before, after)
	}
}

func TestServicePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	stPath := filepath.Join(dir, "fl.store")
	st, err := store.Open(stPath)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, "", 0, st)
	h.seedTraffic(2)
	rep, err := h.svc.RunRound()
	if err != nil {
		t.Fatalf("round: %v", err)
	}
	if err := h.svc.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A fresh process resumes: same version, same τ, shards intact.
	st2, err := store.Open(stPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2 := newHarness(t, "", 0, st2)
	rec, ok := h2.svc.Models().Latest()
	if !ok || rec.Version != rep.Version {
		t.Fatalf("restart lost the model version: %+v", rec)
	}
	if got := h2.svc.Tau(); got != rep.Tau {
		t.Fatalf("restart tau = %v, want %v", got, rep.Tau)
	}
	if got := h2.coll.Stats(); got.Pairs == 0 {
		t.Fatal("restart lost the collected shards")
	}
	// And can immediately run the next round from the restored shards.
	rep2, err := h2.svc.RunRound()
	if err != nil {
		t.Fatalf("post-restart round: %v", err)
	}
	if rep2.Round == 0 {
		t.Fatal("round counter reset across restart")
	}
}

func TestConcurrentTrafficDuringRounds(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	h.seedTraffic(4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				user := fmt.Sprintf("user-%d", w)
				q := fmt.Sprintf("live question %d from worker %d", i%5, w)
				qr := h.query(user, q)
				if i%3 == 0 && qr.Hit {
					h.post("/v1/feedback", server.FeedbackRequest{
						User: user, Query: q, DuplicateOf: qr.Matched,
					}, nil)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		if _, err := h.svc.RunRound(); err != nil {
			t.Fatalf("round %d under traffic: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()

	var st Status
	h.get("/v1/fl/status", &st)
	if st.Round != 2 || st.Rollouts.Swaps != 2 {
		t.Fatalf("status after concurrent rounds: round=%d swaps=%d", st.Round, st.Rollouts.Swaps)
	}
}

func TestSecureRoundMatchesConfig(t *testing.T) {
	h := newHarness(t, "", 0, nil)
	h.svc.cfg.Secure = true
	h.seedTraffic(2)
	rep, err := h.svc.RunRound()
	if err != nil {
		t.Fatalf("secure round: %v", err)
	}
	if !rep.Secure || rep.Version == "" {
		t.Fatalf("secure round report: %+v", rep)
	}
}
