package flserve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/embed"
	"repro/internal/store"
)

// ModelRecord describes one committed global model version: the encoder
// weights, the aggregated global threshold, and (optionally) a PCA
// compression basis, all under one content-derived version ID. Metadata
// is what /v1/model and /v1/fl/status expose; the weight vector itself is
// fetched separately (it is megabytes).
type ModelRecord struct {
	// Version is the content address: hex(sha256(arch|tau|weights|basis))
	// truncated to 16 chars. Identical models from identical rounds get
	// identical versions, so a replayed commit is a no-op.
	Version string `json:"version"`
	// Parent is the version this one was trained from ("" for the root).
	Parent string `json:"parent,omitempty"`
	// Round is the coordinator round that produced it (-1 for imported
	// models).
	Round int `json:"round"`
	// Arch names the encoder architecture.
	Arch string `json:"arch"`
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Tau is the aggregated global threshold shipped with the model.
	Tau float64 `json:"tau"`
	// Cohort is how many clients contributed.
	Cohort int `json:"cohort"`
	// Samples is the total training-sample count across the cohort.
	Samples int `json:"samples"`
	// BasisRows/BasisCols describe the optional PCA basis (0 when absent).
	BasisRows int `json:"basis_rows,omitempty"`
	BasisCols int `json:"basis_cols,omitempty"`
}

// modelWire is the persisted form of a version (record + payload).
type modelWire struct {
	Record  ModelRecord
	Weights []float32
	Basis   []float32 // BasisRows×BasisCols, row-major; nil when absent
	Mean    []float32 // PCA centering mean; nil when absent
}

// ModelRegistry is the versioned, content-addressed store of global
// models the online FL loop produces. It keeps the last maxVersions
// versions (metadata in memory, the latest payload hot, older payloads in
// the optional store); versions beyond the retention bound are pruned
// entirely — Lookup, History and Model all stop resolving them, with or
// without a store.
type ModelRegistry struct {
	maxVersions int
	arch        embed.Arch // shared by every committed version

	mu      sync.RWMutex
	st      *store.Store // optional
	order   []string     // commit order, oldest first
	records map[string]ModelRecord
	latest  string
	// hot payload of the latest version
	weights []float32
	basis   []float32
	mean    []float32
}

const (
	modelKeyPrefix = "fsmodel/"
	latestKey      = "fsmodel-latest"
)

// NewModelRegistry builds a registry for versions of the given
// architecture. st is optional; when set, committed versions are
// persisted and the latest persisted version is reloaded, so a restarted
// serving process resumes from its last global model. maxVersions bounds
// how many full payloads are retained (default 5).
func NewModelRegistry(st *store.Store, maxVersions int, arch embed.Arch) (*ModelRegistry, error) {
	if maxVersions <= 0 {
		maxVersions = 5
	}
	r := &ModelRegistry{maxVersions: maxVersions, arch: arch, st: st, records: make(map[string]ModelRecord)}
	if st == nil {
		return r, nil
	}
	// Replay persisted versions in round order.
	type stored struct {
		key  string
		wire modelWire
	}
	var all []stored
	for _, key := range st.Keys() {
		if len(key) <= len(modelKeyPrefix) || key[:len(modelKeyPrefix)] != modelKeyPrefix {
			continue
		}
		raw, err := st.Get(key)
		if err != nil {
			return nil, err
		}
		var w modelWire
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err != nil {
			return nil, fmt.Errorf("flserve: decoding persisted model %s: %w", key, err)
		}
		all = append(all, stored{key, w})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].wire.Record.Round < all[j].wire.Record.Round })
	for _, s := range all {
		r.records[s.wire.Record.Version] = s.wire.Record
		r.order = append(r.order, s.wire.Record.Version)
	}
	if raw, err := st.Get(latestKey); err == nil {
		v := string(raw)
		if raw, err := st.Get(modelKeyPrefix + v); err == nil {
			var w modelWire
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err == nil {
				r.latest = v
				r.weights, r.basis, r.mean = w.Weights, w.Basis, w.Mean
			}
		}
	}
	return r, nil
}

// versionID content-addresses a model.
func versionID(arch string, tau float64, weights, basis []float32) string {
	h := sha256.New()
	h.Write([]byte(arch))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tau))
	h.Write(buf[:])
	for _, vec := range [][]float32{weights, basis} {
		for _, x := range vec {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(x))
			h.Write(buf[:4])
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Commit registers a freshly aggregated model and returns its record.
// basis/mean (the PCA compression layer) may be nil. The latest pointer
// advances; payloads older than maxVersions are pruned from the store.
func (r *ModelRegistry) Commit(rec ModelRecord, weights, basis, mean []float32) (ModelRecord, error) {
	rec.Version = versionID(rec.Arch, rec.Tau, weights, basis)
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.Parent = r.latest
	if prev, ok := r.records[rec.Version]; ok {
		// Identical content re-committed: keep the original lineage.
		rec = prev
	} else {
		r.records[rec.Version] = rec
		r.order = append(r.order, rec.Version)
	}
	r.latest = rec.Version
	r.weights = append([]float32(nil), weights...)
	r.basis = append([]float32(nil), basis...)
	r.mean = append([]float32(nil), mean...)
	if r.st != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(modelWire{Record: rec, Weights: weights, Basis: basis, Mean: mean}); err != nil {
			return rec, err
		}
		if err := r.st.Put(modelKeyPrefix+rec.Version, buf.Bytes()); err != nil {
			return rec, err
		}
		if err := r.st.Put(latestKey, []byte(rec.Version)); err != nil {
			return rec, err
		}
	}
	// Prune versions beyond the retention bound — consistently in both
	// in-memory and persisted modes, so the registry stays bounded.
	for len(r.order) > r.maxVersions && r.order[0] != r.latest {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.records, old)
		if r.st != nil {
			if err := r.st.Delete(modelKeyPrefix + old); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}

// Latest returns the current version's record (ok=false before the first
// commit).
func (r *ModelRegistry) Latest() (ModelRecord, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.latest == "" {
		return ModelRecord{}, false
	}
	return r.records[r.latest], true
}

// LatestWeights returns a copy of the current version's weight vector
// (nil before the first commit).
func (r *ModelRegistry) LatestWeights() []float32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.weights) == 0 {
		return nil
	}
	return append([]float32(nil), r.weights...)
}

// Lookup returns the record for a specific version.
func (r *ModelRegistry) Lookup(version string) (ModelRecord, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.records[version]
	return rec, ok
}

// History returns up to n most recent records, newest first.
func (r *ModelRegistry) History(n int) []ModelRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || n > len(r.order) {
		n = len(r.order)
	}
	out := make([]ModelRecord, 0, n)
	for i := len(r.order) - 1; i >= len(r.order)-n; i-- {
		out = append(out, r.records[r.order[i]])
	}
	return out
}

// Model materialises a committed version as a servable encoder: the
// trainable model rebuilt from the stored weights, wrapped with the PCA
// projection when the version carries a basis. Only the latest version's
// payload is guaranteed hot; older versions are read from the store.
func (r *ModelRegistry) Model(version string) (embed.Encoder, error) {
	r.mu.RLock()
	rec, ok := r.records[version]
	var weights, basis, mean []float32
	if ok && version == r.latest {
		weights = append([]float32(nil), r.weights...)
		basis = append([]float32(nil), r.basis...)
		mean = append([]float32(nil), r.mean...)
	}
	st := r.st
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("flserve: unknown model version %q", version)
	}
	if weights == nil {
		if st == nil {
			return nil, fmt.Errorf("flserve: version %q payload no longer resident", version)
		}
		raw, err := st.Get(modelKeyPrefix + version)
		if err != nil {
			return nil, fmt.Errorf("flserve: version %q payload pruned: %w", version, err)
		}
		var w modelWire
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err != nil {
			return nil, err
		}
		weights, basis, mean = w.Weights, w.Basis, w.Mean
	}
	m := embed.NewModel(r.arch, 0)
	if len(weights) != m.WeightCount() {
		return nil, fmt.Errorf("flserve: version %q holds %d weights, arch wants %d",
			version, len(weights), m.WeightCount())
	}
	m.SetWeights(weights)
	if rec.BasisRows > 0 {
		p := vecmathMatrix(rec.BasisRows, rec.BasisCols, basis)
		return embed.WithCenteredProjection(m, p, mean), nil
	}
	return m, nil
}
