package flserve

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/store"
)

// Collector turns live serving signals into per-tenant private training
// shards — the example-collection half of the online FL loop. It
// implements server.Observer; the serving layer feeds it every query and
// feedback report, and the round scheduler samples cohorts from the
// tenants whose shards have grown large enough to train on.
//
// Label sources, in decreasing trust:
//
//   - missed_dup feedback → positive pair (query, earlier duplicate):
//     the user explicitly pointed at the earlier question.
//   - false_hit feedback → negative pair (query, wrongly served cached
//     query); it also retracts the tentative positive the hit recorded.
//   - cache hit → tentative positive pair (query, matched cached query),
//     trusted unless false-hit feedback retracts it.
//   - cache miss → weakly supervised negative pair (query, a recent
//     query of the same tenant), sampled at NegativeRate: the cache
//     judged them non-duplicates and the user did not object. Mildly
//     noisy, which contrastive training tolerates.
//
// Raw texts never leave the process: shards stay keyed to the tenant and
// only model weights and thresholds exit through the FL round.
type Collector struct {
	cfg CollectorConfig

	mu      sync.RWMutex
	tenants map[string]*tenantShard

	// stats
	positives atomic.Int64
	negatives atomic.Int64
	retracted atomic.Int64
}

// CollectorConfig bounds the collector.
type CollectorConfig struct {
	// MaxPairs caps each tenant's shard; the oldest pair is overwritten
	// when full (ring). Defaults to 256.
	MaxPairs int
	// RecentQueries sizes the per-tenant ring of recent query texts used
	// to mine miss-path negatives. Defaults to 32.
	RecentQueries int
	// NegativeRate is the probability a cache miss emits a weak negative
	// pair. Defaults to 0.25; negative sampling keeps shards from being
	// swamped by the miss-heavy cold-start phase.
	NegativeRate float64
	// Seed drives per-tenant negative sampling.
	Seed int64
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.MaxPairs <= 0 {
		c.MaxPairs = 256
	}
	if c.RecentQueries <= 0 {
		c.RecentQueries = 32
	}
	if c.NegativeRate <= 0 {
		c.NegativeRate = 0.25
	}
	return c
}

// tenantShard is one tenant's bounded private example buffer.
type tenantShard struct {
	mu     sync.Mutex
	pairs  []dataset.Pair // ring, capacity cfg.MaxPairs
	next   int            // ring cursor once full
	recent []string       // ring of recent query texts
	rnext  int
	rng    *rand.Rand
	dirty  bool  // has changed since last successful persistence
	ver    int64 // bumped on every mutation, fences SaveTo's dirty clear
}

// chronological returns the pairs oldest-first (the ring unrotated).
func (ts *tenantShard) chronological() []dataset.Pair {
	out := make([]dataset.Pair, 0, len(ts.pairs))
	out = append(out, ts.pairs[ts.next:]...)
	out = append(out, ts.pairs[:ts.next]...)
	return out
}

// NewCollector builds a collector.
func NewCollector(cfg CollectorConfig) *Collector {
	return &Collector{cfg: cfg.withDefaults(), tenants: make(map[string]*tenantShard)}
}

var _ server.Observer = (*Collector)(nil)

func (c *Collector) shard(user string) *tenantShard {
	c.mu.RLock()
	ts, ok := c.tenants[user]
	c.mu.RUnlock()
	if ok {
		return ts
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts, ok = c.tenants[user]; ok {
		return ts
	}
	h := fnv.New64a()
	h.Write([]byte(user))
	ts = &tenantShard{rng: rand.New(rand.NewSource(c.cfg.Seed + int64(h.Sum64())))}
	c.tenants[user] = ts
	return ts
}

// append adds a pair to the ring, overwriting the oldest when full.
func (ts *tenantShard) append(p dataset.Pair, cap int) {
	if len(ts.pairs) < cap {
		ts.pairs = append(ts.pairs, p)
	} else {
		ts.pairs[ts.next] = p
		ts.next = (ts.next + 1) % cap
	}
	ts.dirty = true
	ts.ver++
}

// ObserveQuery implements server.Observer.
func (c *Collector) ObserveQuery(user, query string, hit bool, matchedQuery string, _ float32) {
	ts := c.shard(user)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if hit {
		if matchedQuery != "" && matchedQuery != query {
			ts.append(dataset.Pair{A: query, B: matchedQuery, Dup: true}, c.cfg.MaxPairs)
			c.positives.Add(1)
		}
	} else if len(ts.recent) > 0 && ts.rng.Float64() < c.cfg.NegativeRate {
		other := ts.recent[ts.rng.Intn(len(ts.recent))]
		if other != query {
			ts.append(dataset.Pair{A: query, B: other, Dup: false}, c.cfg.MaxPairs)
			c.negatives.Add(1)
		}
	}
	// Track recency for negative mining (hits too: a future unrelated
	// query is a negative against any past query).
	if len(ts.recent) < c.cfg.RecentQueries {
		ts.recent = append(ts.recent, query)
	} else {
		ts.recent[ts.rnext] = query
		ts.rnext = (ts.rnext + 1) % c.cfg.RecentQueries
	}
}

// ObserveFeedback implements server.Observer.
func (c *Collector) ObserveFeedback(user string, fb server.Feedback) {
	ts := c.shard(user)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	switch fb.Kind {
	case server.FeedbackMissedDup:
		if fb.Query != "" && fb.Other != "" && fb.Query != fb.Other {
			ts.append(dataset.Pair{A: fb.Query, B: fb.Other, Dup: true}, c.cfg.MaxPairs)
			c.positives.Add(1)
		}
	case server.FeedbackFalseHit:
		// Retract the tentative positive the wrong hit recorded, turning
		// it into a negative. With texts attached we find it exactly;
		// a bare report flips the most recent positive (best effort).
		flip := func(i int) {
			ts.pairs[i].Dup = false
			ts.dirty = true
			ts.ver++
			c.retracted.Add(1)
		}
		for k := 0; k < len(ts.pairs); k++ {
			i := (ts.next - 1 - k + 2*len(ts.pairs)) % len(ts.pairs)
			p := ts.pairs[i]
			if fb.Query != "" {
				if p.A == fb.Query && (fb.Other == "" || p.B == fb.Other) {
					if p.Dup {
						flip(i)
					}
					return
				}
			} else if p.Dup {
				flip(i)
				return
			}
		}
		// No matching pair in the ring (aged out): record the negative
		// directly when the texts are known.
		if fb.Query != "" && fb.Other != "" {
			ts.append(dataset.Pair{A: fb.Query, B: fb.Other, Dup: false}, c.cfg.MaxPairs)
			c.negatives.Add(1)
		}
	}
}

// Shard returns a copy of user's current pairs (nil if unknown).
func (c *Collector) Shard(user string) []dataset.Pair {
	c.mu.RLock()
	ts, ok := c.tenants[user]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]dataset.Pair, len(ts.pairs))
	copy(out, ts.pairs)
	return out
}

// Eligible lists tenants whose shards hold at least minPairs examples —
// the sampling frame for cohort selection. Order is unspecified.
func (c *Collector) Eligible(minPairs int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for user, ts := range c.tenants {
		ts.mu.Lock()
		n := len(ts.pairs)
		ts.mu.Unlock()
		if n >= minPairs {
			out = append(out, user)
		}
	}
	return out
}

// CollectorStats snapshots collection activity.
type CollectorStats struct {
	Tenants   int   `json:"tenants"`
	Pairs     int   `json:"pairs"`
	Positives int64 `json:"positives"`
	Negatives int64 `json:"negatives"`
	Retracted int64 `json:"retracted"`
}

// Stats snapshots the collector.
func (c *Collector) Stats() CollectorStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := CollectorStats{
		Tenants:   len(c.tenants),
		Positives: c.positives.Load(),
		Negatives: c.negatives.Load(),
		Retracted: c.retracted.Load(),
	}
	for _, ts := range c.tenants {
		ts.mu.Lock()
		s.Pairs += len(ts.pairs)
		ts.mu.Unlock()
	}
	return s
}

// shardKey namespaces persisted shards within the coordinator's store.
func shardKey(user string) string { return "flshard/" + hex.EncodeToString([]byte(user)) }

// SaveTo persists every dirty shard into st (one gob record per tenant,
// pairs in chronological order), so collected examples survive a
// serving-process restart. Called by the coordinator after each round and
// on shutdown. The dirty flag clears only after a successful write — and
// only if the shard did not change while the write was in flight — so a
// failed or raced persistence retries next time.
func (c *Collector) SaveTo(st *store.Store) error {
	c.mu.RLock()
	users := make([]string, 0, len(c.tenants))
	for u := range c.tenants {
		users = append(users, u)
	}
	c.mu.RUnlock()
	for _, user := range users {
		ts := c.shard(user)
		ts.mu.Lock()
		if !ts.dirty {
			ts.mu.Unlock()
			continue
		}
		pairs := ts.chronological()
		ver := ts.ver
		ts.mu.Unlock()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
			return err
		}
		if err := st.Put(shardKey(user), buf.Bytes()); err != nil {
			return err
		}
		ts.mu.Lock()
		if ts.ver == ver {
			ts.dirty = false
		}
		ts.mu.Unlock()
	}
	return nil
}

// LoadFrom restores shards persisted by SaveTo. Existing in-memory shards
// for the same tenants are replaced.
func (c *Collector) LoadFrom(st *store.Store) error {
	for _, key := range st.Keys() {
		if len(key) <= len("flshard/") || key[:len("flshard/")] != "flshard/" {
			continue
		}
		userBytes, err := hex.DecodeString(key[len("flshard/"):])
		if err != nil {
			continue
		}
		raw, err := st.Get(key)
		if err != nil {
			return err
		}
		var pairs []dataset.Pair
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&pairs); err != nil {
			return err
		}
		ts := c.shard(string(userBytes))
		ts.mu.Lock()
		if len(pairs) > c.cfg.MaxPairs {
			pairs = pairs[len(pairs)-c.cfg.MaxPairs:]
		}
		ts.pairs = pairs
		ts.next = 0
		ts.dirty = false
		ts.mu.Unlock()
	}
	return nil
}
