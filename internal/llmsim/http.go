package llmsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// The HTTP layer exposes the simulated service the way a real LLM web
// service is consumed — POST a query, receive a JSON response — so the
// examples and integration tests exercise a genuine network path, and so
// cache hits measurably avoid network round trips.

// QueryRequest is the JSON request body for POST /v1/query.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResponse is the JSON response body.
type QueryResponse struct {
	Response string `json:"response"`
	// ModelMicros is the simulated inference time in microseconds.
	ModelMicros int64 `json:"model_micros"`
}

// Server wraps a Service in an HTTP endpoint.
type Server struct {
	svc  *Service
	http *http.Server
	ln   net.Listener
}

// Serve starts an HTTP server for svc on addr (e.g. "127.0.0.1:0").
// It returns once the listener is bound; use Addr for the chosen address.
func Serve(svc *Service, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llmsim: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, took, err := svc.QueryContext(r.Context(), req.Query)
		if err != nil {
			// Induced failures and abandoned inferences surface as 503 so
			// remote callers' breakers see the outage too.
			http.Error(w, "upstream unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(QueryResponse{
			Response:    resp,
			ModelMicros: took.Microseconds(),
		})
	})
	s := &Server{
		svc:  svc,
		http: &http.Server{Handler: mux},
		ln:   ln,
	}
	go s.http.Serve(ln)
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// Client queries a remote simulated LLM service over HTTP. It implements
// the same Query contract as Service, so MeanCache can front either.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Query sends q to the remote service. took includes the network round
// trip, which is the point: server-side caches still pay this cost on
// every query, user-side caches do not (§I, problem 2). Errors are folded
// into the response text for compatibility with the legacy LLM interface;
// serving paths use QueryContext, which reports them properly.
func (c *Client) Query(q string) (response string, took time.Duration) {
	resp, took, err := c.QueryContext(context.Background(), q)
	if err != nil {
		return fmt.Sprintf("error: %v", err), took
	}
	return resp, took
}

// QueryContext sends q to the remote service under ctx's deadline and
// surfaces transport and server failures as real errors, so the caller's
// circuit breaker and concurrency limiter see the upstream's true health.
func (c *Client) QueryContext(ctx context.Context, q string) (response string, took time.Duration, err error) {
	start := time.Now()
	body, err := json.Marshal(QueryRequest{Query: q})
	if err != nil {
		return "", time.Since(start), fmt.Errorf("llmsim: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return "", time.Since(start), fmt.Errorf("llmsim: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		// Unwrap to the context error when the deadline or the caller
		// killed the request: errors.Is(err, context.DeadlineExceeded)
		// must hold for the guard's timeout classification.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return "", time.Since(start), fmt.Errorf("llmsim: query: %w", ctxErr)
		}
		return "", time.Since(start), fmt.Errorf("llmsim: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", time.Since(start), fmt.Errorf("llmsim: upstream returned %s", resp.Status)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return "", time.Since(start), fmt.Errorf("llmsim: decoding response: %w", err)
	}
	// In virtual-time mode the server does not sleep; fold its simulated
	// inference time into the reported latency.
	return qr.Response, time.Since(start) + time.Duration(qr.ModelMicros)*time.Microsecond, nil
}
