package llmsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// The HTTP layer exposes the simulated service the way a real LLM web
// service is consumed — POST a query, receive a JSON response — so the
// examples and integration tests exercise a genuine network path, and so
// cache hits measurably avoid network round trips.

// QueryRequest is the JSON request body for POST /v1/query.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResponse is the JSON response body.
type QueryResponse struct {
	Response string `json:"response"`
	// ModelMicros is the simulated inference time in microseconds.
	ModelMicros int64 `json:"model_micros"`
}

// Server wraps a Service in an HTTP endpoint.
type Server struct {
	svc  *Service
	http *http.Server
	ln   net.Listener
}

// Serve starts an HTTP server for svc on addr (e.g. "127.0.0.1:0").
// It returns once the listener is bound; use Addr for the chosen address.
func Serve(svc *Service, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llmsim: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, took := svc.Query(req.Query)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(QueryResponse{
			Response:    resp,
			ModelMicros: took.Microseconds(),
		})
	})
	s := &Server{
		svc:  svc,
		http: &http.Server{Handler: mux},
		ln:   ln,
	}
	go s.http.Serve(ln)
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// Client queries a remote simulated LLM service over HTTP. It implements
// the same Query contract as Service, so MeanCache can front either.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Query sends q to the remote service. took includes the network round
// trip, which is the point: server-side caches still pay this cost on
// every query, user-side caches do not (§I, problem 2).
func (c *Client) Query(q string) (response string, took time.Duration) {
	start := time.Now()
	body, err := json.Marshal(QueryRequest{Query: q})
	if err != nil {
		return fmt.Sprintf("error: %v", err), time.Since(start)
	}
	resp, err := c.hc.Post(c.base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Sprintf("error: %v", err), time.Since(start)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return fmt.Sprintf("error: %v", err), time.Since(start)
	}
	// In virtual-time mode the server does not sleep; fold its simulated
	// inference time into the reported latency.
	return qr.Response, time.Since(start) + time.Duration(qr.ModelMicros)*time.Microsecond
}
