package llmsim

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDeterministicResponses(t *testing.T) {
	s := New(DefaultConfig())
	r1, d1 := s.Query("what is federated learning")
	r2, d2 := s.Query("what is federated learning")
	if r1 != r2 {
		t.Fatal("same query produced different responses")
	}
	if d1 != d2 {
		t.Fatalf("same query produced different durations: %v vs %v", d1, d2)
	}
}

func TestDistinctQueriesDistinctResponses(t *testing.T) {
	s := New(DefaultConfig())
	r1, _ := s.Query("query one about cats")
	r2, _ := s.Query("query two about dogs")
	if r1 == r2 {
		t.Fatal("distinct queries produced identical responses")
	}
}

func TestLatencyInPaperRange(t *testing.T) {
	s := New(DefaultConfig())
	for _, q := range []string{"a", "how do i plot a line", "explain quantum gravity simply"} {
		_, d := s.Query(q)
		if d < 200*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("simulated latency %v outside the paper's 0.2–1.5s band", d)
		}
	}
}

func TestVirtualTimeDoesNotSleep(t *testing.T) {
	s := New(DefaultConfig()) // Sleep: false
	start := time.Now()
	_, simulated := s.Query("some query")
	if wall := time.Since(start); wall > simulated/4 {
		t.Fatalf("virtual-time query took %v wall time (simulated %v)", wall, simulated)
	}
}

func TestSleepMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sleep = true
	cfg.BaseLatency = 20 * time.Millisecond
	cfg.PerToken = 0
	cfg.JitterFrac = 0
	s := New(cfg)
	start := time.Now()
	s.Query("block please")
	if wall := time.Since(start); wall < 20*time.Millisecond {
		t.Fatalf("sleep mode returned in %v, want >= 20ms", wall)
	}
}

func TestMaxTokensRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTokens = 10
	s := New(cfg)
	resp, _ := s.Query("anything at all")
	// Allow the "Regarding ...:" preamble plus at most MaxTokens words.
	if n := len(strings.Fields(resp)); n > 10+6 {
		t.Fatalf("response has %d words, want <= ~16", n)
	}
}

func TestQueriesCounter(t *testing.T) {
	s := New(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Query("count me")
		}()
	}
	wg.Wait()
	if s.Queries() != 10 {
		t.Fatalf("Queries = %d, want 10", s.Queries())
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	svc := New(DefaultConfig())
	srv, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr())
	direct, directDur := svc.Query("http round trip test")
	viaHTTP, httpDur := c.Query("http round trip test")
	if viaHTTP != direct {
		t.Fatalf("HTTP response %q differs from direct %q", viaHTTP, direct)
	}
	// Reported latency must include the simulated inference time (allow
	// the microsecond truncation of the wire format).
	if httpDur < directDur-time.Millisecond {
		t.Fatalf("HTTP latency %v below simulated inference %v", httpDur, directDur)
	}
	if svc.Queries() != 2 {
		t.Fatalf("Queries = %d, want 2", svc.Queries())
	}
}

func TestHTTPClientErrorPath(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listening
	resp, _ := c.Query("will fail")
	if !strings.HasPrefix(resp, "error:") {
		t.Fatalf("expected error response, got %q", resp)
	}
}

func BenchmarkQueryVirtual(b *testing.B) {
	s := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query("benchmark query text")
	}
}
