// Package llmsim simulates the LLM web service MeanCache fronts (a local
// Llama 2 service in the paper's testbed). The simulator reproduces the
// property the response-time experiment (Figure 5) measures — LLM inference
// takes hundreds of milliseconds to seconds, dominated by per-token
// generation, while a local cache hit takes milliseconds — without needing
// GPUs.
//
// The service can run with real sleeps (for the interactive examples) or in
// virtual-time mode (for experiments and tests), where the latency that
// *would* have been incurred is computed deterministically and returned
// without blocking.
package llmsim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tokenizer"
)

// Config describes the simulated service's latency model.
type Config struct {
	// BaseLatency covers prompt processing and network round trip.
	BaseLatency time.Duration
	// PerToken is the generation time per output token.
	PerToken time.Duration
	// JitterFrac adds ±JitterFrac relative uniform noise to each response
	// time, seeded deterministically per query.
	JitterFrac float64
	// MaxTokens caps response length, as the paper caps responses at 50
	// tokens to reflect practical sizes.
	MaxTokens int
	// Sleep selects real-time mode: Query blocks for the simulated
	// duration. When false, Query returns immediately and reports the
	// duration it would have taken.
	Sleep bool
	// Seed drives response generation and jitter.
	Seed int64
}

// DefaultConfig mirrors the paper's observed no-cache response times
// (roughly 0.5–1 s for 50-token responses, Figure 5).
func DefaultConfig() Config {
	return Config{
		BaseLatency: 120 * time.Millisecond,
		PerToken:    14 * time.Millisecond,
		JitterFrac:  0.15,
		MaxTokens:   50,
		Sleep:       false,
		Seed:        1,
	}
}

// Service is a deterministic simulated LLM web service. It is safe for
// concurrent use. Responses are a pure function of the query text and
// seed, so duplicate queries receive identical responses — which is what
// makes caching them sound.
type Service struct {
	cfg Config

	mu      sync.Mutex
	queries int

	// slowdown (float bits, default 1.0) multiplies response times, and
	// failing forces errors — the degradation knobs the overload harness
	// turns to brown out or kill the upstream mid-run.
	slowdown atomic.Uint64
	failing  atomic.Bool
}

// ErrInduced is returned while the service is in induced-failure mode
// (SetFailing(true)) — the overload harness's stand-in for a dead upstream.
var ErrInduced = errors.New("llmsim: induced upstream failure")

// New builds a Service.
func New(cfg Config) *Service {
	if cfg.MaxTokens <= 0 {
		cfg.MaxTokens = 50
	}
	s := &Service{cfg: cfg}
	s.slowdown.Store(math.Float64bits(1))
	return s
}

// SetSlowdown scales subsequent response times by factor (1 = nominal).
// The overload harness uses it to simulate an upstream brown-out.
func (s *Service) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	s.slowdown.Store(math.Float64bits(factor))
}

// SetFailing toggles induced-failure mode: queries error immediately
// instead of answering, as if the upstream were down.
func (s *Service) SetFailing(v bool) { s.failing.Store(v) }

// Queries reports how many queries the service has processed — the load
// metric a cache is meant to reduce.
func (s *Service) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Query generates the response to q and the (simulated) time it took.
// In Sleep mode the call blocks for that duration.
func (s *Service) Query(q string) (response string, took time.Duration) {
	response, took, _ = s.QueryContext(context.Background(), q)
	return response, took
}

// QueryContext is Query under a caller deadline: in Sleep mode the block
// honours ctx (returning ctx.Err() early — a timed-out inference is
// abandoned, not delivered late), and induced-failure mode surfaces
// ErrInduced. Virtual-time mode never blocks, so ctx only gates entry.
func (s *Service) QueryContext(ctx context.Context, q string) (response string, took time.Duration, err error) {
	if err := ctx.Err(); err != nil {
		return "", 0, err
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	if s.failing.Load() {
		return "", s.cfg.BaseLatency, ErrInduced
	}

	response = s.respond(q)
	tokens := len(strings.Fields(response))
	took = s.cfg.BaseLatency + time.Duration(tokens)*s.cfg.PerToken
	if s.cfg.JitterFrac > 0 {
		rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(hash(q))))
		j := 1 + s.cfg.JitterFrac*(2*rng.Float64()-1)
		took = time.Duration(float64(took) * j)
	}
	if factor := math.Float64frombits(s.slowdown.Load()); factor != 1 {
		took = time.Duration(float64(took) * factor)
	}
	if s.cfg.Sleep {
		t := time.NewTimer(took)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return "", took, ctx.Err()
		}
	}
	return response, took, nil
}

// respond deterministically synthesises a response whose length depends on
// the query, bounded by MaxTokens.
func (s *Service) respond(q string) string {
	words := tokenizer.Normalize(q)
	h := hash(q) ^ uint64(s.cfg.Seed)
	rng := rand.New(rand.NewSource(int64(h)))
	n := s.cfg.MaxTokens/2 + rng.Intn(s.cfg.MaxTokens/2+1)
	var b strings.Builder
	fmt.Fprintf(&b, "Regarding %q:", strings.Join(firstN(words, 4), " "))
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
		b.WriteString(responseVocab[rng.Intn(len(responseVocab))])
	}
	return b.String()
}

func firstN(words []string, n int) []string {
	if len(words) < n {
		return words
	}
	return words[:n]
}

var responseVocab = []string{
	"the", "approach", "works", "by", "first", "considering", "each",
	"component", "then", "combining", "results", "carefully", "note",
	"that", "performance", "depends", "on", "configuration", "and",
	"you", "should", "verify", "with", "your", "own", "data", "finally",
	"consider", "edge", "cases", "before", "deploying", "this", "solution",
}

func hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
