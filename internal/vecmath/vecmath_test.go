package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float32
	}{
		{nil, nil, 0},
		{[]float32{1}, []float32{2}, 2},
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{1, 2, 3, 4, 5}, []float32{1, 1, 1, 1, 1}, 15},
		{[]float32{-1, 2, -3, 4}, []float32{5, -6, 7, -8}, -70},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float32{1, 2}, []float32{1})
}

func TestAxpy(t *testing.T) {
	y := []float32{1, 2, 3}
	Axpy(2, []float32{1, 1, 1}, y)
	want := []float32{3, 4, 5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Fatalf("Normalize returned norm %v, want 5", n)
	}
	if !almostEqual(float64(Norm(x)), 1, 1e-6) {
		t.Fatalf("normalized norm = %v, want 1", Norm(x))
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	x := []float32{0, 0, 0}
	if n := Normalize(x); n != 0 {
		t.Fatalf("Normalize(zero) = %v, want 0", n)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("Normalize mutated a zero vector")
		}
	}
}

func TestCosineIdentical(t *testing.T) {
	x := []float32{1, 2, 3}
	if c := Cosine(x, x); !almostEqual(float64(c), 1, 1e-6) {
		t.Fatalf("Cosine(x, x) = %v, want 1", c)
	}
}

func TestCosineOpposite(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{-1, -2, -3}
	if c := Cosine(a, b); !almostEqual(float64(c), -1, 1e-6) {
		t.Fatalf("Cosine(a, -a) = %v, want -1", c)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if c := Cosine(a, b); c != 0 {
		t.Fatalf("Cosine(orthogonal) = %v, want 0", c)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if c := Cosine([]float32{0, 0}, []float32{1, 1}); c != 0 {
		t.Fatalf("Cosine with zero vector = %v, want 0", c)
	}
}

// Property: cosine similarity is always within [-1, 1].
func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		c := Cosine(clean(a[:n]), clean(b[:n]))
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: cosine is invariant under positive scaling of either argument.
func TestCosineScaleInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(32)
		a := randVec(rng, n)
		b := randVec(rng, n)
		alpha := float32(rng.Float64()*10 + 0.1)
		c1 := Cosine(a, b)
		scaled := Clone(a)
		Scale(alpha, scaled)
		c2 := Cosine(scaled, b)
		if !almostEqual(float64(c1), float64(c2), 1e-4) {
			t.Fatalf("cosine not scale-invariant: %v vs %v (alpha=%v)", c1, c2, alpha)
		}
	}
}

// Property: after Normalize, Dot equals Cosine.
func TestNormalizedDotEqualsCosineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a := randVec(rng, n)
		b := randVec(rng, n)
		c := Cosine(a, b)
		Normalize(a)
		Normalize(b)
		d := Dot(a, b)
		if !almostEqual(float64(c), float64(d), 1e-4) {
			t.Fatalf("normalized dot %v != cosine %v", d, c)
		}
	}
}

func TestSubAddRoundTrip(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	got := Add(Sub(a, b), b)
	for i := range a {
		if !almostEqual(float64(got[i]), float64(a[i]), 1e-6) {
			t.Fatalf("Add(Sub(a,b),b) = %v, want %v", got, a)
		}
	}
}

func TestMean(t *testing.T) {
	dst := make([]float32, 2)
	Mean(dst, [][]float32{{1, 2}, {3, 4}, {5, 6}})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Mean = %v, want [3 4]", dst)
	}
}

func TestMeanEmpty(t *testing.T) {
	dst := []float32{9, 9}
	Mean(dst, nil)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("Mean(empty) = %v, want zeros", dst)
	}
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// clean maps quick-generated values into a finite, overflow-safe range: the
// kernels document a contract of finite inputs whose squared sums fit in
// float32, so the property is checked over that domain.
func clean(v []float32) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			out[i] = 1
			continue
		}
		// Compress magnitude into [-1e3, 1e3] preserving sign and ordering.
		out[i] = float32(math.Tanh(f/1e3) * 1e3)
	}
	return out
}
