package vecmath

import (
	"math/rand"
	"testing"
)

func slabRandVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestScanDotMatchesDotExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 3, 4, 7, 16, 64, 768} {
		for _, n := range []int{0, 1, 2, 3, 5, 17, 64} {
			probe := slabRandVec(rng, dim)
			rows := make([]float32, n*dim)
			for i := range rows {
				rows[i] = float32(rng.NormFloat64())
			}
			out := make([]float32, n)
			ScanDot(probe, rows, out)
			for i := 0; i < n; i++ {
				// Bit-exact, not approximately equal: the conformance
				// oracle computes scores with Dot and demands parity.
				if want := Dot(probe, rows[i*dim:(i+1)*dim]); out[i] != want {
					t.Fatalf("dim=%d n=%d row %d: ScanDot %v != Dot %v", dim, n, i, out[i], want)
				}
			}
		}
	}
}

func TestScanDotMultiMatchesDotExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{1, 4, 16, 63} {
		for _, m := range []int{1, 2, 8} {
			const n = 21
			probes := make([]float32, m*dim)
			for i := range probes {
				probes[i] = float32(rng.NormFloat64())
			}
			rows := make([]float32, n*dim)
			for i := range rows {
				rows[i] = float32(rng.NormFloat64())
			}
			out := make([]float32, m*n)
			ScanDotMulti(probes, rows, out, m)
			for p := 0; p < m; p++ {
				for i := 0; i < n; i++ {
					want := Dot(probes[p*dim:(p+1)*dim], rows[i*dim:(i+1)*dim])
					if out[p*n+i] != want {
						t.Fatalf("dim=%d m=%d probe %d row %d: %v != %v", dim, m, p, i, out[p*n+i], want)
					}
				}
			}
		}
	}
}

func TestSlabPutFreeRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSlab(8)
	v1 := slabRandVec(rng, 8)
	v2 := slabRandVec(rng, 8)
	s1 := s.Put(v1)
	s2 := s.Put(v2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Norm(s1); got != Norm(v1) {
		t.Fatalf("Norm(slot1) = %v, want %v", got, Norm(v1))
	}
	s.Free(s1)
	if s.Len() != 1 {
		t.Fatalf("Len after Free = %d", s.Len())
	}
	// A freed row must read as zero — no stale vector through the arena.
	for _, x := range s.Row(s1) {
		if x != 0 {
			t.Fatalf("freed row not zeroed: %v", s.Row(s1))
		}
	}
	// The freed slot is recycled before any new slot is minted.
	v3 := slabRandVec(rng, 8)
	s3 := s.Put(v3)
	if s3 != s1 {
		t.Fatalf("Put after Free used slot %d, want recycled slot %d", s3, s1)
	}
	if s.Slots() != 2 {
		t.Fatalf("Slots = %d, want 2 (no growth through recycling)", s.Slots())
	}
	// The recycled row holds the new vector, not the old one.
	for i, x := range s.Row(s3) {
		if x != v3[i] {
			t.Fatalf("recycled row differs at %d: %v != %v", i, x, v3[i])
		}
	}
	if got := s.Row(s2); Dot(got, v2) != Dot(v2, v2) {
		t.Fatal("unrelated slot disturbed by recycling")
	}
}

func TestSlabRowsStableAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSlab(4)
	first := s.Put(slabRandVec(rng, 4))
	view := s.Row(first)
	want := Clone(view)
	// Grow well past several chunk boundaries; the early view must stay
	// valid and untouched (chunked storage never reallocates rows).
	for i := 0; i < SlabChunkRows*3; i++ {
		s.Put(slabRandVec(rng, 4))
	}
	for i := range view {
		if view[i] != want[i] {
			t.Fatalf("row view invalidated by growth at %d", i)
		}
	}
}

func TestSlabScanDot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSlab(16)
	var slots []int32
	var vecs [][]float32
	for i := 0; i < SlabChunkRows+40; i++ { // span two chunks
		v := slabRandVec(rng, 16)
		slots = append(slots, s.Put(v))
		vecs = append(vecs, v)
	}
	s.Free(slots[7])
	probe := slabRandVec(rng, 16)
	out := make([]float32, s.Slots())
	s.ScanDot(probe, out)
	for i, slot := range slots {
		if i == 7 {
			if out[slot] != 0 {
				t.Fatalf("freed slot scored %v, want 0", out[slot])
			}
			continue
		}
		if want := Dot(probe, vecs[i]); out[slot] != want {
			t.Fatalf("slot %d: %v != %v", slot, out[slot], want)
		}
	}
}

// TestScanKernelsZeroAlloc is the allocation gate for the scan kernels:
// after warmup they must not allocate at all.
func TestScanKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	probe := slabRandVec(rng, 64)
	rows := make([]float32, 100*64)
	out := make([]float32, 100)
	if n := testing.AllocsPerRun(50, func() { ScanDot(probe, rows, out) }); n != 0 {
		t.Fatalf("ScanDot allocates %v per run, want 0", n)
	}
	probes := make([]float32, 4*64)
	mout := make([]float32, 4*100)
	if n := testing.AllocsPerRun(50, func() { ScanDotMulti(probes, rows, mout, 4) }); n != 0 {
		t.Fatalf("ScanDotMulti allocates %v per run, want 0", n)
	}
	s := NewSlab(64)
	for i := 0; i < 300; i++ {
		s.Put(rows[i*10 : i*10+64])
	}
	sout := make([]float32, s.Slots())
	if n := testing.AllocsPerRun(50, func() { s.ScanDot(probe, sout) }); n != 0 {
		t.Fatalf("Slab.ScanDot allocates %v per run, want 0", n)
	}
}

func BenchmarkScanDot64x20k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	probe := slabRandVec(rng, 64)
	rows := make([]float32, 20000*64)
	for i := range rows {
		rows[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanDot(probe, rows, out)
	}
}

func BenchmarkScanDotMulti8x64x20k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	probes := make([]float32, 8*64)
	for i := range probes {
		probes[i] = float32(rng.NormFloat64())
	}
	rows := make([]float32, 20000*64)
	for i := range rows {
		rows[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, 8*20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanDotMulti(probes, rows, out, 8)
	}
}
