package vecmath

import "fmt"

// Blocked multi-row scan kernels: the GEMV-style primitives behind the
// index scans. A plain per-row Dot loop reloads the probe from cache for
// every row and gives the CPU only one dependency chain to hide float
// latency behind; the kernels here process two rows per probe load with
// eight independent accumulators, which is where a scalar float32 scan
// tops out before SIMD.
//
// Accumulation order is bit-identical to Dot for every row: four
// accumulators striding the row mod 4, remainder folded into the first,
// summed s0+s1+s2+s3. The exact-index conformance suite compares scores
// against a Dot-based oracle, so the kernels must not introduce even
// one-ulp drift.

// ScanDot computes out[i] = Dot(probe, rows[i·d:(i+1)·d]) for all
// len(out) rows stored contiguously in rows, where d = len(probe).
// It performs no allocation.
func ScanDot(probe, rows, out []float32) {
	d := len(probe)
	n := len(out)
	if len(rows) != n*d {
		panic(fmt.Sprintf("vecmath: ScanDot rows len %d, want %d×%d", len(rows), n, d))
	}
	if d == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	i := 0
	for ; i+2 <= n; i += 2 {
		out[i], out[i+1] = dot2(probe, rows[i*d:(i+1)*d], rows[(i+1)*d:(i+2)*d])
	}
	if i < n {
		out[i] = Dot(probe, rows[i*d:(i+1)*d])
	}
}

// dot2 scores two rows against one probe with eight independent
// accumulators — two Dot-ordered chains interleaved so the probe is
// loaded once per row pair and float latency overlaps. The re-slices to
// len(p) let the compiler drop every bounds check in the inner loop.
func dot2(p, x, y []float32) (float32, float32) {
	x = x[:len(p)]
	y = y[:len(p)]
	var a0, a1, a2, a3, b0, b1, b2, b3 float32
	j := 0
	for ; j+4 <= len(p); j += 4 {
		p0, p1, p2, p3 := p[j], p[j+1], p[j+2], p[j+3]
		a0 += p0 * x[j]
		a1 += p1 * x[j+1]
		a2 += p2 * x[j+2]
		a3 += p3 * x[j+3]
		b0 += p0 * y[j]
		b1 += p1 * y[j+1]
		b2 += p2 * y[j+2]
		b3 += p3 * y[j+3]
	}
	for ; j < len(p); j++ {
		a0 += p[j] * x[j]
		b0 += p[j] * y[j]
	}
	return a0 + a1 + a2 + a3, b0 + b1 + b2 + b3
}

// ScanDotMulti scores a micro-batch of m probes (stored contiguously,
// m×d row-major) against the same contiguous rows in one pass: each row
// pair is loaded once and scored against every probe while it is hot in
// cache, instead of m separate sweeps through the data. Results land in
// out as m consecutive blocks of rowCount scores: out[p·rows+i] is
// probe p against row i. It performs no allocation.
func ScanDotMulti(probes, rows, out []float32, m int) {
	if m <= 0 {
		return
	}
	d := len(probes) / m
	if len(probes) != m*d {
		panic(fmt.Sprintf("vecmath: ScanDotMulti probes len %d not a multiple of m=%d", len(probes), m))
	}
	if d == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	n := len(rows) / d
	if len(rows) != n*d {
		panic(fmt.Sprintf("vecmath: ScanDotMulti rows len %d not a multiple of dim %d", len(rows), d))
	}
	if len(out) < m*n {
		panic(fmt.Sprintf("vecmath: ScanDotMulti out len %d, need %d", len(out), m*n))
	}
	i := 0
	for ; i+2 <= n; i += 2 {
		r0 := rows[i*d : (i+1)*d]
		r1 := rows[(i+1)*d : (i+2)*d]
		for p := 0; p < m; p++ {
			out[p*n+i], out[p*n+i+1] = dot2(probes[p*d:(p+1)*d], r0, r1)
		}
	}
	if i < n {
		row := rows[i*d : (i+1)*d]
		for p := 0; p < m; p++ {
			out[p*n+i] = Dot(probes[p*d:(p+1)*d], row)
		}
	}
}
