package vecmath

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix. Rows×Cols elements are stored
// contiguously in Data so that a row is a cheap sub-slice and matrix-vector
// products walk memory linearly.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a sub-slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// RandomizeNormal fills m with N(0, std²) samples from rng. Used for weight
// initialisation; callers pass std = 1/sqrt(fanIn) for variance-preserving
// initial layers.
func (m *Matrix) RandomizeNormal(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// MulVec computes dst = m · x where x has m.Cols elements and dst has m.Rows.
func (m *Matrix) MulVec(dst, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("vecmath: MulVec shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecT computes dst = mᵀ · x where x has m.Rows elements and dst has
// m.Cols. This is the backward-pass companion of MulVec.
func (m *Matrix) MulVecT(dst, x []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("vecmath: MulVecT shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}

// MatMul returns a·b. Shapes must agree (a.Cols == b.Rows). The inner loop is
// ordered ikj so b is streamed row-wise; rows of the output are computed in
// parallel across the worker pool for large products.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vecmath: MatMul shape mismatch %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	mulRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			oi := out.Row(i)
			for k, av := range ai {
				if av == 0 {
					continue
				}
				Axpy(av, b.Row(k), oi)
			}
		}
	}
	// Parallelising tiny products costs more in scheduling than it saves.
	if a.Rows*a.Cols*b.Cols < 1<<16 {
		mulRange(0, a.Rows)
	} else {
		ParallelFor(a.Rows, mulRange)
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// AddScaled accumulates m += alpha*other. Shapes must match.
func (m *Matrix) AddScaled(alpha float32, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("vecmath: AddScaled shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	Axpy(alpha, other.Data, m.Data)
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float32 {
	return float32(math.Sqrt(float64(Dot(m.Data, m.Data))))
}
