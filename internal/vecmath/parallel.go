package vecmath

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the degree of parallelism for all kernels in this
// package. It is fixed at startup to GOMAXPROCS so that experiment results
// are stable for a given machine configuration.
var maxWorkers = runtime.GOMAXPROCS(0)

// Workers reports the parallelism bound used by ParallelFor.
func Workers() int { return maxWorkers }

// ParallelFor splits [0, n) into at most Workers() contiguous chunks and
// invokes body(lo, hi) for each chunk on its own goroutine, waiting for all
// chunks to finish. body must be safe to run concurrently for disjoint
// ranges. For n smaller than the worker count the call degrades to a plain
// loop, avoiding goroutine overhead on tiny inputs.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelMapReduce runs body over chunks of [0, n) like ParallelFor, but
// each chunk produces a float64 partial that is summed after all chunks
// complete. Used for parallel loss/metric accumulation where the reduction
// order must not affect correctness (addition of partials).
func ParallelMapReduce(n int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return body(0, n)
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				partials[w] = body(lo, hi)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}
