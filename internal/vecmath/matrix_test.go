package vecmath

import (
	"math/rand"
	"testing"
)

func TestMatrixRowSetAt(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 5 // rows share storage
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not share storage with matrix")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 2)
	m.MulVec(dst, []float32{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 3)
	m.MulVecT(dst, []float32{1, 1})
	want := []float32{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

// MulVecT must agree with an explicit transpose followed by MulVec.
func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		m := NewMatrix(r, c)
		m.RandomizeNormal(rng, 1)
		x := randVec(rng, r)
		got := make([]float32, c)
		m.MulVecT(got, x)
		want := make([]float32, c)
		m.Transpose().MulVec(want, x)
		for i := range want {
			if !almostEqual(float64(got[i]), float64(want[i]), 1e-4) {
				t.Fatalf("trial %d: MulVecT disagrees with Transpose().MulVec at %d: %v vs %v",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float32{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(7, 7)
	a.RandomizeNormal(rng, 1)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEqual(float64(c.Data[i]), float64(a.Data[i]), 1e-5) {
			t.Fatal("A·I != A")
		}
	}
}

// Large products exercise the parallel path; verify against the serial
// row-by-row MulVec formulation.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewMatrix(64, 48)
	a.RandomizeNormal(rng, 1)
	b := NewMatrix(48, 40)
	b.RandomizeNormal(rng, 1)
	c := MatMul(a, b)
	bt := b.Transpose()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			want := Dot(a.Row(i), bt.Row(j))
			if !almostEqual(float64(c.At(i, j)), float64(want), 1e-3) {
				t.Fatalf("MatMul (%d,%d) = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMatrix(5, 9)
	m.RandomizeNormal(rng, 1)
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float32{1, 1, 1, 1})
	a.AddScaled(2, b)
	want := []float32{3, 4, 5, 6}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", a.Data, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrix(1, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 1001} {
		seen := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelMapReduce(t *testing.T) {
	got := ParallelMapReduce(1000, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(999 * 1000 / 2)
	if got != want {
		t.Fatalf("ParallelMapReduce = %v, want %v", got, want)
	}
}

func TestParallelMapReduceEmpty(t *testing.T) {
	if got := ParallelMapReduce(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("ParallelMapReduce(0) = %v, want 0", got)
	}
}

func BenchmarkDot768(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randVec(rng, 768)
	y := randVec(rng, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewMatrix(128, 128)
	x.RandomizeNormal(rng, 1)
	y := NewMatrix(128, 128)
	y.RandomizeNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}
