package vecmath

import "fmt"

// SlabChunkRows is how many rows each slab chunk holds. Chunks are
// allocated whole, so rows never move once written: a Row view stays
// valid for the lifetime of its slot, and growth never copies vector
// data. 256 rows × 64 dims ≈ 64 KB per chunk — large enough to stream,
// small enough that a sparsely used slab wastes little.
const SlabChunkRows = 256

// Slab is a contiguous row-major float32 arena with free-slot recycling
// and precomputed row norms — the storage layout behind the index
// packages' vector stores. Rows live in fixed-size chunks, so
//
//   - a chunk is scanned linearly by the blocked kernels (ScanDot),
//   - row addresses are stable (growth allocates a new chunk, it never
//     reallocates existing ones), and
//   - Free recycles a slot for a later Put instead of compacting, so
//     heavy Add/Remove churn performs zero steady-state allocation.
//
// Freed rows are zeroed immediately: a stale vector must not remain
// readable through the arena (aliasing hygiene), and a zero row scores 0
// in the scan kernels, below any meaningful threshold.
//
// Slab does no locking; callers synchronise (the index types wrap it in
// their own RWMutex).
type Slab struct {
	dim    int
	chunks [][]float32 // each SlabChunkRows×dim, allocated on demand
	norms  []float32   // per-slot L2 norm, precomputed at Put
	free   []int32     // freed slots awaiting reuse
	next   int32       // first never-used slot
	live   int
}

// NewSlab creates an empty arena for dim-dimensional rows.
func NewSlab(dim int) *Slab {
	if dim <= 0 {
		panic("vecmath: Slab dim must be positive")
	}
	return &Slab{dim: dim}
}

// Dim reports the row dimensionality.
func (s *Slab) Dim() int { return s.dim }

// Len reports the number of live rows.
func (s *Slab) Len() int { return s.live }

// Slots reports the slot-address upper bound: every live slot is in
// [0, Slots()). Scan buffers are sized to this.
func (s *Slab) Slots() int { return int(s.next) }

// Put copies vec into a recycled slot when one is free (appending into a
// fresh chunk otherwise) and returns the slot. The row's L2 norm is
// precomputed here so insert-time geometry (e.g. distance-to-pivot
// bookkeeping) never rescans the data.
func (s *Slab) Put(vec []float32) int32 {
	if len(vec) != s.dim {
		panic(fmt.Sprintf("vecmath: Slab.Put dim %d, want %d", len(vec), s.dim))
	}
	var slot int32
	if k := len(s.free); k > 0 {
		slot = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		slot = s.next
		s.next++
		if int(slot)/SlabChunkRows >= len(s.chunks) {
			s.chunks = append(s.chunks, make([]float32, SlabChunkRows*s.dim))
		}
		s.norms = append(s.norms, 0)
	}
	copy(s.Row(slot), vec)
	s.norms[slot] = Norm(vec)
	s.live++
	return slot
}

// Free zeroes the slot's row and recycles it for a later Put. Freeing an
// already-free slot corrupts the free list; callers guard against it
// (the index types only Free slots they own).
func (s *Slab) Free(slot int32) {
	Zero(s.Row(slot))
	s.norms[slot] = 0
	s.free = append(s.free, slot)
	s.live--
}

// Row returns the slot's row as a view into the arena. The view is valid
// until the slot is freed; a freed-and-reused slot aliases the new row,
// which is why Free zeroes eagerly and callers must not retain views
// past Free.
func (s *Slab) Row(slot int32) []float32 {
	c := int(slot) / SlabChunkRows
	r := int(slot) % SlabChunkRows
	return s.chunks[c][r*s.dim : (r+1)*s.dim]
}

// Norm returns the slot's precomputed L2 norm (0 for freed slots).
func (s *Slab) Norm(slot int32) float32 { return s.norms[slot] }

// Chunk exposes chunk c's backing array (SlabChunkRows×Dim, rows beyond
// Slots() zero) for callers that stream the arena with their own kernel
// calls, e.g. the multi-probe scan.
func (s *Slab) Chunk(c int) []float32 { return s.chunks[c] }

// ScanDot computes out[slot] = Dot(probe, row(slot)) for every slot in
// [0, Slots()), one blocked-kernel pass per chunk. Freed slots are zero
// rows and score 0. out must have at least Slots() elements; it is not
// allocated here, so a warmed caller runs allocation-free.
func (s *Slab) ScanDot(probe []float32, out []float32) {
	if len(probe) != s.dim {
		panic(fmt.Sprintf("vecmath: Slab.ScanDot dim %d, want %d", len(probe), s.dim))
	}
	n := int(s.next)
	if len(out) < n {
		panic(fmt.Sprintf("vecmath: Slab.ScanDot out len %d, need %d", len(out), n))
	}
	for c := 0; c*SlabChunkRows < n; c++ {
		rows := n - c*SlabChunkRows
		if rows > SlabChunkRows {
			rows = SlabChunkRows
		}
		ScanDot(probe, s.chunks[c][:rows*s.dim], out[c*SlabChunkRows:c*SlabChunkRows+rows])
	}
}
