// Package vecmath provides the dense float32 linear-algebra kernels used by
// every numeric component of the MeanCache reproduction: the embedding
// encoders, the trainer, PCA compression, and the cosine-similarity cache
// index.
//
// The package is deliberately small and allocation-conscious. All kernels
// operate on plain []float32 slices (vectors) or on the row-major Matrix
// type, and the hot paths (Dot, Axpy, MatMul, batched cosine search) are
// written so the compiler can keep operands in registers. Parallel variants
// dispatch work through ParallelFor, a bounded worker pool sized to
// runtime.GOMAXPROCS(0), following the parallelisation idiom from Effective
// Go: independent pieces launched per core with a channel to signal
// completion.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, because a silent truncation would corrupt
// downstream similarity scores.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy computes y += alpha*x in place. Lengths must match.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm returns the Euclidean (L2) norm of x.
func Norm(x []float32) float32 {
	return float32(math.Sqrt(float64(Dot(x, x))))
}

// Normalize scales x to unit L2 norm in place and returns the original norm.
// A zero vector is left unchanged and 0 is returned, so callers can detect
// degenerate embeddings instead of propagating NaNs.
func Normalize(x []float32) float32 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. If either
// vector is zero the similarity is defined as 0.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Clamp against floating-point drift so downstream threshold comparisons
	// and acos-style transforms stay in range.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Add returns a newly allocated element-wise sum a+b.
func Add(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Add length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a newly allocated element-wise difference a-b.
func Sub(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a copy of x.
func Clone(x []float32) []float32 {
	out := make([]float32, len(x))
	copy(out, x)
	return out
}

// Zero clears x in place.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Mean writes into dst the element-wise mean of the rows. All rows must have
// len(dst) elements. An empty rows slice leaves dst zeroed.
func Mean(dst []float32, rows [][]float32) {
	Zero(dst)
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		Axpy(1, r, dst)
	}
	Scale(1/float32(len(rows)), dst)
}
