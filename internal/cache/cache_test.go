package cache

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/vecmath"
)

// unit returns a deterministic unit vector of dimension d seeded by s.
func unit(d int, s int64) []float32 {
	rng := rand.New(rand.NewSource(s))
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}

func TestPutGetChain(t *testing.T) {
	c := New(8, 0, LRU{})
	id1, err := c.Put("what is FL", "FL is...", unit(8, 1), NoParent)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	id2, err := c.Put("plot a graph", "use plot()", unit(8, 2), NoParent)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	id3, err := c.Put("change color to blue", "set color=", unit(8, 3), id2)
	if err != nil {
		t.Fatalf("Put child: %v", err)
	}
	if e, ok := c.Get(id3); !ok || e.Parent != id2 {
		t.Fatal("child entry lost or wrong parent")
	}
	chain := c.Chain(id3)
	if len(chain) != 1 || chain[0].ID != id2 {
		t.Fatalf("Chain(id3) = %v, want [id2]", chain)
	}
	if got := c.Chain(id1); len(got) != 0 {
		t.Fatalf("standalone chain = %v, want empty", got)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestPutRejectsWrongDim(t *testing.T) {
	c := New(8, 0, LRU{})
	if _, err := c.Put("q", "r", make([]float32, 9), NoParent); err == nil {
		t.Fatal("Put accepted wrong-dimension embedding")
	}
}

func TestPutRejectsMissingParent(t *testing.T) {
	c := New(8, 0, LRU{})
	if _, err := c.Put("q", "r", unit(8, 1), 42); err == nil {
		t.Fatal("Put accepted dangling parent")
	}
}

func TestFindSimilarExactMatch(t *testing.T) {
	c := New(8, 0, LRU{})
	e := unit(8, 5)
	id, _ := c.Put("query", "resp", e, NoParent)
	ms := c.FindSimilar(e, 3, 0.9)
	if len(ms) != 1 || ms[0].Entry.ID != id {
		t.Fatalf("FindSimilar(self) = %v", ms)
	}
	if ms[0].Score < 0.999 {
		t.Fatalf("self-similarity = %v, want ≈1", ms[0].Score)
	}
}

func TestFindSimilarThreshold(t *testing.T) {
	c := New(8, 0, LRU{})
	for i := int64(0); i < 50; i++ {
		c.Put(fmt.Sprintf("q%d", i), "r", unit(8, i), NoParent)
	}
	probe := unit(8, 3) // identical to entry seeded 3
	ms := c.FindSimilar(probe, 10, 0.99)
	if len(ms) != 1 {
		t.Fatalf("matches above 0.99 = %d, want exactly the identical entry", len(ms))
	}
	// Lower threshold yields more (random unit vectors spread widely).
	loose := c.FindSimilar(probe, 50, -1)
	if len(loose) != 50 {
		t.Fatalf("matches above -1 = %d, want 50", len(loose))
	}
	// Results sorted descending.
	for i := 1; i < len(loose); i++ {
		if loose[i].Score > loose[i-1].Score {
			t.Fatal("matches not sorted by score")
		}
	}
}

func TestFindSimilarTopK(t *testing.T) {
	c := New(8, 0, LRU{})
	for i := int64(0); i < 30; i++ {
		c.Put("q", "r", unit(8, i), NoParent)
	}
	ms := c.FindSimilar(unit(8, 99), 5, -1)
	if len(ms) != 5 {
		t.Fatalf("top-k = %d, want 5", len(ms))
	}
}

func TestFindSimilarEmptyCache(t *testing.T) {
	c := New(8, 0, LRU{})
	if ms := c.FindSimilar(unit(8, 1), 5, 0); ms != nil {
		t.Fatalf("empty cache returned %v", ms)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(4, 3, LRU{})
	id0, _ := c.Put("a", "r", unit(4, 0), NoParent)
	id1, _ := c.Put("b", "r", unit(4, 1), NoParent)
	id2, _ := c.Put("c", "r", unit(4, 2), NoParent)
	c.Touch(id0) // id0 is now most recently used; id1 is LRU
	c.Put("d", "r", unit(4, 3), NoParent)
	if _, ok := c.Get(id1); ok {
		t.Fatal("LRU victim id1 survived")
	}
	for _, id := range []int{id0, id2} {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("entry %d wrongly evicted", id)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", c.Len())
	}
}

func TestLFUEviction(t *testing.T) {
	c := New(4, 3, LFU{})
	id0, _ := c.Put("a", "r", unit(4, 0), NoParent)
	id1, _ := c.Put("b", "r", unit(4, 1), NoParent)
	c.Put("c", "r", unit(4, 2), NoParent)
	c.Touch(id0)
	c.Touch(id0)
	c.Touch(id1)
	// id2 has zero hits: LFU victim.
	c.Put("d", "r", unit(4, 3), NoParent)
	if _, ok := c.Get(id0); !ok {
		t.Fatal("most-hit entry evicted under LFU")
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(4, 2, FIFO{})
	id0, _ := c.Put("a", "r", unit(4, 0), NoParent)
	c.Put("b", "r", unit(4, 1), NoParent)
	c.Touch(id0) // recency must not matter for FIFO
	c.Put("c", "r", unit(4, 2), NoParent)
	if _, ok := c.Get(id0); ok {
		t.Fatal("FIFO kept the oldest entry")
	}
}

func TestNonePolicyGrowsPastCapacity(t *testing.T) {
	c := New(4, 2, None{})
	for i := int64(0); i < 5; i++ {
		if _, err := c.Put("q", "r", unit(4, i), NoParent); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (None policy must not evict)", c.Len())
	}
}

func TestEvictionCascadesToChildren(t *testing.T) {
	c := New(4, 0, LRU{})
	parent, _ := c.Put("parent", "r", unit(4, 0), NoParent)
	child, _ := c.Put("child", "r", unit(4, 1), parent)
	grandchild, _ := c.Put("grandchild", "r", unit(4, 2), child)
	other, _ := c.Put("other", "r", unit(4, 3), NoParent)
	c.Remove(parent)
	for _, id := range []int{parent, child, grandchild} {
		if _, ok := c.Get(id); ok {
			t.Fatalf("entry %d survived cascade removal", id)
		}
	}
	if _, ok := c.Get(other); !ok {
		t.Fatal("unrelated entry removed")
	}
}

func TestEvictionNeverOrphansChains(t *testing.T) {
	// Fill a capacity-bounded cache with parent→child conversations and
	// verify every surviving child's chain resolves.
	c := New(4, 10, LRU{})
	for i := int64(0); i < 40; i++ {
		pid, err := c.Put("p", "r", unit(4, i*2), NoParent)
		if err != nil {
			t.Fatalf("Put parent: %v", err)
		}
		if _, err := c.Put("c", "r", unit(4, i*2+1), pid); err != nil {
			t.Fatalf("Put child: %v", err)
		}
	}
	for _, e := range c.Entries() {
		if e.Parent != NoParent {
			if _, ok := c.Get(e.Parent); !ok {
				t.Fatalf("entry %d has dangling parent %d", e.ID, e.Parent)
			}
		}
	}
}

func TestStorageAccounting(t *testing.T) {
	c := New(4, 0, LRU{})
	c.Put("query", "response", unit(4, 1), NoParent)
	if got := c.EmbeddingBytes(); got != 16 {
		t.Fatalf("EmbeddingBytes = %d, want 16", got)
	}
	want := int64(16 + len("query") + len("response"))
	if got := c.StorageBytes(); got != want {
		t.Fatalf("StorageBytes = %d, want %d", got, want)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(4, 0, LRU{})
	e := unit(4, 1)
	c.Put("q", "r", e, NoParent)
	c.FindSimilar(e, 1, 0.9)        // hit
	c.FindSimilar(unit(4, 9), 1, 2) // impossible threshold: miss
	s := c.Stats()
	if s.Puts != 1 || s.Searches != 2 || s.Hits != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestConcurrentPutAndSearch(t *testing.T) {
	c := New(16, 0, LRU{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Put("q", "r", unit(16, int64(w*1000+i)), NoParent)
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.FindSimilar(unit(16, int64(w)), 3, 0.5)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Fatalf("Len = %d, want 400", c.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "cache.log"))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()

	c := New(8, 0, LRU{})
	p, _ := c.Put("parent q", "parent r", unit(8, 1), NoParent)
	ch, _ := c.Put("child q", "child r", unit(8, 2), p)
	c.Put("standalone", "r", unit(8, 3), NoParent)
	if err := c.SaveTo(st); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}

	c2, err := LoadFrom(st, 8, 0, LRU{})
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if c2.Len() != 3 {
		t.Fatalf("loaded Len = %d, want 3", c2.Len())
	}
	e, ok := c2.Get(ch)
	if !ok || e.Parent != p || e.Query != "child q" {
		t.Fatalf("child entry corrupted: %+v", e)
	}
	chain := c2.Chain(ch)
	if len(chain) != 1 || chain[0].Query != "parent q" {
		t.Fatal("chain broken after reload")
	}
	// New entries must not collide with loaded IDs.
	nid, err := c2.Put("new", "r", unit(8, 4), NoParent)
	if err != nil {
		t.Fatalf("Put after load: %v", err)
	}
	if _, ok := c2.Get(nid); !ok || nid <= ch {
		t.Fatalf("ID allocation after load broken: new ID %d", nid)
	}
}

func TestSaveToPrunesStaleRecords(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "cache.log"))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	c := New(8, 0, LRU{})
	id, _ := c.Put("temp", "r", unit(8, 1), NoParent)
	c.SaveTo(st)
	c.Remove(id)
	c.Put("kept", "r", unit(8, 2), NoParent)
	c.SaveTo(st)
	c2, err := LoadFrom(st, 8, 0, LRU{})
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if c2.Len() != 1 {
		t.Fatalf("loaded Len = %d, want 1 (stale record must be pruned)", c2.Len())
	}
}

func BenchmarkFindSimilar768x1000(b *testing.B) {
	benchmarkFindSimilar(b, 768, 1000)
}

func BenchmarkFindSimilar64x1000(b *testing.B) {
	benchmarkFindSimilar(b, 64, 1000)
}

func BenchmarkFindSimilar768x3000(b *testing.B) {
	benchmarkFindSimilar(b, 768, 3000)
}

func BenchmarkFindSimilar64x3000(b *testing.B) {
	benchmarkFindSimilar(b, 64, 3000)
}

func benchmarkFindSimilar(b *testing.B, dim, n int) {
	c := New(dim, 0, LRU{})
	for i := int64(0); i < int64(n); i++ {
		c.Put("q", "r", unit(dim, i), NoParent)
	}
	probe := unit(dim, 777)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindSimilar(probe, 5, 0.7)
	}
}
