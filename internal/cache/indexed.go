package cache

import (
	"fmt"

	"repro/internal/index"
)

// NewWithIndex creates a cache whose similarity search is delegated to the
// given vector index instead of the built-in parallel flat scan. Use an
// index.IVF for very large caches (§III-B cites million-entry semantic
// search); the built-in scan remains the default for user-side cache
// sizes. The index must be empty and match dim.
func NewWithIndex(dim, capacity int, policy Policy, idx index.Index) *Cache {
	if idx.Dim() != dim {
		panic(fmt.Sprintf("cache: index dim %d != cache dim %d", idx.Dim(), dim))
	}
	if idx.Len() != 0 {
		panic("cache: index must start empty")
	}
	c := New(dim, capacity, policy)
	c.idx = idx
	return c
}

// Indexed reports whether an external vector index is attached.
func (c *Cache) Indexed() bool { return c.idx != nil }
