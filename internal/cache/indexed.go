package cache

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/store"
)

// NewWithIndex creates a cache whose similarity search is delegated to the
// given vector index instead of the default slab-backed exact scan: an
// index.IVF or index.HNSW for very large caches (§III-B cites
// million-entry semantic search), or an index.Adaptive to let each tenant
// start on the exact scan and promote as it grows. The exact index
// remains the default for user-side cache sizes. The index must be empty
// and match dim.
func NewWithIndex(dim, capacity int, policy Policy, idx index.Index) *Cache {
	if idx.Dim() != dim {
		panic(fmt.Sprintf("cache: index dim %d != cache dim %d", idx.Dim(), dim))
	}
	if idx.Len() != 0 {
		panic("cache: index must start empty")
	}
	c := New(dim, capacity, policy)
	c.idx = idx
	c.external = true
	return c
}

// LoadFromWithIndex rebuilds a cache from records written by SaveTo, like
// LoadFrom, and attaches the given (empty) vector index, inserting every
// revived embedding into it — the revival path for tenants served through
// an external index. The index is installed before the entries load, so
// each revived embedding is indexed exactly once.
func LoadFromWithIndex(st *store.Store, dim, capacity int, policy Policy, idx index.Index) (*Cache, error) {
	if idx.Dim() != dim {
		return nil, fmt.Errorf("cache: index dim %d != cache dim %d", idx.Dim(), dim)
	}
	if idx.Len() != 0 {
		return nil, fmt.Errorf("cache: index must start empty")
	}
	c := New(dim, capacity, policy)
	c.idx = idx
	c.external = true
	if err := loadEntries(c, st, dim); err != nil {
		return nil, err
	}
	return c, nil
}

// Indexed reports whether an external (typically approximate) vector
// index is attached in place of the default exact index.
func (c *Cache) Indexed() bool { return c.external }
