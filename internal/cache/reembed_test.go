package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/vecmath"
)

// hashEmb derives a deterministic unit vector from text and a model
// generation, standing in for "the same query under a different encoder".
func hashEmb(dim int, gen int64, text string) []float32 {
	var h int64 = gen
	for _, r := range text {
		h = h*131 + int64(r)
	}
	return unit(dim, h)
}

func TestReembedMigratesAllEntries(t *testing.T) {
	for name, c := range map[string]*Cache{
		"flat":    New(16, 0, LRU{}),
		"indexed": NewWithIndex(16, 0, LRU{}, index.NewIVF(16, index.IVFConfig{NList: 4, NProbe: 4, TrainSize: 20, Seed: 1})),
	} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("query %d", i)
				if _, err := c.Put(q, "r", hashEmb(16, 1, q), NoParent); err != nil {
					t.Fatal(err)
				}
			}
			n, err := c.Reembed(func(q string) []float32 { return hashEmb(16, 2, q) })
			if err != nil {
				t.Fatalf("Reembed: %v", err)
			}
			if n != 50 {
				t.Fatalf("reembedded %d entries, want 50", n)
			}
			// Every entry must now be searchable by its generation-2
			// embedding (and not by its generation-1 one).
			for _, e := range c.Entries() {
				ms := c.FindSimilar(hashEmb(16, 2, e.Query), 1, 0.999)
				if len(ms) == 0 || ms[0].Entry.ID != e.ID {
					t.Fatalf("entry %d not findable under the new model", e.ID)
				}
				if ms := c.FindSimilar(hashEmb(16, 1, e.Query), 1, 0.999); len(ms) != 0 {
					t.Fatalf("entry %d still matches its old embedding exactly", e.ID)
				}
			}
		})
	}
}

func TestReembedDimMismatch(t *testing.T) {
	c := New(8, 0, LRU{})
	if _, err := c.Put("q", "r", unit(8, 1), NoParent); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reembed(func(string) []float32 { return make([]float32, 9) }); err == nil {
		t.Fatal("Reembed accepted wrong-dimension embeddings")
	}
}

func TestReembedDuringConcurrentTraffic(t *testing.T) {
	c := New(16, 128, LRU{})
	for i := 0; i < 100; i++ {
		q := fmt.Sprintf("seed %d", i)
		if _, err := c.Put(q, "r", hashEmb(16, 1, q), NoParent); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent inserts + searches while the migration runs
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("live %d", i)
			c.Put(q, "r", hashEmb(16, 2, q), NoParent)
			c.FindSimilar(hashEmb(16, 2, q), 3, 0.5)
		}
	}()
	if _, err := c.Reembed(func(q string) []float32 { return hashEmb(16, 2, q) }); err != nil {
		t.Fatalf("Reembed under traffic: %v", err)
	}
	close(stop)
	wg.Wait()
	// All surviving entries are in the generation-2 space.
	for _, e := range c.Entries() {
		if vecmath.Dot(e.Embedding, hashEmb(16, 2, e.Query)) < 0.999 {
			t.Fatalf("entry %q left in the old embedding space", e.Query)
		}
	}
}

func TestReembedReplacesEntriesInsteadOfMutating(t *testing.T) {
	// Callers hold *Entry pointers beyond the cache lock (context chains,
	// in-flight matches): Reembed must leave old snapshots untouched.
	c := New(16, 0, LRU{})
	id, err := c.Put("q", "r", hashEmb(16, 1, "q"), NoParent)
	if err != nil {
		t.Fatal(err)
	}
	old, _ := c.Get(id)
	oldEmb := old.Embedding
	if _, err := c.Reembed(func(q string) []float32 { return hashEmb(16, 2, q) }); err != nil {
		t.Fatal(err)
	}
	if vecmath.Dot(oldEmb, hashEmb(16, 1, "q")) < 0.999 || &old.Embedding[0] != &oldEmb[0] {
		t.Fatal("Reembed mutated an entry snapshot held by a caller")
	}
	cur, _ := c.Get(id)
	if vecmath.Dot(cur.Embedding, hashEmb(16, 2, "q")) < 0.999 {
		t.Fatal("cache's current entry not migrated")
	}
}
