package cache

// Policy selects the entry to evict when the cache is full. Figure 1 lists
// a per-entry eviction policy column with LRU as the paper's default; this
// package also provides LFU and FIFO, the classic alternatives studied in
// the web-caching literature the paper builds on.
type Policy interface {
	// victim picks the entry to evict from a non-empty snapshot. Returning
	// nil disables eviction (the cache then grows past capacity).
	victim(entries []*Entry) *Entry
	// Name identifies the policy.
	Name() string
}

// LRU evicts the least-recently used entry (insertion or Touch).
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

func (LRU) victim(entries []*Entry) *Entry {
	var best *Entry
	for _, e := range entries {
		if best == nil || e.lastUsed < best.lastUsed {
			best = e
		}
	}
	return best
}

// LFU evicts the least-frequently hit entry, breaking ties by recency.
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "lfu" }

func (LFU) victim(entries []*Entry) *Entry {
	var best *Entry
	for _, e := range entries {
		if best == nil || e.hits < best.hits ||
			(e.hits == best.hits && e.lastUsed < best.lastUsed) {
			best = e
		}
	}
	return best
}

// FIFO evicts the oldest entry by insertion order regardless of use.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

func (FIFO) victim(entries []*Entry) *Entry {
	var best *Entry
	for _, e := range entries {
		if best == nil || e.seq < best.seq {
			best = e
		}
	}
	return best
}

// None disables eviction; Put grows the cache without bound.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

func (None) victim([]*Entry) *Entry { return nil }
