package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

// entryPrefix namespaces cache entry records within a store, so callers
// can keep their own records (other prefixes) in the same log.
const entryPrefix = "entry/"

// entryWire is the persistent form of an Entry.
type entryWire struct {
	ID        int
	Query     string
	Response  string
	Embedding []float32
	Parent    int
}

// SaveTo writes every live entry into st (one record per entry, keyed by
// entry ID). Existing records in st under colliding keys are overwritten;
// records for entries that no longer exist are deleted, so st mirrors the
// cache exactly after the call.
func (c *Cache) SaveTo(st *store.Store) error {
	c.mu.RLock()
	entries := make([]*Entry, len(c.entries))
	copy(entries, c.entries)
	c.mu.RUnlock()

	live := make(map[string]bool, len(entries))
	for _, e := range entries {
		key := entryKey(e.ID)
		live[key] = true
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(entryWire{
			ID: e.ID, Query: e.Query, Response: e.Response,
			Embedding: e.Embedding, Parent: e.Parent,
		}); err != nil {
			return fmt.Errorf("cache: encoding entry %d: %w", e.ID, err)
		}
		if err := st.Put(key, buf.Bytes()); err != nil {
			return fmt.Errorf("cache: persisting entry %d: %w", e.ID, err)
		}
	}
	for _, key := range st.Keys() {
		// Only entry records are pruned: the store may hold other
		// namespaces (e.g. the serving layer's per-tenant metadata).
		if strings.HasPrefix(key, entryPrefix) && !live[key] {
			if err := st.Delete(key); err != nil {
				return fmt.Errorf("cache: pruning stale record %s: %w", key, err)
			}
		}
	}
	return nil
}

// LoadFrom rebuilds a cache from records written by SaveTo. Entry IDs are
// preserved (so parent links stay valid); the next allocated ID continues
// past the maximum loaded ID. Parents are inserted before children.
func LoadFrom(st *store.Store, dim, capacity int, policy Policy) (*Cache, error) {
	c := New(dim, capacity, policy)
	if err := loadEntries(c, st, dim); err != nil {
		return nil, err
	}
	return c, nil
}

// loadEntries reads SaveTo records into c, indexing each entry into
// c.idx exactly once — callers install the index (default or external)
// before loading, so revival never builds a throwaway index.
func loadEntries(c *Cache, st *store.Store, dim int) error {
	var wires []entryWire
	for _, key := range st.Keys() {
		if !strings.HasPrefix(key, entryPrefix) {
			continue
		}
		raw, err := st.Get(key)
		if err != nil {
			return fmt.Errorf("cache: reading %s: %w", key, err)
		}
		var w entryWire
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err != nil {
			return fmt.Errorf("cache: decoding %s: %w", key, err)
		}
		if len(w.Embedding) != dim {
			return fmt.Errorf("cache: entry %d has dim %d, cache wants %d", w.ID, len(w.Embedding), dim)
		}
		wires = append(wires, w)
	}
	// Topological insert: standalone entries first, then children whose
	// parents are present; cycles or orphans are dropped with an error.
	sort.Slice(wires, func(i, j int) bool { return wires[i].ID < wires[j].ID })
	inserted := make(map[int]bool)
	pending := wires
	for len(pending) > 0 {
		var next []entryWire
		progress := false
		for _, w := range pending {
			if w.Parent != NoParent && !inserted[w.Parent] {
				next = append(next, w)
				continue
			}
			c.mu.Lock()
			e := &Entry{
				ID: w.ID, Query: w.Query, Response: w.Response,
				Embedding: w.Embedding, Parent: w.Parent,
			}
			c.clock++
			e.lastUsed = c.clock
			e.seq = c.clock
			if err := c.idx.Add(w.ID, e.Embedding); err != nil {
				c.mu.Unlock()
				return fmt.Errorf("cache: indexing loaded entry %d: %w", w.ID, err)
			}
			c.byID[w.ID] = len(c.entries)
			c.entries = append(c.entries, e)
			if w.ID >= c.nextID {
				c.nextID = w.ID + 1
			}
			c.mu.Unlock()
			inserted[w.ID] = true
			progress = true
		}
		if !progress {
			return fmt.Errorf("cache: %d entries with missing or cyclic parents", len(next))
		}
		pending = next
	}
	return nil
}

func entryKey(id int) string { return entryPrefix + strconv.Itoa(id) }
