package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomOperationsInvariants drives the cache through long random
// operation sequences and checks the structural invariants after every
// step:
//
//  1. byID is a bijection onto the entries slice,
//  2. no live entry has a dangling parent,
//  3. Len never exceeds capacity (when bounded),
//  4. Chain always terminates and is acyclic.
func TestRandomOperationsInvariants(t *testing.T) {
	for _, capacity := range []int{0, 8, 32} {
		for _, policy := range []Policy{LRU{}, LFU{}, FIFO{}} {
			name := fmt.Sprintf("cap=%d/%s", capacity, policy.Name())
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(capacity)*31 + 7))
				c := New(8, capacity, policy)
				var live []int
				for step := 0; step < 2000; step++ {
					switch op := rng.Intn(10); {
					case op < 5: // Put (sometimes as a child)
						parent := NoParent
						if len(live) > 0 && rng.Intn(3) == 0 {
							parent = live[rng.Intn(len(live))]
						}
						if _, ok := c.Get(parent); parent != NoParent && !ok {
							parent = NoParent // parent already evicted
						}
						id, err := c.Put("q", "r", unit(8, int64(step)), parent)
						if err != nil {
							t.Fatalf("step %d: Put: %v", step, err)
						}
						live = append(live, id)
					case op < 7: // Touch a random id (live or not)
						if len(live) > 0 {
							c.Touch(live[rng.Intn(len(live))])
						}
					case op < 8: // Remove a random id
						if len(live) > 0 {
							c.Remove(live[rng.Intn(len(live))])
						}
					default: // Search
						c.FindSimilar(unit(8, int64(step)), 3, 0.5)
					}
					checkInvariants(t, c, capacity, step)
				}
			})
		}
	}
}

func checkInvariants(t *testing.T, c *Cache, capacity, step int) {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.byID) != len(c.entries) {
		t.Fatalf("step %d: byID size %d != entries %d", step, len(c.byID), len(c.entries))
	}
	if capacity > 0 && len(c.entries) > capacity {
		t.Fatalf("step %d: %d entries exceed capacity %d", step, len(c.entries), capacity)
	}
	for i, e := range c.entries {
		if got, ok := c.byID[e.ID]; !ok || got != i {
			t.Fatalf("step %d: byID[%d] = %d,%v; want %d", step, e.ID, got, ok, i)
		}
		if e.Parent != NoParent {
			if _, ok := c.byID[e.Parent]; !ok {
				t.Fatalf("step %d: entry %d has dangling parent %d", step, e.ID, e.Parent)
			}
		}
	}
	// Chains terminate (acyclic) — bounded walk.
	for _, e := range c.entries {
		seen := map[int]bool{}
		cur := e
		for cur.Parent != NoParent {
			if seen[cur.ID] {
				t.Fatalf("step %d: cycle through entry %d", step, cur.ID)
			}
			seen[cur.ID] = true
			idx, ok := c.byID[cur.Parent]
			if !ok {
				break
			}
			cur = c.entries[idx]
		}
	}
}
