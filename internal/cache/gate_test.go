package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/resilience"
)

// The production gate is a resilience.Weighted; the structural interface
// must keep matching it.
var _ Gate = (*resilience.Weighted)(nil)

// recordingGate is a Gate fake that counts acquisitions and tracks peak
// concurrent hold, optionally failing every Acquire.
type recordingGate struct {
	mu       sync.Mutex
	held     int64
	maxHeld  int64
	acquires int
	releases int
	err      error
}

func (g *recordingGate) Acquire(ctx context.Context, n int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	g.acquires++
	g.held += n
	if g.held > g.maxHeld {
		g.maxHeld = g.held
	}
	return nil
}

func (g *recordingGate) Release(n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releases++
	g.held -= n
}

// TestReembedHoldsGate: one Reembed call — multi-pass internally — holds
// exactly one gate unit for its whole duration and returns it.
func TestReembedHoldsGate(t *testing.T) {
	c := New(16, 0, LRU{})
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf("gated query %d", i)
		if _, err := c.Put(q, "r", hashEmb(16, 1, q), NoParent); err != nil {
			t.Fatal(err)
		}
	}
	g := &recordingGate{}
	c.SetGate(g)
	n, err := c.Reembed(func(q string) []float32 { return hashEmb(16, 2, q) })
	if err != nil {
		t.Fatalf("Reembed: %v", err)
	}
	if n != 20 {
		t.Fatalf("reembedded %d, want 20", n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.acquires != 1 || g.releases != 1 {
		t.Fatalf("acquires=%d releases=%d, want 1/1", g.acquires, g.releases)
	}
	if g.held != 0 || g.maxHeld != 1 {
		t.Fatalf("held=%d maxHeld=%d, want 0/1", g.held, g.maxHeld)
	}
}

// TestReembedGateFailure: a gate that refuses admission aborts the
// migration before any entry is touched.
func TestReembedGateFailure(t *testing.T) {
	c := New(16, 0, LRU{})
	if _, err := c.Put("q", "r", hashEmb(16, 1, "q"), NoParent); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("gate refused")
	c.SetGate(&recordingGate{err: boom})
	n, err := c.Reembed(func(q string) []float32 { return hashEmb(16, 2, q) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if n != 0 {
		t.Fatalf("migrated %d entries through a refused gate", n)
	}
	// The cache is untouched: the original embedding still matches.
	if ms := c.FindSimilar(hashEmb(16, 1, "q"), 1, 0.999); len(ms) != 1 {
		t.Fatalf("entry lost its original embedding")
	}
}
