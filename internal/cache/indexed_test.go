package cache

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/store"
)

func TestIndexedCacheMatchesFlatCache(t *testing.T) {
	// A cache backed by a full-probe IVF (exact) must make the same
	// decisions as the built-in scan.
	flat := New(16, 0, LRU{})
	ivf := NewWithIndex(16, 0, LRU{}, index.NewIVF(16, index.IVFConfig{
		NList: 8, NProbe: 8, TrainSize: 30, Seed: 1,
	}))
	if !ivf.Indexed() || flat.Indexed() {
		t.Fatal("Indexed() wiring wrong")
	}
	for i := int64(0); i < 120; i++ {
		e := unit(16, i)
		if _, err := flat.Put(fmt.Sprintf("q%d", i), "r", e, NoParent); err != nil {
			t.Fatal(err)
		}
		if _, err := ivf.Put(fmt.Sprintf("q%d", i), "r", e, NoParent); err != nil {
			t.Fatal(err)
		}
	}
	for probe := int64(200); probe < 250; probe++ {
		p := unit(16, probe)
		a := flat.FindSimilar(p, 3, 0.2)
		b := ivf.FindSimilar(p, 3, 0.2)
		if len(a) != len(b) {
			t.Fatalf("probe %d: %d vs %d hits", probe, len(a), len(b))
		}
		for i := range a {
			if a[i].Entry.ID != b[i].Entry.ID {
				t.Fatalf("probe %d hit %d: %d vs %d", probe, i, a[i].Entry.ID, b[i].Entry.ID)
			}
		}
	}
}

func TestIndexedCacheEviction(t *testing.T) {
	c := NewWithIndex(8, 5, LRU{}, index.NewFlat(8))
	ids := make([]int, 0, 10)
	for i := int64(0); i < 10; i++ {
		id, err := c.Put("q", "r", unit(8, i), NoParent)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	// Evicted entries must be gone from the index too: searching for an
	// evicted embedding must not return it.
	for i := 0; i < 5; i++ {
		ms := c.FindSimilar(unit(8, int64(i)), 1, 0.999)
		for _, m := range ms {
			if m.Entry.ID == ids[i] {
				t.Fatalf("evicted entry %d still searchable", ids[i])
			}
		}
	}
	// Live entries remain searchable.
	for i := 5; i < 10; i++ {
		ms := c.FindSimilar(unit(8, int64(i)), 1, 0.999)
		if len(ms) != 1 || ms[0].Entry.ID != ids[i] {
			t.Fatalf("live entry %d not found", ids[i])
		}
	}
}

func TestNewWithIndexValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch accepted")
		}
	}()
	NewWithIndex(8, 0, LRU{}, index.NewFlat(9))
}

// TestIndexedCacheConcurrent hammers an IVF-backed, capacity-bounded cache
// with concurrent Put (driving eviction), FindSimilar and Remove — the
// serving-path mix the flat scan sees in production, now exercised through
// the external index so the cache-lock/index-consistency contract is
// covered under the race detector.
func TestIndexedCacheConcurrent(t *testing.T) {
	const (
		dim      = 16
		capacity = 64
		writers  = 4
		readers  = 4
		perG     = 300
	)
	c := NewWithIndex(dim, capacity, LRU{}, index.NewIVF(dim, index.IVFConfig{
		NList: 8, NProbe: 4, TrainSize: 40, Seed: 1,
	}))

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := int64(w*perG + i)
				id, err := c.Put(fmt.Sprintf("w%d-q%d", w, i), "r", unit(dim, s), NoParent)
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if i%7 == 0 {
					c.Remove(id)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ms := c.FindSimilar(unit(dim, int64(r*perG+i)), 3, 0.1)
				for _, m := range ms {
					if m.Entry == nil || len(m.Entry.Embedding) != dim {
						t.Error("FindSimilar returned a malformed match")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if c.Len() > capacity {
		t.Fatalf("Len = %d, exceeds capacity %d", c.Len(), capacity)
	}
	// Cache and index must agree on the live set: every live entry is
	// findable by its own embedding at a near-exact threshold.
	for _, e := range c.Entries() {
		ms := c.FindSimilar(e.Embedding, 1, 0.999)
		if len(ms) == 0 {
			t.Fatalf("live entry %d missing from index", e.ID)
		}
	}
}

// TestAdaptiveIndexedCacheConcurrent runs the same serving mix over an
// adaptive index with thresholds low enough that both tier promotions
// (Flat→IVF→HNSW) happen mid-traffic, with background migrations racing
// live Put/FindSimilar/Remove.
func TestAdaptiveIndexedCacheConcurrent(t *testing.T) {
	const (
		dim     = 16
		writers = 4
		readers = 4
		perG    = 300
	)
	adaptive := index.NewAdaptive(dim, index.AdaptiveConfig{
		FlatMax: 100, IVFMax: 400,
		IVF:  index.IVFConfig{NList: 8, NProbe: 8, Seed: 1},
		HNSW: index.HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 64, Seed: 1},
	})
	c := NewWithIndex(dim, 0, LRU{}, adaptive)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s := int64(w*perG + i)
				id, err := c.Put(fmt.Sprintf("w%d-q%d", w, i), "r", unit(dim, s), NoParent)
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if i%9 == 0 {
					c.Remove(id)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for _, m := range c.FindSimilar(unit(dim, int64(r*perG+i)), 3, 0.1) {
					if m.Entry == nil || len(m.Entry.Embedding) != dim {
						t.Error("FindSimilar returned a malformed match")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	adaptive.WaitMigration()

	if got := adaptive.Tier(); got != "hnsw" {
		t.Fatalf("tier = %s after %d puts, want hnsw", got, writers*perG)
	}
	if c.Len() != adaptive.Len() {
		t.Fatalf("cache Len %d != index Len %d", c.Len(), adaptive.Len())
	}
	for _, e := range c.Entries() {
		if ms := c.FindSimilar(e.Embedding, 1, 0.999); len(ms) == 0 {
			t.Fatalf("live entry %d missing from promoted index", e.ID)
		}
	}
}

// TestLoadFromWithIndex covers the indexed-tenant revival path: a saved
// cache reloaded onto a fresh index must have every entry searchable
// through it.
func TestLoadFromWithIndex(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "cache.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := New(8, 0, LRU{})
	ids := make([]int, 20)
	for i := int64(0); i < 20; i++ {
		id, err := c.Put(fmt.Sprintf("q%d", i), "r", unit(8, i), NoParent)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := c.SaveTo(st); err != nil {
		t.Fatal(err)
	}

	revived, err := LoadFromWithIndex(st, 8, 0, LRU{},
		index.NewHNSW(8, index.HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 40, Seed: 2}))
	if err != nil {
		t.Fatalf("LoadFromWithIndex: %v", err)
	}
	if !revived.Indexed() || revived.Len() != 20 {
		t.Fatalf("revived: Indexed=%v Len=%d", revived.Indexed(), revived.Len())
	}
	for i := int64(0); i < 20; i++ {
		ms := revived.FindSimilar(unit(8, i), 1, 0.999)
		if len(ms) != 1 || ms[0].Entry.ID != ids[i] {
			t.Fatalf("revived entry %d not searchable through the index", ids[i])
		}
	}

	// Error paths: wrong dimension, pre-populated index.
	if _, err := LoadFromWithIndex(st, 8, 0, LRU{}, index.NewFlat(9)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	used := index.NewFlat(8)
	used.Add(1, unit(8, 1))
	if _, err := LoadFromWithIndex(st, 8, 0, LRU{}, used); err == nil {
		t.Fatal("non-empty index accepted")
	}
}
