package cache

import "context"

// Gate bounds background maintenance work so it yields to foreground
// traffic: re-embedding migrations acquire one unit for their whole
// duration. The interface is structural — resilience.Weighted satisfies
// it — so the cache stays free of resilience imports and tests can
// substitute a recording fake. A nil gate means ungated (the default).
type Gate interface {
	// Acquire blocks until n units are available or ctx is done.
	Acquire(ctx context.Context, n int64) error
	// Release returns n units.
	Release(n int64)
}

// SetGate installs the maintenance gate consulted by Reembed. Call it
// during construction, before the cache is shared; a nil gate disables
// gating.
func (c *Cache) SetGate(g Gate) {
	c.mu.Lock()
	c.gate = g
	c.mu.Unlock()
}

// maintenanceGate returns the installed gate (nil = ungated).
func (c *Cache) maintenanceGate() Gate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gate
}
