// Package cache implements the local semantic cache of Figure 1: entries
// holding a query, its LLM response, the query embedding, and the context
// chain (parent entry), with cosine-similarity search over the embeddings,
// a pluggable eviction policy, and optional persistence via internal/store.
//
// The cache is encoder-agnostic: it stores whatever unit-norm vectors it is
// given, so the same index serves raw 768-d embeddings and PCA-compressed
// 64-d embeddings (§III-A.4). Context semantics (matching a submitted
// conversation against a cached chain) live in internal/core; the cache
// only records and exposes chains.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/vecmath"
)

// NoParent marks a standalone entry (empty context chain).
const NoParent = -1

// Entry is one cached query/response with its embedding and chain link.
type Entry struct {
	ID        int
	Query     string
	Response  string
	Embedding []float32 // unit norm, dimension fixed per cache
	Parent    int       // entry ID of the conversational parent, or NoParent

	// eviction bookkeeping
	lastUsed int64
	hits     int
	seq      int64 // insertion order
}

// Match is a search result: a cached entry and its cosine similarity to
// the probe embedding.
type Match struct {
	Entry *Entry
	Score float32
}

// Cache is an in-memory semantic cache, safe for concurrent use.
type Cache struct {
	mu       sync.RWMutex
	dim      int
	capacity int // 0 = unbounded
	policy   Policy

	entries []*Entry    // dense scan order
	byID    map[int]int // entry ID -> index in entries
	nextID  int
	clock   int64
	// idx owns similarity search. New installs the slab-backed exact
	// index.Flat; NewWithIndex substitutes an approximate index for very
	// large caches (external = true).
	idx      index.Index
	external bool

	// hitBufs recycles the []index.Hit scratch FindSimilarAppend hands
	// to the index, so a warmed search allocates nothing but its result.
	hitBufs sync.Pool
	// multiBufs recycles the per-probe hit matrix FindSimilarMultiAppend
	// hands to the index, for the same reason.
	multiBufs sync.Pool

	// gate, when non-nil, bounds background maintenance (Reembed) so
	// migrations yield to foreground traffic under pressure.
	gate Gate

	// Lifetime counters; searches/hits are atomic because FindSimilar
	// runs under the read lock.
	puts, evictions int
	searches, hits  atomic.Int64
}

// Stats counts cache operations.
type Stats struct {
	Puts      int
	Searches  int
	Hits      int // searches that returned at least one match
	Evictions int
}

// New creates a cache for embeddings of the given dimension. capacity
// bounds the entry count (0 = unbounded); policy picks the eviction victim
// when full. Similarity search runs on the slab-backed exact index
// (index.Flat) — one search implementation serves every cache size.
//
// Each embedding is stored twice: Entry.Embedding is an immutable
// per-entry copy (stale *Entry holders — context-chain checks, in-flight
// match results — must keep seeing a consistent snapshot, and persistence
// and re-embedding read it), while the index keeps its own copy in the
// scan arena, where swap-deletes move rows freely. EmbeddingBytes reports
// the entry-side copy only — the quantity Figure 10a tracks.
func New(dim, capacity int, policy Policy) *Cache {
	if dim <= 0 {
		panic("cache: dim must be positive")
	}
	return &Cache{
		dim:      dim,
		capacity: capacity,
		policy:   policy,
		byID:     make(map[int]int),
		idx:      index.NewFlat(dim),
	}
}

// Dim reports the embedding dimensionality.
func (c *Cache) Dim() int { return c.dim }

// Capacity reports the configured entry bound (0 = unbounded).
func (c *Cache) Capacity() int { return c.capacity }

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// ServingTier reports which index tier currently answers FindSimilar
// searches ("flat" for the built-in exact scan; index.Adaptive reports
// whichever tier it has promoted to), or "" when the installed index
// does not name one. The index never changes after construction and
// TierNamer implementations synchronise internally, so no cache lock is
// taken — this is safe on the query hot path.
func (c *Cache) ServingTier() string {
	if tn, ok := c.idx.(index.TierNamer); ok {
		return tn.Tier()
	}
	return ""
}

// ArenaStats reports the backing index's storage occupancy (zero value
// when the index does not expose it).
func (c *Cache) ArenaStats() index.ArenaStats {
	if rep, ok := c.idx.(index.ArenaReporter); ok {
		return rep.ArenaStats()
	}
	return index.ArenaStats{}
}

// Stats returns a snapshot of the operation counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Puts:      c.puts,
		Searches:  int(c.searches.Load()),
		Hits:      int(c.hits.Load()),
		Evictions: c.evictions,
	}
}

// Put inserts a query/response with its embedding and parent link,
// returning the new entry's ID. The embedding must have the cache's
// dimension; parent must be NoParent or a live entry ID. If the cache is
// full, the eviction policy selects a victim first (cascading to the
// victim's descendants so no chain ever dangles).
func (c *Cache) Put(query, response string, emb []float32, parent int) (int, error) {
	if len(emb) != c.dim {
		return 0, fmt.Errorf("cache: embedding dim %d, want %d", len(emb), c.dim)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if parent != NoParent {
		if _, ok := c.byID[parent]; !ok {
			return 0, fmt.Errorf("cache: parent entry %d not found", parent)
		}
	}
	if c.capacity > 0 {
		// The new entry's whole ancestor chain is protected: evicting any
		// ancestor would cascade through the parent and leave the new
		// entry's chain dangling.
		protected := c.ancestorSet(parent)
		for len(c.entries) >= c.capacity {
			victim := c.policy.victim(c.entries)
			if victim == nil {
				break
			}
			if protected[victim.ID] {
				victim = c.oldestExcluding(protected)
				if victim == nil {
					break // every entry is an ancestor: grow past capacity
				}
			}
			c.removeCascade(victim.ID)
		}
	}
	id := c.nextID
	c.nextID++
	c.clock++
	e := &Entry{
		ID:        id,
		Query:     query,
		Response:  response,
		Embedding: vecmath.Clone(emb),
		Parent:    parent,
		lastUsed:  c.clock,
		seq:       c.clock,
	}
	c.byID[id] = len(c.entries)
	c.entries = append(c.entries, e)
	if c.idx != nil {
		if err := c.idx.Add(id, e.Embedding); err != nil {
			// Roll back the entry so cache and index stay consistent.
			c.entries = c.entries[:len(c.entries)-1]
			delete(c.byID, id)
			return 0, fmt.Errorf("cache: indexing entry: %w", err)
		}
	}
	c.puts++
	return id, nil
}

// ancestorSet returns id plus all its ancestors; empty for NoParent.
// Callers hold the write lock.
func (c *Cache) ancestorSet(id int) map[int]bool {
	set := make(map[int]bool)
	for id != NoParent {
		if set[id] {
			break // defensive: a cycle would otherwise loop forever
		}
		set[id] = true
		idx, ok := c.byID[id]
		if !ok {
			break
		}
		id = c.entries[idx].Parent
	}
	return set
}

func (c *Cache) oldestExcluding(protected map[int]bool) *Entry {
	var best *Entry
	for _, e := range c.entries {
		if protected[e.ID] {
			continue
		}
		if best == nil || e.seq < best.seq {
			best = e
		}
	}
	return best
}

// Get returns the entry with the given ID.
func (c *Cache) Get(id int) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	return c.entries[idx], true
}

// Touch records a cache hit on id for the eviction policy.
func (c *Cache) Touch(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx, ok := c.byID[id]; ok {
		c.clock++
		c.entries[idx].lastUsed = c.clock
		c.entries[idx].hits++
	}
}

// Remove deletes the entry and, transitively, every entry whose chain
// passes through it, so context chains never dangle.
func (c *Cache) Remove(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeCascade(id)
}

func (c *Cache) removeCascade(id int) {
	if _, ok := c.byID[id]; !ok {
		return
	}
	// Collect descendants breadth-first.
	doomed := map[int]bool{id: true}
	for changed := true; changed; {
		changed = false
		for _, e := range c.entries {
			if e.Parent != NoParent && doomed[e.Parent] && !doomed[e.ID] {
				doomed[e.ID] = true
				changed = true
			}
		}
	}
	for did := range doomed {
		idx, ok := c.byID[did]
		if !ok {
			continue
		}
		last := len(c.entries) - 1
		moved := c.entries[last]
		c.entries[idx] = moved
		c.byID[moved.ID] = idx
		c.entries = c.entries[:last]
		delete(c.byID, did)
		if c.idx != nil {
			c.idx.Remove(did)
		}
		c.evictions++
	}
}

// Chain returns the ancestors of id, oldest first, excluding id itself.
// A standalone entry yields an empty chain.
func (c *Cache) Chain(id int) []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var rev []*Entry
	cur, ok := c.byID[id]
	if !ok {
		return nil
	}
	e := c.entries[cur]
	for e.Parent != NoParent {
		idx, ok := c.byID[e.Parent]
		if !ok {
			break
		}
		e = c.entries[idx]
		rev = append(rev, e)
	}
	// Reverse to oldest-first.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// FindSimilar returns up to k entries whose cosine similarity with emb is
// at least tau, best first. This is the FindSimilarQueriesinCache step of
// Algorithm 1.
func (c *Cache) FindSimilar(emb []float32, k int, tau float32) []Match {
	return c.FindSimilarAppend(emb, k, tau, nil)
}

// searchAppender is the allocation-free search surface index.Flat
// exposes: hits are appended into a caller-owned buffer.
type searchAppender interface {
	SearchAppend(vec []float32, k int, tau float32, dst []index.Hit) []index.Hit
}

// FindSimilarAppend is FindSimilar appending into dst — the pooled-buffer
// form the serving hot path uses. With a dst of sufficient capacity and
// the exact index attached, a warmed call performs no heap allocation.
func (c *Cache) FindSimilarAppend(emb []float32, k int, tau float32, dst []Match) []Match {
	if len(emb) != c.dim {
		panic(fmt.Sprintf("cache: FindSimilar dim %d, want %d", len(emb), c.dim))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.searches.Add(1)
	if len(c.entries) == 0 || k <= 0 {
		return dst
	}
	buf, _ := c.hitBufs.Get().(*[]index.Hit)
	if buf == nil {
		buf = new([]index.Hit)
	}
	var hits []index.Hit
	if sa, ok := c.idx.(searchAppender); ok {
		hits = sa.SearchAppend(emb, k, tau, (*buf)[:0])
	} else {
		hits = append((*buf)[:0], c.idx.Search(emb, k, tau)...)
	}
	before := len(dst)
	for _, h := range hits {
		if pos, ok := c.byID[h.ID]; ok {
			dst = append(dst, Match{Entry: c.entries[pos], Score: h.Score})
		}
	}
	*buf = hits[:0]
	c.hitBufs.Put(buf)
	if len(dst) > before {
		c.hits.Add(1)
	}
	return dst
}

// Searcher abstracts how a lookup runs its similarity search against a
// tenant cache. The default implementation calls FindSimilarAppend
// directly; a batching implementation may coalesce concurrent searches
// against the same cache into one FindSimilarMultiAppend pass. Whatever
// the route, the matches delivered for a probe must be exactly what
// FindSimilarAppend would have returned.
type Searcher interface {
	FindSimilar(c *Cache, emb []float32, k int, tau float32, dst []Match) []Match
}

// DirectSearcher is the pass-through Searcher: every probe runs its own
// FindSimilarAppend call.
type DirectSearcher struct{}

// FindSimilar implements Searcher.
func (DirectSearcher) FindSimilar(c *Cache, emb []float32, k int, tau float32, dst []Match) []Match {
	return c.FindSimilarAppend(emb, k, tau, dst)
}

// multiScratch is the pooled working set for FindSimilarMultiAppend: one
// reusable []index.Hit per probe slot.
type multiScratch struct {
	bufs [][]index.Hit
}

// FindSimilarMultiAppend runs one similarity search per row of probes,
// appending row p's matches into dsts[p]. Results are bit-identical to m
// sequential FindSimilarAppend calls — same entries, same scores, same
// order — and the hit/search counters advance exactly as m sequential
// calls would. What batching buys is one lock acquisition and, when the
// index implements index.MultiSearcher, one shared slab pass across all
// probes instead of m independent scans.
//
// len(dsts) must be at least probes.Rows; rows beyond probes.Rows are
// left untouched.
func (c *Cache) FindSimilarMultiAppend(probes *vecmath.Matrix, k int, tau float32, dsts [][]Match) {
	if probes.Cols != c.dim {
		panic(fmt.Sprintf("cache: FindSimilarMulti dim %d, want %d", probes.Cols, c.dim))
	}
	m := probes.Rows
	if m == 0 {
		return
	}
	if len(dsts) < m {
		panic(fmt.Sprintf("cache: FindSimilarMulti dsts len %d, want >= %d", len(dsts), m))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.searches.Add(int64(m))
	if len(c.entries) == 0 || k <= 0 {
		return
	}
	sc, _ := c.multiBufs.Get().(*multiScratch)
	if sc == nil {
		sc = &multiScratch{}
	}
	for len(sc.bufs) < m {
		sc.bufs = append(sc.bufs, nil)
	}
	bufs := sc.bufs[:m]
	for p := range bufs {
		bufs[p] = bufs[p][:0]
	}
	if ms, ok := c.idx.(index.MultiSearcher); ok {
		ms.MultiSearchAppend(probes, k, tau, bufs)
	} else if sa, ok := c.idx.(searchAppender); ok {
		for p := 0; p < m; p++ {
			bufs[p] = sa.SearchAppend(probes.Row(p), k, tau, bufs[p])
		}
	} else {
		for p := 0; p < m; p++ {
			bufs[p] = append(bufs[p], c.idx.Search(probes.Row(p), k, tau)...)
		}
	}
	for p := 0; p < m; p++ {
		dst := dsts[p]
		before := len(dst)
		for _, h := range bufs[p] {
			if pos, ok := c.byID[h.ID]; ok {
				dst = append(dst, Match{Entry: c.entries[pos], Score: h.Score})
			}
		}
		if len(dst) > before {
			c.hits.Add(1)
		}
		dsts[p] = dst
	}
	c.multiBufs.Put(sc)
}

// EmbeddingBytes reports the memory consumed by stored embeddings (4 bytes
// per float32 element) — the quantity Figure 10a tracks.
func (c *Cache) EmbeddingBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	for _, e := range c.entries {
		total += int64(len(e.Embedding)) * 4
	}
	return total
}

// StorageBytes reports total cache storage: embeddings plus query and
// response text.
func (c *Cache) StorageBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	for _, e := range c.entries {
		total += int64(len(e.Embedding))*4 + int64(len(e.Query)) + int64(len(e.Response))
	}
	return total
}

// Entries returns a snapshot slice of all live entries in unspecified
// order. The entries are shared; callers must not mutate them.
func (c *Cache) Entries() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	return out
}
