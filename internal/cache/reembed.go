package cache

import (
	"context"
	"fmt"

	"repro/internal/vecmath"
)

// Reembed recomputes every entry's embedding with encode — the hot-rollout
// path of the online FL loop: after a new global encoder is swapped in,
// cached entries must move to the new embedding space or probes (encoded
// with the new model) would be compared against stale vectors.
//
// The cache stays fully serviceable throughout: embeddings are computed
// outside the lock and applied in short write-locked batches, so searches
// and inserts interleave with the migration. Entries inserted while a pass
// runs are picked up by a follow-up pass (they may have been encoded with
// the outgoing model during the swap window); re-encoding an entry that
// already carries the new embedding is harmless, and the pass count is
// bounded, so a write-heavy cache cannot livelock the migration.
//
// When a maintenance Gate is installed (SetGate), the whole migration
// holds one unit of it, so concurrent re-embeds across tenants — and
// other gated background work — are bounded instead of competing with
// foreground traffic for every core at once.
//
// Reembed returns the number of embeddings replaced. It errors if encode
// produces vectors of the wrong dimension (the rollout path only swaps
// same-architecture models, so dimensions are stable).
func (c *Cache) Reembed(encode func(string) []float32) (int, error) {
	if g := c.maintenanceGate(); g != nil {
		if err := g.Acquire(context.Background(), 1); err != nil {
			return 0, fmt.Errorf("cache: reembed gate: %w", err)
		}
		defer g.Release(1)
	}
	type item struct {
		id    int
		query string
	}
	const (
		maxPasses  = 4   // bounds work under sustained concurrent inserts
		applyChunk = 256 // entries applied per write-lock acquisition
	)
	done := make(map[int]bool)
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		// Snapshot entries not yet migrated.
		c.mu.RLock()
		var items []item
		for _, e := range c.entries {
			if !done[e.ID] {
				items = append(items, item{e.ID, e.Query})
			}
		}
		c.mu.RUnlock()
		if len(items) == 0 {
			break
		}

		// Encode outside any lock; encoders are concurrency-safe. Worker
		// errors land in per-item slots (no shared error write).
		embs := make([][]float32, len(items))
		vecmath.ParallelFor(len(items), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if v := encode(items[i].query); len(v) == c.dim {
					embs[i] = v
				}
			}
		})
		for i := range embs {
			if embs[i] == nil {
				return total, fmt.Errorf("cache: reembed produced wrong dimension for entry %d (want %d)", items[i].id, c.dim)
			}
		}

		// Apply in bounded batches so searches interleave. Each migrated
		// entry is REPLACED by a copy rather than mutated: callers hold
		// *Entry pointers beyond the cache lock (context-chain checks,
		// in-flight match results), so the old entry must stay immutable —
		// stale readers see a consistent old snapshot, never a torn write.
		for lo := 0; lo < len(items); lo += applyChunk {
			hi := min(lo+applyChunk, len(items))
			c.mu.Lock()
			for i := lo; i < hi; i++ {
				it := items[i]
				done[it.id] = true
				pos, ok := c.byID[it.id]
				if !ok {
					continue // evicted while we encoded
				}
				ne := *c.entries[pos]
				ne.Embedding = embs[i]
				c.entries[pos] = &ne
				if c.idx != nil {
					c.idx.Remove(it.id)
					if err := c.idx.Add(it.id, ne.Embedding); err != nil {
						c.mu.Unlock()
						return total, fmt.Errorf("cache: reindexing entry %d: %w", it.id, err)
					}
				}
				total++
			}
			c.mu.Unlock()
		}
	}
	return total, nil
}
