package dataset

import (
	"math/rand"
	"strconv"
	"strings"
)

// CtxQuery is a query together with its conversational context: the texts
// of its ancestor queries, oldest first. A standalone query has an empty
// Context. DupOf indexes the cached entry this query duplicates (same
// intent AND same context chain), or -1.
type CtxQuery struct {
	Text    string
	Context []string
	DupOf   int
}

// ContextualWorkload is the §IV-C protocol: 200 cached queries (100
// standalone + their 100 follow-ups), then 250 probes — 75 standalone
// duplicates, 75 contextual duplicates, and 100 non-duplicates of which a
// large share are follow-ups under a *different* parent. Those
// context-mismatched follow-ups are lexically near-identical to cached
// follow-ups, which is exactly what defeats a cache that ignores context.
type ContextualWorkload struct {
	Cached []CtxQuery
	Probes []CtxQuery
}

// followUpTemplates are generic follow-up intents (like the paper's
// "Change the color to red"): the same follow-up phrasing is meaningful
// under many different parents, so context is the only disambiguator.
// Each template has synonym slots resolved by the generator's lexicon.
var followUpTemplates = []string{
	"change the color to red",
	"make it bigger",
	"now do the opposite",
	"add a title to it",
	"convert it to json",
	"explain that in simpler terms",
	"give me an example",
	"can you shorten it",
	"translate it to french",
	"what about on windows",
	"show the code for that",
	"make it faster",
	"remove the last part",
	"use a different approach",
	"why does that work",
}

// realizeFollowUp renders template variant v (0 = canonical) by light
// paraphrase: swapping the opening word set. Variants of the same template
// index are duplicates of each other under the same parent.
func realizeFollowUp(template string, v int, rng *rand.Rand) string {
	if v == 0 {
		return template
	}
	openers := []string{"please", "ok now", "next", "could you", "also"}
	return openers[rng.Intn(len(openers))] + " " + template
}

// GenerateContextualWorkload builds the §IV-C dataset: nConv standalone
// conversations each with one follow-up (cache population), then the probe
// mix. With nConv=100 this reproduces the paper's 450-query dataset:
// 200 cached + 250 probes.
func GenerateContextualWorkload(cfg CorpusConfig, nConv int) *ContextualWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed + 2000))
	gen := NewGenerator(cfg, rng)
	w := &ContextualWorkload{}

	// Cache population: standalone parents and their follow-ups.
	parents := make([]Intent, nConv)
	parentTexts := make([]string, nConv)
	followIdx := make([]int, nConv) // template index per conversation
	for i := 0; i < nConv; i++ {
		parents[i] = gen.NewIntent(i)
		parentTexts[i] = gen.Realize(parents[i])
		w.Cached = append(w.Cached, CtxQuery{Text: parentTexts[i], DupOf: -1})
	}
	for i := 0; i < nConv; i++ {
		followIdx[i] = rng.Intn(len(followUpTemplates))
		w.Cached = append(w.Cached, CtxQuery{
			Text:    realizeFollowUp(followUpTemplates[followIdx[i]], 0, rng),
			Context: []string{parentTexts[i]},
			DupOf:   -1,
		})
	}

	nDupStandalone := nConv * 3 / 4
	nDupCtx := nConv * 3 / 4
	nNonDup := nConv

	// Standalone duplicates: new realisations of cached parents.
	perm := rng.Perm(nConv)
	for i := 0; i < nDupStandalone; i++ {
		p := perm[i]
		w.Probes = append(w.Probes, CtxQuery{Text: gen.Realize(parents[p]), DupOf: p})
	}
	// Contextual duplicates: same follow-up under the same parent (the
	// submitted context is a fresh realisation of the same parent intent).
	perm = rng.Perm(nConv)
	for i := 0; i < nDupCtx; i++ {
		p := perm[i]
		w.Probes = append(w.Probes, CtxQuery{
			Text:    realizeFollowUp(followUpTemplates[followIdx[p]], 1+rng.Intn(3), rng),
			Context: []string{gen.Realize(parents[p])},
			DupOf:   nConv + p,
		})
	}
	// Non-duplicates. Half are context-mismatched follow-ups: the same
	// follow-up text as a cached entry but under a brand-new parent (the
	// paper's Q4 example) — these must miss, and they are what defeats a
	// context-blind cache. The rest are fresh standalone queries; unlike
	// the standalone workload they carry no adversarial hard negatives,
	// matching the paper's GPT-4-generated non-duplicates.
	for i := 0; i < nNonDup; i++ {
		if i%2 == 0 {
			tpl := followIdx[rng.Intn(nConv)]
			freshParent := gen.NewIntent(-1)
			w.Probes = append(w.Probes, CtxQuery{
				Text:    realizeFollowUp(followUpTemplates[tpl], rng.Intn(4), rng),
				Context: []string{gen.Realize(freshParent)},
				DupOf:   -1,
			})
		} else {
			w.Probes = append(w.Probes, CtxQuery{Text: gen.Realize(gen.NewIntent(-1)), DupOf: -1})
		}
	}
	rng.Shuffle(len(w.Probes), func(a, b int) { w.Probes[a], w.Probes[b] = w.Probes[b], w.Probes[a] })
	return w
}

// Size reports total queries (cached + probes), 450 for the paper's
// configuration.
func (w *ContextualWorkload) Size() int { return len(w.Cached) + len(w.Probes) }

// String summarises the workload composition for logs.
func (w *ContextualWorkload) String() string {
	var b strings.Builder
	dups := 0
	for _, p := range w.Probes {
		if p.DupOf >= 0 {
			dups++
		}
	}
	b.WriteString("contextual workload: ")
	b.WriteString(strconv.Itoa(len(w.Cached)))
	b.WriteString(" cached, ")
	b.WriteString(strconv.Itoa(len(w.Probes)))
	b.WriteString(" probes (")
	b.WriteString(strconv.Itoa(dups))
	b.WriteString(" dup)")
	return b.String()
}
