package dataset

import (
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// Synthetic embedding-space corpora for the index benchmarks and the
// loadgen ann scenario: real query embeddings cluster by intent, so the
// generators below place unit vectors around well-separated anchors with
// a dimension-independent cluster tightness.

// RandomUnit draws a uniformly random unit vector.
func RandomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	if vecmath.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

// PerturbUnit returns a unit vector near v: Gaussian noise with TOTAL
// expected norm ≈ spread (per-coordinate σ = spread/√dim), so the
// perturbation magnitude — and the difficulty of telling neighbors
// apart — does not grow with dimensionality.
func PerturbUnit(rng *rand.Rand, v []float32, spread float64) []float32 {
	sigma := spread / math.Sqrt(float64(len(v)))
	out := vecmath.Clone(v)
	for i := range out {
		out[i] += float32(rng.NormFloat64() * sigma)
	}
	if vecmath.Normalize(out) == 0 {
		out[0] = 1
	}
	return out
}

// ClusteredVectors generates n unit vectors around nc random anchors
// (round-robin assignment), each perturbed with total noise norm ≈
// spread. This is the geometry IVF's k-means and HNSW's diversity
// heuristic are designed for.
func ClusteredVectors(rng *rand.Rand, n, nc, dim int, spread float64) [][]float32 {
	if nc < 1 {
		nc = 1
	}
	anchors := make([][]float32, nc)
	for i := range anchors {
		anchors[i] = RandomUnit(rng, dim)
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = PerturbUnit(rng, anchors[i%nc], spread)
	}
	return out
}
