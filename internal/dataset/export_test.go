package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	c := GenerateCorpus(smallConfig())
	var buf bytes.Buffer
	if err := ExportCorpus(&buf, c); err != nil {
		t.Fatalf("Export: %v", err)
	}
	c2, err := ImportCorpus(&buf)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if len(c2.Train) != len(c.Train) || len(c2.Val) != len(c.Val) || len(c2.Test) != len(c.Test) {
		t.Fatalf("split sizes changed: %d/%d/%d vs %d/%d/%d",
			len(c2.Train), len(c2.Val), len(c2.Test),
			len(c.Train), len(c.Val), len(c.Test))
	}
	for i := range c.Train {
		if c.Train[i] != c2.Train[i] {
			t.Fatalf("train pair %d changed: %+v vs %+v", i, c.Train[i], c2.Train[i])
		}
	}
}

func TestImportRejectsBadSplit(t *testing.T) {
	in := strings.NewReader(`{"a":"x","b":"y","dup":true,"split":"bogus"}`)
	if _, err := ImportCorpus(in); err == nil {
		t.Fatal("bad split accepted")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportCorpus(strings.NewReader("not json at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestImportEmpty(t *testing.T) {
	c, err := ImportCorpus(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty import: %v", err)
	}
	if len(c.Train)+len(c.Val)+len(c.Test) != 0 {
		t.Fatal("empty input produced pairs")
	}
}
