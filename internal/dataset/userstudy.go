package dataset

import "math/rand"

// participantCounts reproduces Figure 4 of the paper: the total and
// duplicate query counts of the 20 ChatGPT-user study participants
// (professors, developers, graduate students), over 27K queries in all.
var participantCounts = []struct{ Total, Dup int }{
	{1571, 573}, {457, 194}, {428, 144}, {180, 61}, {2530, 798},
	{1531, 547}, {427, 132}, {2647, 700}, {1480, 404}, {119, 54},
	{3367, 1269}, {91, 19}, {345, 120}, {116, 18}, {352, 88},
	{3710, 1247}, {242, 58}, {466, 83}, {104, 36}, {6984, 2850},
}

// ParticipantStream is one participant's query stream. IntentIDs carries
// the ground-truth intent of each query; a query is a duplicate if its
// intent appeared earlier in the stream (matching the study's local
// analysis scripts, which counted resubmissions).
type ParticipantStream struct {
	Queries   []string
	IntentIDs []int
}

// StudyResult is the aggregated, privacy-preserving output of the study:
// per-participant totals only, as in the paper (raw queries never leave
// the participant in §III-C; here they never leave the generator).
type StudyResult struct {
	Totals     []int
	Duplicates []int
}

// MeanDupRatio returns the mean per-participant duplicate fraction.
func (r *StudyResult) MeanDupRatio() float64 {
	if len(r.Totals) == 0 {
		return 0
	}
	var sum float64
	for i := range r.Totals {
		if r.Totals[i] > 0 {
			sum += float64(r.Duplicates[i]) / float64(r.Totals[i])
		}
	}
	return sum / float64(len(r.Totals))
}

// GenerateUserStudy synthesises the 20 participant streams with the
// published per-participant totals and duplicate counts. Duplicate queries
// are fresh realisations of intents the participant already queried,
// placed uniformly after their first occurrence.
func GenerateUserStudy(cfg CorpusConfig) []ParticipantStream {
	rng := rand.New(rand.NewSource(cfg.Seed + 3000))
	gen := NewGenerator(cfg, rng)
	streams := make([]ParticipantStream, len(participantCounts))
	nextIntent := 0
	for p, counts := range participantCounts {
		unique := counts.Total - counts.Dup
		// Positions of duplicate queries: anywhere after index 0.
		isDup := make([]bool, counts.Total)
		placed := 0
		for placed < counts.Dup {
			pos := 1 + rng.Intn(counts.Total-1)
			if !isDup[pos] {
				isDup[pos] = true
				placed++
			}
		}
		stream := ParticipantStream{
			Queries:   make([]string, 0, counts.Total),
			IntentIDs: make([]int, 0, counts.Total),
		}
		var seen []Intent
		for i := 0; i < counts.Total; i++ {
			var it Intent
			if isDup[i] && len(seen) > 0 {
				it = seen[rng.Intn(len(seen))]
			} else {
				it = gen.NewIntent(nextIntent)
				nextIntent++
				seen = append(seen, it)
			}
			stream.Queries = append(stream.Queries, gen.Realize(it))
			stream.IntentIDs = append(stream.IntentIDs, it.ID)
		}
		// Exactness check is deferred to AnalyzeStudy; unique count is
		// implied: len(seen) == unique.
		_ = unique
		streams[p] = stream
	}
	return streams
}

// AnalyzeStudy runs the participants' local analysis: count, per stream,
// the queries whose intent occurred earlier. Only aggregates are returned.
func AnalyzeStudy(streams []ParticipantStream) *StudyResult {
	res := &StudyResult{
		Totals:     make([]int, len(streams)),
		Duplicates: make([]int, len(streams)),
	}
	for i, s := range streams {
		seen := make(map[int]bool)
		for _, id := range s.IntentIDs {
			if seen[id] {
				res.Duplicates[i]++
			}
			seen[id] = true
		}
		res.Totals[i] = len(s.Queries)
	}
	return res
}

// PublishedStudyResult returns the paper's Figure 4 numbers directly, used
// by tests to confirm the generator reproduces them.
func PublishedStudyResult() *StudyResult {
	res := &StudyResult{}
	for _, c := range participantCounts {
		res.Totals = append(res.Totals, c.Total)
		res.Duplicates = append(res.Duplicates, c.Dup)
	}
	return res
}
