// Package dataset generates the synthetic corpora that stand in for the
// paper's data dependencies: the GPTCache duplicate-query benchmark
// (Quora-style paraphrase pairs), the 450-query GPT-4-generated contextual
// dataset of §IV-C, and the 20-participant ChatGPT usage study of §III-C.
//
// The central construct is a seeded generative grammar over *intents*. An
// intent is a sequence of concept slots plus filler words; each concept has
// several synonym surface forms. Two realisations of the same intent are a
// duplicate pair (semantically equal, lexically different); realisations of
// different intents are non-duplicates, with controllable concept overlap to
// produce hard negatives. This reproduces the two properties every
// experiment relies on: paraphrases that keyword matching misses, and
// confusable non-pairs that stress precision.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// seedLexicon is a hand-written set of synonym groups spanning the domains
// the paper's examples use (tech support, plotting, science, cooking). The
// generator extends it with pseudo-word groups to reach the configured
// concept count, so examples read naturally while the corpus scales.
var seedLexicon = [][]string{
	{"increase", "extend", "boost", "improve"},
	{"battery", "power", "charge"},
	{"phone", "smartphone", "handset", "device"},
	{"draw", "plot", "sketch", "render"},
	{"line", "curve", "trace"},
	{"graph", "chart", "figure", "diagram"},
	{"python", "matplotlib"},
	{"color", "hue", "shade"},
	{"explain", "describe", "clarify"},
	{"quickly", "rapidly", "fast"},
	{"remove", "delete", "erase", "drop"},
	{"create", "make", "build", "construct"},
	{"sort", "order", "arrange", "rank"},
	{"list", "array", "sequence"},
	{"reduce", "decrease", "lower", "shrink"},
	{"cost", "price", "expense"},
	{"recipe", "instructions", "directions"},
	{"chocolate", "cocoa"},
	{"cake", "dessert", "pastry"},
	{"install", "setup", "configure"},
	{"server", "host", "machine"},
	{"network", "internet", "connection"},
	{"fix", "repair", "resolve", "debug"},
	{"error", "bug", "fault", "failure"},
	{"learn", "study", "master"},
	{"language", "tongue", "dialect"},
	{"travel", "journey", "trip"},
	{"cheap", "affordable", "inexpensive", "budget"},
	{"summary", "overview", "synopsis", "digest"},
	{"document", "file", "paper"},
	{"convert", "transform", "translate"},
	{"image", "picture", "photo"},
	{"resize", "rescale", "downscale"},
	{"weather", "forecast", "climate"},
	{"tomorrow", "later"},
	{"capital", "metropolis"},
	{"france", "paris"},
	{"energy", "fuel", "electricity"},
	{"save", "store", "persist", "keep"},
	{"money", "cash", "funds", "savings"},
}

// fillerWords are connective tokens shared across realisations. They make
// unrelated queries lexically overlap the way real natural-language queries
// do, which is what stresses the precision of semantic matching.
var fillerWords = []string{
	"how", "what", "the", "my", "of", "for", "a", "to", "in", "is",
	"can", "do", "best", "way", "me",
}

// questionPrefixes open a realisation, giving queries a natural query shape.
var questionPrefixes = [][]string{
	{"how", "can", "i"},
	{"how", "do", "i"},
	{"what", "is", "the", "best", "way", "to"},
	{"tips", "for"},
	{"please"},
	{"whats", "a", "good", "way", "to"},
	{},
}

// syllables compose deterministic pseudo-words for generated synonym groups.
var syllables = []string{
	"ba", "ke", "mi", "ro", "tu", "sha", "len", "dor", "vex", "pol",
	"gran", "fi", "zu", "mar", "tel", "qui", "nos", "var", "lim", "dra",
}

// Lexicon holds the synonym groups available to a corpus generator.
type Lexicon struct {
	groups [][]string
}

// NewLexicon builds a lexicon with exactly concepts synonym groups: the
// hand-written seed groups first, then deterministic pseudo-word groups
// derived from rng. Every group has at least two surface forms.
func NewLexicon(concepts int, rng *rand.Rand) *Lexicon {
	if concepts <= 0 {
		panic("dataset: concepts must be positive")
	}
	lx := &Lexicon{groups: make([][]string, 0, concepts)}
	for i := 0; i < concepts && i < len(seedLexicon); i++ {
		lx.groups = append(lx.groups, seedLexicon[i])
	}
	seen := make(map[string]bool)
	for _, g := range lx.groups {
		for _, w := range g {
			seen[w] = true
		}
	}
	for len(lx.groups) < concepts {
		size := 2 + rng.Intn(3) // 2–4 synonyms
		group := make([]string, 0, size)
		for len(group) < size {
			w := pseudoWord(rng)
			if !seen[w] {
				seen[w] = true
				group = append(group, w)
			}
		}
		lx.groups = append(lx.groups, group)
	}
	return lx
}

// Concepts reports the number of synonym groups.
func (lx *Lexicon) Concepts() int { return len(lx.groups) }

// Synonyms returns the surface forms of concept c. The slice must not be
// modified.
func (lx *Lexicon) Synonyms(c int) []string { return lx.groups[c] }

// Word returns surface form pick of concept c, clamping pick into range so
// callers can pass unbounded indices.
func (lx *Lexicon) Word(c, pick int) string {
	g := lx.groups[c]
	return g[pick%len(g)]
}

func pseudoWord(rng *rand.Rand) string {
	n := 2 + rng.Intn(2) // 2–3 syllables
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// Validate checks structural invariants (used by tests and on load paths).
func (lx *Lexicon) Validate() error {
	seen := make(map[string]int)
	for i, g := range lx.groups {
		if len(g) < 2 {
			return fmt.Errorf("dataset: concept %d has %d synonyms, want >= 2", i, len(g))
		}
		for _, w := range g {
			if prev, dup := seen[w]; dup && prev != i {
				return fmt.Errorf("dataset: word %q in concepts %d and %d", w, prev, i)
			}
			seen[w] = i
		}
	}
	return nil
}
