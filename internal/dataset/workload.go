package dataset

import "math/rand"

// Probe is one query submitted to a cache-enabled service, with ground
// truth: DupOf is the index of the cached query it duplicates, or -1 if it
// is new (the correct outcome is a cache miss).
type Probe struct {
	Text  string
	DupOf int
}

// CacheWorkload is the standalone-query evaluation protocol of §IV-B: a set
// of queries pre-loaded into the cache, then a probe stream with a known
// duplicate fraction.
type CacheWorkload struct {
	Cached []string
	Probes []Probe
}

// GenerateCacheWorkload builds a workload with nCached cached queries and
// nProbes probes of which dupFraction are duplicates (fresh realisations of
// cached intents) and the rest are new intents — 30% in the paper,
// following the resubmission rate observed for web services. Non-duplicate
// probes include hard negatives at the corpus's configured rate.
func GenerateCacheWorkload(cfg CorpusConfig, nCached, nProbes int, dupFraction float64) *CacheWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	gen := NewGenerator(cfg, rng)
	w := &CacheWorkload{
		Cached: make([]string, nCached),
		Probes: make([]Probe, 0, nProbes),
	}
	intents := make([]Intent, nCached)
	for i := range intents {
		intents[i] = gen.NewIntent(i)
		w.Cached[i] = gen.Realize(intents[i])
	}
	nDup := int(float64(nProbes)*dupFraction + 0.5)
	for i := 0; i < nDup; i++ {
		idx := rng.Intn(nCached)
		w.Probes = append(w.Probes, Probe{Text: gen.Realize(intents[idx]), DupOf: idx})
	}
	for i := nDup; i < nProbes; i++ {
		var it Intent
		if rng.Float64() < cfg.HardNegativeRate {
			it = gen.NewIntentSharing(-1, intents[rng.Intn(nCached)], cfg.SharedConcepts)
		} else {
			it = gen.NewIntent(-1)
		}
		w.Probes = append(w.Probes, Probe{Text: gen.Realize(it), DupOf: -1})
	}
	rng.Shuffle(len(w.Probes), func(a, b int) { w.Probes[a], w.Probes[b] = w.Probes[b], w.Probes[a] })
	return w
}

// OrderedSubset returns a workload view of n probes arranged so that
// non-duplicates come first and duplicates last, matching the presentation
// of Figures 5–6 (queries 0–69 unique, 70–99 duplicates).
func (w *CacheWorkload) OrderedSubset(nUnique, nDup int) []Probe {
	probes := make([]Probe, 0, nUnique+nDup)
	for _, p := range w.Probes {
		if p.DupOf < 0 && nUnique > 0 {
			probes = append(probes, p)
			nUnique--
		}
	}
	for _, p := range w.Probes {
		if p.DupOf >= 0 && nDup > 0 {
			probes = append(probes, p)
			nDup--
		}
	}
	return probes
}

// DupCount reports how many probes are duplicates.
func (w *CacheWorkload) DupCount() int {
	n := 0
	for _, p := range w.Probes {
		if p.DupOf >= 0 {
			n++
		}
	}
	return n
}
