package dataset

import (
	"math/rand"
	"strings"
)

// CorpusConfig controls corpus generation. The defaults (DefaultConfig)
// are calibrated so that an untrained encoder at GPTCache's fixed 0.7
// threshold lands in the high-recall/low-precision regime the paper
// measures for the baseline, leaving headroom for fine-tuning to improve.
type CorpusConfig struct {
	// Concepts is the lexicon size (synonym groups).
	Concepts int
	// Intents is the number of distinct semantic intents generated.
	Intents int
	// MinConcepts/MaxConcepts bound the content words per intent.
	MinConcepts, MaxConcepts int
	// CanonicalBias is the probability a realisation keeps a concept's
	// canonical surface form; otherwise a random synonym is used. Lower
	// values make duplicate pairs lexically harder.
	CanonicalBias float64
	// HardNegativeRate is the fraction of non-duplicate pairs forced to
	// share concepts with their counterpart (confusable negatives).
	HardNegativeRate float64
	// SharedConcepts is how many concepts a hard negative shares.
	SharedConcepts int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the calibrated corpus configuration used by the
// experiments.
func DefaultConfig() CorpusConfig {
	return CorpusConfig{
		Concepts:         1200,
		Intents:          3000,
		MinConcepts:      4,
		MaxConcepts:      7,
		CanonicalBias:    0.65,
		HardNegativeRate: 0.35,
		SharedConcepts:   2,
		Seed:             1,
	}
}

// Intent is one semantic equivalence class: all realisations of an intent
// are duplicates of each other. The filler scaffolding belongs to the
// intent, not the realisation: paraphrases of one query share sentence
// structure and vary in word choice, so realisations differ only in the
// synonym picked per concept.
type Intent struct {
	ID       int
	Prefix   int      // index into questionPrefixes
	Concepts []int    // lexicon concept IDs, in surface order
	Fillers  []string // filler before concept i ("" = none); Fillers[0] unused
}

// Pair is a labelled query pair: Dup reports whether A and B are
// semantically equivalent (realisations of the same intent).
type Pair struct {
	A, B string
	Dup  bool
}

// Corpus is a generated duplicate-query benchmark with train/val/test
// splits of labelled pairs, mirroring the GPTCache dataset partitioning of
// §IV-A.1. Intents are disjoint across splits so evaluation measures
// generalisation to unseen intents, not memorisation.
type Corpus struct {
	Cfg     CorpusConfig
	Lexicon *Lexicon
	Intents []Intent

	Train, Val, Test []Pair
}

// Generator produces realisations of intents. It is the shared engine
// beneath the pair corpus, the cache workloads, the contextual dataset and
// the user-study streams.
type Generator struct {
	cfg CorpusConfig
	lx  *Lexicon
	rng *rand.Rand
}

// NewGenerator builds a generator with its own RNG stream.
func NewGenerator(cfg CorpusConfig, rng *rand.Rand) *Generator {
	return &Generator{cfg: cfg, lx: NewLexicon(cfg.Concepts, rng), rng: rng}
}

// Lexicon exposes the generator's lexicon.
func (g *Generator) Lexicon() *Lexicon { return g.lx }

// NewIntent samples a fresh intent.
func (g *Generator) NewIntent(id int) Intent {
	n := g.cfg.MinConcepts + g.rng.Intn(g.cfg.MaxConcepts-g.cfg.MinConcepts+1)
	concepts := make([]int, 0, n)
	used := make(map[int]bool, n)
	for len(concepts) < n {
		c := g.rng.Intn(g.lx.Concepts())
		if !used[c] {
			used[c] = true
			concepts = append(concepts, c)
		}
	}
	fillers := make([]string, n)
	for i := 1; i < n; i++ {
		if g.rng.Float64() < 0.5 {
			fillers[i] = fillerWords[g.rng.Intn(len(fillerWords))]
		}
	}
	return Intent{
		ID:       id,
		Prefix:   g.rng.Intn(len(questionPrefixes)),
		Concepts: concepts,
		Fillers:  fillers,
	}
}

// NewIntentSharing samples an intent that shares `shared` concepts with
// base — a hard negative: lexically overlapping but semantically distinct.
func (g *Generator) NewIntentSharing(id int, base Intent, shared int) Intent {
	it := g.NewIntent(id)
	if shared > len(base.Concepts) {
		shared = len(base.Concepts)
	}
	if shared > len(it.Concepts) {
		shared = len(it.Concepts)
	}
	perm := g.rng.Perm(len(base.Concepts))
	for i := 0; i < shared; i++ {
		it.Concepts[i] = base.Concepts[perm[i]]
	}
	// Sharing the question prefix makes the negative harder still.
	it.Prefix = base.Prefix
	return it
}

// Realize renders one surface form of intent: prefix words, then each
// concept's chosen synonym joined by occasional filler words.
func (g *Generator) Realize(intent Intent) string {
	var words []string
	words = append(words, questionPrefixes[intent.Prefix]...)
	for i, c := range intent.Concepts {
		if i > 0 && i < len(intent.Fillers) && intent.Fillers[i] != "" {
			words = append(words, intent.Fillers[i])
		}
		pick := 0
		if g.rng.Float64() >= g.cfg.CanonicalBias {
			syn := g.lx.Synonyms(c)
			pick = 1 + g.rng.Intn(len(syn)-1)
		}
		words = append(words, g.lx.Word(c, pick))
	}
	return strings.Join(words, " ")
}

// GenerateCorpus builds the full labelled-pair corpus with a 60/20/20
// train/val/test split over disjoint intents. Each split holds one
// duplicate pair and one non-duplicate pair per intent, so splits are
// class-balanced as in §IV-F's threshold sweeps.
func GenerateCorpus(cfg CorpusConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := NewGenerator(cfg, rng)
	c := &Corpus{Cfg: cfg, Lexicon: gen.lx}
	c.Intents = make([]Intent, cfg.Intents)
	for i := range c.Intents {
		c.Intents[i] = gen.NewIntent(i)
	}
	nTrain := cfg.Intents * 6 / 10
	nVal := cfg.Intents * 2 / 10
	c.Train = gen.pairsFor(c.Intents[:nTrain])
	c.Val = gen.pairsFor(c.Intents[nTrain : nTrain+nVal])
	c.Test = gen.pairsFor(c.Intents[nTrain+nVal:])
	return c
}

// pairsFor emits, per intent, one positive pair (two realisations) and one
// negative pair (against either a hard-negative intent or another intent in
// the split).
func (g *Generator) pairsFor(intents []Intent) []Pair {
	pairs := make([]Pair, 0, 2*len(intents))
	for i, it := range intents {
		pairs = append(pairs, Pair{A: g.Realize(it), B: g.Realize(it), Dup: true})
		var other Intent
		if g.rng.Float64() < g.cfg.HardNegativeRate {
			other = g.NewIntentSharing(-1, it, g.cfg.SharedConcepts)
		} else if len(intents) > 1 {
			j := g.rng.Intn(len(intents) - 1)
			if j >= i {
				j++
			}
			other = intents[j]
		} else {
			other = g.NewIntent(-1)
		}
		pairs = append(pairs, Pair{A: g.Realize(it), B: g.Realize(other), Dup: false})
	}
	g.rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	return pairs
}

// SplitPairs partitions pairs into n non-overlapping client shards of
// near-equal size, mirroring the random non-overlapping distribution of
// training data across FL clients in §IV-A.1.
func SplitPairs(pairs []Pair, n int, rng *rand.Rand) [][]Pair {
	if n <= 0 {
		panic("dataset: SplitPairs n must be positive")
	}
	shuffled := make([]Pair, len(pairs))
	copy(shuffled, pairs)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	out := make([][]Pair, n)
	for i, p := range shuffled {
		out[i%n] = append(out[i%n], p)
	}
	return out
}
