package dataset

import (
	"math/rand"
	"strings"
	"testing"
)

func smallConfig() CorpusConfig {
	cfg := DefaultConfig()
	cfg.Concepts = 80
	cfg.Intents = 200
	return cfg
}

func TestLexiconValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lx := NewLexicon(500, rng)
	if err := lx.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if lx.Concepts() != 500 {
		t.Fatalf("Concepts = %d, want 500", lx.Concepts())
	}
}

func TestLexiconDeterministic(t *testing.T) {
	a := NewLexicon(100, rand.New(rand.NewSource(9)))
	b := NewLexicon(100, rand.New(rand.NewSource(9)))
	for c := 0; c < 100; c++ {
		sa, sb := a.Synonyms(c), b.Synonyms(c)
		if len(sa) != len(sb) {
			t.Fatal("lexicon not deterministic")
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatal("lexicon not deterministic")
			}
		}
	}
}

func TestLexiconWordClamps(t *testing.T) {
	lx := NewLexicon(10, rand.New(rand.NewSource(2)))
	// Any pick index must resolve without panicking.
	for pick := 0; pick < 20; pick++ {
		if lx.Word(0, pick) == "" {
			t.Fatal("empty synonym")
		}
	}
}

func TestGenerateCorpusSplits(t *testing.T) {
	c := GenerateCorpus(smallConfig())
	if len(c.Train) == 0 || len(c.Val) == 0 || len(c.Test) == 0 {
		t.Fatal("empty split")
	}
	// Pairs per split = 2 × intents in split.
	if len(c.Train) != 2*(200*6/10) {
		t.Fatalf("train pairs = %d, want %d", len(c.Train), 2*(200*6/10))
	}
	for _, split := range [][]Pair{c.Train, c.Val, c.Test} {
		dups := 0
		for _, p := range split {
			if p.A == "" || p.B == "" {
				t.Fatal("empty pair text")
			}
			if p.Dup {
				dups++
			}
		}
		if dups != len(split)/2 {
			t.Fatalf("split not class-balanced: %d dup of %d", dups, len(split))
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(smallConfig())
	b := GenerateCorpus(smallConfig())
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("corpus generation not deterministic")
		}
	}
}

func TestDuplicatePairsDiffer(t *testing.T) {
	// Duplicate pairs should usually be lexically different realisations —
	// that is the whole point of semantic caching. Allow a small fraction
	// of accidental identical realisations.
	c := GenerateCorpus(smallConfig())
	same := 0
	total := 0
	for _, p := range c.Train {
		if p.Dup {
			total++
			if p.A == p.B {
				same++
			}
		}
	}
	if total == 0 {
		t.Fatal("no duplicate pairs")
	}
	if float64(same)/float64(total) > 0.2 {
		t.Fatalf("too many identical duplicate realisations: %d/%d", same, total)
	}
}

func TestSplitPairsPartition(t *testing.T) {
	c := GenerateCorpus(smallConfig())
	rng := rand.New(rand.NewSource(5))
	shards := SplitPairs(c.Train, 7, rng)
	if len(shards) != 7 {
		t.Fatalf("shards = %d, want 7", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(c.Train) {
		t.Fatalf("partition loses pairs: %d vs %d", total, len(c.Train))
	}
	for _, s := range shards {
		if len(s) < len(c.Train)/7-1 || len(s) > len(c.Train)/7+1 {
			t.Fatalf("unbalanced shard size %d", len(s))
		}
	}
}

func TestGenerateCacheWorkload(t *testing.T) {
	w := GenerateCacheWorkload(smallConfig(), 100, 100, 0.3)
	if len(w.Cached) != 100 || len(w.Probes) != 100 {
		t.Fatalf("sizes = %d/%d, want 100/100", len(w.Cached), len(w.Probes))
	}
	if got := w.DupCount(); got != 30 {
		t.Fatalf("DupCount = %d, want 30", got)
	}
	for _, p := range w.Probes {
		if p.DupOf >= len(w.Cached) {
			t.Fatalf("DupOf out of range: %d", p.DupOf)
		}
	}
}

func TestOrderedSubset(t *testing.T) {
	w := GenerateCacheWorkload(smallConfig(), 200, 200, 0.3)
	probes := w.OrderedSubset(70, 30)
	if len(probes) != 100 {
		t.Fatalf("OrderedSubset len = %d, want 100", len(probes))
	}
	for i := 0; i < 70; i++ {
		if probes[i].DupOf >= 0 {
			t.Fatalf("probe %d should be unique", i)
		}
	}
	for i := 70; i < 100; i++ {
		if probes[i].DupOf < 0 {
			t.Fatalf("probe %d should be duplicate", i)
		}
	}
}

func TestGenerateContextualWorkload(t *testing.T) {
	w := GenerateContextualWorkload(smallConfig(), 100)
	if len(w.Cached) != 200 {
		t.Fatalf("cached = %d, want 200", len(w.Cached))
	}
	if len(w.Probes) != 250 {
		t.Fatalf("probes = %d, want 250", len(w.Probes))
	}
	if w.Size() != 450 {
		t.Fatalf("Size = %d, want 450 (the paper's dataset size)", w.Size())
	}
	dups, ctxDups := 0, 0
	for _, p := range w.Probes {
		if p.DupOf >= 0 {
			dups++
			if len(p.Context) > 0 {
				ctxDups++
			}
			if p.DupOf >= len(w.Cached) {
				t.Fatalf("DupOf %d out of range", p.DupOf)
			}
			// Contextual duplicates must point at contextual cached
			// entries and standalone at standalone.
			if (len(p.Context) > 0) != (len(w.Cached[p.DupOf].Context) > 0) {
				t.Fatal("probe/cached context arity mismatch")
			}
		}
	}
	if dups != 150 {
		t.Fatalf("duplicate probes = %d, want 150", dups)
	}
	if ctxDups != 75 {
		t.Fatalf("contextual duplicate probes = %d, want 75", ctxDups)
	}
	if s := w.String(); !strings.Contains(s, "450") && !strings.Contains(s, "250") {
		t.Fatalf("String() = %q lacks sizes", s)
	}
}

func TestContextualFirstHalfOfCacheIsStandalone(t *testing.T) {
	w := GenerateContextualWorkload(smallConfig(), 50)
	for i := 0; i < 50; i++ {
		if len(w.Cached[i].Context) != 0 {
			t.Fatalf("cached[%d] should be standalone", i)
		}
	}
	for i := 50; i < 100; i++ {
		if len(w.Cached[i].Context) != 1 {
			t.Fatalf("cached[%d] should have one parent", i)
		}
	}
}

func TestUserStudyReproducesFigure4(t *testing.T) {
	cfg := smallConfig()
	streams := GenerateUserStudy(cfg)
	if len(streams) != 20 {
		t.Fatalf("participants = %d, want 20", len(streams))
	}
	got := AnalyzeStudy(streams)
	want := PublishedStudyResult()
	for i := range want.Totals {
		if got.Totals[i] != want.Totals[i] {
			t.Errorf("participant %d total = %d, want %d", i+1, got.Totals[i], want.Totals[i])
		}
		if got.Duplicates[i] != want.Duplicates[i] {
			t.Errorf("participant %d dups = %d, want %d", i+1, got.Duplicates[i], want.Duplicates[i])
		}
	}
	ratio := got.MeanDupRatio()
	if ratio < 0.28 || ratio < 0 || ratio > 0.40 {
		t.Fatalf("mean duplicate ratio = %.3f, paper reports ≈0.31", ratio)
	}
}

func TestStudyTotalQueries(t *testing.T) {
	want := 0
	for _, c := range participantCounts {
		want += c.Total
	}
	if want < 27000 {
		t.Fatalf("study total = %d, paper says over 27K", want)
	}
}

func TestRealizeUsesSynonyms(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(17))
	gen := NewGenerator(cfg, rng)
	it := gen.NewIntent(0)
	// Across many realisations we should see more than one surface form
	// for at least one concept.
	forms := make(map[string]bool)
	for i := 0; i < 30; i++ {
		forms[gen.Realize(it)] = true
	}
	if len(forms) < 2 {
		t.Fatal("Realize produces a single surface form; no paraphrases")
	}
}

func TestNewIntentSharingSharesConcepts(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(23))
	gen := NewGenerator(cfg, rng)
	base := gen.NewIntent(0)
	neg := gen.NewIntentSharing(1, base, 2)
	shared := 0
	baseSet := make(map[int]bool)
	for _, c := range base.Concepts {
		baseSet[c] = true
	}
	for _, c := range neg.Concepts {
		if baseSet[c] {
			shared++
		}
	}
	if shared < 2 {
		t.Fatalf("hard negative shares %d concepts, want >= 2", shared)
	}
	if neg.Prefix != base.Prefix {
		t.Fatal("hard negative should share the question prefix")
	}
}

func TestClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs := ClusteredVectors(rng, 64, 8, 32, 0.35)
	if len(vecs) != 64 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	for i, v := range vecs {
		if len(v) != 32 {
			t.Fatalf("vector %d has dim %d", i, len(v))
		}
		var norm float64
		for _, x := range v {
			norm += float64(x) * float64(x)
		}
		if norm < 0.99 || norm > 1.01 {
			t.Fatalf("vector %d has norm² %f, want 1", i, norm)
		}
	}
	// Same-cluster members (round-robin: i and i+8) must be far more
	// similar than cross-cluster ones.
	dot := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			s += float64(a[i]) * float64(b[i])
		}
		return s
	}
	if same, cross := dot(vecs[0], vecs[8]), dot(vecs[0], vecs[1]); same < cross+0.3 {
		t.Fatalf("cluster structure missing: same %.3f, cross %.3f", same, cross)
	}
	// Determinism: the same seed reproduces the corpus.
	again := ClusteredVectors(rand.New(rand.NewSource(5)), 64, 8, 32, 0.35)
	for i := range vecs {
		for j := range vecs[i] {
			if vecs[i][j] != again[i][j] {
				t.Fatal("ClusteredVectors not deterministic for a fixed seed")
			}
		}
	}
}
