package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSON export/import of generated corpora, so a generated benchmark can be
// archived alongside results for exact reproducibility, inspected by hand,
// or consumed by non-Go tooling.

// pairRecord is the JSONL row format: one labelled pair per line.
type pairRecord struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Dup   bool   `json:"dup"`
	Split string `json:"split"`
}

// ExportCorpus writes the corpus's train/val/test pairs as JSON Lines.
func ExportCorpus(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	write := func(split string, pairs []Pair) error {
		for _, p := range pairs {
			if err := enc.Encode(pairRecord{A: p.A, B: p.B, Dup: p.Dup, Split: split}); err != nil {
				return fmt.Errorf("dataset: encoding %s pair: %w", split, err)
			}
		}
		return nil
	}
	for _, s := range []struct {
		name  string
		pairs []Pair
	}{{"train", c.Train}, {"val", c.Val}, {"test", c.Test}} {
		if err := write(s.name, s.pairs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportCorpus reads pairs written by ExportCorpus back into splits. The
// returned corpus carries only the pairs (no generator state); that is all
// training and evaluation need.
func ImportCorpus(r io.Reader) (*Corpus, error) {
	c := &Corpus{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec pairRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dataset: decoding pair: %w", err)
		}
		p := Pair{A: rec.A, B: rec.B, Dup: rec.Dup}
		switch rec.Split {
		case "train":
			c.Train = append(c.Train, p)
		case "val":
			c.Val = append(c.Val, p)
		case "test":
			c.Test = append(c.Test, p)
		default:
			return nil, fmt.Errorf("dataset: unknown split %q", rec.Split)
		}
	}
	return c, nil
}
