package resilience

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testBuckets(clk *fakeClock, rate, burst float64) *TokenBuckets {
	return NewTokenBuckets(QuotaConfig{Rate: rate, Burst: burst, Now: clk.now})
}

// TestTokenBucketBurstThenRefill: a fresh tenant gets exactly Burst
// tokens, then refills at Rate.
func TestTokenBucketBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	tb := testBuckets(clk, 10, 5)

	for i := 0; i < 5; i++ {
		if rej := tb.Allow("alice"); rej != nil {
			t.Fatalf("burst request %d rejected: %v", i, rej)
		}
	}
	rej := tb.Allow("alice")
	if rej == nil {
		t.Fatalf("request past burst admitted")
	}
	if rej.Reason != ReasonQuota {
		t.Fatalf("reason = %q, want %q", rej.Reason, ReasonQuota)
	}
	// Empty bucket at 10/s: the next token is 100ms away.
	if rej.RetryAfter != 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want 100ms", rej.RetryAfter)
	}

	// 250ms refills 2.5 tokens: exactly 2 more requests pass.
	clk.advance(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if rej := tb.Allow("alice"); rej != nil {
			t.Fatalf("post-refill request %d rejected: %v", i, rej)
		}
	}
	if tb.Allow("alice") == nil {
		t.Fatalf("third post-refill request admitted (only 2.5 tokens refilled)")
	}
}

// TestTokenBucketRefillAccuracy: over a long horizon the admitted count
// converges to burst + rate×time, independent of the polling cadence.
func TestTokenBucketRefillAccuracy(t *testing.T) {
	clk := newFakeClock()
	tb := testBuckets(clk, 7, 3)

	admitted := 0
	// Poll aggressively (every 10ms for 10s); the bucket must admit
	// exactly burst + floor-ish rate×10s.
	for i := 0; i < 1000; i++ {
		clk.advance(10 * time.Millisecond)
		for tb.Allow("bob") == nil {
			admitted++
		}
	}
	want := 3 + 7*10 // burst + rate×10s
	if admitted < want-1 || admitted > want+1 {
		t.Fatalf("admitted %d over 10s, want ~%d (rate 7, burst 3)", admitted, want)
	}
	if got := tb.Allowed(); got != int64(admitted) {
		t.Fatalf("Allowed() = %d, want %d", got, admitted)
	}
	if tb.Rejected() == 0 {
		t.Fatalf("expected rejections from aggressive polling")
	}
}

// TestTokenBucketCapsAtBurst: idling does not accumulate more than Burst.
func TestTokenBucketCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	tb := testBuckets(clk, 10, 4)
	if tb.Allow("carol") != nil {
		t.Fatalf("first request rejected")
	}
	clk.advance(time.Hour)
	admitted := 0
	for tb.Allow("carol") == nil {
		admitted++
	}
	if admitted != 4 {
		t.Fatalf("admitted %d after an hour idle, want burst (4)", admitted)
	}
}

// TestTokenBucketTenantIsolation: one tenant exhausting its bucket does
// not affect another's.
func TestTokenBucketTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	tb := testBuckets(clk, 5, 2)
	tb.Allow("greedy")
	tb.Allow("greedy")
	if tb.Allow("greedy") == nil {
		t.Fatalf("greedy tenant not limited")
	}
	if rej := tb.Allow("quiet"); rej != nil {
		t.Fatalf("quiet tenant rejected by greedy tenant's spend: %v", rej)
	}
	s := tb.Stats()
	if s.Tenants != 2 {
		t.Fatalf("tenants = %d, want 2", s.Tenants)
	}
	if len(s.TopShed) != 1 || s.TopShed[0].Tenant != "greedy" || s.TopShed[0].Shed != 1 {
		t.Fatalf("top shed = %+v, want [{greedy 1}]", s.TopShed)
	}
}

// TestTokenBucketMaxTenantsDegradesOpen: a full table admits new tenants
// untracked instead of blocking or evicting.
func TestTokenBucketMaxTenantsDegradesOpen(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBuckets(QuotaConfig{Rate: 1, Burst: 1, Shards: 1, MaxTenants: 2, Now: clk.now})
	for i := 0; i < 10; i++ {
		tenant := fmt.Sprintf("t%d", i)
		if rej := tb.Allow(tenant); rej != nil {
			t.Fatalf("tenant %s first request rejected: %v", tenant, rej)
		}
	}
	if tb.Tenants() > 3 {
		t.Fatalf("tracked %d tenants, MaxTenants 2 (shard cap 3)", tb.Tenants())
	}
	// Tracked tenants still enforce.
	if tb.Allow("t0") == nil {
		t.Fatalf("tracked tenant not limited after burst spent")
	}
}

// TestTokenBucketConcurrentTenants hammers the table from many
// goroutines (run with -race) and checks counter conservation.
func TestTokenBucketConcurrentTenants(t *testing.T) {
	tb := NewTokenBuckets(QuotaConfig{Rate: 50, Burst: 10})
	const (
		tenants = 8
		workers = 4
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tb.Allow(fmt.Sprintf("tenant-%d", (w+i)%tenants))
			}
		}(w)
	}
	wg.Wait()
	if got := tb.Allowed() + tb.Rejected(); got != workers*perW {
		t.Fatalf("allowed+rejected = %d, want %d", got, workers*perW)
	}
	if tb.Tenants() != tenants {
		t.Fatalf("tenants = %d, want %d", tb.Tenants(), tenants)
	}
}
