package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// scriptedUpstream is a Caller whose behaviour each call is drawn from a
// script: nil = success, an error = failure, blockCtx = block until the
// call's context dies.
type scriptedUpstream struct {
	script []error
	pos    int
	delay  time.Duration
}

var errBlockCtx = errors.New("block until ctx done")

func (s *scriptedUpstream) QueryContext(ctx context.Context, q string) (string, time.Duration, error) {
	var step error
	if s.pos < len(s.script) {
		step = s.script[s.pos]
		s.pos++
	}
	if step == errBlockCtx {
		<-ctx.Done()
		return "", s.delay, ctx.Err()
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return "", s.delay, ctx.Err()
		}
	}
	if step != nil {
		return "", s.delay, step
	}
	return "resp:" + q, s.delay, nil
}

func guardGovernor(clk *fakeClock) *Governor {
	return NewGovernor(GovernorConfig{
		Limiter: LimiterConfig{MinLimit: 1, MaxLimit: 4, InitialLimit: 4, MaxQueue: 1, Now: clk.now},
		Breaker: BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5,
			OpenFor: time.Second, HalfOpenProbes: 1, Now: clk.now},
	})
}

// TestGuardTripsBreakerIntoCacheOnly: upstream failures trip the breaker
// and subsequent calls shed with CacheOnly, then the breaker recovers
// through a half-open probe once the upstream heals.
func TestGuardTripsBreakerIntoCacheOnly(t *testing.T) {
	clk := newFakeClock()
	g := guardGovernor(clk)
	boom := errors.New("upstream down")
	up := &scriptedUpstream{script: []error{boom, boom}}
	u := NewGuard(up, g, 0)

	for i := 0; i < 2; i++ {
		if _, _, err := u.QueryContext(context.Background(), "q"); err == nil {
			t.Fatalf("call %d should have failed", i)
		}
	}
	if g.Breaker.State() != StateOpen {
		t.Fatalf("breaker state = %s, want open", StateName(g.Breaker.State()))
	}

	// Open: the guard rejects without touching the upstream.
	_, _, err := u.QueryContext(context.Background(), "q")
	rej, ok := AsRejection(err)
	if !ok {
		t.Fatalf("open-breaker error %v is not a Rejection", err)
	}
	if !rej.CacheOnly || rej.Reason != ReasonUpstreamOpen {
		t.Fatalf("rejection = %+v, want cache-only breaker_open", rej)
	}
	if up.pos != 2 {
		t.Fatalf("upstream called while breaker open")
	}

	// Upstream heals; the cool-off elapses; one probe closes the breaker.
	clk.advance(time.Second + time.Millisecond)
	resp, _, err := u.QueryContext(context.Background(), "probe")
	if err != nil || resp != "resp:probe" {
		t.Fatalf("probe call: %q %v", resp, err)
	}
	if g.Breaker.State() != StateClosed {
		t.Fatalf("breaker state after healed probe = %s, want closed", StateName(g.Breaker.State()))
	}
	s := u.Stats()
	if s.Calls != 3 || s.Failures != 2 || s.Successes != 1 {
		t.Fatalf("guard stats = %+v", s)
	}
}

// TestGuardTimeoutCountsAsFailure: a call exceeding the guard timeout is
// recorded as a failure for limiter and breaker.
func TestGuardTimeoutCountsAsFailure(t *testing.T) {
	clk := newFakeClock()
	g := guardGovernor(clk)
	up := &scriptedUpstream{script: []error{errBlockCtx, errBlockCtx}}
	u := NewGuard(up, g, 5*time.Millisecond)

	for i := 0; i < 2; i++ {
		_, _, err := u.QueryContext(context.Background(), "slow")
		if err == nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call %d: err = %v, want deadline exceeded", i, err)
		}
	}
	if u.Stats().Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", u.Stats().Timeouts)
	}
	if g.Breaker.State() != StateOpen {
		t.Fatalf("two timeouts should trip the breaker (state %s)", StateName(g.Breaker.State()))
	}
	if g.Limiter.Stats().Decreases == 0 {
		t.Fatalf("timeouts should decrease the concurrency limit")
	}
}

// TestGuardClientDisconnectIsNeutral: the caller's own context dying
// records neither success nor failure — disconnects cannot trip the
// breaker or shrink the limit.
func TestGuardClientDisconnectIsNeutral(t *testing.T) {
	clk := newFakeClock()
	g := guardGovernor(clk)
	up := &scriptedUpstream{script: []error{errBlockCtx}}
	u := NewGuard(up, g, 0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, _, err := u.QueryContext(ctx, "q"); err == nil {
		t.Fatalf("disconnected call should error")
	}
	if g.Breaker.State() != StateClosed {
		t.Fatalf("client disconnect moved the breaker to %s", StateName(g.Breaker.State()))
	}
	bs := g.Breaker.Stats()
	if bs.WindowSamples != 0 {
		t.Fatalf("disconnect recorded an outcome: %+v", bs)
	}
	ls := g.Limiter.Stats()
	if ls.Limit != 4 || ls.Decreases != 0 {
		t.Fatalf("disconnect adjusted the limit: %+v", ls)
	}
	if g.Limiter.Inflight() != 0 {
		t.Fatalf("slot leaked on disconnect")
	}
}

// TestGuardSaturationShedsWithoutBreakerPollution: limiter saturation
// rejections must not feed fake outcomes into the breaker window.
func TestGuardSaturationShedsWithoutBreakerPollution(t *testing.T) {
	clk := newFakeClock()
	g := NewGovernor(GovernorConfig{
		Limiter: LimiterConfig{MinLimit: 1, MaxLimit: 1, InitialLimit: 1, MaxQueue: 1, Now: clk.now},
		Breaker: BreakerConfig{Window: 4, MinSamples: 2, OpenFor: time.Second, Now: clk.now},
	})
	up := &scriptedUpstream{script: []error{errBlockCtx}}
	u := NewGuard(up, g, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	go func() {
		close(started)
		u.QueryContext(ctx, "hog") // holds the only slot until cancel
	}()
	<-started
	waitFor(t, func() bool { return g.Limiter.Inflight() == 1 }, "hog to acquire")

	// Second call queues; third is shed as saturated.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { u.QueryContext(ctx2, "queued") }()
	waitFor(t, func() bool { return g.Limiter.QueueDepth() == 1 }, "queue to fill")
	_, _, err := u.QueryContext(context.Background(), "shed")
	rej, ok := AsRejection(err)
	if !ok || rej.Reason != ReasonSaturated {
		t.Fatalf("err = %v, want saturated rejection", err)
	}
	cancel2()
	cancel()
	waitFor(t, func() bool { return g.Limiter.Inflight() == 0 }, "slots to drain")
	if bs := g.Breaker.Stats(); bs.WindowSamples != 0 {
		t.Fatalf("sheds/disconnects polluted the breaker window: %+v", bs)
	}
}

// TestGovernorNilSafety: a nil Governor and a Guard without mechanisms
// pass everything through.
func TestGovernorNilSafety(t *testing.T) {
	var g *Governor
	if g.Admit("anyone") != nil {
		t.Fatalf("nil governor rejected")
	}
	if g.Saturated() {
		t.Fatalf("nil governor saturated")
	}
	if s := g.Stats(); s.Quota != nil || s.Limiter != nil || s.Breaker != nil {
		t.Fatalf("nil governor stats non-empty: %+v", s)
	}
	u := NewGuard(&scriptedUpstream{}, nil, 0)
	resp, _, err := u.QueryContext(context.Background(), "q")
	if err != nil || resp != "resp:q" {
		t.Fatalf("bare guard call: %q %v", resp, err)
	}
}
