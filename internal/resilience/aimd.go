package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// LimiterConfig parameterises the AIMD adaptive concurrency limiter.
type LimiterConfig struct {
	// MinLimit and MaxLimit bound the concurrency limit; InitialLimit
	// is the starting point (defaults: 1, required, MinLimit).
	MinLimit     int
	MaxLimit     int
	InitialLimit int
	// MaxQueue bounds how many requests may wait for a slot; arrivals
	// past it are shed immediately. Defaults to MaxLimit.
	MaxQueue int
	// AIStep is the additive increase applied per limit's worth of
	// healthy responses (classic AIMD: +AIStep to the limit each time
	// roughly `limit` successes pass). Defaults to 1.
	AIStep float64
	// MDFactor is the multiplicative decrease applied on a failure or
	// congestion signal, in (0, 1). Defaults to 0.5.
	MDFactor float64
	// LatencyTolerance is the congestion gradient: when the latency
	// EWMA exceeds Tolerance × the observed baseline (the decayed
	// minimum), healthy responses stop growing the limit and trigger a
	// decrease — backpressure from a slowing upstream before it fails
	// outright. <= 1 disables the gradient. Defaults to 3.
	LatencyTolerance float64
	// DecreaseCooldown is the minimum spacing between multiplicative
	// decreases, so one burst of correlated failures (every in-flight
	// request timing out at once) counts as one congestion event, not
	// `limit` of them. Defaults to 100ms.
	DecreaseCooldown time.Duration
	// Clock is the decrease-cooldown time source. Nil defaults to the
	// wall clock; simulations inject a virtual one so the AIMD schedule
	// runs on virtual time.
	Clock sim.Clock
	// Now overrides the clock directly (tests scripting exact
	// timestamps). Defaults to Clock.Now.
	Now func() time.Time
}

// Outcome classifies one guarded upstream call for Release.
type Outcome int

const (
	// OutcomeSuccess: the call completed healthily.
	OutcomeSuccess Outcome = iota
	// OutcomeFailure: the call failed or timed out — a congestion or
	// health signal; the limit decreases multiplicatively.
	OutcomeFailure
	// OutcomeCanceled: the caller went away (client disconnect). Says
	// nothing about upstream health; the slot is released with no
	// limit adjustment.
	OutcomeCanceled
)

// Limiter is an AIMD adaptive concurrency limiter with a bounded FIFO
// wait queue. Acquire admits a request when in-flight work is under the
// current limit, queues it (up to MaxQueue) when not, and sheds beyond
// that. Release reports the outcome and adapts the limit: additive
// increase on healthy latency, multiplicative decrease on failure or
// latency-gradient congestion.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	limit    float64
	inflight int
	waiters  []*waiter
	// successCredit accumulates AIStep/limit per success; the limit
	// grows when it crosses 1 (≈ one step per limit's worth of
	// successes, the classic AIMD schedule).
	successCredit float64
	lastDecrease  time.Time
	// ewma tracks recent success latency; baseline is the decayed
	// minimum it is compared against for the congestion gradient.
	ewma     float64 // seconds
	baseline float64 // seconds

	acquired  atomic.Int64
	queued    atomic.Int64
	shed      atomic.Int64
	canceled  atomic.Int64
	decreases atomic.Int64
}

type waiter struct {
	ch       chan struct{}
	canceled bool
}

// NewLimiter builds the limiter. Panics if cfg.MaxLimit <= 0.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.MaxLimit <= 0 {
		panic("resilience: LimiterConfig.MaxLimit must be positive")
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 1
	}
	if cfg.MinLimit > cfg.MaxLimit {
		cfg.MinLimit = cfg.MaxLimit
	}
	if cfg.InitialLimit <= 0 {
		cfg.InitialLimit = cfg.MinLimit
	}
	if cfg.InitialLimit > cfg.MaxLimit {
		cfg.InitialLimit = cfg.MaxLimit
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.MaxLimit
	}
	if cfg.AIStep <= 0 {
		cfg.AIStep = 1
	}
	if cfg.MDFactor <= 0 || cfg.MDFactor >= 1 {
		cfg.MDFactor = 0.5
	}
	if cfg.LatencyTolerance == 0 {
		cfg.LatencyTolerance = 3
	}
	if cfg.DecreaseCooldown <= 0 {
		cfg.DecreaseCooldown = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = sim.Or(cfg.Clock).Now
	}
	return &Limiter{cfg: cfg, limit: float64(cfg.InitialLimit)}
}

// Acquire claims an upstream slot. It returns (nil, nil) on success —
// the caller must Release exactly once — a *Rejection when the limiter
// and its queue are saturated, or ctx's error if the caller was
// canceled while queued.
func (l *Limiter) Acquire(ctx context.Context) (*Rejection, error) {
	l.mu.Lock()
	if l.inflight < int(l.limit) {
		l.inflight++
		l.mu.Unlock()
		l.acquired.Add(1)
		return nil, nil
	}
	if len(l.waiters) >= l.cfg.MaxQueue {
		// Estimate the drain time of the queue ahead as the backoff
		// hint: queue position × recent per-request latency / limit.
		est := time.Duration(l.ewma / l.limit * float64(len(l.waiters)+1) * float64(time.Second))
		l.mu.Unlock()
		if est <= 0 {
			est = 10 * time.Millisecond
		}
		l.shed.Add(1)
		return &Rejection{Reason: ReasonSaturated, RetryAfter: est}, nil
	}
	w := &waiter{ch: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	l.queued.Add(1)
	select {
	case <-w.ch:
		l.acquired.Add(1)
		return nil, nil
	case <-ctx.Done():
		l.mu.Lock()
		select {
		case <-w.ch:
			// The handoff raced the cancellation and won: the slot is
			// ours, but the caller is gone — pass it on.
			l.mu.Unlock()
			l.Release(OutcomeCanceled, 0)
			l.acquired.Add(1)
		default:
			w.canceled = true
			l.mu.Unlock()
		}
		l.canceled.Add(1)
		return nil, ctx.Err()
	}
}

// TryAcquire claims a slot only if one is immediately free (no queueing).
func (l *Limiter) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight < int(l.limit) {
		l.inflight++
		l.acquired.Add(1)
		return true
	}
	return false
}

// Release returns a slot and adapts the limit from the call's outcome.
// latency is the observed upstream wall time (successes feed the
// congestion gradient; ignored otherwise).
func (l *Limiter) Release(outcome Outcome, latency time.Duration) {
	l.mu.Lock()
	switch outcome {
	case OutcomeSuccess:
		sec := latency.Seconds()
		if l.ewma == 0 {
			l.ewma = sec
		} else {
			l.ewma = 0.8*l.ewma + 0.2*sec
		}
		if l.baseline == 0 || sec < l.baseline {
			l.baseline = sec
		} else {
			// Decay the baseline toward current behaviour so an old
			// lucky sample cannot pin the gradient forever.
			l.baseline += 0.01 * (l.ewma - l.baseline)
		}
		if l.cfg.LatencyTolerance > 1 && l.baseline > 0 && l.ewma > l.cfg.LatencyTolerance*l.baseline {
			l.decreaseLocked()
		} else {
			l.successCredit += l.cfg.AIStep / l.limit
			if l.successCredit >= 1 {
				l.limit += l.successCredit
				l.successCredit = 0
				if l.limit > float64(l.cfg.MaxLimit) {
					l.limit = float64(l.cfg.MaxLimit)
				}
			}
		}
	case OutcomeFailure:
		l.decreaseLocked()
	}
	l.releaseSlotLocked()
	l.mu.Unlock()
}

// decreaseLocked applies one multiplicative decrease, rate-limited by
// the cooldown so correlated failures collapse into one event.
func (l *Limiter) decreaseLocked() {
	now := l.cfg.Now()
	if now.Sub(l.lastDecrease) < l.cfg.DecreaseCooldown {
		return
	}
	l.lastDecrease = now
	l.limit *= l.cfg.MDFactor
	if l.limit < float64(l.cfg.MinLimit) {
		l.limit = float64(l.cfg.MinLimit)
	}
	l.successCredit = 0
	l.decreases.Add(1)
}

// releaseSlotLocked hands the freed slot to the first live waiter, or
// decrements inflight. A shrunken limit also sheds excess: slots are
// only handed off while inflight stays within it.
func (l *Limiter) releaseSlotLocked() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if !w.canceled && l.inflight > int(l.limit) {
			// The limit shrank below current inflight: the waiter must
			// not run yet. Leave it queued and just shed our token.
			break
		}
		l.waiters = popWaiter(l.waiters)
		if w.canceled {
			continue
		}
		// Hand the slot over without decrementing: the waiter inherits
		// this request's in-flight token.
		close(w.ch)
		return
	}
	l.inflight--
}

// popWaiter removes the head waiter in place.
func popWaiter(ws []*waiter) []*waiter {
	copy(ws, ws[1:])
	ws[len(ws)-1] = nil
	return ws[:len(ws)-1]
}

// Saturated reports whether in-flight work has reached the current
// limit — the cluster layer's signal to skip speculative hedges.
func (l *Limiter) Saturated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight >= int(l.limit)
}

// Limit reports the current concurrency limit.
func (l *Limiter) Limit() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight reports currently admitted upstream calls.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// QueueDepth reports requests currently waiting for a slot.
func (l *Limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, w := range l.waiters {
		if !w.canceled {
			n++
		}
	}
	return n
}

// LimiterStats snapshots the limiter.
type LimiterStats struct {
	Limit      float64 `json:"limit"`
	Inflight   int     `json:"inflight"`
	QueueDepth int     `json:"queue_depth"`
	// EWMAMicros is the recent success-latency EWMA the gradient
	// compares against BaselineMicros.
	EWMAMicros     int64 `json:"ewma_micros"`
	BaselineMicros int64 `json:"baseline_micros"`
	Acquired       int64 `json:"acquired"`
	Queued         int64 `json:"queued"`
	Shed           int64 `json:"shed"`
	Canceled       int64 `json:"canceled"`
	Decreases      int64 `json:"decreases"`
}

// Shed exposes the cumulative shed count for metric callbacks.
func (l *Limiter) ShedCount() int64 { return l.shed.Load() }

// Stats snapshots the limiter.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	s := LimiterStats{
		Limit:          l.limit,
		Inflight:       l.inflight,
		EWMAMicros:     int64(l.ewma * 1e6),
		BaselineMicros: int64(l.baseline * 1e6),
	}
	for _, w := range l.waiters {
		if !w.canceled {
			s.QueueDepth++
		}
	}
	l.mu.Unlock()
	s.Acquired = l.acquired.Load()
	s.Queued = l.queued.Load()
	s.Shed = l.shed.Load()
	s.Canceled = l.canceled.Load()
	s.Decreases = l.decreases.Load()
	return s
}
