package resilience

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic state-machine
// tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         10,
		MinSamples:     4,
		FailureRatio:   0.5,
		OpenFor:        time.Second,
		HalfOpenProbes: 2,
		Now:            clk.now,
	})
}

// mustAllow asserts the breaker admits a call.
func mustAllow(t *testing.T, b *Breaker, msg string) {
	t.Helper()
	if rej := b.Allow(); rej != nil {
		t.Fatalf("%s: unexpectedly rejected: %v", msg, rej)
	}
}

// mustReject asserts the breaker sheds a call with CacheOnly set.
func mustReject(t *testing.T, b *Breaker, msg string) *Rejection {
	t.Helper()
	rej := b.Allow()
	if rej == nil {
		t.Fatalf("%s: unexpectedly admitted", msg)
	}
	if !rej.CacheOnly {
		t.Fatalf("%s: open-breaker rejection should be CacheOnly", msg)
	}
	if rej.Reason != ReasonUpstreamOpen {
		t.Fatalf("%s: reason = %q, want %q", msg, rej.Reason, ReasonUpstreamOpen)
	}
	return rej
}

// TestBreakerTripsOnFailureRatio walks the canonical lifecycle: closed
// under mixed traffic, tripped by a failure burst, open while cooling
// off, half-open probes, closed again on probe success.
func TestBreakerTripsOnFailureRatio(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)

	// Healthy traffic never trips.
	for i := 0; i < 20; i++ {
		mustAllow(t, b, "healthy")
		b.Record(true)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after healthy traffic = %s", StateName(got))
	}

	// Three failures out of the last window (3/10 < 0.5 after the 20
	// successes rolled through... the window holds the last 10): push
	// failures until the windowed ratio crosses 0.5.
	for i := 0; i < 5; i++ {
		mustAllow(t, b, "failing")
		b.Record(false)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failure burst = %s, want open", StateName(got))
	}
	if b.OpenCount() != 1 {
		t.Fatalf("opens = %d, want 1", b.OpenCount())
	}

	// Open: rejects with the remaining cool-off as Retry-After.
	rej := mustReject(t, b, "open")
	if rej.RetryAfter <= 0 || rej.RetryAfter > time.Second {
		t.Fatalf("open retry-after = %v", rej.RetryAfter)
	}
	clk.advance(400 * time.Millisecond)
	if rej := mustReject(t, b, "still open"); rej.RetryAfter > 600*time.Millisecond {
		t.Fatalf("retry-after should shrink with the clock, got %v", rej.RetryAfter)
	}

	// Cool-off elapses: exactly HalfOpenProbes trial calls pass, the
	// rest are shed.
	clk.advance(700 * time.Millisecond)
	mustAllow(t, b, "probe 1")
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cool-off = %s, want half_open", StateName(got))
	}
	mustAllow(t, b, "probe 2")
	mustReject(t, b, "probe budget spent")

	// Both probes succeed → closed, with a fresh window.
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probes = %s, want closed", StateName(got))
	}
	s := b.Stats()
	if s.WindowSamples != 0 || s.WindowFailures != 0 {
		t.Fatalf("window not reset on close: %+v", s)
	}
}

// TestBreakerHalfOpenFailureReopens: any probe failure slams the breaker
// back open and restarts the cool-off.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		mustAllow(t, b, "failing")
		b.Record(false)
	}
	if b.State() != StateOpen {
		t.Fatalf("precondition: breaker should be open")
	}
	clk.advance(time.Second + time.Millisecond)
	mustAllow(t, b, "probe")
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("failed probe should reopen, state = %s", StateName(b.State()))
	}
	// The cool-off restarted at the probe failure, so it rejects again.
	mustReject(t, b, "reopened")
	if b.OpenCount() != 2 {
		t.Fatalf("opens = %d, want 2", b.OpenCount())
	}
}

// TestBreakerCancelReturnsProbeSlot: an abandoned probe (client gone,
// limiter shed) must not wedge half-open.
func TestBreakerCancelReturnsProbeSlot(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		mustAllow(t, b, "failing")
		b.Record(false)
	}
	clk.advance(time.Second + time.Millisecond)
	mustAllow(t, b, "probe 1")
	mustAllow(t, b, "probe 2")
	mustReject(t, b, "budget spent")
	b.Cancel() // probe 1 abandoned
	mustAllow(t, b, "slot returned")
	b.Record(true)
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatalf("state = %s, want closed", StateName(b.State()))
	}
}

// TestBreakerMinSamples: the ratio cannot trip before MinSamples
// outcomes are in the window (one early failure is not an outage).
func TestBreakerMinSamples(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk) // MinSamples: 4
	for i := 0; i < 3; i++ {
		mustAllow(t, b, "early failure")
		b.Record(false)
	}
	if b.State() != StateClosed {
		t.Fatalf("breaker tripped on %d samples, MinSamples is 4", 3)
	}
	mustAllow(t, b, "4th failure")
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("breaker should trip at MinSamples with 100%% failures")
	}
}

// TestBreakerPropertyScriptedSequences drives the state machine with
// randomized scripted outcome sequences and clock jumps, asserting the
// transition invariants a breaker must never violate, and cross-checking
// the closed-state trip decision against a straightforward model of the
// sliding window.
func TestBreakerPropertyScriptedSequences(t *testing.T) {
	const (
		window     = 8
		minSamples = 3
		ratio      = 0.5
		openFor    = time.Second
		probes     = 2
	)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := newFakeClock()
		b := NewBreaker(BreakerConfig{
			Window: window, MinSamples: minSamples, FailureRatio: ratio,
			OpenFor: openFor, HalfOpenProbes: probes, Now: clk.now,
		})
		// Model of the closed-state window.
		var model []bool
		admitted := 0 // admissions not yet recorded
		prevState := StateClosed
		for step := 0; step < 400; step++ {
			if rng.Intn(4) == 0 {
				clk.advance(time.Duration(rng.Intn(700)) * time.Millisecond)
			}
			state := b.State()
			// Invariant: legal transitions only.
			legal := map[[2]int]bool{
				{StateClosed, StateClosed}: true, {StateClosed, StateOpen}: true,
				{StateOpen, StateOpen}: true, {StateOpen, StateHalfOpen}: true,
				{StateHalfOpen, StateHalfOpen}: true, {StateHalfOpen, StateOpen}: true,
				{StateHalfOpen, StateClosed}: true,
			}
			if !legal[[2]int{prevState, state}] {
				t.Fatalf("seed %d step %d: illegal transition %s → %s",
					seed, step, StateName(prevState), StateName(state))
			}
			prevState = state

			rej := b.Allow()
			switch state {
			case StateClosed:
				if rej != nil {
					t.Fatalf("seed %d step %d: closed breaker rejected", seed, step)
				}
			case StateOpen:
				if rej == nil && b.State() != StateHalfOpen {
					t.Fatalf("seed %d step %d: open breaker admitted without transitioning", seed, step)
				}
			}
			if rej != nil {
				continue
			}
			admitted++
			if admitted > probes && b.State() == StateHalfOpen {
				t.Fatalf("seed %d step %d: more than %d concurrent half-open probes", seed, step, probes)
			}
			ok := rng.Intn(3) != 0 // 1/3 failures
			wasClosed := b.State() == StateClosed
			if wasClosed {
				model = append(model, !ok)
				if len(model) > window {
					model = model[1:]
				}
			}
			b.Record(ok)
			admitted--
			if wasClosed {
				fails := 0
				for _, f := range model {
					if f {
						fails++
					}
				}
				shouldTrip := len(model) >= minSamples && float64(fails) >= ratio*float64(len(model))
				tripped := b.State() == StateOpen
				if shouldTrip != tripped {
					t.Fatalf("seed %d step %d: model trip=%v breaker=%v (window %v)",
						seed, step, shouldTrip, tripped, model)
				}
				if tripped {
					model = model[:0]
					prevState = StateOpen
				}
			} else if b.State() == StateClosed {
				model = model[:0] // half-open just closed: fresh window
				prevState = StateClosed
			} else if b.State() == StateOpen {
				prevState = StateOpen
			}
		}
	}
}
