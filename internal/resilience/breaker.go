package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Breaker states, exposed as a gauge (StateCode) and in snapshots.
const (
	StateClosed   = 0 // upstream healthy; all traffic flows
	StateHalfOpen = 1 // probing: a bounded number of trial calls pass
	StateOpen     = 2 // upstream tripped; misses are shed (cache-only)
)

// StateName renders a breaker state code.
func StateName(code int) string {
	switch code {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	default:
		return "open"
	}
}

// BreakerConfig parameterises the circuit breaker.
type BreakerConfig struct {
	// Window is the sliding outcome window size (count-based, so the
	// state machine is deterministic under scripted sequences).
	// <= 0 disables the breaker.
	Window int
	// MinSamples is the minimum outcomes in the window before the
	// failure ratio can trip the breaker. Defaults to Window/2.
	MinSamples int
	// FailureRatio trips the breaker when window failures/samples
	// reaches it, in (0, 1]. Defaults to 0.5.
	FailureRatio float64
	// OpenFor is how long the breaker stays open before allowing
	// half-open probes. Defaults to 5s.
	OpenFor time.Duration
	// HalfOpenProbes is how many trial calls half-open admits (and how
	// many must succeed, with zero failures, to close). Defaults to 3.
	HalfOpenProbes int
	// Clock is the cool-off time source. Nil defaults to the wall
	// clock; simulations inject a virtual one so open→half-open
	// transitions run on virtual time.
	Clock sim.Clock
	// Now overrides the clock directly (tests scripting exact
	// timestamps). Defaults to Clock.Now.
	Now func() time.Time
}

// Breaker is a circuit breaker over a sliding window of call outcomes:
// closed until the windowed failure ratio trips it, open for OpenFor,
// then half-open admitting HalfOpenProbes trial calls — all of which
// must succeed to close; any failure reopens. Allow/Record are the two
// halves of one guarded call.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    int
	outcomes []bool // ring: true = failure
	size     int    // filled entries
	pos      int    // next write
	failures int    // failures currently in the window
	openedAt time.Time
	inProbes int // half-open: probes admitted, not yet recorded
	okProbes int // half-open: successful probes so far

	stateCode atomic.Int64 // mirrors state for lock-free gauges
	opens     atomic.Int64
	shedOpen  atomic.Int64
	probes    atomic.Int64
}

// NewBreaker builds the breaker. Panics if cfg.Window <= 0.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		panic("resilience: BreakerConfig.Window must be positive")
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.Window / 2
		if cfg.MinSamples < 1 {
			cfg.MinSamples = 1
		}
	}
	if cfg.FailureRatio <= 0 || cfg.FailureRatio > 1 {
		cfg.FailureRatio = 0.5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 3
	}
	if cfg.Now == nil {
		cfg.Now = sim.Or(cfg.Clock).Now
	}
	return &Breaker{cfg: cfg, outcomes: make([]bool, cfg.Window)}
}

// Allow asks whether one upstream call may proceed. nil means yes — the
// caller must pair it with exactly one Record. A *Rejection means the
// breaker is open (or half-open with its probe budget spent): serve
// from cache or shed; do not call upstream and do not Record.
func (b *Breaker) Allow() *Rejection {
	b.mu.Lock()
	switch b.state {
	case StateClosed:
		b.mu.Unlock()
		return nil
	case StateOpen:
		now := b.cfg.Now()
		if wait := b.openedAt.Add(b.cfg.OpenFor).Sub(now); wait > 0 {
			b.mu.Unlock()
			b.shedOpen.Add(1)
			return &Rejection{Reason: ReasonUpstreamOpen, RetryAfter: wait, CacheOnly: true}
		}
		b.setStateLocked(StateHalfOpen)
		b.inProbes, b.okProbes = 0, 0
		fallthrough
	default: // StateHalfOpen
		if b.inProbes+b.okProbes < b.cfg.HalfOpenProbes {
			b.inProbes++
			b.mu.Unlock()
			b.probes.Add(1)
			return nil
		}
		wait := b.cfg.OpenFor
		b.mu.Unlock()
		b.shedOpen.Add(1)
		return &Rejection{Reason: ReasonUpstreamOpen, RetryAfter: wait, CacheOnly: true}
	}
}

// Record reports the outcome of a call previously admitted by Allow.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.pushLocked(!ok)
		if b.size >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureRatio*float64(b.size) {
			b.tripLocked()
		}
	case StateHalfOpen:
		if b.inProbes > 0 {
			b.inProbes--
		}
		if !ok {
			b.tripLocked()
			return
		}
		b.okProbes++
		if b.okProbes >= b.cfg.HalfOpenProbes {
			b.setStateLocked(StateClosed)
			b.resetWindowLocked()
		}
	case StateOpen:
		// A straggler from before the trip (its Allow predates the
		// state change); the window was reset — drop it.
	}
}

// Cancel releases an Allow admission whose call never produced an
// outcome (saturation shed, client disconnect). In half-open it returns
// the probe slot so an abandoned probe cannot wedge the state machine;
// in other states it is a no-op.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.inProbes > 0 {
		b.inProbes--
	}
}

// tripLocked opens the breaker and stamps the cool-off clock.
func (b *Breaker) tripLocked() {
	b.setStateLocked(StateOpen)
	b.openedAt = b.cfg.Now()
	b.opens.Add(1)
	b.resetWindowLocked()
	b.inProbes, b.okProbes = 0, 0
}

func (b *Breaker) setStateLocked(s int) {
	b.state = s
	b.stateCode.Store(int64(s))
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.size, b.pos, b.failures = 0, 0, 0
}

// pushLocked slides one outcome into the window.
func (b *Breaker) pushLocked(failed bool) {
	if b.size == len(b.outcomes) {
		if b.outcomes[b.pos] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.outcomes[b.pos] = failed
	if failed {
		b.failures++
	}
	b.pos = (b.pos + 1) % len(b.outcomes)
}

// State reports the current state code (lock-free; for gauges).
func (b *Breaker) State() int { return int(b.stateCode.Load()) }

// RetryAfter reports how long until an open breaker admits probes
// (zero when not open).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	wait := b.openedAt.Add(b.cfg.OpenFor).Sub(b.cfg.Now())
	if wait < 0 {
		wait = 0
	}
	return wait
}

// BreakerStats snapshots the breaker.
type BreakerStats struct {
	State string `json:"state"`
	// StateCode is 0 closed, 1 half-open, 2 open.
	StateCode int `json:"state_code"`
	// WindowSamples/WindowFailures describe the sliding window (closed
	// state only; reset on every transition).
	WindowSamples  int   `json:"window_samples"`
	WindowFailures int   `json:"window_failures"`
	Opens          int64 `json:"opens"`
	ShedOpen       int64 `json:"shed_open"`
	Probes         int64 `json:"probes"`
	// RetryAfterMS is the remaining cool-off when open.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Opens exposes the cumulative trip count for metric callbacks.
func (b *Breaker) OpenCount() int64 { return b.opens.Load() }

// ShedCount exposes cumulative open-state rejections for metric callbacks.
func (b *Breaker) ShedCount() int64 { return b.shedOpen.Load() }

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	s := BreakerStats{
		State:          StateName(b.state),
		StateCode:      b.state,
		WindowSamples:  b.size,
		WindowFailures: b.failures,
	}
	if b.state == StateOpen {
		if wait := b.openedAt.Add(b.cfg.OpenFor).Sub(b.cfg.Now()); wait > 0 {
			s.RetryAfterMS = wait.Milliseconds()
		}
	}
	b.mu.Unlock()
	s.Opens = b.opens.Load()
	s.ShedOpen = b.shedOpen.Load()
	s.Probes = b.probes.Load()
	return s
}
