package resilience

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testLimiter(clk *fakeClock, min, max, initial, queue int) *Limiter {
	return NewLimiter(LimiterConfig{
		MinLimit:         min,
		MaxLimit:         max,
		InitialLimit:     initial,
		MaxQueue:         queue,
		AIStep:           1,
		MDFactor:         0.5,
		LatencyTolerance: 3,
		DecreaseCooldown: 100 * time.Millisecond,
		Now:              clk.now,
	})
}

// TestLimiterAdditiveIncrease: a limit's worth of healthy responses
// grows the limit by one step, up to MaxLimit.
func TestLimiterAdditiveIncrease(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 8, 4, 4)

	if got := l.Limit(); got != 4 {
		t.Fatalf("initial limit = %v, want 4", got)
	}
	// 4 successes at steady latency → +1.
	for i := 0; i < 4; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d failed under limit", i)
		}
		l.Release(OutcomeSuccess, 10*time.Millisecond)
	}
	if got := l.Limit(); got < 5 {
		t.Fatalf("limit after one window of successes = %v, want >= 5", got)
	}
	// Keep going: the limit saturates at MaxLimit and stays there.
	for i := 0; i < 100; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire failed with limit %v, inflight %d", l.Limit(), l.Inflight())
		}
		l.Release(OutcomeSuccess, 10*time.Millisecond)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit after sustained success = %v, want MaxLimit (8)", got)
	}
}

// TestLimiterMultiplicativeDecrease: a failure halves the limit; a burst
// of correlated failures inside the cooldown counts once.
func TestLimiterMultiplicativeDecrease(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 16, 8, 4)

	for i := 0; i < 4; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d failed", i)
		}
	}
	// Four in-flight requests all fail at once (an upstream brown-out):
	// one congestion event, not four.
	for i := 0; i < 4; i++ {
		l.Release(OutcomeFailure, 0)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after correlated failure burst = %v, want 8×0.5 = 4", got)
	}
	s := l.Stats()
	if s.Decreases != 1 {
		t.Fatalf("decreases = %d, want 1 (cooldown collapses the burst)", s.Decreases)
	}

	// After the cooldown, another failure halves again, flooring at Min.
	clk.advance(200 * time.Millisecond)
	l.TryAcquire()
	l.Release(OutcomeFailure, 0)
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit = %v, want 2", got)
	}
	for i := 0; i < 10; i++ {
		clk.advance(200 * time.Millisecond)
		l.TryAcquire()
		l.Release(OutcomeFailure, 0)
	}
	if got := l.Limit(); got != 1 {
		t.Fatalf("limit = %v, want MinLimit (1)", got)
	}
}

// TestLimiterLatencyGradient: healthy responses whose latency blows past
// Tolerance × baseline trigger a decrease without any failure.
func TestLimiterLatencyGradient(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 16, 8, 4)

	// Establish a ~1ms baseline.
	for i := 0; i < 20; i++ {
		l.TryAcquire()
		l.Release(OutcomeSuccess, time.Millisecond)
	}
	before := l.Limit()
	// Upstream slows 50×: EWMA climbs past 3× baseline within a few
	// responses and the limit backs off despite every call "succeeding".
	for i := 0; i < 20; i++ {
		clk.advance(200 * time.Millisecond)
		l.TryAcquire()
		l.Release(OutcomeSuccess, 50*time.Millisecond)
	}
	if got := l.Limit(); got >= before {
		t.Fatalf("limit %v did not decrease under latency gradient (was %v)", got, before)
	}
	if l.Stats().Decreases == 0 {
		t.Fatalf("no decreases recorded under gradient congestion")
	}
}

// TestLimiterQueueAndShed: at the limit requests queue up to MaxQueue,
// then shed with a Retry-After hint.
func TestLimiterQueueAndShed(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 2, 2, 2)

	if rej, err := l.Acquire(context.Background()); rej != nil || err != nil {
		t.Fatalf("acquire 1: %v %v", rej, err)
	}
	if rej, err := l.Acquire(context.Background()); rej != nil || err != nil {
		t.Fatalf("acquire 2: %v %v", rej, err)
	}

	// Two more queue behind the limit.
	type res struct {
		rej *Rejection
		err error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rej, err := l.Acquire(context.Background())
			results <- res{rej, err}
		}()
	}
	waitFor(t, func() bool { return l.QueueDepth() == 2 }, "queue to fill")

	// Fifth arrival: queue full → shed immediately.
	rej, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("saturated acquire errored: %v", err)
	}
	if rej == nil {
		t.Fatalf("saturated acquire admitted")
	}
	if rej.Reason != ReasonSaturated {
		t.Fatalf("reason = %q, want %q", rej.Reason, ReasonSaturated)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("retry-after hint missing: %v", rej.RetryAfter)
	}
	if !l.Saturated() {
		t.Fatalf("Saturated() = false at the limit")
	}

	// Releases hand slots to the queued waiters FIFO.
	l.Release(OutcomeSuccess, time.Millisecond)
	l.Release(OutcomeSuccess, time.Millisecond)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.rej != nil || r.err != nil {
			t.Fatalf("queued waiter %d: %v %v", i, r.rej, r.err)
		}
	}
	l.Release(OutcomeSuccess, time.Millisecond)
	l.Release(OutcomeSuccess, time.Millisecond)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after all releases", got)
	}
	if got := l.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

// TestLimiterAcquireCancellation: a queued waiter whose context dies
// leaves the queue cleanly and does not leak its (never-granted) slot.
func TestLimiterAcquireCancellation(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 1, 1, 4)

	if rej, err := l.Acquire(context.Background()); rej != nil || err != nil {
		t.Fatalf("acquire: %v %v", rej, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return l.QueueDepth() == 1 }, "waiter to queue")
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v, want context.Canceled", err)
	}
	// The canceled waiter must not absorb the released slot.
	l.Release(OutcomeSuccess, time.Millisecond)
	if !l.TryAcquire() {
		t.Fatalf("slot leaked to canceled waiter")
	}
	l.Release(OutcomeSuccess, time.Millisecond)
	if got := l.Stats().Canceled; got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
}

// TestLimiterShrinkBelowInflight: when a decrease drops the limit under
// current inflight, freed slots are retired instead of handed to waiters
// until inflight fits the new limit again.
func TestLimiterShrinkBelowInflight(t *testing.T) {
	clk := newFakeClock()
	l := testLimiter(clk, 1, 8, 8, 8)
	for i := 0; i < 8; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d failed", i)
		}
	}
	acquired := make(chan struct{})
	go func() {
		l.Acquire(context.Background())
		close(acquired)
	}()
	waitFor(t, func() bool { return l.QueueDepth() == 1 }, "waiter to queue")

	// Failure halves the limit to 4: inflight (8) is now over it.
	l.Release(OutcomeFailure, 0)
	select {
	case <-acquired:
		t.Fatalf("waiter granted a slot while inflight exceeds the shrunken limit")
	case <-time.After(20 * time.Millisecond):
	}
	// Draining to 3 in-flight lets the waiter in (3 < 4).
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		l.Release(OutcomeSuccess, time.Millisecond)
	}
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter never granted after drain below the new limit")
	}
}

// TestLimiterConcurrentChurn (run with -race): random outcomes from many
// goroutines; afterwards the limit is in bounds and nothing leaked.
func TestLimiterConcurrentChurn(t *testing.T) {
	l := NewLimiter(LimiterConfig{
		MinLimit: 2, MaxLimit: 32, InitialLimit: 8, MaxQueue: 16,
		DecreaseCooldown: time.Microsecond,
	})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				ctx := context.Background()
				if rng.Intn(8) == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
					defer cancel()
				}
				rej, err := l.Acquire(ctx)
				if rej != nil || err != nil {
					continue
				}
				out := OutcomeSuccess
				switch rng.Intn(10) {
				case 0:
					out = OutcomeFailure
				case 1:
					out = OutcomeCanceled
				}
				l.Release(out, time.Duration(rng.Intn(1000))*time.Microsecond)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after churn, want 0", got)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d after churn, want 0", got)
	}
	if lim := l.Limit(); lim < 2 || lim > 32 {
		t.Fatalf("limit %v escaped [2, 32]", lim)
	}
}

// waitFor polls cond until true or the deadline trips the test.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
