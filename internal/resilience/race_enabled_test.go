//go:build race

package resilience

// raceEnabled disables allocation-budget assertions under the race
// detector, where instrumentation changes allocation behaviour.
const raceEnabled = true
