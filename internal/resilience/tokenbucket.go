package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// QuotaConfig parameterises the per-tenant token buckets.
type QuotaConfig struct {
	// Rate is the sustained request budget per tenant, in tokens per
	// second. <= 0 disables quota enforcement.
	Rate float64
	// Burst is the bucket capacity: how far a quiet tenant may burst
	// above the sustained rate. Defaults to max(Rate, 1).
	Burst float64
	// Shards is the number of independently locked bucket-map shards
	// (the same idiom as the tenant registry). Defaults to 16.
	Shards int
	// MaxTenants bounds tracked buckets across all shards so an
	// unbounded tenant-ID space cannot grow the table forever. When a
	// shard is full, new tenants are admitted without a bucket (quota
	// enforcement degrades open, never blocks the request path on
	// eviction logic). Defaults to 65536.
	MaxTenants int
	// Clock is the refill time source. Nil defaults to the wall clock;
	// simulations inject a virtual one so bucket refill runs on virtual
	// time.
	Clock sim.Clock
	// Now overrides the clock directly (tests scripting exact
	// timestamps). Defaults to Clock.Now.
	Now func() time.Time
}

// TokenBuckets is a sharded table of lazily created per-tenant token
// buckets. Allow is the hot-path admission check: a shard-read map
// lookup plus constant arithmetic under the bucket's own lock — zero
// allocations for tenants already tracked.
type TokenBuckets struct {
	cfg    QuotaConfig
	shards []bucketShard

	allowed  atomic.Int64
	rejected atomic.Int64
}

type bucketShard struct {
	mu      sync.RWMutex
	buckets map[string]*bucket
}

type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time

	shed atomic.Int64 // requests this tenant had rejected
}

// NewTokenBuckets builds the table. Panics if cfg.Rate <= 0 (the caller
// should simply not construct a disabled quota).
func NewTokenBuckets(cfg QuotaConfig) *TokenBuckets {
	if cfg.Rate <= 0 {
		panic("resilience: QuotaConfig.Rate must be positive")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 65536
	}
	if cfg.Now == nil {
		cfg.Now = sim.Or(cfg.Clock).Now
	}
	tb := &TokenBuckets{cfg: cfg, shards: make([]bucketShard, cfg.Shards)}
	for i := range tb.shards {
		tb.shards[i].buckets = make(map[string]*bucket)
	}
	return tb
}

func (tb *TokenBuckets) shard(tenant string) *bucketShard {
	// Inline FNV-1a over the string: hash.Hash32 would allocate on the
	// admission hot path.
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= prime32
	}
	return &tb.shards[h%uint32(len(tb.shards))]
}

// Allow spends one token from tenant's bucket. It returns nil when the
// request is admitted, or a *Rejection carrying the time until the next
// token refills. A tenant's first request creates its bucket (full).
func (tb *TokenBuckets) Allow(tenant string) *Rejection {
	sh := tb.shard(tenant)
	sh.mu.RLock()
	b := sh.buckets[tenant]
	sh.mu.RUnlock()
	if b == nil {
		sh.mu.Lock()
		b = sh.buckets[tenant]
		if b == nil {
			if len(sh.buckets) >= tb.cfg.MaxTenants/len(tb.shards)+1 {
				// Table full: admit untracked rather than stall the
				// request path on eviction machinery.
				sh.mu.Unlock()
				tb.allowed.Add(1)
				return nil
			}
			b = &bucket{tokens: tb.cfg.Burst, last: tb.cfg.Now()}
			sh.buckets[tenant] = b
		}
		sh.mu.Unlock()
	}
	now := tb.cfg.Now()
	b.mu.Lock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * tb.cfg.Rate
		if b.tokens > tb.cfg.Burst {
			b.tokens = tb.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		tb.allowed.Add(1)
		return nil
	}
	wait := time.Duration((1 - b.tokens) / tb.cfg.Rate * float64(time.Second))
	b.mu.Unlock()
	b.shed.Add(1)
	tb.rejected.Add(1)
	return &Rejection{Reason: ReasonQuota, RetryAfter: wait}
}

// TenantShed is one tenant's cumulative quota-rejection count.
type TenantShed struct {
	Tenant string `json:"tenant"`
	Shed   int64  `json:"shed"`
}

// QuotaStats summarises the quota table.
type QuotaStats struct {
	// Rate and Burst echo the configuration.
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
	// Tenants is the number of tracked buckets.
	Tenants int `json:"tenants"`
	// Allowed and Rejected are cumulative admission outcomes.
	Allowed  int64 `json:"allowed"`
	Rejected int64 `json:"rejected"`
	// TopShed lists the tenants with the most rejections, largest
	// first, capped at 10 (empty when nothing was shed).
	TopShed []TenantShed `json:"top_shed,omitempty"`
}

// Allowed and Rejected expose the cumulative counters for metric
// callbacks without building a full snapshot.
func (tb *TokenBuckets) Allowed() int64  { return tb.allowed.Load() }
func (tb *TokenBuckets) Rejected() int64 { return tb.rejected.Load() }

// Tenants reports the number of tracked buckets.
func (tb *TokenBuckets) Tenants() int {
	n := 0
	for i := range tb.shards {
		sh := &tb.shards[i]
		sh.mu.RLock()
		n += len(sh.buckets)
		sh.mu.RUnlock()
	}
	return n
}

// Stats snapshots the table, walking every bucket once.
func (tb *TokenBuckets) Stats() QuotaStats {
	s := QuotaStats{
		Rate:     tb.cfg.Rate,
		Burst:    tb.cfg.Burst,
		Allowed:  tb.allowed.Load(),
		Rejected: tb.rejected.Load(),
	}
	var shed []TenantShed
	for i := range tb.shards {
		sh := &tb.shards[i]
		sh.mu.RLock()
		s.Tenants += len(sh.buckets)
		for tenant, b := range sh.buckets {
			if n := b.shed.Load(); n > 0 {
				shed = append(shed, TenantShed{Tenant: tenant, Shed: n})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(shed, func(i, j int) bool {
		if shed[i].Shed != shed[j].Shed {
			return shed[i].Shed > shed[j].Shed
		}
		return shed[i].Tenant < shed[j].Tenant
	})
	if len(shed) > 10 {
		shed = shed[:10]
	}
	s.TopShed = shed
	return s
}
