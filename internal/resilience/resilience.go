// Package resilience is the serving layer's overload-protection toolkit:
// the mechanisms that keep a multi-tenant semantic cache answering when
// its upstream LLM is slow, failing, or simply outnumbered by demand.
//
// The pieces, assembled by a Governor and wired through internal/server:
//
//   - TokenBuckets: lazily created, sharded per-tenant token-bucket
//     quotas, enforced before any per-request work so one tenant cannot
//     starve the rest.
//   - Limiter: an AIMD adaptive concurrency limiter for the upstream
//     miss path — additive increase on healthy responses, multiplicative
//     decrease on timeouts/errors and on latency-gradient congestion —
//     with a bounded FIFO wait queue. Requests past the queue bound are
//     shed immediately instead of stacking up behind a slow upstream.
//   - Breaker: a per-upstream circuit breaker (closed → open on
//     error/timeout rate over a sliding outcome window, half-open
//     probes). While open, the serving layer degrades to cache-only
//     mode: hits are still answered (at a relaxed τ), misses are shed
//     with Retry-After instead of being queued into a dead upstream.
//   - Weighted: a weighted semaphore guarding expensive non-request
//     work (re-embedding, tier migration, FL rounds) so background
//     maintenance yields to foreground traffic under pressure.
//
// Every type is safe for concurrent use and keeps its hot path
// allocation-free; admission checks are designed to ride the PR 5
// zero-alloc query path without widening its budget.
package resilience

import (
	"fmt"
	"time"
)

// Shed reasons reported by Rejection.Reason and the shed counters.
const (
	// ReasonQuota: the tenant's token bucket is empty.
	ReasonQuota = "quota"
	// ReasonSaturated: the upstream concurrency limiter and its wait
	// queue are full.
	ReasonSaturated = "saturated"
	// ReasonUpstreamOpen: the upstream circuit breaker is open and the
	// request could not be served from cache.
	ReasonUpstreamOpen = "breaker_open"
)

// Rejection is a load-shedding decision: the request was refused by an
// admission mechanism rather than failed by the work itself. The serving
// layer maps it to 429/503 with a Retry-After header; CacheOnly marks
// rejections that should first attempt degraded cache-only serving.
type Rejection struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter is the caller's backoff hint (how long until a quota
	// token refills, or until the breaker half-opens).
	RetryAfter time.Duration
	// CacheOnly reports that the upstream is unavailable (breaker open)
	// but cached answers may still be served at a relaxed threshold.
	CacheOnly bool
}

// Error implements error.
func (r *Rejection) Error() string {
	return fmt.Sprintf("resilience: shed (%s), retry after %v", r.Reason, r.RetryAfter)
}

// GovernorConfig assembles a Governor. Zero-valued sections disable the
// corresponding mechanism (a nil Governor disables everything).
type GovernorConfig struct {
	// Quota configures per-tenant token buckets; Rate <= 0 disables
	// quota enforcement.
	Quota QuotaConfig
	// Limiter configures the upstream AIMD concurrency limiter;
	// MaxLimit <= 0 disables it.
	Limiter LimiterConfig
	// Breaker configures the upstream circuit breaker; Window <= 0
	// disables it.
	Breaker BreakerConfig
	// MaintenanceWeight is the weighted-semaphore capacity for
	// background work (re-embedding, tier migration, FL rounds);
	// <= 0 disables gating (background work proceeds unchecked).
	MaintenanceWeight int64
}

// Governor bundles the serving layer's resilience state: quotas at the
// front door, limiter + breaker on the upstream path, and the
// maintenance semaphore for background work. Any field may be nil when
// the mechanism is disabled.
type Governor struct {
	Quotas      *TokenBuckets
	Limiter     *Limiter
	Breaker     *Breaker
	Maintenance *Weighted
}

// NewGovernor builds a Governor from cfg, instantiating only the
// mechanisms cfg enables.
func NewGovernor(cfg GovernorConfig) *Governor {
	g := &Governor{}
	if cfg.Quota.Rate > 0 {
		g.Quotas = NewTokenBuckets(cfg.Quota)
	}
	if cfg.Limiter.MaxLimit > 0 {
		g.Limiter = NewLimiter(cfg.Limiter)
	}
	if cfg.Breaker.Window > 0 {
		g.Breaker = NewBreaker(cfg.Breaker)
	}
	if cfg.MaintenanceWeight > 0 {
		g.Maintenance = NewWeighted(cfg.MaintenanceWeight)
	}
	return g
}

// Admit runs the front-door admission check for one tenant request.
// It returns nil when the request may proceed, or a *Rejection when the
// tenant's quota is exhausted. Nil-safe: a nil Governor admits everything.
func (g *Governor) Admit(tenant string) *Rejection {
	if g == nil || g.Quotas == nil {
		return nil
	}
	return g.Quotas.Allow(tenant)
}

// Saturated reports whether the upstream limiter is running at its
// concurrency limit with work queued behind it — the signal the cluster
// layer uses to suppress speculative hedged forwards. Nil-safe.
func (g *Governor) Saturated() bool {
	if g == nil || g.Limiter == nil {
		return false
	}
	return g.Limiter.Saturated()
}

// Stats snapshots every enabled mechanism (nil sections are disabled).
type GovernorStats struct {
	Quota       *QuotaStats   `json:"quota,omitempty"`
	Limiter     *LimiterStats `json:"limiter,omitempty"`
	Breaker     *BreakerStats `json:"breaker,omitempty"`
	Maintenance *WeightedInfo `json:"maintenance,omitempty"`
}

// Stats snapshots the governor. Nil-safe (returns zero stats).
func (g *Governor) Stats() GovernorStats {
	var s GovernorStats
	if g == nil {
		return s
	}
	if g.Quotas != nil {
		qs := g.Quotas.Stats()
		s.Quota = &qs
	}
	if g.Limiter != nil {
		ls := g.Limiter.Stats()
		s.Limiter = &ls
	}
	if g.Breaker != nil {
		bs := g.Breaker.Stats()
		s.Breaker = &bs
	}
	if g.Maintenance != nil {
		ws := g.Maintenance.Info()
		s.Maintenance = &ws
	}
	return s
}
