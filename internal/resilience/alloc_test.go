package resilience

import (
	"testing"
	"time"
)

// The admission checks ride the PR 5 zero-alloc query hot path: a
// tracked tenant's quota check, a closed breaker's Allow/Record pair,
// and an uncontended limiter Acquire/Release must all be free.

func TestQuotaAllowZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	tb := NewTokenBuckets(QuotaConfig{Rate: 1e9, Burst: 1e9})
	tb.Allow("tenant-hot") // create the bucket outside the measured loop
	if n := testing.AllocsPerRun(1000, func() {
		if rej := tb.Allow("tenant-hot"); rej != nil {
			t.Fatalf("unexpected rejection: %v", rej)
		}
	}); n != 0 {
		t.Fatalf("TokenBuckets.Allow allocates %v/op on the hot path, want 0", n)
	}
}

func TestBreakerClosedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	b := NewBreaker(BreakerConfig{Window: 64})
	if n := testing.AllocsPerRun(1000, func() {
		if rej := b.Allow(); rej != nil {
			t.Fatalf("closed breaker rejected: %v", rej)
		}
		b.Record(true)
	}); n != 0 {
		t.Fatalf("closed Breaker Allow+Record allocates %v/op, want 0", n)
	}
}

func TestLimiterUncontendedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := NewLimiter(LimiterConfig{MaxLimit: 64, InitialLimit: 64})
	if n := testing.AllocsPerRun(1000, func() {
		if !l.TryAcquire() {
			t.Fatalf("uncontended acquire failed")
		}
		l.Release(OutcomeSuccess, time.Millisecond)
	}); n != 0 {
		t.Fatalf("uncontended Limiter acquire/release allocates %v/op, want 0", n)
	}
}
