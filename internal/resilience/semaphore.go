package resilience

import (
	"context"
	"sync"
)

// Weighted is a weighted semaphore with FIFO fairness, guarding
// expensive non-request work (re-embedding a tenant, migrating an index
// tier, running an FL round) so background maintenance yields to
// foreground traffic instead of competing with it for CPU under
// pressure. It is the in-repo analogue of x/sync/semaphore.Weighted
// (which the module does not vendor).
//
// Its method set matches the structural gate interfaces declared by the
// consumers (cache.Gate, flserve's maintenance gate), so one semaphore
// instance can guard all background subsystems at once.
type Weighted struct {
	size int64

	mu      sync.Mutex
	cur     int64
	waiters []*semWaiter
}

type semWaiter struct {
	n        int64
	ch       chan struct{}
	canceled bool
}

// NewWeighted builds a semaphore with the given capacity.
func NewWeighted(size int64) *Weighted {
	if size <= 0 {
		panic("resilience: semaphore capacity must be positive")
	}
	return &Weighted{size: size}
}

// Acquire blocks until n units are available or ctx is done. Requests
// heavier than the capacity are clamped to it (they serialise against
// everything) rather than deadlocking.
func (w *Weighted) Acquire(ctx context.Context, n int64) error {
	if n > w.size {
		n = w.size
	}
	if n <= 0 {
		n = 1
	}
	w.mu.Lock()
	if w.cur+n <= w.size && len(w.waiters) == 0 {
		w.cur += n
		w.mu.Unlock()
		return nil
	}
	sw := &semWaiter{n: n, ch: make(chan struct{})}
	w.waiters = append(w.waiters, sw)
	w.mu.Unlock()
	select {
	case <-sw.ch:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		select {
		case <-sw.ch:
			// Granted in the race window: give the units back.
			w.cur -= sw.n
			w.notifyLocked()
			w.mu.Unlock()
		default:
			sw.canceled = true
			w.mu.Unlock()
		}
		return ctx.Err()
	}
}

// TryAcquire claims n units only if they are free right now (and no
// earlier waiter is queued — FIFO order is never jumped).
func (w *Weighted) TryAcquire(n int64) bool {
	if n > w.size {
		n = w.size
	}
	if n <= 0 {
		n = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur+n <= w.size && len(w.waiters) == 0 {
		w.cur += n
		return true
	}
	return false
}

// Release returns n units (clamped like Acquire).
func (w *Weighted) Release(n int64) {
	if n > w.size {
		n = w.size
	}
	if n <= 0 {
		n = 1
	}
	w.mu.Lock()
	w.cur -= n
	if w.cur < 0 {
		w.cur = 0
	}
	w.notifyLocked()
	w.mu.Unlock()
}

// notifyLocked grants queued waiters in FIFO order while capacity lasts.
func (w *Weighted) notifyLocked() {
	for len(w.waiters) > 0 {
		sw := w.waiters[0]
		if sw.canceled {
			w.waiters = popSemWaiter(w.waiters)
			continue
		}
		if w.cur+sw.n > w.size {
			return
		}
		w.cur += sw.n
		w.waiters = popSemWaiter(w.waiters)
		close(sw.ch)
	}
}

func popSemWaiter(ws []*semWaiter) []*semWaiter {
	copy(ws, ws[1:])
	ws[len(ws)-1] = nil
	return ws[:len(ws)-1]
}

// WeightedInfo snapshots the semaphore.
type WeightedInfo struct {
	Capacity int64 `json:"capacity"`
	Held     int64 `json:"held"`
	Waiters  int   `json:"waiters"`
}

// Info snapshots the semaphore.
func (w *Weighted) Info() WeightedInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	info := WeightedInfo{Capacity: w.size, Held: w.cur}
	for _, sw := range w.waiters {
		if !sw.canceled {
			info.Waiters++
		}
	}
	return info
}
