package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWeightedBasic: capacity accounting and release.
func TestWeightedBasic(t *testing.T) {
	w := NewWeighted(3)
	if err := w.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if !w.TryAcquire(1) {
		t.Fatalf("try 1 with 1 free failed")
	}
	if w.TryAcquire(1) {
		t.Fatalf("try 1 with 0 free succeeded")
	}
	w.Release(1)
	if !w.TryAcquire(1) {
		t.Fatalf("try after release failed")
	}
	w.Release(3)
	info := w.Info()
	if info.Held != 0 || info.Waiters != 0 {
		t.Fatalf("info = %+v, want empty", info)
	}
}

// TestWeightedClampsOversized: a request heavier than capacity
// serialises against everything instead of deadlocking.
func TestWeightedClampsOversized(t *testing.T) {
	w := NewWeighted(2)
	done := make(chan struct{})
	go func() {
		if err := w.Acquire(context.Background(), 100); err != nil {
			t.Errorf("oversized acquire: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("oversized acquire deadlocked")
	}
	if w.TryAcquire(1) {
		t.Fatalf("clamped acquire should hold the whole semaphore")
	}
	w.Release(100)
	if !w.TryAcquire(2) {
		t.Fatalf("release did not restore capacity")
	}
}

// TestWeightedFIFO: waiters are granted in arrival order and TryAcquire
// never jumps the queue.
func TestWeightedFIFO(t *testing.T) {
	w := NewWeighted(1)
	if err := w.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			w.Acquire(context.Background(), 1)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			w.Release(1)
		}()
		// Serialise arrival so FIFO order is observable.
		waitFor(t, func() bool { return w.Info().Waiters == i+1 }, "waiter to queue")
	}
	if w.TryAcquire(1) {
		t.Fatalf("TryAcquire jumped the waiter queue")
	}
	w.Release(1)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

// TestWeightedAcquireCancellation: a canceled waiter's claim is never
// granted and capacity is conserved.
func TestWeightedAcquireCancellation(t *testing.T) {
	w := NewWeighted(1)
	w.Acquire(context.Background(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- w.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return w.Info().Waiters == 1 }, "waiter to queue")
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("acquire returned %v, want context.Canceled", err)
	}
	w.Release(1)
	if !w.TryAcquire(1) {
		t.Fatalf("capacity leaked to canceled waiter")
	}
}

// TestWeightedConcurrent (run with -race): capacity is never exceeded
// under churn.
func TestWeightedConcurrent(t *testing.T) {
	const cap = 4
	w := NewWeighted(cap)
	var held atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := w.Acquire(context.Background(), n); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if h := held.Add(n); h > cap {
					t.Errorf("capacity exceeded: %d held", h)
				}
				held.Add(-n)
				w.Release(n)
			}
		}(int64(g%3 + 1))
	}
	wg.Wait()
	if w.Info().Held != 0 {
		t.Fatalf("units leaked: %+v", w.Info())
	}
}
