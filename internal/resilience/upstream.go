package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Caller is the upstream call shape the guard wraps. It structurally
// matches core.ContextLLM and the llmsim service/client, so this
// package depends on neither.
type Caller interface {
	QueryContext(ctx context.Context, q string) (response string, took time.Duration, err error)
}

// Guard wraps an upstream Caller with the governor's miss-path
// protections, applied in shed-first order:
//
//  1. Circuit breaker: open → reject immediately with CacheOnly set,
//     so the serving layer answers from cache at a relaxed τ (or sheds
//     with Retry-After) instead of queueing into a dead upstream.
//  2. AIMD concurrency limiter: at the limit the request waits in the
//     bounded queue; past the queue it is shed with Retry-After.
//  3. Timeout: the call runs under Timeout (when set) in addition to
//     the request's own deadline; an expiry counts as a failure for
//     both the limiter and the breaker.
//
// Guard implements both QueryContext (core.ContextLLM) and the legacy
// Query (core.LLM), so it drops into core.Options.LLM directly.
type Guard struct {
	inner   Caller
	limiter *Limiter
	breaker *Breaker
	timeout time.Duration
	clock   sim.Clock

	calls     atomic.Int64
	successes atomic.Int64
	failures  atomic.Int64
	timeouts  atomic.Int64
}

// NewGuard wraps inner with g's limiter and breaker (either may be
// disabled) and a per-call timeout (0 = none beyond the request's own
// deadline).
func NewGuard(inner Caller, g *Governor, timeout time.Duration) *Guard {
	u := &Guard{inner: inner, timeout: timeout, clock: sim.Wall}
	if g != nil {
		u.limiter = g.Limiter
		u.breaker = g.Breaker
	}
	return u
}

// WithClock sets the time source for latency measurement and the
// per-call timeout (simulations). Returns the guard for chaining.
func (u *Guard) WithClock(c sim.Clock) *Guard {
	u.clock = sim.Or(c)
	return u
}

// QueryContext runs one guarded upstream call. Shed decisions surface
// as a *Rejection error (match with AsRejection); upstream failures and
// timeouts are wrapped and propagated.
func (u *Guard) QueryContext(ctx context.Context, q string) (string, time.Duration, error) {
	if u.breaker != nil {
		if rej := u.breaker.Allow(); rej != nil {
			return "", 0, rej
		}
	}
	if u.limiter != nil {
		rej, err := u.limiter.Acquire(ctx)
		if rej != nil {
			// The call never happened: release the breaker admission
			// without recording an outcome — saturation says nothing
			// about upstream health.
			if u.breaker != nil {
				u.breaker.Cancel()
			}
			return "", 0, rej
		}
		if err != nil {
			if u.breaker != nil {
				u.breaker.Cancel()
			}
			return "", 0, fmt.Errorf("resilience: canceled waiting for upstream slot: %w", err)
		}
	}
	cctx := ctx
	var cancel context.CancelFunc
	if u.timeout > 0 {
		cctx, cancel = sim.ContextWithTimeout(ctx, u.clock, u.timeout)
	}
	u.calls.Add(1)
	start := u.clock.Now()
	resp, took, err := u.inner.QueryContext(cctx, q)
	wall := u.clock.Since(start)
	if cancel != nil {
		cancel()
	}

	timedOut := err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
	clientGone := err != nil && ctx.Err() != nil && !timedOut
	outcome := OutcomeSuccess
	switch {
	case clientGone:
		// The caller disconnected mid-call: no verdict on upstream
		// health, no limit adjustment.
		outcome = OutcomeCanceled
	case err != nil:
		outcome = OutcomeFailure
	}
	if u.limiter != nil {
		u.limiter.Release(outcome, wall)
	}
	if u.breaker != nil {
		if outcome == OutcomeCanceled {
			u.breaker.Cancel()
		} else {
			u.breaker.Record(outcome == OutcomeSuccess)
		}
	}
	switch {
	case timedOut:
		u.timeouts.Add(1)
		return "", wall, fmt.Errorf("resilience: upstream timed out after %v: %w", u.timeout, err)
	case err != nil:
		u.failures.Add(1)
		return "", wall, fmt.Errorf("resilience: upstream: %w", err)
	}
	u.successes.Add(1)
	return resp, took, nil
}

// Query adapts the guard to the legacy context-free LLM interface
// (errors become error-text responses, matching llmsim.Client). Serving
// paths use QueryContext; this exists for harness callers only.
func (u *Guard) Query(q string) (string, time.Duration) {
	resp, took, err := u.QueryContext(context.Background(), q)
	if err != nil {
		return fmt.Sprintf("error: %v", err), took
	}
	return resp, took
}

// GuardStats snapshots the guard's call counters.
type GuardStats struct {
	Calls     int64 `json:"calls"`
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`
	Timeouts  int64 `json:"timeouts"`
}

// Stats snapshots the guard.
func (u *Guard) Stats() GuardStats {
	return GuardStats{
		Calls:     u.calls.Load(),
		Successes: u.successes.Load(),
		Failures:  u.failures.Load(),
		Timeouts:  u.timeouts.Load(),
	}
}

// AsRejection unwraps a shed decision from an error chain. ok is false
// for genuine upstream failures (which deserve a 502, not a 429/503).
func AsRejection(err error) (*Rejection, bool) {
	var rej *Rejection
	if errors.As(err, &rej) {
		return rej, true
	}
	return nil, false
}
