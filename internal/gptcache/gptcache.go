// Package gptcache reimplements the baseline MeanCache is evaluated
// against (GPTCache, Bang 2023) at the fidelity the paper's comparison
// uses: a server-side semantic cache with
//
//   - a single shared cache for all users (queries from every user are
//     matched against everyone's entries),
//   - a fixed cosine-similarity threshold of 0.7 over Albert embeddings —
//     "the optimal configuration as described in the GPTCache study"
//     (§IV-A) — with no per-user adaptation,
//   - no context-chain tracking: candidates match on query similarity
//     alone, which is precisely what produces the contextual false hits
//     of Figures 8–9,
//   - network round trips on every query, hit or miss, because the cache
//     lives server-side.
package gptcache

import (
	"time"

	"repro/internal/cache"
	"repro/internal/embed"
)

// DefaultTau is GPTCache's suggested similarity threshold (§IV-A).
const DefaultTau = 0.7

// LLM is the upstream model the cache fronts.
type LLM interface {
	Query(q string) (response string, took time.Duration)
}

// Options configures the baseline.
type Options struct {
	// Encoder produces embeddings; the paper's baseline configuration
	// uses Albert. Required.
	Encoder embed.Encoder
	// LLM is the upstream service (may be nil for Lookup-only use).
	LLM LLM
	// Tau is the fixed threshold; zero means DefaultTau.
	Tau float32
	// TopK bounds candidates per lookup.
	TopK int
	// NetworkRTT is added to every query's latency, modelling the
	// client→server hop a server-side cache cannot avoid.
	NetworkRTT time.Duration
}

// Cache is the server-side baseline instance.
type Cache struct {
	opts  Options
	store *cache.Cache
}

// New builds the baseline.
func New(opts Options) *Cache {
	if opts.Encoder == nil {
		panic("gptcache: Options.Encoder is required")
	}
	if opts.Tau == 0 {
		opts.Tau = DefaultTau
	}
	if opts.TopK <= 0 {
		opts.TopK = 1
	}
	return &Cache{
		opts:  opts,
		store: cache.New(opts.Encoder.Dim(), 0, cache.None{}),
	}
}

// Store exposes the underlying cache for the storage experiments.
func (g *Cache) Store() *cache.Cache { return g.store }

// Result mirrors core.Result for the baseline.
type Result struct {
	Response   string
	Hit        bool
	Entry      *cache.Entry
	Score      float32
	Latency    time.Duration
	SearchTime time.Duration
}

// Lookup checks the cache for q. Context is ignored by design — the
// baseline has no notion of it.
func (g *Cache) Lookup(q string) Result {
	start := time.Now()
	eq := g.opts.Encoder.Encode(q)
	matches := g.store.FindSimilar(eq, g.opts.TopK, g.opts.Tau)
	var res Result
	if len(matches) > 0 {
		m := matches[0]
		g.store.Touch(m.Entry.ID)
		res = Result{Response: m.Entry.Response, Hit: true, Entry: m.Entry, Score: m.Score}
	}
	res.SearchTime = time.Since(start)
	res.Latency = res.SearchTime + g.opts.NetworkRTT
	return res
}

// Insert enrols a query/response pair.
func (g *Cache) Insert(q, response string) (int, error) {
	eq := g.opts.Encoder.Encode(q)
	return g.store.Put(q, response, eq, cache.NoParent)
}

// Query is the end-to-end path: lookup, then on a miss consult the LLM and
// cache the answer. Every call pays the network round trip.
func (g *Cache) Query(q string) (Result, error) {
	res := g.Lookup(q)
	if res.Hit {
		return res, nil
	}
	resp, took := g.opts.LLM.Query(q)
	id, err := g.Insert(q, resp)
	if err != nil {
		return res, err
	}
	entry, _ := g.store.Get(id)
	res.Response = resp
	res.Entry = entry
	res.Latency += took
	return res, nil
}
