package gptcache

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/vecmath"
)

type stubEncoder struct {
	dim int
	m   map[string][]float32
}

func newStub(dim int) *stubEncoder {
	return &stubEncoder{dim: dim, m: make(map[string][]float32)}
}

func (s *stubEncoder) alias(seed int64, texts ...string) {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, s.dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	for _, t := range texts {
		s.m[t] = v
	}
}

func (s *stubEncoder) Encode(text string) []float32 {
	if v, ok := s.m[text]; ok {
		return vecmath.Clone(v)
	}
	var h int64
	for _, r := range text {
		h = h*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(h))
	v := make([]float32, s.dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}

func (s *stubEncoder) Dim() int     { return s.dim }
func (s *stubEncoder) Name() string { return "stub" }

type stubLLM struct{ calls int }

func (l *stubLLM) Query(q string) (string, time.Duration) {
	l.calls++
	return "resp: " + q, 50 * time.Millisecond
}

func TestDefaultTau(t *testing.T) {
	g := New(Options{Encoder: newStub(8)})
	if g.opts.Tau != DefaultTau {
		t.Fatalf("default tau = %v, want %v", g.opts.Tau, DefaultTau)
	}
}

func TestMissThenHit(t *testing.T) {
	enc := newStub(64)
	enc.alias(1, "plot a line", "draw a line")
	llm := &stubLLM{}
	g := New(Options{Encoder: enc, LLM: llm})
	r1, err := g.Query("plot a line")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.Hit || llm.calls != 1 {
		t.Fatalf("first query: hit=%v calls=%d", r1.Hit, llm.calls)
	}
	r2, _ := g.Query("draw a line")
	if !r2.Hit || llm.calls != 1 {
		t.Fatalf("duplicate: hit=%v calls=%d", r2.Hit, llm.calls)
	}
}

func TestIgnoresContextByDesign(t *testing.T) {
	// The baseline has no context API at all: a follow-up query matches
	// any cached similar text regardless of conversation — the defect
	// Figures 8–9 quantify.
	enc := newStub(64)
	enc.alias(2, "change the color to red")
	g := New(Options{Encoder: enc})
	g.Insert("change the color to red", "cached follow-up response")
	r := g.Lookup("change the color to red")
	if !r.Hit {
		t.Fatal("baseline should hit on raw similarity")
	}
}

func TestNetworkRTTAlwaysPaid(t *testing.T) {
	enc := newStub(32)
	enc.alias(3, "q", "q dup")
	llm := &stubLLM{}
	rtt := 30 * time.Millisecond
	g := New(Options{Encoder: enc, LLM: llm, NetworkRTT: rtt})
	g.Query("q")
	r, _ := g.Query("q dup") // hit — but server-side, so RTT still applies
	if !r.Hit {
		t.Fatal("duplicate missed")
	}
	if r.Latency < rtt {
		t.Fatalf("hit latency %v below network RTT %v", r.Latency, rtt)
	}
}

func TestSharedCacheAcrossUsers(t *testing.T) {
	// Server-side cache: user B's duplicate of user A's query hits.
	enc := newStub(64)
	enc.alias(4, "user a question", "user b same question")
	llm := &stubLLM{}
	g := New(Options{Encoder: enc, LLM: llm})
	g.Query("user a question")              // user A
	r, _ := g.Query("user b same question") // user B
	if !r.Hit {
		t.Fatal("shared cache did not serve across users")
	}
	if llm.calls != 1 {
		t.Fatalf("LLM calls = %d, want 1", llm.calls)
	}
}

func TestNewPanicsWithoutEncoder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted empty Options")
		}
	}()
	New(Options{})
}
