package fl

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/train"
)

type trainPair = dataset.Pair

// NewLocalClient builds an in-process client. The model must share the
// architecture of the server's global model (same weight layout). pairs is
// the client's private data; a fraction is held out as the validation set
// for the threshold search (§IV-A.1: each client uses its validation data
// to determine the optimal cosine threshold).
func NewLocalClient(id int, arch embed.Arch, seed int64, pairs []dataset.Pair, cfg train.Config, beta float64) *LocalClient {
	nVal := len(pairs) / 5
	if nVal < 2 {
		nVal = min(len(pairs), 2)
	}
	if beta <= 0 {
		beta = 1
	}
	// Distinct shuffling seed per client keeps local batch orders
	// decorrelated across the fleet.
	cfg.Seed = seed + int64(id)*101
	return &LocalClient{
		id:       id,
		model:    embed.NewModel(arch, seed),
		trainSet: pairs[nVal:],
		valSet:   pairs[:nVal],
		cfg:      cfg,
		beta:     beta,
	}
}

// hasBothLabels reports whether pairs contains at least one duplicate and
// one non-duplicate — the precondition for a meaningful threshold sweep.
func hasBothLabels(pairs []trainPair) bool {
	if len(pairs) < 2 {
		return false
	}
	var dup, nondup bool
	for _, p := range pairs {
		if p.Dup {
			dup = true
		} else {
			nondup = true
		}
	}
	return dup && nondup
}

// ID implements Client.
func (c *LocalClient) ID() int { return c.id }

// Samples reports the client's training-set size (the n_k of Eq. 1).
func (c *LocalClient) Samples() int { return len(c.trainSet) }

// TrainRound implements Client: install the global weights, fine-tune on
// the local shard (multitask contrastive + MNRL), search the local optimal
// threshold on the validation shard, and return both.
func (c *LocalClient) TrainRound(globalWeights []float32, globalTau float64) (Update, error) {
	if len(globalWeights) != c.model.WeightCount() {
		return Update{}, fmt.Errorf("fl: client %d: got %d weights, model has %d",
			c.id, len(globalWeights), c.model.WeightCount())
	}
	c.model.SetWeights(globalWeights)
	if len(c.trainSet) > 0 {
		tr := train.NewTrainer(c.model, train.NewSGD(c.cfg.LR), c.cfg)
		tr.Train(c.trainSet)
	}
	tau := globalTau
	if hasBothLabels(c.valSet) {
		// Cache-aware threshold search: the client optimises the F-score
		// of the cache decision, not the pairwise decision (§III-A.2).
		// The candidate pool includes the client's full local query log so
		// the max-over-N similarity tail resembles a deployed cache.
		// Single-label validation sets (possible for online shards built
		// from live feedback) skip the search: without both classes the
		// sweep degenerates to τ=0, which would poison the aggregate.
		extra := make([]string, 0, 2*len(c.trainSet))
		for _, p := range c.trainSet {
			extra = append(extra, p.A, p.B)
		}
		sweep := train.CacheSweepWithPool(c.model, c.valSet, extra, 0.01, c.beta)
		tau = sweep.Optimal.Tau
	}
	return Update{
		Weights: c.model.Weights(),
		Tau:     tau,
		Samples: max(len(c.trainSet), 1),
	}, nil
}
