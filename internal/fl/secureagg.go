package fl

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/vecmath"
)

// Secure aggregation (Bonawitz-style pairwise additive masking, simplified
// to the honest-but-curious, no-dropout setting): each pair of clients
// (i, j) in a round derives a shared mask vector from a pairwise seed;
// client i adds the mask, client j subtracts it. Individual updates reach
// the server statistically indistinguishable from noise, but the masks
// cancel exactly in the sum, so the aggregate equals plain FedAvg.
//
// This strengthens the paper's privacy story (§III-A): the server learns
// only the aggregated model, never an individual client's fine-tuned
// weights. The seed exchange is abstracted as a PairwiseSeed function —
// in a deployment it would come from a Diffie-Hellman agreement; here it
// is derived from client IDs and the round number, which suffices to
// demonstrate and test the cancellation algebra.

// PairwiseSeed derives the shared mask seed for an unordered client pair
// in a given round.
func PairwiseSeed(roundSeed int64, a, b int) int64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return roundSeed*1_000_003 + int64(lo)*7919 + int64(hi)*104729
}

// maskInto accumulates sign·PRG(seed) into dst. The mask entries are
// uniform in [-scale, scale], large relative to weight updates so a single
// masked update reveals nothing useful.
func maskInto(dst []float32, seed int64, sign float32, scale float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range dst {
		dst[i] += sign * float32((2*rng.Float64()-1)*scale)
	}
}

// MaskUpdate adds client id's pairwise masks for the given round roster to
// weights in place. Every client in roster must call MaskUpdate with the
// same roster and roundSeed for the masks to cancel in aggregation.
func MaskUpdate(weights []float32, id int, roster []int, roundSeed int64, scale float64) {
	for _, other := range roster {
		if other == id {
			continue
		}
		sign := float32(1)
		if other < id {
			sign = -1
		}
		maskInto(weights, PairwiseSeed(roundSeed, id, other), sign, scale)
	}
}

// SecureRoundResult is the outcome of one securely aggregated round.
type SecureRoundResult struct {
	// Aggregated is the sample-weighted mean of the clients' (unmasked)
	// weight vectors — identical to FedAvg on plaintext updates.
	Aggregated []float32
	// Tau is the sample-weighted mean threshold (thresholds are scalars
	// aggregated in the clear, as in the paper).
	Tau float64
	// Samples is the total sample count across clients (the n of Eq. 1;
	// counts are exchanged in the clear to weight the masked updates).
	Samples int
	// MaskedUpdates are the individual masked vectors as the server saw
	// them, exposed for tests and audits.
	MaskedUpdates [][]float32
}

// RunSecureRound executes one FL round with masked aggregation over the
// given clients: ship the global state, collect sample counts, have each
// client scale its update by n_k/n and add its pairwise masks, then sum.
// MaskScale controls mask magnitude (default 1.0, far above typical
// weight-update magnitudes).
func RunSecureRound(clients []Client, globalWeights []float32, globalTau float64, roundSeed int64, maskScale float64) (*SecureRoundResult, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: secure round needs at least one client")
	}
	if maskScale <= 0 {
		maskScale = 1
	}
	// Phase 1: local training (parallel, as in the plain server).
	updates := make([]Update, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			updates[i], errs[i] = c.TrainRound(globalWeights, globalTau)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fl: secure round client %d: %w", clients[i].ID(), err)
		}
	}
	total := 0
	for _, u := range updates {
		total += u.Samples
	}
	if total == 0 {
		return nil, fmt.Errorf("fl: secure round saw zero samples")
	}

	// Phase 2: clients scale by n_k/n and mask; the server only ever sees
	// the masked vectors.
	roster := make([]int, len(clients))
	for i, c := range clients {
		roster[i] = c.ID()
	}
	res := &SecureRoundResult{
		Aggregated:    make([]float32, len(globalWeights)),
		Samples:       total,
		MaskedUpdates: make([][]float32, len(clients)),
	}
	for i, u := range updates {
		if len(u.Weights) != len(globalWeights) {
			return nil, fmt.Errorf("fl: client %d returned %d weights, want %d",
				clients[i].ID(), len(u.Weights), len(globalWeights))
		}
		coef := float32(u.Samples) / float32(total)
		masked := make([]float32, len(u.Weights))
		for j, w := range u.Weights {
			masked[j] = coef * w
		}
		MaskUpdate(masked, clients[i].ID(), roster, roundSeed, maskScale)
		res.MaskedUpdates[i] = masked
		res.Tau += float64(u.Samples) / float64(total) * u.Tau
	}

	// Phase 3: the server sums masked updates; pairwise masks cancel.
	for _, masked := range res.MaskedUpdates {
		vecmath.Axpy(1, masked, res.Aggregated)
	}
	return res, nil
}
