// Package fl implements the federated-learning training stack of §III-A
// (the paper uses the Flower framework): a round-based server that ships
// the global embedding model and global threshold to a sampled subset of
// clients, clients that fine-tune locally on their private query pairs and
// search their optimal cosine threshold, and FedAvg aggregation of both
// weights (Eq. 1) and thresholds.
//
// Two deployments are supported with the same Server and Client types:
// in-process clients (the paper's simulation setup, §IV-A.2) and remote
// clients over a TCP/gob transport (tcp.go), demonstrating that the
// protocol is a real wire protocol rather than a loop over structs.
package fl

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/train"
)

// Update is what a client returns after local training: its new weights,
// its locally optimal threshold, and its sample count for weighting.
type Update struct {
	Weights []float32
	Tau     float64
	Samples int
}

// Client is one FL participant. TrainRound must install the supplied
// global weights, train locally, and return the update. Implementations
// must be safe to call from the server's worker goroutines (one call per
// client at a time).
type Client interface {
	// ID identifies the client for sampling and logs.
	ID() int
	// TrainRound performs one round of local work.
	TrainRound(globalWeights []float32, globalTau float64) (Update, error)
}

// Aggregator combines client updates into new global weights and tau.
type Aggregator interface {
	// Aggregate writes the combined weights into dst (sized like each
	// update's weights) and returns the combined threshold.
	Aggregate(dst []float32, updates []Update) float64
	// Name identifies the strategy.
	Name() string
}

// FedAvg is Eq. 1: weights averaged proportionally to client sample
// counts; thresholds averaged the same way (the paper aggregates τ on the
// server alongside the weights).
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(dst []float32, updates []Update) float64 {
	for i := range dst {
		dst[i] = 0
	}
	total := 0
	for _, u := range updates {
		total += u.Samples
	}
	if total == 0 {
		return 0
	}
	var tau float64
	for _, u := range updates {
		w := float32(u.Samples) / float32(total)
		for i, x := range u.Weights {
			dst[i] += w * x
		}
		tau += float64(u.Samples) / float64(total) * u.Tau
	}
	return tau
}

// SimpleAvg ignores sample counts: a plain mean over updates. Included as
// the ablation partner of FedAvg for unbalanced client data.
type SimpleAvg struct{}

// Name implements Aggregator.
func (SimpleAvg) Name() string { return "simpleavg" }

// Aggregate implements Aggregator.
func (SimpleAvg) Aggregate(dst []float32, updates []Update) float64 {
	for i := range dst {
		dst[i] = 0
	}
	if len(updates) == 0 {
		return 0
	}
	inv := 1 / float32(len(updates))
	var tau float64
	for _, u := range updates {
		for i, x := range u.Weights {
			dst[i] += inv * x
		}
		tau += u.Tau
	}
	return tau / float64(len(updates))
}

// ServerConfig tunes the orchestration.
type ServerConfig struct {
	// Rounds is the number of FL rounds (50 in §IV-E).
	Rounds int
	// ClientsPerRound is the sample size per round (4 in §IV-E).
	ClientsPerRound int
	// Seed drives client sampling.
	Seed int64
	// Aggregator defaults to FedAvg.
	Aggregator Aggregator
	// InitialTau seeds τ_global before the first aggregation.
	InitialTau float64
	// TolerateFailures drops failed clients from a round's aggregation
	// instead of failing the round, as production FL must tolerate
	// stragglers and dropouts. A round where every sampled client fails
	// still errors.
	TolerateFailures bool
}

// RoundInfo reports one completed round to the Run callback.
type RoundInfo struct {
	Round     int
	Sampled   []int // client IDs
	GlobalTau float64
}

// Server owns the global model state and runs the FL protocol.
type Server struct {
	cfg     ServerConfig
	model   *embed.Model // global model (weights are authoritative)
	clients []Client
	tau     float64
	rng     *rand.Rand
}

// NewServer builds a server around the initial global model.
func NewServer(global *embed.Model, clients []Client, cfg ServerConfig) *Server {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.ClientsPerRound <= 0 || cfg.ClientsPerRound > len(clients) {
		cfg.ClientsPerRound = len(clients)
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = FedAvg{}
	}
	return &Server{
		cfg:     cfg,
		model:   global,
		clients: clients,
		tau:     cfg.InitialTau,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Model returns the current global model. Callers must not mutate it while
// Run is in progress.
func (s *Server) Model() *embed.Model { return s.model }

// Tau returns the current global threshold τ_global.
func (s *Server) Tau() float64 { return s.tau }

// Run executes the configured number of rounds. After each round the
// callback (if non-nil) receives the round summary; it runs on the
// server's goroutine, so it may safely evaluate the global model.
func (s *Server) Run(cb func(RoundInfo)) error {
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := s.runRound(round, cb); err != nil {
			return fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	return nil
}

func (s *Server) runRound(round int, cb func(RoundInfo)) error {
	// Step 1: sample clients and ship the global state.
	perm := s.rng.Perm(len(s.clients))
	cohort := make([]Client, s.cfg.ClientsPerRound)
	for i, ci := range perm[:s.cfg.ClientsPerRound] {
		cohort[i] = s.clients[ci]
	}

	// Steps 2–4: the transport-agnostic cohort runner trains the sampled
	// clients in parallel and aggregates their updates.
	res, err := RunCohort(cohort, s.model.Weights(), s.tau, s.cfg.Aggregator, s.cfg.TolerateFailures)
	if err != nil {
		return err
	}
	s.tau = res.Tau
	s.model.SetWeights(res.Weights)

	if cb != nil {
		cb(RoundInfo{Round: round, Sampled: res.Trained, GlobalTau: s.tau})
	}
	return nil
}

// Ensure LocalClient keeps satisfying Client.
var _ Client = (*LocalClient)(nil)

// LocalClient is an in-process FL participant holding a private shard of
// labelled pairs. Its validation subset drives the optimal-threshold
// search of §III-A.2.
type LocalClient struct {
	id       int
	model    *embed.Model
	trainSet []trainPair
	valSet   []trainPair
	cfg      train.Config
	beta     float64
}

// trainPair aliases dataset.Pair without importing it here; see local.go.
