package fl

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"
)

func TestRunCohortAggregates(t *testing.T) {
	clients := []Client{
		&flakyClient{id: 0, weights: []float32{1, 1}},
		&flakyClient{id: 1, weights: []float32{3, 3}},
	}
	res, err := RunCohort(clients, []float32{0, 0}, 0.5, nil, false)
	if err != nil {
		t.Fatalf("RunCohort: %v", err)
	}
	if res.Weights[0] != 2 || res.Weights[1] != 2 {
		t.Fatalf("weights = %v, want [2 2]", res.Weights)
	}
	if len(res.Trained) != 2 || res.Samples != 2 {
		t.Fatalf("trained %v samples %d, want 2 clients / 2 samples", res.Trained, res.Samples)
	}
}

func TestRunCohortToleratesFailures(t *testing.T) {
	clients := []Client{
		&flakyClient{id: 0, weights: []float32{2, 2}},
		&flakyClient{id: 1, fail: true},
	}
	res, err := RunCohort(clients, []float32{0, 0}, 0.5, nil, true)
	if err != nil {
		t.Fatalf("RunCohort with tolerance: %v", err)
	}
	if len(res.Trained) != 1 || res.Trained[0] != 0 {
		t.Fatalf("trained = %v, want [0]", res.Trained)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("failed = %v, want [1]", res.Failed)
	}
	if res.Weights[0] != 2 {
		t.Fatalf("weights = %v, want survivor's [2 2]", res.Weights)
	}
}

func TestRunCohortEmptyAndAllFailed(t *testing.T) {
	if _, err := RunCohort(nil, []float32{0}, 0, nil, true); err == nil {
		t.Fatal("empty cohort did not error")
	}
	clients := []Client{&flakyClient{id: 0, fail: true}}
	if _, err := RunCohort(clients, []float32{0}, 0, nil, true); err == nil {
		t.Fatal("all-failed cohort did not error")
	}
}

// hangingClientHost registers with the hub and then reads round requests
// without ever replying — a hung client host.
func hangingClientHost(t *testing.T, addr string, id int) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := gob.NewEncoder(conn).Encode(hello{ClientID: id}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	go func() {
		// Drain requests forever, never answering.
		var req roundRequest
		dec := gob.NewDecoder(conn)
		for dec.Decode(&req) == nil {
		}
	}()
	return conn
}

func TestHubEvictsHungClientMidRound(t *testing.T) {
	hub, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.SetRoundTimeout(150 * time.Millisecond)

	// One responsive client host and one hung one.
	good := &flakyClient{id: 0, weights: []float32{1, 1}}
	go func() {
		if err := ServeClient(hub.Addr(), good); err != nil && !strings.Contains(err.Error(), "closed") {
			t.Errorf("good client host: %v", err)
		}
	}()
	hung := hangingClientHost(t, hub.Addr(), 1)
	defer hung.Close()

	clients, err := hub.WaitForClients(2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := RunCohort(clients, []float32{0, 0}, 0.5, nil, true)
	if err != nil {
		t.Fatalf("round with hung client: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("round took %v; the hung client stalled it", elapsed)
	}
	if len(res.Trained) != 1 || res.Trained[0] != 0 {
		t.Fatalf("trained = %v, want only the responsive client", res.Trained)
	}
	if hub.Evicted() != 1 {
		t.Fatalf("hub evicted %d clients, want 1", hub.Evicted())
	}

	// The dead proxy fails fast on the next round instead of re-blocking.
	var dead, alive *RemoteClient
	for _, c := range clients {
		if c.ID() == 1 {
			dead = c.(*RemoteClient)
		} else {
			alive = c.(*RemoteClient)
		}
	}
	if !dead.Dead() {
		t.Fatal("hung client proxy not marked dead")
	}
	start = time.Now()
	if _, err := dead.TrainRound([]float32{0, 0}, 0.5); err == nil {
		t.Fatal("dead client accepted a round")
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("dead client did not fail fast")
	}

	// The survivor still answers rounds.
	res, err = RunCohort([]Client{alive}, []float32{0, 0}, 0.5, nil, false)
	if err != nil {
		t.Fatalf("follow-up round: %v", err)
	}
	if res.Weights[0] != 1 {
		t.Fatalf("follow-up weights = %v", res.Weights)
	}
}
