package fl

import (
	"errors"
	"testing"

	"repro/internal/embed"
	"repro/internal/vecmath"
)

// flakyClient fails on demand.
type flakyClient struct {
	id      int
	fail    bool
	weights []float32
}

func (f *flakyClient) ID() int { return f.id }
func (f *flakyClient) TrainRound([]float32, float64) (Update, error) {
	if f.fail {
		return Update{}, errors.New("simulated dropout")
	}
	return Update{Weights: vecmath.Clone(f.weights), Tau: 0.7, Samples: 1}, nil
}

func TestServerFailsFastByDefault(t *testing.T) {
	global := embed.NewModel(flArch, 1)
	w := global.Weights()
	clients := []Client{
		&flakyClient{id: 0, weights: w},
		&flakyClient{id: 1, fail: true, weights: w},
	}
	srv := NewServer(global, clients, ServerConfig{Rounds: 1, ClientsPerRound: 2, InitialTau: 0.7})
	if err := srv.Run(nil); err == nil {
		t.Fatal("server ignored a client failure without TolerateFailures")
	}
}

func TestServerToleratesStragglers(t *testing.T) {
	global := embed.NewModel(flArch, 1)
	w := global.Weights()
	clients := []Client{
		&flakyClient{id: 0, weights: w},
		&flakyClient{id: 1, fail: true, weights: w},
		&flakyClient{id: 2, weights: w},
	}
	srv := NewServer(global, clients, ServerConfig{
		Rounds:           2,
		ClientsPerRound:  3,
		InitialTau:       0.7,
		TolerateFailures: true,
	})
	var roundSizes []int
	if err := srv.Run(func(ri RoundInfo) { roundSizes = append(roundSizes, len(ri.Sampled)) }); err != nil {
		t.Fatalf("Run with tolerance: %v", err)
	}
	for r, n := range roundSizes {
		if n != 2 {
			t.Fatalf("round %d aggregated %d clients, want 2 survivors", r, n)
		}
	}
}

func TestServerErrorsWhenAllClientsFail(t *testing.T) {
	global := embed.NewModel(flArch, 1)
	clients := []Client{
		&flakyClient{id: 0, fail: true},
		&flakyClient{id: 1, fail: true},
	}
	srv := NewServer(global, clients, ServerConfig{
		Rounds:           1,
		ClientsPerRound:  2,
		InitialTau:       0.7,
		TolerateFailures: true,
	})
	if err := srv.Run(nil); err == nil {
		t.Fatal("server succeeded with zero surviving clients")
	}
}
