package fl

import (
	"fmt"
	"sync"
)

// CohortResult is the outcome of one aggregated cohort round: the new
// global weights and threshold, plus which clients contributed and which
// failed. It is the unit both deployments share — the offline Server
// (fl.go) and the online serving coordinator (internal/flserve) call
// RunCohort with whatever client set they sampled.
type CohortResult struct {
	// Weights is the aggregated global weight vector.
	Weights []float32
	// Tau is the aggregated global threshold.
	Tau float64
	// Trained lists the IDs of clients whose updates entered the
	// aggregate.
	Trained []int
	// Failed lists the IDs of clients that errored (only populated when
	// failures are tolerated; otherwise RunCohort returns the error).
	Failed []int
	// Samples is the total sample count across contributing clients.
	Samples int
}

// RunCohort executes one transport-agnostic FL round over an
// already-sampled cohort: ship the global state to every client in
// parallel, collect their updates, and aggregate weights and thresholds.
// Client sampling, global-model bookkeeping and scheduling stay with the
// caller, so the same runner serves the offline batch Server and the
// online serving-layer coordinator.
//
// When tolerate is true, failed clients are dropped from the aggregation
// (production FL must survive stragglers and dropouts); a round where
// every client fails still errors. agg defaults to FedAvg when nil.
func RunCohort(clients []Client, global []float32, tau float64, agg Aggregator, tolerate bool) (CohortResult, error) {
	if len(clients) == 0 {
		return CohortResult{}, fmt.Errorf("fl: cohort is empty")
	}
	if agg == nil {
		agg = FedAvg{}
	}

	updates := make([]Update, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			updates[i], errs[i] = c.TrainRound(global, tau)
		}(i, c)
	}
	wg.Wait()

	res := CohortResult{Weights: make([]float32, len(global))}
	good := make([]Update, 0, len(clients))
	for i, err := range errs {
		id := clients[i].ID()
		if err == nil && len(updates[i].Weights) != len(global) {
			err = fmt.Errorf("returned %d weights, want %d", len(updates[i].Weights), len(global))
		}
		if err != nil {
			if !tolerate {
				return CohortResult{}, fmt.Errorf("client %d: %w", id, err)
			}
			res.Failed = append(res.Failed, id)
			continue
		}
		good = append(good, updates[i])
		res.Trained = append(res.Trained, id)
		res.Samples += updates[i].Samples
	}
	if len(good) == 0 {
		return CohortResult{}, fmt.Errorf("all %d sampled clients failed", len(clients))
	}
	res.Tau = agg.Aggregate(res.Weights, good)
	return res, nil
}
