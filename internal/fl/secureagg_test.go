package fl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/vecmath"
)

// fixedClient returns a canned update, letting the tests control the
// plaintext exactly.
type fixedClient struct {
	id      int
	weights []float32
	tau     float64
	samples int
}

func (f *fixedClient) ID() int { return f.id }
func (f *fixedClient) TrainRound([]float32, float64) (Update, error) {
	return Update{Weights: vecmath.Clone(f.weights), Tau: f.tau, Samples: f.samples}, nil
}

func TestPairwiseSeedSymmetric(t *testing.T) {
	if PairwiseSeed(5, 3, 9) != PairwiseSeed(5, 9, 3) {
		t.Fatal("pairwise seed not symmetric in client order")
	}
	if PairwiseSeed(5, 3, 9) == PairwiseSeed(6, 3, 9) {
		t.Fatal("pairwise seed ignores the round")
	}
	if PairwiseSeed(5, 3, 9) == PairwiseSeed(5, 3, 8) {
		t.Fatal("pairwise seed ignores the pair")
	}
}

func TestMasksCancelExactly(t *testing.T) {
	dim := 64
	roster := []int{2, 7, 11, 20}
	sum := make([]float32, dim)
	for _, id := range roster {
		v := make([]float32, dim)
		MaskUpdate(v, id, roster, 42, 1.0)
		vecmath.Axpy(1, v, sum)
	}
	for i, s := range sum {
		if math.Abs(float64(s)) > 1e-4 {
			t.Fatalf("masks did not cancel at %d: residue %v", i, s)
		}
	}
}

func TestSecureRoundMatchesFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 128
	clients := make([]Client, 5)
	var updates []Update
	for i := range clients {
		w := make([]float32, dim)
		for j := range w {
			w[j] = float32(rng.NormFloat64())
		}
		fc := &fixedClient{id: i * 3, weights: w, tau: 0.5 + 0.1*float64(i), samples: 1 + i}
		clients[i] = fc
		updates = append(updates, Update{Weights: w, Tau: fc.tau, Samples: fc.samples})
	}
	res, err := RunSecureRound(clients, make([]float32, dim), 0.7, 99, 1.0)
	if err != nil {
		t.Fatalf("RunSecureRound: %v", err)
	}
	want := make([]float32, dim)
	wantTau := FedAvg{}.Aggregate(want, updates)
	for i := range want {
		if math.Abs(float64(res.Aggregated[i]-want[i])) > 1e-3 {
			t.Fatalf("secure aggregate differs from FedAvg at %d: %v vs %v",
				i, res.Aggregated[i], want[i])
		}
	}
	if math.Abs(res.Tau-wantTau) > 1e-12 {
		t.Fatalf("secure tau %v != FedAvg tau %v", res.Tau, wantTau)
	}
}

// The server-visible masked update must be statistically unlike the
// plaintext: correlation with the true update ≈ 0 when masks dominate.
func TestMaskedUpdateHidesPlaintext(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 2048
	w := make([]float32, dim)
	for j := range w {
		w[j] = float32(rng.NormFloat64() * 0.01) // realistic update magnitude
	}
	clients := []Client{
		&fixedClient{id: 0, weights: w, tau: 0.5, samples: 1},
		&fixedClient{id: 1, weights: make([]float32, dim), tau: 0.5, samples: 1},
		&fixedClient{id: 2, weights: make([]float32, dim), tau: 0.5, samples: 1},
	}
	res, err := RunSecureRound(clients, make([]float32, dim), 0.7, 7, 1.0)
	if err != nil {
		t.Fatalf("RunSecureRound: %v", err)
	}
	corr := math.Abs(float64(vecmath.Cosine(res.MaskedUpdates[0], w)))
	if corr > 0.1 {
		t.Fatalf("masked update correlates with plaintext: |cos| = %v", corr)
	}
}

func TestSecureRoundWithRealClients(t *testing.T) {
	if testing.Short() {
		t.Skip("secure-round training test skipped in -short mode")
	}
	corpus := flCorpus()
	shards := dataset.SplitPairs(corpus.Train, 3, rand.New(rand.NewSource(5)))
	clients := make([]Client, 3)
	for i := range clients {
		clients[i] = NewLocalClient(i, flArch, 7, shards[i], quickTrainCfg(), 1)
	}
	global := embed.NewModel(flArch, 7)
	res, err := RunSecureRound(clients, global.Weights(), 0.7, 11, 1.0)
	if err != nil {
		t.Fatalf("RunSecureRound: %v", err)
	}
	if res.Tau <= 0 || res.Tau > 1 {
		t.Fatalf("aggregated tau = %v", res.Tau)
	}
	// The aggregate must install cleanly and produce a working encoder.
	global.SetWeights(res.Aggregated)
	e := global.Encode("does the aggregated model still encode")
	if vecmath.Norm(e) == 0 {
		t.Fatal("aggregated model produces zero embeddings")
	}
}

func TestSecureRoundErrors(t *testing.T) {
	if _, err := RunSecureRound(nil, nil, 0.7, 1, 1); err == nil {
		t.Fatal("empty client list accepted")
	}
	bad := []Client{&fixedClient{id: 0, weights: []float32{1, 2}, samples: 1}}
	if _, err := RunSecureRound(bad, make([]float32, 3), 0.7, 1, 1); err == nil {
		t.Fatal("mismatched weight length accepted")
	}
}
