package fl

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

var flArch = embed.Arch{
	Name:      "mpnet-sim",
	Mode:      tokenizer.WordsAndBigrams,
	Vocab:     2048,
	EmbDim:    48,
	OutDim:    96,
	Trainable: true,

	AnchorWeight: 0.4,
}

func flCorpus() *dataset.Corpus {
	cfg := dataset.DefaultConfig()
	cfg.Concepts = 100
	cfg.Intents = 300
	return dataset.GenerateCorpus(cfg)
}

func quickTrainCfg() train.Config {
	cfg := train.DefaultConfig()
	cfg.Epochs = 1
	return cfg
}

func buildClients(t *testing.T, n int, corpus *dataset.Corpus) []Client {
	t.Helper()
	shards := dataset.SplitPairs(corpus.Train, n, rand.New(rand.NewSource(5)))
	clients := make([]Client, n)
	for i := range clients {
		clients[i] = NewLocalClient(i, flArch, 7, shards[i], quickTrainCfg(), 1)
	}
	return clients
}

func TestFedAvgWeighting(t *testing.T) {
	updates := []Update{
		{Weights: []float32{1, 1}, Tau: 0.6, Samples: 3},
		{Weights: []float32{5, 5}, Tau: 0.8, Samples: 1},
	}
	dst := make([]float32, 2)
	tau := FedAvg{}.Aggregate(dst, updates)
	// (3·1 + 1·5)/4 = 2.
	if dst[0] != 2 || dst[1] != 2 {
		t.Fatalf("FedAvg weights = %v, want [2 2]", dst)
	}
	want := (3*0.6 + 1*0.8) / 4
	if math.Abs(tau-want) > 1e-12 {
		t.Fatalf("FedAvg tau = %v, want %v", tau, want)
	}
}

func TestSimpleAvg(t *testing.T) {
	updates := []Update{
		{Weights: []float32{1, 1}, Tau: 0.6, Samples: 100},
		{Weights: []float32{5, 5}, Tau: 0.8, Samples: 1},
	}
	dst := make([]float32, 2)
	tau := SimpleAvg{}.Aggregate(dst, updates)
	if dst[0] != 3 || dst[1] != 3 {
		t.Fatalf("SimpleAvg weights = %v, want [3 3]", dst)
	}
	if math.Abs(tau-0.7) > 1e-12 {
		t.Fatalf("SimpleAvg tau = %v, want 0.7", tau)
	}
}

func TestAggregateEmpty(t *testing.T) {
	dst := []float32{9}
	if tau := (FedAvg{}).Aggregate(dst, nil); tau != 0 || dst[0] != 0 {
		t.Fatal("FedAvg on empty updates should zero everything")
	}
}

func TestLocalClientTrainRound(t *testing.T) {
	corpus := flCorpus()
	shards := dataset.SplitPairs(corpus.Train, 4, rand.New(rand.NewSource(1)))
	c := NewLocalClient(0, flArch, 7, shards[0], quickTrainCfg(), 1)
	global := embed.NewModel(flArch, 7)
	up, err := c.TrainRound(global.Weights(), 0.7)
	if err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if len(up.Weights) != global.WeightCount() {
		t.Fatalf("update weights = %d, want %d", len(up.Weights), global.WeightCount())
	}
	if up.Samples != c.Samples() {
		t.Fatalf("update samples = %d, want %d", up.Samples, c.Samples())
	}
	if up.Tau <= 0 || up.Tau > 1 {
		t.Fatalf("client tau = %v out of (0,1]", up.Tau)
	}
	// Training must actually change the weights.
	changed := false
	for i, w := range global.Weights() {
		if up.Weights[i] != w {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("local training left the weights untouched")
	}
}

func TestLocalClientRejectsWrongWeightCount(t *testing.T) {
	corpus := flCorpus()
	c := NewLocalClient(0, flArch, 7, corpus.Train[:20], quickTrainCfg(), 1)
	if _, err := c.TrainRound(make([]float32, 3), 0.7); err == nil {
		t.Fatal("TrainRound accepted mismatched weights")
	}
}

func TestServerRunRounds(t *testing.T) {
	corpus := flCorpus()
	clients := buildClients(t, 6, corpus)
	global := embed.NewModel(flArch, 7)
	srv := NewServer(global, clients, ServerConfig{
		Rounds:          3,
		ClientsPerRound: 2,
		Seed:            9,
		InitialTau:      0.7,
	})
	var rounds []RoundInfo
	if err := srv.Run(func(ri RoundInfo) { rounds = append(rounds, ri) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	for _, ri := range rounds {
		if len(ri.Sampled) != 2 {
			t.Fatalf("round %d sampled %d clients, want 2", ri.Round, len(ri.Sampled))
		}
		if ri.GlobalTau <= 0 || ri.GlobalTau > 1 {
			t.Fatalf("round %d tau = %v", ri.Round, ri.GlobalTau)
		}
	}
}

// TestFLTrainingImprovesGlobalModel is the Figures 11–12 dynamic in
// miniature: the global model's validation F1 after several FL rounds must
// beat the untrained model's.
func TestFLTrainingImprovesGlobalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("FL training test skipped in -short mode")
	}
	corpus := flCorpus()
	clients := buildClients(t, 8, corpus)
	global := embed.NewModel(flArch, 7)
	before := train.Sweep(global, corpus.Val, 0.02, 1).Optimal.Scores.FScore

	srv := NewServer(global, clients, ServerConfig{
		Rounds:          5,
		ClientsPerRound: 4,
		Seed:            11,
		InitialTau:      0.7,
	})
	if err := srv.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := train.Sweep(srv.Model(), corpus.Val, 0.02, 1).Optimal.Scores.FScore
	if after <= before {
		t.Fatalf("FL training did not improve global F1: %.3f -> %.3f", before, after)
	}
	t.Logf("global F1 %.3f -> %.3f, tau_global %.2f", before, after, srv.Tau())
}

func TestServerDeterministicSampling(t *testing.T) {
	corpus := flCorpus()
	run := func() [][]int {
		clients := buildClients(t, 6, corpus)
		srv := NewServer(embed.NewModel(flArch, 7), clients, ServerConfig{
			Rounds: 3, ClientsPerRound: 2, Seed: 13, InitialTau: 0.7,
		})
		var sampled [][]int
		srv.Run(func(ri RoundInfo) { sampled = append(sampled, ri.Sampled) })
		return sampled
	}
	a, b := run(), run()
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatal("client sampling not deterministic at fixed seed")
			}
		}
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	corpus := flCorpus()
	hub, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer hub.Close()

	shards := dataset.SplitPairs(corpus.Train, 3, rand.New(rand.NewSource(2)))
	for i := 0; i < 3; i++ {
		lc := NewLocalClient(i, flArch, 7, shards[i], quickTrainCfg(), 1)
		go func() {
			if err := ServeClient(hub.Addr(), lc); err != nil {
				t.Errorf("ServeClient: %v", err)
			}
		}()
	}
	clients, err := hub.WaitForClients(3, 5*time.Second)
	if err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}

	global := embed.NewModel(flArch, 7)
	srv := NewServer(global, clients, ServerConfig{
		Rounds:          2,
		ClientsPerRound: 2,
		Seed:            3,
		InitialTau:      0.7,
	})
	rounds := 0
	if err := srv.Run(func(RoundInfo) { rounds++ }); err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
}

func TestWaitForClientsTimeout(t *testing.T) {
	hub, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer hub.Close()
	if _, err := hub.WaitForClients(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitForClients returned without any client")
	}
}
