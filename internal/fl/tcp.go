package fl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport turns the FL protocol into a real wire protocol: a
// client host dials the server, registers, and then answers round
// requests. The server sees each connection as a Client, so Server.Run is
// transport-agnostic. Messages are gob-encoded; the weight vector
// (megabytes for the full models) is the dominant payload, exactly as in
// a real FL deployment.
//
// Round exchanges carry per-connection deadlines (Hub.SetRoundTimeout) so
// a hung or partitioned client host cannot stall a round forever: the
// exchange times out, the connection is closed, the client is evicted
// from the hub, and — with ServerConfig.TolerateFailures — the round
// aggregates over the survivors.

// hello registers a client with the hub.
type hello struct {
	ClientID int
}

// roundRequest carries the global state to a client.
type roundRequest struct {
	Round   int
	Weights []float32
	Tau     float64
}

// roundReply carries the client's update (or error) back.
type roundReply struct {
	Update Update
	Err    string
}

// Hub accepts client registrations on a TCP listener and exposes each
// connection as a Client for Server.Run.
type Hub struct {
	ln net.Listener

	mu           sync.Mutex
	clients      []*RemoteClient
	err          error
	done         chan struct{}
	roundTimeout time.Duration
	evicted      int
}

// Listen starts a hub on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listen %s: %w", addr, err)
	}
	h := &Hub{ln: ln, done: make(chan struct{})}
	go h.acceptLoop()
	return h, nil
}

// Addr reports the hub's bound address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// SetRoundTimeout bounds every subsequent round exchange (request write +
// local training + reply read) per connection. A client that misses the
// deadline is disconnected and evicted from the hub. Zero (the default)
// means no deadline. Applies to already-registered clients too.
func (h *Hub) SetRoundTimeout(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.roundTimeout = d
	for _, c := range h.clients {
		c.timeout.Store(int64(d))
	}
}

// Evicted reports how many clients the hub has dropped after failed round
// exchanges.
func (h *Hub) Evicted() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evicted
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			select {
			case <-h.done:
			default:
				h.mu.Lock()
				h.err = err
				h.mu.Unlock()
			}
			return
		}
		go h.register(conn)
	}
}

func (h *Hub) register(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var hi hello
	if err := dec.Decode(&hi); err != nil {
		conn.Close()
		return
	}
	rc := &RemoteClient{id: hi.ClientID, conn: conn, enc: enc, dec: dec, hub: h}
	h.mu.Lock()
	rc.timeout.Store(int64(h.roundTimeout))
	h.clients = append(h.clients, rc)
	h.mu.Unlock()
}

// evict drops a dead client from the hub so WaitForClients and future
// rosters no longer see it. The connection is already closed.
func (h *Hub) evict(rc *RemoteClient) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range h.clients {
		if c == rc {
			h.clients = append(h.clients[:i], h.clients[i+1:]...)
			h.evicted++
			return
		}
	}
}

// WaitForClients blocks until n clients have registered or the timeout
// elapses, returning the registered clients (server-side proxies).
func (h *Hub) WaitForClients(n int, timeout time.Duration) ([]Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		count := len(h.clients)
		err := h.err
		h.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("fl: hub accept failed: %w", err)
		}
		if count >= n {
			h.mu.Lock()
			out := make([]Client, n)
			for i := 0; i < n; i++ {
				out[i] = h.clients[i]
			}
			h.mu.Unlock()
			return out, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fl: %d/%d clients registered before timeout", count, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts the hub and all client connections down.
func (h *Hub) Close() error {
	close(h.done)
	err := h.ln.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.clients {
		c.conn.Close()
	}
	return err
}

// RemoteClient is the server-side proxy for a connected client host.
type RemoteClient struct {
	id   int
	conn net.Conn
	mu   sync.Mutex // one outstanding round per connection
	enc  *gob.Encoder
	dec  *gob.Decoder
	hub  *Hub

	// timeout is the round-exchange deadline in nanoseconds (0 = none).
	timeout atomic.Int64
	// dead marks a connection whose round exchange failed; subsequent
	// TrainRound calls fail fast without touching the network.
	dead atomic.Bool
}

// ID implements Client.
func (rc *RemoteClient) ID() int { return rc.id }

// Dead reports whether the connection has been marked dead after a failed
// round exchange.
func (rc *RemoteClient) Dead() bool { return rc.dead.Load() }

// fail marks the client dead, closes its connection (unblocking any
// in-flight gob read), and evicts it from the hub.
func (rc *RemoteClient) fail(err error) error {
	if rc.dead.CompareAndSwap(false, true) {
		rc.conn.Close()
		if rc.hub != nil {
			rc.hub.evict(rc)
		}
	}
	return err
}

// TrainRound implements Client by round-tripping the request over TCP.
// With a round timeout configured, both the request write and the reply
// read (which spans the client's local training) carry deadlines; a
// deadline miss kills the connection and evicts the client so the round
// can proceed without it.
func (rc *RemoteClient) TrainRound(globalWeights []float32, globalTau float64) (Update, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.dead.Load() {
		return Update{}, fmt.Errorf("fl: client %d connection is dead", rc.id)
	}
	d := time.Duration(rc.timeout.Load())
	if d > 0 {
		rc.conn.SetDeadline(time.Now().Add(d))
	} else {
		rc.conn.SetDeadline(time.Time{})
	}
	if err := rc.enc.Encode(roundRequest{Weights: globalWeights, Tau: globalTau}); err != nil {
		return Update{}, rc.fail(fmt.Errorf("fl: sending round to client %d: %w", rc.id, err))
	}
	var reply roundReply
	if err := rc.dec.Decode(&reply); err != nil {
		return Update{}, rc.fail(fmt.Errorf("fl: reading update from client %d: %w", rc.id, err))
	}
	rc.conn.SetDeadline(time.Time{})
	if reply.Err != "" {
		return Update{}, fmt.Errorf("fl: client %d: %s", rc.id, reply.Err)
	}
	return reply.Update, nil
}

// ServeClient connects the given client to a hub at addr and answers round
// requests until the connection closes. It blocks; run it on the client
// host's goroutine or main.
func ServeClient(addr string, c Client) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{ClientID: c.ID()}); err != nil {
		return fmt.Errorf("fl: registering: %w", err)
	}
	for {
		var req roundRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// EOF when the hub closes: normal shutdown.
			if err.Error() == "EOF" {
				return nil
			}
			return fmt.Errorf("fl: reading round request: %w", err)
		}
		var reply roundReply
		update, terr := c.TrainRound(req.Weights, req.Tau)
		if terr != nil {
			reply.Err = terr.Error()
		} else {
			reply.Update = update
		}
		if err := enc.Encode(reply); err != nil {
			return fmt.Errorf("fl: sending update: %w", err)
		}
	}
}
