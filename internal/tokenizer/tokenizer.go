// Package tokenizer converts raw query text into hashed token IDs for the
// embedding encoders in internal/embed.
//
// The paper's encoders (MPNet, ALBERT, Llama 2) each ship their own subword
// vocabulary. This reproduction replaces them with feature hashing: tokens
// are normalised, optionally expanded into bigrams or character trigrams,
// and hashed into a fixed number of vocabulary buckets with FNV-1a. Feature
// hashing keeps the encoders vocabulary-free (any input text maps to valid
// rows of the embedding table) while preserving the property the experiments
// rely on: identical surface tokens always collide, so paraphrases sharing
// words start out similar and training pulls synonym buckets together.
package tokenizer

import (
	"strings"
	"unicode"
)

// Mode selects the token features a Tokenizer emits. The three modes mirror
// the lexical granularity of the paper's three models.
type Mode int

const (
	// Words emits one feature per whitespace-delimited normalised word.
	// Used by Albert-sim.
	Words Mode = iota
	// WordsAndBigrams emits word features plus adjacent-word bigram
	// features, giving the encoder limited word-order sensitivity.
	// Used by MPNet-sim.
	WordsAndBigrams
	// CharTrigrams emits overlapping character 3-grams of each word. Used
	// by Llama2-sim, whose frozen embeddings capture surface form rather
	// than meaning — the deficiency §IV-G measures.
	CharTrigrams
)

func (m Mode) String() string {
	switch m {
	case Words:
		return "words"
	case WordsAndBigrams:
		return "words+bigrams"
	case CharTrigrams:
		return "char-trigrams"
	default:
		return "unknown"
	}
}

// Tokenizer hashes normalised text features into [0, Vocab) bucket IDs.
// The zero value is not usable; construct with New.
type Tokenizer struct {
	mode  Mode
	vocab int
}

// New returns a Tokenizer emitting features per mode, hashed into vocab
// buckets. vocab must be positive.
func New(mode Mode, vocab int) *Tokenizer {
	if vocab <= 0 {
		panic("tokenizer: vocab must be positive")
	}
	return &Tokenizer{mode: mode, vocab: vocab}
}

// Vocab reports the number of hash buckets.
func (t *Tokenizer) Vocab() int { return t.vocab }

// Mode reports the feature mode.
func (t *Tokenizer) Mode() Mode { return t.mode }

// Tokenize returns the hashed token IDs for text, in emission order. The
// result is deterministic: equal text always yields equal IDs. Empty or
// all-punctuation text yields an empty slice.
func (t *Tokenizer) Tokenize(text string) []int {
	return t.TokenizeAppend(text, nil)
}

// TokenizeAppend is Tokenize appending into ids — the buffer-reuse form
// the pooled encode path uses: with an ids[:0] of sufficient capacity no
// ID slice is allocated. Emission order and hashes are identical to
// Tokenize.
func (t *Tokenizer) TokenizeAppend(text string, ids []int) []int {
	words := Normalize(text)
	if len(words) == 0 {
		return ids
	}
	switch t.mode {
	case Words:
		for _, w := range words {
			ids = append(ids, t.bucket(w))
		}
	case WordsAndBigrams:
		for _, w := range words {
			ids = append(ids, t.bucket(w))
		}
		for i := 0; i+1 < len(words); i++ {
			ids = append(ids, t.bucket2(words[i], words[i+1]))
		}
	case CharTrigrams:
		for _, w := range words {
			padded := "^" + w + "$"
			if len(padded) < 3 {
				ids = append(ids, t.bucket(padded))
				continue
			}
			for i := 0; i+3 <= len(padded); i++ {
				ids = append(ids, t.bucket(padded[i:i+3]))
			}
		}
	}
	return ids
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// bucket hashes s with FNV-1a into [0, vocab).
func (t *Tokenizer) bucket(s string) int {
	return int(fnvString(fnvOffset64, s) % uint64(t.vocab))
}

// bucket2 hashes the bigram a+"\x00"+b without materialising the joined
// string — byte-identical to bucket(a+"\x00"+b).
func (t *Tokenizer) bucket2(a, b string) int {
	h := fnvString(fnvOffset64, a)
	h ^= 0 // the \x00 separator byte
	h *= fnvPrime64
	return int(fnvString(h, b) % uint64(t.vocab))
}

// Normalize lower-cases text, strips punctuation, and splits it into words.
// It is shared by all modes so that the same query always produces the same
// word stream regardless of encoder.
func Normalize(text string) []string {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'': // drop apostrophes entirely: don't -> dont
		default:
			b.WriteByte(' ')
		}
	}
	return strings.Fields(b.String())
}
