package tokenizer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't STOP", []string{"dont", "stop"}},
		{"  spaces\t\neverywhere  ", []string{"spaces", "everywhere"}},
		{"", nil},
		{"?!...", nil},
		{"mixed123 CASE", []string{"mixed123", "case"}},
		{"a-b_c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := Normalize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Normalize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	for _, mode := range []Mode{Words, WordsAndBigrams, CharTrigrams} {
		tk := New(mode, 1000)
		a := tk.Tokenize("How can I increase battery life?")
		b := tk.Tokenize("How can I increase battery life?")
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %v: tokenization not deterministic", mode)
		}
	}
}

func TestTokenizeCaseInsensitive(t *testing.T) {
	tk := New(Words, 1000)
	a := tk.Tokenize("Battery Life")
	b := tk.Tokenize("battery life")
	if !reflect.DeepEqual(a, b) {
		t.Error("tokenization should be case-insensitive")
	}
}

func TestTokenizeEmpty(t *testing.T) {
	for _, mode := range []Mode{Words, WordsAndBigrams, CharTrigrams} {
		tk := New(mode, 100)
		if got := tk.Tokenize(""); len(got) != 0 {
			t.Errorf("mode %v: Tokenize(\"\") = %v, want empty", mode, got)
		}
		if got := tk.Tokenize("!!! ???"); len(got) != 0 {
			t.Errorf("mode %v: punctuation-only input yields %v, want empty", mode, got)
		}
	}
}

func TestWordsTokenCount(t *testing.T) {
	tk := New(Words, 1000)
	if got := tk.Tokenize("one two three"); len(got) != 3 {
		t.Fatalf("Words mode token count = %d, want 3", len(got))
	}
}

func TestBigramsTokenCount(t *testing.T) {
	tk := New(WordsAndBigrams, 1000)
	// 3 words + 2 bigrams = 5 features.
	if got := tk.Tokenize("one two three"); len(got) != 5 {
		t.Fatalf("WordsAndBigrams token count = %d, want 5", len(got))
	}
}

func TestBigramsOrderSensitive(t *testing.T) {
	tk := New(WordsAndBigrams, 1<<20)
	a := tk.Tokenize("red blue")
	b := tk.Tokenize("blue red")
	if reflect.DeepEqual(a, b) {
		t.Error("bigram features should distinguish word order")
	}
}

func TestCharTrigrams(t *testing.T) {
	tk := New(CharTrigrams, 1<<20)
	// "^cat$" has trigrams ^ca, cat, at$ => 3 features.
	if got := tk.Tokenize("cat"); len(got) != 3 {
		t.Fatalf("CharTrigrams(\"cat\") count = %d, want 3", len(got))
	}
	// Single-char word: "^a$" is exactly 3 bytes => 1 trigram.
	if got := tk.Tokenize("a"); len(got) != 1 {
		t.Fatalf("CharTrigrams(\"a\") count = %d, want 1", len(got))
	}
}

func TestBucketRangeProperty(t *testing.T) {
	tk := New(WordsAndBigrams, 257)
	f := func(s string) bool {
		for _, id := range tk.Tokenize(s) {
			if id < 0 || id >= 257 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: tokenization is stable under surrounding whitespace and trailing
// punctuation — the normalisation the cache relies on to match resubmitted
// queries that differ only in formatting.
func TestWhitespacePunctuationInvariance(t *testing.T) {
	tk := New(Words, 4096)
	pairs := [][2]string{
		{"hello world", "  hello   world  "},
		{"hello world", "hello world!!!"},
		{"hello world", "Hello, World."},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(tk.Tokenize(p[0]), tk.Tokenize(p[1])) {
			t.Errorf("tokenization differs for %q vs %q", p[0], p[1])
		}
	}
}

func TestNewPanicsOnBadVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(mode, 0) did not panic")
		}
	}()
	New(Words, 0)
}

func TestModeString(t *testing.T) {
	if Words.String() == "" || WordsAndBigrams.String() == "" || CharTrigrams.String() == "" {
		t.Fatal("mode names must be non-empty")
	}
	if Mode(99).String() != "unknown" {
		t.Fatal("unknown mode should stringify to unknown")
	}
}

func BenchmarkTokenizeWords(b *testing.B) {
	tk := New(Words, 32768)
	q := "How can I increase the battery life of my smartphone today"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tk.Tokenize(q)
	}
}

func BenchmarkTokenizeTrigrams(b *testing.B) {
	tk := New(CharTrigrams, 32768)
	q := "How can I increase the battery life of my smartphone today"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tk.Tokenize(q)
	}
}
