package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireCodec mirrors the index package's FuzzSearchParity harness for
// the cluster wire codec: arbitrary bytes are fed to all three decoders,
// which must reject or accept cleanly — never panic, never allocate
// beyond the caps — and anything a decoder accepts must survive a
// canonical re-encode/re-decode round trip unchanged.
func FuzzWireCodec(f *testing.F) {
	if b, err := EncodePeerStatus(&PeerStatus{
		Node: "10.0.0.1:8090", RingVersion: 3, Resident: 12,
		Alive: []string{"10.0.0.1:8090", "10.0.0.2:8090"},
	}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeForwardRequest(&ForwardRequest{
		Origin: "10.0.0.2:8090", RingVersion: 3, Hops: 1,
		User: "user-0007", Path: "/v1/query",
		Body: []byte(`{"user":"user-0007","query":"hi"}`),
	}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeForwardResponse(&ForwardResponse{
		Node: "10.0.0.1:8090", Status: 200, Body: []byte(`{"hit":false}`),
	}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{wireMagic})
	f.Add([]byte{wireMagic, wireVersion, kindPeerStatus})
	f.Add([]byte{wireMagic, wireVersion, kindForwardRequest, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xC5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodePeerStatus(data); err == nil {
			re, err := EncodePeerStatus(s)
			if err != nil {
				t.Fatalf("re-encoding accepted peer status: %v", err)
			}
			s2, err := DecodePeerStatus(re)
			if err != nil {
				t.Fatalf("re-decoding canonical peer status: %v", err)
			}
			if !reflect.DeepEqual(s, s2) {
				t.Fatalf("peer status round trip diverged: %+v vs %+v", s, s2)
			}
		}
		if q, err := DecodeForwardRequest(data); err == nil {
			re, err := EncodeForwardRequest(q)
			if err != nil {
				t.Fatalf("re-encoding accepted forward request: %v", err)
			}
			q2, err := DecodeForwardRequest(re)
			if err != nil {
				t.Fatalf("re-decoding canonical forward request: %v", err)
			}
			if !reflect.DeepEqual(q, q2) {
				t.Fatalf("forward request round trip diverged: %+v vs %+v", q, q2)
			}
		}
		if r, err := DecodeForwardResponse(data); err == nil {
			re, err := EncodeForwardResponse(r)
			if err != nil {
				t.Fatalf("re-encoding accepted forward response: %v", err)
			}
			r2, err := DecodeForwardResponse(re)
			if err != nil {
				t.Fatalf("re-decoding canonical forward response: %v", err)
			}
			if !reflect.DeepEqual(r, r2) {
				t.Fatalf("forward response round trip diverged: %+v vs %+v", r, r2)
			}
		}
	})
}
