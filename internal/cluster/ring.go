// Package cluster scales the multi-tenant serving layer horizontally: a
// consistent-hash ring places every tenant on exactly one node, each node
// health-checks its peers, and a routing middleware in front of the
// serving mux forwards requests for non-owned tenants to their owner
// (bounded retries, a single hedge on slow peers). When membership
// changes — a node joins, leaves, or dies — the ring is rebuilt and
// swapped atomically, and each node drains the tenants it no longer owns
// through the registry's store-persistence path, so the new owner revives
// them with the adapted τ, model version, and index configuration intact.
//
// The pieces:
//
//   - Ring: an immutable consistent-hash ring with virtual nodes.
//     Placement is deterministic in the member set alone, so every node
//     computes the same owner for every tenant without coordination.
//   - Wire codec: a compact binary encoding for the peer-status and
//     forwarded-request envelopes exchanged between nodes (wire.go).
//   - Node: membership, health checking, request routing, and tenant
//     handoff around one serving process (node.go).
//   - Harness: an in-process N-node cluster used by the end-to-end
//     failover tests and `loadgen -scenario cluster` (harness.go).
package cluster

import (
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes
// vnodes virtual points, and a tenant is owned by the member whose point
// follows the tenant's hash clockwise. Immutability is what keeps the
// serving hot path lock-free — routers load the current ring through an
// atomic pointer and never see a ring mid-rebuild.
type Ring struct {
	version uint64
	members []string // sorted, unique
	vnodes  int
	points  []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the ring owned by a member.
type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// DefaultVNodes is the virtual-node count used when a configuration
// leaves it zero: high enough that load spread stays within a few tens of
// percent (see TestRingBalance), low enough that rebuilds stay cheap.
const DefaultVNodes = 128

// BuildRing constructs a ring over members (order-insensitive;
// duplicates collapse). version tags the ring for status reporting and
// staleness checks; an empty member set yields a ring that owns nothing.
func BuildRing(version uint64, members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		version: version,
		members: uniq,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, v)),
				member: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by member index so placement
		// stays deterministic in the member set.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Owner reports which member owns tenant, or "" on an empty ring.
func (r *Ring) Owner(tenant string) string {
	return r.OwnerHash(Hash(tenant))
}

// Hash exposes the ring's placement hash so callers that resolve the
// same tenant repeatedly (the simulation's million-tenant sweeps) can
// hash once and use OwnerHash per lookup.
func Hash(tenant string) uint64 { return hash64(tenant) }

// OwnerHash is Owner for a tenant hash precomputed with Hash.
func (r *Ring) OwnerHash(h uint64) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.members[r.points[i].member]
}

// Version reports the ring's membership-change counter.
func (r *Ring) Version() uint64 {
	if r == nil {
		return 0
	}
	return r.version
}

// Members returns the ring's member set (sorted; do not mutate).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// hash64 is FNV-1a with a murmur3-style finalizer. Raw FNV avalanches
// poorly for near-identical keys — vnode keys differ only in their
// trailing "#i", which left ring points clustered and load spread far
// from uniform; the finalizer fixes that. Placement only needs a stable,
// well-mixed hash — and it must never change across versions, or a
// rolling upgrade would remap every tenant.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
