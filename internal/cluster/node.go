package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/sim"
)

// Config assembles a cluster Node around one serving process.
type Config struct {
	// Self is this node's advertised address (host:port) — its identity
	// on the ring and the address peers forward to. Required.
	Self string
	// Peers lists the other nodes' advertised addresses. The membership
	// set is static configuration; health checking decides which members
	// are live (and therefore on the ring) at any moment.
	Peers []string
	// VNodes is the virtual-node count per member (DefaultVNodes when 0).
	VNodes int
	// Registry is the tenant table requests route into. It should be
	// backed by storage all nodes can reach (a shared PersistDir), so a
	// drained tenant's state is visible to its next owner. Required.
	Registry *server.Registry

	// Heartbeat is the peer health-probe period. Defaults to 500ms.
	Heartbeat time.Duration
	// DeadAfter is how many consecutive probe failures mark a peer dead
	// (removing it from the ring). Defaults to 3.
	DeadAfter int
	// ProbeTimeout bounds one health probe. Defaults to Heartbeat.
	ProbeTimeout time.Duration

	// ForwardTimeout bounds one forward attempt. Defaults to 5s.
	ForwardTimeout time.Duration
	// ForwardRetries is how many further attempts follow a failed
	// forward (re-resolving the owner between attempts, since a failure
	// often coincides with a membership change). Defaults to 2.
	ForwardRetries int
	// HedgeAfter launches one duplicate attempt when the owner has not
	// answered within this window, taking whichever response lands
	// first. 0 defaults to 10× the heartbeat, capped at half the
	// forward timeout (a hedge armed at the timeout could never win);
	// negative disables hedging.
	HedgeAfter time.Duration
	// HedgeVeto, when non-nil, is consulted as the hedge timer fires; a
	// true return suppresses the duplicate attempt. cacheserve wires it
	// to the resilience governor's saturation signal so an overloaded
	// node stops multiplying its own load.
	HedgeVeto func() bool

	// PeerBreaker, when Window > 0, gives every peer its own circuit
	// breaker over forward outcomes: transport failures trip it, and
	// while it is open forwards to that peer short-circuit to the local
	// fallback instead of burning a timeout per request. The breaker
	// complements the dead-peer counter — it reacts at traffic speed in
	// the window before DeadAfter failures remove the peer from the
	// ring, and its half-open probes re-admit real traffic afterwards.
	PeerBreaker resilience.BreakerConfig

	// DrainWait is the total in-flight-request wait budget of one
	// handoff sweep; tenants still pinned when it runs out retry on a
	// later sweep. Defaults to 2s.
	DrainWait time.Duration
	// SweepEvery is the period of the ownership-reconciliation sweep
	// that drains tenants the node no longer owns (ring changes also
	// trigger a sweep immediately). Defaults to 4× the heartbeat.
	SweepEvery time.Duration

	// Tracer, when non-nil, traces routed requests: the forwarding node
	// records decode/forward spans and stitches in the owner's serving
	// spans (propagated through the wire envelope), and this node
	// records serving spans for envelopes that arrive carrying a trace
	// ID. Nil disables cluster-layer tracing.
	Tracer *obs.Tracer

	// Client, when non-nil, is used for probes and forwards (tests
	// inject one; production gets a pooled default). Point its Transport
	// at a sim.Transport to run the node over a simulated network.
	Client *http.Client
	// Clock is the node's time source: heartbeat and sweep tickers,
	// hedge timers, probe/forward deadlines, and trace timestamps all
	// run on it. Nil defaults to the wall clock (production); tests
	// inject a sim.VirtualClock to drive membership and handoff in
	// virtual time.
	Clock sim.Clock
	// Logf, when non-nil, receives membership and handoff events.
	Logf func(format string, args ...any)
}

// Node is one member of a cacheserve cluster: it health-checks peers,
// maintains the consistent-hash ring, routes tenant requests to their
// owners, and drains tenants it no longer owns after ring changes.
type Node struct {
	cfg    Config
	ring   atomic.Pointer[Ring]
	ringV  atomic.Uint64
	ringMu sync.Mutex // serializes rebuildRing's read-modify-write
	peers  []*peer

	inner  atomic.Pointer[http.Handler] // serving mux, set by Wrap
	client *http.Client
	clock  sim.Clock

	stop chan struct{}
	kick chan struct{} // handoff trigger, buffered 1
	wg   sync.WaitGroup

	forwards        atomic.Int64
	forwardErrors   atomic.Int64
	breakerSkips    atomic.Int64
	hedges          atomic.Int64
	hedgesVetoed    atomic.Int64
	localFallbacks  atomic.Int64
	forwardedServed atomic.Int64
	staleForwards   atomic.Int64
	handoffs        atomic.Int64
	handoffBusy     atomic.Int64
	handoffErrors   atomic.Int64
}

// peer tracks one configured peer's health.
type peer struct {
	addr string

	// breaker guards forwards to this peer (nil when Config.PeerBreaker
	// is disabled). Health probes bypass it: the probe loop is how a
	// dead peer is discovered, and the breaker's own half-open probes
	// ride real forwards.
	breaker *resilience.Breaker

	mu       sync.Mutex
	alive    bool
	failures int
	ringV    uint64 // last ring version the peer reported
}

// forwardedHeader marks a request already routed by a peer, so the
// receiving node serves it locally instead of consulting the ring —
// routing disagreements must never loop a request between nodes.
const forwardedHeader = "X-Cluster-Forwarded-By"

// servedByHeader names the node that actually served a routed request.
const servedByHeader = "X-Cluster-Served-By"

// New builds a Node. The initial ring presumes every configured peer
// alive; the first DeadAfter probe rounds correct that for peers that are
// actually down.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	// Self is the node's ring identity AND the address peers dial and
	// verify against gossip replies. A wildcard bind (":8090",
	// "0.0.0.0:…") would make every gossip identity check fail, quietly
	// collapsing each node's ring to itself — a split brain over the
	// shared persist dir. Fail fast instead.
	host, _, err := net.SplitHostPort(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: Config.Self %q is not host:port: %w", cfg.Self, err)
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return nil, fmt.Errorf("cluster: Config.Self %q must be the dialable advertised address, not a wildcard bind", cfg.Self)
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: Config.Registry is required")
	}
	if !cfg.Registry.Persistent() {
		// The handoff sweep drains tenants through the persistence path;
		// without it a ring change would silently destroy tenant state.
		return nil, fmt.Errorf("cluster: the registry must persist tenants (set PersistDir, on storage all nodes share)")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Heartbeat
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 5 * time.Second
	}
	if cfg.ForwardRetries < 0 {
		cfg.ForwardRetries = 0
	} else if cfg.ForwardRetries == 0 {
		cfg.ForwardRetries = 2
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = min(10*cfg.Heartbeat, cfg.ForwardTimeout/2)
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 2 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 4 * cfg.Heartbeat
	}
	n := &Node{
		cfg:    cfg,
		client: cfg.Client,
		clock:  sim.Or(cfg.Clock),
		stop:   make(chan struct{}),
		kick:   make(chan struct{}, 1),
	}
	if n.client == nil {
		n.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		np := &peer{addr: p, alive: true}
		if cfg.PeerBreaker.Window > 0 {
			np.breaker = resilience.NewBreaker(cfg.PeerBreaker)
		}
		n.peers = append(n.peers, np)
		members = append(members, p)
	}
	sort.Slice(n.peers, func(i, j int) bool { return n.peers[i].addr < n.peers[j].addr })
	n.ring.Store(BuildRing(n.ringV.Add(1), members, cfg.VNodes))
	return n, nil
}

// Ring returns the current ring (immutable; lock-free).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Self reports the node's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// Start launches the health-check and handoff loops.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.heartbeatLoop()
	go n.handoffLoop()
}

// Close stops the background loops. It does not drain the registry: a
// graceful shutdown flushes it (as cacheserve does on SIGINT), and peers
// detect the death and remap within DeadAfter heartbeats either way.
func (n *Node) Close() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	n.wg.Wait()
}

// Register installs the cluster routes — /v1/cluster/status (JSON, for
// humans and load generators), /v1/cluster/gossip (binary PeerStatus, the
// health-probe endpoint) and /v1/cluster/forward (binary envelope, the
// peer-forwarding endpoint) — on the serving mux.
func (n *Node) Register(mux interface {
	Handle(pattern string, handler http.Handler)
}) {
	mux.Handle("GET /v1/cluster/status", http.HandlerFunc(n.handleStatus))
	mux.Handle("GET /v1/cluster/gossip", http.HandlerFunc(n.handleGossip))
	mux.Handle("POST /v1/cluster/forward", http.HandlerFunc(n.handleForward))
}

// routedPaths are the tenant-scoped serving routes the cluster router
// owns placement for, with per-route hedging policy. Everything else
// (stats, health, FL admin, the cluster routes themselves) serves
// locally on whichever node receives it. Queries are idempotent, so a
// slow owner gets a hedged duplicate; feedback mutates τ, so it is
// never hedged — retries and the local fallback still give it
// at-least-once (not exactly-once) semantics, which τ's small clamped
// steps tolerate.
var routedPaths = map[string]struct{ hedge bool }{
	"/v1/query":    {hedge: true},
	"/v1/feedback": {hedge: false},
}

// Wrap returns the routing middleware around the serving mux: requests
// for tenants this node owns pass straight through; requests for tenants
// owned elsewhere are forwarded to the owner. The ownership check is one
// atomic ring load — no locks on the hot path.
func (n *Node) Wrap(inner http.Handler) http.Handler {
	n.inner.Store(&inner)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route, routed := routedPaths[r.URL.Path]
		if r.Method != http.MethodPost || !routed || r.Header.Get(forwardedHeader) != "" {
			inner.ServeHTTP(w, r)
			return
		}
		var wrapStart time.Time
		if n.cfg.Tracer.Enabled() {
			wrapStart = n.clock.Now()
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxWireBody+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("cluster: reading request: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) > maxWireBody {
			// Too large to forward, but not too large to serve: splice
			// the unread remainder back on and serve locally, preserving
			// single-node behavior for owned tenants (and a degraded
			// local serve for the rare over-cap non-owned request).
			r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(body), r.Body))
			inner.ServeHTTP(w, r)
			return
		}
		serveLocal := func() {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			inner.ServeHTTP(w, r)
		}
		user := peekUser(body)
		owner := n.ring.Load().Owner(user)
		if user == "" || owner == "" || owner == n.cfg.Self {
			serveLocal() // ours (or malformed — let the mux reject it)
			return
		}
		// The forward path gets its own origin-side trace: the serving
		// spans happen on the owner, so without one the request would be
		// invisible here. Owned tenants skip this — the serving handler
		// starts their trace.
		var trace *obs.Trace
		var decodeDur time.Duration
		if n.cfg.Tracer.Enabled() {
			decodeDur = n.clock.Since(wrapStart)
			trace = n.cfg.Tracer.Start(r.URL.Path)
			trace.User = user
			trace.Add(obs.SpanDecode, 0, decodeDur)
		}
		var traceID uint64
		if trace != nil {
			traceID = trace.ID
		}
		fwdStart := n.clock.Now()
		resp, err := n.forward(r.Context(), owner, r.URL.Path, user, body, route.hedge, traceID)
		if err != nil {
			n.cfg.Tracer.Abandon(trace)
			var answered *peerAnsweredError
			if errors.As(err, &answered) {
				// The owner is alive and declined — surface its error;
				// serving locally would double-serve a healthy owner's
				// tenant.
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			// The owner is unreachable after retries (and, if the
			// failures crossed DeadAfter, now off the ring). Serving
			// locally keeps the tenant available: the registry revives it
			// from shared storage, and if this node is not the tenant's
			// home on the healed ring, the sweep hands it back off. A
			// request whose forward timed out mid-flight may be processed
			// twice this way — acceptable for an idempotent query path,
			// and why hedging is safe to enable at all.
			n.localFallbacks.Add(1)
			serveLocal()
			return
		}
		if trace != nil {
			trace.Status = int(resp.Status)
			trace.Hit = peekHit(resp.Body)
			trace.Add(obs.SpanForward, decodeDur, n.clock.Since(fwdStart))
			if len(resp.Spans) > 0 {
				// Corrupt span blobs degrade the trace, never the request.
				if spans, derr := obs.DecodeSpans(resp.Spans); derr == nil {
					trace.AddRemote(resp.Node, spans)
				}
			}
		}
		w.Header().Set(servedByHeader, resp.Node)
		if resp.Status == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		w.WriteHeader(int(resp.Status))
		w.Write(resp.Body)
		if trace != nil {
			n.cfg.Tracer.Finish(trace, n.clock.Since(wrapStart))
		}
	})
}

// peekHit extracts the cache-hit flag from a forwarded query response,
// so the origin's stitched trace reports the outcome the owner produced.
func peekHit(body []byte) bool {
	var p struct {
		Hit bool `json:"hit"`
	}
	return json.Unmarshal(body, &p) == nil && p.Hit
}

// peekUser extracts the tenant ID from a serving-route body.
func peekUser(body []byte) string {
	var p struct {
		User string `json:"user"`
	}
	if json.Unmarshal(body, &p) != nil {
		return ""
	}
	return p.User
}

// forward ships a tenant request to its owner, retrying up to
// ForwardRetries times. Between attempts the owner is re-resolved — a
// forward failure usually coincides with a membership change, and the
// retry should chase the tenant's new home, not hammer the old one.
// When hedge is set (idempotent routes only), a single duplicate fires
// if the first attempt is slow.
func (n *Node) forward(ctx context.Context, owner, path, user string, body []byte, hedge bool, traceID uint64) (*ForwardResponse, error) {
	var lastErr error
	for attempt := 0; attempt <= n.cfg.ForwardRetries; attempt++ {
		if attempt > 0 {
			cur := n.ring.Load().Owner(user)
			if cur == n.cfg.Self || cur == "" {
				return nil, lastErr // the tenant is ours now — serve locally
			}
			owner = cur
		}
		p := n.peerByAddr(owner)
		var pb *resilience.Breaker
		if p != nil {
			pb = p.breaker
		}
		if pb != nil {
			if rej := pb.Allow(); rej != nil {
				// The peer's breaker is open: skip the attempt instead of
				// burning a forward timeout against a peer that has been
				// failing at traffic speed. The retry loop re-resolves the
				// owner; when every attempt skips, the caller's local
				// fallback keeps the tenant available.
				n.breakerSkips.Add(1)
				lastErr = fmt.Errorf("cluster: peer %s circuit open (retry in %v)", owner, rej.RetryAfter)
				continue
			}
		}
		env, err := EncodeForwardRequest(&ForwardRequest{
			Origin:      n.cfg.Self,
			RingVersion: n.ring.Load().Version(),
			Hops:        uint8(attempt) + 1,
			TraceID:     traceID,
			User:        user,
			Path:        path,
			Body:        body,
		})
		if err != nil {
			if pb != nil {
				pb.Cancel() // the exchange never happened
			}
			return nil, err
		}
		n.forwards.Add(1)
		resp, err := n.forwardHedged(ctx, owner, env, hedge)
		if err == nil {
			// The peer answered: it is demonstrably alive, so failures
			// accumulated from unrelated hiccups reset.
			if pb != nil {
				pb.Record(true)
			}
			if p != nil && p.noteExchange() {
				n.rebuildRing("forward success")
			}
			return resp, nil
		}
		lastErr = err
		n.forwardErrors.Add(1)
		var answered *peerAnsweredError
		if errors.As(err, &answered) {
			// The peer is alive, it just could not serve this request;
			// retrying a deterministic application error elsewhere (or
			// blaming the peer's health) would make things worse.
			if pb != nil {
				pb.Record(true)
			}
			if p != nil && p.noteExchange() {
				n.rebuildRing("forward success")
			}
			return nil, err
		}
		if ctx.Err() != nil {
			// The *client* gave up (disconnect, short deadline) — that
			// says nothing about the peer's health, and further attempts
			// on the dead context would fail instantly and unfairly trip
			// the death counter.
			if pb != nil {
				pb.Cancel()
			}
			return nil, lastErr
		}
		// Genuine transport failures feed the same failure counter as
		// missed heartbeats, so a dead owner is detected at traffic
		// speed, not just probe speed.
		if pb != nil {
			pb.Record(false)
		}
		if p != nil && p.recordFailure(n.cfg.DeadAfter) {
			n.rebuildRing("forward failures")
		}
	}
	return nil, lastErr
}

// forwardHedged runs one forward attempt and, when hedge is set,
// launches a single duplicate if the first has not answered within
// HedgeAfter. The first successful response wins; the loser's
// connection is cancelled by context.
func (n *Node) forwardHedged(ctx context.Context, owner string, env []byte, hedge bool) (*ForwardResponse, error) {
	ctx, cancel := sim.ContextWithTimeout(ctx, n.clock, n.cfg.ForwardTimeout)
	defer cancel()
	results := make(chan forwardResult, 2)
	post := func() {
		resp, err := n.postForward(ctx, owner, env)
		results <- forwardResult{resp, err}
	}
	go post()
	inFlight := 1
	var hedgeTimer <-chan time.Time
	if hedge && n.cfg.HedgeAfter > 0 {
		t := n.clock.NewTimer(n.cfg.HedgeAfter)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var lastErr error
	for inFlight > 0 {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil {
				return res.resp, nil
			}
			lastErr = res.err
		case <-hedgeTimer:
			hedgeTimer = nil
			if n.cfg.HedgeVeto != nil && n.cfg.HedgeVeto() {
				// The node is saturated: a speculative duplicate would
				// multiply the very load that is making the owner slow.
				// Ride out the in-flight attempt alone.
				n.hedgesVetoed.Add(1)
				continue
			}
			n.hedges.Add(1)
			inFlight++
			go post()
		}
	}
	return nil, lastErr
}

type forwardResult struct {
	resp *ForwardResponse
	err  error
}

// peerAnsweredError reports that the owner's forward endpoint answered
// but with an application-level error (non-200, or an undecodable
// envelope from a live listener). The peer is demonstrably alive: the
// failure must reach the client as an error, not feed the death counter
// or trigger the local fallback — both of those are for peers that
// cannot answer at all.
type peerAnsweredError struct {
	peer   string
	status int
	msg    string
}

func (e *peerAnsweredError) Error() string {
	return fmt.Sprintf("cluster: peer %s answered forward with status %d: %s", e.peer, e.status, e.msg)
}

// postForward performs the HTTP exchange for one forward attempt.
func (n *Node) postForward(ctx context.Context, owner string, env []byte) (*ForwardResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/cluster/forward", bytes.NewReader(env))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	hr, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hr.Body, maxWireMessage))
	if err != nil {
		return nil, err
	}
	if hr.StatusCode != http.StatusOK {
		return nil, &peerAnsweredError{peer: owner, status: hr.StatusCode, msg: string(bytes.TrimSpace(raw))}
	}
	resp, err := DecodeForwardResponse(raw)
	if err != nil {
		return nil, &peerAnsweredError{peer: owner, status: hr.StatusCode, msg: err.Error()}
	}
	return resp, nil
}

// handleForward serves a peer-forwarded request against the local mux.
// It serves the request even if this node no longer believes it owns the
// tenant — the forwarder routed on its ring, and re-forwarding on a
// disagreement would loop; the handoff sweep reconciles ownership
// afterwards through the persistence path.
func (n *Node) handleForward(w http.ResponseWriter, r *http.Request) {
	innerp := n.inner.Load()
	if innerp == nil {
		http.Error(w, "cluster: node not serving yet", http.StatusServiceUnavailable)
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxWireMessage))
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: reading envelope: %v", err), http.StatusBadRequest)
		return
	}
	env, err := DecodeForwardRequest(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, ok := routedPaths[env.Path]; !ok {
		http.Error(w, fmt.Sprintf("cluster: path %q is not forwardable", env.Path), http.StatusBadRequest)
		return
	}
	n.forwardedServed.Add(1)
	if env.RingVersion != n.ring.Load().Version() {
		// The forwarder routed on a different ring generation — expected
		// briefly around membership changes; persistent growth of this
		// counter means a peer's ring is not converging.
		n.staleForwards.Add(1)
	}
	// When the envelope carries the origin's trace ID, serve the request
	// under a remote trace: the serving handlers record their spans into
	// it (via the request context) and the blob rides back to the origin
	// for stitching. The remote trace is never published here.
	ctx := r.Context()
	var rt *obs.Trace
	if env.TraceID != 0 && n.cfg.Tracer.Enabled() {
		rt = n.cfg.Tracer.StartRemote(env.TraceID, env.Path)
		ctx = obs.ContextWithTrace(ctx, rt)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, env.Path, bytes.NewReader(env.Body))
	if err != nil {
		n.cfg.Tracer.Release(rt)
		http.Error(w, fmt.Sprintf("cluster: rebuilding request: %v", err), http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, env.Origin)
	rec := &responseCapture{status: http.StatusOK}
	(*innerp).ServeHTTP(rec, req)
	var spanBlob []byte
	if rt != nil {
		spanBlob = obs.AppendSpans(nil, rt.Spans())
		n.cfg.Tracer.Release(rt)
	}
	out, err := EncodeForwardResponse(&ForwardResponse{
		Node:   n.cfg.Self,
		Status: uint16(rec.status),
		Body:   rec.body.Bytes(),
		Spans:  spanBlob,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// responseCapture buffers the local mux's response for re-encoding.
type responseCapture struct {
	status int
	body   bytes.Buffer
	header http.Header
}

func (c *responseCapture) Header() http.Header {
	if c.header == nil {
		c.header = make(http.Header)
	}
	return c.header
}

func (c *responseCapture) WriteHeader(status int)      { c.status = status }
func (c *responseCapture) Write(p []byte) (int, error) { return c.body.Write(p) }

// handleGossip answers a peer health probe with this node's view.
func (n *Node) handleGossip(w http.ResponseWriter, _ *http.Request) {
	ring := n.ring.Load()
	resident := n.cfg.Registry.Resident()
	if resident > int(^uint32(0)>>1) {
		resident = int(^uint32(0) >> 1)
	}
	out, err := EncodePeerStatus(&PeerStatus{
		Node:        n.cfg.Self,
		RingVersion: ring.Version(),
		Resident:    uint32(resident),
		Alive:       ring.Members(),
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// PeerInfo is one peer's health as reported by /v1/cluster/status.
type PeerInfo struct {
	Addr        string `json:"addr"`
	Alive       bool   `json:"alive"`
	Failures    int    `json:"failures,omitempty"`
	RingVersion uint64 `json:"ring_version,omitempty"`
	// Breaker is the peer's forward-circuit state ("closed", "half_open",
	// "open"); empty when per-peer breakers are disabled.
	Breaker string `json:"breaker,omitempty"`
}

// Status is the body of GET /v1/cluster/status.
type Status struct {
	Node            string     `json:"node"`
	RingVersion     uint64     `json:"ring_version"`
	Members         []string   `json:"members"`
	VNodes          int        `json:"vnodes"`
	Peers           []PeerInfo `json:"peers"`
	Resident        int        `json:"resident_tenants"`
	Forwards        int64      `json:"forwards"`
	ForwardErrors   int64      `json:"forward_errors,omitempty"`
	BreakerSkips    int64      `json:"breaker_skips,omitempty"`
	Hedges          int64      `json:"hedges,omitempty"`
	HedgesVetoed    int64      `json:"hedges_vetoed,omitempty"`
	LocalFallbacks  int64      `json:"local_fallbacks,omitempty"`
	ForwardedServed int64      `json:"forwarded_served"`
	StaleForwards   int64      `json:"stale_forwards,omitempty"`
	Handoffs        int64      `json:"handoffs"`
	HandoffBusy     int64      `json:"handoff_busy,omitempty"`
	HandoffErrors   int64      `json:"handoff_errors,omitempty"`
}

// StatusSnapshot assembles the status document (also used in-process by
// the harness and load generator).
func (n *Node) StatusSnapshot() Status {
	ring := n.ring.Load()
	st := Status{
		Node:            n.cfg.Self,
		RingVersion:     ring.Version(),
		Members:         ring.Members(),
		VNodes:          ring.VNodes(),
		Resident:        n.cfg.Registry.Resident(),
		Forwards:        n.forwards.Load(),
		ForwardErrors:   n.forwardErrors.Load(),
		BreakerSkips:    n.breakerSkips.Load(),
		Hedges:          n.hedges.Load(),
		HedgesVetoed:    n.hedgesVetoed.Load(),
		LocalFallbacks:  n.localFallbacks.Load(),
		ForwardedServed: n.forwardedServed.Load(),
		StaleForwards:   n.staleForwards.Load(),
		Handoffs:        n.handoffs.Load(),
		HandoffBusy:     n.handoffBusy.Load(),
		HandoffErrors:   n.handoffErrors.Load(),
	}
	for _, p := range n.peers {
		p.mu.Lock()
		pi := PeerInfo{
			Addr: p.addr, Alive: p.alive, Failures: p.failures, RingVersion: p.ringV,
		}
		p.mu.Unlock()
		if p.breaker != nil {
			pi.Breaker = resilience.StateName(p.breaker.State())
		}
		st.Peers = append(st.Peers, pi)
	}
	return st
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.StatusSnapshot())
}

// RegisterMetrics exposes the node's routing, handoff, and membership
// state on reg under meancache_cluster_*. Everything reads the node's
// existing atomics (or peer locks, for liveness) at scrape time — no
// new accounting on the forward path.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"meancache_cluster_forwards_total", "Forward attempts sent to tenant owners.", &n.forwards},
		{"meancache_cluster_forward_errors_total", "Forward attempts that failed.", &n.forwardErrors},
		{"meancache_cluster_breaker_skips_total", "Forward attempts short-circuited by an open peer breaker.", &n.breakerSkips},
		{"meancache_cluster_hedges_total", "Duplicate hedged forward attempts launched.", &n.hedges},
		{"meancache_cluster_hedges_vetoed_total", "Hedged duplicates suppressed by the saturation veto.", &n.hedgesVetoed},
		{"meancache_cluster_local_fallbacks_total", "Requests served locally after their owner was unreachable.", &n.localFallbacks},
		{"meancache_cluster_forwarded_served_total", "Peer-forwarded requests served on this node.", &n.forwardedServed},
		{"meancache_cluster_stale_forwards_total", "Forwarded requests routed on a different ring generation.", &n.staleForwards},
		{"meancache_cluster_handoffs_total", "Tenants drained to their new owner after ring changes.", &n.handoffs},
		{"meancache_cluster_handoff_busy_total", "Handoff attempts deferred because the tenant stayed busy.", &n.handoffBusy},
		{"meancache_cluster_handoff_errors_total", "Handoff attempts that failed.", &n.handoffErrors},
	}
	for _, c := range counters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() float64 { return float64(v.Load()) })
	}
	reg.GaugeFunc("meancache_cluster_ring_version", "Current consistent-hash ring version.", func() float64 {
		return float64(n.ring.Load().Version())
	})
	reg.GaugeFunc("meancache_cluster_ring_members", "Members on the current ring.", func() float64 {
		return float64(len(n.ring.Load().Members()))
	})
	reg.GaugeFunc("meancache_cluster_peers_alive", "Configured peers currently believed alive.", func() float64 {
		alive := 0
		for _, p := range n.peers {
			if p.isAlive() {
				alive++
			}
		}
		return float64(alive)
	})
	reg.GaugeFunc("meancache_cluster_peer_breakers_open", "Peers whose forward circuit breaker is currently open.", func() float64 {
		open := 0
		for _, p := range n.peers {
			if p.breaker != nil && p.breaker.State() == resilience.StateOpen {
				open++
			}
		}
		return float64(open)
	})
}

// heartbeatLoop probes every peer each Heartbeat and rebuilds the ring
// when the live set changes.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := n.clock.NewTicker(n.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.probePeers()
		}
	}
}

// probePeers health-checks all peers concurrently, then reconciles the
// ring with the observed live set.
func (n *Node) probePeers() {
	var wg sync.WaitGroup
	changed := atomic.Bool{}
	for _, p := range n.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			status, err := n.probe(p.addr)
			if err != nil {
				if p.recordFailure(n.cfg.DeadAfter) {
					// Log on the alive→dead flip only (bounded volume):
					// a persistent cause — like an identity mismatch from
					// a misconfigured peer list — must be diagnosable.
					n.logf("cluster: peer %s marked dead: %v", p.addr, err)
					changed.Store(true)
				}
				return
			}
			if p.recordSuccess(status.RingVersion) {
				changed.Store(true)
			}
		}(p)
	}
	wg.Wait()
	if changed.Load() {
		n.rebuildRing("heartbeat")
	}
}

// probe performs one health check against a peer's gossip endpoint.
func (n *Node) probe(addr string) (*PeerStatus, error) {
	ctx, cancel := sim.ContextWithTimeout(context.Background(), n.clock, n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/cluster/gossip", nil)
	if err != nil {
		return nil, err
	}
	hr, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hr.Body, maxWireMessage))
	if err != nil {
		return nil, err
	}
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: probe status %d", hr.StatusCode)
	}
	status, err := DecodePeerStatus(raw)
	if err != nil {
		return nil, err
	}
	if status.Node != addr {
		// A different node answering on this address is a deployment
		// error; trusting it would split the ring.
		return nil, fmt.Errorf("cluster: peer at %s identifies as %s", addr, status.Node)
	}
	return status, nil
}

// recordFailure notes a failed exchange; reports true when it flips the
// peer from alive to dead.
func (p *peer) recordFailure(deadAfter int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures++
	if p.alive && p.failures >= deadAfter {
		p.alive = false
		return true
	}
	return false
}

// recordSuccess notes a healthy probe; reports true when it revives a
// dead peer.
func (p *peer) recordSuccess(ringV uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures = 0
	p.ringV = ringV
	if !p.alive {
		p.alive = true
		return true
	}
	return false
}

// noteExchange records a successful non-probe exchange with the peer;
// reports true when it revives a dead peer. Unlike recordSuccess it
// leaves the last-reported ring version alone (a forward response does
// not carry one).
func (p *peer) noteExchange() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures = 0
	if !p.alive {
		p.alive = true
		return true
	}
	return false
}

func (p *peer) isAlive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// peerByAddr resolves a configured peer (nil for self/unknown).
func (n *Node) peerByAddr(addr string) *peer {
	i := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].addr >= addr })
	if i < len(n.peers) && n.peers[i].addr == addr {
		return n.peers[i]
	}
	return nil
}

// rebuildRing recomputes the ring from the live member set and swaps it
// atomically if it differs from the current one, kicking a handoff
// sweep. The compare-and-swap sequence runs under ringMu: a heartbeat
// rebuild and a forward-failure rebuild may race, and without the lock
// the loser could overwrite a newer ring with a staler member set that
// nothing would ever correct (readers still load the pointer lock-free).
func (n *Node) rebuildRing(cause string) {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	members := []string{n.cfg.Self}
	for _, p := range n.peers {
		if p.isAlive() {
			members = append(members, p.addr)
		}
	}
	cur := n.ring.Load()
	if sameMembers(cur.Members(), members) {
		return
	}
	next := BuildRing(n.ringV.Add(1), members, n.cfg.VNodes)
	n.ring.Store(next)
	n.logf("cluster: ring v%d (%s): members %v", next.Version(), cause, next.Members())
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// sameMembers compares a sorted ring member list against an unsorted
// candidate set.
func sameMembers(sorted, candidate []string) bool {
	if len(sorted) != len(candidate) {
		return false
	}
	c := append([]string(nil), candidate...)
	sort.Strings(c)
	for i := range c {
		if c[i] != sorted[i] {
			return false
		}
	}
	return true
}

// handoffLoop drains non-owned tenants after ring changes and on a slow
// periodic sweep (which also catches tenants revived locally by the
// degraded forward fallback).
func (n *Node) handoffLoop() {
	defer n.wg.Done()
	ticker := n.clock.NewTicker(n.cfg.SweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.kick:
		case <-ticker.C:
		}
		n.handoffSweep()
	}
}

// handoffSweep drains every resident tenant the current ring places on
// another node. DrainWait budgets the whole sweep, not each tenant:
// waiting the full budget on one continuously-hot tenant must not stall
// the drainable tenants queued behind it, so once the budget is spent
// remaining tenants get a single pin check. Busy tenants are left for
// the next sweep — a request is never dropped to make a handoff
// deadline.
func (n *Node) handoffSweep() {
	deadline := n.clock.Now().Add(n.cfg.DrainWait)
	for _, id := range n.cfg.Registry.IDs() {
		owner := n.ring.Load().Owner(id)
		if owner == n.cfg.Self || owner == "" {
			continue
		}
		wait := n.clock.Until(deadline)
		if wait < 0 {
			wait = 0
		}
		resident, err := n.cfg.Registry.Drain(id, wait)
		switch {
		case err == server.ErrTenantBusy:
			n.handoffBusy.Add(1)
		case err != nil:
			n.handoffErrors.Add(1)
			n.logf("cluster: handing off %q to %s: %v", id, owner, err)
		case resident:
			n.handoffs.Add(1)
		}
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
