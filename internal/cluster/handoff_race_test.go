package cluster

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterHandoffRace is the conformance-style race hardening for
// tenant handoff, meant to run under -race: three nodes serve concurrent
// Get/feedback/reembed traffic while membership flaps (a node is killed
// and revived), which forces the survivors to drain tenants back to the
// rejoining node mid-flight. Invariants:
//
//   - no dropped requests: every query and feedback call succeeds, even
//     while its tenant is being handed off (Drain waits for in-flight
//     references instead of yanking them);
//   - no double-serve: once the rings converge and the sweeps settle,
//     every resident tenant is resident only on its ring owner.
func TestClusterHandoffRace(t *testing.T) {
	h := startTestCluster(t, 3, nil)
	client := &http.Client{Timeout: 10 * time.Second}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const users = 16
	names := tenantNames(users, 123)
	for u, name := range names {
		if _, err := queryUser(client, pickEntry(h, u), name, userText(u, 0)); err != nil {
			t.Fatalf("warming %s: %v", name, err)
		}
	}

	stop := make(chan struct{})
	var dropped atomic.Int64
	var requests atomic.Int64
	var wg sync.WaitGroup

	// Query + feedback workers, entering through whichever nodes are
	// live at the moment of each request.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := rng.Intn(users)
				requests.Add(1)
				if i%5 == 4 {
					if _, err := postWithEntryFailover[struct {
						Tau float32 `json:"tau"`
					}](h, client, "/v1/feedback", map[string]string{"user": names[u]}, rng.Int()); err != nil {
						dropped.Add(1)
						t.Logf("feedback dropped: %v", err)
					}
				} else {
					body := map[string]string{"user": names[u], "query": userText(u, 0)}
					if _, err := postWithEntryFailover[struct{}](h, client, "/v1/query", body, rng.Int()); err != nil {
						dropped.Add(1)
						t.Logf("query dropped: %v", err)
					}
				}
			}
		}(w)
	}

	// Reembed worker: pins tenants on their current owner (the FL
	// rollout's access pattern) concurrent with drains. Paced against
	// the query workers' progress instead of a timer, so it interleaves
	// with real traffic on fast and slow machines alike.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		last := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if cur := requests.Load(); cur == last {
				time.Sleep(200 * time.Microsecond) // poll for worker progress
				continue
			} else {
				last = cur
			}
			name := names[rng.Intn(users)]
			hn := h.NodeAt(h.Owner(name))
			if hn == nil || !hn.Alive() {
				continue
			}
			tenant, err := hn.Registry().Get(name)
			if err != nil {
				continue // the node may be mid-kill; not a dropped request
			}
			tenant.Client.Reembed()
			tenant.Release()
		}
	}()

	// Membership flaps: kill a node (its tenants remap to survivors),
	// revive it (survivors drain those tenants back) — twice. Each flap
	// waits for the workers to land a batch of requests under the
	// current membership (not for a timer): the race surface provably
	// ran, without over-sleeping on fast machines or racing on slow ones.
	const flapAfter = 40 // requests under each membership before flapping
	for cycle := 0; cycle < 2; cycle++ {
		waitRequests(t, &requests, flapAfter, 10*time.Second)
		if err := h.Kill(2, true); err != nil {
			t.Errorf("kill cycle %d: %v", cycle, err)
		}
		if err := h.WaitConverged(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		waitRequests(t, &requests, flapAfter, 10*time.Second)
		if err := h.Revive(2); err != nil {
			t.Fatal(err)
		}
		if err := h.WaitConverged(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitRequests(t, &requests, flapAfter, 10*time.Second)
	close(stop)
	wg.Wait()

	if n := dropped.Load(); n > 0 {
		t.Errorf("%d of %d requests dropped during handoff (want 0)", n, requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests issued — the race surface never ran")
	}

	// Single-ownership settles once the sweeps catch up: poll until
	// every resident tenant lives only on its ring owner.
	deadline := time.Now().Add(5 * time.Second)
	for {
		violations := singleOwnerViolations(h)
		if len(violations) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("double-serve after settling: %v", violations)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRequests blocks until the workers have issued n more requests
// than when it was called — condition-based pacing that replaces the
// fixed sleeps this suite used to flake on under -race scheduling.
func waitRequests(t *testing.T, counter *atomic.Int64, n int64, timeout time.Duration) {
	t.Helper()
	target := counter.Load() + n
	deadline := time.Now().Add(timeout)
	for counter.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("workers issued %d of %d requests within %v", counter.Load()-(target-n), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// singleOwnerViolations lists tenants resident on a live node that is
// not their ring owner.
func singleOwnerViolations(h *Harness) []string {
	var bad []string
	for _, hn := range h.Nodes() {
		if !hn.Alive() {
			continue
		}
		for _, id := range hn.Registry().IDs() {
			if owner := hn.ClusterNode().Ring().Owner(id); owner != hn.Addr {
				bad = append(bad, id+"@"+hn.Addr+"(owner "+owner+")")
			}
		}
	}
	return bad
}
