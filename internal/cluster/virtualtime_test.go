package cluster

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/server"
	"repro/internal/sim"
)

// vtCluster is a cluster of real Nodes — production gossip, forwarding,
// and handoff code — wired to a sim.Transport network and a
// sim.VirtualClock instead of sockets and the wall clock. No wall time
// passes while membership converges: the test advances virtual time and
// asserts how many virtual heartbeats detection actually took.
type vtCluster struct {
	clock *sim.VirtualClock
	tr    *sim.Transport
	addrs []string
	nodes []*Node
	regs  []*server.Registry
}

func startVirtualCluster(t *testing.T, n int) *vtCluster {
	t.Helper()
	vc := &vtCluster{clock: sim.NewVirtual()}
	vc.tr = sim.NewTransport(vc.clock, 1)
	dir := t.TempDir()
	llm := llmsim.New(llmsim.DefaultConfig())
	for i := 0; i < n; i++ {
		vc.addrs = append(vc.addrs, "10.0.0."+string(rune('1'+i))+":80")
	}
	for i := 0; i < n; i++ {
		reg, err := server.NewRegistry(server.RegistryConfig{
			Shards:     4,
			PersistDir: dir,
			Factory: func(userID string) *core.Client {
				return core.New(core.Options{
					Encoder: &testEncoder{dim: 32}, LLM: llm,
					Tau: 0.9, TopK: 4, FeedbackStep: 0.01,
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		peers := make([]string, 0, n-1)
		for j, a := range vc.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := New(Config{
			Self:      vc.addrs[i],
			Peers:     peers,
			VNodes:    64,
			Registry:  reg,
			Heartbeat: 50 * time.Millisecond,
			DeadAfter: 3,
			Clock:     vc.clock,
			Client:    &http.Client{Transport: vc.tr.Bind(vc.addrs[i])},
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Register(srv)
		srv.Wrap(node.Wrap)
		vc.tr.Register(vc.addrs[i], srv.Handler())
		node.Start()
		t.Cleanup(node.Close)
		vc.nodes = append(vc.nodes, node)
		vc.regs = append(vc.regs, reg)
	}
	// Every node parks a heartbeat ticker and a handoff ticker on the
	// virtual queue; wait for all of them before driving time.
	vc.clock.BlockUntil(2 * n)
	return vc
}

// advanceUntil drives virtual time in heartbeat-sized steps until cond
// holds, returning how much virtual time that took. The wall sleep
// between steps only yields to the node goroutines the tick released —
// all timing still comes from the virtual clock.
func (vc *vtCluster) advanceUntil(t *testing.T, budget time.Duration, cond func() bool) time.Duration {
	t.Helper()
	start := vc.clock.Now()
	for {
		for i := 0; i < 4; i++ {
			if cond() {
				return vc.clock.Since(start)
			}
			time.Sleep(500 * time.Microsecond)
		}
		if vc.clock.Since(start) > budget {
			t.Fatalf("condition not reached within %v of virtual time", budget)
		}
		vc.clock.Advance(25 * time.Millisecond)
	}
}

// TestVirtualTimeDeathDetection runs the production Node's gossip loop
// entirely on virtual time: a peer is cut at the transport, and every
// survivor must remove it from its ring within DeadAfter+1 virtual
// heartbeats — an exact timing bound no wall-clock test can assert.
// Revival must restore it to every ring. Wall time spent is scheduler
// noise, not protocol waits.
func TestVirtualTimeDeathDetection(t *testing.T) {
	vc := startVirtualCluster(t, 3)
	victim := vc.addrs[2]

	ringsExclude := func(addr string) bool {
		for i, node := range vc.nodes {
			if vc.addrs[i] == addr {
				continue
			}
			if node.Ring().Has(addr) {
				return false
			}
		}
		return true
	}

	// Let one round of probes establish liveness.
	vc.advanceUntil(t, time.Second, func() bool {
		for _, node := range vc.nodes {
			if len(node.Ring().Members()) != 3 {
				return false
			}
		}
		return true
	})

	vc.tr.SetDown(victim, true)
	took := vc.advanceUntil(t, 2*time.Second, func() bool { return ringsExclude(victim) })
	// DeadAfter=3 consecutive failed probes at a 50ms heartbeat: the
	// survivors must converge within 4 heartbeats of virtual time (one
	// slack tick for probe phase), however long the wall scheduler took.
	if limit := 4 * 50 * time.Millisecond; took > limit {
		t.Fatalf("death detected after %v of virtual time, want <= %v", took, limit)
	}

	vc.tr.SetDown(victim, false)
	took = vc.advanceUntil(t, 2*time.Second, func() bool {
		for _, node := range vc.nodes {
			if !node.Ring().Has(victim) {
				return false
			}
		}
		return true
	})
	if limit := 2 * 50 * time.Millisecond; took > limit {
		t.Fatalf("revival detected after %v of virtual time, want <= %v (one successful probe)", took, limit)
	}
}

// TestVirtualTimeForwarding routes a real query through the simulated
// network: a request entering a non-owner node is forwarded to its ring
// owner over the sim.Transport, with the hedge timer and forward
// deadline armed on the virtual clock.
func TestVirtualTimeForwarding(t *testing.T) {
	vc := startVirtualCluster(t, 3)
	vc.advanceUntil(t, time.Second, func() bool {
		for _, node := range vc.nodes {
			if len(node.Ring().Members()) != 3 {
				return false
			}
		}
		return true
	})

	user := "virtual-forward-user"
	owner := vc.nodes[0].Ring().Owner(user)
	entry := ""
	for _, a := range vc.addrs {
		if a != owner {
			entry = a
			break
		}
	}
	client := &http.Client{Transport: vc.tr.Bind("")}
	qr, err := queryUser(client, "http://"+entry, user, "a question over the simulated network")
	if err != nil {
		t.Fatalf("query via %s: %v", entry, err)
	}
	if qr.Hit {
		t.Fatal("first query reported a cache hit")
	}
	var entryNode *Node
	for i, a := range vc.addrs {
		if a == entry {
			entryNode = vc.nodes[i]
		}
	}
	if st := entryNode.StatusSnapshot(); st.Forwards == 0 {
		t.Error("entry node reports zero forwards over the sim transport")
	}
	// The tenant must be resident on its owner, not the entry node.
	for i, a := range vc.addrs {
		for _, id := range vc.regs[i].IDs() {
			if id == user && a != owner {
				t.Errorf("tenant resident on %s, owner is %s", a, owner)
			}
		}
	}
}
