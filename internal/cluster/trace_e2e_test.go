package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/obs"
	"repro/internal/server"
)

// TestClusterTraceStitching is the cross-node tracing acceptance test: a
// query entering through a non-owner must yield ONE stitched trace on
// the entry node whose spans cover the local forward hop and the owner's
// serving stages (encode, tier-labelled search, upstream on a miss),
// each remote span attributed to the owner — and the owner must publish
// nothing for the forwarded request.
func TestClusterTraceStitching(t *testing.T) {
	dir := t.TempDir()
	llm := llmsim.New(llmsim.DefaultConfig())
	var mu sync.Mutex
	tracers := map[string]*obs.Tracer{}
	h, err := StartHarness(HarnessConfig{
		Nodes:     2,
		VNodes:    64,
		Heartbeat: 25 * time.Millisecond,
		DeadAfter: 2,
		Logf:      t.Logf,
		MakeNode: func(self string) (*server.Registry, *server.Server, error) {
			reg, err := server.NewRegistry(server.RegistryConfig{
				Shards:     4,
				PersistDir: dir,
				Factory: func(string) *core.Client {
					return core.New(core.Options{Encoder: &testEncoder{dim: 32}, LLM: llm, Tau: 0.9, TopK: 4})
				},
			})
			if err != nil {
				return nil, nil, err
			}
			tracer := obs.NewTracer(obs.TracerConfig{Node: self, SampleRate: 1, RingSize: 16})
			mu.Lock()
			tracers[self] = tracer
			mu.Unlock()
			srv, err := server.New(server.Config{Registry: reg, Tracer: tracer})
			if err != nil {
				return nil, nil, err
			}
			return reg, srv, nil
		},
		Tune: func(cfg *Config) {
			mu.Lock()
			defer mu.Unlock()
			cfg.Tracer = tracers[cfg.Self]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	client := &http.Client{Timeout: 10 * time.Second}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	user := "stitch-probe-user"
	owner := h.Owner(user)
	var entry *HarnessNode
	for _, hn := range h.Nodes() {
		if hn.Addr != owner {
			entry = hn
			break
		}
	}
	if entry == nil {
		t.Fatalf("no entry node distinct from owner %s", owner)
	}
	if _, err := queryUser(client, entry.URL(), user, "what is a stitched trace"); err != nil {
		t.Fatal(err)
	}
	qr, err := queryUser(client, entry.URL(), user, "what is a stitched trace")
	if err != nil || !qr.Hit {
		t.Fatalf("second forwarded query: hit=%v err=%v", qr.Hit, err)
	}

	mu.Lock()
	entryTracer, ownerTracer := tracers[entry.Addr], tracers[owner]
	mu.Unlock()
	recent := entryTracer.Recent()
	if len(recent) != 2 {
		t.Fatalf("entry node published %d traces, want 2 (one per forwarded query)", len(recent))
	}
	if n := len(ownerTracer.Recent()); n != 0 {
		t.Errorf("owner published %d traces for forwarded requests, want 0 (origin owns the stitched trace)", n)
	}

	// Both ends record a decode span (origin for the routed body, owner
	// for the rebuilt request), so spans are matched on (kind, node).
	findSpan := func(tr obs.TraceSnapshot, kind, node string) (obs.SpanSnapshot, bool) {
		for _, s := range tr.Spans {
			if s.Kind == kind && s.Node == node {
				return s, true
			}
		}
		return obs.SpanSnapshot{}, false
	}
	hit, miss := recent[0], recent[1] // newest first
	if !hit.Hit || miss.Hit {
		t.Fatalf("trace outcomes wrong: newest hit=%v, oldest hit=%v", hit.Hit, miss.Hit)
	}
	for _, tr := range []obs.TraceSnapshot{hit, miss} {
		if tr.ID == "" || tr.ID == "0000000000000000" {
			t.Errorf("trace has no ID: %+v", tr)
		}
		if tr.Node != entry.Addr || tr.User != user {
			t.Errorf("trace identity wrong: node=%q user=%q", tr.Node, tr.User)
		}
		for _, local := range []string{"decode", "forward"} {
			if _, ok := findSpan(tr, local, ""); !ok {
				t.Fatalf("trace missing local %s span: %+v", local, tr.Spans)
			}
		}
		for _, remote := range []string{"encode", "search", "respond"} {
			if _, ok := findSpan(tr, remote, owner); !ok {
				t.Fatalf("trace missing stitched %s span on owner %s: %+v", remote, owner, tr.Spans)
			}
		}
		if s, _ := findSpan(tr, "search", owner); s.Tier != "flat" {
			t.Errorf("stitched search span tier = %q, want flat", s.Tier)
		}
	}
	if _, ok := findSpan(miss, "upstream", owner); !ok {
		t.Errorf("miss trace upstream span missing or misattributed: %+v", miss.Spans)
	}
	if _, ok := findSpan(hit, "upstream", owner); ok {
		t.Errorf("hit trace has an upstream span: %+v", hit.Spans)
	}
	if s, _ := findSpan(hit, "search", owner); s.Candidates < 1 {
		t.Errorf("hit search span candidates = %d, want >= 1", s.Candidates)
	}

	// The node's scrape-time metrics expose the forward counters that
	// backed the stitched traces.
	reg := obs.NewRegistry()
	entry.ClusterNode().RegisterMetrics(reg)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	exp, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("cluster metrics exposition invalid: %v", err)
	}
	if v, ok := exp.Value("meancache_cluster_forwards_total", nil); !ok || v < 2 {
		t.Errorf("meancache_cluster_forwards_total = %v (present %v), want >= 2", v, ok)
	}
	if v, ok := exp.Value("meancache_cluster_ring_members", nil); !ok || v != 2 {
		t.Errorf("meancache_cluster_ring_members = %v (present %v), want 2", v, ok)
	}
}
