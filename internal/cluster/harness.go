package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/server"
)

// Harness spins an N-node cacheserve cluster inside one process, each
// node a full serving stack (registry + HTTP mux + cluster Node) behind
// a real loopback listener. The end-to-end failover tests and `loadgen
// -scenario cluster` both drive clusters through it: it can kill a node
// mid-traffic (abruptly or after a graceful flush), revive it on the
// same address, and wait for the survivors' rings to converge. All
// methods are safe for concurrent use — traffic keeps flowing while a
// node is killed, which is the point.
type Harness struct {
	cfg   HarnessConfig
	nodes []*HarnessNode
}

// HarnessConfig sizes an in-process cluster.
type HarnessConfig struct {
	// Nodes is the cluster size. Required.
	Nodes int
	// MakeNode builds one node's serving stack. The registry must share
	// PersistDir with every other node's (the harness's stand-in for
	// shared storage) and the server must not be listening yet. Required.
	MakeNode func(self string) (*server.Registry, *server.Server, error)

	// VNodes, Heartbeat, DeadAfter, DrainWait, SweepEvery and Logf are
	// passed through to each Node's Config (zero = that config's
	// default). Tests use a short heartbeat so failover converges in
	// tens of milliseconds.
	VNodes     int
	Heartbeat  time.Duration
	DeadAfter  int
	DrainWait  time.Duration
	SweepEvery time.Duration
	Logf       func(format string, args ...any)

	// Tune, when non-nil, runs over each node's cluster Config after the
	// harness fills it and before the Node is built — the hook tests use
	// to install per-node tracers or tweak timeouts.
	Tune func(cfg *Config)
}

// HarnessNode is one member of the in-process cluster. Addr is fixed for
// the harness's lifetime; the serving stack behind it is replaced on
// revival.
type HarnessNode struct {
	Addr string

	mu       sync.Mutex
	registry *server.Registry
	server   *server.Server
	node     *Node
	hts      *httptest.Server
	alive    bool
}

// Alive reports whether the node is currently serving.
func (hn *HarnessNode) Alive() bool {
	hn.mu.Lock()
	defer hn.mu.Unlock()
	return hn.alive
}

// Registry returns the node's current tenant registry.
func (hn *HarnessNode) Registry() *server.Registry {
	hn.mu.Lock()
	defer hn.mu.Unlock()
	return hn.registry
}

// ClusterNode returns the node's current cluster membership object.
func (hn *HarnessNode) ClusterNode() *Node {
	hn.mu.Lock()
	defer hn.mu.Unlock()
	return hn.node
}

// URL is the node's base URL (e.g. "http://127.0.0.1:43113").
func (hn *HarnessNode) URL() string { return "http://" + hn.Addr }

// StartHarness boots the cluster: all listeners are bound first so every
// node knows the full peer address set, then each serving stack is wired
// and started.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: harness needs at least one node")
	}
	if cfg.MakeNode == nil {
		return nil, fmt.Errorf("cluster: HarnessConfig.MakeNode is required")
	}
	h := &Harness{cfg: cfg}
	addrs := make([]string, cfg.Nodes)
	listeners := make([]*httptest.Server, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		listeners[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		addrs[i] = listeners[i].Listener.Addr().String()
		h.nodes = append(h.nodes, &HarnessNode{Addr: addrs[i]})
	}
	for i, hn := range h.nodes {
		if err := h.wire(hn, listeners[i], peersExcept(addrs, i)); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// wire assembles and starts one node's serving stack on its bound
// listener, installing it into hn.
func (h *Harness) wire(hn *HarnessNode, hts *httptest.Server, peers []string) error {
	reg, srv, err := h.cfg.MakeNode(hn.Addr)
	if err != nil {
		return fmt.Errorf("cluster: building node %s: %w", hn.Addr, err)
	}
	ncfg := Config{
		Self:       hn.Addr,
		Peers:      peers,
		VNodes:     h.cfg.VNodes,
		Registry:   reg,
		Heartbeat:  h.cfg.Heartbeat,
		DeadAfter:  h.cfg.DeadAfter,
		DrainWait:  h.cfg.DrainWait,
		SweepEvery: h.cfg.SweepEvery,
		Logf:       h.cfg.Logf,
	}
	if h.cfg.Tune != nil {
		h.cfg.Tune(&ncfg)
	}
	node, err := New(ncfg)
	if err != nil {
		return err
	}
	node.Register(srv)
	srv.Wrap(node.Wrap)
	hts.Config.Handler = srv.Handler()
	hts.Start()
	node.Start()
	hn.mu.Lock()
	hn.registry, hn.server, hn.node, hn.hts, hn.alive = reg, srv, node, hts, true
	hn.mu.Unlock()
	return nil
}

func peersExcept(addrs []string, i int) []string {
	peers := make([]string, 0, len(addrs)-1)
	for j, a := range addrs {
		if j != i {
			peers = append(peers, a)
		}
	}
	return peers
}

// Nodes returns all harness nodes (dead ones included).
func (h *Harness) Nodes() []*HarnessNode { return h.nodes }

// LiveURLs returns the base URLs of currently-serving nodes.
func (h *Harness) LiveURLs() []string {
	var urls []string
	for _, hn := range h.nodes {
		if hn.Alive() {
			urls = append(urls, hn.URL())
		}
	}
	return urls
}

// Checkpoint flushes every live node's resident tenants to shared
// storage — the durability boundary an abrupt kill is measured against.
func (h *Harness) Checkpoint() error {
	var first error
	for _, hn := range h.nodes {
		if reg := h.takeIfAlive(hn); reg != nil {
			if err := reg.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (h *Harness) takeIfAlive(hn *HarnessNode) *server.Registry {
	hn.mu.Lock()
	defer hn.mu.Unlock()
	if !hn.alive {
		return nil
	}
	return hn.registry
}

// Kill stops node i. graceful first flushes its registry to shared
// storage (a drained shutdown); abrupt (graceful=false) closes the
// listener with whatever was last checkpointed — the crash case the
// failover gate measures.
func (h *Harness) Kill(i int, graceful bool) error {
	hn := h.nodes[i]
	hn.mu.Lock()
	if !hn.alive {
		hn.mu.Unlock()
		return nil
	}
	hn.alive = false
	reg, node, hts := hn.registry, hn.node, hn.hts
	hn.mu.Unlock()
	var err error
	if graceful {
		err = reg.Flush()
	}
	node.Close()
	hts.CloseClientConnections()
	hts.Close()
	return err
}

// Revive restarts node i on its original address with a fresh serving
// stack (fresh process semantics: resident state comes only from shared
// storage). The address may take a moment to become bindable again after
// a kill, so binding retries briefly.
func (h *Harness) Revive(i int) error {
	hn := h.nodes[i]
	if hn.Alive() {
		return nil
	}
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if ln, err = net.Listen("tcp", hn.Addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: rebinding %s: %w", hn.Addr, err)
	}
	hts := httptest.NewUnstartedServer(http.NotFoundHandler())
	hts.Listener.Close()
	hts.Listener = ln
	var addrs []string
	for _, other := range h.nodes {
		addrs = append(addrs, other.Addr)
	}
	return h.wire(hn, hts, peersExcept(addrs, i))
}

// WaitConverged blocks until every live node's ring holds exactly the
// live member set (or the timeout elapses).
func (h *Harness) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var want []string
		for _, hn := range h.nodes {
			if hn.Alive() {
				want = append(want, hn.Addr)
			}
		}
		converged := true
		for _, hn := range h.nodes {
			if node := hn.ClusterNode(); hn.Alive() && !sameMembers(node.Ring().Members(), want) {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: rings did not converge within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Owner reports which node owns user, according to the first live
// node's ring (rings agree once converged).
func (h *Harness) Owner(user string) string {
	for _, hn := range h.nodes {
		if hn.Alive() {
			return hn.ClusterNode().Ring().Owner(user)
		}
	}
	return ""
}

// NodeAt returns the harness node advertised at addr (nil if unknown).
func (h *Harness) NodeAt(addr string) *HarnessNode {
	for _, hn := range h.nodes {
		if hn.Addr == addr {
			return hn
		}
	}
	return nil
}

// Close tears the whole cluster down (no flush).
func (h *Harness) Close() {
	for i := range h.nodes {
		h.Kill(i, false)
	}
}
