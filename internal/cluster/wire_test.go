package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	status := &PeerStatus{
		Node:        "10.0.0.1:8090",
		RingVersion: 42,
		Resident:    1337,
		Alive:       []string{"10.0.0.1:8090", "10.0.0.2:8090", "10.0.0.3:8090"},
	}
	sb, err := EncodePeerStatus(status)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePeerStatus(sb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(status, got) {
		t.Errorf("peer status round trip: got %+v, want %+v", got, status)
	}

	freq := &ForwardRequest{
		Origin:      "10.0.0.2:8090",
		RingVersion: 7,
		Hops:        1,
		TraceID:     0xfeedc0de,
		User:        "user-0042",
		Path:        "/v1/query",
		Body:        []byte(`{"user":"user-0042","query":"what is FL?"}`),
	}
	fb, err := EncodeForwardRequest(freq)
	if err != nil {
		t.Fatal(err)
	}
	gotReq, err := DecodeForwardRequest(fb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freq, gotReq) {
		t.Errorf("forward request round trip: got %+v, want %+v", gotReq, freq)
	}

	fresp := &ForwardResponse{
		Node:   "10.0.0.3:8090",
		Status: 200,
		Body:   []byte(`{"hit":true}`),
		Spans:  []byte{0x01, 0x00, 0x02, 0x01, 0x03, 0x00, 0x00, 0x00, 0x10, 0, 0, 0, 0, 0, 0, 0, 0x20, 0, 0, 0, 0, 0, 0, 0},
	}
	rb, err := EncodeForwardResponse(fresp)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := DecodeForwardResponse(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresp, gotResp) {
		t.Errorf("forward response round trip: got %+v, want %+v", gotResp, fresp)
	}
}

func TestWireEmptyFields(t *testing.T) {
	b, err := EncodePeerStatus(&PeerStatus{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePeerStatus(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "" || got.Alive != nil || got.Resident != 0 {
		t.Errorf("zero peer status round trip: %+v", got)
	}
	rb, err := EncodeForwardResponse(&ForwardResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeForwardResponse(rb); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejects(t *testing.T) {
	good, err := EncodeForwardRequest(&ForwardRequest{Origin: "a:1", User: "u", Path: "/v1/query", Body: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         {wireMagic, wireVersion},
		"bad magic":     append([]byte{0x00}, good[1:]...),
		"bad version":   append([]byte{wireMagic, 99}, good[2:]...),
		"wrong kind":    append([]byte{wireMagic, wireVersion, kindPeerStatus}, good[3:]...),
		"truncated":     good[:len(good)-3],
		"trailing junk": append(append([]byte{}, good...), 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeForwardRequest(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// A length prefix pointing far past the buffer must fail cleanly
	// without allocating the claimed size.
	huge := append([]byte{wireMagic, wireVersion, kindForwardRequest}, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeForwardRequest(huge); err == nil {
		t.Error("decode accepted a length prefix beyond the buffer")
	}
	// Encoding oversized fields fails symmetrically.
	if _, err := EncodeForwardRequest(&ForwardRequest{Path: strings.Repeat("p", maxWireString+1)}); err == nil {
		t.Error("encode accepted an oversized string")
	}
	if _, err := EncodeForwardRequest(&ForwardRequest{Body: bytes.Repeat([]byte("b"), maxWireBody+1)}); err == nil {
		t.Error("encode accepted an oversized body")
	}
	if _, err := EncodePeerStatus(&PeerStatus{Alive: make([]string, maxWirePeers+1)}); err == nil {
		t.Error("encode accepted an oversized member list")
	}
	if _, err := EncodeForwardResponse(&ForwardResponse{Spans: bytes.Repeat([]byte("s"), maxWireSpans+1)}); err == nil {
		t.Error("encode accepted an oversized span blob")
	}
}
