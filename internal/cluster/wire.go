package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// The cluster wire codec: a compact, length-prefixed binary encoding for
// the two message families nodes exchange —
//
//   - PeerStatus: the health-probe response (GET /v1/cluster/gossip).
//   - ForwardRequest / ForwardResponse: the forwarded-request envelope
//     (POST /v1/cluster/forward) carrying a tenant request to its owner
//     and the owner's answer back.
//
// Every message starts with a 3-byte header: magic 0xC5, codec version,
// message kind. Strings and byte slices are u32-length-prefixed with hard
// caps, so a decoder fed hostile or corrupt bytes fails with an error —
// never a panic or an unbounded allocation (see FuzzWireCodec).

const (
	wireMagic = 0xC5
	// wireVersion 2 added trace propagation: TraceID on ForwardRequest,
	// the span blob on ForwardResponse. Nodes on different versions
	// reject each other's envelopes, which the forwarder surfaces as a
	// peerAnsweredError — a rolling upgrade briefly errors rather than
	// silently dropping traces.
	wireVersion = 2

	kindPeerStatus      = 1
	kindForwardRequest  = 2
	kindForwardResponse = 3

	// Decode-side caps. Encoding a message that exceeds them fails too,
	// so a round trip either works in both directions or in neither.
	maxWireString = 4 << 10 // node IDs, paths, user IDs
	maxWireBody   = 4 << 20 // forwarded request/response bodies
	maxWirePeers  = 1 << 10 // alive-member lists

	// maxWireSpans caps the trace-span blob a forward response carries;
	// the obs codec enforces its own (identical) bound on decode.
	maxWireSpans = obs.MaxSpanBlob
)

// maxWireMessage bounds a whole encoded message of any kind: the HTTP
// read limit peers apply before decoding. It must dominate the largest
// legal encoding — a forward envelope is a near-cap body plus up to
// three near-cap strings and a span blob, a peer status up to
// maxWirePeers near-cap strings — or a valid message would be truncated
// at the reader and deterministically rejected, falsely feeding the
// peer-death counter.
const maxWireMessage = maxWireBody + (maxWirePeers+3)*(maxWireString+4) + maxWireSpans + 64

// ErrWireCorrupt reports bytes that are not a valid cluster wire message.
var ErrWireCorrupt = errors.New("cluster: corrupt wire message")

// PeerStatus is a node's health-probe response: who it is, which ring it
// is on, what it holds, and who it currently believes is alive.
type PeerStatus struct {
	// Node is the responder's advertised address (its ring member ID).
	Node string
	// RingVersion is the responder's current ring version.
	RingVersion uint64
	// Resident is the responder's resident tenant count.
	Resident uint32
	// Alive lists the members the responder's ring currently includes.
	Alive []string
}

// ForwardRequest is the envelope a router sends to a tenant's owner in
// place of the original client request.
type ForwardRequest struct {
	// Origin is the forwarding node's advertised address.
	Origin string
	// RingVersion is the ring the forwarder routed on; the receiver
	// counts mismatches against its own ring (stale_forwards in
	// /v1/cluster/status), a convergence diagnostic.
	RingVersion uint64
	// Hops is the forwarder's attempt number, for diagnostics. Loop
	// prevention does not depend on it: an envelope is always served
	// where it lands (the rebuilt request carries the forwarded marker,
	// which the routing middleware passes straight through).
	Hops uint8
	// TraceID, when non-zero, is the forwarder's trace ID for this
	// request: the owner records its serving spans under the same ID and
	// returns them in ForwardResponse.Spans so the origin can stitch one
	// cross-node trace. Zero means the origin is not tracing the request.
	TraceID uint64
	// User is the tenant the request belongs to.
	User string
	// Path is the serving route the body targets (e.g. "/v1/query").
	Path string
	// Body is the original JSON request body.
	Body []byte
}

// ForwardResponse carries the owner's answer back to the forwarder.
type ForwardResponse struct {
	// Node is the answering node's advertised address.
	Node string
	// Status is the HTTP status the serving mux produced.
	Status uint16
	// Body is the response body (JSON on success, error text otherwise).
	Body []byte
	// Spans is the owner's serving spans for this request as an
	// obs.AppendSpans blob — empty unless the request carried a TraceID
	// and the owner traces. The origin decodes and stitches them into
	// its trace with the owner's node attribution.
	Spans []byte
}

// EncodePeerStatus serialises s.
func EncodePeerStatus(s *PeerStatus) ([]byte, error) {
	if len(s.Alive) > maxWirePeers {
		return nil, fmt.Errorf("cluster: encoding peer status: %d alive members exceeds cap %d", len(s.Alive), maxWirePeers)
	}
	b := []byte{wireMagic, wireVersion, kindPeerStatus}
	b, err := appendString(b, s.Node, maxWireString)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint64(b, s.RingVersion)
	b = binary.LittleEndian.AppendUint32(b, s.Resident)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Alive)))
	for _, m := range s.Alive {
		if b, err = appendString(b, m, maxWireString); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodePeerStatus parses bytes produced by EncodePeerStatus.
func DecodePeerStatus(b []byte) (*PeerStatus, error) {
	d, err := newWireReader(b, kindPeerStatus)
	if err != nil {
		return nil, err
	}
	var s PeerStatus
	if s.Node, err = d.str(maxWireString); err != nil {
		return nil, err
	}
	if s.RingVersion, err = d.u64(); err != nil {
		return nil, err
	}
	res, err := d.u32()
	if err != nil {
		return nil, err
	}
	s.Resident = res
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > maxWirePeers {
		return nil, fmt.Errorf("%w: %d alive members exceeds cap %d", ErrWireCorrupt, n, maxWirePeers)
	}
	if n > 0 {
		s.Alive = make([]string, n)
		for i := range s.Alive {
			if s.Alive[i], err = d.str(maxWireString); err != nil {
				return nil, err
			}
		}
	}
	return &s, d.done()
}

// EncodeForwardRequest serialises f.
func EncodeForwardRequest(f *ForwardRequest) ([]byte, error) {
	b := []byte{wireMagic, wireVersion, kindForwardRequest}
	var err error
	if b, err = appendString(b, f.Origin, maxWireString); err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint64(b, f.RingVersion)
	b = append(b, f.Hops)
	b = binary.LittleEndian.AppendUint64(b, f.TraceID)
	if b, err = appendString(b, f.User, maxWireString); err != nil {
		return nil, err
	}
	if b, err = appendString(b, f.Path, maxWireString); err != nil {
		return nil, err
	}
	return appendBytes(b, f.Body, maxWireBody)
}

// DecodeForwardRequest parses bytes produced by EncodeForwardRequest.
func DecodeForwardRequest(b []byte) (*ForwardRequest, error) {
	d, err := newWireReader(b, kindForwardRequest)
	if err != nil {
		return nil, err
	}
	var f ForwardRequest
	if f.Origin, err = d.str(maxWireString); err != nil {
		return nil, err
	}
	if f.RingVersion, err = d.u64(); err != nil {
		return nil, err
	}
	if f.Hops, err = d.u8(); err != nil {
		return nil, err
	}
	if f.TraceID, err = d.u64(); err != nil {
		return nil, err
	}
	if f.User, err = d.str(maxWireString); err != nil {
		return nil, err
	}
	if f.Path, err = d.str(maxWireString); err != nil {
		return nil, err
	}
	if f.Body, err = d.bytes(maxWireBody); err != nil {
		return nil, err
	}
	return &f, d.done()
}

// EncodeForwardResponse serialises f.
func EncodeForwardResponse(f *ForwardResponse) ([]byte, error) {
	b := []byte{wireMagic, wireVersion, kindForwardResponse}
	var err error
	if b, err = appendString(b, f.Node, maxWireString); err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint16(b, f.Status)
	if b, err = appendBytes(b, f.Body, maxWireBody); err != nil {
		return nil, err
	}
	return appendBytes(b, f.Spans, maxWireSpans)
}

// DecodeForwardResponse parses bytes produced by EncodeForwardResponse.
func DecodeForwardResponse(b []byte) (*ForwardResponse, error) {
	d, err := newWireReader(b, kindForwardResponse)
	if err != nil {
		return nil, err
	}
	var f ForwardResponse
	if f.Node, err = d.str(maxWireString); err != nil {
		return nil, err
	}
	if f.Status, err = d.u16(); err != nil {
		return nil, err
	}
	if f.Body, err = d.bytes(maxWireBody); err != nil {
		return nil, err
	}
	if f.Spans, err = d.bytes(maxWireSpans); err != nil {
		return nil, err
	}
	return &f, d.done()
}

// appendString appends a u32-length-prefixed string, enforcing cap.
func appendString(b []byte, s string, cap int) ([]byte, error) {
	if len(s) > cap {
		return nil, fmt.Errorf("cluster: encoding: string of %d bytes exceeds cap %d", len(s), cap)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...), nil
}

// appendBytes appends a u32-length-prefixed byte slice, enforcing cap.
func appendBytes(b, v []byte, cap int) ([]byte, error) {
	if len(v) > cap {
		return nil, fmt.Errorf("cluster: encoding: body of %d bytes exceeds cap %d", len(v), cap)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...), nil
}

// wireReader is a bounds-checked cursor over an encoded message.
type wireReader struct {
	b   []byte
	off int
}

// newWireReader validates the 3-byte header and positions the cursor
// after it.
func newWireReader(b []byte, kind byte) (*wireReader, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("%w: %d-byte message is shorter than the header", ErrWireCorrupt, len(b))
	}
	if b[0] != wireMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrWireCorrupt, b[0])
	}
	if b[1] != wireVersion {
		return nil, fmt.Errorf("cluster: unsupported wire version %d (have %d)", b[1], wireVersion)
	}
	if b[2] != kind {
		return nil, fmt.Errorf("%w: message kind %d, want %d", ErrWireCorrupt, b[2], kind)
	}
	return &wireReader{b: b, off: 3}, nil
}

func (d *wireReader) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, fmt.Errorf("%w: truncated at offset %d (need %d of %d bytes)", ErrWireCorrupt, d.off, n, len(d.b)-d.off)
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v, nil
}

func (d *wireReader) u8() (byte, error) {
	v, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func (d *wireReader) u16() (uint16, error) {
	v, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(v), nil
}

func (d *wireReader) u32() (uint32, error) {
	v, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}

func (d *wireReader) u64() (uint64, error) {
	v, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}

// str reads a length-prefixed string, enforcing cap before allocating.
func (d *wireReader) str(cap int) (string, error) {
	v, err := d.bytes(cap)
	return string(v), err
}

// bytes reads a length-prefixed byte slice, enforcing cap before
// allocating. The returned slice is copied so decoded messages do not
// alias the network buffer.
func (d *wireReader) bytes(cap int) ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > cap {
		return nil, fmt.Errorf("%w: %d-byte field exceeds cap %d", ErrWireCorrupt, n, cap)
	}
	v, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out, nil
}

// done verifies the message was consumed exactly — trailing garbage is
// corruption, not padding.
func (d *wireReader) done() error {
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrWireCorrupt, len(d.b)-d.off)
	}
	return nil
}
