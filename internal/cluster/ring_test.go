package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// tenantNames builds a deterministic tenant population shaped like the
// serving layer's user IDs.
func tenantNames(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("user-%08x", rng.Int63())
	}
	return names
}

func memberNames(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:8090", i+1)
	}
	return members
}

// TestRingBalance is the load-balance property: at realistic vnode
// counts, tenant load across nodes stays within a bounded spread of the
// perfect share. The bounds are generous relative to typical spread
// (max/mean lands around 1.1–1.25 at 128 vnodes) so the test pins the
// property, not the hash's exact behaviour.
func TestRingBalance(t *testing.T) {
	cases := []struct {
		nodes, vnodes, tenants int
		maxOverMean            float64 // max node share / perfect share
		minOverMean            float64
	}{
		{3, 64, 30000, 1.35, 0.65},
		{5, 128, 50000, 1.30, 0.70},
		{8, 128, 80000, 1.30, 0.70},
		{16, 256, 160000, 1.30, 0.70},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dnodes_%dvnodes", tc.nodes, tc.vnodes), func(t *testing.T) {
			members := memberNames(tc.nodes)
			ring := BuildRing(1, members, tc.vnodes)
			counts := make(map[string]int, tc.nodes)
			for _, u := range tenantNames(tc.tenants, 42) {
				counts[ring.Owner(u)]++
			}
			mean := float64(tc.tenants) / float64(tc.nodes)
			for _, m := range members {
				share := float64(counts[m]) / mean
				if share > tc.maxOverMean || share < tc.minOverMean {
					t.Errorf("node %s holds %.2f× the perfect share (want within [%.2f, %.2f]); counts=%v",
						m, share, tc.minOverMean, tc.maxOverMean, counts)
				}
			}
		})
	}
}

// TestRingMinimalMovementOnLeave is half of the minimal-movement
// invariant: removing a node remaps exactly that node's tenants —
// every tenant whose owner survives keeps it.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	for _, nodes := range []int{3, 5, 10} {
		t.Run(fmt.Sprintf("%dnodes", nodes), func(t *testing.T) {
			members := memberNames(nodes)
			before := BuildRing(1, members, 128)
			removed := members[nodes/2]
			after := BuildRing(2, append(append([]string{}, members[:nodes/2]...), members[nodes/2+1:]...), 128)

			tenants := tenantNames(20000, 7)
			moved, ownedByRemoved := 0, 0
			for _, u := range tenants {
				was, is := before.Owner(u), after.Owner(u)
				if was == removed {
					ownedByRemoved++
					if is == removed {
						t.Fatalf("tenant %s still owned by removed node", u)
					}
					continue
				}
				if was != is {
					moved++
				}
			}
			if moved != 0 {
				t.Errorf("%d tenants not owned by the removed node remapped (consistent hashing should move only the removed node's %d tenants)",
					moved, ownedByRemoved)
			}
			// The removed node's tenants are ~1/n of the population; allow
			// slack for hash-spread variance.
			frac := float64(ownedByRemoved) / float64(len(tenants))
			if bound := 1/float64(nodes) + 0.10; frac > bound {
				t.Errorf("removed node owned %.3f of tenants, want ≤ %.3f", frac, bound)
			}
		})
	}
}

// TestRingMinimalMovementOnJoin is the other half: adding a node remaps
// at most ~(1/(n+1) + ε) of tenants, and every remapped tenant moves to
// the new node — nobody shuffles between survivors.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	for _, nodes := range []int{2, 4, 9} {
		t.Run(fmt.Sprintf("%d_to_%dnodes", nodes, nodes+1), func(t *testing.T) {
			members := memberNames(nodes + 1)
			before := BuildRing(1, members[:nodes], 128)
			after := BuildRing(2, members, 128)
			joined := members[nodes]

			tenants := tenantNames(20000, 11)
			moved := 0
			for _, u := range tenants {
				was, is := before.Owner(u), after.Owner(u)
				if was == is {
					continue
				}
				moved++
				if is != joined {
					t.Fatalf("tenant %s remapped %s→%s, but only moves to the joining node %s are minimal",
						u, was, is, joined)
				}
			}
			frac := float64(moved) / float64(len(tenants))
			if bound := 1/float64(nodes+1) + 0.10; frac > bound {
				t.Errorf("join remapped %.3f of tenants, want ≤ %.3f (minimal movement)", frac, bound)
			}
		})
	}
}

// TestRingDeterminism: placement depends only on the member set — not
// on list order, duplicates, or which node computes it.
func TestRingDeterminism(t *testing.T) {
	a := BuildRing(1, []string{"c:1", "a:1", "b:1"}, 64)
	b := BuildRing(9, []string{"b:1", "a:1", "c:1", "a:1"}, 64)
	for _, u := range tenantNames(5000, 3) {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("placement differs for %s: %s vs %s (must be order- and duplicate-insensitive)",
				u, a.Owner(u), b.Owner(u))
		}
	}
}

// TestRingEdgeCases covers the degenerate rings routing has to survive.
func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.Owner("u"); got != "" {
		t.Errorf("nil ring owner = %q, want empty", got)
	}
	empty := BuildRing(1, nil, 64)
	if got := empty.Owner("u"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	solo := BuildRing(1, []string{"only:1"}, 64)
	for _, u := range tenantNames(100, 5) {
		if got := solo.Owner(u); got != "only:1" {
			t.Fatalf("single-member ring owner = %q", got)
		}
	}
	if !solo.Has("only:1") || solo.Has("other:1") {
		t.Error("Has misreports membership")
	}
}
