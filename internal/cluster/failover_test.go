package cluster

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterFailover is the end-to-end failover scenario: three
// in-process nodes serve a tenant population under live traffic, the
// node owning a watched tenant is killed abruptly, and the survivors
// must (a) keep every tenant serveable — zero lost tenants — and (b)
// revive the watched tenant with its feedback-adapted τ, its stamped
// model version, and its cached entries intact, via the registry's
// normal store-revival path against shared storage.
func TestClusterFailover(t *testing.T) {
	recorder := newReviveRecorder()
	h := startTestCluster(t, 3, recorder)
	client := &http.Client{Timeout: 10 * time.Second}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Warm a population of tenants through rotating entry nodes, so many
	// requests exercise the forwarding path. Each tenant caches 2
	// queries.
	const users = 24
	names := tenantNames(users, 99)
	for u, name := range names {
		for q := 0; q < 2; q++ {
			if _, err := queryUser(client, pickEntry(h, u+q), name, userText(u, q)); err != nil {
				t.Fatalf("warming %s: %v", name, err)
			}
		}
	}

	// Pick a watched tenant and adapt its τ through feedback: three
	// false-hit reports raise τ by 3×FeedbackStep.
	watched := names[0]
	ownerAddr := h.Owner(watched)
	var adaptedTau float32
	for i := 0; i < 3; i++ {
		fr, _, err := postJSON[struct {
			Tau float32 `json:"tau"`
		}](client, pickEntry(h, i)+"/v1/feedback", map[string]string{"user": watched})
		if err != nil {
			t.Fatalf("feedback %d: %v", i, err)
		}
		adaptedTau = fr.Tau
	}
	if adaptedTau <= 0.9 {
		t.Fatalf("feedback did not raise τ (got %.4f)", adaptedTau)
	}

	// Checkpoint to shared storage — the durability boundary an abrupt
	// kill is measured against.
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Keep traffic flowing from background workers while the owner dies.
	// Workers only target surviving entry nodes (client-side failover);
	// requests routed to the dead owner must fall back, not fail.
	ownerIdx := -1
	for i, hn := range h.Nodes() {
		if hn.Addr == ownerAddr {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s not in harness", ownerAddr)
	}
	survivors := make([]string, 0, 2)
	for i, hn := range h.Nodes() {
		if i != ownerIdx {
			survivors = append(survivors, hn.URL())
		}
	}
	stopTraffic := make(chan struct{})
	var trafficErrs atomic.Int64
	var trafficDone atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				u := (w*7 + i) % users
				if _, err := queryUser(client, survivors[i%2], names[u], userText(u, i%2)); err != nil {
					trafficErrs.Add(1)
				}
				trafficDone.Add(1)
			}
		}(w)
	}

	// Steady state means requests are demonstrably completing — wait for
	// a batch of them rather than for a timer (the old fixed sleeps were
	// this suite's flake source under -race scheduling).
	waitRequests(t, &trafficDone, 25, 10*time.Second)
	if err := h.Kill(ownerIdx, false); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A batch of requests must cross the healed ring before we stop.
	waitRequests(t, &trafficDone, 50, 10*time.Second)
	close(stopTraffic)
	wg.Wait()
	if n := trafficErrs.Load(); n > 0 {
		t.Errorf("%d requests failed during failover (want 0: forwards to the dead owner must fall back)", n)
	}

	// Zero lost tenants: every tenant answers from a survivor, and the
	// watched tenant's warmed entry is a cache hit (its entries were
	// revived, not rebuilt).
	for u, name := range names {
		qr, err := queryUser(client, survivors[u%2], name, userText(u, 0))
		if err != nil {
			t.Fatalf("tenant %s lost after failover: %v", name, err)
		}
		if name == watched {
			if !qr.Hit {
				t.Errorf("watched tenant's warmed query missed after revival (cache contents lost)")
			}
			if qr.Tau != adaptedTau {
				t.Errorf("watched tenant revived with τ %.4f, want adapted %.4f", qr.Tau, adaptedTau)
			}
		}
	}

	// The revival carried the persisted metadata through the hooks: the
	// stamped model version arrived on a surviving node.
	meta := recorder.meta(watched)
	if meta == nil {
		t.Fatal("watched tenant revived with no persisted metadata")
	}
	if got := string(meta["modelver"]); got != "model-v7" {
		t.Errorf("revived model version = %q, want %q", got, "model-v7")
	}
	if on := recorder.revivedOn(watched); on == ownerAddr {
		t.Errorf("watched tenant revived on the dead owner %s", on)
	}

	// The new ring no longer contains the dead node, and the watched
	// tenant has a live owner.
	if h.Owner(watched) == ownerAddr {
		t.Error("ring still places the watched tenant on the dead node")
	}
}

// TestClusterForwarding checks steady-state routing: a request entering
// through a non-owner is served by the owner (one hop), and cluster
// status reports the forward.
func TestClusterForwarding(t *testing.T) {
	h := startTestCluster(t, 3, nil)
	client := &http.Client{Timeout: 10 * time.Second}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	user := "forward-probe-user"
	owner := h.Owner(user)
	var entry *HarnessNode
	for _, hn := range h.Nodes() {
		if hn.Addr != owner {
			entry = hn
			break
		}
	}
	if _, err := queryUser(client, entry.URL(), user, "a brand new question"); err != nil {
		t.Fatal(err)
	}
	// The tenant must be resident on its owner, not on the entry node.
	found := false
	for _, id := range h.NodeAt(owner).Registry().IDs() {
		if id == user {
			found = true
		}
	}
	if !found {
		t.Errorf("tenant not resident on its ring owner %s", owner)
	}
	for _, id := range entry.Registry().IDs() {
		if id == user {
			t.Errorf("tenant also resident on entry node %s (should have been forwarded)", entry.Addr)
		}
	}
	if st := entry.ClusterNode().StatusSnapshot(); st.Forwards == 0 {
		t.Error("entry node reports zero forwards")
	}
	if st := h.NodeAt(owner).ClusterNode().StatusSnapshot(); st.ForwardedServed == 0 {
		t.Error("owner reports zero forwarded-served requests")
	}
}
