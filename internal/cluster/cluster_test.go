package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/server"
	"repro/internal/vecmath"
)

// testEncoder is a deterministic bag-of-words hash encoder: equal texts
// embed identically (similarity 1), unrelated texts land near-orthogonal
// — all the cluster tests need from semantics, at a fraction of the
// simulated-transformer cost.
type testEncoder struct{ dim int }

func (e *testEncoder) Encode(text string) []float32 {
	v := make([]float32, e.dim)
	for _, w := range strings.Fields(text) {
		h := hash64(w)
		for i := range v {
			h ^= h >> 12
			h *= 0x2545f4914f6cdd1d
			v[i] += float32(int32(uint32(h>>32))) / (1 << 31)
		}
	}
	if vecmath.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

func (e *testEncoder) Dim() int     { return e.dim }
func (e *testEncoder) Name() string { return "test-hash" }

// reviveRecorder observes tenant revivals cluster-wide: which node
// revived which tenant, and with what persisted metadata.
type reviveRecorder struct {
	mu      sync.Mutex
	revived map[string]map[string][]byte // user → meta at last revival
	node    map[string]string            // user → node that revived it
}

func newReviveRecorder() *reviveRecorder {
	return &reviveRecorder{
		revived: make(map[string]map[string][]byte),
		node:    make(map[string]string),
	}
}

func (rr *reviveRecorder) meta(user string) map[string][]byte {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.revived[user]
}

func (rr *reviveRecorder) revivedOn(user string) string {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.node[user]
}

// testHooks is one node's server.TenantHooks: it stamps a model version
// into every persisted tenant (mirroring the FL coordinator's
// modelver record) and reports revivals to the shared recorder.
type testHooks struct {
	node     string
	version  string
	recorder *reviveRecorder
}

func (h *testHooks) TenantActivated(t *server.Tenant, meta map[string][]byte) {
	if meta == nil || h.recorder == nil {
		return
	}
	h.recorder.mu.Lock()
	h.recorder.revived[t.ID] = meta
	h.recorder.node[t.ID] = h.node
	h.recorder.mu.Unlock()
}

func (h *testHooks) TenantMeta(*server.Tenant) map[string][]byte {
	return map[string][]byte{"modelver": []byte(h.version)}
}

// startTestCluster boots an n-node in-process cluster over a shared
// persist dir, with fast failover timings and revival recording.
func startTestCluster(t *testing.T, n int, recorder *reviveRecorder) *Harness {
	t.Helper()
	dir := t.TempDir()
	llm := llmsim.New(llmsim.DefaultConfig()) // virtual time: no real sleeps
	h, err := StartHarness(HarnessConfig{
		Nodes:      n,
		VNodes:     64,
		Heartbeat:  25 * time.Millisecond,
		DeadAfter:  2,
		DrainWait:  time.Second,
		SweepEvery: 100 * time.Millisecond,
		Logf:       t.Logf,
		MakeNode: func(self string) (*server.Registry, *server.Server, error) {
			reg, err := server.NewRegistry(server.RegistryConfig{
				Shards:     4,
				PersistDir: dir, // shared across nodes — the handoff channel
				Hooks:      &testHooks{node: self, version: "model-v7", recorder: recorder},
				Factory: func(userID string) *core.Client {
					return core.New(core.Options{
						Encoder:      &testEncoder{dim: 32},
						LLM:          llm,
						Tau:          0.9,
						TopK:         4,
						FeedbackStep: 0.01,
					})
				},
			})
			if err != nil {
				return nil, nil, err
			}
			srv, err := server.New(server.Config{Registry: reg})
			if err != nil {
				return nil, nil, err
			}
			return reg, srv, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// postJSON posts body and decodes a JSON response, reporting the HTTP
// status.
func postJSON[T any](client *http.Client, url string, body any) (T, int, error) {
	var out T
	raw, err := json.Marshal(body)
	if err != nil {
		return out, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return out, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return out, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&out)
}

func queryUser(client *http.Client, base, user, text string) (server.QueryResponse, error) {
	qr, _, err := postJSON[server.QueryResponse](client, base+"/v1/query", server.QueryRequest{User: user, Query: text})
	return qr, err
}

func userText(u, q int) string {
	return fmt.Sprintf("user %d question %d about topic %d", u, q, u*100+q)
}

// pickEntry returns a live URL, rotating by i.
func pickEntry(h *Harness, i int) string {
	urls := h.LiveURLs()
	return urls[i%len(urls)]
}

// postWithEntryFailover posts to a live entry node, retrying on a
// different entry when the connection itself fails — the client-side
// failover any real client performs when its chosen endpoint dies
// mid-request. A non-OK HTTP status is returned as-is (the cluster
// answered; that is not an entry failure).
func postWithEntryFailover[T any](h *Harness, client *http.Client, path string, body any, seed int) (T, error) {
	var out T
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		var status int
		out, status, err = postJSON[T](client, pickEntry(h, seed+attempt)+path, body)
		if err == nil || status != 0 {
			return out, err
		}
	}
	return out, err
}
