package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llmsim"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/server"
)

// TestPeerBreakerShortCircuits: a peer that keeps failing forwards trips
// its circuit breaker, after which requests for its tenants skip the
// doomed network attempt and go straight to the local fallback — the
// tenant stays available the whole time. Heartbeats are parked far in
// the future so the test isolates traffic-speed detection: the ring
// keeps naming the dead peer as owner, and only the breaker stands
// between every request and a connection timeout.
func TestPeerBreakerShortCircuits(t *testing.T) {
	dir := t.TempDir()
	llm := llmsim.New(llmsim.DefaultConfig())
	h, err := StartHarness(HarnessConfig{
		Nodes:     2,
		VNodes:    64,
		Heartbeat: time.Minute, // probes never fire during the test
		DeadAfter: 1 << 20,     // the ring never removes the dead peer
		MakeNode: func(self string) (*server.Registry, *server.Server, error) {
			reg, err := server.NewRegistry(server.RegistryConfig{
				Shards:     2,
				PersistDir: dir,
				Factory: func(userID string) *core.Client {
					return core.New(core.Options{
						Encoder: &testEncoder{dim: 32},
						LLM:     llm,
						Tau:     0.9,
						TopK:    4,
					})
				},
			})
			if err != nil {
				return nil, nil, err
			}
			srv, err := server.New(server.Config{Registry: reg})
			if err != nil {
				return nil, nil, err
			}
			return reg, srv, nil
		},
		Tune: func(cfg *Config) {
			cfg.ForwardRetries = -1 // one attempt per request
			cfg.PeerBreaker = resilience.BreakerConfig{
				Window: 4, MinSamples: 2, FailureRatio: 0.5,
				OpenFor: time.Hour, // stays open for the whole test
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	entry := h.Nodes()[0]
	victim := h.Nodes()[1]
	client := &http.Client{Timeout: 10 * time.Second}

	// A tenant owned by the victim, reached through the entry node.
	user := ""
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("breaker-tenant-%d", i)
		if h.Owner(name) == victim.Addr {
			user = name
			break
		}
	}
	if user == "" {
		t.Fatal("no tenant hashed to the victim node")
	}
	if _, err := queryUser(client, entry.URL(), user, "healthy forward"); err != nil {
		t.Fatalf("healthy forward: %v", err)
	}

	h.Kill(1, false)

	// Every request keeps succeeding via the local fallback; the first
	// two burn real (refused) connections and trip the breaker, the rest
	// short-circuit.
	for i := 0; i < 6; i++ {
		if _, err := queryUser(client, entry.URL(), user, fmt.Sprintf("post-kill query %d", i)); err != nil {
			t.Fatalf("post-kill query %d: %v", i, err)
		}
	}
	st := entry.ClusterNode().StatusSnapshot()
	if st.BreakerSkips == 0 {
		t.Fatalf("no breaker skips recorded: %+v", st)
	}
	if st.LocalFallbacks < 6 {
		t.Fatalf("local fallbacks = %d, want >= 6", st.LocalFallbacks)
	}
	found := false
	for _, pi := range st.Peers {
		if pi.Addr == victim.Addr {
			found = true
			if pi.Breaker != "open" {
				t.Fatalf("victim peer breaker = %q, want open", pi.Breaker)
			}
		}
	}
	if !found {
		t.Fatalf("victim %s missing from peer status", victim.Addr)
	}
}

// TestHedgeVetoSuppressesDuplicate: the hedge timer normally launches a
// duplicate attempt against a slow owner; with the saturation veto
// asserted it stays a single attempt and the suppression is counted.
func TestHedgeVetoSuppressesDuplicate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(100 * time.Millisecond)
		out, err := EncodeForwardResponse(&ForwardResponse{Node: "slow", Status: 200, Body: []byte("{}")})
		if err != nil {
			t.Error(err)
			return
		}
		w.Write(out)
	}))
	defer ts.Close()
	owner := strings.TrimPrefix(ts.URL, "http://")

	var saturated atomic.Bool
	n := &Node{
		cfg: Config{
			ForwardTimeout: 5 * time.Second,
			HedgeAfter:     10 * time.Millisecond,
			HedgeVeto:      func() bool { return saturated.Load() },
		},
		client: ts.Client(),
		clock:  sim.Wall,
	}

	if _, err := n.forwardHedged(context.Background(), owner, []byte("env"), true); err != nil {
		t.Fatalf("hedged forward: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2 (hedge launched)", got)
	}
	if n.hedges.Load() != 1 {
		t.Fatalf("hedges = %d, want 1", n.hedges.Load())
	}

	calls.Store(0)
	saturated.Store(true)
	if _, err := n.forwardHedged(context.Background(), owner, []byte("env"), true); err != nil {
		t.Fatalf("vetoed forward: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (hedge vetoed)", got)
	}
	if n.hedgesVetoed.Load() != 1 {
		t.Fatalf("hedgesVetoed = %d, want 1", n.hedgesVetoed.Load())
	}
}
