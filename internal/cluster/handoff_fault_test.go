package cluster

// Handoff persistence-failure policy: a drain whose persist fails is a
// failed handoff — the tenant stays resident and servable on this node,
// and ownership is only released once its state is durably on the
// shared store. Driven through the registry's faultfs seam with a
// direct handoffSweep call (no background loops, no real cluster).

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/store/faultfs"
)

func TestHandoffPersistFailureKeepsOwnership(t *testing.T) {
	fs := faultfs.New()
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards:     1,
		PersistDir: "tenants",
		FS:         fs,
		Logf:       t.Logf,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{Encoder: &testEncoder{dim: 32}, Tau: 0.9, TopK: 4})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Self:     "127.0.0.1:18201",
		Peers:    []string{"127.0.0.1:18202"},
		VNodes:   64,
		Registry: reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never Start()ed: the peer is never probed, the ring stays at its
	// two-member construction state, and sweeps run only by hand.

	// Find a tenant the ring places on the peer.
	victim := ""
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("user-%d", i)
		if n.Ring().Owner(id) != n.Self() {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no tenant mapped to the peer in 256 tries")
	}
	ten, err := reg.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ten.Client.Insert("question", "answer", cache.NoParent); err != nil {
		t.Fatal(err)
	}
	ten.Release()

	// The shared store fills: the drain's persist fails, so the handoff
	// must fail and the tenant must remain resident and servable here.
	fs.SetSpace(0)
	n.handoffSweep()
	if got := n.handoffErrors.Load(); got != 1 {
		t.Fatalf("handoffErrors = %d after failed persist, want 1", got)
	}
	if got := reg.Resident(); got != 1 {
		t.Fatalf("tenant not resident after failed handoff: Resident() = %d", got)
	}
	ten, err = reg.Get(victim)
	if err != nil {
		t.Fatalf("tenant unservable after failed handoff: %v", err)
	}
	if res := ten.Client.Lookup("question", nil); !res.Hit {
		t.Fatalf("tenant lost its state during failed handoff: %+v", res)
	}
	ten.Release()

	// Storage heals: the next sweep drains for real, and only then is
	// residency released — with the snapshot durably on disk.
	fs.AddSpace(1 << 26)
	n.handoffSweep()
	if got := reg.Resident(); got != 0 {
		t.Fatalf("tenant still resident after healed handoff: Resident() = %d", got)
	}
	if got := n.handoffs.Load(); got != 1 {
		t.Fatalf("handoffs = %d after healed sweep, want 1", got)
	}
	if got := reg.Stats().Drains; got != 1 {
		t.Fatalf("Drains = %d, want 1", got)
	}

	// The durable snapshot revives the tenant wherever it lands next.
	reg2, err := server.NewRegistry(server.RegistryConfig{
		Shards:     1,
		PersistDir: "tenants",
		FS:         fs,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{Encoder: &testEncoder{dim: 32}, Tau: 0.9, TopK: 4})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ten2, err := reg2.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	defer ten2.Release()
	if res := ten2.Client.Lookup("question", nil); !res.Hit {
		t.Fatalf("handed-off tenant did not revive from the shared store: %+v", res)
	}
}
