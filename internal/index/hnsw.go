package index

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/quantize"
	"repro/internal/vecmath"
)

// HNSW is a hierarchical navigable-small-world graph (Malkov & Yashunin):
// every vector becomes a node with links on levels 0..L, where L is drawn
// lazily at insert time from a geometric distribution. Searches greedily
// descend the sparse upper layers to a good entry point, then run a
// best-first beam of width efSearch over the dense bottom layer —
// logarithmic work where Flat pays a full scan.
//
// Remove tombstones the node's slot and repairs the graph around it: each
// former neighbor is reconnected through the removed node's own links, so
// connectivity (and therefore recall) survives churn, and tombstoned slots
// are recycled by later Adds.
//
// With Quantized set, traversal scores against int8 codes
// (quantize.DotF32 — a quarter of the memory traffic of float32 rows) and
// only the surviving top-ef candidates are rescored exactly in float32
// before ranking, so the returned scores stay full precision.
type HNSW struct {
	mu   sync.RWMutex
	dim  int
	cfg  HNSWConfig
	mult float64 // level multiplier 1/ln(M)
	rng  *rand.Rand

	nodes    []*hnswNode    // slot-addressed; tombstoned slots recycled
	codes    *quantize.Slab // per-slot int8 codes, Quantized mode only
	slots    map[int]int32  // external id → slot
	freeList []int32        // tombstoned slots awaiting reuse
	entry    int32          // slot of the top-level entry point, -1 when empty
	maxLevel int
	live     int

	// visitedPool recycles epoch-stamped visited sets across searches —
	// a map here costs more than the distance math at beam widths ≥ 64.
	visitedPool sync.Pool
}

// maxHNSWLevel caps the drawn node level: with M ≥ 2 the probability of
// level 48 is ~2^-48, so the cap never binds in practice — it bounds the
// per-node link allocation against pathological RNG draws.
const maxHNSWLevel = 48

// visitedSet marks slots visited in O(1) without per-search allocation:
// stamps[s] == epoch means visited this search; bumping epoch clears all.
type visitedSet struct {
	stamps []uint32
	epoch  uint32
}

func (h *HNSW) getVisited() *visitedSet {
	v, _ := h.visitedPool.Get().(*visitedSet)
	if v == nil {
		v = &visitedSet{}
	}
	if len(v.stamps) < len(h.nodes) {
		v.stamps = make([]uint32, len(h.nodes)+len(h.nodes)/2+8)
		v.epoch = 0
	}
	v.epoch++
	if v.epoch == 0 { // wrapped: stamps may alias the new epoch
		clear(v.stamps)
		v.epoch = 1
	}
	return v
}

func (v *visitedSet) visit(s int32) bool {
	if v.stamps[s] == v.epoch {
		return false
	}
	v.stamps[s] = v.epoch
	return true
}

type hnswNode struct {
	id    int
	vec   []float32 // full-precision vector (rescoring + repair)
	level int
	links [][]int32 // per level 0..level; slot indices
	dead  bool      // tombstoned: unlinked, invisible, slot reusable
}

// HNSWConfig tunes the graph. Zero values select the defaults.
type HNSWConfig struct {
	// M is the maximum number of links per node on levels above 0
	// (level 0 allows 2·M). Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Higher =
	// better graph quality, slower Add. Default 200.
	EfConstruction int
	// EfSearch is the beam width used while querying (raised to k when
	// k is larger). Higher = better recall, slower Search. Default 96.
	EfSearch int
	// Seed drives the level distribution.
	Seed int64
	// Quantized stores int8 codes next to each vector and scores graph
	// traversal against them; the final top-ef candidates are rescored
	// in float32.
	Quantized bool
}

// NewHNSW creates an HNSW index for dim-dimensional unit vectors.
func NewHNSW(dim int, cfg HNSWConfig) *HNSW {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.M < 2 {
		cfg.M = 2 // M=1 would make the level multiplier 1/ln(1) = +Inf
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 200
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 96
	}
	h := &HNSW{
		dim:   dim,
		cfg:   cfg,
		mult:  1 / math.Log(float64(cfg.M)),
		rng:   rand.New(rand.NewSource(cfg.Seed + 77)),
		slots: make(map[int]int32),
		entry: -1,
	}
	if cfg.Quantized {
		// Codes live in a chunked slot-addressed int8 arena next to the
		// node table; tombstoned slots recycle their code row in place.
		h.codes = quantize.NewSlab(dim)
	}
	return h
}

// Dim implements Index.
func (h *HNSW) Dim() int { return h.dim }

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// Quantized reports whether the int8 distance path is active.
func (h *HNSW) Quantized() bool { return h.cfg.Quantized }

// Tier implements TierNamer.
func (h *HNSW) Tier() string { return "hnsw" }

// ArenaStats implements ArenaReporter over the slot-addressed node
// store: tombstoned slots sit on the free list until reused.
func (h *HNSW) ArenaStats() ArenaStats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return ArenaStats{
		Rows:      h.live,
		Slots:     len(h.nodes),
		FreeSlots: len(h.freeList),
	}
}

// maxLinks is the link budget at a level: 2·M on the dense bottom layer,
// M above.
func (h *HNSW) maxLinks(level int) int {
	if level == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// score is the traversal similarity of the stored slot to a float32
// query: asymmetric int8·f32 against the code slab in quantized mode,
// exact otherwise.
func (h *HNSW) score(q []float32, s int32) float32 {
	if h.cfg.Quantized {
		return quantize.DotF32(h.codes.At(s), q)
	}
	return vecmath.Dot(q, h.nodes[s].vec)
}

// simNodes is the slot-to-slot similarity used by neighbor selection and
// repair.
func (h *HNSW) simNodes(a, b int32) float32 {
	if h.cfg.Quantized {
		return quantize.Dot(h.codes.At(a), h.codes.At(b))
	}
	return vecmath.Dot(h.nodes[a].vec, h.nodes[b].vec)
}

// Add implements Index. The node's level is assigned lazily here — drawn
// from the geometric distribution floor(-ln(U)·mL) — rather than
// pre-allocated, so the hierarchy grows only as tall as its data demands.
func (h *HNSW) Add(id int, vec []float32) error {
	if len(vec) != h.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), h.dim)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.slots[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	u := h.rng.Float64()
	for u == 0 { // -log(0) = +Inf; redraw the (measure-zero) boundary
		u = h.rng.Float64()
	}
	level := int(math.Floor(-math.Log(u) * h.mult))
	if level > maxHNSWLevel {
		level = maxHNSWLevel
	}
	n := &hnswNode{
		id:    id,
		vec:   vecmath.Clone(vec),
		level: level,
		links: make([][]int32, level+1),
	}
	slot := h.claimSlot(n)
	if h.cfg.Quantized {
		h.codes.SetAt(slot, vec) // overwrites any recycled slot's codes
	}
	h.slots[id] = slot
	h.live++

	if h.entry < 0 {
		h.entry, h.maxLevel = slot, level
		return nil
	}

	// Greedy descent through layers above the new node's level.
	ep := h.entry
	for l := h.maxLevel; l > level; l-- {
		ep = h.greedyStep(vec, ep, l)
	}
	// Beam search + heuristic linking on each shared layer.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(vec, ep, h.cfg.EfConstruction, l)
		// A stale one-way edge into a recycled slot can lead the beam to
		// the node being inserted; drop it so n never self-links.
		for i := 0; i < len(cands); {
			if cands[i].slot == slot {
				cands = append(cands[:i], cands[i+1:]...)
			} else {
				i++
			}
		}
		sel := h.selectNeighbors(cands, h.cfg.M)
		n.links[l] = sel
		for _, s := range sel {
			nb := h.nodes[s]
			nb.links[l] = append(nb.links[l], slot)
			if max := h.maxLinks(l); len(nb.links[l]) > max {
				h.shrinkLinks(s, l, max)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].slot
		}
	}
	if level > h.maxLevel {
		h.entry, h.maxLevel = slot, level
	}
	return nil
}

// claimSlot stores n in a recycled tombstone slot when one is free,
// appending otherwise.
func (h *HNSW) claimSlot(n *hnswNode) int32 {
	if k := len(h.freeList); k > 0 {
		slot := h.freeList[k-1]
		h.freeList = h.freeList[:k-1]
		h.nodes[slot] = n
		return slot
	}
	h.nodes = append(h.nodes, n)
	return int32(len(h.nodes) - 1)
}

// greedyStep hill-climbs layer l from ep to the locally best node. Moves
// are restricted to nodes that actually have layer l: links are not fully
// symmetric (shrinkLinks and slot recycling can leave one-way edges), so a
// neighbor reached through a stale edge may be a recycled node with a
// lower level.
func (h *HNSW) greedyStep(q []float32, ep int32, l int) int32 {
	cur, curScore := ep, h.score(q, ep)
	for improved := true; improved; {
		improved = false
		for _, s := range h.nodes[cur].links[l] {
			if len(h.nodes[s].links) <= l {
				continue
			}
			if sc := h.score(q, s); sc > curScore {
				cur, curScore, improved = s, sc, true
			}
		}
	}
	return cur
}

// scoredSlot pairs a slot with its traversal score.
type scoredSlot struct {
	slot  int32
	score float32
}

// searchLayer runs the best-first beam of width ef over layer l, returning
// up to ef candidates sorted best first. Tombstoned nodes stay traversable
// (they keep their links until the slot is recycled, so routes through
// them survive) but are never admitted to the result set; nodes without
// layer l — reachable through stale one-way edges after slot recycling —
// are skipped entirely.
func (h *HNSW) searchLayer(q []float32, ep int32, ef, l int) []scoredSlot {
	visited := h.getVisited()
	defer h.visitedPool.Put(visited)
	visited.visit(ep)
	epScore := h.score(q, ep)
	// cand: max-heap (best first) of frontier; result: min-heap (worst
	// first) bounded at ef.
	cand := []scoredSlot{{ep, epScore}}
	var result []scoredSlot
	if n := h.nodes[ep]; !n.dead && len(n.links) > l {
		result = append(result, scoredSlot{ep, epScore})
	}
	for len(cand) > 0 {
		c := cand[0]
		last := len(cand) - 1
		cand[0] = cand[last]
		cand = cand[:last]
		siftDownSlots(cand, 0, false)
		if len(result) >= ef && c.score < result[0].score {
			break
		}
		for _, s := range h.nodes[c.slot].links[l] {
			if !visited.visit(s) {
				continue
			}
			n := h.nodes[s]
			if len(n.links) <= l {
				continue // recycled into a lower level: not on this layer
			}
			sc := h.score(q, s)
			if len(result) < ef || sc > result[0].score {
				cand = append(cand, scoredSlot{s, sc})
				siftUpSlots(cand, len(cand)-1, false)
				if n.dead {
					continue // routable, but never a result or link target
				}
				result = append(result, scoredSlot{s, sc})
				siftUpSlots(result, len(result)-1, true)
				if len(result) > ef {
					last := len(result) - 1
					result[0] = result[last]
					result = result[:last]
					siftDownSlots(result, 0, true)
				}
			}
		}
	}
	// Pop the min-heap into best-first order.
	for end := len(result) - 1; end > 0; end-- {
		result[0], result[end] = result[end], result[0]
		siftDownSlots(result[:end], 0, true)
	}
	return result
}

// siftUpSlots/siftDownSlots maintain a binary heap over scoredSlots.
// min=true keeps the worst score at the root (bounded result set);
// min=false keeps the best at the root (frontier).
func siftUpSlots(hp []scoredSlot, i int, min bool) {
	for i > 0 {
		p := (i - 1) / 2
		if slotBefore(hp[i], hp[p], min) {
			hp[i], hp[p] = hp[p], hp[i]
			i = p
			continue
		}
		return
	}
}

func siftDownSlots(hp []scoredSlot, i int, min bool) {
	for {
		left := 2*i + 1
		if left >= len(hp) {
			return
		}
		best := left
		if right := left + 1; right < len(hp) && slotBefore(hp[right], hp[left], min) {
			best = right
		}
		if !slotBefore(hp[best], hp[i], min) {
			return
		}
		hp[i], hp[best] = hp[best], hp[i]
		i = best
	}
}

func slotBefore(a, b scoredSlot, min bool) bool {
	if min {
		return a.score < b.score
	}
	return a.score > b.score
}

// selectNeighbors applies the HNSW diversity heuristic: walk candidates
// best-first, keeping one only if it is closer to the new node than to any
// already-kept neighbor. This spreads links across clusters instead of
// piling them onto near-duplicates, which is what keeps recall high on
// clustered data.
func (h *HNSW) selectNeighbors(cands []scoredSlot, m int) []int32 {
	sel := make([]int32, 0, m)
	for _, c := range cands {
		if len(sel) >= m {
			break
		}
		keep := true
		for _, s := range sel {
			if h.simNodes(c.slot, s) > c.score {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, c.slot)
		}
	}
	// Backfill with skipped candidates if diversity left spare budget.
	if len(sel) < m {
		for _, c := range cands {
			if len(sel) >= m {
				break
			}
			dup := false
			for _, s := range sel {
				if s == c.slot {
					dup = true
					break
				}
			}
			if !dup {
				sel = append(sel, c.slot)
			}
		}
	}
	return sel
}

// shrinkLinks re-selects the slot's layer-l links down to max using the
// same diversity heuristic.
func (h *HNSW) shrinkLinks(nbSlot int32, l, max int) {
	nb := h.nodes[nbSlot]
	cands := make([]scoredSlot, 0, len(nb.links[l]))
	for _, s := range nb.links[l] {
		cands = append(cands, scoredSlot{s, h.simNodes(nbSlot, s)})
	}
	sortScoredSlots(cands)
	nb.links[l] = h.selectNeighbors(cands, max)
}

func sortScoredSlots(ss []scoredSlot) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].score > ss[j-1].score; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Remove implements Index: the node is tombstoned (slot recycled by later
// Adds) and its former neighbors are repaired by connecting them through
// the removed node's own links, so the graph does not fragment under
// churn.
func (h *HNSW) Remove(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	slot, ok := h.slots[id]
	if !ok {
		return
	}
	n := h.nodes[slot]
	n.dead = true
	delete(h.slots, id)
	h.live--

	for l := 0; l <= n.level; l++ {
		for _, u := range n.links[l] {
			un := h.nodes[u]
			if un.dead || len(un.links) <= l {
				continue
			}
			h.repairNode(un, l, slot, n.links[l])
		}
	}
	// The tombstone keeps its vector and links: one-way edges from nodes
	// the repair pass could not see may still route through it, and a
	// recycled slot must never be reachable at a level it no longer has.
	// The memory is reclaimed when claimSlot reuses the slot.
	h.freeList = append(h.freeList, slot)

	if h.entry == slot {
		h.entry, h.maxLevel = -1, 0
		for s, cand := range h.nodes {
			if !cand.dead && (h.entry < 0 || cand.level > h.maxLevel) {
				h.entry, h.maxLevel = int32(s), cand.level
			}
		}
	}
}

// repairNode drops the tombstoned slot from un's layer-l links and
// re-selects from the union of its remaining links and the removed node's
// links (connect-through).
func (h *HNSW) repairNode(un *hnswNode, l int, gone int32, through []int32) {
	unSlot := h.slots[un.id]
	seen := map[int32]bool{gone: true, unSlot: true}
	cands := make([]scoredSlot, 0, len(un.links[l])+len(through))
	for _, s := range un.links[l] {
		if !seen[s] && !h.nodes[s].dead && len(h.nodes[s].links) > l {
			seen[s] = true
			cands = append(cands, scoredSlot{s, h.simNodes(unSlot, s)})
		}
	}
	for _, s := range through {
		if !seen[s] && !h.nodes[s].dead && len(h.nodes[s].links) > l {
			seen[s] = true
			cands = append(cands, scoredSlot{s, h.simNodes(unSlot, s)})
		}
	}
	sortScoredSlots(cands)
	un.links[l] = h.selectNeighbors(cands, h.maxLinks(l))
}

// forEach implements iterable.
func (h *HNSW) forEach(fn func(id int, vec []float32)) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, n := range h.nodes {
		if !n.dead {
			fn(n.id, n.vec)
		}
	}
}

// idList implements snapshotter.
func (h *HNSW) idList() []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int, 0, len(h.slots))
	for id := range h.slots {
		out = append(out, id)
	}
	return out
}

// vecClone implements snapshotter.
func (h *HNSW) vecClone(id int) []float32 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	slot, ok := h.slots[id]
	if !ok {
		return nil
	}
	return vecmath.Clone(h.nodes[slot].vec)
}

// Search implements Index: greedy descent to layer 1, then an
// ef-wide beam over layer 0. In quantized mode the surviving candidates
// are rescored exactly in float32, so returned scores (and the tau cut)
// are full precision.
func (h *HNSW) Search(vec []float32, k int, tau float32) []Hit {
	if len(vec) != h.dim {
		panic(fmt.Sprintf("index: Search dim %d, want %d", len(vec), h.dim))
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.live == 0 || k <= 0 || h.entry < 0 {
		return nil
	}
	return h.searchLocked(vec, k, tau, nil)
}

// searchLocked is the traversal body shared by Search and
// MultiSearchAppend, appending its hits to dst. Callers hold the read
// lock and have handled the empty-index cases.
func (h *HNSW) searchLocked(vec []float32, k int, tau float32, dst []Hit) []Hit {
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	ep := h.entry
	for l := h.maxLevel; l > 0; l-- {
		ep = h.greedyStep(vec, ep, l)
	}
	cands := h.searchLayer(vec, ep, ef, 0)
	base := len(dst)
	for _, c := range cands {
		n := h.nodes[c.slot]
		s := c.score
		if h.cfg.Quantized {
			s = vecmath.Dot(vec, n.vec) // exact rescore
		}
		if s >= tau {
			dst = append(dst, Hit{ID: n.id, Score: s})
		}
	}
	tail := topKHits(dst[base:], k)
	return dst[:base+len(tail)]
}

// MultiSearchAppend implements MultiSearcher: each probe runs the full
// graph traversal, but the whole batch shares one read-lock acquisition
// and the pooled visited sets stay hot across probes (in quantized mode
// the int8 code slab likewise stays cache-resident for the batch). A
// graph traversal visits probe-dependent nodes, so unlike Flat/IVF there
// is no shared full-matrix pass — batching amortises the fixed costs and
// keeps results exactly per-probe identical to Search.
func (h *HNSW) MultiSearchAppend(probes *vecmath.Matrix, k int, tau float32, dst [][]Hit) {
	if probes.Cols != h.dim {
		panic(fmt.Sprintf("index: MultiSearch dim %d, want %d", probes.Cols, h.dim))
	}
	m := probes.Rows
	if m == 0 {
		return
	}
	if len(dst) < m {
		panic(fmt.Sprintf("index: MultiSearch dst len %d, need %d", len(dst), m))
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.live == 0 || k <= 0 || h.entry < 0 {
		return
	}
	for p := 0; p < m; p++ {
		dst[p] = h.searchLocked(probes.Row(p), k, tau, dst[p])
	}
}
