// Package index provides the vector-similarity indexes behind the semantic
// cache's FindSimilarQueriesinCache step (Algorithm 1).
//
// Two implementations share one interface:
//
//   - Flat: exact brute-force cosine scan, parallelised across the worker
//     pool. Right for user-side caches (thousands of entries).
//   - IVF: an inverted-file index — embeddings are k-means-clustered into
//     lists; a query probes only the nearest lists. Approximate but
//     sub-linear, for the million-entry regime §III-B cites (SBERT's
//     semantic search "can handle up to 1 million entries").
//
// All vectors must be unit-norm (dot product = cosine), which is the
// contract internal/embed guarantees.
package index

import (
	"fmt"

	"repro/internal/vecmath"
)

// Hit is one search result: the stored ID and its cosine similarity.
type Hit struct {
	ID    int
	Score float32
}

// Index is a maintained set of unit vectors searchable by cosine
// similarity. Implementations are safe for concurrent Search; Add/Remove
// must be externally serialised with respect to each other (the cache
// holds its own write lock).
type Index interface {
	// Add stores vec under id. The id must be unique; vec must have the
	// index's dimension.
	Add(id int, vec []float32) error
	// Remove deletes id; removing an absent id is a no-op.
	Remove(id int)
	// Search returns up to k hits with score >= tau, best first.
	Search(vec []float32, k int, tau float32) []Hit
	// Len reports the number of stored vectors.
	Len() int
	// Dim reports the vector dimensionality.
	Dim() int
}

// sortHits orders by descending score, ties by ascending ID.
func sortHits(hs []Hit) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0; j-- {
			if hs[j].Score > hs[j-1].Score ||
				(hs[j].Score == hs[j-1].Score && hs[j].ID < hs[j-1].ID) {
				hs[j], hs[j-1] = hs[j-1], hs[j]
			} else {
				break
			}
		}
	}
}

// Flat is the exact index: a dense scan over all stored vectors.
type Flat struct {
	dim  int
	ids  []int
	vecs []float32 // row-major, len(ids) × dim
	pos  map[int]int
}

// NewFlat creates an exact index for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	return &Flat{dim: dim, pos: make(map[int]int)}
}

// Dim implements Index.
func (f *Flat) Dim() int { return f.dim }

// Len implements Index.
func (f *Flat) Len() int { return len(f.ids) }

// Add implements Index.
func (f *Flat) Add(id int, vec []float32) error {
	if len(vec) != f.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), f.dim)
	}
	if _, dup := f.pos[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, vec...)
	return nil
}

// Remove implements Index (swap-delete).
func (f *Flat) Remove(id int) {
	i, ok := f.pos[id]
	if !ok {
		return
	}
	last := len(f.ids) - 1
	f.ids[i] = f.ids[last]
	copy(f.vecs[i*f.dim:(i+1)*f.dim], f.vecs[last*f.dim:(last+1)*f.dim])
	f.pos[f.ids[i]] = i
	f.ids = f.ids[:last]
	f.vecs = f.vecs[:last*f.dim]
	delete(f.pos, id)
}

// Search implements Index with a parallel exact scan.
func (f *Flat) Search(vec []float32, k int, tau float32) []Hit {
	if len(vec) != f.dim {
		panic(fmt.Sprintf("index: Search dim %d, want %d", len(vec), f.dim))
	}
	n := len(f.ids)
	if n == 0 || k <= 0 {
		return nil
	}
	workers := vecmath.Workers()
	locals := make([][]Hit, workers)
	chunk := (n + workers - 1) / workers
	vecmath.ParallelFor(workers, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			var found []Hit
			for i := lo; i < hi; i++ {
				if s := vecmath.Dot(vec, f.vecs[i*f.dim:(i+1)*f.dim]); s >= tau {
					found = append(found, Hit{ID: f.ids[i], Score: s})
				}
			}
			locals[w] = found
		}
	})
	var all []Hit
	for _, l := range locals {
		all = append(all, l...)
	}
	sortHits(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
