// Package index provides the vector-similarity indexes behind the semantic
// cache's FindSimilarQueriesinCache step (Algorithm 1).
//
// Four implementations share one interface:
//
//   - Flat: exact brute-force cosine scan, parallelised across the worker
//     pool. Right for user-side caches (thousands of entries).
//   - IVF: an inverted-file index — embeddings are k-means-clustered into
//     lists; a query probes only the nearest lists. Approximate but
//     sub-linear, for the million-entry regime §III-B cites (SBERT's
//     semantic search "can handle up to 1 million entries").
//   - HNSW: a hierarchical navigable-small-world graph with logarithmic
//     search, tunable via M/efConstruction/efSearch, and an optional int8
//     storage mode (internal/quantize) that scores graph traversal against
//     quantised codes and rescores the top candidates in float32.
//   - Adaptive: a tiering wrapper that starts Flat and promotes to IVF and
//     then HNSW as the tenant's cache grows past configurable thresholds,
//     migrating in the background so searches keep being served.
//
// All vectors must be unit-norm (dot product = cosine), which is the
// contract internal/embed guarantees.
package index

import "repro/internal/vecmath"

// Hit is one search result: the stored ID and its cosine similarity.
type Hit struct {
	ID    int
	Score float32
}

// Index is a maintained set of unit vectors searchable by cosine
// similarity. Implementations guard their state internally: Search may run
// concurrently with other Searches and with Add/Remove. Add/Remove are
// serialised by the implementation's own write lock, so external callers
// (the cache holds its own write lock around mutations) compose without
// extra coordination.
type Index interface {
	// Add stores vec under id. The id must be unique; vec must have the
	// index's dimension. The vector is copied — callers may reuse vec.
	Add(id int, vec []float32) error
	// Remove deletes id; removing an absent id is a no-op.
	Remove(id int)
	// Search returns up to k hits with score >= tau, ordered by
	// descending score with ties broken by ascending ID.
	Search(vec []float32, k int, tau float32) []Hit
	// Len reports the number of stored vectors.
	Len() int
	// Dim reports the vector dimensionality.
	Dim() int
}

// MultiSearcher is the optional batched-search surface: one call scores
// a micro-batch of probes (probes.Rows × probes.Cols, row-major) and
// appends each probe's hits to dst[p] (len(dst) must be at least
// probes.Rows). The contract is strict per-probe parity: dst[p] receives
// exactly the hits — same IDs, same scores, same order — that
// Search(probes.Row(p), k, tau) would return. The payoff is shared
// work: one lock acquisition, one pass through shared structures (the
// Flat leader slab, the IVF centroid matrix), pooled scratch amortised
// across the batch. All four implementations satisfy it; the per-tenant
// search batcher in internal/server is the serving caller.
type MultiSearcher interface {
	MultiSearchAppend(probes *vecmath.Matrix, k int, tau float32, dst [][]Hit)
}

// TierNamer is the optional serving-tier identity: implementations
// report which tier answers their searches ("flat", "ivf", "hnsw").
// Adaptive reports whichever tier currently serves. The observability
// layer uses this to label per-tier search latency.
type TierNamer interface {
	Tier() string
}

// ArenaStats reports an index's backing-storage occupancy: live rows,
// the slot high-water mark, and recycled slots awaiting reuse. For
// dense append/swap-delete storage (IVF lists) Slots == Rows and
// FreeSlots is 0.
type ArenaStats struct {
	Rows      int
	Slots     int
	FreeSlots int
}

// ArenaReporter is the optional arena-occupancy contract implemented by
// the slab- or slot-backed indexes.
type ArenaReporter interface {
	ArenaStats() ArenaStats
}

// iterable is the internal enumeration contract over an index's contents.
// fn must not retain vec across calls; implementations may pass views
// into internal storage. forEach holds the index's read lock for the full
// pass — fine for tests and small indexes, but Adaptive migration uses
// the snapshotter protocol instead so one long pass cannot park a writer
// (and, via RWMutex writer preference, every later reader) behind it.
type iterable interface {
	forEach(fn func(id int, vec []float32))
}

// snapshotter is the incremental-snapshot contract Adaptive migration
// uses: idList returns the stored IDs under one short read lock, and
// vecClone copies a single vector under its own short read lock (nil if
// the ID is gone). Entries added or removed between calls are reconciled
// by the migration journal.
type snapshotter interface {
	idList() []int
	vecClone(id int) []float32
}

// hitBetter reports whether a ranks before b: descending score, ties by
// ascending ID. Every search path uses this single comparator so tie
// ordering is identical across all four index implementations.
func hitBetter(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// sortHits orders by descending score, ties by ascending ID (insertion
// sort — used for small, already-truncated slices).
func sortHits(hs []Hit) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0; j-- {
			if hitBetter(hs[j], hs[j-1]) {
				hs[j], hs[j-1] = hs[j-1], hs[j]
			} else {
				break
			}
		}
	}
}

// topKHits selects the best k of hs in hitBetter order, destructively
// reordering hs. For small inputs it falls back to the insertion sort;
// beyond that it runs bounded heap selection — a size-k min-heap whose
// root is the worst retained hit — for O(n log k) instead of the O(n·k)
// the insertion sort degrades to once candidate lists are long.
func topKHits(hs []Hit, k int) []Hit {
	if k <= 0 {
		return nil
	}
	if len(hs) <= k || len(hs) <= 32 {
		sortHits(hs)
		if len(hs) > k {
			hs = hs[:k]
		}
		return hs
	}
	// Build the min-heap (worst at the root) over the first k hits.
	heap := hs[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDownHits(heap, i)
	}
	for _, h := range hs[k:] {
		if hitBetter(h, heap[0]) {
			heap[0] = h
			siftDownHits(heap, 0)
		}
	}
	// Heap-sort the survivors into hitBetter order: repeatedly swap the
	// root (worst remaining) to the back.
	for end := k - 1; end > 0; end-- {
		heap[0], heap[end] = heap[end], heap[0]
		siftDownHits(heap[:end], 0)
	}
	return heap
}

// siftDownHits restores the min-heap property (worst hit at the root)
// below position i.
func siftDownHits(heap []Hit, i int) {
	for {
		left := 2*i + 1
		if left >= len(heap) {
			return
		}
		worst := left
		if right := left + 1; right < len(heap) && hitBetter(heap[left], heap[right]) {
			worst = right
		}
		if hitBetter(heap[worst], heap[i]) {
			return
		}
		heap[i], heap[worst] = heap[worst], heap[i]
		i = worst
	}
}

// Flat — the slab-backed exact index with bound-based pruning — lives
// in flat.go.
