package index

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/vecmath"
)

// Flat is the exact index, rebuilt around slab storage and bound-based
// pruning. Vectors live in leader-partitioned groups: each group keeps
// its rows in one contiguous row-major arena (scanned with the blocked
// vecmath kernels), its pivot ("leader") vector in a shared
// vecmath.Slab with free-slot recycling, and per-row distances to the
// pivot. A search scores every leader with one blocked pass and then
// applies the Cauchy–Schwarz bound
//
//	dot(q, row) ≤ dot(q, leader) + ‖q‖·‖row − leader‖
//
// first per group (against the group's max distance), then per row, so
// rows that provably cannot reach tau are skipped without touching
// their data. The bound is mathematically rigorous and applied with a
// safety margin wider than any float32 rounding, so results — IDs and
// scores — are identical to a brute-force Dot scan: Flat stays the
// exact implementation the conformance oracle demands, it just refuses
// to do work the threshold already excludes. With tau at serving levels
// (≈0.8) on clustered embeddings this skips almost every row; with a
// permissive tau it degrades to a full blocked-kernel scan.
type Flat struct {
	mu  sync.RWMutex
	dim int
	n   int

	leaders *vecmath.Slab // pivot per group, slot-addressed, recycled
	groups  []*flatGroup
	pos     map[int]flatRef

	scratch sync.Pool // *flatScratch
}

// flatGroup is one leader-partitioned row set: a shared rowArena plus
// the slot of its pivot in the leaders slab.
type flatGroup struct {
	leader int32 // slot in the leaders slab
	rowArena
}

// flatRef locates a row: its group and position within it.
type flatRef struct {
	g   *flatGroup
	pos int32
}

// flatScratch is the pooled per-search working set: leader scores, one
// group-scan score buffer, and the candidate hit list. Pooling it makes
// a warmed Search allocate only its result slice. multi and chunk are
// the batched-search extensions (the m×slots score matrix and the
// per-chunk kernel output), sized lazily so single-probe searches never
// pay for them.
type flatScratch struct {
	scores []float32
	group  []float32
	hits   []Hit
	multi  []float32
	chunk  []float32
}

const (
	// flatJoinTau is the minimum cosine for a new row to join an
	// existing group instead of founding its own. sqrt(2−2·0.7) ≈ 0.77
	// bounds the pivot distance of joined rows, which is what makes the
	// group bound bite at serving thresholds.
	flatJoinTau = 0.70
	// boundMargin widens every pruning comparison so float32 rounding in
	// the bound can never exclude a row a Dot-based oracle would admit.
	// Accumulated rounding across a dot product and a square root is
	// below 1e-5 for unit-scale data; 1e-3 leaves three orders of slack.
	boundMargin = 1e-3
	// deltaSlack is added to each computed pivot distance for the same
	// reason, on the insert side.
	deltaSlack = 1e-4
)

// flatMaxGroups caps the number of groups at 16 + 2·√n. Beyond the cap
// new rows join their nearest leader regardless of flatJoinTau (the
// bound weakens but stays rigorous), so uncorrelated data cannot drive
// Add cost past O(√n) leader comparisons.
func flatMaxGroups(n int) int {
	return 16 + 2*int(math.Sqrt(float64(n)))
}

// NewFlat creates an exact index for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	return &Flat{
		dim:     dim,
		leaders: vecmath.NewSlab(dim),
		pos:     make(map[int]flatRef),
	}
}

// Dim implements Index.
func (f *Flat) Dim() int { return f.dim }

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.n
}

// Tier implements TierNamer.
func (f *Flat) Tier() string { return "flat" }

// ArenaStats implements ArenaReporter against the leaders slab — the
// free-list-recycled storage whose occupancy bounds the group count (the
// per-group row arenas are dense by construction).
func (f *Flat) ArenaStats() ArenaStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return ArenaStats{
		Rows:      f.n,
		Slots:     f.leaders.Slots(),
		FreeSlots: f.leaders.Slots() - f.leaders.Len(),
	}
}

func (f *Flat) getScratch() *flatScratch {
	sc, _ := f.scratch.Get().(*flatScratch)
	if sc == nil {
		sc = &flatScratch{}
	}
	if need := f.leaders.Slots(); cap(sc.scores) < need {
		sc.scores = make([]float32, need+need/2+8)
	}
	return sc
}

// Add implements Index.
func (f *Flat) Add(id int, vec []float32) error {
	if len(vec) != f.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.pos[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}

	g, leaderDot := f.placeGroup(vec)
	if g == nil {
		slot := f.leaders.Put(vec)
		g = &flatGroup{leader: slot}
		f.groups = append(f.groups, g)
		leaderDot = vecmath.Dot(vec, f.leaders.Row(slot))
	}
	norm := vecmath.Norm(vec)
	delta := pivotDistance(norm, leaderDot, f.leaders.Norm(g.leader))
	f.pos[id] = flatRef{g: g, pos: int32(len(g.ids))}
	g.add(id, vec, norm, delta)
	f.n++
	return nil
}

// placeGroup picks the best existing group for vec (nil when vec should
// found a new one), returning the winning leader's dot with vec. Callers
// hold the write lock.
func (f *Flat) placeGroup(vec []float32) (*flatGroup, float32) {
	if len(f.groups) == 0 {
		return nil, 0
	}
	sc := f.getScratch()
	defer f.scratch.Put(sc)
	scores := sc.scores[:f.leaders.Slots()]
	f.leaders.ScanDot(vec, scores)
	best, bestDot := -1, float32(math.Inf(-1))
	for i, g := range f.groups {
		if d := scores[g.leader]; d > bestDot {
			best, bestDot = i, d
		}
	}
	if bestDot < flatJoinTau && len(f.groups) < flatMaxGroups(f.n) {
		return nil, 0
	}
	return f.groups[best], bestDot
}

// pivotDistance computes ‖row − leader‖ from precomputed norms and the
// row·leader dot, in float64 with an upward slack so the stored value
// can only over-estimate the true distance (pruning stays rigorous).
func pivotDistance(rowNorm, dot, leaderNorm float32) float32 {
	d2 := float64(rowNorm)*float64(rowNorm) - 2*float64(dot) + float64(leaderNorm)*float64(leaderNorm)
	if d2 < 0 {
		d2 = 0
	}
	return float32(math.Sqrt(d2)) + deltaSlack
}

// Remove implements Index (swap-delete within the row's group; an
// emptied group returns its leader slot to the slab's free list).
func (f *Flat) Remove(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref, ok := f.pos[id]
	if !ok {
		return
	}
	g, i := ref.g, int(ref.pos)
	if movedID, moved := g.swapDelete(i, f.dim); moved {
		f.pos[movedID] = flatRef{g: g, pos: int32(i)}
	}
	delete(f.pos, id)
	f.n--
	if len(g.ids) == 0 {
		f.dropGroup(g)
	}
}

func (f *Flat) dropGroup(g *flatGroup) {
	f.leaders.Free(g.leader)
	for i, og := range f.groups {
		if og == g {
			f.groups[i] = f.groups[len(f.groups)-1]
			f.groups = f.groups[:len(f.groups)-1]
			return
		}
	}
}

// forEach implements iterable.
func (f *Flat) forEach(fn func(id int, vec []float32)) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, g := range f.groups {
		for i, id := range g.ids {
			fn(id, g.vecs[i*f.dim:(i+1)*f.dim])
		}
	}
}

// idList implements snapshotter.
func (f *Flat) idList() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]int, 0, f.n)
	for _, g := range f.groups {
		out = append(out, g.ids...)
	}
	return out
}

// vecClone implements snapshotter.
func (f *Flat) vecClone(id int) []float32 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ref, ok := f.pos[id]
	if !ok {
		return nil
	}
	i := int(ref.pos)
	return vecmath.Clone(ref.g.vecs[i*f.dim : (i+1)*f.dim])
}

// Search implements Index with the bound-pruned exact scan.
func (f *Flat) Search(vec []float32, k int, tau float32) []Hit {
	hits := f.SearchAppend(vec, k, tau, nil)
	if len(hits) == 0 {
		return nil
	}
	return hits
}

// SearchAppend is Search appending into dst — the allocation-free form
// the serving hot path uses: with a dst of sufficient capacity a warmed
// call performs zero heap allocations.
func (f *Flat) SearchAppend(vec []float32, k int, tau float32, dst []Hit) []Hit {
	if len(vec) != f.dim {
		panic(fmt.Sprintf("index: Search dim %d, want %d", len(vec), f.dim))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.n == 0 || k <= 0 {
		return dst
	}
	sc := f.getScratch()
	defer f.scratch.Put(sc)
	scores := sc.scores[:f.leaders.Slots()]
	f.leaders.ScanDot(vec, scores)
	pnorm := vecmath.Norm(vec)
	thr := tau - boundMargin

	hits := sc.hits[:0]
	if f.n >= 8192 && vecmath.Workers() > 1 && len(f.groups) > 1 {
		hits = f.scanGroupsParallel(vec, scores, pnorm, tau, thr, hits, vecmath.Workers())
	} else {
		for _, g := range f.groups {
			hits = f.scanGroup(g, vec, scores[g.leader], pnorm, tau, thr, sc, hits)
		}
	}
	top := topKHits(hits, k)
	dst = append(dst, top...)
	sc.hits = hits[:0]
	return dst
}

// scanGroup appends g's hits ≥ tau to hits through the shared
// rowArena.scanBounded bound-pruned scan.
func (f *Flat) scanGroup(g *flatGroup, vec []float32, leaderDot, pnorm, tau, thr float32, sc *flatScratch, hits []Hit) []Hit {
	return g.scanBounded(vec, f.dim, leaderDot, pnorm, tau, thr, &sc.group, hits)
}

// scanGroupsParallel fans the group scans across the worker pool for
// large indexes, with per-worker pooled scratch, and merges the local
// hit lists into hits. workers is a parameter (Search passes
// vecmath.Workers()) so the partition arithmetic is testable on any
// machine.
func (f *Flat) scanGroupsParallel(vec []float32, scores []float32, pnorm, tau, thr float32, hits []Hit, workers int) []Hit {
	if workers > len(f.groups) {
		workers = len(f.groups)
	}
	locals := make([]*flatScratch, workers)
	chunk := (len(f.groups) + workers - 1) / workers
	vecmath.ParallelFor(workers, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			// ceil-sized chunks can push the final workers past the end
			// when workers does not divide the group count.
			if lo >= len(f.groups) {
				continue
			}
			if hi > len(f.groups) {
				hi = len(f.groups)
			}
			wsc := f.getScratch()
			local := wsc.hits[:0]
			for _, g := range f.groups[lo:hi] {
				local = f.scanGroup(g, vec, scores[g.leader], pnorm, tau, thr, wsc, local)
			}
			wsc.hits = local
			locals[w] = wsc
		}
	})
	for _, wsc := range locals {
		if wsc == nil {
			continue // worker whose range was past the end
		}
		hits = append(hits, wsc.hits...)
		wsc.hits = wsc.hits[:0]
		f.scratch.Put(wsc)
	}
	return hits
}

// MultiSearch scores a micro-batch of probes in one call: the leader
// slab is scanned once for the whole batch with the multi-probe kernel,
// and each probe then resolves its surviving groups from the shared
// score matrix. Results are per probe, identical to calling Search with
// each probe individually. The serving-path form is MultiSearchAppend;
// this wrapper allocates the result slices.
func (f *Flat) MultiSearch(probes *vecmath.Matrix, k int, tau float32) [][]Hit {
	out := make([][]Hit, probes.Rows)
	f.MultiSearchAppend(probes, k, tau, out)
	return out
}

// MultiSearchAppend implements MultiSearcher: one leader-slab pass for
// the whole batch, then the per-probe bound-pruned group scans, with
// each probe's hits appended to dst[p]. The score matrix and kernel
// chunk buffer come from the pooled scratch, so a warmed call allocates
// nothing beyond what the dst slices need to grow — this is the surface
// the per-tenant search batcher drives.
func (f *Flat) MultiSearchAppend(probes *vecmath.Matrix, k int, tau float32, dst [][]Hit) {
	if probes.Cols != f.dim {
		panic(fmt.Sprintf("index: MultiSearch dim %d, want %d", probes.Cols, f.dim))
	}
	m := probes.Rows
	if m == 0 {
		return
	}
	if len(dst) < m {
		panic(fmt.Sprintf("index: MultiSearch dst len %d, need %d", len(dst), m))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.n == 0 || k <= 0 {
		return
	}
	slots := f.leaders.Slots()
	sc := f.getScratch()
	defer f.scratch.Put(sc)
	if cap(sc.multi) < m*slots {
		sc.multi = make([]float32, m*slots+(m*slots)/2+8)
	}
	if cap(sc.chunk) < m*vecmath.SlabChunkRows {
		sc.chunk = make([]float32, m*vecmath.SlabChunkRows)
	}
	all := sc.multi[:m*slots]
	f.leaderScanMulti(probes, all, sc.chunk[:m*vecmath.SlabChunkRows])
	thr := tau - boundMargin
	for p := 0; p < m; p++ {
		vec := probes.Row(p)
		scores := all[p*slots : (p+1)*slots]
		pnorm := vecmath.Norm(vec)
		hits := sc.hits[:0]
		for _, g := range f.groups {
			hits = f.scanGroup(g, vec, scores[g.leader], pnorm, tau, thr, sc, hits)
		}
		top := topKHits(hits, k)
		dst[p] = append(dst[p], top...)
		sc.hits = hits[:0]
	}
}

// leaderScanMulti fills all (m probes × Slots scores, probe-major) using
// the blocked multi-probe kernel chunk by chunk, staging each chunk's
// kernel output in chunkOut (m×SlabChunkRows, caller-provided).
func (f *Flat) leaderScanMulti(probes *vecmath.Matrix, all, chunkOut []float32) {
	m := probes.Rows
	slots := f.leaders.Slots()
	for base := 0; base < slots; base += vecmath.SlabChunkRows {
		rows := slots - base
		if rows > vecmath.SlabChunkRows {
			rows = vecmath.SlabChunkRows
		}
		vecmath.ScanDotMulti(probes.Data, f.leaders.Chunk(base / vecmath.SlabChunkRows)[:rows*f.dim], chunkOut[:m*rows], m)
		for p := 0; p < m; p++ {
			copy(all[p*slots+base:p*slots+base+rows], chunkOut[p*rows:(p+1)*rows])
		}
	}
}
