package index

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// The cross-index conformance suite: one property harness run against
// every Index implementation. Randomized Add/Remove/Search interleavings
// are checked against a brute-force oracle — exact result parity for the
// exact implementations (Flat, Adaptive below its first threshold),
// invariants plus an aggregate recall floor for the approximate ones
// (IVF, HNSW, promoted Adaptive). A separate test drives concurrent
// Search during Add/Remove for the race detector.

// implSpec describes one implementation under conformance test.
type implSpec struct {
	name      string
	build     func(dim int) Index
	exact     bool    // must match the oracle exactly
	minRecall float64 // aggregate recall@k floor when !exact
}

func implSpecs() []implSpec {
	return []implSpec{
		{
			name:  "flat",
			build: func(dim int) Index { return NewFlat(dim) },
			exact: true,
		},
		{
			name: "ivf",
			build: func(dim int) Index {
				return NewIVF(dim, IVFConfig{NList: 16, NProbe: 8, TrainSize: 200, Seed: 7})
			},
			minRecall: 0.9,
		},
		{
			name: "hnsw",
			build: func(dim int) Index {
				return NewHNSW(dim, HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 80, Seed: 7})
			},
			minRecall: 0.9,
		},
		{
			name: "hnsw-int8",
			build: func(dim int) Index {
				return NewHNSW(dim, HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 80, Seed: 7, Quantized: true})
			},
			minRecall: 0.9,
		},
		{
			name: "adaptive-small", // stays Flat: must be exact
			build: func(dim int) Index {
				return NewAdaptive(dim, AdaptiveConfig{FlatMax: 1 << 20})
			},
			exact: true,
		},
		{
			name: "adaptive", // promotes Flat→IVF→HNSW mid-run
			build: func(dim int) Index {
				return NewAdaptive(dim, AdaptiveConfig{
					FlatMax: 150, IVFMax: 500,
					IVF:  IVFConfig{NList: 12, NProbe: 8, Seed: 7},
					HNSW: HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 80, Seed: 7},
				})
			},
			minRecall: 0.9,
		},
	}
}

// oracle is the brute-force ground truth the implementations are checked
// against.
type oracle struct {
	vecs map[int][]float32
}

func newOracle() *oracle { return &oracle{vecs: make(map[int][]float32)} }

func (o *oracle) add(id int, vec []float32) { o.vecs[id] = vecmath.Clone(vec) }
func (o *oracle) remove(id int)             { delete(o.vecs, id) }
func (o *oracle) has(id int) bool           { _, ok := o.vecs[id]; return ok }
func (o *oracle) score(id int, q []float32) float32 {
	return vecmath.Dot(q, o.vecs[id])
}

// search replicates the documented result contract: score ≥ tau, ordered
// by descending score with ties broken by ascending ID, truncated to k.
func (o *oracle) search(q []float32, k int, tau float32) []Hit {
	var hits []Hit
	for id, v := range o.vecs {
		if s := vecmath.Dot(q, v); s >= tau {
			hits = append(hits, Hit{ID: id, Score: s})
		}
	}
	sortHits(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// tightUnit draws a unit vector near one of the anchors (total noise norm
// ~0.35 regardless of dim — dataset's embedding-cluster geometry).
func tightUnit(rng *rand.Rand, anchors [][]float32) []float32 {
	return dataset.PerturbUnit(rng, anchors[rng.Intn(len(anchors))], 0.35)
}

func makeAnchors(rng *rand.Rand, n, dim int) [][]float32 {
	anchors := make([][]float32, n)
	for i := range anchors {
		anchors[i] = dataset.RandomUnit(rng, dim)
	}
	return anchors
}

// checkInvariants verifies the properties every implementation must
// uphold on every search result, approximate or not.
func checkInvariants(t *testing.T, name string, hits []Hit, o *oracle, q []float32, k int, tau float32) {
	t.Helper()
	if len(hits) > k {
		t.Fatalf("%s: %d hits for k=%d", name, len(hits), k)
	}
	seen := make(map[int]bool, len(hits))
	for _, h := range hits {
		if seen[h.ID] {
			t.Fatalf("%s: duplicate id %d in results", name, h.ID)
		}
		seen[h.ID] = true
		if !o.has(h.ID) {
			t.Fatalf("%s: removed or unknown id %d leaked into results", name, h.ID)
		}
		if h.Score < tau {
			t.Fatalf("%s: hit %d scored %f below tau %f", name, h.ID, h.Score, tau)
		}
		if want := o.score(h.ID, q); absDiff(h.Score, want) > 1e-4 {
			t.Fatalf("%s: id %d reported score %f, true score %f", name, h.ID, h.Score, want)
		}
	}
	for i := 1; i < len(hits); i++ {
		if hitBetter(hits[i], hits[i-1]) {
			t.Fatalf("%s: tie/order violation at %d: %+v before %+v", name, i, hits[i-1], hits[i])
		}
	}
}

func absDiff(a, b float32) float32 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestConformanceRandomOps is the core property test: a randomized
// interleaving of Add (10% duplicate vectors, forcing score ties), Remove
// and Search, with every search checked against the oracle.
func TestConformanceRandomOps(t *testing.T) {
	const (
		dim = 16
		ops = 2500
		k   = 10
	)
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			anchors := makeAnchors(rng, 12, dim)
			idx := spec.build(dim)
			o := newOracle()
			var ids []int
			nextID := 0
			var recallHit, recallTotal int

			for op := 0; op < ops; op++ {
				switch r := rng.Float64(); {
				case r < 0.60 || len(ids) == 0: // add
					var v []float32
					if len(ids) > 0 && rng.Float64() < 0.10 {
						// Duplicate an existing vector under a new ID —
						// exercises the (score tie → ascending ID) rule.
						v = vecmath.Clone(o.vecs[ids[rng.Intn(len(ids))]])
					} else {
						v = tightUnit(rng, anchors)
					}
					id := nextID
					nextID++
					if err := idx.Add(id, v); err != nil {
						t.Fatalf("Add(%d): %v", id, err)
					}
					o.add(id, v)
					ids = append(ids, id)
				case r < 0.75: // remove
					i := rng.Intn(len(ids))
					id := ids[i]
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					idx.Remove(id)
					idx.Remove(id) // double-remove must be a no-op
					o.remove(id)
				default: // search
					var q []float32
					if rng.Float64() < 0.5 && len(ids) > 0 {
						q = o.vecs[ids[rng.Intn(len(ids))]]
					} else {
						q = tightUnit(rng, anchors)
					}
					tau := float32(-1)
					if rng.Float64() < 0.3 {
						tau = float32(rng.Float64() * 0.9)
					}
					got := idx.Search(q, k, tau)
					want := o.search(q, k, tau)
					checkInvariants(t, spec.name, got, o, q, k, tau)
					if spec.exact {
						if len(got) != len(want) {
							t.Fatalf("exact %s: %d hits, oracle %d (op %d)", spec.name, len(got), len(want), op)
						}
						for i := range got {
							if got[i].ID != want[i].ID {
								t.Fatalf("exact %s: hit %d is id %d, oracle id %d", spec.name, i, got[i].ID, want[i].ID)
							}
						}
					} else if tau == -1 {
						in := make(map[int]bool, len(got))
						for _, h := range got {
							in[h.ID] = true
						}
						for _, h := range want {
							recallTotal++
							if in[h.ID] {
								recallHit++
							}
						}
					}
				}
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration()
			}
			if idx.Len() != len(o.vecs) {
				t.Fatalf("%s: Len %d, oracle %d", spec.name, idx.Len(), len(o.vecs))
			}
			if !spec.exact && recallTotal > 0 {
				recall := float64(recallHit) / float64(recallTotal)
				t.Logf("%s aggregate recall@%d = %.3f over %d truths", spec.name, k, recall, recallTotal)
				if recall < spec.minRecall {
					t.Fatalf("%s: recall %.3f below floor %.2f", spec.name, recall, spec.minRecall)
				}
			}
		})
	}
}

// TestConformanceTieOrdering pins the tie rule directly: identical
// vectors under many IDs must come back ordered by ascending ID for every
// implementation.
func TestConformanceTieOrdering(t *testing.T) {
	const dim = 8
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			idx := spec.build(dim)
			v := unit(rng, dim)
			// Insert the same vector under shuffled IDs, plus filler so
			// approximate structures have a real graph/list layout.
			ids := rng.Perm(40)
			for _, id := range ids {
				if err := idx.Add(100+id, v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 300; i++ {
				idx.Add(1000+i, unit(rng, dim))
			}
			hits := idx.Search(v, 20, 0.999)
			if len(hits) == 0 {
				t.Fatal("no hits for an exact-duplicate probe")
			}
			// Equal scores must come back in ascending-ID order everywhere;
			// the exact implementations must additionally return precisely
			// the lowest 20 of the 40 tied IDs.
			for i := 1; i < len(hits); i++ {
				if hits[i].Score == hits[i-1].Score && hits[i].ID <= hits[i-1].ID {
					t.Fatalf("tie ordering: id %d before id %d at equal score", hits[i-1].ID, hits[i].ID)
				}
			}
			if spec.exact {
				if len(hits) != 20 {
					t.Fatalf("exact: %d hits, want 20", len(hits))
				}
				for i, h := range hits {
					if want := 100 + i; h.ID != want {
						t.Fatalf("tie ordering: hit %d is id %d, want %d (ties must sort by ascending ID)", i, h.ID, want)
					}
				}
			}
		})
	}
}

// TestConformanceRemovedNeverLeak hammers the remove path: after heavy
// churn, no removed ID may ever surface again — the tombstone-leak class
// of bug (IVF swap-delete bookkeeping, HNSW tombstones).
func TestConformanceRemovedNeverLeak(t *testing.T) {
	const dim = 16
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			anchors := makeAnchors(rng, 8, dim)
			idx := spec.build(dim)
			vecs := make(map[int][]float32)
			for i := 0; i < 800; i++ {
				v := tightUnit(rng, anchors)
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
				vecs[i] = v
			}
			// Remove every third entry, probing each removed vector.
			for i := 0; i < 800; i += 3 {
				idx.Remove(i)
				for _, h := range idx.Search(vecs[i], 5, -1) {
					if h.ID%3 == 0 && h.ID <= i {
						t.Fatalf("removed id %d leaked from Search", h.ID)
					}
				}
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration()
			}
			want := 800 - (800+2)/3
			if idx.Len() != want {
				t.Fatalf("Len = %d, want %d", idx.Len(), want)
			}
		})
	}
}

// TestConformanceMultiSearchParity pins the batched-search contract on
// every implementation: MultiSearchAppend must be bit-identical — same
// IDs, same scores, same order, per probe — to running the probes through
// Search one at a time, including after removals have left tombstoned or
// swap-deleted rows behind, and it must append after whatever the caller
// already had in each destination slice.
func TestConformanceMultiSearchParity(t *testing.T) {
	const (
		dim = 16
		n   = 600
		m   = 24
	)
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			anchors := makeAnchors(rng, 10, dim)
			idx := spec.build(dim)
			ms, ok := idx.(MultiSearcher)
			if !ok {
				t.Fatalf("%T does not implement MultiSearcher", idx)
			}
			vecs := make([][]float32, n)
			for i := 0; i < n; i++ {
				v := tightUnit(rng, anchors)
				if len(vecs) > 0 && i > 0 && rng.Float64() < 0.1 {
					v = vecmath.Clone(vecs[rng.Intn(i)]) // score ties
				}
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
				vecs[i] = v
			}
			// Leave removal scars mid-structure: tombstones in HNSW,
			// swap-deleted arena rows in Flat/IVF.
			for i := 0; i < n; i += 5 {
				idx.Remove(i)
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration() // pin the tier so both paths query one index
			}
			for _, cfg := range []struct {
				k   int
				tau float32
			}{{5, 0.8}, {10, 0.5}, {3, -1}, {10, 0.99}, {0, 0.5}} {
				probes := vecmath.NewMatrix(m, dim)
				for p := 0; p < m; p++ {
					var q []float32
					switch p % 3 {
					case 0:
						q = vecs[rng.Intn(n)] // possibly a removed entry's vector
					case 1:
						q = tightUnit(rng, anchors)
					default:
						q = dataset.RandomUnit(rng, dim)
					}
					copy(probes.Row(p), q)
				}
				sentinel := Hit{ID: -99, Score: -99}
				dst := make([][]Hit, m)
				for p := range dst {
					if p%2 == 0 {
						dst[p] = append(dst[p], sentinel)
					}
				}
				ms.MultiSearchAppend(probes, cfg.k, cfg.tau, dst)
				for p := 0; p < m; p++ {
					got := dst[p]
					if p%2 == 0 {
						if len(got) == 0 || got[0] != sentinel {
							t.Fatalf("%s k=%d tau=%v probe %d: append contract broken, sentinel lost", spec.name, cfg.k, cfg.tau, p)
						}
						got = got[1:]
					}
					want := idx.Search(probes.Row(p), cfg.k, cfg.tau)
					if len(got) != len(want) {
						t.Fatalf("%s k=%d tau=%v probe %d: %d batched hits, %d sequential", spec.name, cfg.k, cfg.tau, p, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s k=%d tau=%v probe %d hit %d: batched %+v, sequential %+v — not bit-identical",
								spec.name, cfg.k, cfg.tau, p, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestConformanceMultiSearchEmptyAndOversizedDst pins the edge contract:
// zero probes is a no-op, and destination tables longer than the probe
// count leave the excess rows untouched.
func TestConformanceMultiSearchEmptyAndOversizedDst(t *testing.T) {
	const dim = 8
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			idx := spec.build(dim)
			for i := 0; i < 50; i++ {
				if err := idx.Add(i, unit(rng, dim)); err != nil {
					t.Fatal(err)
				}
			}
			ms := idx.(MultiSearcher)
			empty := vecmath.NewMatrix(0, dim)
			ms.MultiSearchAppend(empty, 5, 0.1, nil) // must not panic
			probes := vecmath.NewMatrix(2, dim)
			copy(probes.Row(0), unit(rng, dim))
			copy(probes.Row(1), unit(rng, dim))
			marker := []Hit{{ID: -1, Score: 42}}
			dst := [][]Hit{nil, nil, marker}
			ms.MultiSearchAppend(probes, 5, -1, dst)
			if len(dst[2]) != 1 || dst[2][0] != marker[0] {
				t.Fatalf("dst row beyond probes.Rows was touched: %+v", dst[2])
			}
		})
	}
}

// TestConformanceConcurrentSearchDuringAdd drives concurrent Search
// against a writer interleaving Add and Remove — run under -race, this is
// the locking conformance check. Results can lag the writer, so only
// order/bound/tau invariants are asserted, not membership.
func TestConformanceConcurrentSearchDuringAdd(t *testing.T) {
	const (
		dim     = 16
		total   = 1500
		readers = 4
	)
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			anchors := makeAnchors(rng, 8, dim)
			vecs := make([][]float32, total)
			for i := range vecs {
				vecs[i] = tightUnit(rng, anchors)
			}
			idx := spec.build(dim)
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, readers)
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						q := vecs[r.Intn(total)]
						hits := idx.Search(q, 10, 0.5)
						if len(hits) > 10 {
							errs <- fmt.Errorf("%d hits for k=10", len(hits))
							return
						}
						for i, h := range hits {
							if h.Score < 0.5 {
								errs <- fmt.Errorf("hit below tau: %+v", h)
								return
							}
							if i > 0 && hitBetter(h, hits[i-1]) {
								errs <- fmt.Errorf("unordered hits: %+v before %+v", hits[i-1], h)
								return
							}
						}
					}
				}(int64(w) * 101)
			}
			for i, v := range vecs {
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
				if i%7 == 0 && i > 0 {
					idx.Remove(i - 1)
				}
			}
			stop.Store(true)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: concurrent search: %v", spec.name, err)
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration()
			}
			removed := (total - 1) / 7
			if got := idx.Len(); got != total-removed {
				t.Fatalf("Len = %d, want %d", got, total-removed)
			}
		})
	}
}
