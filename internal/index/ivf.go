package index

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/vecmath"
)

// IVF is an inverted-file index: stored vectors are assigned to the
// nearest of nlist centroids (spherical k-means over an initial training
// sample), and a query scans only the nprobe nearest lists. Recall is
// tunable via nprobe; nprobe = nlist degrades gracefully to an exact scan.
//
// Each inverted list keeps its rows in one contiguous row-major arena
// (swap-deleted on Remove, so scans stay dense) with per-row distances to
// the list centroid. Probed lists are scanned with the blocked vecmath
// kernels under the same rigorous Cauchy–Schwarz tau bound Flat uses:
// rows that provably cannot reach tau are skipped without touching their
// data, and the rows that are scored produce exactly the scores the
// previous per-entry scan produced — pruning never changes results, only
// work.
//
// Until Train is called (or until the lazily-collected bootstrap sample
// reaches its target size), vectors accumulate in a flat buffer and
// searches are exact, so a cold cache behaves exactly like Flat.
type IVF struct {
	mu     sync.RWMutex
	dim    int
	nlist  int
	nprobe int
	seed   int64

	trainSize int
	centroids *vecmath.Matrix // nlist × dim, unit norm
	lists     []*postings     // per-centroid contiguous rows
	where     map[int]listRef
	bootstrap *Flat // pre-training accumulation
	trained   bool

	scratch sync.Pool // *ivfScratch
}

// postings is one inverted list: the shared rowArena with the list
// centroid as its pivot.
type postings = rowArena

type listRef struct {
	list, pos int
}

// ivfScratch is the pooled per-search working set: centroid scores, the
// ranked probe selection, and score/hit buffers. multi is the batched
// extension (the m×nlist centroid score matrix), sized lazily so
// single-probe searches never pay for it.
type ivfScratch struct {
	scores []float32
	probes []int
	list   []float32
	hits   []Hit
	multi  []float32
}

// IVFConfig tunes the index.
type IVFConfig struct {
	// NList is the number of inverted lists (clusters). Typical: √N.
	NList int
	// NProbe is how many nearest lists a query scans. Higher = better
	// recall, slower search.
	NProbe int
	// TrainSize is the bootstrap sample size that triggers automatic
	// training (0 = 32·NList).
	TrainSize int
	// Seed drives k-means initialisation.
	Seed int64
}

// NewIVF creates an IVF index for dim-dimensional unit vectors.
func NewIVF(dim int, cfg IVFConfig) *IVF {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	if cfg.NList <= 0 {
		cfg.NList = 64
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 8
	}
	if cfg.NProbe > cfg.NList {
		cfg.NProbe = cfg.NList
	}
	if cfg.TrainSize <= 0 {
		cfg.TrainSize = 32 * cfg.NList
	}
	ivf := &IVF{
		dim:       dim,
		nlist:     cfg.NList,
		nprobe:    cfg.NProbe,
		seed:      cfg.Seed,
		where:     make(map[int]listRef),
		bootstrap: NewFlat(dim),
	}
	ivf.trainSize = cfg.TrainSize
	return ivf
}

// Dim implements Index.
func (x *IVF) Dim() int { return x.dim }

// Len implements Index.
func (x *IVF) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.Len()
	}
	return len(x.where)
}

// Tier implements TierNamer.
func (x *IVF) Tier() string { return "ivf" }

// ArenaStats implements ArenaReporter. Inverted lists are dense
// append/swap-delete arenas, so before training it defers to the
// bootstrap buffer and after training Slots == Rows with no free slots.
func (x *IVF) ArenaStats() ArenaStats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.ArenaStats()
	}
	n := len(x.where)
	return ArenaStats{Rows: n, Slots: n}
}

// Trained reports whether centroids have been fitted.
func (x *IVF) Trained() bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.trained
}

// Add implements Index. Before training, vectors accumulate in the exact
// bootstrap buffer; once the buffer reaches the training threshold the
// index trains itself and migrates all vectors into inverted lists.
func (x *IVF) Add(id int, vec []float32) error {
	if len(vec) != x.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), x.dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.trained {
		if err := x.bootstrap.Add(id, vec); err != nil {
			return err
		}
		if x.bootstrap.Len() >= x.trainSize {
			x.trainLocked()
		}
		return nil
	}
	if _, dup := x.where[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	x.insert(id, vec)
	return nil
}

func (x *IVF) insert(id int, vec []float32) {
	li := x.nearestCentroid(vec)
	l := x.lists[li]
	norm := vecmath.Norm(vec)
	delta := pivotDistance(norm, vecmath.Dot(vec, x.centroids.Row(li)), vecmath.Norm(x.centroids.Row(li)))
	x.where[id] = listRef{list: li, pos: len(l.ids)}
	l.add(id, vec, norm, delta)
}

// Remove implements Index (swap-delete within the row's list). The
// vacated tail row is zeroed so the removed vector does not stay
// reachable through the list's backing array.
func (x *IVF) Remove(id int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.trained {
		x.bootstrap.Remove(id)
		return
	}
	ref, ok := x.where[id]
	if !ok {
		return
	}
	l := x.lists[ref.list]
	if movedID, moved := l.swapDelete(ref.pos, x.dim); moved {
		x.where[movedID] = listRef{list: ref.list, pos: ref.pos}
	}
	delete(x.where, id)
}

// forEach implements iterable.
func (x *IVF) forEach(fn func(id int, vec []float32)) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		x.bootstrap.forEach(fn)
		return
	}
	for _, l := range x.lists {
		for i, id := range l.ids {
			fn(id, l.vecs[i*x.dim:(i+1)*x.dim])
		}
	}
}

// idList implements snapshotter.
func (x *IVF) idList() []int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.idList()
	}
	out := make([]int, 0, len(x.where))
	for id := range x.where {
		out = append(out, id)
	}
	return out
}

// vecClone implements snapshotter.
func (x *IVF) vecClone(id int) []float32 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.vecClone(id)
	}
	ref, ok := x.where[id]
	if !ok {
		return nil
	}
	l := x.lists[ref.list]
	return vecmath.Clone(l.vecs[ref.pos*x.dim : (ref.pos+1)*x.dim])
}

// trainEntry pairs an id with its vector during (re)clustering.
type trainEntry struct {
	id  int
	vec []float32
}

// Train fits centroids on whatever vectors are currently stored and
// migrates them into inverted lists. Calling Train on an already-trained
// index re-clusters in place.
func (x *IVF) Train() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.trainLocked()
}

func (x *IVF) trainLocked() {
	// Gather all current vectors.
	var all []trainEntry
	if x.trained {
		for _, l := range x.lists {
			for i, id := range l.ids {
				all = append(all, trainEntry{id: id, vec: vecmath.Clone(l.vecs[i*x.dim : (i+1)*x.dim])})
			}
		}
	} else {
		x.bootstrap.forEach(func(id int, vec []float32) {
			all = append(all, trainEntry{id: id, vec: vecmath.Clone(vec)})
		})
	}
	if len(all) == 0 {
		return
	}
	nlist := x.nlist
	if nlist > len(all) {
		nlist = len(all)
	}
	x.centroids = sphericalKMeans(all, nlist, x.dim, x.seed)
	x.lists = make([]*postings, x.centroids.Rows)
	for i := range x.lists {
		x.lists[i] = &postings{}
	}
	x.where = make(map[int]listRef, len(all))
	x.trained = true
	x.bootstrap = nil
	for _, e := range all {
		x.insert(e.id, e.vec)
	}
}

func (x *IVF) nearestCentroid(vec []float32) int {
	best, bestScore := 0, float32(-2)
	for i := 0; i < x.centroids.Rows; i++ {
		if s := vecmath.Dot(vec, x.centroids.Row(i)); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func (x *IVF) getScratch() *ivfScratch {
	sc, _ := x.scratch.Get().(*ivfScratch)
	if sc == nil {
		sc = &ivfScratch{}
	}
	if need := x.centroids.Rows; cap(sc.scores) < need {
		sc.scores = make([]float32, need)
		sc.probes = make([]int, need)
	}
	return sc
}

// Search implements Index: exact scan before training, nprobe-list scan
// after. Probed lists are pruned with the same rigorous tau bound Flat
// applies, so results match the unpruned scan exactly.
func (x *IVF) Search(vec []float32, k int, tau float32) []Hit {
	hits := x.SearchAppend(vec, k, tau, nil)
	if len(hits) == 0 {
		return nil
	}
	return hits
}

// SearchAppend is Search appending into dst — the allocation-free form:
// with a dst of sufficient capacity a warmed call performs zero heap
// allocations.
func (x *IVF) SearchAppend(vec []float32, k int, tau float32, dst []Hit) []Hit {
	if len(vec) != x.dim {
		panic(fmt.Sprintf("index: Search dim %d, want %d", len(vec), x.dim))
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.SearchAppend(vec, k, tau, dst)
	}
	if k <= 0 || len(x.where) == 0 {
		return dst
	}
	sc := x.getScratch()
	defer x.scratch.Put(sc)

	// Score every centroid with one blocked pass, then select the nprobe
	// best.
	scores := sc.scores[:x.centroids.Rows]
	vecmath.ScanDot(vec, x.centroids.Data, scores)
	sel := x.selectProbes(scores, sc.probes[:0])

	pnorm := vecmath.Norm(vec)
	thr := tau - boundMargin
	hits := sc.hits[:0]
	for _, li := range sel {
		hits = x.lists[li].scanBounded(vec, x.dim, scores[li], pnorm, tau, thr, &sc.list, hits)
	}
	top := topKHits(hits, k)
	dst = append(dst, top...)
	sc.hits = hits[:0]
	return dst
}

// selectProbes ranks the nprobe best centroid scores into sel (ties to
// the lower list index, matching the historical full insertion sort, so
// probe sets — and therefore recall — are stable). Both the single- and
// multi-probe searches route through this one selection so their probe
// sets cannot drift apart.
func (x *IVF) selectProbes(scores []float32, sel []int) []int {
	probes := x.nprobe
	if probes > len(scores) {
		probes = len(scores)
	}
	for li := range scores {
		i := len(sel)
		if i < probes {
			sel = append(sel, li)
		} else if scores[li] > scores[sel[probes-1]] {
			i = probes - 1
			sel[i] = li
		} else {
			continue
		}
		for ; i > 0 && scores[sel[i]] > scores[sel[i-1]]; i-- {
			sel[i], sel[i-1] = sel[i-1], sel[i]
		}
	}
	return sel
}

// MultiSearchAppend implements MultiSearcher: the centroid matrix is
// scored once for the whole batch with the multi-probe kernel (the
// kernel is accumulation-order-identical to the per-probe ScanDot, so
// probe selection cannot drift), then each probe runs its own
// bound-pruned list scans and appends its hits to dst[p]. One read lock
// covers the batch; all scratch is pooled.
func (x *IVF) MultiSearchAppend(probes *vecmath.Matrix, k int, tau float32, dst [][]Hit) {
	if probes.Cols != x.dim {
		panic(fmt.Sprintf("index: MultiSearch dim %d, want %d", probes.Cols, x.dim))
	}
	m := probes.Rows
	if m == 0 {
		return
	}
	if len(dst) < m {
		panic(fmt.Sprintf("index: MultiSearch dst len %d, need %d", len(dst), m))
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		x.bootstrap.MultiSearchAppend(probes, k, tau, dst)
		return
	}
	if k <= 0 || len(x.where) == 0 {
		return
	}
	sc := x.getScratch()
	defer x.scratch.Put(sc)
	nc := x.centroids.Rows
	if cap(sc.multi) < m*nc {
		sc.multi = make([]float32, m*nc+(m*nc)/2+8)
	}
	all := sc.multi[:m*nc]
	vecmath.ScanDotMulti(probes.Data, x.centroids.Data, all, m)
	thr := tau - boundMargin
	for p := 0; p < m; p++ {
		vec := probes.Row(p)
		scores := all[p*nc : (p+1)*nc]
		sel := x.selectProbes(scores, sc.probes[:0])
		pnorm := vecmath.Norm(vec)
		hits := sc.hits[:0]
		for _, li := range sel {
			hits = x.lists[li].scanBounded(vec, x.dim, scores[li], pnorm, tau, thr, &sc.list, hits)
		}
		top := topKHits(hits, k)
		dst[p] = append(dst[p], top...)
		sc.hits = hits[:0]
	}
}

// sphericalKMeans clusters unit vectors by cosine with k-means++ style
// seeding, re-normalising centroids each iteration.
func sphericalKMeans(data []trainEntry, k, dim int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed + 31))
	cents := vecmath.NewMatrix(k, dim)
	// Seeding: first centroid random, then greedily far points.
	copy(cents.Row(0), data[rng.Intn(len(data))].vec)
	minSim := make([]float32, len(data)) // max similarity to chosen centroids
	for i := range minSim {
		minSim[i] = vecmath.Dot(data[i].vec, cents.Row(0))
	}
	for c := 1; c < k; c++ {
		// Pick the point least similar to its nearest centroid.
		worst, worstSim := 0, float32(2)
		for i, s := range minSim {
			if s < worstSim {
				worst, worstSim = i, s
			}
		}
		copy(cents.Row(c), data[worst].vec)
		for i := range minSim {
			if s := vecmath.Dot(data[i].vec, cents.Row(c)); s > minSim[i] {
				minSim[i] = s
			}
		}
	}
	assign := make([]int, len(data))
	for iter := 0; iter < 12; iter++ {
		changed := vecmath.ParallelMapReduce(len(data), func(lo, hi int) float64 {
			moved := 0.0
			for i := lo; i < hi; i++ {
				best, bestScore := 0, float32(-2)
				for c := 0; c < k; c++ {
					if s := vecmath.Dot(data[i].vec, cents.Row(c)); s > bestScore {
						best, bestScore = c, s
					}
				}
				if assign[i] != best {
					assign[i] = best
					moved++
				}
			}
			return moved
		})
		// Recompute centroids.
		cents.Fill(0)
		counts := make([]int, k)
		for i, e := range data {
			vecmath.Axpy(1, e.vec, cents.Row(assign[i]))
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				copy(cents.Row(c), data[rng.Intn(len(data))].vec)
				continue
			}
			if vecmath.Normalize(cents.Row(c)) == 0 {
				cents.Row(c)[0] = 1
			}
		}
		if changed == 0 {
			break
		}
	}
	return cents
}
