package index

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/vecmath"
)

// IVF is an inverted-file index: stored vectors are assigned to the
// nearest of nlist centroids (spherical k-means over an initial training
// sample), and a query scans only the nprobe nearest lists. Recall is
// tunable via nprobe; nprobe = nlist degrades gracefully to an exact scan.
//
// Until Train is called (or until the lazily-collected bootstrap sample
// reaches its target size), vectors accumulate in a flat buffer and
// searches are exact, so a cold cache behaves exactly like Flat.
type IVF struct {
	mu     sync.RWMutex
	dim    int
	nlist  int
	nprobe int
	seed   int64

	trainSize int
	centroids *vecmath.Matrix // nlist × dim, unit norm
	lists     [][]entry       // per-centroid postings
	where     map[int]listRef
	bootstrap *Flat // pre-training accumulation
	trained   bool
}

type entry struct {
	id  int
	vec []float32
}

type listRef struct {
	list, pos int
}

// IVFConfig tunes the index.
type IVFConfig struct {
	// NList is the number of inverted lists (clusters). Typical: √N.
	NList int
	// NProbe is how many nearest lists a query scans. Higher = better
	// recall, slower search.
	NProbe int
	// TrainSize is the bootstrap sample size that triggers automatic
	// training (0 = 32·NList).
	TrainSize int
	// Seed drives k-means initialisation.
	Seed int64
}

// NewIVF creates an IVF index for dim-dimensional unit vectors.
func NewIVF(dim int, cfg IVFConfig) *IVF {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	if cfg.NList <= 0 {
		cfg.NList = 64
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 8
	}
	if cfg.NProbe > cfg.NList {
		cfg.NProbe = cfg.NList
	}
	if cfg.TrainSize <= 0 {
		cfg.TrainSize = 32 * cfg.NList
	}
	ivf := &IVF{
		dim:       dim,
		nlist:     cfg.NList,
		nprobe:    cfg.NProbe,
		seed:      cfg.Seed,
		where:     make(map[int]listRef),
		bootstrap: NewFlat(dim),
	}
	ivf.trainSize = cfg.TrainSize
	return ivf
}

// Dim implements Index.
func (x *IVF) Dim() int { return x.dim }

// Len implements Index.
func (x *IVF) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.Len()
	}
	return len(x.where)
}

// Trained reports whether centroids have been fitted.
func (x *IVF) Trained() bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.trained
}

// Add implements Index. Before training, vectors accumulate in the exact
// bootstrap buffer; once the buffer reaches the training threshold the
// index trains itself and migrates all vectors into inverted lists.
func (x *IVF) Add(id int, vec []float32) error {
	if len(vec) != x.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), x.dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.trained {
		if err := x.bootstrap.Add(id, vec); err != nil {
			return err
		}
		if x.bootstrap.Len() >= x.trainSize {
			x.trainLocked()
		}
		return nil
	}
	if _, dup := x.where[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	x.insert(id, vecmath.Clone(vec))
	return nil
}

func (x *IVF) insert(id int, vec []float32) {
	li := x.nearestCentroid(vec)
	x.where[id] = listRef{list: li, pos: len(x.lists[li])}
	x.lists[li] = append(x.lists[li], entry{id: id, vec: vec})
}

// Remove implements Index. The vacated tail slot is zeroed so the removed
// entry's vector does not stay reachable through the list's backing array
// (a removed-ID leak: the entry was invisible to Search but pinned in
// memory, and a later Train that walked backing arrays could resurrect it).
func (x *IVF) Remove(id int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.trained {
		x.bootstrap.Remove(id)
		return
	}
	ref, ok := x.where[id]
	if !ok {
		return
	}
	list := x.lists[ref.list]
	last := len(list) - 1
	if ref.pos != last {
		list[ref.pos] = list[last]
		x.where[list[ref.pos].id] = listRef{list: ref.list, pos: ref.pos}
	}
	list[last] = entry{}
	x.lists[ref.list] = list[:last]
	delete(x.where, id)
}

// forEach implements iterable.
func (x *IVF) forEach(fn func(id int, vec []float32)) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		x.bootstrap.forEach(fn)
		return
	}
	for _, list := range x.lists {
		for _, e := range list {
			fn(e.id, e.vec)
		}
	}
}

// idList implements snapshotter.
func (x *IVF) idList() []int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.idList()
	}
	out := make([]int, 0, len(x.where))
	for id := range x.where {
		out = append(out, id)
	}
	return out
}

// vecClone implements snapshotter.
func (x *IVF) vecClone(id int) []float32 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.vecClone(id)
	}
	ref, ok := x.where[id]
	if !ok {
		return nil
	}
	return vecmath.Clone(x.lists[ref.list][ref.pos].vec)
}

// Train fits centroids on whatever vectors are currently stored and
// migrates them into inverted lists. Calling Train on an already-trained
// index re-clusters in place.
func (x *IVF) Train() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.trainLocked()
}

func (x *IVF) trainLocked() {
	// Gather all current vectors.
	var all []entry
	if x.trained {
		for _, list := range x.lists {
			all = append(all, list...)
		}
	} else {
		for i, id := range x.bootstrap.ids {
			all = append(all, entry{
				id:  id,
				vec: vecmath.Clone(x.bootstrap.vecs[i*x.dim : (i+1)*x.dim]),
			})
		}
	}
	if len(all) == 0 {
		return
	}
	nlist := x.nlist
	if nlist > len(all) {
		nlist = len(all)
	}
	x.centroids = sphericalKMeans(all, nlist, x.dim, x.seed)
	x.lists = make([][]entry, x.centroids.Rows)
	x.where = make(map[int]listRef, len(all))
	x.trained = true
	x.bootstrap = nil
	for _, e := range all {
		x.insert(e.id, e.vec)
	}
}

func (x *IVF) nearestCentroid(vec []float32) int {
	best, bestScore := 0, float32(-2)
	for i := 0; i < x.centroids.Rows; i++ {
		if s := vecmath.Dot(vec, x.centroids.Row(i)); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Search implements Index: exact scan before training, nprobe-list scan
// after.
func (x *IVF) Search(vec []float32, k int, tau float32) []Hit {
	if len(vec) != x.dim {
		panic(fmt.Sprintf("index: Search dim %d, want %d", len(vec), x.dim))
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !x.trained {
		return x.bootstrap.Search(vec, k, tau)
	}
	if k <= 0 || len(x.where) == 0 {
		return nil
	}
	// Rank centroids by similarity; probe the top lists.
	type ranked struct {
		list  int
		score float32
	}
	order := make([]ranked, x.centroids.Rows)
	for i := range order {
		order[i] = ranked{i, vecmath.Dot(vec, x.centroids.Row(i))}
	}
	for i := 1; i < len(order); i++ { // insertion sort by descending score
		for j := i; j > 0 && order[j].score > order[j-1].score; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	probes := x.nprobe
	if probes > len(order) {
		probes = len(order)
	}
	var hits []Hit
	for _, r := range order[:probes] {
		for _, e := range x.lists[r.list] {
			if s := vecmath.Dot(vec, e.vec); s >= tau {
				hits = append(hits, Hit{ID: e.id, Score: s})
			}
		}
	}
	return topKHits(hits, k)
}

// sphericalKMeans clusters unit vectors by cosine with k-means++ style
// seeding, re-normalising centroids each iteration.
func sphericalKMeans(data []entry, k, dim int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed + 31))
	cents := vecmath.NewMatrix(k, dim)
	// Seeding: first centroid random, then greedily far points.
	copy(cents.Row(0), data[rng.Intn(len(data))].vec)
	minSim := make([]float32, len(data)) // max similarity to chosen centroids
	for i := range minSim {
		minSim[i] = vecmath.Dot(data[i].vec, cents.Row(0))
	}
	for c := 1; c < k; c++ {
		// Pick the point least similar to its nearest centroid.
		worst, worstSim := 0, float32(2)
		for i, s := range minSim {
			if s < worstSim {
				worst, worstSim = i, s
			}
		}
		copy(cents.Row(c), data[worst].vec)
		for i := range minSim {
			if s := vecmath.Dot(data[i].vec, cents.Row(c)); s > minSim[i] {
				minSim[i] = s
			}
		}
	}
	assign := make([]int, len(data))
	for iter := 0; iter < 12; iter++ {
		changed := vecmath.ParallelMapReduce(len(data), func(lo, hi int) float64 {
			moved := 0.0
			for i := lo; i < hi; i++ {
				best, bestScore := 0, float32(-2)
				for c := 0; c < k; c++ {
					if s := vecmath.Dot(data[i].vec, cents.Row(c)); s > bestScore {
						best, bestScore = c, s
					}
				}
				if assign[i] != best {
					assign[i] = best
					moved++
				}
			}
			return moved
		})
		// Recompute centroids.
		cents.Fill(0)
		counts := make([]int, k)
		for i, e := range data {
			vecmath.Axpy(1, e.vec, cents.Row(assign[i]))
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				copy(cents.Row(c), data[rng.Intn(len(data))].vec)
				continue
			}
			if vecmath.Normalize(cents.Row(c)) == 0 {
				cents.Row(c)[0] = 1
			}
		}
		if changed == 0 {
			break
		}
	}
	return cents
}
