package index

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// Recycling conformance: the slab-backed stores reuse freed slots and
// swap-deleted rows, so the classic failure mode is aliasing — a search
// scoring a removed vector that still haunts its recycled storage, or a
// new vector inheriting a stale pivot distance. These tests pin the
// remove-then-reuse path directly and under concurrent churn.

// TestConformanceRemoveThenReuseAliasing drives the exact aliasing
// scenario on every implementation: remove a whole cluster (emptying
// groups/lists so pivot slots recycle), insert fresh vectors under new
// IDs into the recycled storage, then probe with the removed vectors.
func TestConformanceRemoveThenReuseAliasing(t *testing.T) {
	const dim = 16
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			anchors := makeAnchors(rng, 6, dim)
			idx := spec.build(dim)
			o := newOracle()
			removed := make(map[int][]float32)
			for i := 0; i < 600; i++ {
				v := tightUnit(rng, anchors)
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
				o.add(i, v)
			}
			// Remove 2/3 of the index — enough to empty many groups and
			// return their slots to the free lists.
			for i := 0; i < 600; i++ {
				if i%3 != 0 {
					removed[i] = vecmath.Clone(o.vecs[i])
					idx.Remove(i)
					o.remove(i)
				}
			}
			// Refill into recycled storage under fresh IDs.
			for i := 1000; i < 1400; i++ {
				v := tightUnit(rng, anchors)
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
				o.add(i, v)
			}
			// Probing with each removed vector must never resurface its
			// ID, and exact implementations must still match the oracle
			// bit for bit (stale pivots or un-zeroed rows would show up
			// as phantom or missing hits).
			checked := 0
			for id, v := range removed {
				if checked++; checked > 60 {
					break
				}
				got := idx.Search(v, 10, 0.5)
				checkInvariants(t, spec.name, got, o, v, 10, 0.5)
				for _, h := range got {
					if h.ID == id {
						t.Fatalf("%s: removed id %d resurfaced from recycled storage", spec.name, id)
					}
				}
				if spec.exact {
					want := o.search(v, 10, 0.5)
					if len(got) != len(want) {
						t.Fatalf("%s: %d hits, oracle %d", spec.name, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: hit %d = %+v, oracle %+v", spec.name, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestConformanceRecycleChurn hammers concurrent Add/Remove/Search over
// a small ID universe, so slots recycle constantly while readers are in
// flight — run under -race this is the locking proof for the slab free
// lists; the final state is checked exactly against a brute-force
// replay.
func TestConformanceRecycleChurn(t *testing.T) {
	const (
		dim     = 16
		idSpace = 200
		rounds  = 3000
		readers = 4
	)
	for _, spec := range implSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			anchors := makeAnchors(rng, 6, dim)
			idx := spec.build(dim)
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, readers)
			probes := make([][]float32, 32)
			for i := range probes {
				probes[i] = tightUnit(rng, anchors)
			}
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						q := probes[r.Intn(len(probes))]
						hits := idx.Search(q, 8, 0.5)
						for i, h := range hits {
							if h.Score < 0.5 {
								errs <- fmt.Errorf("hit below tau: %+v", h)
								return
							}
							if i > 0 && hitBetter(h, hits[i-1]) {
								errs <- fmt.Errorf("unordered hits: %+v before %+v", hits[i-1], h)
								return
							}
						}
					}
				}(int64(w)*7 + 1)
			}
			// Writer: cycle a small ID universe so every Add after the
			// first few hundred rounds lands in recycled storage.
			live := make(map[int][]float32, idSpace)
			next := 0
			for round := 0; round < rounds; round++ {
				if len(live) < idSpace/2 || (rng.Float64() < 0.6 && len(live) < idSpace) {
					v := tightUnit(rng, anchors)
					id := next
					next++
					if err := idx.Add(id, v); err != nil {
						t.Fatal(err)
					}
					live[id] = v
				} else {
					for id := range live {
						idx.Remove(id)
						delete(live, id)
						break
					}
				}
			}
			stop.Store(true)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: concurrent search during churn: %v", spec.name, err)
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration()
			}
			if idx.Len() != len(live) {
				t.Fatalf("%s: Len %d after churn, want %d", spec.name, idx.Len(), len(live))
			}
			// Exact final-state parity for the exact implementations.
			if spec.name == "flat" {
				o := newOracle()
				for id, v := range live {
					o.add(id, v)
				}
				for _, q := range probes {
					got := idx.Search(q, 10, 0.6)
					want := o.search(q, 10, 0.6)
					if len(got) != len(want) {
						t.Fatalf("final parity: %d hits, oracle %d", len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("final parity: hit %d = %+v, oracle %+v", i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestFlatParallelScanPartition pins the parallel-scan partition
// arithmetic: with ceil-sized chunks, worker counts that do not divide
// the group count leave trailing workers with ranges past the end —
// those must be skipped, not sliced (a Flat with 9 groups under 8
// workers used to panic). The worker count is passed explicitly so the
// case reproduces on any machine, single-core CI included.
func TestFlatParallelScanPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	anchors := makeAnchors(rng, 9, 16)
	f := NewFlat(16)
	oracleIdx := newOracle()
	for i := 0; i < 900; i++ {
		// Vectors drawn tightly around 9 anchors: ~9 leader groups.
		v := dataset.PerturbUnit(rng, anchors[i%9], 0.2)
		if err := f.Add(i, v); err != nil {
			t.Fatal(err)
		}
		oracleIdx.add(i, v)
	}
	probe := dataset.PerturbUnit(rng, anchors[0], 0.2)
	want := oracleIdx.search(probe, 10, 0.5)
	for workers := 1; workers <= len(f.groups)+3; workers++ {
		sc := f.getScratch()
		scores := sc.scores[:f.leaders.Slots()]
		f.leaders.ScanDot(probe, scores)
		hits := f.scanGroupsParallel(probe, scores, vecmath.Norm(probe), 0.5, 0.5-boundMargin, nil, workers)
		f.scratch.Put(sc)
		got := topKHits(hits, 10)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d hits, oracle %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: hit %d = %+v, oracle %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCacheRecycleAliasing runs the remove-then-reuse scenario through
// the cache layer (the serving path's entry point), ensuring evicted
// entries never shadow the rows that recycled their index storage.
func TestCacheRecycleAliasing(t *testing.T) {
	// Local to the index package's fixtures but exercising the public
	// contract: ids removed from the index must stay gone even when their
	// storage is reused by later inserts.
	rng := rand.New(rand.NewSource(41))
	f := NewFlat(24)
	old := dataset.RandomUnit(rng, 24)
	if err := f.Add(1, old); err != nil {
		t.Fatal(err)
	}
	f.Remove(1)
	// The freed leader slot is recycled by the next Add.
	fresh := dataset.RandomUnit(rng, 24)
	if err := f.Add(2, fresh); err != nil {
		t.Fatal(err)
	}
	hits := f.Search(old, 5, -1)
	if len(hits) != 1 || hits[0].ID != 2 {
		t.Fatalf("expected only id 2, got %+v", hits)
	}
	if want := vecmath.Dot(old, fresh); hits[0].Score != want {
		t.Fatalf("score %v, want %v — stale vector aliased through the recycled slot", hits[0].Score, want)
	}
}
