package index

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// Allocation-regression gates for the query hot path: the slab-backed
// search surfaces must not allocate once warmed. AllocsPerRun tolerates
// sub-1 averages so a GC clearing a sync.Pool mid-run cannot flake the
// suite, while any real per-call allocation (≥1) still fails.

func buildAllocFlat(t testing.TB, n int) (*Flat, [][]float32) {
	rng := rand.New(rand.NewSource(9))
	vecs := dataset.ClusteredVectors(rng, n, 16, 32, 0.4)
	f := NewFlat(32)
	for i, v := range vecs {
		if err := f.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return f, vecs
}

func TestFlatSearchAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	f, vecs := buildAllocFlat(t, 2000)
	probe := vecs[3]
	dst := make([]Hit, 0, 16)
	// Warm the scratch pool.
	dst = f.SearchAppend(probe, 5, 0.8, dst[:0])
	if len(dst) == 0 {
		t.Fatal("warmup search found nothing")
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = f.SearchAppend(probe, 5, 0.8, dst[:0])
	}); n >= 1 {
		t.Fatalf("Flat.SearchAppend allocates %v per warmed call, want 0", n)
	}
	// The permissive-tau full-scan fallback must stay allocation-free
	// too (pooled score and hit buffers absorb the whole candidate set).
	big := make([]Hit, 0, 2048)
	big = f.SearchAppend(probe, 10, -1, big[:0])
	if n := testing.AllocsPerRun(20, func() {
		big = f.SearchAppend(probe, 10, -1, big[:0])
	}); n >= 1 {
		t.Fatalf("Flat.SearchAppend (tau=-1) allocates %v per warmed call, want 0", n)
	}
}

func TestIVFSearchAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("pooled buffers are intentionally dropped under -race")
	}
	rng := rand.New(rand.NewSource(10))
	vecs := dataset.ClusteredVectors(rng, 3000, 16, 32, 0.4)
	x := NewIVF(32, IVFConfig{NList: 16, NProbe: 4, TrainSize: 500, Seed: 3})
	for i, v := range vecs {
		if err := x.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if !x.Trained() {
		t.Fatal("IVF did not self-train")
	}
	probe := vecs[7]
	dst := make([]Hit, 0, 16)
	dst = x.SearchAppend(probe, 5, 0.8, dst[:0])
	if len(dst) == 0 {
		t.Fatal("warmup search found nothing")
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = x.SearchAppend(probe, 5, 0.8, dst[:0])
	}); n >= 1 {
		t.Fatalf("IVF.SearchAppend allocates %v per warmed call, want 0", n)
	}
}

func TestTopKSelectionZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hits := make([]Hit, 4096)
	scratch := make([]Hit, len(hits))
	for i := range hits {
		hits[i] = Hit{ID: i, Score: float32(rng.Float64())}
	}
	if n := testing.AllocsPerRun(50, func() {
		copy(scratch, hits)
		topKHits(scratch, 64)
	}); n >= 1 {
		t.Fatalf("topKHits allocates %v per run, want 0 (in-place heap selection)", n)
	}
}

func buildProbeMatrix(rng *rand.Rand, vecs [][]float32, m int) *vecmath.Matrix {
	pm := vecmath.NewMatrix(m, len(vecs[0]))
	for p := 0; p < m; p++ {
		copy(pm.Row(p), dataset.PerturbUnit(rng, vecs[rng.Intn(len(vecs))], 0.3))
	}
	return pm
}

func TestFlatMultiSearchMatchesSearch(t *testing.T) {
	f, vecs := buildAllocFlat(t, 1500)
	rng := rand.New(rand.NewSource(12))
	probes := buildProbeMatrix(rng, vecs, 8)
	for _, tau := range []float32{-1, 0.5, 0.8} {
		batch := f.MultiSearch(probes, 5, tau)
		for p := 0; p < probes.Rows; p++ {
			want := f.Search(probes.Row(p), 5, tau)
			got := batch[p]
			if len(got) != len(want) {
				t.Fatalf("tau=%v probe %d: %d hits, Search %d", tau, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("tau=%v probe %d hit %d: %+v != %+v", tau, p, i, got[i], want[i])
				}
			}
		}
	}
}
