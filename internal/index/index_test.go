package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func unit(rng *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}

// clustered generates vectors around nc well-separated anchors, the
// geometry IVF is designed for.
func clustered(rng *rand.Rand, n, nc, d int, spread float64) [][]float32 {
	anchors := make([][]float32, nc)
	for i := range anchors {
		anchors[i] = unit(rng, d)
	}
	out := make([][]float32, n)
	for i := range out {
		a := anchors[i%nc]
		v := vecmath.Clone(a)
		for j := range v {
			v[j] += float32(rng.NormFloat64() * spread)
		}
		vecmath.Normalize(v)
		out[i] = v
	}
	return out
}

func TestFlatAddSearchRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFlat(16)
	vecs := make([][]float32, 20)
	for i := range vecs {
		vecs[i] = unit(rng, 16)
		if err := f.Add(i, vecs[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if f.Len() != 20 {
		t.Fatalf("Len = %d, want 20", f.Len())
	}
	hits := f.Search(vecs[7], 3, 0.99)
	if len(hits) != 1 || hits[0].ID != 7 {
		t.Fatalf("Search(self) = %v", hits)
	}
	f.Remove(7)
	if f.Len() != 19 {
		t.Fatalf("Len after remove = %d", f.Len())
	}
	if hits := f.Search(vecs[7], 3, 0.99); len(hits) != 0 {
		t.Fatalf("removed vector still found: %v", hits)
	}
	// Other IDs still resolve after the swap-delete.
	for i := 0; i < 20; i++ {
		if i == 7 {
			continue
		}
		hits := f.Search(vecs[i], 1, 0.99)
		if len(hits) != 1 || hits[0].ID != i {
			t.Fatalf("vector %d lost after remove: %v", i, hits)
		}
	}
}

func TestFlatRejectsDuplicateAndWrongDim(t *testing.T) {
	f := NewFlat(4)
	v := []float32{1, 0, 0, 0}
	if err := f.Add(1, v); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(1, v); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := f.Add(2, []float32{1, 0}); err == nil {
		t.Fatal("wrong-dim vector accepted")
	}
	f.Remove(99) // absent id: no-op
}

func TestFlatTopKOrdering(t *testing.T) {
	f := NewFlat(4)
	f.Add(0, []float32{1, 0, 0, 0})
	f.Add(1, []float32{0.9, 0.1, 0, 0})
	f.Add(2, []float32{0, 1, 0, 0})
	probe := []float32{1, 0, 0, 0}
	hits := f.Search(probe, 2, -1)
	if len(hits) != 2 || hits[0].ID != 0 || hits[1].ID != 1 {
		t.Fatalf("Search ordering = %v", hits)
	}
}

func TestIVFExactBeforeTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := NewIVF(16, IVFConfig{NList: 4, NProbe: 1, TrainSize: 1000})
	vecs := clustered(rng, 50, 5, 16, 0.1)
	for i, v := range vecs {
		if err := x.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if x.Trained() {
		t.Fatal("index trained before threshold")
	}
	hits := x.Search(vecs[3], 1, 0.99)
	if len(hits) != 1 || hits[0].ID != 3 {
		t.Fatalf("bootstrap search = %v", hits)
	}
}

func TestIVFAutoTrainAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := NewIVF(32, IVFConfig{NList: 8, NProbe: 3, TrainSize: 100, Seed: 5})
	vecs := clustered(rng, 400, 8, 32, 0.15)
	for i, v := range vecs {
		if err := x.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if !x.Trained() {
		t.Fatal("index did not auto-train")
	}
	if x.Len() != 400 {
		t.Fatalf("Len = %d, want 400", x.Len())
	}
	// Self-search must find the vector (it lives in the nearest list).
	found := 0
	for i := 0; i < 100; i++ {
		hits := x.Search(vecs[i], 1, 0.99)
		if len(hits) == 1 && hits[0].ID == i {
			found++
		}
	}
	if found < 95 {
		t.Fatalf("self-recall = %d/100, want >= 95", found)
	}
}

// IVF recall vs the exact Flat result on clustered data.
func TestIVFRecallAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 32
	vecs := clustered(rng, 1000, 16, dim, 0.2)
	flat := NewFlat(dim)
	ivf := NewIVF(dim, IVFConfig{NList: 16, NProbe: 4, TrainSize: 200, Seed: 6})
	for i, v := range vecs {
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	agree := 0
	total := 100
	for q := 0; q < total; q++ {
		probe := unit(rng, dim)
		// Blend toward a stored vector so there is a meaningful neighbour.
		vecmath.Axpy(2, vecs[q*7%len(vecs)], probe)
		vecmath.Normalize(probe)
		exact := flat.Search(probe, 1, -1)
		approx := ivf.Search(probe, 1, -1)
		if len(exact) == 1 && len(approx) == 1 && exact[0].ID == approx[0].ID {
			agree++
		}
	}
	if agree < 85 {
		t.Fatalf("IVF top-1 recall = %d/%d, want >= 85", agree, total)
	}
}

func TestIVFNProbeEqualsNListIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim := 16
	vecs := clustered(rng, 300, 6, dim, 0.3)
	flat := NewFlat(dim)
	ivf := NewIVF(dim, IVFConfig{NList: 10, NProbe: 10, TrainSize: 50, Seed: 8})
	for i, v := range vecs {
		flat.Add(i, v)
		ivf.Add(i, v)
	}
	for q := 0; q < 50; q++ {
		probe := unit(rng, dim)
		exact := flat.Search(probe, 5, 0.3)
		approx := ivf.Search(probe, 5, 0.3)
		if len(exact) != len(approx) {
			t.Fatalf("probe %d: exact %d hits, full-probe IVF %d", q, len(exact), len(approx))
		}
		for i := range exact {
			if exact[i].ID != approx[i].ID {
				t.Fatalf("probe %d: hit %d differs: %v vs %v", q, i, exact[i], approx[i])
			}
		}
	}
}

func TestIVFRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := NewIVF(16, IVFConfig{NList: 4, NProbe: 4, TrainSize: 20, Seed: 10})
	vecs := clustered(rng, 100, 4, 16, 0.2)
	for i, v := range vecs {
		x.Add(i, v)
	}
	x.Remove(42)
	x.Remove(42) // double-remove: no-op
	if x.Len() != 99 {
		t.Fatalf("Len = %d, want 99", x.Len())
	}
	if hits := x.Search(vecs[42], 1, 0.999); len(hits) == 1 && hits[0].ID == 42 {
		t.Fatal("removed vector still indexed")
	}
	// All other vectors survive.
	for i := 0; i < 100; i++ {
		if i == 42 {
			continue
		}
		hits := x.Search(vecs[i], 1, 0.999)
		if len(hits) != 1 || hits[0].ID != i {
			t.Fatalf("vector %d lost after Remove(42)", i)
		}
	}
}

func TestIVFDuplicateID(t *testing.T) {
	x := NewIVF(4, IVFConfig{NList: 2, NProbe: 2, TrainSize: 2, Seed: 1})
	v := []float32{1, 0, 0, 0}
	x.Add(1, v)
	x.Add(2, []float32{0, 1, 0, 0}) // triggers training at size 2
	if !x.Trained() {
		t.Fatal("expected training at threshold")
	}
	if err := x.Add(1, v); err == nil {
		t.Fatal("duplicate id accepted after training")
	}
}

func TestIVFEmptySearch(t *testing.T) {
	x := NewIVF(8, IVFConfig{})
	if hits := x.Search(make([]float32, 8), 5, 0); len(hits) != 0 {
		t.Fatalf("empty index returned %v", hits)
	}
}

func benchmarkSearch(b *testing.B, idx Index, dim, n int) {
	rng := rand.New(rand.NewSource(11))
	vecs := clustered(rng, n, 32, dim, 0.2)
	for i, v := range vecs {
		if err := idx.Add(i, v); err != nil {
			b.Fatal(err)
		}
	}
	if ivf, ok := idx.(*IVF); ok && !ivf.Trained() {
		ivf.Train()
	}
	probe := unit(rng, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(probe, 5, 0.5)
	}
}

func BenchmarkFlat768x10k(b *testing.B) { benchmarkSearch(b, NewFlat(768), 768, 10000) }
func BenchmarkIVF768x10k(b *testing.B) {
	benchmarkSearch(b, NewIVF(768, IVFConfig{NList: 100, NProbe: 8, Seed: 1}), 768, 10000)
}

func BenchmarkFlat768x50k(b *testing.B) { benchmarkSearch(b, NewFlat(768), 768, 50000) }
func BenchmarkIVF768x50k(b *testing.B) {
	benchmarkSearch(b, NewIVF(768, IVFConfig{NList: 224, NProbe: 12, Seed: 1}), 768, 50000)
}

func BenchmarkHNSW768x10k(b *testing.B) {
	benchmarkSearch(b, NewHNSW(768, HNSWConfig{M: 16, EfConstruction: 64, EfSearch: 96, Seed: 1}), 768, 10000)
}
func BenchmarkHNSWInt8_768x10k(b *testing.B) {
	benchmarkSearch(b, NewHNSW(768, HNSWConfig{M: 16, EfConstruction: 64, EfSearch: 96, Seed: 1, Quantized: true}), 768, 10000)
}

func ExampleIVF() {
	rng := rand.New(rand.NewSource(1))
	idx := NewIVF(8, IVFConfig{NList: 4, NProbe: 2, TrainSize: 16, Seed: 1})
	for i := 0; i < 32; i++ {
		idx.Add(i, unit(rng, 8))
	}
	fmt.Println("trained:", idx.Trained(), "stored:", idx.Len())
	// Output: trained: true stored: 32
}
