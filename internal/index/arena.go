package index

import "repro/internal/vecmath"

// rowArena is the contiguous row store shared by Flat's leader groups
// and IVF's inverted lists: ids, row-major vectors, per-row norms and
// pivot distances (‖row − pivot‖ + slack), all parallel. Rows append
// densely and swap-delete on removal, so a scan is one linear pass, and
// the single scanBounded implementation below is the only place the
// rigorous tau bound is applied per row — Flat and IVF cannot drift
// apart on the logic their exactness guarantees depend on.
type rowArena struct {
	ids      []int
	vecs     []float32 // row-major, len(ids) × dim
	norms    []float32
	deltas   []float32
	deltaMax float32 // ≥ max(deltas); stale-high after removals (safe)
}

// add appends a row.
func (a *rowArena) add(id int, vec []float32, norm, delta float32) {
	a.ids = append(a.ids, id)
	a.vecs = append(a.vecs, vec...)
	a.norms = append(a.norms, norm)
	a.deltas = append(a.deltas, delta)
	if delta > a.deltaMax {
		a.deltaMax = delta
	}
}

// swapDelete removes row i, moving the last row into its place. It
// returns the id that moved into position i (and whether a move
// happened) so callers can fix their position maps. The vacated tail
// row is zeroed so the removed vector is not reachable through the
// backing array.
func (a *rowArena) swapDelete(i, dim int) (movedID int, moved bool) {
	last := len(a.ids) - 1
	if i != last {
		a.ids[i] = a.ids[last]
		copy(a.vecs[i*dim:(i+1)*dim], a.vecs[last*dim:(last+1)*dim])
		a.norms[i] = a.norms[last]
		a.deltas[i] = a.deltas[last]
		movedID, moved = a.ids[i], true
	}
	vecmath.Zero(a.vecs[last*dim : (last+1)*dim])
	a.ids = a.ids[:last]
	a.vecs = a.vecs[:last*dim]
	a.norms = a.norms[:last]
	a.deltas = a.deltas[:last]
	return movedID, moved
}

// scanBounded appends the arena's hits ≥ tau to hits under the
// Cauchy–Schwarz pivot bound: the whole arena is skipped when even its
// loosest row cannot reach tau, individual rows are skipped on their
// own distance bound, and surviving dense arenas go through the blocked
// kernel (sparse survivors through individual dots). Every returned
// score is a Dot-ordered product — bit-identical to a brute-force scan.
// scores is the caller's pooled scratch, grown in place as needed.
func (a *rowArena) scanBounded(vec []float32, dim int, pivotDot, pnorm, tau, thr float32, scores *[]float32, hits []Hit) []Hit {
	rows := len(a.ids)
	if rows == 0 || pivotDot+pnorm*a.deltaMax < thr {
		return hits
	}
	survivors := 0
	for _, d := range a.deltas {
		if pivotDot+pnorm*d >= thr {
			survivors++
		}
	}
	if survivors == 0 {
		return hits
	}
	if 2*survivors >= rows {
		// Most rows need scoring: one blocked pass over the whole arena
		// beats per-row calls, and the extra scores are filtered by tau.
		if cap(*scores) < rows {
			*scores = make([]float32, rows+rows/2+8)
		}
		out := (*scores)[:rows]
		vecmath.ScanDot(vec, a.vecs, out)
		for i, s := range out {
			if s >= tau {
				hits = append(hits, Hit{ID: a.ids[i], Score: s})
			}
		}
		return hits
	}
	for i, d := range a.deltas {
		if pivotDot+pnorm*d < thr {
			continue
		}
		if s := vecmath.Dot(vec, a.vecs[i*dim:(i+1)*dim]); s >= tau {
			hits = append(hits, Hit{ID: a.ids[i], Score: s})
		}
	}
	return hits
}
