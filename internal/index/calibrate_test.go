package index

import "testing"

func TestCalibrateReturnsPositive(t *testing.T) {
	ns := Calibrate()
	if ns <= 0 {
		t.Fatalf("Calibrate() = %v, want > 0", ns)
	}
	// The workload is 4096×64 multiply-adds; even a heroic machine needs
	// microseconds and even a throttled CI runner finishes well under a
	// second per sweep.
	if ns < 100 || ns > 1e9 {
		t.Fatalf("Calibrate() = %.0f ns/sweep, outside any plausible machine speed", ns)
	}
}

func TestTierThresholds(t *testing.T) {
	// Degenerate inputs fall back to the static defaults (signalled by
	// zeros, which NewAdaptive then normalises).
	if f, i := TierThresholds(0, 64); f != 0 || i != 0 {
		t.Fatalf("TierThresholds(0, 64) = (%d, %d), want (0, 0)", f, i)
	}
	if f, i := TierThresholds(50_000, 0); f != 0 || i != 0 {
		t.Fatalf("TierThresholds(_, 0) = (%d, %d), want (0, 0)", f, i)
	}

	fastFlat, fastIVF := TierThresholds(20_000, 64)
	slowFlat, slowIVF := TierThresholds(2_000_000, 64)
	if fastFlat < slowFlat || fastIVF < slowIVF {
		t.Fatalf("faster machine must not lower thresholds: fast (%d, %d) vs slow (%d, %d)",
			fastFlat, fastIVF, slowFlat, slowIVF)
	}
	// Clamps: the ladder always has room for every tier, whatever the
	// measurement says.
	for _, calNs := range []float64{1, 20_000, 2_000_000, 1e12} {
		for _, dim := range []int{8, 64, 768} {
			flatMax, ivfMax := TierThresholds(calNs, dim)
			if flatMax < 1024 || flatMax > 1<<17 {
				t.Fatalf("TierThresholds(%.0f, %d) flatMax = %d outside clamp band", calNs, dim, flatMax)
			}
			if ivfMax < 4*flatMax || ivfMax > 1<<20 {
				t.Fatalf("TierThresholds(%.0f, %d) ivfMax = %d outside clamp band (flatMax %d)", calNs, dim, ivfMax, flatMax)
			}
		}
	}
	// Higher dimensionality makes rows costlier, so thresholds shrink.
	f64, _ := TierThresholds(50_000, 64)
	f768, _ := TierThresholds(50_000, 768)
	if f768 > f64 {
		t.Fatalf("768-dim flatMax %d exceeds 64-dim flatMax %d", f768, f64)
	}
}
