package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomHits generates n hits with deliberately colliding scores so ties
// are exercised.
func randomHits(rng *rand.Rand, n int) []Hit {
	hs := make([]Hit, n)
	for i := range hs {
		hs[i] = Hit{ID: i, Score: float32(rng.Intn(n/4+1)) / float32(n/4+1)}
	}
	rng.Shuffle(n, func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
	return hs
}

func TestTopKHitsMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 5, 33, 100, 1000} {
		for _, k := range []int{0, 1, 3, 10, 64, 100, 2000} {
			hs := randomHits(rng, n)
			want := make([]Hit, n)
			copy(want, hs)
			sortHits(want)
			if len(want) > k {
				want = want[:k]
			}
			got := topKHits(hs, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: %d hits, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: hit %d = %+v, want %+v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// insertionTopK is the pre-heap implementation kept for the benchmark:
// full insertion sort, then truncate. O(n·k) once candidates mostly
// arrive out of order, against the heap's O(n log k).
func insertionTopK(hs []Hit, k int) []Hit {
	sortHits(hs)
	if len(hs) > k {
		hs = hs[:k]
	}
	return hs
}

// BenchmarkTopK shows the bounded-heap selection winning from k=64 up —
// the satellite claim. Candidate counts model a probe over a large tenant
// (every entry above tau reaches the selector).
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{4096, 16384} {
		for _, k := range []int{64, 256} {
			src := randomHits(rng, n)
			buf := make([]Hit, n)
			b.Run(fmt.Sprintf("heap/n%d/k%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(buf, src)
					topKHits(buf, k)
				}
			})
			b.Run(fmt.Sprintf("insertion/n%d/k%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(buf, src)
					insertionTopK(buf, k)
				}
			})
		}
	}
}
