package index

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestGoldenRecall pins recall@10 on a fixed-seed corpus for every
// approximate configuration, so a parameter regression (smaller ef, a
// broken neighbor heuristic, a mis-tuned nprobe) fails loudly here
// instead of silently degrading the serving hit ratio.
//
// The floors are the measured recall minus a 0.02 safety margin. If a
// deliberate change improves recall, re-measure (go test -run GoldenRecall
// -v prints the observed values) and raise the floors; never lower a
// floor to make a regression pass.
func TestGoldenRecall(t *testing.T) {
	const (
		n       = 4000
		dim     = 32
		queries = 200
		k       = 10
		seed    = 1234
	)
	golden := []struct {
		name   string
		build  func() Index
		golden float64 // measured recall@10 at the pinned seed
	}{
		{
			name:   "ivf-nlist64-nprobe8",
			build:  func() Index { return NewIVF(dim, IVFConfig{NList: 64, NProbe: 8, Seed: seed}) },
			golden: 0.831,
		},
		{
			name:   "hnsw-m16-ef96",
			build:  func() Index { return NewHNSW(dim, HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 96, Seed: seed}) },
			golden: 1.000,
		},
		{
			name: "hnsw-int8-m16-ef96",
			build: func() Index {
				return NewHNSW(dim, HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 96, Seed: seed, Quantized: true})
			},
			golden: 0.999,
		},
		{
			name: "hnsw-m8-ef32",
			build: func() Index {
				return NewHNSW(dim, HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 32, Seed: seed})
			},
			golden: 0.977,
		},
		{
			name: "adaptive-promoted",
			build: func() Index {
				return NewAdaptive(dim, AdaptiveConfig{
					FlatMax: 500, IVFMax: 1500,
					IVF:  IVFConfig{NList: 32, NProbe: 8, Seed: seed},
					HNSW: HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 96, Seed: seed},
				})
			},
			golden: 1.000,
		},
	}

	// Overlapping clusters (total noise norm ~0.9) make the neighbor
	// problem genuinely hard, so the measured recalls sit below 1.0 and
	// parameter regressions move them.
	rng := rand.New(rand.NewSource(seed))
	anchors := makeAnchors(rng, 256, dim)
	loose := func() []float32 {
		return dataset.PerturbUnit(rng, anchors[rng.Intn(len(anchors))], 0.9)
	}
	corpus := make([][]float32, n)
	for i := range corpus {
		corpus[i] = loose()
	}
	probes := make([][]float32, queries)
	for i := range probes {
		probes[i] = loose()
	}
	truth := NewFlat(dim)
	for i, v := range corpus {
		truth.Add(i, v)
	}

	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			idx := g.build()
			for i, v := range corpus {
				if err := idx.Add(i, v); err != nil {
					t.Fatal(err)
				}
			}
			if ivf, ok := idx.(*IVF); ok && !ivf.Trained() {
				ivf.Train()
			}
			if a, ok := idx.(*Adaptive); ok {
				a.WaitMigration()
				if tier := a.Tier(); tier != "hnsw" {
					t.Fatalf("adaptive stuck on tier %s", tier)
				}
			}
			var inter, total int
			for _, q := range probes {
				want := truth.Search(q, k, -1)
				got := idx.Search(q, k, -1)
				in := make(map[int]bool, len(got))
				for _, h := range got {
					in[h.ID] = true
				}
				for _, h := range want {
					total++
					if in[h.ID] {
						inter++
					}
				}
			}
			recall := float64(inter) / float64(total)
			t.Logf("%s recall@%d = %.3f (golden %.3f)", g.name, k, recall, g.golden)
			if recall < g.golden-0.02 {
				t.Fatalf("%s: recall@%d %.3f regressed below golden %.3f − 0.02", g.name, k, recall, g.golden)
			}
		})
	}
}
