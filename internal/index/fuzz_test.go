package index

import (
	"math"
	"testing"

	"repro/internal/vecmath"
)

// FuzzSearchParity interprets the fuzz input as an op program run against
// Flat, HNSW and a brute-force oracle: Flat must match the oracle
// exactly (IDs, order, scores), HNSW must uphold the result invariants
// (no removed IDs, ordered, tau respected, true scores). Run as a smoke
// in CI (-fuzz=FuzzSearchParity -fuzztime=30s) and at will locally.
func FuzzSearchParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 128, 64, 32, 16, 8, 4, 2})
	f.Add([]byte{9, 9, 9, 9, 1, 1, 1, 1, 77, 77, 77, 77, 200, 200, 200, 200, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const dim = 8
		if len(data) > 512 {
			data = data[:512] // bound per-input work
		}
		flat := NewFlat(dim)
		hnsw := NewHNSW(dim, HNSWConfig{M: 4, EfConstruction: 20, EfSearch: 24, Seed: 9})
		o := newOracle()
		var ids []int
		nextID := 0

		next := func(n int) []byte {
			if len(data) < n {
				return nil
			}
			b := data[:n]
			data = data[n:]
			return b
		}
		vecFrom := func(b []byte) []float32 {
			v := make([]float32, dim)
			for i := range v {
				v[i] = float32(int(b[i])-128) / 128
			}
			if vecmath.Normalize(v) == 0 {
				v[0] = 1
			}
			return v
		}

		for {
			op := next(1)
			if op == nil {
				break
			}
			switch op[0] % 4 {
			case 0, 1: // add
				b := next(dim)
				if b == nil {
					return
				}
				v := vecFrom(b)
				id := nextID
				nextID++
				if err := flat.Add(id, v); err != nil {
					t.Fatalf("flat.Add: %v", err)
				}
				if err := hnsw.Add(id, v); err != nil {
					t.Fatalf("hnsw.Add: %v", err)
				}
				o.add(id, v)
				ids = append(ids, id)
			case 2: // remove
				b := next(1)
				if b == nil || len(ids) == 0 {
					return
				}
				i := int(b[0]) % len(ids)
				id := ids[i]
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				flat.Remove(id)
				hnsw.Remove(id)
				o.remove(id)
			case 3: // search
				b := next(dim + 2)
				if b == nil {
					return
				}
				q := vecFrom(b[:dim])
				k := int(b[dim])%8 + 1
				tau := float32(int(b[dim+1])-128) / 128
				want := o.search(q, k, tau)
				got := flat.Search(q, k, tau)
				if len(got) != len(want) {
					t.Fatalf("flat: %d hits, oracle %d (k=%d tau=%f)", len(got), len(want), k, tau)
				}
				for i := range got {
					if got[i].ID != want[i].ID || absDiff(got[i].Score, want[i].Score) > 1e-5 {
						t.Fatalf("flat hit %d = %+v, oracle %+v", i, got[i], want[i])
					}
				}
				hg := hnsw.Search(q, k, tau)
				if len(hg) > k {
					t.Fatalf("hnsw: %d hits for k=%d", len(hg), k)
				}
				seen := make(map[int]bool, len(hg))
				for i, h := range hg {
					if seen[h.ID] {
						t.Fatalf("hnsw: duplicate id %d", h.ID)
					}
					seen[h.ID] = true
					if !o.has(h.ID) {
						t.Fatalf("hnsw: removed id %d leaked", h.ID)
					}
					if h.Score < tau {
						t.Fatalf("hnsw: hit %+v below tau %f", h, tau)
					}
					if s := o.score(h.ID, q); absDiff(h.Score, s) > 1e-5 || math.IsNaN(float64(h.Score)) {
						t.Fatalf("hnsw: id %d score %f, true %f", h.ID, h.Score, s)
					}
					if i > 0 && hitBetter(h, hg[i-1]) {
						t.Fatalf("hnsw: unordered %+v before %+v", hg[i-1], h)
					}
				}
			}
		}
		if flat.Len() != len(o.vecs) || hnsw.Len() != len(o.vecs) {
			t.Fatalf("Len drift: flat %d hnsw %d oracle %d", flat.Len(), hnsw.Len(), len(o.vecs))
		}
	})
}

// FuzzMultiSearchParity interprets the fuzz input as an op program of
// adds, removes and batched searches: every MultiSearchAppend over Flat
// and HNSW must be bit-identical — IDs, scores, order — to running the
// same probes through Search one at a time. Run as a smoke in CI
// (-fuzz=FuzzMultiSearchParity -fuzztime=30s) and at will locally.
func FuzzMultiSearchParity(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 0, 9, 9, 9, 9, 9, 9, 9, 9, 3, 2, 100})
	f.Add([]byte{0, 200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 128, 64, 32, 16, 8, 4, 2, 3, 3, 40})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 2, 0, 3, 1, 180})
	f.Fuzz(func(t *testing.T, data []byte) {
		const dim = 8
		if len(data) > 512 {
			data = data[:512] // bound per-input work
		}
		flat := NewFlat(dim)
		hnsw := NewHNSW(dim, HNSWConfig{M: 4, EfConstruction: 20, EfSearch: 24, Seed: 9})
		var ids []int
		nextID := 0

		next := func(n int) []byte {
			if len(data) < n {
				return nil
			}
			b := data[:n]
			data = data[n:]
			return b
		}
		vecFrom := func(b []byte) []float32 {
			v := make([]float32, dim)
			for i := range v {
				v[i] = float32(int(b[i])-128) / 128
			}
			if vecmath.Normalize(v) == 0 {
				v[0] = 1
			}
			return v
		}
		parity := func(name string, idx Index, ms MultiSearcher, probes *vecmath.Matrix, k int, tau float32) {
			dst := make([][]Hit, probes.Rows)
			ms.MultiSearchAppend(probes, k, tau, dst)
			for p := 0; p < probes.Rows; p++ {
				want := idx.Search(probes.Row(p), k, tau)
				if len(dst[p]) != len(want) {
					t.Fatalf("%s probe %d: %d batched hits, %d sequential (k=%d tau=%f)", name, p, len(dst[p]), len(want), k, tau)
				}
				for i := range want {
					if dst[p][i] != want[i] {
						t.Fatalf("%s probe %d hit %d: batched %+v, sequential %+v", name, p, i, dst[p][i], want[i])
					}
				}
			}
		}

		for {
			op := next(1)
			if op == nil {
				break
			}
			switch op[0] % 4 {
			case 0, 1: // add
				b := next(dim)
				if b == nil {
					return
				}
				v := vecFrom(b)
				id := nextID
				nextID++
				if err := flat.Add(id, v); err != nil {
					t.Fatalf("flat.Add: %v", err)
				}
				if err := hnsw.Add(id, v); err != nil {
					t.Fatalf("hnsw.Add: %v", err)
				}
				ids = append(ids, id)
			case 2: // remove
				b := next(1)
				if b == nil || len(ids) == 0 {
					return
				}
				i := int(b[0]) % len(ids)
				id := ids[i]
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				flat.Remove(id)
				hnsw.Remove(id)
			default: // batched search
				hdr := next(3)
				if hdr == nil {
					return
				}
				m := int(hdr[0])%4 + 1
				k := int(hdr[1])%8 + 1
				tau := float32(int(hdr[2])-128) / 128
				b := next(m * dim)
				if b == nil {
					return
				}
				probes := vecmath.NewMatrix(m, dim)
				for p := 0; p < m; p++ {
					copy(probes.Row(p), vecFrom(b[p*dim:(p+1)*dim]))
				}
				parity("flat", flat, flat, probes, k, tau)
				parity("hnsw", hnsw, hnsw, probes, k, tau)
			}
		}
	})
}
