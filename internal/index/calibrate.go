package index

import "time"

// Startup micro-calibration for the Adaptive tier thresholds. The
// hard-coded FlatMax/IVFMax defaults encode one machine's crossover
// points; on a faster box the exact Flat scan stays competitive far
// longer, and on a slow shared runner it falls behind much earlier. Fast
// to run (~tens of milliseconds), Calibrate measures the same fixed
// workload benchrunner records as calibration_ns in BENCH_serving.json —
// a scalar dot-product sweep over a private array, deliberately not a
// call into the index kernels, so the yardstick cannot move with the
// code under test — and TierThresholds converts that measurement into
// promotion points that track actual machine speed.

const (
	calibRows = 4096
	calibDim  = 64

	// flatScanBudgetNs is the worst-case latency budget for one exact
	// unpruned Flat scan: while a full scan of the tenant fits this
	// budget, exact search is cheap enough that approximate tiers are not
	// worth their recall loss. The Cauchy–Schwarz pruning only makes the
	// real scan faster, so the derived threshold is conservative.
	flatScanBudgetNs = 150_000
	// ivfProbeBudgetNs is the equivalent budget for one IVF probe pass
	// (centroid scan + nprobe list scans); past it the graph traversal's
	// logarithmic work wins despite its constants.
	ivfProbeBudgetNs = 600_000
)

// Calibrate measures the reference workload — a 4-accumulator scalar
// dot-product sweep of 4096 rows × 64 dims, identical to the one behind
// benchrunner's calibration_ns field — and returns its ns per sweep.
func Calibrate() float64 {
	data := make([]float32, calibRows*calibDim)
	x := float32(1)
	for i := range data {
		x = x*1.0001 + 0.001 // deterministic, denormal-free fill
		data[i] = x
	}
	probe := data[:calibDim]
	out := make([]float32, calibRows)
	sweep := func() {
		for row := 0; row < calibRows; row++ {
			var s0, s1, s2, s3 float32
			v := data[row*calibDim : (row+1)*calibDim]
			for j := 0; j+4 <= calibDim; j += 4 {
				s0 += probe[j] * v[j]
				s1 += probe[j+1] * v[j+1]
				s2 += probe[j+2] * v[j+2]
				s3 += probe[j+3] * v[j+3]
			}
			out[row] = s0 + s1 + s2 + s3
		}
	}
	sweep() // warm the array and the branch predictor
	const minRun = 10 * time.Millisecond
	iters := 4
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			sweep()
		}
		elapsed := time.Since(start)
		if elapsed >= minRun {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		// Scale toward the target run length with 2× headroom so the next
		// attempt almost always lands past it.
		next := iters * 2
		if elapsed > 0 {
			if est := int(float64(iters) * 2 * float64(minRun) / float64(elapsed)); est > next {
				next = est
			}
		}
		iters = next
	}
}

// TierThresholds converts a Calibrate measurement into Adaptive
// promotion thresholds for dim-dimensional vectors. The model costs a
// row at calNs/(4096·64) per dimension; FlatMax is the largest tenant
// whose worst-case unpruned scan fits flatScanBudgetNs, and IVFMax the
// largest whose IVF probe pass — centroid scan plus nprobe list scans at
// the √(4n)-list sizing NewAdaptive uses, ≈6·√n rows — fits
// ivfProbeBudgetNs. Both are clamped to sane bands ([1024, 128k] and
// [4·FlatMax, 1M]) so a wildly throttled or idle-turbo measurement can
// never produce a degenerate ladder.
func TierThresholds(calNs float64, dim int) (flatMax, ivfMax int) {
	if dim <= 0 || calNs <= 0 {
		return 0, 0 // let NewAdaptive apply its static defaults
	}
	rowNs := calNs / float64(calibRows*calibDim) * float64(dim)
	flatMax = clampInt(int(flatScanBudgetNs/rowNs), 1024, 1<<17)
	sqrtN := ivfProbeBudgetNs / (6 * rowNs)
	ivfMax = clampInt(int(sqrtN*sqrtN), 4*flatMax, 1<<20)
	return flatMax, ivfMax
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
