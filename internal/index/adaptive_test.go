package index

import (
	"math/rand"
	"sort"
	"testing"
)

// TestAdaptiveThresholdNormalization pins the NewAdaptive threshold
// hardening: the IVFMax default must never silently disable the IVF
// tier just because FlatMax was raised past it, and negative IVFMax is
// normalised to the canonical skip-IVF marker.
func TestAdaptiveThresholdNormalization(t *testing.T) {
	cases := []struct {
		name            string
		cfg             AdaptiveConfig
		flatMax, ivfMax int
	}{
		{"defaults", AdaptiveConfig{}, 4096, 65536},
		{"flatmax-below-default-ivfmax", AdaptiveConfig{FlatMax: 10000}, 10000, 65536},
		{"flatmax-at-default-ivfmax", AdaptiveConfig{FlatMax: 65536}, 65536, 4 * 65536},
		{"flatmax-past-default-ivfmax", AdaptiveConfig{FlatMax: 100000}, 100000, 400000},
		{"explicit-skip-equal", AdaptiveConfig{FlatMax: 150, IVFMax: 150}, 150, 150},
		{"explicit-skip-below", AdaptiveConfig{FlatMax: 150, IVFMax: 10}, 150, 10},
		{"negative-skip", AdaptiveConfig{FlatMax: 150, IVFMax: -1}, 150, 150},
		{"negative-skip-default-flatmax", AdaptiveConfig{IVFMax: -7}, 4096, 4096},
		{"full-ladder", AdaptiveConfig{FlatMax: 150, IVFMax: 500}, 150, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAdaptive(8, tc.cfg)
			flatMax, ivfMax := a.Thresholds()
			if flatMax != tc.flatMax || ivfMax != tc.ivfMax {
				t.Fatalf("Thresholds() = (%d, %d), want (%d, %d)", flatMax, ivfMax, tc.flatMax, tc.ivfMax)
			}
		})
	}
}

// TestAdaptiveSkipIVFBoundary drives the skip-IVF mode at the exact
// boundary count: FlatMax entries stay flat, one more promotes straight
// to HNSW with no intermediate IVF tier.
func TestAdaptiveSkipIVFBoundary(t *testing.T) {
	const dim, flatMax = 8, 150
	rng := rand.New(rand.NewSource(11))
	a := NewAdaptive(dim, AdaptiveConfig{
		FlatMax: flatMax,
		IVFMax:  -1, // skip IVF
		HNSW:    HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 80, Seed: 7},
	})
	for id := 0; id < flatMax; id++ {
		if err := a.Add(id, unit(rng, dim)); err != nil {
			t.Fatalf("Add(%d): %v", id, err)
		}
	}
	a.WaitMigration()
	if tier := a.Tier(); tier != "flat" {
		t.Fatalf("at exactly FlatMax entries: tier = %q, want flat", tier)
	}
	if err := a.Add(flatMax, unit(rng, dim)); err != nil {
		t.Fatalf("Add(%d): %v", flatMax, err)
	}
	a.WaitMigration()
	if tier := a.Tier(); tier != "hnsw" {
		t.Fatalf("one past FlatMax in skip-IVF mode: tier = %q, want hnsw", tier)
	}
	if n := a.Len(); n != flatMax+1 {
		t.Fatalf("Len after promotion = %d, want %d", n, flatMax+1)
	}
}

// TestAdaptiveDoublePromotionChain is the satellite regression for the
// promotion state machine: a burst of Adds (and Removes) landing while
// the Flat→IVF migration is in flight pushes the entry count past
// IVFMax at the exact boundary, so the chained IVF→HNSW promotion fires
// from inside migrate's under-lock tail. Every journaled write must
// survive both hops — the final ID set is compared exactly against an
// oracle. Run under -race this also exercises journal/migrate
// synchronisation.
func TestAdaptiveDoublePromotionChain(t *testing.T) {
	const dim, flatMax, ivfMax = 8, 150, 500
	rng := rand.New(rand.NewSource(23))
	a := NewAdaptive(dim, AdaptiveConfig{
		FlatMax: flatMax,
		IVFMax:  ivfMax,
		IVF:     IVFConfig{NList: 12, NProbe: 8, Seed: 7},
		HNSW:    HNSWConfig{M: 8, EfConstruction: 60, EfSearch: 80, Seed: 7},
	})
	oracle := map[int][]float32{}
	add := func(id int) {
		v := unit(rng, dim)
		if err := a.Add(id, v); err != nil {
			t.Fatalf("Add(%d): %v", id, err)
		}
		oracle[id] = v
	}
	// Cross FlatMax: the IVF build kicks off in the background.
	for id := 0; id <= flatMax; id++ {
		add(id)
	}
	// Burst while (likely) migrating: remove a mix of snapshot-era and
	// burst-era IDs, and add exactly enough to land one past IVFMax so
	// the chained promotion triggers at the boundary. The interleaving
	// with the background build is timing-dependent — journal replay and
	// direct post-swap writes are both valid paths and both must
	// preserve the ID set.
	for id := flatMax + 1; len(oracle) <= ivfMax; id++ {
		add(id)
		if id%17 == 0 {
			victim := id - 13
			a.Remove(victim)
			delete(oracle, victim)
		}
	}
	a.WaitMigration()
	if tier := a.Tier(); tier != "hnsw" {
		t.Fatalf("after double promotion: tier = %q, want hnsw (len %d)", tier, a.Len())
	}
	if n := a.Len(); n != len(oracle) {
		t.Fatalf("Len = %d, want %d", n, len(oracle))
	}
	got := a.idList()
	sort.Ints(got)
	want := make([]int, 0, len(oracle))
	for id := range oracle {
		want = append(want, id)
	}
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("idList has %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("idList[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The surviving entries must be searchable: exact self-hit for a
	// sample (HNSW is approximate, so probe with a generous k).
	misses := 0
	for id, v := range oracle {
		if id%50 != 0 {
			continue
		}
		found := false
		for _, h := range a.Search(v, 10, 0.99) {
			if h.ID == id {
				found = true
				break
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("%d sampled self-lookups missed after promotion chain", misses)
	}
}
