//go:build race

package index

// raceEnabled disables allocation-budget assertions under the race
// detector: -race makes sync.Pool drop puts deliberately, so pooled
// paths allocate by design there.
const raceEnabled = true
