package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func TestHNSWBasics(t *testing.T) {
	h := NewHNSW(8, HNSWConfig{Seed: 1})
	if hits := h.Search(make([]float32, 8), 5, 0); len(hits) != 0 {
		t.Fatalf("empty index returned %v", hits)
	}
	v := []float32{1, 0, 0, 0, 0, 0, 0, 0}
	if err := h.Add(1, v); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(1, v); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := h.Add(2, []float32{1, 0}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if h.Len() != 1 || h.Dim() != 8 {
		t.Fatalf("Len=%d Dim=%d", h.Len(), h.Dim())
	}
	hits := h.Search(v, 5, 0.5)
	if len(hits) != 1 || hits[0].ID != 1 || hits[0].Score < 0.999 {
		t.Fatalf("self search = %v", hits)
	}
}

// TestHNSWSlotReuse drains the index and refills it: tombstoned slots
// must be recycled and the rebuilt graph fully searchable.
func TestHNSWSlotReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHNSW(16, HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 48, Seed: 2})
	anchors := makeAnchors(rng, 4, 16)
	for round := 0; round < 3; round++ {
		base := round * 100
		vecs := make([][]float32, 100)
		for i := range vecs {
			vecs[i] = tightUnit(rng, anchors)
			if err := h.Add(base+i, vecs[i]); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if h.Len() != 100 {
			t.Fatalf("round %d: Len = %d", round, h.Len())
		}
		for i, v := range vecs {
			hits := h.Search(v, 1, 0.999)
			if len(hits) != 1 || hits[0].ID != base+i {
				t.Fatalf("round %d: entry %d not found: %v", round, base+i, hits)
			}
		}
		for i := range vecs {
			h.Remove(base + i)
		}
		if h.Len() != 0 {
			t.Fatalf("round %d: Len = %d after drain", round, h.Len())
		}
	}
	// All three rounds fit in the first round's slots.
	if got := len(h.nodes); got > 150 {
		t.Fatalf("slot recycling failed: %d slots for 100 live peak", got)
	}
}

// TestHNSWEntryPointRemoval removes nodes until the graph is empty —
// covering entry-point reassignment — then refills and searches.
func TestHNSWEntryPointRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewHNSW(16, HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 48, Seed: 4})
	vecs := make([][]float32, 60)
	for i := range vecs {
		vecs[i] = unit(rng, 16)
		h.Add(i, vecs[i])
	}
	// Remove in insertion order: the entry point (whatever level holds
	// it) is hit eventually; survivors must stay reachable throughout.
	for i := 0; i < 60; i++ {
		h.Remove(i)
		for j := i + 1; j < 60; j += 13 {
			hits := h.Search(vecs[j], 1, 0.999)
			if len(hits) != 1 || hits[0].ID != j {
				t.Fatalf("after removing 0..%d: entry %d unreachable", i, j)
			}
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

// TestHNSWQuantizedRescore verifies the int8 mode reports full-precision
// scores: the tau cut and the returned Score must come from the float32
// rescore, not the quantised traversal estimate.
func TestHNSWQuantizedRescore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := NewHNSW(32, HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 48, Seed: 6, Quantized: true})
	if !h.Quantized() {
		t.Fatal("Quantized() = false")
	}
	vecs := make([][]float32, 200)
	for i := range vecs {
		vecs[i] = unit(rng, 32)
		h.Add(i, vecs[i])
	}
	probe := unit(rng, 32)
	for _, hit := range h.Search(probe, 10, -1) {
		exact := vecmath.Dot(probe, vecs[hit.ID])
		if absDiff(hit.Score, exact) > 1e-6 {
			t.Fatalf("id %d: reported %f, exact %f — rescore must be full precision",
				hit.ID, hit.Score, exact)
		}
	}
}

func ExampleHNSW() {
	h := NewHNSW(4, HNSWConfig{M: 4, EfConstruction: 16, EfSearch: 16, Seed: 1})
	h.Add(0, []float32{1, 0, 0, 0})
	h.Add(1, []float32{0, 1, 0, 0})
	h.Add(2, []float32{0, 0, 1, 0})
	hits := h.Search([]float32{1, 0, 0, 0}, 2, 0.5)
	fmt.Println(len(hits), hits[0].ID)
	// Output: 1 0
}
