package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vecmath"
)

// Adaptive tiers a tenant's index by size: it starts as an exact Flat
// scan (small caches stay exact and allocation-free), promotes to IVF
// once the entry count crosses FlatMax, and to HNSW past IVFMax. Each
// promotion builds the next tier in a background goroutine from a
// snapshot while the current tier keeps serving; writes that land during
// the build are journaled and replayed before the atomic swap, so no
// entry is lost and Search never waits on a migration: readers resolve
// the serving tier through an atomic pointer (never the writer lock), and
// the snapshot copies incrementally — one short read-lock window per
// vector — so neither a writer nor, through RWMutex writer preference,
// any later reader is ever parked behind a long snapshot pass.
//
// The zero-value thresholds give Flat → IVF at 4096 entries and
// IVF → HNSW at 65536 — Flat's parallel scan genuinely wins below the
// first threshold, and IVF's probe-list scan beats graph traversal until
// lists grow long.
type Adaptive struct {
	dim int
	cfg AdaptiveConfig

	// cur is the serving tier, resolved lock-free by readers.
	cur atomic.Pointer[tierRef]

	// mu serialises writers and the migration state below.
	mu        sync.Mutex
	migrating bool       // a background build is in flight
	journal   []tierOp   // writes since the migration snapshot
	done      *sync.Cond // on mu; broadcast when a migration finishes
}

// tierRef pairs the serving index with its tier number for one atomic
// swap.
type tierRef struct {
	idx  Index
	tier int // 0 = Flat, 1 = IVF, 2 = HNSW
}

// tierOp journals one write that happened during a migration build.
type tierOp struct {
	id     int
	vec    []float32 // nil = remove
	remove bool
}

// AdaptiveConfig tunes the tier thresholds and the promoted tiers'
// parameters. Zero values select the defaults.
type AdaptiveConfig struct {
	// FlatMax is the entry count past which the Flat tier promotes to
	// IVF. Default 4096.
	FlatMax int
	// IVFMax is the entry count past which the IVF tier promotes to
	// HNSW. Default 65536 (raised to 4·FlatMax when FlatMax alone is set
	// at or past it, so the default never silently disables IVF). Set
	// IVFMax explicitly at or below FlatMax — negative values are
	// normalised to FlatMax — to skip the IVF tier entirely: Flat then
	// promotes straight to HNSW at FlatMax.
	IVFMax int
	// IVF configures the middle tier (NList/TrainSize are sized from
	// FlatMax when zero, so the promoted index trains immediately).
	IVF IVFConfig
	// HNSW configures the top tier.
	HNSW HNSWConfig
}

// NewAdaptive creates an adaptive index for dim-dimensional unit vectors.
func NewAdaptive(dim int, cfg AdaptiveConfig) *Adaptive {
	if dim <= 0 {
		panic("index: dim must be positive")
	}
	if cfg.FlatMax <= 0 {
		cfg.FlatMax = 4096
	}
	if cfg.IVFMax == 0 {
		// Default the second threshold — but never let the default itself
		// imply skip-IVF: a caller raising only FlatMax past 65536 would
		// otherwise silently lose the middle tier. Skipping IVF stays an
		// explicit choice (IVFMax set at or below FlatMax).
		cfg.IVFMax = 65536
		if cfg.IVFMax <= cfg.FlatMax {
			cfg.IVFMax = 4 * cfg.FlatMax
		}
	}
	if cfg.IVFMax < 0 {
		// Negative values are normalised to the canonical skip-IVF marker
		// so the promotion state machine only ever compares sane counts.
		cfg.IVFMax = cfg.FlatMax
	}
	if cfg.IVF.NList <= 0 {
		// ~√FlatMax lists at promotion time; the index grows past that,
		// but re-training is IVF's own concern.
		cfg.IVF.NList = isqrt(cfg.FlatMax * 4)
	}
	if cfg.IVF.TrainSize <= 0 {
		// Train on the full snapshot the moment the tier is built.
		cfg.IVF.TrainSize = cfg.FlatMax
	}
	a := &Adaptive{dim: dim, cfg: cfg}
	a.cur.Store(&tierRef{idx: NewFlat(dim), tier: 0})
	a.done = sync.NewCond(&a.mu)
	return a
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Dim implements Index.
func (a *Adaptive) Dim() int { return a.dim }

// Len implements Index.
func (a *Adaptive) Len() int { return a.cur.Load().idx.Len() }

// Tier reports the currently serving tier: "flat", "ivf" or "hnsw".
func (a *Adaptive) Tier() string {
	switch a.cur.Load().tier {
	case 0:
		return "flat"
	case 1:
		return "ivf"
	default:
		return "hnsw"
	}
}

// ArenaStats implements ArenaReporter by delegating to whichever tier
// currently serves (every tier implements it).
func (a *Adaptive) ArenaStats() ArenaStats {
	if rep, ok := a.cur.Load().idx.(ArenaReporter); ok {
		return rep.ArenaStats()
	}
	return ArenaStats{}
}

// Thresholds reports the normalised promotion thresholds: the entry
// counts past which Flat promotes (to IVF, or straight to HNSW when
// skip-IVF is in effect) and past which IVF promotes to HNSW.
func (a *Adaptive) Thresholds() (flatMax, ivfMax int) {
	return a.cfg.FlatMax, a.cfg.IVFMax
}

// Migrating reports whether a background promotion is in flight.
func (a *Adaptive) Migrating() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.migrating
}

// WaitMigration blocks until no migration is in flight — deterministic
// sequencing for tests and the load generator.
func (a *Adaptive) WaitMigration() {
	a.mu.Lock()
	for a.migrating {
		a.done.Wait()
	}
	a.mu.Unlock()
}

// Add implements Index.
func (a *Adaptive) Add(id int, vec []float32) error {
	if len(vec) != a.dim {
		return fmt.Errorf("index: vector dim %d, want %d", len(vec), a.dim)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.cur.Load().idx.Add(id, vec); err != nil {
		return err
	}
	if a.migrating {
		a.journal = append(a.journal, tierOp{id: id, vec: vecmath.Clone(vec)})
		return nil
	}
	a.maybePromoteLocked()
	return nil
}

// Remove implements Index.
func (a *Adaptive) Remove(id int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cur.Load().idx.Remove(id)
	if a.migrating {
		a.journal = append(a.journal, tierOp{id: id, remove: true})
	}
}

// Search implements Index, lock-free: the serving tier is an atomic load
// and every tier is internally synchronised, so a migration swap (or a
// writer stalled behind a snapshot) concurrent with a long search is safe
// — the search finishes against the (complete) old tier.
func (a *Adaptive) Search(vec []float32, k int, tau float32) []Hit {
	return a.cur.Load().idx.Search(vec, k, tau)
}

// MultiSearchAppend implements MultiSearcher with the same lock-free
// tier resolution as Search: one atomic load pins the serving tier for
// the whole batch, so every probe in the batch answers against the same
// index even if a migration swaps tiers mid-call.
func (a *Adaptive) MultiSearchAppend(probes *vecmath.Matrix, k int, tau float32, dst [][]Hit) {
	idx := a.cur.Load().idx
	if ms, ok := idx.(MultiSearcher); ok {
		ms.MultiSearchAppend(probes, k, tau, dst)
		return
	}
	for p := 0; p < probes.Rows; p++ {
		dst[p] = append(dst[p], idx.Search(probes.Row(p), k, tau)...)
	}
}

// forEach implements iterable.
func (a *Adaptive) forEach(fn func(id int, vec []float32)) {
	a.cur.Load().idx.(iterable).forEach(fn)
}

// idList implements snapshotter.
func (a *Adaptive) idList() []int { return a.cur.Load().idx.(snapshotter).idList() }

// vecClone implements snapshotter.
func (a *Adaptive) vecClone(id int) []float32 {
	return a.cur.Load().idx.(snapshotter).vecClone(id)
}

// maybePromoteLocked kicks off a background promotion when the current
// tier outgrew its threshold. Callers hold a.mu.
func (a *Adaptive) maybePromoteLocked() {
	ref := a.cur.Load()
	n := ref.idx.Len()
	var next Index
	var nextTier int
	switch {
	case ref.tier == 0 && a.cfg.IVFMax > a.cfg.FlatMax && n > a.cfg.FlatMax:
		next, nextTier = NewIVF(a.dim, a.cfg.IVF), 1
	case ref.tier == 0 && a.cfg.IVFMax <= a.cfg.FlatMax && n > a.cfg.FlatMax:
		next, nextTier = NewHNSW(a.dim, a.cfg.HNSW), 2 // IVF tier disabled
	case ref.tier == 1 && n > a.cfg.IVFMax:
		next, nextTier = NewHNSW(a.dim, a.cfg.HNSW), 2
	default:
		return
	}
	a.migrating = true
	a.journal = a.journal[:0]
	go a.migrate(ref.idx, next, nextTier)
}

// migrate snapshots the current tier and builds the next one entirely
// off a.mu, catches up on journaled writes, and swaps the tier in. The
// snapshot is incremental — one short read lock for the ID list, then one
// per vector copy — so the longest the old tier's lock is ever held is a
// single clone: a concurrent writer queues for microseconds, not for the
// whole O(n·dim) pass (RWMutex writer preference would otherwise park
// every Search behind that writer). Entries that mutate between the
// promotion decision and their copy appear in both the snapshot and the
// journal — applyOps tolerates the duplicate Adds, vanished IDs simply
// skip, and replay order makes the journal's last word win.
func (a *Adaptive) migrate(cur, next Index, nextTier int) {
	snapper := cur.(snapshotter)
	var snap []tierOp
	for _, id := range snapper.idList() {
		if vec := snapper.vecClone(id); vec != nil {
			snap = append(snap, tierOp{id: id, vec: vec})
		}
	}
	applyOps(next, snap)
	// Drain the journal in rounds off-lock until one round's residue is
	// small, then apply that last batch under the lock together with the
	// swap. With a convergent load (writes slower than the new tier can
	// absorb them) the under-lock batch is ≤ finalBatchMax, a
	// milliseconds-scale writer stall; if writes outpace the build
	// indefinitely the round cap forces the swap anyway and the one-time
	// writer stall is proportional to the outstanding backlog — searches
	// stay on the old tier either way.
	const finalBatchMax = 256
	for round := 0; ; round++ {
		a.mu.Lock()
		if len(a.journal) == 0 {
			break
		}
		batch := a.journal
		a.journal = nil
		if len(batch) <= finalBatchMax || round >= 15 {
			applyOps(next, batch)
			break
		}
		a.mu.Unlock()
		applyOps(next, batch)
	}
	// a.mu is held here (both break paths leave it locked).
	a.cur.Store(&tierRef{idx: next, tier: nextTier})
	a.migrating = false
	a.journal = nil
	// The new tier may immediately qualify for the next promotion (a bulk
	// load that blew past IVFMax while the IVF build ran — later Adds only
	// journal during a migration, so the chain can only continue here).
	// Running it before the flag drop is observable keeps WaitMigration
	// from returning mid-chain on a stale Broadcast.
	a.maybePromoteLocked()
	a.mu.Unlock()
	a.done.Broadcast()
}

// applyOps replays ops in order. Add errors are expected and ignored: a
// journaled Add may duplicate a snapshot entry (see migrate), and the
// journal's later ops supersede earlier state either way.
func applyOps(idx Index, ops []tierOp) {
	for _, op := range ops {
		if op.remove {
			idx.Remove(op.id)
		} else {
			idx.Add(op.id, op.vec)
		}
	}
}
