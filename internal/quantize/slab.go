package quantize

import "fmt"

// slabChunkRows mirrors vecmath.SlabChunkRows: codes live in fixed-size
// chunks so rows never move and growth never copies.
const slabChunkRows = 256

// Slab is the int8 twin of vecmath.Slab: a contiguous row-major arena of
// quantised codes with per-row scales, slot-addressed so it can sit next
// to any slot-recycling structure (HNSW stores each node's codes at the
// node's graph slot and reuses slots through its own free list). Rows
// are chunked, so views returned by At stay valid until the slot is
// overwritten.
//
// Slab does no locking; callers synchronise.
type Slab struct {
	dim    int
	chunks [][]int8  // each slabChunkRows×dim
	scales []float32 // per-slot reconstruction scale
}

// NewSlab creates an empty code arena for dim-dimensional vectors.
func NewSlab(dim int) *Slab {
	if dim <= 0 {
		panic("quantize: Slab dim must be positive")
	}
	return &Slab{dim: dim}
}

// Dim reports the row dimensionality.
func (s *Slab) Dim() int { return s.dim }

// Slots reports how many slot addresses have been touched.
func (s *Slab) Slots() int { return len(s.scales) }

// SetAt quantises vec into the given slot, growing the arena to cover
// it. Overwriting a slot recycles its row in place — no allocation once
// the chunk exists.
func (s *Slab) SetAt(slot int32, vec []float32) {
	if len(vec) != s.dim {
		panic(fmt.Sprintf("quantize: Slab.SetAt dim %d, want %d", len(vec), s.dim))
	}
	for int(slot)/slabChunkRows >= len(s.chunks) {
		s.chunks = append(s.chunks, make([]int8, slabChunkRows*s.dim))
	}
	for int(slot) >= len(s.scales) {
		s.scales = append(s.scales, 0)
	}
	s.scales[slot] = QuantizeInto(vec, s.row(slot))
}

// At returns the slot's codes as a Vector view sharing the arena. The
// view is valid until the slot is overwritten.
func (s *Slab) At(slot int32) Vector {
	return Vector{Scale: s.scales[slot], Data: s.row(slot)}
}

func (s *Slab) row(slot int32) []int8 {
	c := int(slot) / slabChunkRows
	r := int(slot) % slabChunkRows
	return s.chunks[c][r*s.dim : (r+1)*s.dim]
}

// ScanDotF32 computes out[slot] = DotF32(codes(slot), probe) for every
// touched slot, one blocked pass per chunk — the asymmetric int8 scan
// kernel over the same chunked row-major layout the float32 slab uses.
// It performs no allocation. Scores may differ from per-row DotF32 by
// float rounding (the kernel uses four interleaved accumulators); use it
// for traversal-grade scoring, not for exact-parity paths.
func (s *Slab) ScanDotF32(probe []float32, out []float32) {
	if len(probe) != s.dim {
		panic(fmt.Sprintf("quantize: Slab.ScanDotF32 dim %d, want %d", len(probe), s.dim))
	}
	n := len(s.scales)
	if len(out) < n {
		panic(fmt.Sprintf("quantize: Slab.ScanDotF32 out len %d, need %d", len(out), n))
	}
	for c := 0; c*slabChunkRows < n; c++ {
		rows := n - c*slabChunkRows
		if rows > slabChunkRows {
			rows = slabChunkRows
		}
		base := c * slabChunkRows
		chunk := s.chunks[c]
		for i := 0; i < rows; i++ {
			out[base+i] = dotCodes(probe, chunk[i*s.dim:(i+1)*s.dim]) * s.scales[base+i]
		}
	}
}

// dotCodes is the blocked inner kernel: four interleaved accumulator
// chains over one code row, bounds-check-free.
func dotCodes(p []float32, row []int8) float32 {
	row = row[:len(p)]
	var a0, a1, a2, a3 float32
	j := 0
	for ; j+4 <= len(p); j += 4 {
		a0 += p[j] * float32(row[j])
		a1 += p[j+1] * float32(row[j+1])
		a2 += p[j+2] * float32(row[j+2])
		a3 += p[j+3] * float32(row[j+3])
	}
	for ; j < len(p); j++ {
		a0 += p[j] * float32(row[j])
	}
	return a0 + a1 + a2 + a3
}
