package quantize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vecmath"
)

func unit(rng *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}

func TestRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := unit(rng, 768)
		q := Quantize(x)
		y := q.Dequantize()
		for i := range x {
			// Max per-element error is scale/2.
			if math.Abs(float64(x[i]-y[i])) > float64(q.Scale)/2+1e-7 {
				t.Fatalf("element %d: %v -> %v exceeds half-scale %v", i, x[i], y[i], q.Scale/2)
			}
		}
	}
}

func TestZeroVector(t *testing.T) {
	q := Quantize(make([]float32, 8))
	if q.Scale != 0 {
		t.Fatalf("zero vector scale = %v", q.Scale)
	}
	for _, v := range q.Dequantize() {
		if v != 0 {
			t.Fatal("zero vector did not round-trip to zero")
		}
	}
}

func TestCosinePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b := unit(rng, 768), unit(rng, 768)
		if e := CosineError(a, b); e > 0.01 {
			t.Fatalf("cosine error %v exceeds 1%% for 768-d unit vectors", e)
		}
	}
}

func TestCosinePreservedLowDim(t *testing.T) {
	// Lower dimension → coarser quantisation; the error budget is looser
	// but still small enough for threshold decisions.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a, b := unit(rng, 64), unit(rng, 64)
		if e := CosineError(a, b); e > 0.04 {
			t.Fatalf("cosine error %v exceeds 4%% for 64-d unit vectors", e)
		}
	}
}

func TestDotMatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := unit(rng, 256), unit(rng, 256)
		qa, qb := Quantize(a), Quantize(b)
		intDot := Dot(qa, qb)
		deqDot := vecmath.Dot(qa.Dequantize(), qb.Dequantize())
		if math.Abs(float64(intDot-deqDot)) > 1e-4 {
			t.Fatalf("int8 dot %v != dequantised dot %v", intDot, deqDot)
		}
	}
}

func TestDotF32Asymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a, b := unit(rng, 256), unit(rng, 256)
		got := DotF32(Quantize(a), b)
		want := vecmath.Dot(a, b)
		if math.Abs(float64(got-want)) > 0.02 {
			t.Fatalf("asymmetric dot %v vs exact %v", got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	q := Quantize(make([]float32, 768))
	if q.Bytes() != 772 {
		t.Fatalf("Bytes = %d, want 772", q.Bytes())
	}
}

// Property: codes always lie in [-127, 127] (symmetric range, no -128),
// and quantisation is idempotent on already-representable values.
func TestCodeRangeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		x := make([]float32, len(raw))
		for i, v := range raw {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				f = 1
			}
			x[i] = float32(math.Tanh(f))
		}
		q := Quantize(x)
		for _, c := range q.Data {
			if c == -128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot accepted mismatched lengths")
		}
	}()
	Dot(Quantize([]float32{1}), Quantize([]float32{1, 2}))
}

func BenchmarkQuantize768(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := unit(rng, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Quantize(x)
	}
}

func BenchmarkDotInt8_768(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	qa, qb := Quantize(unit(rng, 768)), Quantize(unit(rng, 768))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(qa, qb)
	}
}
