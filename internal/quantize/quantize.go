// Package quantize provides int8 scalar quantization for embeddings: a
// 4× storage reduction that composes with PCA compression (§III-A.4),
// giving the cache a second storage/accuracy operating point. A 768-d
// float32 embedding (3 KB) becomes 768 bytes; PCA-64 + int8 is 64 bytes —
// 48× smaller than the raw embedding.
//
// Quantization is symmetric per-vector: q_i = round(x_i / scale) with
// scale = max|x_i| / 127. Unit-norm inputs keep the cosine error small
// (≈0.1% for 768-d embeddings), and dequantised similarity search is a
// drop-in replacement for float32 search.
package quantize

import (
	"fmt"
	"math"

	"repro/internal/vecmath"
)

// Vector is an int8-quantised embedding with its reconstruction scale.
type Vector struct {
	Scale float32
	Data  []int8
}

// Quantize compresses x into an int8 vector. A zero vector quantises to
// scale 0 and all-zero codes.
func Quantize(x []float32) Vector {
	data := make([]int8, len(x))
	return Vector{Scale: QuantizeInto(x, data), Data: data}
}

// QuantizeInto quantises x into the caller-provided code row (which must
// have len(x) elements) and returns the reconstruction scale — the
// allocation-free form the code slab uses.
func QuantizeInto(x []float32, dst []int8) float32 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("quantize: QuantizeInto dst len %d, want %d", len(dst), len(x)))
	}
	var maxAbs float32
	for _, v := range x {
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range x {
		r := math.Round(float64(v * inv))
		switch {
		case r > 127:
			r = 127
		case r < -127:
			r = -127
		}
		dst[i] = int8(r)
	}
	return scale
}

// Dequantize reconstructs the float32 vector.
func (q Vector) Dequantize() []float32 {
	out := make([]float32, len(q.Data))
	for i, v := range q.Data {
		out[i] = float32(v) * q.Scale
	}
	return out
}

// Bytes reports the storage footprint: one byte per element plus the
// 4-byte scale.
func (q Vector) Bytes() int { return len(q.Data) + 4 }

// Dot returns the inner product of two quantised vectors without
// dequantising: int32 accumulation scaled once at the end.
func Dot(a, b Vector) float32 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("quantize: Dot length mismatch %d != %d", len(a.Data), len(b.Data)))
	}
	var acc int32
	for i, av := range a.Data {
		acc += int32(av) * int32(b.Data[i])
	}
	return float32(acc) * a.Scale * b.Scale
}

// DotF32 returns the inner product of a quantised vector with a float32
// query — the asymmetric search mode: cached entries are quantised, the
// probe stays full precision.
func DotF32(q Vector, x []float32) float32 {
	if len(q.Data) != len(x) {
		panic(fmt.Sprintf("quantize: DotF32 length mismatch %d != %d", len(q.Data), len(x)))
	}
	var acc float32
	for i, qv := range q.Data {
		acc += float32(qv) * x[i]
	}
	return acc * q.Scale
}

// CosineError measures the absolute cosine deviation introduced by
// quantising both sides of a pair, for calibration and tests.
func CosineError(a, b []float32) float64 {
	exact := vecmath.Cosine(a, b)
	qa, qb := Quantize(a), Quantize(b)
	approx := vecmath.Cosine(qa.Dequantize(), qb.Dequantize())
	return math.Abs(float64(exact - approx))
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
