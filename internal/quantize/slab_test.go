package quantize

import (
	"math"
	"math/rand"
	"testing"
)

func randUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var n float64
	for i := range v {
		v[i] = float32(rng.NormFloat64())
		n += float64(v[i]) * float64(v[i])
	}
	inv := float32(1 / math.Sqrt(n))
	for i := range v {
		v[i] *= inv
	}
	return v
}

func TestQuantizeIntoMatchesQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 8, 64, 768} {
		v := randUnit(rng, dim)
		want := Quantize(v)
		dst := make([]int8, dim)
		scale := QuantizeInto(v, dst)
		if scale != want.Scale {
			t.Fatalf("dim %d: scale %v != %v", dim, scale, want.Scale)
		}
		for i := range dst {
			if dst[i] != want.Data[i] {
				t.Fatalf("dim %d: code %d differs", dim, i)
			}
		}
	}
}

func TestSlabSetAtRecyclesRowInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSlab(16)
	v1 := randUnit(rng, 16)
	v2 := randUnit(rng, 16)
	s.SetAt(3, v1)
	if s.Slots() != 4 {
		t.Fatalf("Slots = %d, want 4", s.Slots())
	}
	got := s.At(3)
	want := Quantize(v1)
	if got.Scale != want.Scale {
		t.Fatalf("scale %v != %v", got.Scale, want.Scale)
	}
	// Overwrite the slot (the recycling path): codes and scale must be
	// fully replaced, with no residue of the old vector.
	s.SetAt(3, v2)
	got = s.At(3)
	want = Quantize(v2)
	if got.Scale != want.Scale {
		t.Fatalf("recycled scale %v != %v", got.Scale, want.Scale)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("recycled code %d differs", i)
		}
	}
}

func TestSlabScanDotF32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSlab(32)
	var vecs [][]float32
	for i := 0; i < slabChunkRows+20; i++ { // span two chunks
		v := randUnit(rng, 32)
		s.SetAt(int32(i), v)
		vecs = append(vecs, v)
	}
	probe := randUnit(rng, 32)
	out := make([]float32, s.Slots())
	s.ScanDotF32(probe, out)
	for i, v := range vecs {
		want := DotF32(Quantize(v), probe)
		if diff := math.Abs(float64(out[i] - want)); diff > 1e-5 {
			t.Fatalf("slot %d: kernel %v vs DotF32 %v (diff %g)", i, out[i], want, diff)
		}
	}
}

func TestSlabScanZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSlab(64)
	for i := 0; i < 200; i++ {
		s.SetAt(int32(i), randUnit(rng, 64))
	}
	probe := randUnit(rng, 64)
	out := make([]float32, s.Slots())
	if n := testing.AllocsPerRun(50, func() { s.ScanDotF32(probe, out) }); n != 0 {
		t.Fatalf("ScanDotF32 allocates %v per run, want 0", n)
	}
	// SetAt over existing slots must also be allocation-free (in-place
	// recycling).
	v := randUnit(rng, 64)
	if n := testing.AllocsPerRun(50, func() { s.SetAt(17, v) }); n != 0 {
		t.Fatalf("SetAt on an existing slot allocates %v per run, want 0", n)
	}
}
