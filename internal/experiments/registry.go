package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment against a lab and returns its printable
// result.
type Runner func(*Lab) fmt.Stringer

// registry maps experiment IDs (benchrunner -exp flags) to runners.
var registry = map[string]Runner{
	"table1": func(l *Lab) fmt.Stringer { return Table1(l) },
	"fig4":   func(l *Lab) fmt.Stringer { return Fig4(l) },
	"fig5":   func(l *Lab) fmt.Stringer { return Fig5(l) },
	"fig6":   func(l *Lab) fmt.Stringer { return Fig6(l) },
	"fig7":   func(l *Lab) fmt.Stringer { return Fig7(l) },
	"fig8":   func(l *Lab) fmt.Stringer { return Fig8(l) },
	"fig10":  func(l *Lab) fmt.Stringer { return Fig10(l) },
	"fig11":  func(l *Lab) fmt.Stringer { return Fig11(l) },
	"fig12":  func(l *Lab) fmt.Stringer { return Fig12(l) },
	"fig13":  func(l *Lab) fmt.Stringer { return Fig13(l) },
	"fig14":  func(l *Lab) fmt.Stringer { return Fig14(l) },
	"fig15":  func(l *Lab) fmt.Stringer { return Fig15(l) },
	"fig16":  func(l *Lab) fmt.Stringer { return Fig16(l) },

	// Ablations (beyond the paper's figures; see DESIGN.md).
	"abl-context":    func(l *Lab) fmt.Stringer { return AblationContext(l) },
	"abl-threshold":  func(l *Lab) fmt.Stringer { return AblationThresholdCalibration(l) },
	"abl-aggregator": func(l *Lab) fmt.Stringer { return AblationAggregator(l) },
	"abl-pcadims":    func(l *Lab) fmt.Stringer { return AblationPCADims(l) },
	"abl-eviction":   func(l *Lab) fmt.Stringer { return AblationEviction(l) },
	"abl-quantize":   func(l *Lab) fmt.Stringer { return AblationQuantize(l) },

	// The paper's concluding cost-saving claim, replayed over the Figure 4
	// user-study streams.
	"savings": func(l *Lab) fmt.Stringer { return Savings(l) },
}

// Names returns the registered experiment IDs in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves an experiment ID.
func Lookup(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r, nil
}
