package experiments

import (
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/gptcache"
	"repro/internal/llmsim"
	"repro/internal/metrics"
)

// System adapts MeanCache and the GPTCache baseline to one probe surface
// so the workload runners treat them uniformly.
type System interface {
	// Name labels result rows.
	Name() string
	// Populate loads the cached workload entries (standalone queries, or
	// contextual entries whose Context arity defines their chain).
	Populate(queries []dataset.CtxQuery, llm *llmsim.Service)
	// Probe submits one query with its conversation context, returning
	// the hit decision and the end-to-end latency. enroll controls
	// whether a miss is inserted into the cache (end-to-end deployment)
	// or not (fixed-population protocols like §IV-C).
	Probe(q string, ctx []string, llm *llmsim.Service, enroll bool) (hit bool, latency time.Duration)
	// SearchStats reports cumulative mean semantic-search time.
	SearchStats() time.Duration
	// StorageBytes reports current cache storage.
	StorageBytes() int64
}

// meanCacheSystem wraps core.Client.
type meanCacheSystem struct {
	name   string
	client *core.Client
	// ids maps workload cached-index -> cache entry ID, for parent links.
	ids []int
}

// NewMeanCacheSystem builds a System around a MeanCache client using enc
// and tau.
func NewMeanCacheSystem(name string, enc embed.Encoder, tau float64) System {
	return &meanCacheSystem{
		name: name,
		client: core.New(core.Options{
			Encoder: enc,
			Tau:     float32(tau),
			TopK:    5,
		}),
	}
}

func (m *meanCacheSystem) Name() string { return m.name }

func (m *meanCacheSystem) Populate(queries []dataset.CtxQuery, llm *llmsim.Service) {
	m.ids = make([]int, len(queries))
	for i, q := range queries {
		resp, _ := llm.Query(q.Text)
		parent := cache.NoParent
		if len(q.Context) > 0 {
			// The workload lays out conversations as parent at index i-N
			// for follow-up at index i (see dataset.GenerateContextualWorkload);
			// recover the parent by matching the context text.
			parent = m.parentFor(queries, i)
		}
		id, err := m.client.Insert(q.Text, resp, parent)
		if err != nil {
			panic("experiments: populate: " + err.Error())
		}
		m.ids[i] = id
	}
}

// parentFor resolves the cached parent entry for follow-up i: the cached
// entry whose text equals the follow-up's (single-turn) context.
func (m *meanCacheSystem) parentFor(queries []dataset.CtxQuery, i int) int {
	ctx := queries[i].Context[len(queries[i].Context)-1]
	for j := 0; j < i; j++ {
		if queries[j].Text == ctx {
			return m.ids[j]
		}
	}
	return cache.NoParent
}

func (m *meanCacheSystem) Probe(q string, ctx []string, llm *llmsim.Service, enroll bool) (bool, time.Duration) {
	res := m.client.Lookup(q, ctx)
	if res.Hit {
		return true, res.Latency
	}
	resp, took := llm.Query(q)
	if enroll {
		// Standalone protocol: enrol the miss.
		if _, err := m.client.Insert(q, resp, cache.NoParent); err != nil {
			panic("experiments: enroll: " + err.Error())
		}
	}
	return false, res.SearchTime + took
}

func (m *meanCacheSystem) SearchStats() time.Duration { return m.client.Stats().MeanSearch }
func (m *meanCacheSystem) StorageBytes() int64        { return m.client.Cache().StorageBytes() }

// gptCacheSystem wraps the baseline. Context is ignored by design; the
// NetworkRTT models the server-side round trip.
type gptCacheSystem struct {
	name string
	g    *gptcache.Cache
	rtt  time.Duration

	searches int
	search   time.Duration
}

// NewGPTCacheSystem builds the baseline System at its paper configuration
// (fixed τ, no context), with an optional server round-trip latency.
func NewGPTCacheSystem(name string, enc embed.Encoder, tau float64, rtt time.Duration) System {
	return &gptCacheSystem{
		name: name,
		g: gptcache.New(gptcache.Options{
			Encoder: enc,
			Tau:     float32(tau),
			TopK:    1,
		}),
		rtt: rtt,
	}
}

func (g *gptCacheSystem) Name() string { return g.name }

func (g *gptCacheSystem) Populate(queries []dataset.CtxQuery, llm *llmsim.Service) {
	for _, q := range queries {
		resp, _ := llm.Query(q.Text)
		if _, err := g.g.Insert(q.Text, resp); err != nil {
			panic("experiments: populate: " + err.Error())
		}
	}
}

func (g *gptCacheSystem) Probe(q string, _ []string, llm *llmsim.Service, enroll bool) (bool, time.Duration) {
	res := g.g.Lookup(q)
	g.searches++
	g.search += res.SearchTime
	if res.Hit {
		return true, res.Latency + g.rtt
	}
	resp, took := llm.Query(q)
	if enroll {
		if _, err := g.g.Insert(q, resp); err != nil {
			panic("experiments: enroll: " + err.Error())
		}
	}
	return false, res.SearchTime + g.rtt + took
}

func (g *gptCacheSystem) SearchStats() time.Duration {
	if g.searches == 0 {
		return 0
	}
	return g.search / time.Duration(g.searches)
}

func (g *gptCacheSystem) StorageBytes() int64 { return g.g.Store().StorageBytes() }

// ProbeOutcome records one probe's ground truth and prediction, feeding
// both the confusion matrices and the per-query label strips of
// Figures 6 and 8.
type ProbeOutcome struct {
	Dup     bool
	Hit     bool
	Latency time.Duration
}

// RunStandalone populates sys with the workload's cached queries and plays
// all probes (enrolling misses, the end-to-end deployment of §IV-B),
// returning per-probe outcomes.
func RunStandalone(sys System, w *dataset.CacheWorkload, llm *llmsim.Service) []ProbeOutcome {
	cached := make([]dataset.CtxQuery, len(w.Cached))
	for i, q := range w.Cached {
		cached[i] = dataset.CtxQuery{Text: q, DupOf: -1}
	}
	sys.Populate(cached, llm)
	out := make([]ProbeOutcome, len(w.Probes))
	for i, p := range w.Probes {
		hit, lat := sys.Probe(p.Text, nil, llm, true)
		out[i] = ProbeOutcome{Dup: p.DupOf >= 0, Hit: hit, Latency: lat}
	}
	return out
}

// RunContextual populates sys with the contextual cache and plays the 250
// probes against the fixed population (§IV-C protocol: no enrolment).
func RunContextual(sys System, w *dataset.ContextualWorkload, llm *llmsim.Service) []ProbeOutcome {
	sys.Populate(w.Cached, llm)
	out := make([]ProbeOutcome, len(w.Probes))
	for i, p := range w.Probes {
		hit, lat := sys.Probe(p.Text, p.Context, llm, false)
		out[i] = ProbeOutcome{Dup: p.DupOf >= 0, Hit: hit, Latency: lat}
	}
	return out
}

// Confusion folds outcomes into the hit/miss confusion matrix.
func Confusion(outcomes []ProbeOutcome) metrics.Confusion {
	var c metrics.Confusion
	for _, o := range outcomes {
		c.Add(o.Dup, o.Hit)
	}
	return c
}
