package experiments

import (
	"fmt"
	"strings"

	"repro/internal/embed"
	"repro/internal/gptcache"
	"repro/internal/llmsim"
	"repro/internal/metrics"
)

// Table1Row is one system column of Table I.
type Table1Row struct {
	System string
	Scores metrics.Scores // F0.5-based, as §IV-B sets β=0.5
	Matrix metrics.Confusion
}

// Table1Result reproduces Table I: standalone and contextual metrics for
// the baseline and MeanCache variants.
type Table1Result struct {
	Standalone []Table1Row
	Contextual []Table1Row
}

// Table1 runs the §IV-B standalone protocol (1000 cached queries, 1000
// probes with 30% duplicates, misses enrolled) and the §IV-C contextual
// protocol, producing every cell of Table I plus the Figure 7 and Figure 9
// confusion matrices.
func Table1(lab *Lab) *Table1Result {
	if lab.table1 != nil {
		return lab.table1
	}
	res := &Table1Result{}

	// Standalone: GPTCache (untrained Albert at fixed 0.7) vs MeanCache
	// with FL-trained MPNet and Albert at their aggregated thresholds.
	w := lab.Workload()
	for _, sys := range []System{
		NewGPTCacheSystem("GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 0),
		NewMeanCacheSystem("MeanCache (MPNet)", lab.Trained(embed.MPNetSim).Model, lab.Trained(embed.MPNetSim).Tau),
		NewMeanCacheSystem("MeanCache (Albert)", lab.Trained(embed.AlbertSim).Model, lab.Trained(embed.AlbertSim).Tau),
	} {
		llm := llmsim.New(llmsim.DefaultConfig())
		outcomes := RunStandalone(sys, w, llm)
		m := Confusion(outcomes)
		res.Standalone = append(res.Standalone, Table1Row{
			System: sys.Name(),
			Scores: metrics.ScoresFrom(m, 0.5),
			Matrix: m,
		})
	}

	// Contextual: GPTCache vs MeanCache (MPNet), fixed population.
	cw := lab.CtxWorkload()
	for _, sys := range []System{
		NewGPTCacheSystem("GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 0),
		NewMeanCacheSystem("MeanCache", lab.Trained(embed.MPNetSim).Model, lab.Trained(embed.MPNetSim).Tau),
	} {
		llm := llmsim.New(llmsim.DefaultConfig())
		outcomes := RunContextual(sys, cw, llm)
		m := Confusion(outcomes)
		res.Contextual = append(res.Contextual, Table1Row{
			System: sys.Name(),
			Scores: metrics.ScoresFrom(m, 0.5),
			Matrix: m,
		})
	}
	lab.table1 = res
	return res
}

// String renders the Table I layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: semantic cache hit/miss quality (F-score is F0.5)\n\n")
	section := func(title string, rows []Table1Row) {
		fmt.Fprintf(&b, "%s\n", title)
		fmt.Fprintf(&b, "  %-22s %8s %10s %8s %9s\n", "System", "F-score", "Precision", "Recall", "Accuracy")
		for _, row := range rows {
			fmt.Fprintf(&b, "  %-22s %8.2f %10.2f %8.2f %9.2f\n",
				row.System, row.Scores.FScore, row.Scores.Precision,
				row.Scores.Recall, row.Scores.Accuracy)
		}
		b.WriteByte('\n')
	}
	section("Standalone queries:", r.Standalone)
	section("Contextual queries:", r.Contextual)
	return b.String()
}

// Fig7Result is the pair of confusion matrices of Figure 7 (standalone
// 1000-probe run).
type Fig7Result struct {
	MeanCache metrics.Confusion
	GPTCache  metrics.Confusion
}

// Fig7 extracts the Figure 7 matrices from the Table I standalone run.
func Fig7(lab *Lab) *Fig7Result {
	t1 := Table1(lab)
	res := &Fig7Result{}
	for _, row := range t1.Standalone {
		switch row.System {
		case "GPTCache":
			res.GPTCache = row.Matrix
		case "MeanCache (MPNet)":
			res.MeanCache = row.Matrix
		}
	}
	return res
}

// String renders both matrices side by side, Figure 7 style.
func (r *Fig7Result) String() string {
	return fmt.Sprintf("Figure 7: confusion matrices, standalone probes\n\n(a) MeanCache\n%s\n\n(b) GPTCache\n%s\n\nfalse hits: MeanCache=%d GPTCache=%d\n",
		r.MeanCache, r.GPTCache, r.MeanCache.FP, r.GPTCache.FP)
}
