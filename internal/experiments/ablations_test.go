package experiments

import (
	"strings"
	"testing"
)

func TestAblationContext(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationContext(quickLab)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	with, without := res.Rows[0], res.Rows[1]
	// Removing context verification must hurt precision on the contextual
	// workload: the whole point of the mechanism.
	if with.Scores.Precision <= without.Scores.Precision {
		t.Errorf("context chains did not improve precision: %.3f vs %.3f",
			with.Scores.Precision, without.Scores.Precision)
	}
	if !strings.Contains(res.String(), "context") {
		t.Error("String lacks title")
	}
}

func TestAblationThresholdCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationThresholdCalibration(quickLab)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	pairwise, cacheAware := res.Rows[0], res.Rows[1]
	// The cache-aware objective must improve deployment precision over the
	// pairwise objective (the max-over-N tail effect).
	if cacheAware.Scores.Precision < pairwise.Scores.Precision {
		t.Errorf("cache-aware tau precision %.3f below pairwise %.3f",
			cacheAware.Scores.Precision, pairwise.Scores.Precision)
	}
}

func TestAblationAggregator(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationAggregator(quickLab)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Scores.FScore <= 0 || row.Scores.FScore > 1 {
			t.Errorf("%s: implausible F0.5 %.3f", row.Config, row.Scores.FScore)
		}
	}
}

func TestAblationPCADims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationPCADims(quickLab)
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d, want >= 4", len(res.Rows))
	}
	// Quality must be monotone-ish in k: 128-d at least as good as 16-d.
	var f16, f128 float64
	for _, row := range res.Rows {
		switch row.Config {
		case "pca 16-d":
			f16 = row.Scores.FScore
		case "pca 128-d":
			f128 = row.Scores.FScore
		}
	}
	if f128 < f16-0.02 {
		t.Errorf("128-d F1 %.3f below 16-d %.3f", f128, f16)
	}
	// Raw must be within reach of the best compressed config (compression
	// trades little accuracy — Fig. 10c's claim).
	raw := res.Rows[0].Scores.FScore
	best := 0.0
	for _, row := range res.Rows[1:] {
		if row.Scores.FScore > best {
			best = row.Scores.FScore
		}
	}
	if best < raw-0.1 {
		t.Errorf("best compressed F1 %.3f far below raw %.3f", best, raw)
	}
}

func TestAblationQuantize(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationQuantize(quickLab)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	raw := res.Rows[0].Scores.FScore
	for _, row := range res.Rows[1:] {
		// Every compressed format must stay within 10 F1 points of raw:
		// storage formats are lossy but not destructive.
		if row.Scores.FScore < raw-0.10 {
			t.Errorf("%s F1 %.3f far below raw %.3f", row.Config, row.Scores.FScore, raw)
		}
	}
}

func TestAblationEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := AblationEviction(quickLab)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Scores.Recall <= 0 || row.Scores.Recall > 1 {
			t.Errorf("%s: hit rate %.3f out of range", row.Config, row.Scores.Recall)
		}
	}
	// On a Zipf stream with a 25% capacity cache, recency/frequency-aware
	// policies must beat FIFO or at least match it.
	byName := map[string]float64{}
	for _, row := range res.Rows {
		byName[row.Config] = row.Scores.Recall
	}
	if byName["lru"] < byName["fifo"]-0.05 {
		t.Errorf("LRU hit rate %.3f well below FIFO %.3f", byName["lru"], byName["fifo"])
	}
}

func TestSavingsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Savings(quickLab)
	if len(res.PerUser) != 20 {
		t.Fatalf("users = %d, want 20", len(res.PerUser))
	}
	if res.Total == 0 || res.Served == 0 {
		t.Fatalf("empty replay: %d/%d", res.Served, res.Total)
	}
	// The cache must capture a substantial share of the duplicate ceiling
	// without exceeding it by much (false hits can push it slightly over).
	if res.Saving < res.DupRatio*0.4 {
		t.Errorf("saving %.2f captures under 40%% of the %.2f duplicate ceiling",
			res.Saving, res.DupRatio)
	}
	if res.Saving > res.DupRatio+0.15 {
		t.Errorf("saving %.2f implausibly above the %.2f duplicate ceiling",
			res.Saving, res.DupRatio)
	}
}
