// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV). Each driver returns a structured result whose
// String method renders the same rows/series the paper reports, so
// cmd/benchrunner and the top-level benchmarks regenerate the full
// evaluation. The Lab type owns the expensive shared artifacts (the
// corpus, the FL-trained models and their aggregated thresholds) and
// memoises them across experiments.
package experiments

import (
	"repro/internal/dataset"
	"repro/internal/train"
)

// Config scales the evaluation. DefaultConfig reproduces the paper's
// protocol sizes; QuickConfig shrinks everything for tests.
type Config struct {
	// Corpus is the synthetic duplicate-query benchmark configuration.
	Corpus dataset.CorpusConfig
	// Train holds the local-training hyperparameters (6 epochs in §IV-E).
	Train train.Config

	// FLClients is the fleet size (20 in §IV-A.2); FLPerRound the sample
	// per round (4); FLRounds the round count (50).
	FLClients, FLPerRound, FLRounds int

	// NCached and NProbes size the standalone cache workload (1000 and
	// 1000 in §IV-B); DupFraction is the duplicate probe share (0.30).
	NCached, NProbes int
	DupFraction      float64

	// CtxConversations sizes the contextual dataset (100 conversations =
	// the paper's 450-query protocol).
	CtxConversations int

	// PCADim is the compressed embedding dimensionality (64 in §IV-D).
	// PCASamples bounds how many corpus queries the projector is fitted on.
	PCADim, PCASamples int

	// SweepStep is the threshold-sweep granularity for Figures 13/14/16.
	SweepStep float64

	// Seed drives every derived random stream.
	Seed int64
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Corpus:           dataset.DefaultConfig(),
		Train:            train.DefaultConfig(),
		FLClients:        20,
		FLPerRound:       4,
		FLRounds:         50,
		NCached:          1000,
		NProbes:          1000,
		DupFraction:      0.30,
		CtxConversations: 100,
		PCADim:           64,
		PCASamples:       1500,
		SweepStep:        0.01,
		Seed:             1,
	}
}

// QuickConfig is a scaled-down configuration for tests: the same code
// paths at a fraction of the cost.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus.Concepts = 600
	cfg.Corpus.Intents = 900
	cfg.Train.Epochs = 4
	cfg.FLClients = 6
	cfg.FLPerRound = 3
	cfg.FLRounds = 12
	cfg.NCached = 400
	cfg.NProbes = 150
	cfg.CtxConversations = 30
	cfg.PCASamples = 300
	cfg.SweepStep = 0.05
	return cfg
}
