package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/pca"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// RoundScores is one point of the FL training curves (Figures 11–12).
type RoundScores struct {
	Round  int
	Tau    float64
	Scores metrics.Scores // F1-based, evaluated on held-out pairs at τ_global
}

// TrainedModel bundles an FL-trained encoder with its aggregated global
// threshold and per-round curve.
type TrainedModel struct {
	Model *embed.Model
	Tau   float64
	Curve []RoundScores
}

// Lab memoises the expensive shared artifacts across experiments.
type Lab struct {
	Cfg Config

	corpus  *dataset.Corpus
	table1  *Table1Result
	trained map[string]*TrainedModel
	llama   *embed.Model
	proj    map[string]*pca.Projector
	logf    func(format string, args ...any)
}

// NewLab creates an empty lab; artifacts are built on first use.
func NewLab(cfg Config) *Lab {
	return &Lab{
		Cfg:     cfg,
		trained: make(map[string]*TrainedModel),
		proj:    make(map[string]*pca.Projector),
		logf:    func(string, ...any) {},
	}
}

// SetLogf installs a progress logger (benchrunner wires this to stderr).
func (l *Lab) SetLogf(f func(string, ...any)) { l.logf = f }

// Corpus returns the shared synthetic corpus.
func (l *Lab) Corpus() *dataset.Corpus {
	if l.corpus == nil {
		l.logf("generating corpus (%d intents)...", l.Cfg.Corpus.Intents)
		l.corpus = dataset.GenerateCorpus(l.Cfg.Corpus)
	}
	return l.corpus
}

// UntrainedModel returns a fresh pre-training model for arch, seeded
// identically to the FL starting point.
func (l *Lab) UntrainedModel(arch embed.Arch) *embed.Model {
	return embed.NewModel(arch, l.Cfg.Seed+100)
}

// Llama returns the shared frozen Llama2-sim encoder.
func (l *Lab) Llama() *embed.Model {
	if l.llama == nil {
		l.llama = embed.NewModel(embed.Llama2Sim, l.Cfg.Seed+100)
	}
	return l.llama
}

// Trained returns the FL-trained model for arch, running the federated
// training of §IV-E on first use: FLClients clients over disjoint shards,
// FLPerRound sampled per round, FLRounds rounds, with the global model
// evaluated on held-out pairs after every aggregation.
func (l *Lab) Trained(arch embed.Arch) *TrainedModel {
	if tm, ok := l.trained[arch.Name]; ok {
		return tm
	}
	corpus := l.Corpus()
	l.logf("FL training %s: %d clients, %d/round, %d rounds...",
		arch.Name, l.Cfg.FLClients, l.Cfg.FLPerRound, l.Cfg.FLRounds)

	rng := rand.New(rand.NewSource(l.Cfg.Seed + 200))
	shards := dataset.SplitPairs(corpus.Train, l.Cfg.FLClients, rng)
	clients := make([]fl.Client, l.Cfg.FLClients)
	for i := range clients {
		// β=0.5: clients tune τ for deployment, where precision is twice
		// as valuable as recall (§IV-B).
		clients[i] = fl.NewLocalClient(i, arch, l.Cfg.Seed+100, shards[i], l.Cfg.Train, 0.5)
	}
	global := embed.NewModel(arch, l.Cfg.Seed+100)
	srv := fl.NewServer(global, clients, fl.ServerConfig{
		Rounds:          l.Cfg.FLRounds,
		ClientsPerRound: l.Cfg.FLPerRound,
		Seed:            l.Cfg.Seed + 300,
		InitialTau:      0.7,
	})
	tm := &TrainedModel{Model: global}
	evalPairs := corpus.Val
	if err := srv.Run(func(ri fl.RoundInfo) {
		conf := train.EvaluateAt(global, evalPairs, ri.GlobalTau)
		rs := RoundScores{
			Round:  ri.Round + 1,
			Tau:    ri.GlobalTau,
			Scores: metrics.ScoresFrom(conf, 1),
		}
		tm.Curve = append(tm.Curve, rs)
		if (ri.Round+1)%10 == 0 || ri.Round == 0 {
			l.logf("  round %d: F1=%.3f prec=%.3f tau=%.2f",
				rs.Round, rs.Scores.FScore, rs.Scores.Precision, rs.Tau)
		}
	}); err != nil {
		// FL over in-process clients cannot fail except by programming
		// error; surface it loudly rather than returning a half-built lab.
		panic(fmt.Sprintf("experiments: FL training failed: %v", err))
	}
	tm.Tau = srv.Tau()
	l.trained[arch.Name] = tm
	return tm
}

// Projector returns the PCA projector for arch's trained encoder, fitted
// on embeddings of corpus training queries (§III-A.4, Figure 3a).
func (l *Lab) Projector(arch embed.Arch) *pca.Projector {
	if p, ok := l.proj[arch.Name]; ok {
		return p
	}
	tm := l.Trained(arch)
	corpus := l.Corpus()
	n := min(l.Cfg.PCASamples, len(corpus.Train))
	texts := make([]string, 0, n)
	for _, pair := range corpus.Train[:n] {
		texts = append(texts, pair.A)
	}
	l.logf("fitting PCA %d->%d on %d embeddings...", tm.Model.Dim(), l.Cfg.PCADim, len(texts))
	samples := tm.Model.EncodeBatch(texts)
	p, err := pca.Fit(samples, l.Cfg.PCADim, pca.Options{Seed: l.Cfg.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiments: PCA fit failed: %v", err))
	}
	l.proj[arch.Name] = p
	return p
}

// CompressedEncoder returns the trained encoder for arch with the PCA
// projection attached as its final layer (Figure 3b).
func (l *Lab) CompressedEncoder(arch embed.Arch) embed.Encoder {
	tm := l.Trained(arch)
	p := l.Projector(arch)
	return embed.WithCenteredProjection(tm.Model, p.Components, p.Mean)
}

// CompressedTau recalibrates the similarity threshold for the compressed
// space: PCA projection changes the cosine scale, so the raw-space τ would
// be miscalibrated. The threshold is re-searched on the validation pairs
// under the compressed encoder, exactly as a client would re-run its local
// threshold search after enabling compression.
func (l *Lab) CompressedTau(arch embed.Arch) float64 {
	enc := l.CompressedEncoder(arch)
	// Cache-aware search with β=0.5, exactly as the FL clients calibrate
	// the raw-space threshold: projection changes the cosine scale, so the
	// whole calibration re-runs in the compressed space.
	sweep := train.CacheSweep(enc, l.Corpus().Val, 0.01, 0.5)
	return sweep.Optimal.Tau
}

// Workload returns the standalone cache workload of §IV-B.
func (l *Lab) Workload() *dataset.CacheWorkload {
	return dataset.GenerateCacheWorkload(l.Cfg.Corpus, l.Cfg.NCached, l.Cfg.NProbes, l.Cfg.DupFraction)
}

// CtxWorkload returns the contextual workload of §IV-C.
func (l *Lab) CtxWorkload() *dataset.ContextualWorkload {
	return dataset.GenerateContextualWorkload(l.Cfg.Corpus, l.Cfg.CtxConversations)
}

// meanCosine is a shared helper: mean pairwise score of enc over pairs.
func meanCosine(enc embed.Encoder, pairs []dataset.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pairs {
		a, b := enc.Encode(p.A), enc.Encode(p.B)
		sum += float64(vecmath.Dot(a, b))
	}
	return sum / float64(len(pairs))
}
