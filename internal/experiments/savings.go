package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llmsim"
)

// SavingsResult tests the paper's concluding claim: "MeanCache offers a
// solution to reduce up to one-third of LLM query inference costs for
// semantically similar queries on the user side". Each study participant's
// query stream (the Figure 4 data, ≈31% duplicates) is replayed through a
// private per-user MeanCache; the saving is the fraction of queries that
// never reach the LLM service.
type SavingsResult struct {
	PerUser  []UserSavings
	Total    int     // queries across all users
	Served   int     // served from local caches
	Saving   float64 // Served / Total
	DupRatio float64 // ground-truth duplicate fraction (the ceiling)
}

// UserSavings is one participant's outcome.
type UserSavings struct {
	User       int
	Queries    int
	Duplicates int
	CacheHits  int
	FalseHits  int // hits whose matched intent differs from the query's
}

// Savings replays a bounded prefix of every participant stream (full
// streams at paper scale, capped in quick mode) through per-user clients
// using the FL-trained encoder and τ_global.
func Savings(lab *Lab) *SavingsResult {
	tm := lab.Trained(embed.MPNetSim)
	streams := dataset.GenerateUserStudy(lab.Cfg.Corpus)
	// Cap per-user replay length so the experiment stays proportionate to
	// the configured workload size (full study is 27K queries).
	maxPerUser := lab.Cfg.NCached * 2

	res := &SavingsResult{}
	dupTotal := 0
	for u, stream := range streams {
		n := min(len(stream.Queries), maxPerUser)
		client := core.New(core.Options{
			Encoder: tm.Model,
			LLM:     llmsim.New(llmsim.DefaultConfig()),
			Tau:     float32(tm.Tau),
		})
		us := UserSavings{User: u + 1, Queries: n}
		// Track the intent of each cached entry to grade hits.
		intentOf := make(map[int]int) // cache entry ID -> intent ID
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			q := stream.Queries[i]
			intent := stream.IntentIDs[i]
			if seen[intent] {
				us.Duplicates++
			}
			seen[intent] = true
			r, err := client.Query(q)
			if err != nil {
				panic(fmt.Sprintf("experiments: savings replay: %v", err))
			}
			if r.Hit {
				us.CacheHits++
				if intentOf[r.Entry.ID] != intent {
					us.FalseHits++
				}
			} else if r.Entry != nil {
				intentOf[r.Entry.ID] = intent
			}
		}
		res.PerUser = append(res.PerUser, us)
		res.Total += us.Queries
		res.Served += us.CacheHits
		dupTotal += us.Duplicates
	}
	if res.Total > 0 {
		res.Saving = float64(res.Served) / float64(res.Total)
		res.DupRatio = float64(dupTotal) / float64(res.Total)
	}
	return res
}

// String renders the per-user and aggregate savings.
func (r *SavingsResult) String() string {
	var b strings.Builder
	b.WriteString("LLM inference savings (paper's concluding claim: up to ~1/3 of queries)\n\n")
	fmt.Fprintf(&b, "  %-6s %8s %11s %10s %10s\n", "user", "queries", "duplicates", "cache-hit", "false-hit")
	for _, u := range r.PerUser {
		fmt.Fprintf(&b, "  %-6d %8d %11d %10d %10d\n",
			u.User, u.Queries, u.Duplicates, u.CacheHits, u.FalseHits)
	}
	fmt.Fprintf(&b, "\n  %d of %d queries (%.1f%%) served from local caches; duplicate ceiling %.1f%%\n",
		r.Served, r.Total, 100*r.Saving, 100*r.DupRatio)
	return b.String()
}
