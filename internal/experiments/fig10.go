package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/gptcache"
	"repro/internal/llmsim"
)

// Fig10Cell is one (system, cache size) measurement of Figure 10.
type Fig10Cell struct {
	System     string
	Cached     int
	StorageKB  float64
	SearchTime time.Duration
	FScore     float64 // F0.5, consistent with Table I
}

// Fig10Result is the full compression study grid.
type Fig10Result struct {
	Cells []Fig10Cell
	// SavingsPct is the embedding-storage saving of compression at the
	// largest cache size (paper: ≈83%).
	SavingsPct float64
	// SpeedupPct is the search-time reduction at the largest size.
	SpeedupPct float64
}

// Fig10 measures storage, mean semantic-search time, and F-score for cache
// sizes {1×, 2×, 3×}·NCached across five systems: GPTCache, MeanCache with
// raw 768-d embeddings (MPNet and Albert), and MeanCache with PCA-
// compressed 64-d embeddings (MPNet and Albert).
func Fig10(lab *Lab) *Fig10Result {
	sizes := []int{lab.Cfg.NCached, 2 * lab.Cfg.NCached, 3 * lab.Cfg.NCached}
	type sysSpec struct {
		name string
		mk   func() System
	}
	mpnet := lab.Trained(embed.MPNetSim)
	albert := lab.Trained(embed.AlbertSim)
	specs := []sysSpec{
		{"GPTCache", func() System {
			return NewGPTCacheSystem("GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 0)
		}},
		{"MeanCache (MPNet)", func() System {
			return NewMeanCacheSystem("MeanCache (MPNet)", mpnet.Model, mpnet.Tau)
		}},
		{"MeanCache (Albert)", func() System {
			return NewMeanCacheSystem("MeanCache (Albert)", albert.Model, albert.Tau)
		}},
		{"MeanCache-Compressed (MPNet)", func() System {
			return NewMeanCacheSystem("MeanCache-Compressed (MPNet)",
				lab.CompressedEncoder(embed.MPNetSim), lab.CompressedTau(embed.MPNetSim))
		}},
		{"MeanCache-Compressed (Albert)", func() System {
			return NewMeanCacheSystem("MeanCache-Compressed (Albert)",
				lab.CompressedEncoder(embed.AlbertSim), lab.CompressedTau(embed.AlbertSim))
		}},
	}

	res := &Fig10Result{}
	for _, size := range sizes {
		w := dataset.GenerateCacheWorkload(lab.Cfg.Corpus, size, lab.Cfg.NProbes, lab.Cfg.DupFraction)
		cached := make([]dataset.CtxQuery, len(w.Cached))
		for i, q := range w.Cached {
			cached[i] = dataset.CtxQuery{Text: q, DupOf: -1}
		}
		for _, spec := range specs {
			sys := spec.mk()
			llm := llmsim.New(llmsim.DefaultConfig())
			sys.Populate(cached, llm)
			var outcomes []ProbeOutcome
			for _, p := range w.Probes {
				hit, lat := sys.Probe(p.Text, nil, llm, false)
				outcomes = append(outcomes, ProbeOutcome{Dup: p.DupOf >= 0, Hit: hit, Latency: lat})
			}
			m := Confusion(outcomes)
			res.Cells = append(res.Cells, Fig10Cell{
				System:     spec.name,
				Cached:     size,
				StorageKB:  float64(sys.StorageBytes()) / 1024,
				SearchTime: sys.SearchStats(),
				FScore:     m.FBeta(0.5),
			})
		}
	}

	// Headline numbers at the largest size: raw MPNet vs compressed MPNet.
	var raw, comp *Fig10Cell
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Cached != sizes[len(sizes)-1] {
			continue
		}
		switch c.System {
		case "MeanCache (MPNet)":
			raw = c
		case "MeanCache-Compressed (MPNet)":
			comp = c
		}
	}
	if raw != nil && comp != nil {
		res.SavingsPct = 100 * (1 - comp.StorageKB/raw.StorageKB)
		if raw.SearchTime > 0 {
			res.SpeedupPct = 100 * (1 - float64(comp.SearchTime)/float64(raw.SearchTime))
		}
	}
	return res
}

// String renders the three panels of Figure 10.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: embedding compression study\n\n")
	fmt.Fprintf(&b, "  %-30s %8s %12s %12s %8s\n", "System", "Cached", "Storage(KB)", "Search", "F-score")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-30s %8d %12.0f %12v %8.2f\n",
			c.System, c.Cached, c.StorageKB, c.SearchTime.Round(time.Microsecond), c.FScore)
	}
	fmt.Fprintf(&b, "\n  compression: %.0f%% storage saving, %.0f%% faster search (paper: 83%%, 11%%)\n",
		r.SavingsPct, r.SpeedupPct)
	return b.String()
}
