package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/train"
)

// FLCurveResult is the per-round metric curve of Figures 11 (MPNet) and
// 12 (Albert).
type FLCurveResult struct {
	Arch  string
	Curve []RoundScores
}

// Fig11 returns the MPNet-sim FL training curve.
func Fig11(lab *Lab) *FLCurveResult {
	return &FLCurveResult{Arch: embed.MPNetSim.Name, Curve: lab.Trained(embed.MPNetSim).Curve}
}

// Fig12 returns the Albert-sim FL training curve.
func Fig12(lab *Lab) *FLCurveResult {
	return &FLCurveResult{Arch: embed.AlbertSim.Name, Curve: lab.Trained(embed.AlbertSim).Curve}
}

// String renders the curve as rows of round/metric values.
func (r *FLCurveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FL training curve (%s): global-model scores per round\n\n", r.Arch)
	fmt.Fprintf(&b, "  %5s %6s %6s %6s %6s %6s\n", "round", "F1", "prec", "rec", "acc", "tau")
	step := 1
	if len(r.Curve) > 20 {
		step = len(r.Curve) / 20
	}
	for i, rs := range r.Curve {
		if i%step != 0 && i != len(r.Curve)-1 {
			continue
		}
		fmt.Fprintf(&b, "  %5d %6.3f %6.3f %6.3f %6.3f %6.2f\n",
			rs.Round, rs.Scores.FScore, rs.Scores.Precision, rs.Scores.Recall,
			rs.Scores.Accuracy, rs.Tau)
	}
	if n := len(r.Curve); n > 0 {
		fmt.Fprintf(&b, "\n  F1 %.3f -> %.3f, precision %.3f -> %.3f over %d rounds\n",
			r.Curve[0].Scores.FScore, r.Curve[n-1].Scores.FScore,
			r.Curve[0].Scores.Precision, r.Curve[n-1].Scores.Precision, n)
	}
	return b.String()
}

// SweepResult is a threshold sweep (Figures 13, 14, 16).
type SweepResult struct {
	Label string
	Sweep train.SweepResult
}

// Fig13 sweeps the FL-trained MPNet-sim model over τ on balanced
// validation pairs.
func Fig13(lab *Lab) *SweepResult {
	tm := lab.Trained(embed.MPNetSim)
	return &SweepResult{
		Label: "MPNet (FL-trained)",
		Sweep: train.Sweep(tm.Model, lab.Corpus().Val, lab.Cfg.SweepStep, 1),
	}
}

// Fig14 sweeps the FL-trained Albert-sim model.
func Fig14(lab *Lab) *SweepResult {
	tm := lab.Trained(embed.AlbertSim)
	return &SweepResult{
		Label: "Albert (FL-trained)",
		Sweep: train.Sweep(tm.Model, lab.Corpus().Val, lab.Cfg.SweepStep, 1),
	}
}

// Fig16 sweeps the frozen Llama2-sim encoder: even at its optimal τ its
// F1 stays well below the fine-tuned small models (§IV-G).
func Fig16(lab *Lab) *SweepResult {
	return &SweepResult{
		Label: "Llama 2 (frozen)",
		Sweep: train.Sweep(lab.Llama(), lab.Corpus().Val, lab.Cfg.SweepStep, 1),
	}
}

// String renders the sweep curve and its optimum.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Threshold sweep: %s\n\n", r.Label)
	fmt.Fprintf(&b, "  %5s %6s %6s %6s %6s\n", "tau", "F1", "prec", "rec", "acc")
	step := 1
	if len(r.Sweep.Points) > 21 {
		step = len(r.Sweep.Points) / 21
	}
	for i, pt := range r.Sweep.Points {
		if i%step != 0 && i != len(r.Sweep.Points)-1 {
			continue
		}
		fmt.Fprintf(&b, "  %5.2f %6.3f %6.3f %6.3f %6.3f\n",
			pt.Tau, pt.Scores.FScore, pt.Scores.Precision, pt.Scores.Recall, pt.Scores.Accuracy)
	}
	opt := r.Sweep.Optimal
	fmt.Fprintf(&b, "\n  optimal tau %.2f: F1=%.3f precision=%.3f accuracy=%.3f\n",
		opt.Tau, opt.Scores.FScore, opt.Scores.Precision, opt.Scores.Accuracy)
	return b.String()
}

// Fig15Row is one model's embedding-cost measurement.
type Fig15Row struct {
	Model       string
	EncodeTime  time.Duration
	StorageKB   float64 // per-embedding storage
	Dim         int
	WeightCount int
}

// Fig15Result compares embedding computation cost and storage across the
// three encoders.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15 measures mean per-query encode time (wall clock over corpus
// queries) and per-embedding storage for Llama2-sim, MPNet-sim and
// Albert-sim.
func Fig15(lab *Lab) *Fig15Result {
	corpus := lab.Corpus()
	n := min(200, len(corpus.Val))
	texts := make([]string, 0, n)
	for _, p := range corpus.Val[:n] {
		texts = append(texts, p.A)
	}
	models := []*embed.Model{
		lab.Llama(),
		lab.Trained(embed.MPNetSim).Model,
		lab.Trained(embed.AlbertSim).Model,
	}
	res := &Fig15Result{}
	for _, m := range models {
		// Warm up once, then time sequential single-query encodes — the
		// deployment pattern (queries arrive one at a time).
		m.Encode(texts[0])
		start := time.Now()
		for _, t := range texts {
			m.Encode(t)
		}
		per := time.Since(start) / time.Duration(len(texts))
		res.Rows = append(res.Rows, Fig15Row{
			Model:       m.Name(),
			EncodeTime:  per,
			StorageKB:   float64(m.Dim()) * 4 / 1024,
			Dim:         m.Dim(),
			WeightCount: m.WeightCount(),
		})
	}
	return res
}

// String renders the two panels of Figure 15.
func (r *Fig15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: embedding computation cost and storage\n\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %6s %12s\n", "Model", "Encode/query", "Embed size", "Dim", "Params")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %14v %12.1fKB %6d %12d\n",
			row.Model, row.EncodeTime.Round(time.Microsecond), row.StorageKB, row.Dim, row.WeightCount)
	}
	return b.String()
}
