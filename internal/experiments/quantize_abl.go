package experiments

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/quantize"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// quantizedEncoder wraps an encoder so its output reflects what the cache
// would effectively compare after int8 storage: quantise, dequantise,
// re-normalise. Used to measure the matching-quality cost of int8 storage.
type quantizedEncoder struct {
	base embed.Encoder
}

func (q quantizedEncoder) Encode(text string) []float32 {
	v := quantize.Quantize(q.base.Encode(text)).Dequantize()
	if vecmath.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

func (q quantizedEncoder) Dim() int     { return q.base.Dim() }
func (q quantizedEncoder) Name() string { return q.base.Name() + "+int8" }

// AblationQuantize extends the Figure 10 storage study with int8 scalar
// quantization: raw float32, PCA-64, int8, and PCA-64+int8, reporting
// per-entry embedding bytes and the matching quality at each
// representation's own optimal threshold.
func AblationQuantize(lab *Lab) *AblationResult {
	tm := lab.Trained(embed.MPNetSim)
	corpus := lab.Corpus()
	res := &AblationResult{Title: "embedding storage format (bytes per cached embedding)"}

	pcaEnc := lab.CompressedEncoder(embed.MPNetSim)
	configs := []struct {
		name  string
		enc   embed.Encoder
		bytes int
	}{
		{"float32 raw", tm.Model, tm.Model.Dim() * 4},
		{"float32 + pca64", pcaEnc, pcaEnc.Dim() * 4},
		{"int8 raw", quantizedEncoder{tm.Model}, tm.Model.Dim() + 4},
		{"int8 + pca64", quantizedEncoder{pcaEnc}, pcaEnc.Dim() + 4},
	}
	for _, cfg := range configs {
		opt := train.Sweep(cfg.enc, corpus.Val, 0.01, 1).Optimal
		res.Rows = append(res.Rows, AblationRow{
			Config: cfg.name,
			Scores: opt.Scores,
			Note:   fmt.Sprintf("%d B/entry, tau*=%.2f", cfg.bytes, opt.Tau),
		})
	}
	return res
}
