package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/fl"
	"repro/internal/llmsim"
	"repro/internal/metrics"
	"repro/internal/pca"
	"repro/internal/train"
)

// The ablations quantify the design decisions DESIGN.md calls out. They go
// beyond the paper's figures: each isolates one mechanism of MeanCache and
// measures the deployment-level effect of removing or varying it.

// AblationRow is one configuration's deployment scores.
type AblationRow struct {
	Config string
	Scores metrics.Scores
	Note   string
}

// AblationResult is a titled list of configuration rows.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n\n", r.Title)
	fmt.Fprintf(&b, "  %-36s %7s %10s %7s %s\n", "Configuration", "F0.5", "Precision", "Recall", "Note")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-36s %7.2f %10.2f %7.2f %s\n",
			row.Config, row.Scores.FScore, row.Scores.Precision, row.Scores.Recall, row.Note)
	}
	return b.String()
}

// AblationContext isolates the context-chain mechanism: the same trained
// encoder and threshold on the contextual workload, with and without
// context verification. Without it MeanCache degrades to GPTCache-style
// behaviour on follow-ups.
func AblationContext(lab *Lab) *AblationResult {
	tm := lab.Trained(embed.MPNetSim)
	w := lab.CtxWorkload()
	res := &AblationResult{Title: "context-chain verification (contextual workload)"}

	run := func(name string, sys System, note string) {
		llm := llmsim.New(llmsim.DefaultConfig())
		outcomes := RunContextual(sys, w, llm)
		res.Rows = append(res.Rows, AblationRow{
			Config: name,
			Scores: metrics.ScoresFrom(Confusion(outcomes), 0.5),
			Note:   note,
		})
	}
	run("with context chains", NewMeanCacheSystem("mc", tm.Model, tm.Tau), "Algorithm 1")
	run("without context chains",
		NewGPTCacheSystem("mc-noctx", tm.Model, tm.Tau, 0),
		"same encoder+tau, context ignored")
	return res
}

// AblationThresholdCalibration compares the two threshold-search
// objectives on the standalone deployment: the pairwise sweep (what a
// naive implementation would use) versus the cache-aware sweep of
// §III-A.2 ("optimises the F-score of the cache").
func AblationThresholdCalibration(lab *Lab) *AblationResult {
	tm := lab.Trained(embed.MPNetSim)
	corpus := lab.Corpus()
	w := lab.Workload()
	res := &AblationResult{Title: "threshold calibration objective (standalone workload)"}

	pairTau := train.Sweep(tm.Model, corpus.Val, 0.01, 0.5).Optimal.Tau
	cacheTau := train.CacheSweep(tm.Model, corpus.Val, 0.01, 0.5).Optimal.Tau
	for _, cfg := range []struct {
		name string
		tau  float64
	}{
		{"pairwise-optimal tau", pairTau},
		{"cache-aware tau", cacheTau},
		{"aggregated tau_global (deployed)", tm.Tau},
	} {
		llm := llmsim.New(llmsim.DefaultConfig())
		sys := NewMeanCacheSystem("mc", tm.Model, cfg.tau)
		outcomes := RunStandalone(sys, w, llm)
		res.Rows = append(res.Rows, AblationRow{
			Config: cfg.name,
			Scores: metrics.ScoresFrom(Confusion(outcomes), 0.5),
			Note:   fmt.Sprintf("tau=%.2f", cfg.tau),
		})
	}
	return res
}

// AblationAggregator compares FedAvg with unweighted averaging under
// unbalanced client data: one client holds half the corpus, the rest split
// the remainder. Sample-weighted aggregation should track the data-rich
// client's quality.
func AblationAggregator(lab *Lab) *AblationResult {
	corpus := lab.Corpus()
	res := &AblationResult{Title: "FL aggregation strategy (unbalanced clients)"}
	nClients := lab.Cfg.FLClients

	// Unbalanced shards: client 0 takes 50%, the rest share the rest.
	rng := rand.New(rand.NewSource(lab.Cfg.Seed + 900))
	shuffled := make([]dataset.Pair, len(corpus.Train))
	copy(shuffled, corpus.Train)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	half := len(shuffled) / 2
	rest := dataset.SplitPairs(shuffled[half:], nClients-1, rng)
	shards := append([][]dataset.Pair{shuffled[:half]}, rest...)

	for _, agg := range []fl.Aggregator{fl.FedAvg{}, fl.SimpleAvg{}} {
		clients := make([]fl.Client, nClients)
		for i := range clients {
			clients[i] = fl.NewLocalClient(i, embed.MPNetSim, lab.Cfg.Seed+100, shards[i], lab.Cfg.Train, 0.5)
		}
		global := embed.NewModel(embed.MPNetSim, lab.Cfg.Seed+100)
		srv := fl.NewServer(global, clients, fl.ServerConfig{
			Rounds:          lab.Cfg.FLRounds,
			ClientsPerRound: lab.Cfg.FLPerRound,
			Seed:            lab.Cfg.Seed + 300,
			InitialTau:      0.7,
			Aggregator:      agg,
		})
		if err := srv.Run(nil); err != nil {
			panic(fmt.Sprintf("experiments: aggregator ablation: %v", err))
		}
		conf := train.EvaluateAt(global, corpus.Val, srv.Tau())
		res.Rows = append(res.Rows, AblationRow{
			Config: agg.Name(),
			Scores: metrics.ScoresFrom(conf, 0.5),
			Note:   fmt.Sprintf("tau_global=%.2f", srv.Tau()),
		})
	}
	return res
}

// AblationPCADims sweeps the compressed dimensionality: quality and
// per-entry storage for k ∈ {16, 32, 64, 128} against the raw encoder.
func AblationPCADims(lab *Lab) *AblationResult {
	tm := lab.Trained(embed.MPNetSim)
	corpus := lab.Corpus()
	res := &AblationResult{Title: "PCA compressed dimensionality"}

	n := min(lab.Cfg.PCASamples, len(corpus.Train))
	texts := make([]string, 0, n)
	for _, p := range corpus.Train[:n] {
		texts = append(texts, p.A)
	}
	samples := tm.Model.EncodeBatch(texts)

	rawOpt := train.Sweep(tm.Model, corpus.Val, 0.01, 1).Optimal
	res.Rows = append(res.Rows, AblationRow{
		Config: fmt.Sprintf("raw %d-d", tm.Model.Dim()),
		Scores: rawOpt.Scores,
		Note:   fmt.Sprintf("%d B/entry", tm.Model.Dim()*4),
	})
	for _, k := range []int{16, 32, 64, 128} {
		if k >= samples.Rows {
			continue
		}
		proj, err := pca.Fit(samples, k, pca.Options{Seed: lab.Cfg.Seed})
		if err != nil {
			panic(fmt.Sprintf("experiments: pca ablation: %v", err))
		}
		enc := embed.WithCenteredProjection(tm.Model, proj.Components, proj.Mean)
		opt := train.Sweep(enc, corpus.Val, 0.01, 1).Optimal
		res.Rows = append(res.Rows, AblationRow{
			Config: fmt.Sprintf("pca %d-d", k),
			Scores: opt.Scores,
			Note:   fmt.Sprintf("%d B/entry, %.0f%% var", k*4, 100*proj.ExplainedRatio()),
		})
	}
	return res
}

// AblationEviction measures cache hit quality under LRU/LFU/FIFO on a
// capacity-constrained cache fed a Zipf-skewed resubmission stream: the
// classic web-caching comparison, here over semantic entries.
func AblationEviction(lab *Lab) *AblationResult {
	tm := lab.Trained(embed.MPNetSim)
	res := &AblationResult{Title: "eviction policy (capacity = 25% of working set, Zipf stream)"}

	cfg := lab.Cfg.Corpus
	rng := rand.New(rand.NewSource(lab.Cfg.Seed + 901))
	gen := dataset.NewGenerator(cfg, rng)
	// Working set: N intents with Zipf-like popularity; stream of
	// resubmissions drawn from it.
	nIntents := lab.Cfg.NCached / 2
	intents := make([]dataset.Intent, nIntents)
	for i := range intents {
		intents[i] = gen.NewIntent(i)
	}
	streamLen := 4 * nIntents
	stream := make([]int, streamLen)
	for i := range stream {
		// Discrete Zipf via inverse-power sampling.
		r := rng.Float64()
		stream[i] = int(float64(nIntents) * r * r * r)
		if stream[i] >= nIntents {
			stream[i] = nIntents - 1
		}
	}

	for _, policy := range []cache.Policy{cache.LRU{}, cache.LFU{}, cache.FIFO{}} {
		client := core.New(core.Options{
			Encoder:  tm.Model,
			LLM:      llmsim.New(llmsim.DefaultConfig()),
			Tau:      float32(tm.Tau),
			Capacity: nIntents / 4,
			Policy:   policy,
		})
		hits := 0
		seen := make(map[int]bool)
		possible := 0
		for _, idx := range stream {
			q := gen.Realize(intents[idx])
			r, err := client.Query(q)
			if err != nil {
				panic(fmt.Sprintf("experiments: eviction ablation: %v", err))
			}
			if r.Hit {
				hits++
			}
			if seen[idx] {
				possible++
			}
			seen[idx] = true
		}
		hitRate := float64(hits) / float64(possible)
		res.Rows = append(res.Rows, AblationRow{
			Config: policy.Name(),
			Scores: metrics.Scores{Recall: hitRate},
			Note:   fmt.Sprintf("%d hits / %d resubmissions", hits, possible),
		})
	}
	res.Title += " — Recall column is resubmission hit rate"
	return res
}
