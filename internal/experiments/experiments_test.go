package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickLab is shared across tests in this package: building it (FL
// training two models) is the expensive part, and the drivers only read
// from it.
var quickLab = NewLab(QuickConfig())

func TestLookupRegistry(t *testing.T) {
	if len(Names()) != 20 {
		t.Fatalf("registered experiments = %d, want 20", len(Names()))
	}
	for _, name := range Names() {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("Lookup accepted unknown experiment")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Table1(quickLab)
	if len(res.Standalone) != 3 || len(res.Contextual) != 2 {
		t.Fatalf("rows = %d/%d, want 3/2", len(res.Standalone), len(res.Contextual))
	}
	gpt, mpnet := res.Standalone[0], res.Standalone[1]
	// The paper's headline: MeanCache beats GPTCache on F0.5 and
	// precision for standalone queries.
	if mpnet.Scores.FScore <= gpt.Scores.FScore {
		t.Errorf("standalone F0.5: MeanCache %.3f not above GPTCache %.3f",
			mpnet.Scores.FScore, gpt.Scores.FScore)
	}
	if mpnet.Scores.Precision <= gpt.Scores.Precision {
		t.Errorf("standalone precision: MeanCache %.3f not above GPTCache %.3f",
			mpnet.Scores.Precision, gpt.Scores.Precision)
	}
	// Contextual: the gap must be larger still (GPTCache has no context
	// handling at all).
	cgpt, cmean := res.Contextual[0], res.Contextual[1]
	if cmean.Scores.Precision <= cgpt.Scores.Precision {
		t.Errorf("contextual precision: MeanCache %.3f not above GPTCache %.3f",
			cmean.Scores.Precision, cgpt.Scores.Precision)
	}
	if s := res.String(); !strings.Contains(s, "MeanCache (MPNet)") {
		t.Error("Table1 String missing system rows")
	}
}

func TestFig4MatchesPublishedStudy(t *testing.T) {
	res := Fig4(quickLab)
	if len(res.Totals) != 20 {
		t.Fatalf("participants = %d, want 20", len(res.Totals))
	}
	if res.MeanRatio < 0.25 || res.MeanRatio > 0.40 {
		t.Fatalf("mean duplicate ratio = %.3f, paper reports ≈0.31", res.MeanRatio)
	}
	if !strings.Contains(res.String(), "mean duplicate ratio") {
		t.Error("Fig4 String incomplete")
	}
}

func TestFig5CacheSpeedsUpDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig5(quickLab)
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	meanRegion := func(s Fig5Series, lo, hi int) float64 {
		var sum float64
		for _, l := range s.Latencies[lo:hi] {
			sum += float64(l)
		}
		return sum / float64(hi-lo)
	}
	noCache, meanCache := res.Series[0], res.Series[2]
	n := len(noCache.Latencies)
	// On the duplicate region MeanCache must be meaningfully faster than
	// the raw service overall. The mean includes false misses, which pay
	// full LLM latency, so the aggregate bound is modest; the served-from-
	// cache queries themselves must be near-instant (sub-50ms vs ≈700ms).
	raw := meanRegion(noCache, res.DupStart, n)
	cached := meanRegion(meanCache, res.DupStart, n)
	if cached > raw*0.75 {
		t.Errorf("duplicate-region latency: MeanCache %.1fms vs no-cache %.1fms, want meaningfully faster",
			cached/1e6, raw/1e6)
	}
	fastHits := 0
	for _, l := range meanCache.Latencies[res.DupStart:] {
		if l < 50*time.Millisecond {
			fastHits++
		}
	}
	if fastHits == 0 {
		t.Error("no duplicate probe was served at cache-hit latency")
	}
	// On the unique region the cache must not add significant overhead
	// (paper: "does not impede the performance").
	rawU := meanRegion(noCache, 0, res.DupStart)
	cachedU := meanRegion(meanCache, 0, res.DupStart)
	if cachedU > rawU*1.25 {
		t.Errorf("unique-region overhead: MeanCache %.1fms vs no-cache %.1fms",
			cachedU/1e6, rawU/1e6)
	}
}

func TestFig6LabelStrips(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig6(quickLab)
	if len(res.Real) != 100 || len(res.GPTCache) != 100 || len(res.MeanCache) != 100 {
		t.Fatalf("strip lengths %d/%d/%d, want 100", len(res.Real), len(res.GPTCache), len(res.MeanCache))
	}
	fh := func(pred []bool) int {
		n := 0
		for i, hit := range pred {
			if hit && !res.Real[i] {
				n++
			}
		}
		return n
	}
	if fh(res.MeanCache) >= fh(res.GPTCache) {
		t.Errorf("false hits: MeanCache %d not below GPTCache %d (paper shape)",
			fh(res.MeanCache), fh(res.GPTCache))
	}
}

func TestFig7MatricesConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig7(quickLab)
	n := quickLab.Cfg.NProbes
	if res.MeanCache.Total() != n || res.GPTCache.Total() != n {
		t.Fatalf("matrix totals %d/%d, want %d", res.MeanCache.Total(), res.GPTCache.Total(), n)
	}
	if res.MeanCache.FP >= res.GPTCache.FP {
		t.Errorf("false hits: MeanCache %d not below GPTCache %d", res.MeanCache.FP, res.GPTCache.FP)
	}
}

func TestFig8ContextualFalseHits(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig8(quickLab)
	count := func(v []bool) int {
		n := 0
		for _, x := range v {
			if x {
				n++
			}
		}
		return n
	}
	// The paper's central contextual claim: GPTCache false-hits heavily on
	// the should-all-miss probes; MeanCache barely at all.
	gptFH, meanFH := count(res.NonDupGPT), count(res.NonDupMean)
	if meanFH >= gptFH {
		t.Errorf("contextual false hits: MeanCache %d not below GPTCache %d", meanFH, gptFH)
	}
	if gptFH < len(res.NonDupGPT)/4 {
		t.Errorf("GPTCache contextual false hits = %d/%d, expected heavy false hitting",
			gptFH, len(res.NonDupGPT))
	}
	if meanFH > len(res.NonDupMean)/5 {
		t.Errorf("MeanCache contextual false hits = %d/%d, expected near zero",
			meanFH, len(res.NonDupMean))
	}
}

func TestFig10CompressionSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig10(quickLab)
	if len(res.Cells) != 15 { // 5 systems × 3 sizes
		t.Fatalf("cells = %d, want 15", len(res.Cells))
	}
	// Storage must grow with cache size and compression must save >= 70%
	// (paper: 83% including text overhead).
	if res.SavingsPct < 70 {
		t.Errorf("compression saving = %.0f%%, want >= 70%%", res.SavingsPct)
	}
	for _, c := range res.Cells {
		if c.StorageKB <= 0 {
			t.Errorf("cell %s/%d has zero storage", c.System, c.Cached)
		}
	}
	// Compressed search must not be slower than raw search.
	if res.SpeedupPct < 0 {
		t.Errorf("compressed search slower than raw: %.0f%%", res.SpeedupPct)
	}
	// Compression costs accuracy on this synthetic corpus (more than in
	// the paper — see EXPERIMENTS.md), but the compressed cache must stay
	// strictly better than the degenerate hit-everything policy, whose
	// F0.5 at a 30% duplicate rate is ≈0.35.
	for _, c := range res.Cells {
		if strings.Contains(c.System, "Compressed") && c.FScore <= 0.37 {
			t.Errorf("%s at %d entries: F-score %.2f at or below the all-hit baseline",
				c.System, c.Cached, c.FScore)
		}
	}
}

func TestFig11CurveImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig11(quickLab)
	if len(res.Curve) != quickLab.Cfg.FLRounds {
		t.Fatalf("curve points = %d, want %d", len(res.Curve), quickLab.Cfg.FLRounds)
	}
	first, last := res.Curve[0].Scores, res.Curve[len(res.Curve)-1].Scores
	if last.FScore < first.FScore-0.02 {
		t.Errorf("FL training degraded F1: %.3f -> %.3f", first.FScore, last.FScore)
	}
}

func TestFig13SweepHasInteriorOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig13(quickLab)
	opt := res.Sweep.Optimal
	if opt.Tau <= 0.05 || opt.Tau >= 0.99 {
		t.Errorf("optimal tau = %.2f, expected an interior optimum", opt.Tau)
	}
	// Precision rises with tau up to the optimum (paper: "precision
	// typically improves with an increase in threshold").
	lowIdx, optIdx := 0, 0
	for i, pt := range res.Sweep.Points {
		if pt.Tau <= 0.3 {
			lowIdx = i
		}
		if pt.Tau <= opt.Tau {
			optIdx = i
		}
	}
	if res.Sweep.Points[optIdx].Scores.Precision < res.Sweep.Points[lowIdx].Scores.Precision {
		t.Error("precision at optimum below precision at tau=0.3")
	}
}

func TestFig15LlamaCostDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	res := Fig15(quickLab)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	llama, mpnet, albert := res.Rows[0], res.Rows[1], res.Rows[2]
	if llama.EncodeTime <= mpnet.EncodeTime || llama.EncodeTime <= albert.EncodeTime {
		t.Errorf("Llama encode %v not slower than MPNet %v / Albert %v",
			llama.EncodeTime, mpnet.EncodeTime, albert.EncodeTime)
	}
	// Storage: 4096-d vs 768-d → 16KB vs 3KB per embedding.
	if llama.StorageKB <= 5*mpnet.StorageKB-1 && llama.StorageKB < 5 {
		t.Errorf("Llama per-embedding storage %.1fKB not dominating %.1fKB", llama.StorageKB, mpnet.StorageKB)
	}
}

func TestFig16LlamaMatchesWorseThanTrained(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests skipped in -short mode")
	}
	llama := Fig16(quickLab)
	mpnet := Fig13(quickLab)
	if llama.Sweep.Optimal.Scores.FScore >= mpnet.Sweep.Optimal.Scores.FScore {
		t.Errorf("frozen Llama optimal F1 %.3f not below trained MPNet %.3f (§IV-G shape)",
			llama.Sweep.Optimal.Scores.FScore, mpnet.Sweep.Optimal.Scores.FScore)
	}
}
